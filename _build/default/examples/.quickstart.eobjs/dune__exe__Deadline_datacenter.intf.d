examples/deadline_datacenter.mli:
