examples/motivating_example.ml: Format Pdq_experiments
