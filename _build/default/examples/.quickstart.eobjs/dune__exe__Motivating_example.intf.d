examples/motivating_example.mli:
