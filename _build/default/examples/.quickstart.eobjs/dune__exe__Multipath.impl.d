examples/multipath.ml: Array List Pdq_core Pdq_engine Pdq_topo Pdq_transport Pdq_workload Printf
