examples/multipath.mli:
