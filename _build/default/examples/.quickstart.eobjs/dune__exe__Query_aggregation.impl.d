examples/query_aggregation.ml: Array List Pdq_experiments Pdq_transport Printf Sys
