examples/query_aggregation.mli:
