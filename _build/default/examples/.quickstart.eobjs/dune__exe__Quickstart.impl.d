examples/quickstart.ml: Array Pdq_core Pdq_engine Pdq_topo Pdq_transport Printf
