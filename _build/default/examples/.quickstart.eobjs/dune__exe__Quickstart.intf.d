examples/quickstart.mli:
