(* A realistic mixed datacenter workload (Fig. 5 style): VL2-like flow
   sizes — mostly mice, a few elephants — arriving as a Poisson
   process over random server pairs on the 12-server tree. Short flows
   (< 40 KB) carry deadlines; Early Termination gives up on hopeless
   ones to protect the rest.

   Run with: dune exec examples/deadline_datacenter.exe *)

module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Pattern = Pdq_workload.Pattern
module Arrivals = Pdq_workload.Arrivals

let () =
  let seed = 7 in
  let duration = 0.08 in
  let rate = 1200. (* flows per second *) in
  let run protocol =
    let sim = Sim.create () in
    let built = Builder.single_rooted_tree ~sim () in
    let hosts = built.Builder.hosts in
    let rng = Rng.create seed in
    let dist = Size_dist.vl2 () in
    let ddist = Deadline_dist.exponential ~mean:0.02 () in
    let starts = Arrivals.poisson ~rng ~rate ~horizon:duration in
    let pairs = Pattern.random_pairs ~hosts ~flows:(List.length starts) ~rng in
    let specs =
      List.map2
        (fun start (p : Pattern.pair) ->
          let size = Size_dist.sample dist rng in
          {
            Context.src = p.Pattern.src;
            dst = p.Pattern.dst;
            size;
            deadline =
              (if size < 40_000 then Some (Deadline_dist.sample ddist rng)
               else None);
            start;
          })
        starts pairs
    in
    let options =
      { Runner.default_options with Runner.seed; horizon = duration +. 3. }
    in
    (Runner.run ~options ~topo:built.Builder.topo protocol specs, specs)
  in
  List.iter
    (fun (name, proto) ->
      let r, specs = run proto in
      let shorts =
        List.length (List.filter (fun s -> s.Context.size < 40_000) specs)
      in
      let terminated =
        Array.to_list r.Runner.flows
        |> List.filter (fun (f : Runner.flow_result) -> f.Runner.terminated)
        |> List.length
      in
      Printf.printf
        "%-10s %3d flows (%d short) | deadline throughput %5.1f%% | mean FCT \
         %6.2f ms | %d early-terminated\n"
        name
        (Array.length r.Runner.flows)
        shorts
        (100. *. r.Runner.application_throughput)
        (1e3 *. r.Runner.mean_fct)
        terminated)
    [
      ("PDQ(Full)", Runner.Pdq Pdq_core.Config.full);
      ("D3", Runner.D3);
      ("RCP", Runner.Rcp);
      ("TCP", Runner.Tcp);
    ]
