(* The paper's Figure 1, reproduced analytically with the fluid
   schedulers: three flows (sizes 1/2/3, deadlines 1/4/6) on a
   unit-rate bottleneck under fair sharing, SJF/EDF and D3.

   Run with: dune exec examples/motivating_example.exe *)

let () = Pdq_experiments.Fig1.run Format.std_formatter
