(* Multipath PDQ (§6) on BCube(2,3): 16 servers with four NICs each.
   Single-path PDQ can use one interface per flow; M-PDQ stripes each
   flow over subflows routed on disjoint ECMP paths and shifts load
   away from paused subflows.

   Run with: dune exec examples/multipath.exe *)

module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Units = Pdq_engine.Units
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Pattern = Pdq_workload.Pattern

let () =
  let run protocol =
    let sim = Sim.create () in
    let built = Builder.bcube ~sim ~n:2 ~k:3 () in
    let rng = Rng.create 11 in
    let pairs = Pattern.random_permutation ~hosts:built.Builder.hosts ~rng in
    let specs =
      List.map
        (fun (p : Pattern.pair) ->
          {
            Context.src = p.Pattern.src;
            dst = p.Pattern.dst;
            size = Units.kbyte 400.;
            deadline = None;
            start = 0.;
          })
        pairs
    in
    Runner.run ~topo:built.Builder.topo protocol specs
  in
  (* M-PDQ subflows follow BCube address-based parallel paths, leaving
     the source through different server ports. *)
  let bcube_paths =
    let sim = Sim.create () in
    let built = Builder.bcube ~sim ~n:2 ~k:3 () in
    fun ~src ~dst -> Builder.bcube_paths ~n:2 ~k:3 built ~src ~dst
  in
  Printf.printf "BCube(2,3), random permutation, 400 KB per flow:\n\n";
  List.iter
    (fun (name, proto) ->
      let r = run proto in
      Printf.printf "  %-10s mean FCT %6.2f ms (%d/%d completed)\n" name
        (1e3 *. r.Runner.mean_fct)
        r.Runner.completed
        (Array.length r.Runner.flows))
    ([ ("PDQ", Runner.Pdq Pdq_core.Config.full) ]
    @ List.map
        (fun k ->
          ( Printf.sprintf "M-PDQ(%d)" k,
            Runner.mpdq ~paths:bcube_paths ~subflows:k () ))
        [ 2; 3; 4 ])
