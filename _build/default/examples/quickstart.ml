(* Quickstart: build a tiny network, run two PDQ flows through one
   bottleneck, and watch preemptive scheduling finish the short flow
   first while fair sharing (RCP) delays it.

   Run with: dune exec examples/quickstart.exe *)

module Sim = Pdq_engine.Sim
module Units = Pdq_engine.Units
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context

(* One experiment: two senders, one switch, one receiver, 1 Gbps links
   (the single-bottleneck topology of Fig. 2b); a 1 MB and a 100 KB
   flow start simultaneously. *)
let run protocol =
  let sim = Sim.create () in
  let built, receiver = Builder.single_bottleneck ~sim ~senders:2 () in
  let hosts = built.Builder.hosts in
  let flow src size =
    { Context.src; dst = receiver; size; deadline = None; start = 0. }
  in
  Runner.run ~topo:built.Builder.topo protocol
    [ flow hosts.(0) (Units.mbyte 1.); flow hosts.(1) (Units.kbyte 100.) ]

let show name (r : Runner.result) =
  Printf.printf "%s:\n" name;
  Array.iteri
    (fun i (f : Runner.flow_result) ->
      Printf.printf "  flow %d (%7d bytes): completed in %s\n" i
        f.Runner.spec.Context.size
        (match f.Runner.fct with
        | Some fct -> Printf.sprintf "%5.2f ms" (1e3 *. fct)
        | None -> "never"))
    r.Runner.flows;
  Printf.printf "  mean FCT: %.2f ms\n\n" (1e3 *. r.Runner.mean_fct)

let () =
  show "PDQ(Full) - the short flow preempts the long one"
    (run (Runner.Pdq Pdq_core.Config.full));
  show "RCP - fair sharing delays the short flow" (run Runner.Rcp)
