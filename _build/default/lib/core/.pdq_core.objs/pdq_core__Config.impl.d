lib/core/config.ml:
