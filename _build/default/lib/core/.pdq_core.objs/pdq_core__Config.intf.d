lib/core/config.mli:
