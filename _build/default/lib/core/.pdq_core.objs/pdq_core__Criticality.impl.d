lib/core/criticality.ml: Stdlib
