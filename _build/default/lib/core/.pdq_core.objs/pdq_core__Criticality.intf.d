lib/core/criticality.mli:
