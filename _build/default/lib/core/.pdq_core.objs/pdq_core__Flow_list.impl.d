lib/core/flow_list.ml: Array Criticality Flow_state
