lib/core/flow_list.mli: Flow_state
