lib/core/flow_state.ml: Criticality Header
