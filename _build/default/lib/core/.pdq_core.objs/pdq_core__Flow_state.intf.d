lib/core/flow_state.mli: Criticality Header
