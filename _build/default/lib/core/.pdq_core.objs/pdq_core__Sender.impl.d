lib/core/sender.ml: Header Pdq_engine
