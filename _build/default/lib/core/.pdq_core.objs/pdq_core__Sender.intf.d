lib/core/sender.mli: Header
