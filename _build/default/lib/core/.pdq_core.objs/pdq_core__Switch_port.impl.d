lib/core/switch_port.ml: Config Criticality Flow_list Flow_state Hashtbl Header List Pdq_engine
