lib/core/switch_port.mli: Config Flow_list Header
