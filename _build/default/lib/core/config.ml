type features = {
  early_start : bool;
  early_termination : bool;
  suppressed_probing : bool;
}

type t = {
  features : features;
  k_early_start : float;
  probe_x : float;
  dampening : float;
  kappa_multiplier : int;
  min_list_size : int;
  max_list_size : int;
  rate_update_rtts : float;
  default_inter_probe_rtts : float;
  rtt_ewma : float;
  queue_allowance_bytes : int;
}

let full =
  {
    features =
      { early_start = true; early_termination = true; suppressed_probing = true };
    k_early_start = 2.;
    probe_x = 0.2;
    dampening = 20e-6;
    kappa_multiplier = 2;
    min_list_size = 8;
    max_list_size = 10_000;
    rate_update_rtts = 2.;
    default_inter_probe_rtts = 1.;
    rtt_ewma = 0.125;
    queue_allowance_bytes = 1500;
  }

let es_et =
  { full with features = { full.features with suppressed_probing = false } }

let es =
  {
    full with
    features =
      {
        early_start = true;
        early_termination = false;
        suppressed_probing = false;
      };
  }

let basic =
  {
    full with
    features =
      {
        early_start = false;
        early_termination = false;
        suppressed_probing = false;
      };
  }

let name t =
  match t.features with
  | { early_start = false; early_termination = false; suppressed_probing = false }
    ->
      "PDQ(Basic)"
  | { early_start = true; early_termination = false; suppressed_probing = false }
    ->
      "PDQ(ES)"
  | { early_start = true; early_termination = true; suppressed_probing = false }
    ->
      "PDQ(ES+ET)"
  | { early_start = true; early_termination = true; suppressed_probing = true }
    ->
      "PDQ(Full)"
  | _ -> "PDQ(custom)"

let with_k t k = { t with k_early_start = k }
