(** PDQ protocol parameters and feature toggles.

    The paper evaluates four variants (§5.1): PDQ(Basic), PDQ(ES),
    PDQ(ES+ET) and PDQ(Full) — cumulative combinations of Early Start,
    Early Termination and Suppressed Probing. *)

type features = {
  early_start : bool;  (** §3.3.2, Early Start: accept nearly-completed
                           next flows before the current one finishes. *)
  early_termination : bool;
      (** §3.1, Early Termination: senders kill flows that can no longer
          meet their deadline. *)
  suppressed_probing : bool;
      (** §3.3.2, Suppressed Probing: scale a paused flow's inter-probe
          time with its position in the switch flow list. *)
}

type t = {
  features : features;
  k_early_start : float;
      (** Early Start budget [K], in RTTs of aggregate remaining
          transmission time admitted early. Paper default: 2. *)
  probe_x : float;
      (** Suppressed-probing factor [X] (per list index, in RTTs).
          Paper default: 0.2. *)
  dampening : float;
      (** Seconds after accepting a paused flow during which no other
          paused flow is accepted (§3.3.2, Dampening). *)
  kappa_multiplier : int;
      (** The switch stores the [kappa_multiplier × κ] most critical
          flows, κ = number of sending flows. Paper: 2. *)
  min_list_size : int;
      (** Lower bound on the flow-list capacity so a link can always
          remember at least a couple of waiting flows. *)
  max_list_size : int;
      (** Hard memory bound [M] on stored flows; beyond it the switch
          falls back to RCP-style fair sharing (§3.3.1). *)
  rate_update_rtts : float;
      (** Rate-controller update period, in average RTTs. Paper: 2. *)
  default_inter_probe_rtts : float;
      (** Inter-probe interval for paused senders when suppressed
          probing does not lengthen it, in RTTs. *)
  rtt_ewma : float;
      (** Exponential-decay weight for the switch's average-RTT
          estimate. *)
  queue_allowance_bytes : int;
      (** Queue bytes the rate controller tolerates before throttling —
          one MTU by default (the packet in service is not
          congestion). *)
}

val basic : t
(** PDQ(Basic): no Early Start, no Early Termination, no Suppressed
    Probing. *)

val es : t
(** PDQ(ES): Early Start only. *)

val es_et : t
(** PDQ(ES+ET): Early Start + Early Termination. *)

val full : t
(** PDQ(Full): all three refinements — the complete protocol. *)

val name : t -> string
(** Short human-readable variant name, e.g. ["PDQ(Full)"]. *)

val with_k : t -> float -> t
(** Override the Early Start budget [K] (used by the ablation bench). *)
