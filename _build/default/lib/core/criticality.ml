type key = { deadline : float option; expected_tx_time : float; flow_id : int }

let compare a b =
  let by_deadline =
    match (a.deadline, b.deadline) with
    | Some da, Some db -> Stdlib.compare da db
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  if by_deadline <> 0 then by_deadline
  else begin
    let by_ttx = Stdlib.compare a.expected_tx_time b.expected_tx_time in
    if by_ttx <> 0 then by_ttx else Stdlib.compare a.flow_id b.flow_id
  end

let more_critical a b = compare a b < 0

let aged_tx_time ~aging_rate ~wait ~expected_tx_time =
  (* T_H is divided by 2^(alpha * t) with t in units of 100 ms. *)
  let t = wait /. 0.1 in
  expected_tx_time /. (2. ** (aging_rate *. t))

let compare_aged ~aging_rate ~now (ka, wa) (kb, wb) =
  let age k since =
    {
      k with
      expected_tx_time =
        aged_tx_time ~aging_rate ~wait:(max 0. (now -. since))
          ~expected_tx_time:k.expected_tx_time;
    }
  in
  compare (age ka wa) (age kb wb)
