(** The flow criticality comparator shared by all PDQ switches (§3.3).

    A flow is more critical than another if it has the smaller deadline
    (EDF, to minimize deadline misses); deadline-constrained flows
    outrank unconstrained ones. Ties — and flows without deadlines —
    are broken by smaller expected transmission time (SJF, to minimize
    mean completion time), then by flow ID.

    The operator can override the discipline; {!compare_aged} implements
    the flow-aging variant of §7 that inflates a flow's criticality with
    its waiting time to prevent starvation. *)

type key = {
  deadline : float option;  (** Absolute deadline, seconds. *)
  expected_tx_time : float; (** Remaining size / maximal rate, seconds. *)
  flow_id : int;            (** Final tie-break. *)
}

val compare : key -> key -> int
(** [compare a b < 0] iff flow [a] is more critical than flow [b].
    Total order: EDF, then SJF, then flow ID. *)

val more_critical : key -> key -> bool
(** [more_critical a b] is [compare a b < 0]. *)

val aged_tx_time :
  aging_rate:float -> wait:float -> expected_tx_time:float -> float
(** §7 flow aging: reduce [T_H] by a factor 2^(α·t) where [t] is the
    waiting time in units of 100 ms and α = [aging_rate]. *)

val compare_aged :
  aging_rate:float -> now:float -> key * float -> key * float -> int
(** Comparator over [(key, start_of_wait)] pairs applying
    {!aged_tx_time} to both sides before the standard comparison. *)
