type t = { mutable entries : Flow_state.t array; mutable size : int }

let create () = { entries = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let index_of t flow_id =
  let rec scan i =
    if i >= t.size then None
    else if t.entries.(i).Flow_state.flow_id = flow_id then Some i
    else scan (i + 1)
  in
  scan 0

let find t flow_id =
  match index_of t flow_id with
  | None -> None
  | Some i -> Some (i, t.entries.(i))

let mem t flow_id = index_of t flow_id <> None

let ensure_room t filler =
  if Array.length t.entries = 0 then t.entries <- Array.make 8 filler
  else if t.size = Array.length t.entries then begin
    let entries = Array.make (2 * t.size) filler in
    Array.blit t.entries 0 entries 0 t.size;
    t.entries <- entries
  end

(* Position at which [state] belongs so order stays sorted by
   criticality (most critical first). *)
let insertion_point t state =
  let key = Flow_state.key state in
  let rec scan i =
    if i >= t.size then i
    else if Criticality.more_critical key (Flow_state.key t.entries.(i)) then i
    else scan (i + 1)
  in
  scan 0

let insert t state =
  assert (not (mem t state.Flow_state.flow_id));
  ensure_room t state;
  let pos = insertion_point t state in
  Array.blit t.entries pos t.entries (pos + 1) (t.size - pos);
  t.entries.(pos) <- state;
  t.size <- t.size + 1;
  pos

let remove_at t i =
  let state = t.entries.(i) in
  Array.blit t.entries (i + 1) t.entries i (t.size - i - 1);
  t.size <- t.size - 1;
  state

let remove t flow_id =
  match index_of t flow_id with
  | None -> None
  | Some i -> Some (remove_at t i)

let remove_least_critical t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.entries.(t.size)
  end

let least_critical t = if t.size = 0 then None else Some t.entries.(t.size - 1)

let reposition t flow_id =
  match index_of t flow_id with
  | None -> None
  | Some i ->
      let state = remove_at t i in
      Some (insert t state)

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Flow_list.get: out of bounds";
  t.entries.(i)

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.entries.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.entries.(i)
  done;
  !acc

let sending_count t =
  fold (fun n s -> if Flow_state.is_sending s then n + 1 else n) 0 t

let total_rate t = fold (fun acc s -> acc +. s.Flow_state.rate) 0. t

let is_sorted t =
  let ok = ref true in
  for i = 0 to t.size - 2 do
    if
      Criticality.compare
        (Flow_state.key t.entries.(i))
        (Flow_state.key t.entries.(i + 1))
      >= 0
    then ok := false
  done;
  !ok
