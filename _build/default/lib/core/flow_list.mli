(** The per-link flow list of a PDQ switch (§3.3.1): entries kept in
    criticality order (most critical first), bounded to the
    [2κ] most critical flows (κ = number of sending flows) with an
    overall hard memory bound [M].

    The container is agnostic to the bounding policy — {!Switch_port}
    applies the κ-based trimming; this module only guarantees order and
    provides the primitives. *)

type t

val create : unit -> t
(** Empty list. *)

val length : t -> int
val is_empty : t -> bool

val find : t -> int -> (int * Flow_state.t) option
(** [find t flow_id] is [(index, state)] of the flow, index 0 being the
    most critical stored flow. *)

val mem : t -> int -> bool

val insert : t -> Flow_state.t -> int
(** Insert in criticality order; returns the insertion index. The flow
    must not already be present. *)

val remove : t -> int -> Flow_state.t option
(** Remove by flow id; returns the removed state. *)

val remove_least_critical : t -> Flow_state.t option
(** Drop and return the last (least critical) entry. *)

val least_critical : t -> Flow_state.t option

val reposition : t -> int -> int option
(** Restore order after the keyed fields of the given flow were
    mutated; returns its new index. *)

val get : t -> int -> Flow_state.t
(** [get t i] is the i-th most critical stored flow. Raises
    [Invalid_argument] when out of bounds. *)

val iteri : (int -> Flow_state.t -> unit) -> t -> unit
(** Iterate in criticality order with indices. *)

val fold : ('a -> Flow_state.t -> 'a) -> 'a -> t -> 'a
(** Fold in criticality order. *)

val sending_count : t -> int
(** κ: number of stored flows with positive rate. *)

val total_rate : t -> float
(** Sum of the stored flows' accepted rates. *)

val is_sorted : t -> bool
(** Invariant check (used by tests): entries are in strictly increasing
    criticality-key order. *)
