type t = {
  flow_id : int;
  mutable rate : float;
  mutable pause_by : int option;
  mutable deadline : float option;
  mutable expected_tx_time : float;
  mutable rtt : float;
  mutable last_seen : float;
}

let create ?deadline ~flow_id ~expected_tx_time ~rtt ~now () =
  {
    flow_id;
    rate = 0.;
    pause_by = None;
    deadline;
    expected_tx_time;
    rtt;
    last_seen = now;
  }

let key t =
  {
    Criticality.deadline = t.deadline;
    expected_tx_time = t.expected_tx_time;
    flow_id = t.flow_id;
  }

let is_sending t = t.rate > 0.

let update_from_header t (h : Header.t) ~now =
  t.deadline <- h.deadline;
  t.expected_tx_time <- h.expected_tx_time;
  if h.rtt > 0. then t.rtt <- h.rtt;
  t.last_seen <- now
