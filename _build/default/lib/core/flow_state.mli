(** Per-flow state a PDQ switch remembers for each link (§3.3.1):
    the most recent [<R_i, P_i, D_i, T_i, RTT_i>] observed in packet
    headers. *)

type t = {
  flow_id : int;
  mutable rate : float;        (** [R_i]: last globally-accepted rate. *)
  mutable pause_by : int option; (** [P_i]: pausing switch, if any. *)
  mutable deadline : float option; (** [D_i]. *)
  mutable expected_tx_time : float; (** [T_i]. *)
  mutable rtt : float;         (** [RTT_i]. *)
  mutable last_seen : float;   (** Simulated time of the last packet. *)
}

val create :
  ?deadline:float -> flow_id:int -> expected_tx_time:float -> rtt:float ->
  now:float -> unit -> t
(** Fresh entry with [rate = 0] (a newly-stored flow starts paused,
    Algorithm 1). *)

val key : t -> Criticality.key
(** Criticality key of this entry. *)

val is_sending : t -> bool
(** [rate > 0] — the flow counts towards κ. *)

val update_from_header : t -> Header.t -> now:float -> unit
(** Refresh [D_i, T_i, RTT_i] (and [last_seen]) from a forward-path
    header, per Algorithm 1. *)
