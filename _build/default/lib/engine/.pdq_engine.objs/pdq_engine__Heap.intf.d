lib/engine/heap.mli:
