lib/engine/rng.mli:
