lib/engine/series.ml: Array Format
