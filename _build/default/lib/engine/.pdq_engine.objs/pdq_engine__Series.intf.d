lib/engine/series.mli: Format
