lib/engine/sim.mli:
