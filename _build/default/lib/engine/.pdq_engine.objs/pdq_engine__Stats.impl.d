lib/engine/stats.ml: Array
