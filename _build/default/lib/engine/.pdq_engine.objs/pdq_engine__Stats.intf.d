lib/engine/stats.mli:
