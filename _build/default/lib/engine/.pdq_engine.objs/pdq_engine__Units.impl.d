lib/engine/units.ml:
