lib/engine/units.mli:
