type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  initial_capacity : int;
}

let create ?(capacity = 256) () =
  { data = [||]; size = 0; next_seq = 0; initial_capacity = max 1 capacity }

(* Entry [a] sorts before [b] on priority, then on insertion order. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let length h = h.size
let is_empty h = h.size = 0

(* The backing array is allocated on first push (using that entry as
   filler) so no dummy element is ever needed. *)
let ensure_room h filler =
  if Array.length h.data = 0 then h.data <- Array.make h.initial_capacity filler
  else if h.size = Array.length h.data then begin
    let data = Array.make (2 * Array.length h.data) filler in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push h prio value =
  let e = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  ensure_room h e;
  (* Sift up. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before e h.data.(parent) then begin
      h.data.(!i) <- h.data.(parent);
      i := parent
    end
    else continue := false
  done;
  h.data.(!i) <- e

let sift_down h =
  let e = h.data.(0) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      h.data.(!i) <- h.data.(!smallest);
      h.data.(!smallest) <- e;
      i := !smallest
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h
    end;
    Some (top.prio, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let clear h =
  h.size <- 0;
  h.next_seq <- 0
