(** Binary min-heap keyed by float priority, with stable tie-breaking.

    This is the event queue underlying {!Sim}. Elements inserted with
    equal priority are popped in insertion order, which makes simulation
    runs deterministic. *)

type 'a t
(** A mutable min-heap holding values of type ['a]. *)

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty heap. [capacity] pre-sizes the backing
    array (default 256). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the minimum-priority element, breaking
    priority ties by insertion order. [None] on an empty heap. O(log n). *)

val peek : 'a t -> (float * 'a) option
(** [peek h] is the element [pop] would return, without removing it. *)

val clear : 'a t -> unit
(** Remove all elements. *)
