type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let float t =
  (* 53 high-quality bits into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: nonpositive bound";
  (* Rejection-free for our purposes: bound is far below 2^53. *)
  int_of_float (float t *. float_of_int bound)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = 1. -. float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = 1. -. float t in
  scale /. (u ** (1. /. shape))

let bool t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let derangement t n =
  if n < 2 then invalid_arg "Rng.derangement: need n >= 2";
  (* Rejection sampling: a uniform permutation is a derangement with
     probability ~1/e, so a handful of attempts suffice. *)
  let rec attempt () =
    let a = permutation t n in
    let fixed = ref false in
    Array.iteri (fun i v -> if i = v then fixed := true) a;
    if !fixed then attempt () else a
  in
  attempt ()
