(** Deterministic pseudo-random number generator (SplitMix64).

    Every experiment in this repository takes an explicit seed and
    derives all randomness from an {!t}, so a given seed reproduces a
    run bit-for-bit. SplitMix64 passes BigCrush and is trivially
    splittable, which lets independent subsystems draw from independent
    streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    further draws from [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto(Type I) sample: support [\[scale, ∞)], tail index [shape]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val derangement : t -> int -> int array
(** [permutation t n] restricted to permutations with no fixed point —
    used by the random-permutation traffic pattern so no server sends to
    itself. Requires [n >= 2]. *)
