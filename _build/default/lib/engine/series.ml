type t = {
  series_name : string;
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create ?(name = "") () =
  { series_name = name; times = [||]; values = [||]; size = 0 }

let name t = t.series_name

let add t time value =
  if Array.length t.times = t.size then begin
    let cap = max 64 (2 * t.size) in
    let times = Array.make cap 0. and values = Array.make cap 0. in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.values 0 values 0 t.size;
    t.times <- times;
    t.values <- values
  end;
  t.times.(t.size) <- time;
  t.values.(t.size) <- value;
  t.size <- t.size + 1

let length t = t.size
let points t = Array.init t.size (fun i -> (t.times.(i), t.values.(i)))

let bins_of t ~width ~t_end =
  let nbins = max 1 (int_of_float (ceil (t_end /. width))) in
  let sums = Array.make nbins 0. and counts = Array.make nbins 0 in
  for i = 0 to t.size - 1 do
    let b = int_of_float (t.times.(i) /. width) in
    if b >= 0 && b < nbins then begin
      sums.(b) <- sums.(b) +. t.values.(i);
      counts.(b) <- counts.(b) + 1
    end
  done;
  (nbins, sums, counts)

let bin_mean t ~width ~t_end =
  let nbins, sums, counts = bins_of t ~width ~t_end in
  Array.init nbins (fun b ->
      let center = (float_of_int b +. 0.5) *. width in
      let v = if counts.(b) = 0 then 0. else sums.(b) /. float_of_int counts.(b) in
      (center, v))

let integrate_rate t ~width ~t_end =
  let nbins, sums, _counts = bins_of t ~width ~t_end in
  Array.init nbins (fun b ->
      let center = (float_of_int b +. 0.5) *. width in
      (center, sums.(b) /. width))

let pp_tsv ppf t =
  for i = 0 to t.size - 1 do
    Format.fprintf ppf "%.9f\t%.9f@." t.times.(i) t.values.(i)
  done
