(** Time-series recorder for simulation traces (Fig. 6/7-style plots:
    per-flow throughput, link utilization, queue length vs. time). *)

type t
(** A mutable append-only series of [(time, value)] points. *)

val create : ?name:string -> unit -> t
(** Fresh empty series. [name] labels printed output. *)

val name : t -> string
val add : t -> float -> float -> unit
(** [add s t v] appends point [(t, v)]. Times must be nondecreasing. *)

val length : t -> int
val points : t -> (float * float) array
(** All recorded points, in order. *)

val bin_mean : t -> width:float -> t_end:float -> (float * float) array
(** [bin_mean s ~width ~t_end] averages values into consecutive bins
    [\[k*width, (k+1)*width)] up to [t_end]; empty bins yield 0. Each
    output pair is (bin center, mean value). *)

val integrate_rate : t -> width:float -> t_end:float -> (float * float) array
(** Treat points as instantaneous event sizes (e.g. bytes transmitted at
    time t) and return per-bin sums divided by bin width — a rate
    series, e.g. bytes/sec when fed bytes. *)

val pp_tsv : Format.formatter -> t -> unit
(** Print as tab-separated [time value] rows. *)
