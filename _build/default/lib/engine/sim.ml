type handle = { mutable live : bool; action : unit -> unit }

type t = { mutable clock : float; queue : handle Heap.t; mutable stopped : bool }

let create () = { clock = 0.; queue = Heap.create (); stopped = false }
let stop t = t.stopped <- true
let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let h = { live = true; action = f } in
  Heap.push t.queue time h;
  h

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel h = h.live <- false
let cancelled h = not h.live
let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, h) ->
      t.clock <- time;
      if h.live then begin
        h.live <- false;
        h.action ()
      end;
      true

let run ?until t =
  t.stopped <- false;
  match until with
  | None -> while (not t.stopped) && step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue && not t.stopped do
        match Heap.peek t.queue with
        | Some (time, _) when time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- max t.clock horizon;
            continue := false
      done
