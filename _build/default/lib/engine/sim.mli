(** Discrete-event simulation core.

    A simulator owns a virtual clock and an event queue. Events are
    thunks scheduled at absolute or relative virtual times; [run]
    executes them in nondecreasing time order (ties broken by
    scheduling order, so runs are deterministic). *)

type t
(** A simulator instance. *)

type handle
(** A handle on a scheduled event, usable to {!cancel} it. *)

val create : unit -> t
(** A fresh simulator with clock at time [0.]. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule sim ~delay f] runs [f] at time [now sim +. delay].
    Raises [Invalid_argument] if [delay < 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at sim ~time f] runs [f] at absolute [time]. Raises
    [Invalid_argument] if [time] is in the past. *)

val cancel : handle -> unit
(** Cancel a pending event. Cancelling an already-fired or cancelled
    event is a no-op. *)

val cancelled : handle -> bool
(** Whether the event was cancelled (or already consumed). *)

val pending : t -> int
(** Number of events still queued (including cancelled placeholders). *)

val step : t -> bool
(** Execute the next event, advancing the clock to its timestamp.
    Returns [false] when the queue is empty. *)

val stop : t -> unit
(** Make the current (or next) {!run} return after the event being
    executed; pending events stay queued. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue drains, or — when [until] is given —
    until the next event would fire strictly after [until] (the clock is
    then left at [until]). *)
