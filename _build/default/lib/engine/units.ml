let gbps x = x *. 1e9
let mbps x = x *. 1e6
let kbyte x = int_of_float (x *. 1e3)
let mbyte x = int_of_float (x *. 1e6)
let ms x = x *. 1e-3
let us x = x *. 1e-6
let bytes_to_bits b = float_of_int b *. 8.
let tx_time ~bytes ~rate = bytes_to_bits bytes /. rate
