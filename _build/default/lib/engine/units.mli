(** Unit helpers. Base units throughout the repository: seconds for
    time, bytes for data at rest, bits/second for rates. *)

val gbps : float -> float
(** [gbps x] is [x] gigabits/second in bits/second. *)

val mbps : float -> float
(** [mbps x] is [x] megabits/second in bits/second. *)

val kbyte : float -> int
(** [kbyte x] is [x] kilobytes (1000 bytes) rounded to bytes. *)

val mbyte : float -> int
(** [mbyte x] is [x] megabytes (10^6 bytes) rounded to bytes. *)

val ms : float -> float
(** [ms x] is [x] milliseconds in seconds. *)

val us : float -> float
(** [us x] is [x] microseconds in seconds. *)

val bytes_to_bits : int -> float
(** Wire bits for a byte count. *)

val tx_time : bytes:int -> rate:float -> float
(** Serialization delay of [bytes] at [rate] bits/second. *)
