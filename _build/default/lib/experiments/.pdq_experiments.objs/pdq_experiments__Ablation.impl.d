lib/experiments/ablation.ml: Common List Pdq_core Pdq_transport
