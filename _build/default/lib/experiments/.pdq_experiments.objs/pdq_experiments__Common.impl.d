lib/experiments/common.ml: Array Float Format List Pdq_core Pdq_engine Pdq_sched Pdq_topo Pdq_transport Pdq_workload Printf String
