lib/experiments/common.mli: Format Pdq_sched Pdq_transport Pdq_workload
