lib/experiments/dynamics.ml: Array Common Fun List Pdq_core Pdq_engine Pdq_net Pdq_topo Pdq_transport Printf String
