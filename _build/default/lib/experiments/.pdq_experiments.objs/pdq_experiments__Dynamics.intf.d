lib/experiments/dynamics.mli: Common
