lib/experiments/fig1.ml: Array Common List Option Pdq_sched
