lib/experiments/fig1.mli: Common Format
