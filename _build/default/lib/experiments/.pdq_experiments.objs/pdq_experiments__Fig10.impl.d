lib/experiments/fig10.ml: Common Fig8 List Pdq_engine Pdq_flowsim Pdq_topo Pdq_workload
