lib/experiments/fig10.mli: Common
