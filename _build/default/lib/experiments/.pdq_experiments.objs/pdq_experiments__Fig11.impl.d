lib/experiments/fig11.ml: Array Common List Pdq_core Pdq_engine Pdq_topo Pdq_transport Pdq_workload
