lib/experiments/fig11.mli: Common
