lib/experiments/fig12.mli: Common
