lib/experiments/fig3.ml: Common List Pdq_transport Pdq_workload
