lib/experiments/fig3.mli: Common
