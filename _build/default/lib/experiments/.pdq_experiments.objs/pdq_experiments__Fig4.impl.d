lib/experiments/fig4.ml: Array Common List Pdq_engine Pdq_net Pdq_topo Pdq_transport Pdq_workload
