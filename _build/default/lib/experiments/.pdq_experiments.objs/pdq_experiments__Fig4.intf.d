lib/experiments/fig4.mli: Common
