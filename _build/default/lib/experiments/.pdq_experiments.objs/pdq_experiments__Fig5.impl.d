lib/experiments/fig5.ml: Array Common Float List Pdq_engine Pdq_topo Pdq_transport Pdq_workload
