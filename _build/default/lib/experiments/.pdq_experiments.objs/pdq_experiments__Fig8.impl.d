lib/experiments/fig8.ml: Array Common Fun List Option Pdq_core Pdq_engine Pdq_flowsim Pdq_net Pdq_topo Pdq_transport Pdq_workload Printf
