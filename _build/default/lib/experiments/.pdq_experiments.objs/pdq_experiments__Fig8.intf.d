lib/experiments/fig8.mli: Common Pdq_flowsim Pdq_topo Pdq_workload
