lib/experiments/fig9.ml: Common List Pdq_core Pdq_engine Pdq_net Pdq_topo Pdq_transport
