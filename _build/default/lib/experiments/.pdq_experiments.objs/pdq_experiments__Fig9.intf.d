lib/experiments/fig9.mli: Common
