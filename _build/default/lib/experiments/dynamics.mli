(** Figures 6 and 7 — PDQ dynamics on a single bottleneck.

    Fig. 6 (convergence): five ~1 MB flows start at t=0; PDQ should
    serve them strictly one at a time with seamless switching —
    near-100% bottleneck utilization, a small queue, completion at
    ~42 ms.

    Fig. 7 (bursty preemption): a long-lived flow faces 50 short 20 KB
    flows arriving at t=10 ms; PDQ pauses the long flow, absorbs the
    burst at high utilization with a bounded queue, then resumes. *)

type trace = {
  per_flow_gbps : (int * (float * float) array) list;
      (** Per flow: (time, goodput in Gb/s) binned series. *)
  utilization : (float * float) array;
      (** Bottleneck utilization per time bin, fraction of line rate. *)
  queue_pkts : (float * float) array;
      (** Bottleneck queue in data packets per time bin. *)
  completions : (int * float) list;  (** Flow id, completion time. *)
}

val fig6 : ?bin:float -> unit -> trace
val fig7 : ?bin:float -> unit -> trace

val fig6_table : unit -> Common.table
val fig7_table : unit -> Common.table
