module Fluid = Pdq_sched.Fluid

(* fA size 1 deadline 1; fB size 2 deadline 4; fC size 3 deadline 6.
   D3 processes arrivals in the order fB; fA; fC (Fig. 1d): we give fB
   an infinitesimally earlier release so the fluid D3 policy reserves
   for it first. *)
let jobs ~d3_order =
  let e = if d3_order then 1e-9 else 0. in
  [
    Fluid.job ~deadline:1. ~release:e ~id:0 ~size:1. ();
    Fluid.job ~deadline:4. ~release:0. ~id:1 ~size:2. ();
    Fluid.job ~deadline:6. ~release:(2. *. e) ~id:2 ~size:3. ();
  ]

let names = [| "fA"; "fB"; "fC" |]

let disciplines =
  [
    ("Fair sharing", fun () -> Fluid.fair_sharing ~rate:1. (jobs ~d3_order:false));
    ("SJF/EDF", fun () -> Fluid.srpt ~rate:1. (jobs ~d3_order:false));
    ("D3 (order fB;fA;fC)", fun () -> Fluid.d3_fluid ~rate:1. (jobs ~d3_order:true));
  ]

let finish_of completions id =
  List.find_opt (fun (c : Fluid.completion) -> c.Fluid.c_job = id) completions
  |> Option.map (fun (c : Fluid.completion) -> c.Fluid.finish)

let completion_table () =
  let rows =
    List.map
      (fun (name, f) ->
        let cs = f () in
        let cells =
          List.init 3 (fun i ->
              match finish_of cs i with
              | Some t -> Common.cell t
              | None -> "-")
        in
        (name :: cells) @ [ Common.cell (Fluid.mean_completion_time cs) ])
      disciplines
  in
  {
    Common.title = "Fig 1 - completion times (paper: fair 4.67, SJF 3.33)";
    header = [ "discipline"; "fA"; "fB"; "fC"; "mean FCT" ];
    rows;
  }

let deadline_table () =
  let base = jobs ~d3_order:false in
  let rows =
    List.map
      (fun (name, f) ->
        let cs = f () in
        let cells =
          List.init 3 (fun i ->
              let j = List.nth base i in
              match (finish_of cs i, j.Fluid.deadline) with
              | Some t, Some d -> if t <= d +. 1e-9 then "met" else "MISS"
              | _ -> "MISS")
        in
        let met = Fluid.deadlines_met base cs in
        (name :: cells) @ [ string_of_int met ])
      disciplines
  in
  {
    Common.title =
      "Fig 1 - deadlines (paper: fair misses fA+fB, EDF meets all, D3 misses fA)";
    header = ("discipline" :: Array.to_list names) @ [ "#met" ];
    rows;
  }

let run ppf =
  Common.pp_table ppf (completion_table ());
  Common.pp_table ppf (deadline_table ())
