(** Figure 1 — the motivating example: three flows (sizes 1/2/3,
    deadlines 1/4/6) on a unit-rate bottleneck under fair sharing,
    SJF/EDF and fluid D3 (worst arrival order fB;fA;fC). *)

val completion_table : unit -> Common.table
(** Per-discipline completion time of each flow plus mean FCT. *)

val deadline_table : unit -> Common.table
(** Per-discipline deadline outcomes (met / missed per flow). *)

val run : Format.formatter -> unit
(** Print both tables. *)
