module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Rng = Pdq_engine.Rng
module Sim = Pdq_engine.Sim

(* Larger flows than the query workload so path diversity (not
   handshake latency) dominates the completion time. *)
let sizes = Size_dist.uniform_paper ~mean_bytes:500_000
let capacity_sizes = Size_dist.uniform_paper ~mean_bytes:100_000

(* Random permutation over a [load] fraction of the BCube(2,3) hosts. *)
let specs_at_load ~load ~deadlines ~seed ~hosts =
  let rng = Rng.create (0xF11 + (seed * 53)) in
  let n = Array.length hosts in
  let k = max 2 (int_of_float (float_of_int n *. load)) in
  let chosen = Array.sub (let a = Array.copy hosts in Rng.shuffle rng a; a) 0 k in
  let ddist = Deadline_dist.exponential ~mean:0.02 () in
  Pattern.random_permutation ~hosts:chosen ~rng
  |> List.map (fun (p : Pattern.pair) ->
         {
           Context.src = p.Pattern.src;
           dst = p.Pattern.dst;
           size = Size_dist.sample sizes rng;
           deadline =
             (if deadlines then Some (Deadline_dist.sample ddist rng) else None);
           start = 0.;
         })

let run ~load ~deadlines ~seed protocol metric =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  let specs = specs_at_load ~load ~deadlines ~seed ~hosts:built.Builder.hosts in
  let options = { Runner.default_options with Runner.seed; horizon = 5. } in
  metric (Runner.run ~options ~topo:built.Builder.topo protocol specs)

let avg f seeds =
  let xs = List.map f seeds in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* BCube node ids are deterministic, so one throwaway instance provides
   the address-based parallel paths for every run. *)
let bcube_multipath =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  fun ~src ~dst -> Builder.bcube_paths ~n:2 ~k:3 built ~src ~dst

let mpdq subflows = Runner.mpdq ~subflows ~paths:bcube_multipath ()

let fig11a ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let loads = if quick then [ 0.25; 0.5; 1.0 ] else [ 0.125; 0.25; 0.5; 0.75; 1.0 ] in
  let fct proto load =
    avg (fun seed -> run ~load ~deadlines:false ~seed proto (fun r -> r.Runner.mean_fct)) seeds
  in
  let rows =
    List.map
      (fun load ->
        [
          Common.cell (100. *. load);
          Common.cell (1e3 *. fct (Runner.Pdq Pdq_core.Config.full) load);
          Common.cell (1e3 *. fct (mpdq 3) load);
        ])
      loads
  in
  {
    Common.title = "Fig 11a - mean FCT [ms] vs load (BCube(2,3), random perm)";
    header = [ "load[%hosts]"; "PDQ"; "M-PDQ(3)" ];
    rows;
  }

let fig11bc ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let subflow_counts = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let proto k = if k = 1 then Runner.Pdq Pdq_core.Config.full else mpdq k in
  let rows =
    List.map
      (fun k ->
        let fct =
          avg
            (fun seed ->
              run ~load:1.0 ~deadlines:false ~seed (proto k) (fun r ->
                  r.Runner.mean_fct))
            seeds
        in
        (* (c): capacity search with extra deadline flows layered on the
           permutation by scaling the sending population. *)
        let cap =
          Common.search_max_flows ~hi:24 ~target:99. (fun n ->
              avg
                (fun seed ->
                  let sim = Sim.create () in
                  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
                  let rng = Rng.create (0xF11 + (seed * 53)) in
                  let ddist = Deadline_dist.exponential ~mean:0.02 () in
                  let pairs =
                    Pattern.random_pairs ~hosts:built.Builder.hosts ~flows:n ~rng
                  in
                  let specs =
                    List.map
                      (fun (p : Pattern.pair) ->
                        {
                          Context.src = p.Pattern.src;
                          dst = p.Pattern.dst;
                          size = Size_dist.sample capacity_sizes rng;
                          deadline = Some (Deadline_dist.sample ddist rng);
                          start = 0.;
                        })
                      pairs
                  in
                  let options =
                    { Runner.default_options with Runner.seed; horizon = 5. }
                  in
                  100.
                  *. (Runner.run ~options ~topo:built.Builder.topo (proto k) specs)
                       .Runner.application_throughput)
                seeds)
        in
        [ (if k = 1 then "PDQ" else string_of_int k); Common.cell (1e3 *. fct);
          string_of_int cap ])
      subflow_counts
  in
  {
    Common.title =
      "Fig 11b/c - mean FCT [ms] and flows at 99% application throughput vs \
       subflow count (100% load)";
    header = [ "subflows"; "FCT[ms]"; "flows@99%AT" ];
    rows;
  }
