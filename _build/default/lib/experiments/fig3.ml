module Runner = Pdq_transport.Runner
module Size_dist = Pdq_workload.Size_dist

let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ]

let at_metric (r : Runner.result) = 100. *. r.Runner.application_throughput
let fct_metric (r : Runner.result) = r.Runner.mean_fct

(* (a): application throughput vs number of flows. *)
let fig3a ?(quick = true) () =
  let flows_list = if quick then [ 2; 5; 10; 15; 20 ] else [ 2; 5; 10; 15; 20; 25 ] in
  let rows =
    List.map
      (fun n ->
        let optimal =
          100. *. Common.optimal_aggregation_throughput ~seeds:(seeds ~quick) ~flows:n ()
        in
        let cells =
          List.map
            (fun (_, proto) ->
              Common.cell
                (Common.run_aggregation ~seeds:(seeds ~quick) ~flows:n proto
                   at_metric))
            Common.packet_protocols
        in
        (string_of_int n :: Common.cell optimal :: cells))
      flows_list
  in
  {
    Common.title = "Fig 3a - application throughput [%] vs number of flows";
    header = "flows" :: "Optimal" :: List.map fst Common.packet_protocols;
    rows;
  }

(* (b): 3 flows, growing mean size. *)
let fig3b ?(quick = true) () =
  let means =
    if quick then [ 100_000; 200_000; 300_000 ]
    else [ 100_000; 150_000; 200_000; 250_000; 300_000; 350_000 ]
  in
  let rows =
    List.map
      (fun mean ->
        let sizes = Size_dist.uniform_paper ~mean_bytes:mean in
        let optimal =
          100.
          *. Common.optimal_aggregation_throughput ~seeds:(seeds ~quick) ~sizes
               ~flows:3 ()
        in
        let cells =
          List.map
            (fun (_, proto) ->
              Common.cell
                (Common.run_aggregation ~seeds:(seeds ~quick) ~sizes ~flows:3
                   proto at_metric))
            Common.packet_protocols
        in
        (string_of_int (mean / 1000) :: Common.cell optimal :: cells))
      means
  in
  {
    Common.title = "Fig 3b - application throughput [%] vs mean flow size (3 flows)";
    header = "size[KB]" :: "Optimal" :: List.map fst Common.packet_protocols;
    rows;
  }

(* (c): flows sustainable at 99% application throughput vs deadline. *)
let fig3c ?(quick = true) () =
  let deadline_means =
    if quick then [ 0.02; 0.04; 0.06 ] else [ 0.02; 0.03; 0.04; 0.05; 0.06 ]
  in
  let hi = if quick then 48 else 64 in
  let protos =
    if quick then
      [
        List.nth Common.packet_protocols 0 (* PDQ(Full) *);
        List.nth Common.packet_protocols 3 (* PDQ(Basic) *);
        ("D3", Runner.D3);
        ("RCP", Runner.Rcp);
        ("TCP", Runner.Tcp);
      ]
    else Common.packet_protocols
  in
  let rows =
    List.map
      (fun dmean ->
        let optimal =
          Common.search_max_flows ~hi ~target:0.99 (fun n ->
              Common.optimal_aggregation_throughput ~seeds:(seeds ~quick)
                ~deadline_mean:dmean ~flows:n ())
        in
        let cells =
          List.map
            (fun (_, proto) ->
              string_of_int
                (Common.search_max_flows ~hi ~target:99. (fun n ->
                     Common.run_aggregation ~seeds:(seeds ~quick)
                       ~deadline_mean:dmean ~flows:n proto at_metric)))
            protos
        in
        (Common.cell (dmean *. 1e3) :: string_of_int optimal :: cells))
      deadline_means
  in
  {
    Common.title = "Fig 3c - number of flows at 99% application throughput";
    header = "deadline[ms]" :: "Optimal" :: List.map fst protos;
    rows;
  }

(* (d): mean FCT normalized to optimal (no deadlines). *)
let fct_protocols =
  [
    List.nth Common.packet_protocols 0;
    (* PDQ(Full) *)
    List.nth Common.packet_protocols 2;
    (* PDQ(ES) *)
    List.nth Common.packet_protocols 3;
    (* PDQ(Basic) *)
    ("RCP/D3", Runner.Rcp);
    ("TCP", Runner.Tcp);
  ]

let fig3d ?(quick = true) () =
  let flows_list = if quick then [ 1; 5; 10; 20 ] else [ 1; 5; 10; 15; 20; 25 ] in
  let rows =
    List.map
      (fun n ->
        let optimal =
          Common.optimal_aggregation_fct ~seeds:(seeds ~quick) ~flows:n ()
        in
        let cells =
          List.map
            (fun (_, proto) ->
              let fct =
                Common.run_aggregation ~seeds:(seeds ~quick) ~deadlines:false
                  ~flows:n proto fct_metric
              in
              Common.cell (fct /. optimal))
            fct_protocols
        in
        (string_of_int n :: cells))
      flows_list
  in
  {
    Common.title = "Fig 3d - mean FCT normalized to optimal vs number of flows";
    header = "flows" :: List.map fst fct_protocols;
    rows;
  }

let fig3e ?(quick = true) () =
  let means =
    if quick then [ 100_000; 200_000; 300_000 ]
    else [ 100_000; 150_000; 200_000; 250_000; 300_000; 350_000 ]
  in
  let rows =
    List.map
      (fun mean ->
        let sizes = Size_dist.uniform_paper ~mean_bytes:mean in
        let optimal =
          Common.optimal_aggregation_fct ~seeds:(seeds ~quick) ~sizes ~flows:3 ()
        in
        let cells =
          List.map
            (fun (_, proto) ->
              let fct =
                Common.run_aggregation ~seeds:(seeds ~quick) ~deadlines:false
                  ~sizes ~flows:3 proto fct_metric
              in
              Common.cell (fct /. optimal))
            fct_protocols
        in
        (string_of_int (mean / 1000) :: cells))
      means
  in
  {
    Common.title = "Fig 3e - mean FCT normalized to optimal vs mean flow size";
    header = "size[KB]" :: List.map fst fct_protocols;
    rows;
  }
