(** Figure 3 — query aggregation on the default 12-server tree.

    (a) application throughput vs number of concurrent flows;
    (b) application throughput vs mean flow size (3 flows);
    (c) number of flows at 99% application throughput vs mean deadline;
    (d) mean FCT normalized to optimal vs number of flows (no
        deadlines);
    (e) normalized FCT vs mean flow size (3 flows, no deadlines).

    [quick] trims sweep points and seeds so the whole bench stays
    interactive; the shapes are unaffected. *)

val fig3a : ?quick:bool -> unit -> Common.table
val fig3b : ?quick:bool -> unit -> Common.table
val fig3c : ?quick:bool -> unit -> Common.table
val fig3d : ?quick:bool -> unit -> Common.table
val fig3e : ?quick:bool -> unit -> Common.table
