module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Arrivals = Pdq_workload.Arrivals
module Rng = Pdq_engine.Rng
module Sim = Pdq_engine.Sim

let short_flow_bytes = 40_000

(* Poisson trace of [dist]-sized flows over random pairs; short flows
   get deadlines. *)
let trace_specs ~dist ~deadline_mean ~rate ~duration ~seed ~hosts =
  let rng = Rng.create (0xF5 + (seed * 1009)) in
  let ddist = Deadline_dist.exponential ~mean:deadline_mean () in
  let starts = Arrivals.poisson ~rng ~rate ~horizon:duration in
  let pairs = Pattern.random_pairs ~hosts ~flows:(List.length starts) ~rng in
  List.map2
    (fun start (p : Pattern.pair) ->
      let size = Size_dist.sample dist rng in
      {
        Context.src = p.Pattern.src;
        dst = p.Pattern.dst;
        size;
        deadline =
          (if size < short_flow_bytes then Some (Deadline_dist.sample ddist rng)
           else None);
        start;
      })
    starts pairs

let run_trace ~dist ~deadline_mean ~rate ~duration ~seed protocol metric =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let specs =
    trace_specs ~dist ~deadline_mean ~rate ~duration ~seed
      ~hosts:built.Builder.hosts
  in
  if specs = [] then nan
  else begin
    let options =
      { Runner.default_options with Runner.seed; horizon = duration +. 3. }
    in
    metric (Runner.run ~options ~topo:built.Builder.topo protocol specs)
  end

let avg f seeds =
  let xs = List.map f seeds |> List.filter (fun x -> not (Float.is_nan x)) in
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let fig5a ?(quick = true) () =
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let duration = if quick then 0.05 else 0.2 in
  let deadline_means = if quick then [ 0.02; 0.04 ] else [ 0.015; 0.02; 0.03; 0.04 ] in
  let protos =
    if quick then
      [
        List.nth Common.packet_protocols 0;
        List.nth Common.packet_protocols 1;
        ("D3", Runner.D3);
        ("RCP", Runner.Rcp);
        ("TCP", Runner.Tcp);
      ]
    else Common.packet_protocols
  in
  let dist = Size_dist.vl2 () in
  (* Binary search over the arrival rate (flows/s), geometric grid. *)
  let rates = [ 250.; 500.; 1000.; 2000.; 4000.; 8000. ] in
  let max_rate deadline_mean proto =
    let ok rate =
      avg
        (fun seed ->
          run_trace ~dist ~deadline_mean ~rate ~duration ~seed proto (fun r ->
              r.Runner.application_throughput))
        seeds
      >= 0.99
    in
    List.fold_left (fun acc r -> if ok r then r else acc) 0. rates
  in
  let rows =
    List.map
      (fun dmean ->
        Common.cell (dmean *. 1e3)
        :: List.map (fun (_, p) -> Common.cell (max_rate dmean p)) protos)
      deadline_means
  in
  {
    Common.title =
      "Fig 5a - short-flow arrival rate [flows/s] at 99% application \
       throughput (VL2-like workload)";
    header = "deadline[ms]" :: List.map fst protos;
    rows;
  }

let long_fct (r : Runner.result) =
  let longs =
    Array.to_list r.Runner.flows
    |> List.filter_map (fun (f : Runner.flow_result) ->
           if f.Runner.spec.Context.size >= 1_000_000 then f.Runner.fct else None)
  in
  match longs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. longs /. float_of_int (List.length longs)

let norm_table ~title ~dist ~metric ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let duration = if quick then 0.05 else 0.2 in
  let rate = 1500. in
  let protos =
    [
      List.nth Common.packet_protocols 0;
      List.nth Common.packet_protocols 2;
      List.nth Common.packet_protocols 3;
      ("RCP/D3", Runner.Rcp);
      ("TCP", Runner.Tcp);
    ]
  in
  let value proto =
    avg
      (fun seed ->
        run_trace ~dist ~deadline_mean:0.02 ~rate ~duration ~seed proto metric)
      seeds
  in
  let base = value (snd (List.hd protos)) in
  let rows =
    [ "normalized" :: List.map (fun (_, p) -> Common.cell (value p /. base)) protos ]
  in
  { Common.title = title; header = "metric" :: List.map fst protos; rows }

let fig5b ?(quick = true) () =
  norm_table
    ~title:"Fig 5b - FCT of long flows, normalized to PDQ(Full) (VL2-like)"
    ~dist:(Size_dist.vl2 ()) ~metric:long_fct ~quick ()

let fig5c ?(quick = true) () =
  norm_table ~title:"Fig 5c - mean FCT normalized to PDQ(Full) (EDU1-like)"
    ~dist:(Size_dist.edu1 ())
    ~metric:(fun r -> r.Runner.mean_fct)
    ~quick ()
