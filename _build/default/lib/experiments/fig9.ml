module Runner = Pdq_transport.Runner
module Builder = Pdq_topo.Builder
module Sim = Pdq_engine.Sim
module Topology = Pdq_net.Topology
module Link = Pdq_net.Link

(* Query aggregation on the single-bottleneck topology of Fig. 2b with
   loss injected on the switch<->receiver links. *)
let run ~loss_rate ~flows ~deadlines ~seed protocol metric =
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders:(max 4 flows) () in
  let hosts = built.Builder.hosts in
  let wl =
    Common.aggregation_workload ~deadlines ~seed ~hosts ~receiver:rx ~flows ()
  in
  let bottleneck_links =
    [
      Link.id (Topology.link_to built.Builder.topo ~src:0 ~dst:rx);
      Link.id (Topology.link_to built.Builder.topo ~src:rx ~dst:0);
    ]
  in
  let options =
    {
      Runner.default_options with
      Runner.seed;
      horizon = 5.;
      loss = (if loss_rate > 0. then Some (loss_rate, bottleneck_links) else None);
    }
  in
  metric (Runner.run ~options ~topo:built.Builder.topo protocol wl.Common.specs)

let avg f seeds =
  let xs = List.map f seeds in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let losses ~quick = if quick then [ 0.; 0.01; 0.03 ] else [ 0.; 0.005; 0.01; 0.02; 0.03 ]

let protocols = [ ("PDQ", Runner.Pdq Pdq_core.Config.full); ("TCP", Runner.Tcp) ]

let fig9a ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let rows =
    List.map
      (fun loss_rate ->
        Common.cell (loss_rate *. 100.)
        :: List.map
             (fun (_, proto) ->
               string_of_int
                 (Common.search_max_flows ~hi:24 ~target:99. (fun flows ->
                      avg
                        (fun seed ->
                          run ~loss_rate ~flows ~deadlines:true ~seed proto
                            (fun r -> 100. *. r.Runner.application_throughput))
                        seeds)))
             protocols)
      (losses ~quick)
  in
  {
    Common.title = "Fig 9a - flows at 99% application throughput vs loss rate";
    header = "loss[%]" :: List.map fst protocols;
    rows;
  }

let fig9b ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let flows = 6 in
  let fct proto loss_rate =
    avg
      (fun seed ->
        run ~loss_rate ~flows ~deadlines:false ~seed proto (fun r ->
            r.Runner.mean_fct))
      seeds
  in
  let base = fct (snd (List.hd protocols)) 0. in
  let rows =
    List.map
      (fun loss_rate ->
        Common.cell (loss_rate *. 100.)
        :: List.map (fun (_, p) -> Common.cell (fct p loss_rate /. base)) protocols)
      (losses ~quick)
  in
  {
    Common.title = "Fig 9b - mean FCT normalized to PDQ without loss";
    header = "loss[%]" :: List.map fst protocols;
    rows;
  }
