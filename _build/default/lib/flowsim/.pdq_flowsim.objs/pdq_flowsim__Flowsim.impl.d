lib/flowsim/flowsim.ml: Array List Option Pdq_core Pdq_engine Pdq_net
