lib/flowsim/flowsim.mli: Pdq_net
