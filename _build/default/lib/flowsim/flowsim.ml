module Rng = Pdq_engine.Rng

type criticality_mode = Perfect | Random_criticality | Size_estimation of int

type pdq_opts = {
  early_termination : bool;
  aging_rate : float option;
  criticality : criticality_mode;
}

let pdq_defaults =
  { early_termination = true; aging_rate = None; criticality = Perfect }

type proto = Pdq of pdq_opts | Rcp | D3

type flow_spec = {
  fs_id : int;
  path : int array;
  size : int;
  deadline : float option;
  start : float;
}

type flow_result = {
  spec : flow_spec;
  fct : float option;
  met_deadline : bool;
  terminated : bool;
}

type result = {
  flows : flow_result array;
  application_throughput : float;
  mean_fct : float;
  max_fct : float;
  completed : int;
}

type net = { capacity : float array }

let net_of_topology topo =
  {
    capacity =
      Array.init (Pdq_net.Topology.link_count topo) (fun i ->
          Pdq_net.Link.rate (Pdq_net.Topology.link topo i));
  }

(* Internal per-flow state. Sizes tracked in bits of goodput. *)
type fl = {
  spec : flow_spec;
  deadline_abs : float option;
  nic : float; (* min capacity along the path: max possible rate *)
  mutable remaining : float; (* goodput bits *)
  mutable rate : float;
  mutable done_at : float option;
  mutable dead : bool; (* early-terminated / quenched *)
  rand_crit : float;
  mutable waited : float; (* cumulative paused time (aging) *)
  mutable est_level : int; (* size-estimation criticality level *)
}

let bits_of_bytes b = 8. *. float_of_int b

(* PDQ criticality comparison under the chosen mode. *)
let pdq_compare opts ~now a b =
  match opts.criticality with
  | Random_criticality -> compare (a.rand_crit, a.spec.fs_id) (b.rand_crit, b.spec.fs_id)
  | Size_estimation _ ->
      compare (a.est_level, a.spec.fs_id) (b.est_level, b.spec.fs_id)
  | Perfect ->
      let key f =
        let ttx = f.remaining /. f.nic in
        let ttx =
          match opts.aging_rate with
          | Some alpha ->
              Pdq_core.Criticality.aged_tx_time ~aging_rate:alpha ~wait:f.waited
                ~expected_tx_time:ttx
          | None -> ttx
        in
        ignore now;
        match f.deadline_abs with
        | Some d -> (0, d, ttx, f.spec.fs_id)
        | None -> (1, 0., ttx, f.spec.fs_id)
      in
      compare (key a) (key b)

(* Infeasibility check for Early Termination / quenching. *)
let infeasible f ~now =
  match f.deadline_abs with
  | None -> false
  | Some d -> now >= d || now +. (f.remaining /. f.nic) > d

let pdq_rates opts ~now ~capacity active =
  let residual = Array.copy capacity in
  let order = List.sort (pdq_compare opts ~now) active in
  List.iter
    (fun f ->
      if opts.early_termination && infeasible f ~now then begin
        f.dead <- true;
        f.rate <- 0.
      end
      else begin
        let r =
          Array.fold_left
            (fun acc l -> min acc residual.(l))
            f.nic f.spec.path
        in
        let r = max 0. r in
        f.rate <- r;
        if r > 0. then
          Array.iter (fun l -> residual.(l) <- residual.(l) -. r) f.spec.path
      end)
    order

(* Global max-min fairness via water-filling with a lazy heap of
   per-link fair shares. *)
let rcp_rates ~capacity active =
  let nlinks = Array.length capacity in
  let residual = Array.copy capacity in
  let count = Array.make nlinks 0 in
  let members = Array.make nlinks [] in
  List.iter
    (fun f ->
      f.rate <- -1.;
      Array.iter
        (fun l ->
          count.(l) <- count.(l) + 1;
          members.(l) <- f :: members.(l))
        f.spec.path)
    active;
  let heap = Pdq_engine.Heap.create () in
  let push l =
    if count.(l) > 0 then
      Pdq_engine.Heap.push heap (residual.(l) /. float_of_int count.(l)) l
  in
  for l = 0 to nlinks - 1 do
    push l
  done;
  let rec drain () =
    match Pdq_engine.Heap.pop heap with
    | None -> ()
    | Some (key, l) ->
        if count.(l) > 0 then begin
          let fair = residual.(l) /. float_of_int count.(l) in
          if fair > key +. 1e-6 then begin
            (* Stale entry: requeue with the current fair share. *)
            Pdq_engine.Heap.push heap fair l;
            drain ()
          end
          else begin
            (* Freeze this link: all its unassigned flows are
               bottlenecked here. *)
            List.iter
              (fun f ->
                if f.rate < 0. then begin
                  f.rate <- max 0. fair;
                  Array.iter
                    (fun m ->
                      count.(m) <- count.(m) - 1;
                      if m <> l then begin
                        residual.(m) <- residual.(m) -. f.rate;
                        push m
                      end)
                    f.spec.path
                end)
              members.(l);
            drain ()
          end
        end
        else drain ()
  in
  drain ();
  List.iter (fun f -> if f.rate < 0. then f.rate <- 0.) active

(* D3: greedy first-come-first-reserve per link in flow arrival order,
   plus the previous step's non-negative fair share. [fs] persists
   across steps (per link). *)
let d3_rates ~now ~capacity ~fs active =
  let nlinks = Array.length capacity in
  let avail = Array.copy capacity in
  let demand = Array.make nlinks 0. in
  let counts = Array.make nlinks 0 in
  let order =
    List.sort
      (fun a b -> compare (a.spec.start, a.spec.fs_id) (b.spec.start, b.spec.fs_id))
      active
  in
  List.iter
    (fun f ->
      let request =
        match f.deadline_abs with
        | Some d when d > now -> f.remaining /. (d -. now)
        | Some _ -> f.nic
        | None -> 0.
      in
      if (match f.deadline_abs with Some _ -> infeasible f ~now | None -> false)
      then begin
        (* Quenching. *)
        f.dead <- true;
        f.rate <- 0.
      end
      else begin
        let alloc =
          Array.fold_left
            (fun acc l -> min acc (min (request +. fs.(l)) avail.(l)))
            f.nic f.spec.path
        in
        let alloc = max 0. alloc in
        f.rate <- alloc;
        Array.iter
          (fun l ->
            avail.(l) <- avail.(l) -. alloc;
            demand.(l) <- demand.(l) +. request;
            counts.(l) <- counts.(l) + 1)
          f.spec.path
      end)
    order;
  (* Fair share for the next interval (non-negative, as in §5.1). *)
  for l = 0 to nlinks - 1 do
    if counts.(l) > 0 then
      fs.(l) <- max 0. ((capacity.(l) -. demand.(l)) /. float_of_int counts.(l))
    else fs.(l) <- capacity.(l)
  done

let run ?(dt = 1e-3) ?(init_latency = 5e-4) ?(header_overhead = 56. /. 1500.)
    ?(seed = 1) ?(horizon = 60.) net proto specs =
  let rng = Rng.create seed in
  let goodput_factor = 1. -. header_overhead in
  let flows =
    List.map
      (fun spec ->
        let nic =
          Array.fold_left (fun acc l -> min acc net.capacity.(l)) infinity
            spec.path
        in
        {
          spec;
          deadline_abs = Option.map (fun d -> spec.start +. d) spec.deadline;
          nic = nic *. goodput_factor;
          remaining = bits_of_bytes spec.size;
          rate = 0.;
          done_at = None;
          dead = false;
          rand_crit = Rng.float rng;
          waited = 0.;
          est_level = 0;
        })
      specs
  in
  let pending =
    ref
      (List.sort
         (fun a b -> compare (a.spec.start, a.spec.fs_id) (b.spec.start, b.spec.fs_id))
         flows)
  in
  let active = ref [] in
  let fs = Array.make (Array.length net.capacity) 0. in
  let t = ref (match !pending with [] -> 0. | f :: _ -> f.spec.start) in
  let open_flows = ref (List.length flows) in
  while !open_flows > 0 && !t < horizon do
    (* Admit flows whose init latency elapsed. *)
    let rec admit () =
      match !pending with
      | f :: rest when f.spec.start +. init_latency <= !t +. 1e-12 ->
          pending := rest;
          active := f :: !active;
          admit ()
      | _ -> ()
    in
    admit ();
    let live = List.filter (fun f -> (not f.dead) && f.done_at = None) !active in
    (match proto with
    | Pdq opts -> pdq_rates opts ~now:!t ~capacity:net.capacity live
    | Rcp -> rcp_rates ~capacity:net.capacity live
    | D3 -> d3_rates ~now:!t ~capacity:net.capacity ~fs live);
    (* Advance remaining work; interpolate completion times within the
       step. The goodput factor models header overhead. *)
    List.iter
      (fun f ->
        if f.dead then begin
          decr open_flows;
          active := List.filter (fun g -> g != f) !active
        end
        else begin
          let goodput = f.rate *. goodput_factor in
          if goodput <= 0. then f.waited <- f.waited +. dt
          else begin
            let work = goodput *. dt in
            if work >= f.remaining then begin
              let finish = !t +. (f.remaining /. goodput) in
              f.remaining <- 0.;
              f.done_at <- Some finish;
              decr open_flows;
              active := List.filter (fun g -> g != f) !active
            end
            else begin
              f.remaining <- f.remaining -. work;
              (match proto with
              | Pdq { criticality = Size_estimation quantum; _ } ->
                  let sent_bytes =
                    f.spec.size
                    - int_of_float (f.remaining /. 8.)
                  in
                  f.est_level <- sent_bytes / max 1 quantum
              | _ -> ())
            end
          end
        end)
      live;
    t := !t +. dt
  done;
  let results =
    List.map
      (fun f ->
        let fct = Option.map (fun d -> d -. f.spec.start) f.done_at in
        let met =
          match (f.done_at, f.deadline_abs) with
          | Some c, Some d -> c <= d
          | Some _, None -> true
          | None, _ -> false
        in
        { spec = f.spec; fct; met_deadline = met; terminated = f.dead })
      flows
    |> Array.of_list
  in
  let deadline_flows =
    Array.to_list results
    |> List.filter (fun (r : flow_result) -> r.spec.deadline <> None)
  in
  let application_throughput =
    match deadline_flows with
    | [] -> 1.
    | dls ->
        float_of_int
          (List.length
             (List.filter (fun (r : flow_result) -> r.met_deadline) dls))
        /. float_of_int (List.length dls)
  in
  let fcts =
    Array.to_list results |> List.filter_map (fun (r : flow_result) -> r.fct)
  in
  {
    flows = results;
    application_throughput;
    mean_fct = (match fcts with [] -> 0. | _ -> List.fold_left ( +. ) 0. fcts /. float_of_int (List.length fcts));
    max_fct = List.fold_left max 0. fcts;
    completed = List.length fcts;
  }
