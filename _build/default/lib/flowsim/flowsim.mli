(** Flow-level simulator (§5.5): iteratively computes equilibrium flow
    sending rates on a 1 ms grid instead of simulating packets. Used
    for the large-scale experiments (Fig. 8), the inaccurate-flow-
    information study (Fig. 10) and flow aging (Fig. 12), exactly as
    the paper does.

    Protocol models:
    - PDQ: criticality-ordered water-filling — each flow, most critical
      first, grabs the minimum residual capacity along its path (this
      is the paper's centralized algorithm of §3, which the distributed
      protocol provably converges to within Pmax+1 RTTs); optional
      Early Termination, flow aging (§7) and alternative criticality
      modes (§5.6).
    - RCP: global max-min fairness (water-filling).
    - D3: per-link first-come-first-reserve grants of
      [remaining/(deadline−now)] in flow arrival order plus an equal
      share of the leftover, with non-negative fair share and sender
      quenching. Equals RCP when no flow has a deadline.

    Protocol inefficiencies are modelled as in the paper: a flow
    initialization latency before a new flow transmits, and a constant
    header-overhead factor on goodput. *)

type criticality_mode =
  | Perfect
      (** Senders know exact remaining size (EDF ▸ SRPT ▸ id). *)
  | Random_criticality
      (** §5.6: a random per-flow priority chosen at flow start. *)
  | Size_estimation of int
      (** §5.6: criticality = bytes sent so far, updated every given
          quantum (50 KB in the paper); smaller estimate = more
          critical. *)

type pdq_opts = {
  early_termination : bool;
  aging_rate : float option;
      (** §7: α — criticality's T is divided by 2^(α·wait/100 ms). *)
  criticality : criticality_mode;
}

val pdq_defaults : pdq_opts
(** Early termination on, no aging, perfect information. *)

type proto = Pdq of pdq_opts | Rcp | D3

type flow_spec = {
  fs_id : int;
  path : int array;         (** Directed link ids along the route. *)
  size : int;               (** Bytes. *)
  deadline : float option;  (** Relative to start, seconds. *)
  start : float;
}

type flow_result = {
  spec : flow_spec;
  fct : float option;
  met_deadline : bool;
  terminated : bool;
}

type result = {
  flows : flow_result array;
  application_throughput : float;
  mean_fct : float;
  max_fct : float;
  completed : int;
}

type net = { capacity : float array }
(** Capacity (bits/s) per directed link id. *)

val net_of_topology : Pdq_net.Topology.t -> net
(** Extract link capacities from a packet-level topology so both
    simulators run on identical networks. *)

val run :
  ?dt:float ->
  ?init_latency:float ->
  ?header_overhead:float ->
  ?seed:int ->
  ?horizon:float ->
  net ->
  proto ->
  flow_spec list ->
  result
(** Defaults: [dt] = 1 ms, [init_latency] = 0.5 ms (≈ 2 datacenter
    RTTs), [header_overhead] = 56/1500, [horizon] = 60 s. *)
