lib/net/link.ml: Packet Pdq_engine Queue
