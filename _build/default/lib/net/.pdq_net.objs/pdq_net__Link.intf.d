lib/net/link.mli: Packet Pdq_engine
