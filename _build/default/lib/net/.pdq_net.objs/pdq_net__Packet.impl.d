lib/net/packet.ml: Format
