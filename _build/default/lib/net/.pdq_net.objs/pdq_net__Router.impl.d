lib/net/router.ml: Array Hashtbl Link List Queue Topology
