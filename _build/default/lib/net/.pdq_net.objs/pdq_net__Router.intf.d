lib/net/router.mli: Topology
