lib/net/topology.ml: Array Link List Packet Pdq_engine Printf
