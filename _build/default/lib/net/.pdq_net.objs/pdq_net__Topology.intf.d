lib/net/topology.mli: Link Packet Pdq_engine
