type t = {
  sim : Pdq_engine.Sim.t;
  id : int;
  src : int;
  dst : int;
  rate : float;
  prop_delay : float;
  proc_delay : float;
  buffer_bytes : int;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable receiver : Packet.t -> unit;
  mutable loss_rate : float;
  mutable loss_rng : Pdq_engine.Rng.t option;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes_sent : int;
  (* (time, cumulative bytes) checkpoints for windowed utilization. *)
  mutable last_window_start : float;
  mutable last_window_bytes : int;
  mutable tap : (now:float -> bytes:int -> unit) option;
}

let create ~sim ~id ~src ~dst ~rate ~prop_delay ~proc_delay ~buffer_bytes () =
  {
    sim;
    id;
    src;
    dst;
    rate;
    prop_delay;
    proc_delay;
    buffer_bytes;
    queue = Queue.create ();
    queued_bytes = 0;
    busy = false;
    receiver = (fun _ -> failwith "Link: receiver not set");
    loss_rate = 0.;
    loss_rng = None;
    delivered = 0;
    dropped = 0;
    bytes_sent = 0;
    last_window_start = 0.;
    last_window_bytes = 0;
    tap = None;
  }

let id t = t.id
let src t = t.src
let dst t = t.dst
let rate t = t.rate
let set_receiver t f = t.receiver <- f
let queue_bytes t = t.queued_bytes
let queue_packets t = Queue.length t.queue

let set_loss t ~rate ~rng =
  t.loss_rate <- rate;
  t.loss_rng <- Some rng

let delivered t = t.delivered
let dropped t = t.dropped
let bytes_sent t = t.bytes_sent
let on_transmit t f = t.tap <- Some f

let utilization t ~since ~now =
  ignore since;
  let window = now -. t.last_window_start in
  if window <= 0. then 0.
  else begin
    let bytes = t.bytes_sent - t.last_window_bytes in
    t.last_window_start <- now;
    t.last_window_bytes <- t.bytes_sent;
    Pdq_engine.Units.bytes_to_bits bytes /. (t.rate *. window)
  end

let rec start_transmission t =
  match Queue.peek_opt t.queue with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let tx = Pdq_engine.Units.tx_time ~bytes:pkt.Packet.wire_bytes ~rate:t.rate in
      ignore
        (Pdq_engine.Sim.schedule t.sim ~delay:tx (fun () ->
             ignore (Queue.pop t.queue);
             t.queued_bytes <- t.queued_bytes - pkt.Packet.wire_bytes;
             t.bytes_sent <- t.bytes_sent + pkt.Packet.wire_bytes;
             (match t.tap with
             | Some f ->
                 f ~now:(Pdq_engine.Sim.now t.sim) ~bytes:pkt.Packet.wire_bytes
             | None -> ());
             t.delivered <- t.delivered + 1;
             let latency = t.prop_delay +. t.proc_delay in
             ignore
               (Pdq_engine.Sim.schedule t.sim ~delay:latency (fun () ->
                    t.receiver pkt));
             start_transmission t))

let send t pkt =
  let lost =
    t.loss_rate > 0.
    &&
    match t.loss_rng with
    | Some rng -> Pdq_engine.Rng.bool rng t.loss_rate
    | None -> false
  in
  if lost then t.dropped <- t.dropped + 1
  else if t.queued_bytes + pkt.Packet.wire_bytes > t.buffer_bytes then
    t.dropped <- t.dropped + 1 (* FIFO tail drop *)
  else begin
    Queue.push pkt t.queue;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.wire_bytes;
    if not t.busy then start_transmission t
  end
