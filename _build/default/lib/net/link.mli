(** One direction of a network cable: a FIFO tail-drop output queue
    feeding a store-and-forward transmitter, then propagation and
    per-hop processing delay (§5.1: 11 µs transmission for an MTU at
    1 Gbps, 0.1 µs propagation, 25 µs processing; 4 MByte buffer).

    Optional Bernoulli loss injection models the lossy-channel
    experiments of Fig. 9. *)

type t

val create :
  sim:Pdq_engine.Sim.t ->
  id:int ->
  src:int ->
  dst:int ->
  rate:float ->
  prop_delay:float ->
  proc_delay:float ->
  buffer_bytes:int ->
  unit ->
  t
(** [src]/[dst] are node ids (head and tail of the directed link);
    [rate] is in bits/s. *)

val id : t -> int
val src : t -> int
val dst : t -> int
val rate : t -> float

val set_receiver : t -> (Packet.t -> unit) -> unit
(** Install the delivery callback (the destination node's packet
    handler). Must be called before the first {!send}. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet. It is dropped when the buffer would overflow
    (tail drop) or the loss process fires; otherwise it is serialized
    at line rate and handed to the receiver after propagation +
    processing delay. *)

val queue_bytes : t -> int
(** Bytes currently waiting in the output queue (incl. the packet being
    serialized). *)

val queue_packets : t -> int

val set_loss : t -> rate:float -> rng:Pdq_engine.Rng.t -> unit
(** Drop each arriving packet independently with probability [rate]. *)

(** Cumulative counters, for utilization and drop statistics. *)

val delivered : t -> int
val dropped : t -> int
val bytes_sent : t -> int

val utilization : t -> since:float -> now:float -> float
(** Fraction of link capacity used between [since] and [now], based on
    bytes serialized in that window (sampled cheaply; call sparingly). *)

val on_transmit : t -> (now:float -> bytes:int -> unit) -> unit
(** Register a tap called at the end of each packet serialization —
    used to record utilization and queue time series. *)
