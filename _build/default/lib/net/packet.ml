type kind = Syn | Syn_ack | Data | Ack | Probe | Term
type payload = ..
type payload += No_payload

type t = {
  uid : int;
  flow : int;
  src : int;
  dst : int;
  kind : kind;
  wire_bytes : int;
  payload_bytes : int;
  seq : int;
  mutable payload : payload;
  sent_at : float;
}

let mtu = 1500
let header_bytes = 40
let max_payload ~scheduling_header = mtu - header_bytes - scheduling_header

let uid_counter = ref 0

let make ~flow ~src ~dst ~kind ?(payload_bytes = 0) ?(seq = 0) ?(extra_header = 0)
    ~payload ~now () =
  incr uid_counter;
  {
    uid = !uid_counter;
    flow;
    src;
    dst;
    kind;
    wire_bytes = header_bytes + extra_header + payload_bytes;
    payload_bytes;
    seq;
    payload;
    sent_at = now;
  }

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Syn -> "SYN"
    | Syn_ack -> "SYN-ACK"
    | Data -> "DATA"
    | Ack -> "ACK"
    | Probe -> "PROBE"
    | Term -> "TERM")
