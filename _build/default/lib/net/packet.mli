(** Packets exchanged by the packet-level simulator.

    The network layer is protocol-agnostic: each transport attaches its
    own control information by extending the open {!payload} type.
    Wire sizes follow §5.1/§7 of the paper: 1500-byte MTU, 40 bytes of
    TCP/IP headers, plus the 16-byte PDQ scheduling header for
    PDQ-family protocols. *)

type kind =
  | Syn   (** Flow initialization. *)
  | Syn_ack
  | Data
  | Ack
  | Probe (** Scheduling header, no data content (paused PDQ flows). *)
  | Term  (** Flow termination (completion or Early Termination). *)

type payload = ..
(** Per-protocol control information; transports extend this type. *)

type payload += No_payload

type t = {
  uid : int;          (** Unique packet id (diagnostics). *)
  flow : int;         (** Flow (or subflow) id. *)
  src : int;          (** Source host node id. *)
  dst : int;          (** Destination host node id. *)
  kind : kind;
  wire_bytes : int;   (** Total size on the wire, incl. headers. *)
  payload_bytes : int;(** Application bytes carried ([Data] only). *)
  seq : int;          (** First application byte offset carried. *)
  mutable payload : payload; (** Mutable: switches rewrite headers in place. *)
  sent_at : float;    (** Departure time from the original sender. *)
}

val mtu : int
(** Maximum transmission unit: 1500 bytes. *)

val header_bytes : int
(** TCP/IP header bytes per packet: 40. *)

val max_payload : scheduling_header:int -> int
(** Application bytes that fit in one MTU given the extra scheduling
    header size (0 for TCP/RCP-style protocols, 16 for PDQ/D3). *)

val make :
  flow:int ->
  src:int ->
  dst:int ->
  kind:kind ->
  ?payload_bytes:int ->
  ?seq:int ->
  ?extra_header:int ->
  payload:payload ->
  now:float ->
  unit ->
  t
(** Create a packet; [wire_bytes] is computed as
    [header_bytes + extra_header + payload_bytes]. *)

val pp_kind : Format.formatter -> kind -> unit
