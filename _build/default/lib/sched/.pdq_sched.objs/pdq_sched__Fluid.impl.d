lib/sched/fluid.ml: Array Hashtbl List Option
