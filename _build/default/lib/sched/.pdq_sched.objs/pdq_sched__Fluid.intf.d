lib/sched/fluid.mli:
