type job = {
  job_id : int;
  size : float;
  release : float;
  deadline : float option;
}

let job ?deadline ?(release = 0.) ~id ~size () =
  { job_id = id; size; release; deadline }

type completion = { c_job : int; finish : float }

(* Generic fluid simulation. [policy ~now active] receives the active
   jobs paired with their remaining work and returns each job's share
   of the link (shares should sum to <= 1); between events rates are
   constant. Events are job releases and completions. *)
let simulate ~rate ~policy jobs =
  let arr =
    Array.of_list
      (List.sort
         (fun a b -> compare (a.release, a.job_id) (b.release, b.job_id))
         jobs)
  in
  let n = Array.length arr in
  let remaining = Array.map (fun j -> j.size) arr in
  let finished = Array.make n false in
  let completions = ref [] in
  let completed = ref 0 in
  let t = ref (if n = 0 then 0. else arr.(0).release) in
  let eps = 1e-12 in
  while !completed < n do
    let active = ref [] in
    for i = n - 1 downto 0 do
      if (not finished.(i)) && arr.(i).release <= !t +. eps then
        active := i :: !active
    done;
    let next_release = ref infinity in
    for i = 0 to n - 1 do
      if (not finished.(i)) && arr.(i).release > !t +. eps then
        next_release := min !next_release arr.(i).release
    done;
    match !active with
    | [] -> t := !next_release (* idle until the next arrival *)
    | active ->
        let shares =
          policy ~now:!t
            (List.map (fun i -> (arr.(i), remaining.(i))) active)
        in
        let rates = List.map (fun s -> s *. rate) shares in
        let horizon =
          List.fold_left2
            (fun acc i r ->
              if r > eps then min acc (!t +. (remaining.(i) /. r)) else acc)
            !next_release active rates
        in
        if horizon = infinity then
          failwith "Fluid.simulate: no progress possible";
        let dt = horizon -. !t in
        List.iter2
          (fun i r ->
            if r > eps then begin
              remaining.(i) <- remaining.(i) -. (r *. dt);
              if remaining.(i) <= 1e-9 *. (arr.(i).size +. 1.) then begin
                remaining.(i) <- 0.;
                finished.(i) <- true;
                incr completed;
                completions :=
                  { c_job = arr.(i).job_id; finish = horizon } :: !completions
              end
            end)
          active rates;
        t := horizon
  done;
  List.rev !completions

let equal_shares k = List.init k (fun _ -> 1. /. float_of_int k)

let fair_sharing ~rate jobs =
  simulate ~rate
    ~policy:(fun ~now:_ active -> equal_shares (List.length active))
    jobs

(* Give the whole link to the best job under [better]. *)
let winner_takes_all better ~now:_ active =
  let best =
    List.fold_left
      (fun acc jr -> match acc with None -> Some jr | Some b -> Some (better b jr))
      None active
  in
  match best with
  | None -> []
  | Some (bj, _) ->
      List.map (fun (j, _) -> if j.job_id = bj.job_id then 1. else 0.) active

let srpt ~rate jobs =
  let better (ja, ra) (jb, rb) =
    if (rb, jb.job_id) < (ra, ja.job_id) then (jb, rb) else (ja, ra)
  in
  simulate ~rate ~policy:(winner_takes_all better) jobs

let edf ~rate jobs =
  let better (ja, ra) (jb, rb) =
    let key j r =
      match j.deadline with
      | Some d -> (0, d, r, j.job_id)
      | None -> (1, 0., r, j.job_id)
    in
    if key jb rb < key ja ra then (jb, rb) else (ja, ra)
  in
  simulate ~rate ~policy:(winner_takes_all better) jobs

(* Fluid D3: first-come first-reserve. In arrival order every deadline
   job reserves remaining/(deadline - now) (capped by what is left);
   the leftover is split equally among all active jobs. Shares are in
   units of the link, so requests are normalized by [rate]. *)
let d3_fluid ~rate jobs =
  simulate ~rate
    ~policy:(fun ~now active ->
      let order =
        List.sort
          (fun ((a : job), _) ((b : job), _) ->
            compare (a.release, a.job_id) (b.release, b.job_id))
          (List.map (fun (j, r) -> (j, r)) active)
      in
      let grants = Hashtbl.create 8 in
      let avail = ref 1. in
      List.iter
        (fun (j, rem) ->
          let request =
            match j.deadline with
            | Some d when d > now -> rem /. (d -. now) /. rate
            | Some _ -> 1. (* past deadline: ask for everything *)
            | None -> 0.
          in
          let g = min request !avail in
          avail := !avail -. g;
          Hashtbl.replace grants j.job_id g)
        order;
      let bonus = !avail /. float_of_int (List.length active) in
      List.map
        (fun (j, _) ->
          (match Hashtbl.find_opt grants j.job_id with Some g -> g | None -> 0.)
          +. bonus)
        active)
    jobs

let mean_completion_time completions =
  match completions with
  | [] -> 0.
  | cs ->
      List.fold_left (fun acc c -> acc +. c.finish) 0. cs
      /. float_of_int (List.length cs)

let deadlines_met jobs completions =
  let finish_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun c -> Hashtbl.replace tbl c.c_job c.finish) completions;
    fun id -> Hashtbl.find_opt tbl id
  in
  List.fold_left
    (fun acc j ->
      match (finish_of j.job_id, j.deadline) with
      | Some f, Some d when f <= d +. 1e-9 -> acc + 1
      | Some _, None -> acc + 1
      | _ -> acc)
    0 jobs

(* Moore-Hodgson: EDF order; whenever the running completion time
   exceeds the current job's deadline, drop the largest job kept so
   far. Optimal for minimizing the number of tardy jobs with equal
   release times on one machine. *)
let moore_hodgson ~rate jobs =
  let deadline_jobs =
    List.filter (fun j -> j.deadline <> None) jobs
    |> List.sort (fun a b ->
           compare (Option.get a.deadline, a.job_id)
             (Option.get b.deadline, b.job_id))
  in
  let no_deadline = List.filter (fun j -> j.deadline = None) jobs in
  let kept = ref [] in
  let elapsed = ref 0. in
  List.iter
    (fun j ->
      kept := j :: !kept;
      elapsed := !elapsed +. (j.size /. rate);
      match j.deadline with
      | Some d when !elapsed > d +. 1e-9 -> (
          (* Drop the largest kept job. *)
          let largest =
            List.fold_left
              (fun acc k ->
                match acc with
                | None -> Some k
                | Some b -> if k.size > b.size then Some k else Some b)
              None !kept
          in
          match largest with
          | Some l ->
              kept := List.filter (fun k -> k.job_id <> l.job_id) !kept;
              elapsed := !elapsed -. (l.size /. rate)
          | None -> ())
      | Some _ | None -> ())
    deadline_jobs;
  List.map (fun j -> j.job_id) (List.rev !kept)
  @ List.map (fun j -> j.job_id) no_deadline

let optimal_deadline_throughput ~rate jobs =
  let deadline_jobs = List.filter (fun j -> j.deadline <> None) jobs in
  match deadline_jobs with
  | [] -> 1.
  | _ ->
      let kept = moore_hodgson ~rate jobs in
      let kept_deadline =
        List.filter
          (fun id ->
            List.exists (fun j -> j.job_id = id && j.deadline <> None) jobs)
          kept
      in
      float_of_int (List.length kept_deadline)
      /. float_of_int (List.length deadline_jobs)
