(** Centralized fluid-model schedulers on a single bottleneck link.

    These are the analytical baselines of the paper: the motivating
    example of Fig. 1 (fair sharing vs. SJF/EDF vs. D3) and the
    "Optimal" curve of Fig. 3 (EDF order + discarding the minimum
    number of tardy flows, Moore–Hodgson / Algorithm 3.3.1 in Pinedo,
    plus SRPT for mean completion time).

    Jobs use abstract size units; [rate] converts size to time
    (completion times are in size/rate units). All jobs may have
    release times; the classic optimality results assume simultaneous
    release, which is the paper's query-aggregation setting. *)

type job = {
  job_id : int;
  size : float;             (** Remaining work, size units. *)
  release : float;          (** Arrival time. *)
  deadline : float option;  (** Absolute deadline. *)
}

val job : ?deadline:float -> ?release:float -> id:int -> size:float -> unit -> job

type completion = { c_job : int; finish : float }

val fair_sharing : rate:float -> job list -> completion list
(** Processor sharing: all active jobs share the link equally
    (TCP/RCP/DCTCP idealization, Fig. 1b). *)

val srpt : rate:float -> job list -> completion list
(** Preemptive shortest-remaining-processing-time — optimal for mean
    completion time on one link; equals SJF for simultaneous release
    (Fig. 1c). *)

val edf : rate:float -> job list -> completion list
(** Preemptive earliest-deadline-first (jobs without deadlines run
    after all deadline jobs, in SRPT order among themselves). *)

val d3_fluid : rate:float -> job list -> completion list
(** Fluid D3 (Fig. 1d): in arrival order, each deadline job reserves
    [remaining/(deadline - now)]; leftover capacity is split equally.
    Reservations are refreshed continuously; no termination. *)

val mean_completion_time : completion list -> float

val deadlines_met : job list -> completion list -> int
(** Number of jobs finishing on or before their deadline (jobs without
    deadlines count as met if they finish). *)

val moore_hodgson : rate:float -> job list -> int list
(** For simultaneously released jobs: the maximum-cardinality subset
    that can all meet their deadlines when scheduled by EDF
    (Moore–Hodgson). Returns the kept job ids; the complement is the
    minimum set of tardy/discarded jobs. Jobs without deadlines are
    always "kept" (they cannot be tardy). *)

val optimal_deadline_throughput : rate:float -> job list -> float
(** Fraction of deadline jobs the omniscient scheduler satisfies:
    |Moore–Hodgson kept deadline jobs| / |deadline jobs| (1.0 when
    there are none). *)
