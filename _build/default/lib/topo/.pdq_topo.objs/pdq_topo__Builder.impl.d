lib/topo/builder.ml: Array Hashtbl List Pdq_engine Pdq_net
