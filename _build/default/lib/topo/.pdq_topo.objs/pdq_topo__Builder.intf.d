lib/topo/builder.mli: Pdq_engine Pdq_net
