module Topology = Pdq_net.Topology

type built = { topo : Topology.t; hosts : int array }

let single_bottleneck ?params ~sim ~senders () =
  let topo = Topology.create ~sim () in
  let sw = Topology.add_switch topo in
  let tx = Array.init senders (fun _ -> Topology.add_host topo) in
  Array.iter (fun h -> Topology.connect ?params topo h sw) tx;
  let rx = Topology.add_host topo in
  Topology.connect ?params topo sw rx;
  let hosts = Array.append tx [| rx |] in
  ({ topo; hosts }, rx)

let single_rooted_tree ?params ?(tors = 4) ?(hosts_per_tor = 3) ~sim () =
  let topo = Topology.create ~sim () in
  let root = Topology.add_switch topo in
  let hosts = ref [] in
  for rack = 0 to tors - 1 do
    let tor = Topology.add_switch topo in
    Topology.connect ?params topo root tor;
    for _ = 1 to hosts_per_tor do
      let h = Topology.add_host ~rack topo in
      Topology.connect ?params topo tor h;
      hosts := h :: !hosts
    done
  done;
  { topo; hosts = Array.of_list (List.rev !hosts) }

let fat_tree ?params ~sim ~k () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Builder.fat_tree: k must be even";
  let topo = Topology.create ~sim () in
  let half = k / 2 in
  let cores = Array.init (half * half) (fun _ -> Topology.add_switch topo) in
  let hosts = ref [] in
  for pod = 0 to k - 1 do
    let aggs = Array.init half (fun _ -> Topology.add_switch topo) in
    let edges = Array.init half (fun _ -> Topology.add_switch topo) in
    (* Aggregation <-> edge full bipartite inside the pod. *)
    Array.iter
      (fun agg -> Array.iter (fun edge -> Topology.connect ?params topo agg edge) edges)
      aggs;
    (* Aggregation i connects to cores [i*half .. i*half+half-1]. *)
    Array.iteri
      (fun i agg ->
        for j = 0 to half - 1 do
          Topology.connect ?params topo agg cores.((i * half) + j)
        done)
      aggs;
    (* half hosts per edge switch. *)
    Array.iteri
      (fun e edge ->
        let rack = (pod * half) + e in
        for _ = 1 to half do
          let h = Topology.add_host ~rack topo in
          Topology.connect ?params topo edge h;
          hosts := h :: !hosts
        done)
      edges
  done;
  { topo; hosts = Array.of_list (List.rev !hosts) }

let fat_tree_for_servers ?params ~sim ~servers () =
  let rec find k = if k * k * k / 4 >= servers then k else find (k + 2) in
  fat_tree ?params ~sim ~k:(find 2) ()

let bcube ?params ~sim ~n ~k () =
  if n < 2 then invalid_arg "Builder.bcube: need n >= 2";
  let num_hosts = int_of_float (float_of_int n ** float_of_int (k + 1)) in
  let topo = Topology.create ~sim () in
  let hosts = Array.init num_hosts (fun _ -> Topology.add_host topo) in
  (* Level l has n^k switches; switch s at level l connects the n hosts
     whose addresses agree with s on all digits except digit l. *)
  let num_per_level = num_hosts / n in
  for level = 0 to k do
    for s = 0 to num_per_level - 1 do
      let sw = Topology.add_switch topo in
      (* Split s into (high digits above level, low digits below). *)
      let stride = int_of_float (float_of_int n ** float_of_int level) in
      let low = s mod stride and high = s / stride in
      for digit = 0 to n - 1 do
        let host = (high * stride * n) + (digit * stride) + low in
        Topology.connect ?params topo sw hosts.(host)
      done
    done
  done;
  { topo; hosts }

(* BCube address routing: correct the differing digits of the source
   address one at a time; each correction of digit [p] goes through the
   level-p switch shared by the two hosts. Starting the correction
   order at different positions yields parallel paths using different
   source ports. *)
let bcube_paths ~n ~k built ~src ~dst =
  let num_hosts = Array.length built.hosts in
  let num_per_level = num_hosts / n in
  let pow_n = Array.init (k + 2) (fun i -> int_of_float (float_of_int n ** float_of_int i)) in
  let digit h i = h / pow_n.(i) mod n in
  let set_digit h i v = h + ((v - digit h i) * pow_n.(i)) in
  let switch_of ~level h =
    let stride = pow_n.(level) in
    let low = h mod stride and high = h / (stride * n) in
    num_hosts + (level * num_per_level) + ((high * stride) + low)
  in
  if src = dst then invalid_arg "Builder.bcube_paths: src = dst";
  let paths = ref [] in
  for r = 0 to k do
    let order =
      List.init (k + 1) (fun i -> (r + i) mod (k + 1))
      |> List.filter (fun p -> digit src p <> digit dst p)
    in
    let rec walk cur acc = function
      | [] -> List.rev acc
      | p :: rest ->
          let next = set_digit cur p (digit dst p) in
          walk next (next :: switch_of ~level:p cur :: acc) rest
    in
    let path = Array.of_list (src :: walk src [] order) in
    if not (List.exists (fun q -> q = path) !paths) then paths := path :: !paths
  done;
  List.rev !paths

let jellyfish ?params ~sim ~rng ~switches ~ports ~net_ports () =
  if net_ports >= ports then
    invalid_arg "Builder.jellyfish: net_ports must be < ports";
  let topo = Topology.create ~sim () in
  let sws = Array.init switches (fun _ -> Topology.add_switch topo) in
  let free = Array.make switches net_ports in
  let edges = Hashtbl.create (switches * net_ports) in
  let edge_key a b = (min a b * switches) + max a b in
  let linked a b = Hashtbl.mem edges (edge_key a b) in
  let add_edge a b =
    Hashtbl.replace edges (edge_key a b) ();
    free.(a) <- free.(a) - 1;
    free.(b) <- free.(b) - 1;
    Topology.connect ?params topo sws.(a) sws.(b)
  in
  (* Random regular graph: repeatedly join two random switches with free
     ports; when stuck, the Jellyfish incremental fix-up would rewire an
     existing edge — at our sizes a bounded number of retries suffices
     and leftover odd ports are simply left unused. *)
  let attempts = ref 0 in
  let max_attempts = 200 * switches * net_ports in
  let candidates () =
    Array.to_list (Array.mapi (fun i f -> (i, f)) free)
    |> List.filter (fun (_, f) -> f > 0)
    |> List.map fst
  in
  let rec fill () =
    let cand = candidates () in
    if List.length cand >= 2 && !attempts < max_attempts then begin
      incr attempts;
      let arr = Array.of_list cand in
      let a = arr.(Pdq_engine.Rng.int rng (Array.length arr)) in
      let b = arr.(Pdq_engine.Rng.int rng (Array.length arr)) in
      if a <> b && not (linked a b) then add_edge a b;
      fill ()
    end
  in
  fill ();
  let hosts_per_switch = ports - net_ports in
  let hosts = ref [] in
  Array.iteri
    (fun rack sw ->
      for _ = 1 to hosts_per_switch do
        let h = Topology.add_host ~rack topo in
        Topology.connect ?params topo sw h;
        hosts := h :: !hosts
      done)
    sws;
  { topo; hosts = Array.of_list (List.rev !hosts) }
