(** Data-center topology constructors used by the paper's evaluation
    (§5.1, §5.5, §6): single-bottleneck, two-level single-rooted tree,
    fat-tree, BCube and Jellyfish. Every constructor returns the
    {!Pdq_net.Topology.t} plus the host list in a {!built} record. *)

type built = {
  topo : Pdq_net.Topology.t;
  hosts : int array; (** Host node ids in construction order. *)
}

val single_bottleneck :
  ?params:Pdq_net.Topology.link_params ->
  sim:Pdq_engine.Sim.t ->
  senders:int ->
  unit ->
  built * int
(** Fig. 2b: [senders] hosts, one switch, one receiver. The receiver is
    the extra int (it is also [hosts.(senders)]); the bottleneck is the
    switch→receiver link. *)

val single_rooted_tree :
  ?params:Pdq_net.Topology.link_params ->
  ?tors:int ->
  ?hosts_per_tor:int ->
  sim:Pdq_engine.Sim.t ->
  unit ->
  built
(** Fig. 2a: the default 17-node topology — a root switch, [tors]=4
    top-of-rack switches, [hosts_per_tor]=3 servers each (12 servers),
    all links 1 Gbps. Hosts carry their ToR index as rack id. *)

val fat_tree :
  ?params:Pdq_net.Topology.link_params ->
  sim:Pdq_engine.Sim.t ->
  k:int ->
  unit ->
  built
(** Standard k-ary fat-tree (k even): k pods of k/2 edge and k/2
    aggregation switches, (k/2)^2 cores, k^3/4 hosts. Rack id = edge
    switch index. *)

val fat_tree_for_servers :
  ?params:Pdq_net.Topology.link_params ->
  sim:Pdq_engine.Sim.t ->
  servers:int ->
  unit ->
  built
(** Smallest even-k fat-tree with at least [servers] hosts. *)

val bcube :
  ?params:Pdq_net.Topology.link_params ->
  sim:Pdq_engine.Sim.t ->
  n:int ->
  k:int ->
  unit ->
  built
(** BCube(n,k): n^(k+1) servers each with k+1 ports, k+1 levels of
    n-port switches (server-centric: servers forward traffic). The
    paper uses dual-port BCube (k=1) for Fig. 8c and BCube(2,3) —
    4-port servers — for Fig. 11. *)

val bcube_paths :
  n:int -> k:int -> built -> src:int -> dst:int -> int array list
(** BCube address-based routing (§6 of the paper, from the BCube
    paper): up to k+1 parallel node paths between two servers, one per
    rotation of the digit-correction order. Paths alternate
    host/switch/host…; different rotations leave the source through
    different server ports, which is exactly the diversity M-PDQ
    stripes subflows over. The [built] value must come from {!bcube}
    with the same [n]/[k]. *)

val jellyfish :
  ?params:Pdq_net.Topology.link_params ->
  sim:Pdq_engine.Sim.t ->
  rng:Pdq_engine.Rng.t ->
  switches:int ->
  ports:int ->
  net_ports:int ->
  unit ->
  built
(** Jellyfish: a random [net_ports]-regular graph over [switches]
    switches of [ports] ports; the remaining [ports - net_ports] ports
    of each switch attach hosts (Fig. 8d uses 24-port switches with a
    2:1 network:server port ratio → 16 network ports, 8 hosts). *)
