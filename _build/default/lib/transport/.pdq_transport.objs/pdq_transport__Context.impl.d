lib/transport/context.ml: Array Hashtbl List Option Pdq_engine Pdq_net Printf
