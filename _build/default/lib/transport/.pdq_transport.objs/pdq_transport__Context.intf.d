lib/transport/context.mli: Pdq_engine Pdq_net
