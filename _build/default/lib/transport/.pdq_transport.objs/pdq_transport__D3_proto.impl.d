lib/transport/d3_proto.ml: Array Context Hashtbl Payloads Pdq_engine Pdq_net Printf Rate_flow Sys
