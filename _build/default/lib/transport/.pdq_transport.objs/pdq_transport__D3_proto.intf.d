lib/transport/d3_proto.mli: Context
