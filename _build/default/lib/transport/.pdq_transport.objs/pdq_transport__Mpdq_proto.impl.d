lib/transport/mpdq_proto.ml: Array Context List Option Pdq_engine Pdq_net Pdq_proto
