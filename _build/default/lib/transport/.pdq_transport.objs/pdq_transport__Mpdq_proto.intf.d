lib/transport/mpdq_proto.mli: Context Pdq_core
