lib/transport/payloads.ml: Pdq_core Pdq_net
