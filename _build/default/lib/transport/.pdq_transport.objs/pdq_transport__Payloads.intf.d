lib/transport/payloads.mli: Pdq_core Pdq_net
