lib/transport/pdq_proto.ml: Array Context Hashtbl List Payloads Pdq_core Pdq_engine Pdq_net Printf Rx_buffer Sys
