lib/transport/pdq_proto.mli: Context Pdq_core
