lib/transport/rate_flow.ml: Context Hashtbl Payloads Pdq_engine Pdq_net Rx_buffer
