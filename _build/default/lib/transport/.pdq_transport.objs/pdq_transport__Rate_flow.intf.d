lib/transport/rate_flow.mli: Context Pdq_net
