lib/transport/rcp_proto.ml: Array Context Hashtbl List Payloads Pdq_engine Pdq_net Rate_flow
