lib/transport/rcp_proto.mli: Context
