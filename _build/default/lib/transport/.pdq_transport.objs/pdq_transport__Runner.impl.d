lib/transport/runner.ml: Array Context D3_proto List Mpdq_proto Option Pdq_core Pdq_engine Pdq_net Pdq_proto Printf Rcp_proto Tcp_proto
