lib/transport/runner.mli: Context Pdq_core Pdq_net
