lib/transport/rx_buffer.ml: List Option
