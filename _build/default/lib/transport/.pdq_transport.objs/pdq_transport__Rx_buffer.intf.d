lib/transport/rx_buffer.mli:
