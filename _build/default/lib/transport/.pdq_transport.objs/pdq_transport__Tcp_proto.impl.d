lib/transport/tcp_proto.ml: Context Hashtbl Payloads Pdq_engine Pdq_net Rx_buffer
