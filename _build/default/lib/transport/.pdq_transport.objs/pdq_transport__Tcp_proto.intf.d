lib/transport/tcp_proto.mli: Context
