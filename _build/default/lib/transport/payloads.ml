type ack_info = { cum_ack : int; echo_ts : float }
type rcp_ctrl = { mutable rcp_rate : float; rcp_rtt : float }

type d3_ctrl = {
  d3_desired : float;
  mutable d3_allocated : float;
  d3_rtt : float;
}

type Pdq_net.Packet.payload +=
  | Pdq_sched of Pdq_core.Header.t * ack_info
  | Rcp_ctrl of rcp_ctrl * ack_info
  | D3_ctrl of d3_ctrl * ack_info
  | Tcp_ctrl of ack_info

let pdq_header_bytes = Pdq_core.Header.wire_bytes
let rcp_header_bytes = 8
let d3_header_bytes = 12

let ack_of = function
  | Pdq_sched (_, a) | Rcp_ctrl (_, a) | D3_ctrl (_, a) | Tcp_ctrl a -> Some a
  | _ -> None
