(** Per-protocol packet payloads: each transport extends
    {!Pdq_net.Packet.payload} with its own control block. ACK-direction
    blocks carry the cumulative acknowledged byte count and an echoed
    departure timestamp for RTT sampling. *)

type ack_info = {
  cum_ack : int;   (** Receiver's cumulative in-order byte count. *)
  echo_ts : float; (** [sent_at] of the packet being acknowledged. *)
}

type rcp_ctrl = {
  mutable rcp_rate : float; (** Bottleneck fair rate, lowered per hop. *)
  rcp_rtt : float;          (** Sender's RTT estimate, for switch averaging. *)
}

type d3_ctrl = {
  d3_desired : float;
      (** Requested rate: remaining size / time to deadline (0 for
          best-effort flows). *)
  mutable d3_allocated : float;
      (** Granted rate, lowered per hop (FCFS + fair share). *)
  d3_rtt : float;
}

type Pdq_net.Packet.payload +=
  | Pdq_sched of Pdq_core.Header.t * ack_info
      (** PDQ scheduling header (mutated by switches in flight) plus
          ack info (meaningful on the reverse path). *)
  | Rcp_ctrl of rcp_ctrl * ack_info
  | D3_ctrl of d3_ctrl * ack_info
  | Tcp_ctrl of ack_info  (** TCP needs only the ack block. *)

val pdq_header_bytes : int
(** Extra wire bytes of the PDQ scheduling header (16, §7). *)

val rcp_header_bytes : int
val d3_header_bytes : int

val ack_of : Pdq_net.Packet.payload -> ack_info option
(** The ack block of any protocol payload, if present. *)
