(** Shared machinery for explicit-rate transports without pausing
    (RCP, D3): a paced sender clocked by switch-granted rates carried
    in packet headers, a header-echoing receiver, go-back-N loss
    recovery, and optional quenching (D3's deadline-based flow
    termination).

    Protocol specifics are injected through {!ops}: how to build a
    forward payload, how to extract the granted rate from an ACK, how
    the receiver reflects a header, and when to quench. *)

type sender

type ops = {
  extra_header : int;
      (** Wire bytes of the protocol's scheduling header. *)
  min_rate : float;
      (** Rate floor so a flow always makes progress (explicit-rate
          protocols never pause). *)
  fwd_payload : sender -> Pdq_net.Packet.kind -> Pdq_net.Packet.payload;
      (** Payload for an outgoing SYN/DATA/TERM. *)
  ack_payload :
    cum_ack:int -> echo_ts:float -> Pdq_net.Packet.t -> Pdq_net.Packet.payload;
      (** Receiver-side: payload of the ACK echoing the given forward
          packet. *)
  rate_of_ack : sender -> Pdq_net.Packet.t -> float option;
      (** Granted rate extracted from an ACK payload, if any. *)
  quench : sender -> now:float -> bool;
      (** True when the sender should terminate the flow (D3
          quenching); checked on every ACK and watchdog tick. *)
}

type t
(** One installed protocol instance (registry of senders/receivers). *)

val install : ctx:Context.t -> ops:ops -> t
(** Create the registry. The caller must still install {!Context}
    hooks whose [deliver] is {!deliver}. *)

val deliver : t -> node:int -> Pdq_net.Packet.t -> unit
(** Endpoint dispatch for packets addressed to [node]. *)

val start_flow : t -> Context.flow -> unit

(** Sender accessors available to [ops] callbacks: *)

val sender_flow : sender -> Context.flow
val sender_rate : sender -> float
val sender_rtt : sender -> float
val sender_remaining : sender -> int
(** Unacknowledged bytes. *)

val sender_deadline : sender -> float option
val sender_now : sender -> float
