(* Reassembly state as a sorted list of disjoint received byte
   intervals [lo, hi). Interval count stays tiny (one per loss/
   reordering hole), and arbitrary segment boundaries — e.g. after
   M-PDQ load rebalancing — are handled exactly. *)
type t = {
  mutable size : int;
  capacity : int;
  mutable intervals : (int * int) list; (* sorted, disjoint, non-adjacent *)
  mutable received : int;
}

let create ?capacity ~size ~segment () =
  if segment <= 0 then invalid_arg "Rx_buffer.create: segment <= 0";
  let capacity = max size (Option.value capacity ~default:size) in
  { size; capacity; intervals = []; received = 0 }

let set_size t size =
  if size < t.received then invalid_arg "Rx_buffer.set_size: below received";
  if size > t.capacity then invalid_arg "Rx_buffer.set_size: beyond capacity";
  t.size <- size

let on_data t ~seq ~bytes =
  let lo = max 0 seq and hi = min t.size (seq + bytes) in
  if hi > lo then begin
    (* Merge [lo, hi) into the interval list. *)
    let rec merge acc lo hi = function
      | [] -> List.rev ((lo, hi) :: acc)
      | (a, b) :: rest when b < lo -> merge ((a, b) :: acc) lo hi rest
      | (a, b) :: rest when a > hi -> List.rev_append acc ((lo, hi) :: (a, b) :: rest)
      | (a, b) :: rest -> merge acc (min a lo) (max b hi) rest
    in
    let merged = merge [] lo hi t.intervals in
    t.intervals <- merged;
    t.received <-
      List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 merged
  end

let cumulative_ack t =
  match t.intervals with (0, hi) :: _ -> hi | _ -> 0

let received_bytes t = t.received
let size t = t.size
let complete t = t.received >= t.size
