(** Receiver-side reassembly state for one flow (or subflow).

    Tracks which application bytes have arrived as a set of disjoint
    byte intervals so duplicates are not double-counted and arbitrary
    segment boundaries are exact (M-PDQ load shifts create unaligned
    ones), and exposes the cumulative in-order byte count used for
    ACKs (go-back-N / TCP semantics). *)

type t

val create : ?capacity:int -> size:int -> segment:int -> unit -> t
(** [size] is the flow size in bytes; [segment] the full data-packet
    payload size (the last segment may be shorter). [capacity] (default
    [size]) reserves bitmap room for later growth via {!set_size} —
    M-PDQ subflows can be assigned up to the whole parent flow. *)

val set_size : t -> int -> unit
(** Change the expected size (within [capacity], not below the bytes
    already received). *)

val on_data : t -> seq:int -> bytes:int -> unit
(** Record arrival of [bytes] application bytes starting at offset
    [seq]. Duplicate deliveries are idempotent. *)

val cumulative_ack : t -> int
(** Number of bytes received contiguously from offset 0. *)

val received_bytes : t -> int
(** Total distinct bytes received (regardless of order). *)

val size : t -> int

val complete : t -> bool
(** All [size] bytes have arrived. *)
