(** Packet-level TCP Reno (§5.1 baseline): slow start, congestion
    avoidance, triple-duplicate-ACK fast retransmit with fast recovery,
    RTO with Jacobson estimation and a small configurable [RTOmin]
    (default 1 ms) to mitigate incast, as suggested by the studies the
    paper cites. Switches are plain FIFO tail-drop queues — no hooks. *)

type t

val install : ?rto_min:float -> ctx:Context.t -> unit -> t
val start_flow : t -> Context.flow -> unit

val sender_cwnd : t -> flow:int -> float
(** Current congestion window in bytes (for tests). *)
