lib/workload/arrivals.ml: List Pdq_engine
