lib/workload/arrivals.mli: Pdq_engine
