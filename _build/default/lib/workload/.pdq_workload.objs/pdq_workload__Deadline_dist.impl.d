lib/workload/deadline_dist.ml: Pdq_engine
