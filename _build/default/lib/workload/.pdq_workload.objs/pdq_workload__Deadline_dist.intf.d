lib/workload/deadline_dist.mli: Pdq_engine
