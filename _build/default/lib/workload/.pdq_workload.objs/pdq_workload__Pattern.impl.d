lib/workload/pattern.ml: Array List Pdq_engine
