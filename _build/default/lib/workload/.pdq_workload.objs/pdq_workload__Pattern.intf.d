lib/workload/pattern.mli: Pdq_engine
