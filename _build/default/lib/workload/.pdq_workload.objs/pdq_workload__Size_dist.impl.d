lib/workload/size_dist.ml: List Pdq_engine Printf
