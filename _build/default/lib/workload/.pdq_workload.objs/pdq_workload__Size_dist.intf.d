lib/workload/size_dist.mli: Pdq_engine
