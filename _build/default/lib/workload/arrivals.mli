(** Arrival processes: when flows start. *)

val simultaneous : n:int -> at:float -> float list
(** All [n] flows start at time [at] (query aggregation). *)

val poisson :
  rng:Pdq_engine.Rng.t -> rate:float -> horizon:float -> float list
(** Poisson arrivals of intensity [rate] (flows/second) on
    [\[0, horizon)], in increasing order. *)
