type t = { mean : float; floor : float }

let exponential ?(floor = 3e-3) ~mean () =
  if mean <= 0. then invalid_arg "Deadline_dist.exponential: mean <= 0";
  { mean; floor }

let sample t rng = max t.floor (Pdq_engine.Rng.exponential rng ~mean:t.mean)
let mean t = t.mean
let floor_value t = t.floor
