(** Flow-deadline distribution (§5.1): exponential with a configurable
    mean (the paper sweeps 20–60 ms) and a 3 ms lower bound, since some
    raw draws "could have tiny deadlines that are unrealistic in real
    network applications". *)

type t

val exponential : ?floor:float -> mean:float -> unit -> t
(** Deadlines in seconds; [floor] defaults to 3 ms. *)

val sample : t -> Pdq_engine.Rng.t -> float
val mean : t -> float
val floor_value : t -> float
