module Rng = Pdq_engine.Rng

type pair = { src : int; dst : int }

let aggregation ~hosts ~receiver ~flows =
  let senders = Array.to_list hosts |> List.filter (fun h -> h <> receiver) in
  if senders = [] then invalid_arg "Pattern.aggregation: no senders";
  let senders = Array.of_list senders in
  List.init flows (fun i ->
      { src = senders.(i mod Array.length senders); dst = receiver })

let stride ~hosts ~i =
  let n = Array.length hosts in
  if n < 2 then invalid_arg "Pattern.stride: need >= 2 hosts";
  List.init n (fun x ->
      let dst = hosts.((x + i) mod n) in
      { src = hosts.(x); dst })
  |> List.filter (fun p -> p.src <> p.dst)

let staggered ~rack_of ~hosts ~p ~rng =
  let n = Array.length hosts in
  if n < 2 then invalid_arg "Pattern.staggered: need >= 2 hosts";
  Array.to_list hosts
  |> List.map (fun src ->
         let local =
           Array.to_list hosts
           |> List.filter (fun h -> h <> src && rack_of h = rack_of src)
         in
         let remote =
           Array.to_list hosts
           |> List.filter (fun h -> h <> src && rack_of h <> rack_of src)
         in
         let candidates =
           if (local <> [] && Rng.bool rng p) || remote = [] then local
           else remote
         in
         let candidates = if candidates = [] then remote else candidates in
         let arr = Array.of_list candidates in
         { src; dst = arr.(Rng.int rng (Array.length arr)) })

let random_permutation ~hosts ~rng =
  let n = Array.length hosts in
  if n < 2 then invalid_arg "Pattern.random_permutation: need >= 2 hosts";
  let perm = Rng.derangement rng n in
  List.init n (fun i -> { src = hosts.(i); dst = hosts.(perm.(i)) })

let random_pairs ~hosts ~flows ~rng =
  let n = Array.length hosts in
  if n < 2 then invalid_arg "Pattern.random_pairs: need >= 2 hosts";
  List.init flows (fun _ ->
      let src = hosts.(Rng.int rng n) in
      let rec pick () =
        let dst = hosts.(Rng.int rng n) in
        if dst = src then pick () else dst
      in
      { src; dst = pick () })
