(** Sending patterns of §5.3: who talks to whom.

    All functions return [(src, dst)] pairs over the given host array;
    hosts are identified by node id. *)

type pair = { src : int; dst : int }

val aggregation : hosts:int array -> receiver:int -> flows:int -> pair list
(** [flows] senders all transmit to [receiver] (query aggregation).
    Flows are spread over the other hosts round-robin — with [f] flows
    and [n-1] senders each sender carries ⌊f/(n-1)⌋ or ⌈f/(n-1)⌉
    flows, as in the paper's footnote 6. *)

val stride : hosts:int array -> i:int -> pair list
(** Server x sends to server (x + i) mod N. *)

val staggered :
  rack_of:(int -> int) ->
  hosts:int array ->
  p:float ->
  rng:Pdq_engine.Rng.t ->
  pair list
(** Each server sends to a uniformly chosen server under the same
    top-of-rack switch with probability [p], and to any other server
    with probability 1−p. *)

val random_permutation : hosts:int array -> rng:Pdq_engine.Rng.t -> pair list
(** Each server sends to exactly one other server and receives from
    exactly one (a random derangement). *)

val random_pairs :
  hosts:int array -> flows:int -> rng:Pdq_engine.Rng.t -> pair list
(** [flows] independent (src ≠ dst) pairs chosen uniformly — used for
    Poisson arrival workloads. *)
