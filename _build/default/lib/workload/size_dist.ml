module Rng = Pdq_engine.Rng

type t = { dist_name : string; dist_mean : float; draw : Rng.t -> int }

let sample t rng = max 1 (t.draw rng)
let name t = t.dist_name
let mean t = t.dist_mean

let uniform ~lo ~hi =
  if lo > hi then invalid_arg "Size_dist.uniform: lo > hi";
  {
    dist_name = Printf.sprintf "uniform[%d,%d]" lo hi;
    dist_mean = float_of_int (lo + hi) /. 2.;
    draw = (fun rng -> lo + Rng.int rng (hi - lo + 1));
  }

let uniform_paper ~mean_bytes =
  let lo = 2_000 in
  let hi = (2 * mean_bytes) - lo in
  if hi <= lo then invalid_arg "Size_dist.uniform_paper: mean too small";
  { (uniform ~lo ~hi) with dist_name = Printf.sprintf "paper-uniform(mean=%d)" mean_bytes }

let fixed size =
  {
    dist_name = Printf.sprintf "fixed(%d)" size;
    dist_mean = float_of_int size;
    draw = (fun _ -> size);
  }

let pareto ?(tail_index = 1.1) ~mean_bytes () =
  if tail_index <= 1. then invalid_arg "Size_dist.pareto: tail index <= 1";
  (* Mean of Pareto(shape a, scale m) is a*m/(a-1). *)
  let scale = float_of_int mean_bytes *. (tail_index -. 1.) /. tail_index in
  {
    dist_name = Printf.sprintf "pareto(a=%.2f, mean=%d)" tail_index mean_bytes;
    dist_mean = float_of_int mean_bytes;
    draw =
      (fun rng ->
        (* Cap at 1000x the mean so one sample cannot dominate a whole
           experiment's runtime. *)
        let v = Rng.pareto rng ~shape:tail_index ~scale in
        int_of_float (min v (1000. *. float_of_int mean_bytes)));
  }

(* Piecewise mixture: a list of (weight, lo, hi) bands sampled
   log-uniformly within each band. *)
let mixture ~name:dist_name bands =
  let total = List.fold_left (fun acc (w, _, _) -> acc +. w) 0. bands in
  let bands = List.map (fun (w, lo, hi) -> (w /. total, lo, hi)) bands in
  let dist_mean =
    (* Mean of a log-uniform on [lo,hi] is (hi-lo)/ln(hi/lo). *)
    List.fold_left
      (fun acc (w, lo, hi) ->
        let m =
          if hi = lo then lo else (hi -. lo) /. log (hi /. lo)
        in
        acc +. (w *. m))
      0. bands
  in
  let draw rng =
    let u = Rng.float rng in
    let rec pick acc = function
      | [] -> List.nth bands (List.length bands - 1)
      | (w, lo, hi) :: rest ->
          if u < acc +. w then (w, lo, hi) else pick (acc +. w) rest
    in
    let _, lo, hi = pick 0. bands in
    let x = lo *. exp (Rng.float rng *. log (hi /. lo)) in
    int_of_float x
  in
  { dist_name; dist_mean; draw }

let vl2 () =
  (* Shape from Greenberg et al. (VL2, Fig. 2): most flows are mice,
     >90% of bytes live in flows between 100 MB and 1 GB; we trim the
     elephant ceiling to 100 MB to keep simulations tractable while
     preserving mice-dominate-flows / elephants-dominate-bytes. *)
  mixture ~name:"vl2-like"
    [
      (0.55, 1e3, 1e4);   (* mice: 1-10 KB *)
      (0.30, 1e4, 1e5);   (* small: 10-100 KB *)
      (0.10, 1e5, 1e6);   (* medium: 0.1-1 MB *)
      (0.05, 1e6, 1e8);   (* elephants: 1-100 MB *)
    ]

let edu1 () =
  (* Benson et al., EDU1: median ~5 KB, tail to ~10 MB. *)
  mixture ~name:"edu1-like"
    [
      (0.50, 5e2, 1e4);
      (0.35, 1e4, 1e5);
      (0.13, 1e5, 1e6);
      (0.02, 1e6, 1e7);
    ]
