(** Flow-size distributions used in the evaluation (§5.1, §5.3).

    The two trace-derived distributions are synthetic stand-ins fitted
    to the published shapes (see DESIGN.md, substitutions): the
    simulator consumes flow-level summaries, so the distribution's
    shape — not the raw trace — is what drives protocol ranking. *)

type t

val sample : t -> Pdq_engine.Rng.t -> int
(** Draw a flow size in bytes. *)

val name : t -> string

val mean : t -> float
(** Analytic (or configured) mean size in bytes. *)

val uniform_paper : mean_bytes:int -> t
(** The paper's query/deadline workload: uniform on
    [\[2 KB, 2·mean − 2 KB\]], matching "drawn from the interval
    \[2 KB, 198 KB\] using a uniform distribution" for mean 100 KB. *)

val uniform : lo:int -> hi:int -> t
(** Uniform on [\[lo, hi\]] bytes. *)

val fixed : int -> t
(** Degenerate: every flow has the same size. *)

val pareto : ?tail_index:float -> mean_bytes:int -> unit -> t
(** Heavy-tailed Pareto with the given tail index (default 1.1, as in
    Fig. 10) scaled to the requested mean. *)

val vl2 : unit -> t
(** Mixture modelled on the production-datacenter measurements of
    Greenberg et al. (VL2): ~95% mice (a few KB to tens of KB), a few
    percent medium flows, and a small fraction of elephants (1–100 MB)
    that carry most bytes. *)

val edu1 : unit -> t
(** Modelled on the university datacenter EDU1 of Benson et al.: small
    median (~5 KB), moderately heavy tail up to ~10 MB. *)
