test/test_core.ml: Alcotest Gen List Pdq_core Pdq_engine QCheck QCheck_alcotest
