test/test_engine.ml: Alcotest Array Gen List Pdq_engine Printf QCheck QCheck_alcotest
