test/test_experiments.ml: Alcotest Array List Pdq_core Pdq_engine Pdq_experiments Pdq_topo Pdq_transport Printf
