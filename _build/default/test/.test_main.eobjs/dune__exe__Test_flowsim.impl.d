test/test_flowsim.ml: Alcotest Array Gen Hashtbl List Option Pdq_engine Pdq_flowsim Pdq_net Pdq_topo Pdq_workload Printf QCheck QCheck_alcotest
