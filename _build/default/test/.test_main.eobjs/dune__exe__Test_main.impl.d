test/test_main.ml: Alcotest List Test_core Test_engine Test_experiments Test_flowsim Test_mpdq Test_net Test_sched Test_transport Test_workload
