test/test_mpdq.ml: Alcotest Array List Pdq_core Pdq_engine Pdq_net Pdq_topo Pdq_transport Printf QCheck QCheck_alcotest
