test/test_net.ml: Alcotest Array List Pdq_engine Pdq_net Pdq_topo Printf QCheck QCheck_alcotest
