test/test_sched.ml: Alcotest List Pdq_sched QCheck QCheck_alcotest
