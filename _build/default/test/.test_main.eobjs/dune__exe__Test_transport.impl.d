test/test_transport.ml: Alcotest Array List Pdq_core Pdq_engine Pdq_net Pdq_topo Pdq_transport Printf
