test/test_workload.ml: Alcotest Array List Pdq_engine Pdq_workload Printf QCheck QCheck_alcotest
