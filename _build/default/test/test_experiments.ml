(* Tests for pdq_experiments: workload construction, the capacity
   binary search, and cheap end-to-end smoke checks of the figure
   drivers (shapes, not absolute values). *)

module Common = Pdq_experiments.Common
module Fig1 = Pdq_experiments.Fig1
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Sim = Pdq_engine.Sim

let test_fig1_matches_paper () =
  let t = Fig1.completion_table () in
  (* Row 0 = fair sharing, last cell = mean FCT 4.67; row 1 = SJF 3.33. *)
  let last row = List.nth row (List.length row - 1) in
  Alcotest.(check string) "fair mean" "4.67" (last (List.nth t.Common.rows 0));
  Alcotest.(check string) "sjf mean" "3.33" (last (List.nth t.Common.rows 1));
  let d = Fig1.deadline_table () in
  Alcotest.(check string) "EDF meets 3" "3" (last (List.nth d.Common.rows 1))

let test_aggregation_workload () =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let hosts = built.Builder.hosts in
  let wl =
    Common.aggregation_workload ~seed:1 ~hosts ~receiver:hosts.(0) ~flows:10 ()
  in
  Alcotest.(check int) "10 specs" 10 (List.length wl.Common.specs);
  Alcotest.(check int) "10 jobs" 10 (List.length wl.Common.jobs);
  List.iter
    (fun (s : Context.flow_spec) ->
      Alcotest.(check int) "to the aggregator" hosts.(0) s.Context.dst;
      Alcotest.(check bool) "within paper interval" true
        (s.Context.size >= 2_000 && s.Context.size <= 198_000);
      match s.Context.deadline with
      | Some d -> Alcotest.(check bool) "floor 3ms" true (d >= 0.003)
      | None -> Alcotest.fail "expected a deadline")
    wl.Common.specs

let test_workload_deterministic () =
  let build () =
    let sim = Sim.create () in
    let built = Builder.single_rooted_tree ~sim () in
    let hosts = built.Builder.hosts in
    (Common.aggregation_workload ~seed:5 ~hosts ~receiver:hosts.(0) ~flows:6 ())
      .Common.specs
  in
  Alcotest.(check bool) "same seed, same workload" true (build () = build ())

let test_search_max_flows () =
  (* Monotone step function: passes up to 13. *)
  let f n = if n <= 13 then 1. else 0.5 in
  Alcotest.(check int) "finds 13" 13
    (Common.search_max_flows ~hi:64 ~target:0.99 f);
  Alcotest.(check int) "all pass -> hi" 64
    (Common.search_max_flows ~hi:64 ~target:0.99 (fun _ -> 1.));
  Alcotest.(check int) "none pass -> 0" 0
    (Common.search_max_flows ~hi:64 ~target:0.99 (fun _ -> 0.))

let test_optimal_bounds () =
  let at = Common.optimal_aggregation_throughput ~seeds:[ 1 ] ~flows:3 () in
  Alcotest.(check bool) "3 flows always schedulable-ish" true (at > 0.6);
  let at25 = Common.optimal_aggregation_throughput ~seeds:[ 1 ] ~flows:25 () in
  Alcotest.(check bool) "monotone-ish decline" true (at25 <= at +. 1e-9)

let test_pdq_tracks_optimal_small () =
  (* The end-to-end sanity of Fig 3a at a light load point: PDQ meets
     everything the optimal scheduler can. *)
  let optimal = Common.optimal_aggregation_throughput ~seeds:[ 1 ] ~flows:3 () in
  let pdq =
    Common.run_aggregation ~seeds:[ 1 ] ~flows:3
      (Runner.Pdq Pdq_core.Config.full) (fun r ->
        r.Runner.application_throughput)
  in
  Alcotest.(check bool)
    (Printf.sprintf "PDQ %.2f close to optimal %.2f" pdq optimal)
    true
    (pdq >= optimal -. 0.34)

let test_fig6_dynamics_shape () =
  let t = Pdq_experiments.Dynamics.fig6 () in
  (* Five flows all complete, in criticality (size) order. *)
  Alcotest.(check int) "five completions" 5
    (List.length t.Pdq_experiments.Dynamics.completions);
  let times = List.map snd t.Pdq_experiments.Dynamics.completions in
  Alcotest.(check bool) "completion order follows criticality" true
    (List.sort compare times = times);
  (* Near-perfect utilization while flows are active (bins 2..30). *)
  let u = t.Pdq_experiments.Dynamics.utilization in
  let busy = Array.sub u 2 28 in
  let mean_util =
    Array.fold_left (fun a (_, v) -> a +. v) 0. busy /. 28.
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean utilization %.3f > 0.9" mean_util)
    true (mean_util > 0.9);
  (* Queue stays small (well under ten packets on average). *)
  let q = t.Pdq_experiments.Dynamics.queue_pkts in
  let mean_q =
    Array.fold_left (fun a (_, v) -> a +. v) 0. q /. float_of_int (Array.length q)
  in
  Alcotest.(check bool) (Printf.sprintf "mean queue %.2f pkts" mean_q) true
    (mean_q < 10.)

let test_fig7_burst_shape () =
  let t = Pdq_experiments.Dynamics.fig7 () in
  (* All 50 shorts complete; the long flow completes too. *)
  Alcotest.(check int) "51 completions" 51
    (List.length t.Pdq_experiments.Dynamics.completions);
  (* During the burst (10-20ms) utilization stays high. *)
  let u = t.Pdq_experiments.Dynamics.utilization in
  let burst = Array.sub u 11 8 in
  let mean_util = Array.fold_left (fun a (_, v) -> a +. v) 0. burst /. 8. in
  Alcotest.(check bool)
    (Printf.sprintf "utilization during burst %.3f" mean_util)
    true (mean_util > 0.85)

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "Fig1 matches paper" `Quick test_fig1_matches_paper;
        Alcotest.test_case "aggregation workload" `Quick test_aggregation_workload;
        Alcotest.test_case "workload determinism" `Quick test_workload_deterministic;
        Alcotest.test_case "capacity search" `Quick test_search_max_flows;
        Alcotest.test_case "optimal bounds" `Quick test_optimal_bounds;
        Alcotest.test_case "PDQ tracks optimal (light load)" `Quick
          test_pdq_tracks_optimal_small;
        Alcotest.test_case "Fig6 dynamics shape" `Slow test_fig6_dynamics_shape;
        Alcotest.test_case "Fig7 burst shape" `Slow test_fig7_burst_shape;
      ] );
  ]
