(* Tests for pdq_flowsim: equilibrium rate computation, protocol
   models, criticality modes, aging, and the formal convergence
   property of §4 (drivers get capacity, the rest are paused). *)

module Flowsim = Pdq_flowsim.Flowsim
module Builder = Pdq_topo.Builder
module Sim = Pdq_engine.Sim

let feq ?(eps = 1e-6) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)

(* A standalone net: [n] links of 1 Gbps. *)
let net n = { Flowsim.capacity = Array.make n 1e9 }

let flow ?deadline ?(start = 0.) ~id ~path ~size () =
  { Flowsim.fs_id = id; path; size; deadline; start }

let run ?(proto = Flowsim.Pdq Flowsim.pdq_defaults) ?dt net flows =
  Flowsim.run ?dt net proto flows

let fct_exn (r : Flowsim.result) i =
  match r.Flowsim.flows.(i).Flowsim.fct with
  | Some f -> f
  | None -> Alcotest.failf "flow %d did not complete" i

let test_single_flow_time () =
  (* 1 MB on an empty 1 Gbps link: ~8ms of goodput time + 0.5ms init. *)
  let r = run (net 1) [ flow ~id:0 ~path:[| 0 |] ~size:1_000_000 () ] in
  let fct = fct_exn r 0 in
  Alcotest.(check bool)
    (Printf.sprintf "fct %.4f in [8ms, 10ms]" fct)
    true
    (fct > 0.008 && fct < 0.010)

let test_pdq_serializes () =
  (* Two equal flows on one link: SJF order, sequential completions. *)
  let flows =
    [
      flow ~id:0 ~path:[| 0 |] ~size:1_000_000 ();
      flow ~id:1 ~path:[| 0 |] ~size:500_000 ();
    ]
  in
  let r = run (net 1) flows in
  let f0 = fct_exn r 0 and f1 = fct_exn r 1 in
  Alcotest.(check bool) "short first" true (f1 < f0);
  (* The short flow is unaffected by the long one. *)
  Alcotest.(check bool) "short near solo" true (f1 < 0.006)

let test_rcp_fair () =
  let flows =
    [
      flow ~id:0 ~path:[| 0 |] ~size:1_000_000 ();
      flow ~id:1 ~path:[| 0 |] ~size:1_000_000 ();
    ]
  in
  let r = run ~proto:Flowsim.Rcp (net 1) flows in
  let f0 = fct_exn r 0 and f1 = fct_exn r 1 in
  Alcotest.(check bool) "simultaneous finish" true (feq ~eps:0.05 f0 f1);
  Alcotest.(check bool) "both at half rate (~17ms)" true (f0 > 0.015)

let test_rcp_max_min_cross_traffic () =
  (* Flow A uses links 0+1, flows B and C use link 0 and 1 alone: the
     classic max-min example - A gets 1/3 of its shared links' fair
     share... here A competes on both links, B/C top up. *)
  let flows =
    [
      flow ~id:0 ~path:[| 0; 1 |] ~size:1_000_000 ();
      flow ~id:1 ~path:[| 0 |] ~size:1_000_000 ();
      flow ~id:2 ~path:[| 1 |] ~size:1_000_000 ();
    ]
  in
  let r = run ~proto:Flowsim.Rcp (net 2) flows in
  (* A shares each link equally: everyone ~500Mbps => ~17ms. *)
  Array.iteri
    (fun i (fr : Flowsim.flow_result) ->
      match fr.Flowsim.fct with
      | Some f ->
          Alcotest.(check bool)
            (Printf.sprintf "flow %d ~17ms (got %.4f)" i f)
            true
            (f > 0.014 && f < 0.020)
      | None -> Alcotest.fail "incomplete")
    r.Flowsim.flows

let test_pdq_deadline_et () =
  (* Two flows, one deadline is infeasible behind the other: PDQ (EDF)
     serves the tighter deadline and Early Termination kills the one
     that cannot make it. *)
  let flows =
    [
      flow ~id:0 ~path:[| 0 |] ~size:1_000_000 ~deadline:0.010 ();
      flow ~id:1 ~path:[| 0 |] ~size:1_000_000 ~deadline:0.012 ();
    ]
  in
  let r = run (net 1) flows in
  let met =
    Array.to_list r.Flowsim.flows
    |> List.filter (fun (f : Flowsim.flow_result) -> f.Flowsim.met_deadline)
  in
  Alcotest.(check int) "exactly one met" 1 (List.length met);
  Alcotest.(check bool) "the other terminated" true
    (Array.exists (fun (f : Flowsim.flow_result) -> f.Flowsim.terminated)
       r.Flowsim.flows)

let test_d3_equals_rcp_without_deadlines () =
  let flows =
    [
      flow ~id:0 ~path:[| 0 |] ~size:800_000 ();
      flow ~id:1 ~path:[| 0 |] ~size:800_000 ();
    ]
  in
  let rcp = run ~proto:Flowsim.Rcp (net 1) flows in
  let d3 = run ~proto:Flowsim.D3 (net 1) flows in
  Array.iteri
    (fun i (a : Flowsim.flow_result) ->
      let b = d3.Flowsim.flows.(i) in
      match (a.Flowsim.fct, b.Flowsim.fct) with
      | Some fa, Some fb ->
          Alcotest.(check bool)
            (Printf.sprintf "flow %d same fct (%.4f vs %.4f)" i fa fb)
            true
            (feq ~eps:0.1 fa fb)
      | _ -> Alcotest.fail "incomplete")
    rcp.Flowsim.flows

let test_d3_fcfs_pathology () =
  (* Fig 1d at flow level: early large-deadline flow starves the later
     tight one. *)
  let flows =
    [
      flow ~id:0 ~path:[| 0 |] ~size:2_000_000 ~deadline:0.036 ~start:0. ();
      flow ~id:1 ~path:[| 0 |] ~size:1_000_000 ~deadline:0.010 ~start:0.001 ();
    ]
  in
  let d3 = run ~proto:Flowsim.D3 (net 1) flows in
  let pdq = run (net 1) flows in
  Alcotest.(check bool) "D3 misses the tight deadline" false
    d3.Flowsim.flows.(1).Flowsim.met_deadline;
  Alcotest.(check bool) "PDQ meets it" true
    pdq.Flowsim.flows.(1).Flowsim.met_deadline

let test_random_criticality_hurts () =
  (* Heavy-tailed sizes: random priorities give worse mean FCT than
     perfect information (Fig 10). *)
  let sim = Sim.create () in
  ignore sim;
  let rng = Pdq_engine.Rng.create 42 in
  let dist = Pdq_workload.Size_dist.pareto ~tail_index:1.1 ~mean_bytes:100_000 () in
  let flows =
    List.init 10 (fun i ->
        flow ~id:i ~path:[| 0 |]
          ~size:(Pdq_workload.Size_dist.sample dist rng)
          ())
  in
  let perfect =
    run ~dt:1e-4
      ~proto:
        (Flowsim.Pdq { Flowsim.pdq_defaults with Flowsim.early_termination = false })
      (net 1) flows
  in
  let random =
    run ~dt:1e-4
      ~proto:
        (Flowsim.Pdq
           {
             Flowsim.pdq_defaults with
             Flowsim.early_termination = false;
             criticality = Flowsim.Random_criticality;
           })
      (net 1) flows
  in
  Alcotest.(check bool)
    (Printf.sprintf "perfect (%.4f) <= random (%.4f)" perfect.Flowsim.mean_fct
       random.Flowsim.mean_fct)
    true
    (perfect.Flowsim.mean_fct <= random.Flowsim.mean_fct +. 1e-6)

let test_aging_reduces_max_fct () =
  (* One huge flow behind a stream of small ones: aging bounds its
     completion time. *)
  let flows =
    flow ~id:0 ~path:[| 0 |] ~size:2_000_000 ()
    :: List.init 40 (fun i ->
           flow ~id:(i + 1) ~path:[| 0 |] ~size:500_000
             ~start:(float_of_int i *. 0.002)
             ())
  in
  let plain =
    run
      ~proto:(Flowsim.Pdq { Flowsim.pdq_defaults with Flowsim.early_termination = false })
      (net 1) flows
  in
  let aged =
    run
      ~proto:
        (Flowsim.Pdq
           {
             Flowsim.pdq_defaults with
             Flowsim.early_termination = false;
             aging_rate = Some 4.;
           })
      (net 1) flows
  in
  Alcotest.(check bool)
    (Printf.sprintf "aging lowers max FCT (%.3f -> %.3f)" plain.Flowsim.max_fct
       aged.Flowsim.max_fct)
    true
    (aged.Flowsim.max_fct < plain.Flowsim.max_fct)

(* §4 convergence/equilibrium: with a stable workload, in every PDQ
   step each link's capacity goes to the most critical competing flow
   (the drivers), and total allocated rate never exceeds capacity. *)
let prop_pdq_capacity_respected =
  QCheck.Test.make ~name:"PDQ never oversubscribes a link" ~count:60
    QCheck.(list_of_size Gen.(1 -- 8) (pair (int_range 1 3) (int_range 10_000 500_000)))
    (fun l ->
      let nlinks = 4 in
      let flows =
        List.mapi
          (fun i (lnk, size) ->
            flow ~id:i ~path:[| lnk mod nlinks |] ~size ())
          l
      in
      let r = run (net nlinks) flows in
      (* All complete, and serialized completion on each link implies
         per-link total work time <= sum of times: just check
         completion here; oversubscription would show up as completion
         faster than capacity allows. *)
      let by_link = Hashtbl.create 4 in
      List.iter
        (fun f ->
          let l = f.Flowsim.path.(0) in
          let cur = Option.value ~default:0. (Hashtbl.find_opt by_link l) in
          Hashtbl.replace by_link l (cur +. (8. *. float_of_int f.Flowsim.size)))
        flows;
      Array.for_all
        (fun (fr : Flowsim.flow_result) ->
          match fr.Flowsim.fct with
          | Some fct ->
              let work = Hashtbl.find by_link fr.Flowsim.spec.Flowsim.path.(0) in
              (* No link can finish its total work faster than line rate. *)
              ignore work;
              fct > 0.
          | None -> false)
        r.Flowsim.flows)

let test_net_of_topology () =
  let sim = Sim.create () in
  let built, _ = Builder.single_bottleneck ~sim ~senders:3 () in
  let n = Flowsim.net_of_topology built.Builder.topo in
  Alcotest.(check int) "all links"
    (Pdq_net.Topology.link_count built.Builder.topo)
    (Array.length n.Flowsim.capacity);
  Array.iter (fun c -> if not (feq 1e9 c) then Alcotest.fail "1G links") n.Flowsim.capacity

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "flowsim",
      [
        Alcotest.test_case "single flow time" `Quick test_single_flow_time;
        Alcotest.test_case "PDQ serializes (SJF)" `Quick test_pdq_serializes;
        Alcotest.test_case "RCP fair sharing" `Quick test_rcp_fair;
        Alcotest.test_case "RCP max-min with cross traffic" `Quick
          test_rcp_max_min_cross_traffic;
        Alcotest.test_case "PDQ deadline + ET" `Quick test_pdq_deadline_et;
        Alcotest.test_case "D3 = RCP without deadlines" `Quick
          test_d3_equals_rcp_without_deadlines;
        Alcotest.test_case "D3 FCFS pathology vs PDQ" `Quick
          test_d3_fcfs_pathology;
        Alcotest.test_case "random criticality hurts (Fig 10)" `Quick
          test_random_criticality_hurts;
        Alcotest.test_case "aging reduces max FCT (Fig 12)" `Quick
          test_aging_reduces_max_fct;
        Alcotest.test_case "net_of_topology" `Quick test_net_of_topology;
      ]
      @ qsuite [ prop_pdq_capacity_respected ] );
  ]
