(* Tests for pdq_sched: fluid schedulers and the Optimal baseline. *)

module Fluid = Pdq_sched.Fluid

let feq ?(eps = 1e-6) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)

let check_float msg expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let fig1_jobs =
  [
    Fluid.job ~deadline:1. ~id:0 ~size:1. ();
    Fluid.job ~deadline:4. ~id:1 ~size:2. ();
    Fluid.job ~deadline:6. ~id:2 ~size:3. ();
  ]

let finish cs id =
  match List.find_opt (fun (c : Fluid.completion) -> c.Fluid.c_job = id) cs with
  | Some c -> c.Fluid.finish
  | None -> Alcotest.failf "job %d missing" id

(* Figure 1 exact numbers. *)
let test_fair_sharing_fig1 () =
  let cs = Fluid.fair_sharing ~rate:1. fig1_jobs in
  check_float "fA" 3. (finish cs 0);
  check_float "fB" 5. (finish cs 1);
  check_float "fC" 6. (finish cs 2);
  check_float "mean" (14. /. 3.) (Fluid.mean_completion_time cs);
  Alcotest.(check int) "deadlines met" 1 (Fluid.deadlines_met fig1_jobs cs)

let test_srpt_fig1 () =
  let cs = Fluid.srpt ~rate:1. fig1_jobs in
  check_float "fA" 1. (finish cs 0);
  check_float "fB" 3. (finish cs 1);
  check_float "fC" 6. (finish cs 2);
  check_float "mean" (10. /. 3.) (Fluid.mean_completion_time cs);
  Alcotest.(check int) "EDF meets all" 3 (Fluid.deadlines_met fig1_jobs cs)

let test_edf_fig1 () =
  let cs = Fluid.edf ~rate:1. fig1_jobs in
  Alcotest.(check int) "EDF meets all" 3 (Fluid.deadlines_met fig1_jobs cs)

let test_d3_fig1 () =
  (* Arrival order fB; fA; fC: fB reserves 2/4 and fA starves. *)
  let jobs =
    [
      Fluid.job ~deadline:1. ~release:1e-9 ~id:0 ~size:1. ();
      Fluid.job ~deadline:4. ~release:0. ~id:1 ~size:2. ();
      Fluid.job ~deadline:6. ~release:2e-9 ~id:2 ~size:3. ();
    ]
  in
  let cs = Fluid.d3_fluid ~rate:1. jobs in
  Alcotest.(check int) "D3 misses fA" 2 (Fluid.deadlines_met jobs cs);
  Alcotest.(check bool) "fA late" true (finish cs 0 > 1. +. 1e-9)

let test_rate_scaling () =
  let jobs = [ Fluid.job ~id:0 ~size:10. () ] in
  let cs = Fluid.srpt ~rate:2. jobs in
  check_float "size/rate" 5. (finish cs 0)

let test_releases () =
  (* A job released later preempts under SRPT when smaller. *)
  let jobs =
    [
      Fluid.job ~id:0 ~size:10. ();
      Fluid.job ~id:1 ~size:1. ~release:2. ();
    ]
  in
  let cs = Fluid.srpt ~rate:1. jobs in
  check_float "small job served on arrival" 3. (finish cs 1);
  check_float "big job finishes after preemption" 11. (finish cs 0)

let test_idle_gap () =
  let jobs = [ Fluid.job ~id:0 ~size:1. ~release:5. () ] in
  let cs = Fluid.fair_sharing ~rate:1. jobs in
  check_float "idle until release" 6. (finish cs 0)

let test_moore_hodgson_basic () =
  (* Classic: three unit jobs, deadlines 1,2,2 -> keep at most 2. *)
  let jobs =
    [
      Fluid.job ~deadline:1. ~id:0 ~size:1. ();
      Fluid.job ~deadline:2. ~id:1 ~size:1. ();
      Fluid.job ~deadline:2. ~id:2 ~size:1. ();
    ]
  in
  let kept = Fluid.moore_hodgson ~rate:1. jobs in
  Alcotest.(check int) "keeps two" 2 (List.length kept)

let test_moore_hodgson_drops_largest () =
  (* Dropping the big job saves both small ones. *)
  let jobs =
    [
      Fluid.job ~deadline:2. ~id:0 ~size:10. ();
      Fluid.job ~deadline:3. ~id:1 ~size:1. ();
      Fluid.job ~deadline:3. ~id:2 ~size:1. ();
    ]
  in
  let kept = Fluid.moore_hodgson ~rate:1. jobs in
  Alcotest.(check (list int)) "keeps the small ones" [ 1; 2 ]
    (List.sort compare kept)

let test_optimal_throughput () =
  let jobs =
    [
      Fluid.job ~deadline:1. ~id:0 ~size:1. ();
      Fluid.job ~deadline:1. ~id:1 ~size:1. ();
    ]
  in
  if not (feq 0.5 (Fluid.optimal_deadline_throughput ~rate:1. jobs)) then
    Alcotest.fail "only one of two identical jobs fits";
  if not (feq 1. (Fluid.optimal_deadline_throughput ~rate:2. jobs)) then
    Alcotest.fail "both fit at double rate"

(* Properties *)

let job_list_gen =
  QCheck.Gen.(
    list_size (1 -- 12)
      (pair (float_bound_exclusive 10.) (option (float_bound_exclusive 20.))))

let mk_jobs l =
  List.mapi
    (fun i (size, deadline) -> Fluid.job ?deadline ~id:i ~size:(size +. 0.01) ())
    l

let prop_srpt_beats_fair =
  QCheck.Test.make ~name:"SRPT mean FCT <= fair sharing" ~count:100
    (QCheck.make job_list_gen) (fun l ->
      let jobs = mk_jobs l in
      let srpt = Fluid.mean_completion_time (Fluid.srpt ~rate:1. jobs) in
      let fair = Fluid.mean_completion_time (Fluid.fair_sharing ~rate:1. jobs) in
      srpt <= fair +. 1e-6)

let prop_all_complete =
  QCheck.Test.make ~name:"every discipline completes every job" ~count:100
    (QCheck.make job_list_gen) (fun l ->
      let jobs = mk_jobs l in
      let n = List.length jobs in
      List.for_all
        (fun f -> List.length (f ~rate:1. jobs) = n)
        [ Fluid.fair_sharing; Fluid.srpt; Fluid.edf; Fluid.d3_fluid ])

let prop_mh_upper_bound =
  QCheck.Test.make ~name:"Moore-Hodgson >= EDF deadline count" ~count:100
    (QCheck.make job_list_gen) (fun l ->
      let jobs = mk_jobs l in
      let edf_met = Fluid.deadlines_met jobs (Fluid.edf ~rate:1. jobs) in
      let kept = List.length (Fluid.moore_hodgson ~rate:1. jobs) in
      kept >= edf_met)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "sched.fluid",
      [
        Alcotest.test_case "fair sharing Fig1" `Quick test_fair_sharing_fig1;
        Alcotest.test_case "SRPT Fig1" `Quick test_srpt_fig1;
        Alcotest.test_case "EDF Fig1" `Quick test_edf_fig1;
        Alcotest.test_case "D3 Fig1 pathology" `Quick test_d3_fig1;
        Alcotest.test_case "rate scaling" `Quick test_rate_scaling;
        Alcotest.test_case "releases/preemption" `Quick test_releases;
        Alcotest.test_case "idle gaps" `Quick test_idle_gap;
        Alcotest.test_case "Moore-Hodgson basic" `Quick test_moore_hodgson_basic;
        Alcotest.test_case "Moore-Hodgson drops largest" `Quick
          test_moore_hodgson_drops_largest;
        Alcotest.test_case "optimal throughput" `Quick test_optimal_throughput;
      ]
      @ qsuite [ prop_srpt_beats_fair; prop_all_complete; prop_mh_upper_bound ] );
  ]
