(* Benchmark harness: regenerates the series behind every table and
   figure of the paper's evaluation (one target per figure), plus
   Bechamel micro-benchmarks of the simulator hot paths.

   Usage:
     dune exec bench/main.exe                 -- all figures, quick mode
     dune exec bench/main.exe -- --only fig3a -- one figure
     dune exec bench/main.exe -- --full       -- full sweeps (slow)
     dune exec bench/main.exe -- --micro      -- Bechamel microbenchmarks
     dune exec bench/main.exe -- --fidelity   -- paper-fidelity regression
                                                gate (exit 1 on drift)
     dune exec bench/main.exe -- --fidelity-dump -- measured values for a
                                                band refresh

   Every figure target additionally writes BENCH_<target>.json (wall
   time, simulator events, events/s, peak heap) next to the cwd for
   machine-readable perf tracking; the files are gitignored. *)

module E = Pdq_experiments
open E

let ppf = Format.std_formatter

let targets : (string * (quick:bool -> jobs:int option -> unit)) list =
  [
    ( "fig1",
      fun ~quick:_ ~jobs:_ ->
        Common.pp_table ppf (Fig1.completion_table ());
        Common.pp_table ppf (Fig1.deadline_table ()) );
    ("fig3a", fun ~quick ~jobs -> Common.pp_table ppf (Fig3.fig3a ?jobs ~quick ()));
    ("fig3b", fun ~quick ~jobs -> Common.pp_table ppf (Fig3.fig3b ?jobs ~quick ()));
    ("fig3c", fun ~quick ~jobs -> Common.pp_table ppf (Fig3.fig3c ?jobs ~quick ()));
    ("fig3d", fun ~quick ~jobs -> Common.pp_table ppf (Fig3.fig3d ?jobs ~quick ()));
    ("fig3e", fun ~quick ~jobs -> Common.pp_table ppf (Fig3.fig3e ?jobs ~quick ()));
    ("fig4a", fun ~quick ~jobs -> Common.pp_table ppf (Fig4.fig4a ?jobs ~quick ()));
    ("fig4b", fun ~quick ~jobs -> Common.pp_table ppf (Fig4.fig4b ?jobs ~quick ()));
    ("fig5a", fun ~quick ~jobs -> Common.pp_table ppf (Fig5.fig5a ?jobs ~quick ()));
    ("fig5b", fun ~quick ~jobs -> Common.pp_table ppf (Fig5.fig5b ?jobs ~quick ()));
    ("fig5c", fun ~quick ~jobs -> Common.pp_table ppf (Fig5.fig5c ?jobs ~quick ()));
    ( "fig6",
      fun ~quick:_ ~jobs:_ -> Common.pp_table ppf (Dynamics.fig6_table ()) );
    ( "fig7",
      fun ~quick:_ ~jobs:_ -> Common.pp_table ppf (Dynamics.fig7_table ()) );
    ("fig8a", fun ~quick ~jobs -> Common.pp_table ppf (Fig8.fig8a ?jobs ~quick ()));
    ("fig8b", fun ~quick ~jobs -> Common.pp_table ppf (Fig8.fig8b ?jobs ~quick ()));
    ("fig8c", fun ~quick ~jobs -> Common.pp_table ppf (Fig8.fig8c ?jobs ~quick ()));
    ("fig8d", fun ~quick ~jobs -> Common.pp_table ppf (Fig8.fig8d ?jobs ~quick ()));
    ("fig8e", fun ~quick ~jobs -> Common.pp_table ppf (Fig8.fig8e ?jobs ~quick ()));
    ( "fig9",
      fun ~quick ~jobs ->
        Common.pp_table ppf (Fig9.fig9a ?jobs ~quick ());
        Common.pp_table ppf (Fig9.fig9b ?jobs ~quick ()) );
    ("fig10", fun ~quick ~jobs -> Common.pp_table ppf (Fig10.fig10 ?jobs ~quick ()));
    ("fig11a", fun ~quick ~jobs -> Common.pp_table ppf (Fig11.fig11a ?jobs ~quick ()));
    ("fig11bc", fun ~quick ~jobs -> Common.pp_table ppf (Fig11.fig11bc ?jobs ~quick ()));
    ("fig12", fun ~quick ~jobs -> Common.pp_table ppf (Fig12.fig12 ?jobs ~quick ()));
    ( "ablation",
      fun ~quick ~jobs ->
        Common.pp_table ppf (Ablation.early_start_k ?jobs ~quick ());
        Common.pp_table ppf (Ablation.probing ?jobs ~quick ());
        Common.pp_table ppf (Ablation.dampening ?jobs ~quick ()) );
    ( "forensics",
      fun ~quick:_ ~jobs:_ ->
        Common.pp_table ppf (Fig3.attribution ());
        Common.pp_table ppf (Fig9.attribution ());
        Common.pp_table ppf (Resilience.attribution ()) );
    ("apps", fun ~quick ~jobs -> Apps.run_all ?jobs ~quick ppf ());
    ("chaos", fun ~quick ~jobs -> Chaos.run_all ?jobs ~quick ppf ());
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths. *)

let micro () =
  let open Bechamel in
  let heap_bench =
    Test.make ~name:"heap push/pop x1000"
      (Staged.stage (fun () ->
           let h = Pdq_engine.Heap.create () in
           for i = 0 to 999 do
             Pdq_engine.Heap.push h (float_of_int ((i * 7919) mod 1000)) i
           done;
           while Pdq_engine.Heap.pop h <> None do
             ()
           done))
  in
  let switch_bench =
    Test.make ~name:"switch_port forward x100"
      (Staged.stage (fun () ->
           let port =
             Pdq_core.Switch_port.create ~config:Pdq_core.Config.full
               ~switch_id:1 ~link_rate:1e9 ~init_rtt:1.5e-4 ()
           in
           for i = 0 to 99 do
             let h =
               Pdq_core.Header.make ~rate:1e9
                 ~expected_tx_time:(float_of_int (i + 1) *. 1e-4)
                 ~rtt:1.5e-4 ()
             in
             Pdq_core.Switch_port.process_forward port h ~flow_id:i
               ~now:(float_of_int i *. 1e-5)
           done))
  in
  let sim_bench =
    Test.make ~name:"pdq 2-flow bottleneck run"
      (Staged.stage (fun () ->
           let sim = Pdq_engine.Sim.create () in
           let built, rx =
             Pdq_topo.Builder.single_bottleneck ~sim ~senders:2 ()
           in
           let spec src =
             {
               Pdq_transport.Context.src;
               dst = rx;
               size = 50_000;
               deadline = None;
               start = 0.;
             }
           in
           ignore
             (Pdq_transport.Runner.execute ~topo:built.Pdq_topo.Builder.topo
                (Pdq_transport.Runner.Pdq Pdq_core.Config.full)
                [
                  spec built.Pdq_topo.Builder.hosts.(0);
                  spec built.Pdq_topo.Builder.hosts.(1);
                ])))
  in
  let forensics_bench =
    (* Record the event stream once; the benched unit is the pure
       analysis fold (span reconstruction + attribution), not the
       simulation producing it. *)
    let events =
      let mem = Pdq_telemetry.Trace.memory () in
      let telemetry =
        { Pdq_transport.Runner.no_telemetry with sinks = [ mem ] }
      in
      ignore
        (Pdq_exec.Scenario.run
           ~opts:(Pdq_exec.Exec_opts.telemetry telemetry)
           (Common.aggregation_scenario ~flows:12
              (Pdq_transport.Runner.Pdq Pdq_core.Config.full)));
      Pdq_telemetry.Trace.memory_events mem
    in
    Test.make ~name:"forensics attribution, 12-flow trace"
      (Staged.stage (fun () ->
           ignore (Pdq_forensics.Attribution.of_events events)))
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-32s %12.1f ns/run@." name est
          | _ -> Format.printf "%-32s (no estimate)@." name)
        results)
    [ heap_bench; switch_bench; sim_bench; forensics_bench ]

(* Machine-readable per-target record: wall-clock seconds, simulator
   events executed (global-profiler delta over the target), resulting
   events/s and the process peak heap. One JSON object per file so CI
   can diff runs without parsing the human tables. *)
let write_bench_json ~name ~wall ~events =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"target\": \"%s\", \"wall_s\": %.3f, \"events\": %d, \
     \"events_per_s\": %.0f, \"peak_heap_words\": %d}\n"
    name wall events
    (if wall > 0. then float_of_int events /. wall else 0.)
    (Gc.quick_stat ()).Gc.top_heap_words;
  close_out oc

(* Engine microbenchmark: the event-core hot path in isolation.

   64 self-rescheduling tick timers with slightly detuned periods keep
   the heap busy; every tick also cancels its previous auxiliary
   one-shot and schedules a fresh one, exercising the
   generation-counter cancel path and slot reuse exactly the way
   transport watchdogs do. All closures are preallocated before the
   clock starts, so the measured loop is the engine alone: schedule,
   cancel, sift, pop. Reported as best-of-3 events/s plus the
   GC minor-words-per-event figure that guards the allocation-free
   claim. *)
let k_bench_tick = Pdq_engine.Sim.Kind.register "bench.tick"
let k_bench_aux = Pdq_engine.Sim.Kind.register "bench.aux"

let engine_run_once ~target_events =
  let module Sim = Pdq_engine.Sim in
  let sim = Sim.create () in
  let n = 64 in
  (* A pre-cancelled far-future dummy seeds the aux-handle array: its
     stale handle makes each timer's first cancel a recognised no-op
     without boxing handles in an option. *)
  let sentinel = Sim.schedule sim ~delay:1e9 ignore in
  Sim.cancel sim sentinel;
  let aux = Array.make n sentinel in
  let ticks = Array.make n (fun () -> ()) in
  for i = 0 to n - 1 do
    let delay = 1e-5 +. (1e-7 *. float_of_int i) in
    ticks.(i) <-
      (fun () ->
        Sim.cancel sim aux.(i);
        aux.(i) <- Sim.schedule_k sim k_bench_aux ~delay:1e-4 ignore;
        if Sim.events_executed sim < target_events then
          ignore (Sim.schedule_k sim k_bench_tick ~delay ticks.(i)))
  done;
  for i = 0 to n - 1 do
    ignore
      (Sim.schedule_k sim k_bench_tick
         ~delay:(1e-5 +. (1e-7 *. float_of_int i))
         ticks.(i))
  done;
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run sim;
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. minor0 in
  let events = Sim.events_executed sim in
  (wall, events, minor /. float_of_int events)

let engine_json_path = "BENCH_engine.json"

(* Minimal flat-JSON number extraction — the bench artifacts are one
   object per file written by this binary, so a substring scan beats
   pulling in a JSON dependency. *)
let json_number s field =
  let key = Printf.sprintf "\"%s\":" field in
  let klen = String.length key and n = String.length s in
  let rec find i =
    if i + klen > n then None
    else if String.sub s i klen = key then begin
      let j = ref (i + klen) in
      while !j < n && s.[!j] = ' ' do incr j done;
      let st = !j in
      while
        !j < n
        && match s.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false
      do
        incr j
      done;
      float_of_string_opt (String.sub s st (!j - st))
    end
    else find (i + 1)
  in
  find 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let engine_bench ?compare ~threshold () =
  (* Read the baseline up front: the run overwrites BENCH_engine.json,
     and comparing a file against itself would always pass. *)
  let baseline =
    Option.map
      (fun path ->
        match json_number (read_file path) "events_per_s" with
        | Some v -> v
        | None ->
            Format.printf "compare: no events_per_s in %s@." path;
            exit 1)
      compare
  in
  let target_events = 2_000_000 in
  Format.printf "engine microbenchmark (%d events, best of 3)@."
    target_events;
  let best = ref None in
  for _run = 1 to 3 do
    let wall, events, mwpe = engine_run_once ~target_events in
    let eps = float_of_int events /. wall in
    Format.printf "  %.3fs  %d events  %.2fM ev/s  %.3f minor words/event@."
      wall events (eps /. 1e6) mwpe;
    match !best with
    | Some (e, _, _, _) when e >= eps -> ()
    | _ -> best := Some (eps, wall, events, mwpe)
  done;
  let eps, wall, events, mwpe = Option.get !best in
  Format.printf "engine: %.2fM events/s, %.3f minor words/event@."
    (eps /. 1e6) mwpe;
  let oc = open_out engine_json_path in
  Printf.fprintf oc
    "{\"target\": \"engine\", \"wall_s\": %.3f, \"events\": %d, \
     \"events_per_s\": %.0f, \"minor_words_per_event\": %.3f}\n"
    wall events eps mwpe;
  close_out oc;
  Format.printf "wrote %s@." engine_json_path;
  match baseline with
  | None -> ()
  | Some baseline ->
      let floor = baseline /. threshold in
      Format.printf
        "compare: current %.2fM ev/s vs baseline %.2fM ev/s \
         (floor %.2fM at %.2fx threshold)@."
        (eps /. 1e6) (baseline /. 1e6) (floor /. 1e6) threshold;
      if eps < floor then begin
        Format.printf "perf regression: engine below %.2fx floor@." threshold;
        exit 1
      end
      else Format.printf "perf smoke passed@."

(* Per-target wall-clock deadline: installed as the process-wide
   default cancel hook so the simulators created on sweep worker
   domains see it too (a domain-local default would not reach them).
   A target that blows the deadline raises [Sim.Cancelled] out of its
   deepest simulation; the driver prints a marker and moves on, so one
   runaway figure cannot eat the whole bench run. *)
let with_target_deadline timeout f =
  match timeout with
  | None -> f ()
  | Some secs ->
      let deadline = Unix.gettimeofday () +. secs in
      Pdq_engine.Sim.set_global_cancel (fun _ ->
          if Unix.gettimeofday () > deadline then
            Some (Printf.sprintf "wall>%gs" secs)
          else None);
      Fun.protect ~finally:Pdq_engine.Sim.clear_global_cancel f

let () =
  let only = ref None and full = ref false and run_micro = ref false in
  let fidelity = ref false and fidelity_dump = ref false in
  let jobs = ref None and timeout = ref None in
  let run_engine = ref false and compare_file = ref None in
  let compare_threshold = ref 1.5 in
  let args =
    [
      ("--only", Arg.String (fun s -> only := Some s), "FIG run a single target");
      ("--full", Arg.Set full, " full sweeps (slow)");
      ("--jobs", Arg.Int (fun n -> jobs := Some n),
       "N worker domains for the scenario sweeps (results are identical \
        for any N)");
      ("--timeout", Arg.Float (fun s -> timeout := Some s),
       "SEC wall-clock budget per figure target; a target that blows it \
        is marked TIMED OUT and the next one runs");
      ("--micro", Arg.Set run_micro, " Bechamel micro-benchmarks");
      ("--engine", Arg.Set run_engine,
       " engine microbenchmark (events/s + minor words/event); writes \
        BENCH_engine.json");
      ("--compare", Arg.String (fun s -> compare_file := Some s),
       "FILE compare the engine microbenchmark against a baseline JSON \
        and exit 1 below the threshold floor (implies --engine)");
      ("--compare-threshold",
       Arg.Float (fun t -> compare_threshold := t),
       "X allowed slowdown factor vs baseline before --compare fails \
        (default 1.5)");
      ("--fidelity", Arg.Set fidelity,
       " paper-fidelity regression gate (exit 1 when a metric drifts out \
        of its committed band or an invariant is violated)");
      ("--fidelity-dump", Arg.Set fidelity_dump,
       " print measured fidelity values for a deliberate band refresh");
    ]
  in
  Arg.parse args (fun _ -> ()) "pdq bench";
  if !fidelity_dump then Fidelity.dump ?jobs:!jobs ppf
  else if !fidelity then begin
    if not (Fidelity.run ?jobs:!jobs ppf) then begin
      Format.printf "fidelity gate FAILED@.";
      exit 1
    end;
    Format.printf "fidelity gate passed@."
  end
  else if !run_engine || !compare_file <> None then
    engine_bench ?compare:!compare_file ~threshold:!compare_threshold ()
  else if !run_micro then micro ()
  else begin
    let quick = not !full in
    let selected =
      match !only with
      | None -> targets
      | Some name -> List.filter (fun (n, _) -> n = name) targets
    in
    if selected = [] then begin
      Format.printf "unknown target; available:@.";
      List.iter (fun (n, _) -> Format.printf "  %s@." n) targets
    end
    else begin
      (* Per-target simulator profile: every Sim.t the figure code
         creates attaches to the global profiler; reset between targets
         so each report covers one figure. *)
      let profiler = Pdq_engine.Profiler.enable_global () in
      List.iter
        (fun (name, f) ->
          Pdq_engine.Profiler.reset profiler;
          let t0 = Unix.gettimeofday () in
          (match
             with_target_deadline !timeout (fun () -> f ~quick ~jobs:!jobs)
           with
          | () ->
              let wall = Unix.gettimeofday () -. t0 in
              Format.printf "[%s done in %.1fs]@.%a@.@." name wall
                Pdq_engine.Profiler.pp_report profiler;
              write_bench_json ~name ~wall
                ~events:(Pdq_engine.Profiler.events_executed profiler)
          | exception e ->
              (* A deadline surfaces as Sim.Cancelled, possibly wrapped
                 in Sweep_errors by a parallel figure sweep. *)
              let wall = Unix.gettimeofday () -. t0 in
              Format.printf "[%s %s after %.1fs: %s]@.@." name
                (match e with
                | Pdq_engine.Sim.Cancelled _
                | Pdq_exec.Sweep.Sweep_errors _ ->
                    "TIMED OUT"
                | _ -> "FAILED")
                wall (Printexc.to_string e)))
        selected
    end
  end
