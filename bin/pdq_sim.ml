(* pdq_sim: command-line front end for single packet-level experiments.

   Examples:
     pdq_sim --proto pdq --flows 10 --deadline-mean 20
     pdq_sim --proto tcp --topo bottleneck --flows 8 --no-deadlines
     pdq_sim --proto mpdq --subflows 4 --topo bcube --mean-size 400
     pdq_sim --proto pdq --topo fat-tree --flows 16 --flap-mtbf 0.3
     pdq_sim --reboot-mtbf 0.1
     pdq_sim --resilience *)

open Cmdliner
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Fault_plan = Pdq_faults.Fault_plan
module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Pattern = Pdq_workload.Pattern

type topo_kind = Tree | Bottleneck | Fat_tree | Bcube | Jellyfish

let build kind ~sim ~seed =
  match kind with
  | Tree -> Builder.single_rooted_tree ~sim ()
  | Bottleneck -> fst (Builder.single_bottleneck ~sim ~senders:16 ())
  | Fat_tree -> Builder.fat_tree ~sim ~k:4 ()
  | Bcube -> Builder.bcube ~sim ~n:2 ~k:3 ()
  | Jellyfish ->
      Builder.jellyfish ~sim ~rng:(Rng.create seed) ~switches:8 ~ports:24
        ~net_ports:16 ()

let protocol_of name subflows =
  match String.lowercase_ascii name with
  | "pdq" | "pdq-full" -> Ok (Runner.Pdq Pdq_core.Config.full)
  | "pdq-basic" -> Ok (Runner.Pdq Pdq_core.Config.basic)
  | "pdq-es" -> Ok (Runner.Pdq Pdq_core.Config.es)
  | "pdq-es-et" -> Ok (Runner.Pdq Pdq_core.Config.es_et)
  | "mpdq" | "m-pdq" ->
      Ok (Runner.mpdq ~subflows ())
  | "rcp" -> Ok Runner.Rcp
  | "d3" -> Ok Runner.D3
  | "tcp" -> Ok Runner.Tcp
  | other -> Error (Printf.sprintf "unknown protocol %S" other)

let run proto_name subflows topo_name flows mean_size_kb deadline_mean_ms
    no_deadlines pattern seed resilience full flap_mtbf flap_mttr reboot_mtbf
    fault_until trace_out metrics_out metrics_every profile =
  if resilience then begin
    Pdq_experiments.Resilience.run_all ~quick:(not full) Format.std_formatter ();
    0
  end
  else
  let topo_kind =
    match String.lowercase_ascii topo_name with
    | "tree" -> Tree
    | "bottleneck" -> Bottleneck
    | "fat-tree" | "fattree" -> Fat_tree
    | "bcube" -> Bcube
    | "jellyfish" -> Jellyfish
    | other -> failwith (Printf.sprintf "unknown topology %S" other)
  in
  match protocol_of proto_name subflows with
  | Error e ->
      prerr_endline e;
      1
  | Ok protocol ->
      (* Enable before [Sim.create] so the simulator attaches to the
         global profiler. *)
      let profiler =
        if profile then Some (Pdq_engine.Profiler.enable_global ()) else None
      in
      let sim = Sim.create () in
      let built = build topo_kind ~sim ~seed in
      let hosts = built.Builder.hosts in
      let rng = Rng.create seed in
      let sizes = Size_dist.uniform_paper ~mean_bytes:(mean_size_kb * 1000) in
      let ddist = Deadline_dist.exponential ~mean:(deadline_mean_ms /. 1e3) () in
      let pairs =
        match String.lowercase_ascii pattern with
        | "aggregation" ->
            Pattern.aggregation ~hosts ~receiver:hosts.(0) ~flows
        | "permutation" ->
            Pattern.random_permutation ~hosts ~rng
        | "pairs" -> Pattern.random_pairs ~hosts ~flows ~rng
        | other -> failwith (Printf.sprintf "unknown pattern %S" other)
      in
      let pairs = Array.of_list pairs in
      let specs =
        List.init flows (fun i ->
            let p = pairs.(i mod Array.length pairs) in
            {
              Context.src = p.Pattern.src;
              dst = p.Pattern.dst;
              size = Size_dist.sample sizes rng;
              deadline =
                (if no_deadlines then None
                 else Some (Deadline_dist.sample ddist rng));
              start = 0.;
            })
      in
      (* Optional fault injection for single runs: memoryless link
         flapping on switch-switch cables and/or switch crash-reboots,
         both truncated at --fault-until. *)
      let faults =
        let topo = built.Builder.topo in
        let flaps =
          match flap_mtbf with
          | Some mtbf ->
              Fault_plan.link_flaps
                (Rng.create (0x11AB + seed))
                ~links:(Fault_plan.switch_cables topo)
                ~mtbf ~mttr:flap_mttr ~until:fault_until
          | None -> Fault_plan.empty
        in
        let reboots =
          match reboot_mtbf with
          | Some mtbf ->
              Fault_plan.switch_reboots
                (Rng.create (0x5EB0 + seed))
                ~switches:(Fault_plan.switches topo)
                ~mtbf ~until:fault_until
          | None -> Fault_plan.empty
        in
        let plan = Fault_plan.merge flaps reboots in
        if Fault_plan.is_empty plan then None else Some plan
      in
      (* Telemetry: a JSONL trace sink and/or a metrics registry with
         the network-wide probe, driven by the --trace-out /
         --metrics-out flags. *)
      let trace_chan = Option.map open_out trace_out in
      let metrics =
        match metrics_out with
        | Some _ -> Some (Pdq_telemetry.Metrics.create ())
        | None -> None
      in
      let telemetry =
        {
          Runner.sinks =
            (match trace_chan with
            | Some oc -> [ Pdq_telemetry.Trace.jsonl oc ]
            | None -> []);
          metrics;
          metrics_every;
        }
      in
      let options =
        { Runner.default_options with Runner.seed; faults; telemetry }
      in
      let r = Runner.run ~options ~topo:built.Builder.topo protocol specs in
      (match trace_chan with
      | Some oc ->
          close_out oc;
          Printf.printf "trace written to %s\n" (Option.get trace_out)
      | None -> ());
      (match (metrics, metrics_out) with
      | Some m, Some path ->
          let oc = open_out path in
          if Filename.check_suffix path ".jsonl" then
            Pdq_telemetry.Metrics.write_jsonl m oc
          else Pdq_telemetry.Metrics.write_csv m oc;
          close_out oc;
          Printf.printf "metrics written to %s\n" path
      | _ -> ());
      Printf.printf "%s on %s: %d flows (%s)\n"
        (Runner.protocol_name protocol)
        topo_name flows pattern;
      Array.iteri
        (fun i (f : Runner.flow_result) ->
          Printf.printf
            "  flow %2d  %3d->%3d  %7dB  %s%s%s\n" i f.Runner.spec.Context.src
            f.Runner.spec.Context.dst f.Runner.spec.Context.size
            (match f.Runner.fct with
            | Some x -> Printf.sprintf "fct %7.2f ms" (1e3 *. x)
            | None -> "incomplete   ")
            (match f.Runner.spec.Context.deadline with
            | Some d ->
                Printf.sprintf "  deadline %5.1f ms %s" (1e3 *. d)
                  (if f.Runner.met_deadline then "MET" else "MISSED")
            | None -> "")
            (if f.Runner.terminated then "  [early terminated]"
             else if f.Runner.aborted then "  [aborted]"
             else ""))
        r.Runner.flows;
      Printf.printf "mean FCT %.3f ms | application throughput %.1f%% | %d/%d \
                     completed | %d aborted\n"
        (1e3 *. r.Runner.mean_fct)
        (100. *. r.Runner.application_throughput)
        r.Runner.completed (Array.length r.Runner.flows) r.Runner.aborted;
      if r.Runner.counters <> [] then begin
        Printf.printf "counters:";
        List.iter
          (fun (k, v) -> Printf.printf " %s=%d" k v)
          r.Runner.counters;
        print_newline ()
      end;
      (match profiler with
      | Some p -> Format.printf "%a@." Pdq_engine.Profiler.pp_report p
      | None -> ());
      0

let cmd =
  let proto =
    Arg.(value & opt string "pdq"
         & info [ "proto" ] ~doc:"pdq, pdq-basic, pdq-es, pdq-es-et, mpdq, rcp, d3, tcp")
  in
  let subflows =
    Arg.(value & opt int 3 & info [ "subflows" ] ~doc:"M-PDQ subflows")
  in
  let topo =
    Arg.(value & opt string "tree"
         & info [ "topo" ] ~doc:"tree, bottleneck, fat-tree, bcube, jellyfish")
  in
  let flows = Arg.(value & opt int 10 & info [ "flows" ] ~doc:"number of flows") in
  let mean_size =
    Arg.(value & opt int 100 & info [ "mean-size" ] ~doc:"mean flow size [KB]")
  in
  let deadline_mean =
    Arg.(value & opt float 20. & info [ "deadline-mean" ] ~doc:"mean deadline [ms]")
  in
  let no_deadlines =
    Arg.(value & flag & info [ "no-deadlines" ] ~doc:"deadline-unconstrained flows")
  in
  let pattern =
    Arg.(value & opt string "aggregation"
         & info [ "pattern" ] ~doc:"aggregation, permutation, pairs")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed") in
  let resilience =
    Arg.(value & flag
         & info [ "resilience" ]
             ~doc:"Run the resilience sweeps (bursty loss, link flapping, \
                   switch reboots) for PDQ vs. RCP/D3/TCP and exit")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"With --resilience: more seeds and intensities")
  in
  let flap_mtbf =
    Arg.(value & opt (some float) None
         & info [ "flap-mtbf" ]
             ~doc:"Flap switch-switch cables: mean time between failures [s]")
  in
  let flap_mttr =
    Arg.(value & opt float 0.03
         & info [ "flap-mttr" ] ~doc:"Mean time to repair a flapped cable [s]")
  in
  let reboot_mtbf =
    Arg.(value & opt (some float) None
         & info [ "reboot-mtbf" ]
             ~doc:"Crash-reboot switches: mean time between reboots [s]")
  in
  let fault_until =
    Arg.(value & opt float 0.5
         & info [ "fault-until" ] ~doc:"Stop injecting faults after this time [s]")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ]
             ~doc:"Write the structured event trace as JSONL to $(docv)"
             ~docv:"FILE")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ]
             ~doc:"Write the metrics registry (probe series, counters, \
                   histograms) to $(docv); .jsonl extension selects JSONL, \
                   anything else CSV"
             ~docv:"FILE")
  in
  let metrics_every =
    Arg.(value & opt float 1e-3
         & info [ "metrics-every" ]
             ~doc:"Metrics probe period in simulated seconds" ~docv:"SEC")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print the simulator profiler report (events executed, \
                   queue high-water mark, CPU per simulated second, per \
                   event kind timing)")
  in
  Cmd.v
    (Cmd.info "pdq_sim" ~doc:"Run one packet-level PDQ/RCP/D3/TCP experiment")
    Term.(
      const run $ proto $ subflows $ topo $ flows $ mean_size $ deadline_mean
      $ no_deadlines $ pattern $ seed $ resilience $ full $ flap_mtbf
      $ flap_mttr $ reboot_mtbf $ fault_until $ trace_out $ metrics_out
      $ metrics_every $ profile)

let () = exit (Cmd.eval' cmd)
