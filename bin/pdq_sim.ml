let () = exit (Pdq_cli.eval ())
