(* A realistic mixed datacenter workload (Fig. 5 style): VL2-like flow
   sizes — mostly mice, a few elephants — arriving as a Poisson
   process over random server pairs on the 12-server tree. Short flows
   (< 40 KB) carry deadlines; Early Termination gives up on hopeless
   ones to protect the rest.

   The workload is a pure generator inside the scenario, so the four
   protocol runs are independent scenarios evaluated in parallel by
   [Sweep.run].

   Run with: dune exec examples/deadline_datacenter.exe *)

module Rng = Pdq_engine.Rng
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Pattern = Pdq_workload.Pattern
module Arrivals = Pdq_workload.Arrivals
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

let duration = 0.08
let rate = 1200. (* flows per second *)

let specs_of ~seed ~topo:_ ~hosts =
  let rng = Rng.create seed in
  let dist = Size_dist.vl2 () in
  let ddist = Deadline_dist.exponential ~mean:0.02 () in
  let starts = Arrivals.poisson ~rng ~rate ~horizon:duration in
  let pairs = Pattern.random_pairs ~hosts ~flows:(List.length starts) ~rng in
  List.map2
    (fun start (p : Pattern.pair) ->
      let size = Size_dist.sample dist rng in
      {
        Context.src = p.Pattern.src;
        dst = p.Pattern.dst;
        size;
        deadline =
          (if size < 40_000 then Some (Deadline_dist.sample ddist rng)
           else None);
        start;
      })
    starts pairs

let protocols =
  [
    ("PDQ(Full)", Runner.Pdq Pdq_core.Config.full);
    ("D3", Runner.D3);
    ("RCP", Runner.Rcp);
    ("TCP", Runner.Tcp);
  ]

let () =
  let scenario proto =
    Scenario.make ~seed:7 ~horizon:(duration +. 3.)
      ~workload:
        (Scenario.Generated { label = "VL2 Poisson mix"; specs = specs_of })
      proto
  in
  let results = Sweep.run (List.map (fun (_, p) -> scenario p) protocols) in
  List.iter2
    (fun (name, _) (r : Runner.result) ->
      let shorts =
        Array.to_list r.Runner.flows
        |> List.filter (fun (f : Runner.flow_result) ->
               f.Runner.spec.Context.size < 40_000)
        |> List.length
      in
      let terminated =
        Array.to_list r.Runner.flows
        |> List.filter (fun (f : Runner.flow_result) -> f.Runner.terminated)
        |> List.length
      in
      Printf.printf
        "%-10s %3d flows (%d short) | deadline throughput %5.1f%% | mean FCT \
         %6.2f ms | %d early-terminated\n"
        name
        (Array.length r.Runner.flows)
        shorts
        (100. *. r.Runner.application_throughput)
        (1e3 *. r.Runner.mean_fct)
        terminated)
    protocols results
