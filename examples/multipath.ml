(* Multipath PDQ (§6) on BCube(2,3): 16 servers with four NICs each.
   Single-path PDQ can use one interface per flow; M-PDQ stripes each
   flow over subflows routed on disjoint ECMP paths and shifts load
   away from paused subflows.

   One scenario per protocol variant, evaluated in parallel by
   [Sweep.run] — the path closure captures only immutable data, so it
   crosses domains safely.

   Run with: dune exec examples/multipath.exe *)

module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Units = Pdq_engine.Units
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Pattern = Pdq_workload.Pattern
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

let () =
  let scenario protocol =
    Scenario.make
      ~topo:(Scenario.Bcube { n = 2; k = 3 })
      ~workload:
        (Scenario.Generated
           {
             label = "random permutation, 400 KB";
             specs =
               (fun ~seed:_ ~topo:_ ~hosts ->
                 let rng = Rng.create 11 in
                 let pairs = Pattern.random_permutation ~hosts ~rng in
                 List.map
                   (fun (p : Pattern.pair) ->
                     {
                       Context.src = p.Pattern.src;
                       dst = p.Pattern.dst;
                       size = Units.kbyte 400.;
                       deadline = None;
                       start = 0.;
                     })
                   pairs);
           })
      protocol
  in
  (* M-PDQ subflows follow BCube address-based parallel paths, leaving
     the source through different server ports. The throwaway instance
     only serves to compute the address mapping. *)
  let bcube_paths =
    let sim = Sim.create () in
    let built = Builder.bcube ~sim ~n:2 ~k:3 () in
    fun ~src ~dst -> Builder.bcube_paths ~n:2 ~k:3 built ~src ~dst
  in
  let protocols =
    [ ("PDQ", Runner.Pdq Pdq_core.Config.full) ]
    @ List.map
        (fun k ->
          ( Printf.sprintf "M-PDQ(%d)" k,
            Runner.mpdq ~paths:bcube_paths ~subflows:k () ))
        [ 2; 3; 4 ]
  in
  Printf.printf "BCube(2,3), random permutation, 400 KB per flow:\n\n";
  let results = Sweep.run (List.map (fun (_, p) -> scenario p) protocols) in
  List.iter2
    (fun (name, _) (r : Runner.result) ->
      Printf.printf "  %-10s mean FCT %6.2f ms (%d/%d completed)\n" name
        (1e3 *. r.Runner.mean_fct)
        r.Runner.completed
        (Array.length r.Runner.flows))
    protocols results
