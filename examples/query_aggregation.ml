(* Query aggregation (partition/aggregate): N workers answer one
   aggregator at the same instant, each response carrying a deadline —
   the scenario motivating the paper's evaluation (§5.2).

   This example runs the full protocol roster on the default 12-server
   single-rooted tree and reports application throughput (% of flows
   meeting their deadline), including the omniscient Optimal scheduler
   (EDF + Moore-Hodgson). The per-seed runs fan out over worker
   domains via [Sweep]; the averages are identical for any job count.

   Run with: dune exec examples/query_aggregation.exe [-- flows] *)

module Common = Pdq_experiments.Common
module Runner = Pdq_transport.Runner

let () =
  let flows =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12
  in
  Printf.printf
    "Query aggregation: %d flows, sizes U[2KB,198KB], deadlines Exp(20ms, \
     floor 3ms)\n\n"
    flows;
  let optimal =
    100. *. Common.optimal_aggregation_throughput ~seeds:[ 1; 2; 3 ] ~flows ()
  in
  Printf.printf "  %-12s %6.1f %% of deadlines met (upper bound)\n" "Optimal"
    optimal;
  List.iter
    (fun (name, proto) ->
      let at =
        Common.run_aggregation ~seeds:[ 1; 2; 3 ] ~flows proto (fun r ->
            100. *. r.Runner.application_throughput)
      in
      Printf.printf "  %-12s %6.1f %% of deadlines met\n" name at)
    Common.packet_protocols
