(* Quickstart: describe a tiny experiment as a scenario — two PDQ
   flows through one bottleneck — and watch preemptive scheduling
   finish the short flow first while fair sharing (RCP) delays it.

   Run with: dune exec examples/quickstart.exe *)

module Units = Pdq_engine.Units
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Scenario = Pdq_exec.Scenario

(* One experiment: two senders, one switch, one receiver, 1 Gbps links
   (the single-bottleneck topology of Fig. 2b); a 1 MB and a 100 KB
   flow start simultaneously. The scenario is pure data — the
   simulator and topology are built inside [Scenario.run]. *)
let scenario protocol =
  Scenario.make
    ~topo:(Scenario.Bottleneck { senders = 2 })
    ~workload:
      (Scenario.Generated
         {
           label = "1MB + 100KB race";
           specs =
             (fun ~seed:_ ~topo:_ ~hosts ->
               let receiver = hosts.(Array.length hosts - 1) in
               let flow src size =
                 { Context.src; dst = receiver; size; deadline = None; start = 0. }
               in
               [
                 flow hosts.(0) (Units.mbyte 1.);
                 flow hosts.(1) (Units.kbyte 100.);
               ]);
         })
    protocol

let show name (r : Runner.result) =
  Printf.printf "%s:\n" name;
  Array.iteri
    (fun i (f : Runner.flow_result) ->
      Printf.printf "  flow %d (%7d bytes): completed in %s\n" i
        f.Runner.spec.Context.size
        (match f.Runner.fct with
        | Some fct -> Printf.sprintf "%5.2f ms" (1e3 *. fct)
        | None -> "never"))
    r.Runner.flows;
  Printf.printf "  mean FCT: %.2f ms\n\n" (1e3 *. r.Runner.mean_fct)

let () =
  show "PDQ(Full) - the short flow preempts the long one"
    (Scenario.run (scenario (Runner.Pdq Pdq_core.Config.full)));
  show "RCP - fair sharing delays the short flow"
    (Scenario.run (scenario Runner.Rcp))
