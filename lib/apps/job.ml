module Size_dist = Pdq_workload.Size_dist

type pattern =
  | Fan_out of { workers : int }
  | Fan_in of { workers : int }
  | Shuffle of { mappers : int; reducers : int }
  | Transfer

type stage = {
  label : string;
  pattern : pattern;
  sizes : Size_dist.t;
  deps : int list;
}

type t = { name : string; stages : stage array; deadline : float option }

let pattern_flow_count = function
  | Fan_out { workers } | Fan_in { workers } -> workers
  | Shuffle { mappers; reducers } -> mappers * reducers
  | Transfer -> 1

let pattern_label = function
  | Fan_out _ -> "fan-out"
  | Fan_in _ -> "fan-in"
  | Shuffle _ -> "shuffle"
  | Transfer -> "transfer"

let stage ?label ?(deps = []) ~sizes pattern =
  let label = match label with Some l -> l | None -> pattern_label pattern in
  { label; pattern; sizes; deps }

let validate_pattern i = function
  | Fan_out { workers } | Fan_in { workers } ->
      if workers < 1 then
        invalid_arg (Printf.sprintf "Job.make: stage %d needs >= 1 worker" i)
  | Shuffle { mappers; reducers } ->
      if mappers < 1 || reducers < 1 then
        invalid_arg
          (Printf.sprintf "Job.make: stage %d needs >= 1 mapper and reducer" i)
  | Transfer -> ()

let make ?deadline ~name stages =
  if stages = [] then invalid_arg "Job.make: a job needs at least one stage";
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Job.make: deadline must be positive"
  | _ -> ());
  let stages = Array.of_list stages in
  Array.iteri
    (fun i s ->
      validate_pattern i s.pattern;
      List.iter
        (fun d ->
          if d < 0 || d >= i then
            invalid_arg
              (Printf.sprintf
                 "Job.make: stage %d depends on %d, which is not an earlier \
                  stage"
                 i d))
        s.deps)
    stages;
  { name; stages; deadline }

(* Chain a list of stages linearly: stage i depends on stage i-1. *)
let chain stages =
  List.mapi (fun i s -> if i = 0 then s else { s with deps = [ i - 1 ] }) stages

let partition_aggregate ?deadline ?request_sizes ?(rounds = 1) ~name ~workers
    ~response_sizes () =
  if rounds < 1 then invalid_arg "Job.partition_aggregate: rounds < 1";
  let request_sizes =
    match request_sizes with Some s -> s | None -> Size_dist.fixed 2_000
  in
  let round r =
    [
      stage
        ~label:(Printf.sprintf "partition[%d]" r)
        ~sizes:request_sizes
        (Fan_out { workers });
      stage
        ~label:(Printf.sprintf "aggregate[%d]" r)
        ~sizes:response_sizes
        (Fan_in { workers });
    ]
  in
  make ?deadline ~name (chain (List.concat (List.init rounds round)))

let map_reduce ?deadline ?(rounds = 1) ~name ~mappers ~reducers ~shuffle_sizes
    ~output_sizes () =
  if rounds < 1 then invalid_arg "Job.map_reduce: rounds < 1";
  let round r =
    [
      stage
        ~label:(Printf.sprintf "shuffle[%d]" r)
        ~sizes:shuffle_sizes
        (Shuffle { mappers; reducers });
      stage
        ~label:(Printf.sprintf "reduce[%d]" r)
        ~sizes:output_sizes
        (Fan_in { workers = reducers });
    ]
  in
  make ?deadline ~name (chain (List.concat (List.init rounds round)))

let pipeline ?deadline ~name ~depth ~sizes () =
  if depth < 1 then invalid_arg "Job.pipeline: depth < 1";
  make ?deadline ~name
    (chain
       (List.init depth (fun i ->
            stage ~label:(Printf.sprintf "hop[%d]" i) ~sizes Transfer)))

let flow_count t =
  Array.fold_left (fun n s -> n + pattern_flow_count s.pattern) 0 t.stages

let levels t =
  let lvl = Array.make (Array.length t.stages) 0 in
  Array.iteri
    (fun i s ->
      lvl.(i) <- List.fold_left (fun m d -> max m (lvl.(d) + 1)) 0 s.deps)
    t.stages;
  lvl

(* The expected serialized bytes at the stage's most loaded
   destination: the quantity a level's finishing time scales with. *)
let stage_weight s =
  let fan_in =
    match s.pattern with
    | Fan_out _ | Transfer -> 1
    | Fan_in { workers } -> workers
    | Shuffle { mappers; _ } -> mappers
  in
  float_of_int fan_in *. Size_dist.mean s.sizes

let stage_deadlines ?(floor = 3e-3) t =
  let n = Array.length t.stages in
  match t.deadline with
  | None -> Array.make n None
  | Some job_deadline ->
      let lvl = levels t in
      let nlevels = 1 + Array.fold_left max 0 lvl in
      let level_weight = Array.make nlevels 0. in
      Array.iteri
        (fun i s ->
          level_weight.(lvl.(i)) <- max level_weight.(lvl.(i)) (stage_weight s))
        t.stages;
      let total = Array.fold_left ( +. ) 0. level_weight in
      Array.mapi
        (fun i _ ->
          let share =
            if total > 0. then
              job_deadline *. level_weight.(lvl.(i)) /. total
            else job_deadline /. float_of_int nlevels
          in
          Some (Float.max floor share))
        t.stages
