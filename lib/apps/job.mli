(** Declarative application-level jobs.

    A job is a DAG of {e stages}; each stage is a flow pattern
    (request fan-out, partition-aggregate fan-in, all-to-all shuffle,
    or a single pipeline transfer) whose flows are all injected
    together once every dependency stage has finished. A job finishes
    when the last flow of its last stage delivers its last byte — the
    application-level latency the paper's per-flow metrics cannot
    see.

    A job here is pure description: no hosts, no sizes drawn, no
    simulator state. {!Job_plan.compile} materializes it against a
    topology's host array and an {!Pdq_engine.Rng.t}, and
    {!Job_tracker} executes the plan at runtime over the telemetry
    bus. *)

type pattern =
  | Fan_out of { workers : int }
      (** The job's master sends one flow to each of [workers] workers
          (the request/partition half of partition-aggregate). *)
  | Fan_in of { workers : int }
      (** Each of [workers] workers sends one flow back to the master
          (the response/aggregate half; the stage completes when the
          {e last} response lands). *)
  | Shuffle of { mappers : int; reducers : int }
      (** All-to-all coflow: every mapper sends one flow to every
          reducer. Colocated mapper/reducer pairs exchange data
          locally and contribute no network flow. *)
  | Transfer
      (** One flow along the job's pipeline chain: the [k]-th
          [Transfer] stage of a job sends hop [k] → hop [k+1] of the
          chain drawn at compile time. *)

type stage = {
  label : string;
  pattern : pattern;
  sizes : Pdq_workload.Size_dist.t;  (** Per-flow size draw. *)
  deps : int list;
      (** Indices of stages that must finish before this one starts.
          Must all be smaller than this stage's own index, so a job is
          a DAG by construction. *)
}

type t = {
  name : string;
  stages : stage array;
  deadline : float option;
      (** Job-level deadline in seconds, relative to the job's
          arrival; propagated to stage and flow deadlines by
          {!stage_deadlines}. *)
}

val stage :
  ?label:string ->
  ?deps:int list ->
  sizes:Pdq_workload.Size_dist.t ->
  pattern ->
  stage
(** A stage with no dependencies unless [deps] says otherwise. *)

val make : ?deadline:float -> name:string -> stage list -> t
(** Validate and freeze a job. Raises [Invalid_argument] on an empty
    stage list, a dependency index that is not an earlier stage, a
    non-positive width, or a non-positive [deadline]. *)

(** {1 Canonical job shapes} *)

val partition_aggregate :
  ?deadline:float ->
  ?request_sizes:Pdq_workload.Size_dist.t ->
  ?rounds:int ->
  name:string ->
  workers:int ->
  response_sizes:Pdq_workload.Size_dist.t ->
  unit ->
  t
(** [rounds] (default 1) repetitions of request fan-out (default
    2 KB fixed-size requests) followed by response fan-in, each round
    depending on the previous — the canonical two-stage
    partition-aggregate query at [rounds = 1]. *)

val map_reduce :
  ?deadline:float ->
  ?rounds:int ->
  name:string ->
  mappers:int ->
  reducers:int ->
  shuffle_sizes:Pdq_workload.Size_dist.t ->
  output_sizes:Pdq_workload.Size_dist.t ->
  unit ->
  t
(** [rounds] (default 1) repetitions of an all-to-all shuffle followed
    by a reducer→master output fan-in. *)

val pipeline :
  ?deadline:float ->
  name:string ->
  depth:int ->
  sizes:Pdq_workload.Size_dist.t ->
  unit ->
  t
(** [depth] sequential single-flow transfer stages. *)

(** {1 Structure} *)

val pattern_flow_count : pattern -> int
(** Upper bound on the stage's flow count ([Shuffle] colocation can
    only remove flows). *)

val flow_count : t -> int
(** Sum of {!pattern_flow_count} over the stages. *)

val levels : t -> int array
(** Topological level of each stage: 0 for a root stage, otherwise
    1 + the maximum level among its dependencies. *)

(** {1 Deadline propagation} *)

val stage_deadlines : ?floor:float -> t -> float option array
(** Split the job deadline into per-stage deadlines (relative to each
    stage's own injection time).

    Stages on the same topological level run concurrently and share
    that level's slice; the job deadline is divided across levels
    proportionally to each level's weight — the expected serialized
    bytes at its most loaded destination (mean flow size × the
    largest per-destination fan-in), which is the quantity that
    actually bounds how fast a level can finish. Every slice is then
    clipped up to [floor] (default 3 ms, the
    {!Pdq_workload.Deadline_dist} floor — tiny deadlines are
    unrealistic), so the clipped slices can sum to {e more} than the
    job deadline for very tight jobs.

    All [None] when the job has no deadline. *)
