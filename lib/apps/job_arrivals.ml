let times ~rng ?rate ~count () =
  if count < 0 then invalid_arg "Job_arrivals.times: count < 0";
  match rate with
  | None -> Pdq_workload.Arrivals.simultaneous ~n:count ~at:0.
  | Some rate -> Pdq_workload.Arrivals.poisson_n ~rng ~rate ~n:count

(* Explicit recursion, not [List.mapi]: both [job] and [compile] draw
   from [rng], and the order of those draws must be the arrival order,
   not whatever argument-evaluation order [mapi]'s cons happens to
   pick. *)
let plans ~rng ~hosts ?rate ?floor ~count ~job () =
  let rec go index = function
    | [] -> []
    | arrival :: rest ->
        let plan = Job_plan.compile ~rng ~hosts ~arrival ?floor (job ~index) in
        plan :: go (index + 1) rest
  in
  go 0 (times ~rng ?rate ~count ())
