(** Job arrival processes: Poisson job generation over the existing
    {!Pdq_workload.Arrivals} / {!Pdq_workload.Size_dist} machinery. *)

val times :
  rng:Pdq_engine.Rng.t -> ?rate:float -> count:int -> unit -> float list
(** Arrival times for [count] jobs: all 0 when [rate] is absent
    (simultaneous queries), otherwise the first [count] arrivals of a
    Poisson process of intensity [rate] jobs/second
    ({!Pdq_workload.Arrivals.poisson_n}), increasing. *)

val plans :
  rng:Pdq_engine.Rng.t ->
  hosts:int array ->
  ?rate:float ->
  ?floor:float ->
  count:int ->
  job:(index:int -> Job.t) ->
  unit ->
  Job_plan.t list
(** Draw arrival times, then build and compile job [index]
    (0-based) at each, threading one [rng] through every draw in a
    fixed order so the whole workload is a pure function of the seed.
    [floor] is the deadline-propagation floor
    ({!Job.stage_deadlines}). *)
