module Attribution = Pdq_forensics.Attribution

type straggler = {
  job : string;
  flow : int;
  jct : float;
  flow_report : Attribution.flow_report option;
}

let stragglers ~events (report : Job_metrics.report) =
  let attribution = Attribution.of_events events in
  Array.to_list report.Job_metrics.jobs
  |> List.filter_map (fun (j : Job_metrics.job_outcome) ->
         match (j.Job_metrics.jct, j.Job_metrics.straggler) with
         | Some jct, Some flow ->
             Some
               {
                 job = j.Job_metrics.name;
                 flow;
                 jct;
                 flow_report =
                   List.find_opt
                     (fun (f : Attribution.flow_report) ->
                       f.Attribution.flow = flow)
                     attribution.Attribution.flows;
               }
         | _ -> None)
