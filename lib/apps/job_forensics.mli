(** Straggler attribution: which flow finished each job, and where
    did {e that} flow's completion time go?

    Bridges {!Job_metrics} to {!Pdq_forensics.Attribution}: a job's
    JCT is its straggler's completion time, so the straggler's FCT
    decomposition (handshake / serialization / paused / recovery /
    downtime) explains the job-level latency. *)

type straggler = {
  job : string;
  flow : int;
  jct : float;
  flow_report : Pdq_forensics.Attribution.flow_report option;
      (** The straggler's FCT decomposition; [None] when the trace
          held no spans for it (e.g. the trace was truncated). *)
}

val stragglers :
  events:(float * Pdq_telemetry.Trace.event) list ->
  Job_metrics.report ->
  straggler list
(** One entry per {e completed} job, in report order. [events] is the
    run's recorded trace (e.g. a memory sink's contents). *)
