type stage_outcome = {
  label : string;
  flows : int;
  injected_at : float option;
  finished_at : float option;
  clean : bool;
  cct : float option;
}

type job_outcome = {
  name : string;
  arrival : float;
  deadline : float option;
  finished_at : float option;
  jct : float option;
  met_deadline : bool;
  failed : bool;
  straggler : int option;
  stages : stage_outcome array;
}

type report = {
  jobs : job_outcome array;
  completed : int;
  failed : int;
  unfinished : int;
  mean_jct : float;
  max_jct : float;
  mean_stage_cct : float;
  deadline_jobs : int;
  deadline_met : int;
}

let of_outcomes jobs =
  let completed = ref 0 and failed = ref 0 and unfinished = ref 0 in
  let jct_sum = ref 0. and jct_max = ref 0. and jct_n = ref 0 in
  let cct_sum = ref 0. and cct_n = ref 0 in
  let dl_jobs = ref 0 and dl_met = ref 0 in
  Array.iter
    (fun j ->
      (match (j.jct, j.failed) with
      | Some jct, _ ->
          incr completed;
          jct_sum := !jct_sum +. jct;
          jct_max := Float.max !jct_max jct;
          incr jct_n
      | None, true -> incr failed
      | None, false -> incr unfinished);
      if j.deadline <> None then begin
        incr dl_jobs;
        if j.met_deadline then incr dl_met
      end;
      Array.iter
        (fun s ->
          match s.cct with
          | Some c ->
              cct_sum := !cct_sum +. c;
              incr cct_n
          | None -> ())
        j.stages)
    jobs;
  {
    jobs;
    completed = !completed;
    failed = !failed;
    unfinished = !unfinished;
    mean_jct = (if !jct_n > 0 then !jct_sum /. float_of_int !jct_n else 0.);
    max_jct = !jct_max;
    mean_stage_cct =
      (if !cct_n > 0 then !cct_sum /. float_of_int !cct_n else 0.);
    deadline_jobs = !dl_jobs;
    deadline_met = !dl_met;
  }

let miss_rate r =
  if r.deadline_jobs = 0 then 0.
  else float_of_int (r.deadline_jobs - r.deadline_met)
       /. float_of_int r.deadline_jobs

let summary r =
  Printf.sprintf
    "jobs: %d completed, %d failed, %d unfinished | mean JCT %.3f ms | \
     deadline misses %d/%d"
    r.completed r.failed r.unfinished (1e3 *. r.mean_jct)
    (r.deadline_jobs - r.deadline_met)
    r.deadline_jobs

(* Hand-rolled JSON, matching the repo's no-dependency convention
   (Metrics, Sweep reports): fixed field order, %.9g floats so values
   round-trip, explicit nulls for absent options. *)
let buf_opt_float b = function
  | Some v -> Printf.bprintf b "%.9g" v
  | None -> Buffer.add_string b "null"

let buf_opt_int b = function
  | Some v -> Printf.bprintf b "%d" v
  | None -> Buffer.add_string b "null"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"jobs\": [";
  Array.iteri
    (fun i j ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "{\"name\": \"%s\", \"arrival\": %.9g, \"deadline\": "
        (json_escape j.name) j.arrival;
      buf_opt_float b j.deadline;
      Buffer.add_string b ", \"jct\": ";
      buf_opt_float b j.jct;
      Printf.bprintf b ", \"met_deadline\": %b, \"failed\": %b, \"straggler\": "
        j.met_deadline j.failed;
      buf_opt_int b j.straggler;
      Buffer.add_string b ", \"stages\": [";
      Array.iteri
        (fun k s ->
          if k > 0 then Buffer.add_string b ", ";
          Printf.bprintf b
            "{\"label\": \"%s\", \"flows\": %d, \"injected_at\": "
            (json_escape s.label) s.flows;
          buf_opt_float b s.injected_at;
          Buffer.add_string b ", \"finished_at\": ";
          buf_opt_float b s.finished_at;
          Printf.bprintf b ", \"clean\": %b, \"cct\": " s.clean;
          buf_opt_float b s.cct;
          Buffer.add_string b "}")
        j.stages;
      Buffer.add_string b "]}")
    r.jobs;
  Printf.bprintf b
    "], \"completed\": %d, \"failed\": %d, \"unfinished\": %d, \"mean_jct\": \
     %.9g, \"max_jct\": %.9g, \"mean_stage_cct\": %.9g, \"deadline_jobs\": \
     %d, \"deadline_met\": %d, \"miss_rate\": %.9g}"
    r.completed r.failed r.unfinished r.mean_jct r.max_jct r.mean_stage_cct
    r.deadline_jobs r.deadline_met (miss_rate r);
  Buffer.contents b

let pp ppf r =
  Array.iter
    (fun j ->
      Format.fprintf ppf "  %-10s arrival %7.2f ms  %s%s%s@." j.name
        (1e3 *. j.arrival)
        (match j.jct with
        | Some jct -> Printf.sprintf "jct %8.3f ms" (1e3 *. jct)
        | None when j.failed -> "FAILED        "
        | None -> "unfinished    ")
        (match j.deadline with
        | Some d ->
            Printf.sprintf "  deadline %5.1f ms %s" (1e3 *. d)
              (if j.met_deadline then "MET" else "MISSED")
        | None -> "")
        (match j.straggler with
        | Some f -> Printf.sprintf "  straggler flow %d" f
        | None -> ""))
    r.jobs;
  Format.fprintf ppf "%s@." (summary r)
