(** Job-level metrics: completion times, deadline misses, coflow
    (stage) completion times and straggler identification, aggregated
    over a run's jobs by {!Job_tracker}. *)

type stage_outcome = {
  label : string;
  flows : int;  (** Flows planned for the stage. *)
  injected_at : float option;
      (** When the stage's flows entered the run; [None] when an
          upstream failure (or the horizon) kept it from starting. *)
  finished_at : float option;
      (** When the stage's last flow reached a terminal state. *)
  clean : bool;
      (** Every flow completed (no termination / abort). *)
  cct : float option;
      (** Coflow completion time: [finished_at - injected_at], only
          for clean stages. *)
}

type job_outcome = {
  name : string;
  arrival : float;
  deadline : float option;  (** Relative to [arrival]. *)
  finished_at : float option;
      (** When the last flow of the last stage completed — only for
          jobs whose every stage finished cleanly. *)
  jct : float option;  (** [finished_at - arrival]. *)
  met_deadline : bool;
      (** Finished within the job deadline (vacuously [true] for a
          completed job without one, [false] for a failed or
          unfinished job). *)
  failed : bool;
      (** Some stage finished unclean: a constituent flow was
          terminated or aborted, so downstream stages were never
          injected. *)
  straggler : int option;
      (** The flow id whose terminal event finished the job — the
          flow to hand to {!Job_forensics} for attribution. *)
  stages : stage_outcome array;
}

type report = {
  jobs : job_outcome array;  (** In arrival (plan) order. *)
  completed : int;
  failed : int;
  unfinished : int;  (** The simulation ended mid-job. *)
  mean_jct : float;  (** Over completed jobs; 0 when none. *)
  max_jct : float;
  mean_stage_cct : float;  (** Over clean stages of all jobs. *)
  deadline_jobs : int;  (** Jobs carrying a deadline. *)
  deadline_met : int;
}

val of_outcomes : job_outcome array -> report

val miss_rate : report -> float
(** Fraction of deadline-carrying jobs that missed (failed and
    unfinished deadline jobs count as misses); 0 when none carry a
    deadline. *)

val summary : report -> string
(** One deterministic line. *)

val to_json : report -> string
(** Full report as one JSON object (jobs, stages, aggregates). *)

val pp : Format.formatter -> report -> unit
(** Human-readable per-job table plus the summary line. *)
