module Rng = Pdq_engine.Rng
module Size_dist = Pdq_workload.Size_dist

type flow_site = { src : int; dst : int; size : int }

type stage_plan = {
  label : string;
  deps : int list;
  deadline : float option;
  flows : flow_site array;
}

type t = {
  name : string;
  arrival : float;
  deadline : float option;
  stages : stage_plan array;
}

(* [n] distinct hosts drawn from [hosts] minus [avoid], in draw order. *)
let distinct ~rng ~hosts ~avoid ~n ~what =
  let pool = Array.of_list (List.filter (fun h -> not (List.mem h avoid)) hosts) in
  if Array.length pool < n then
    invalid_arg
      (Printf.sprintf "Job_plan.compile: %d hosts left for %d %s"
         (Array.length pool) n what);
  (* Partial Fisher–Yates: the first [n] slots are a uniform sample. *)
  let len = Array.length pool in
  for i = 0 to n - 1 do
    let j = i + Rng.int rng (len - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 n

let compile ~rng ~hosts ~arrival ?floor (job : Job.t) =
  let stages = job.Job.stages in
  let host_list = Array.to_list hosts in
  let n_hosts = Array.length hosts in
  if n_hosts < 2 then invalid_arg "Job_plan.compile: need >= 2 hosts";
  (* Pool sizes over all stages, so every stage of the job reuses the
     same master/worker/reducer cast. *)
  let need_workers, need_reducers, transfers =
    Array.fold_left
      (fun (w, r, t) (s : Job.stage) ->
        match s.Job.pattern with
        | Job.Fan_out { workers } | Job.Fan_in { workers } ->
            (max w workers, r, t)
        | Job.Shuffle { mappers; reducers } ->
            (max w mappers, max r reducers, t)
        | Job.Transfer -> (w, r, t + 1))
      (0, 0, 0) stages
  in
  let master = hosts.(Rng.int rng n_hosts) in
  let workers =
    if need_workers = 0 then [||]
    else
      distinct ~rng ~hosts:host_list ~avoid:[ master ] ~n:need_workers
        ~what:"workers"
  in
  let reducers =
    if need_reducers = 0 then [||]
    else
      (* Disjoint from the mappers when the topology allows it;
         otherwise reducers colocate with workers and the shuffle
         skips the self-pairs. *)
      let avoid = master :: Array.to_list workers in
      if n_hosts - List.length avoid >= need_reducers then
        distinct ~rng ~hosts:host_list ~avoid ~n:need_reducers ~what:"reducers"
      else
        distinct ~rng ~hosts:host_list ~avoid:[ master ] ~n:need_reducers
          ~what:"reducers"
  in
  let chain =
    if transfers = 0 then [||]
    else begin
      (* master → h1 → h2 → …, each hop's endpoints distinct. *)
      let c = Array.make (transfers + 1) master in
      for i = 1 to transfers do
        let rec pick () =
          let h = hosts.(Rng.int rng n_hosts) in
          if h = c.(i - 1) then pick () else h
        in
        c.(i) <- pick ()
      done;
      c
    end
  in
  let deadlines = Job.stage_deadlines ?floor job in
  let transfer_seen = ref 0 in
  let plan_stage i (s : Job.stage) =
    let draw () = Size_dist.sample s.Job.sizes rng in
    let flows =
      match s.Job.pattern with
      | Job.Fan_out { workers = w } ->
          Array.init w (fun k ->
              { src = master; dst = workers.(k); size = draw () })
      | Job.Fan_in { workers = w } ->
          Array.init w (fun k ->
              { src = workers.(k); dst = master; size = draw () })
      | Job.Shuffle { mappers; reducers = r } ->
          let acc = ref [] in
          for m = 0 to mappers - 1 do
            for j = 0 to r - 1 do
              if workers.(m) <> reducers.(j) then
                acc :=
                  { src = workers.(m); dst = reducers.(j); size = draw () }
                  :: !acc
            done
          done;
          Array.of_list (List.rev !acc)
      | Job.Transfer ->
          let k = !transfer_seen in
          incr transfer_seen;
          [| { src = chain.(k); dst = chain.(k + 1); size = draw () } |]
    in
    { label = s.Job.label; deps = s.Job.deps; deadline = deadlines.(i); flows }
  in
  {
    name = job.Job.name;
    arrival;
    deadline = job.Job.deadline;
    stages = Array.mapi plan_stage stages;
  }

let flow_count t =
  Array.fold_left (fun n s -> n + Array.length s.flows) 0 t.stages
