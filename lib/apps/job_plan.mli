(** A {!Job.t} materialized against a concrete topology: hosts
    assigned, flow sizes drawn, stage deadlines propagated — still
    pure data, but everything random is fixed at compile time, so
    runtime injection ({!Job_tracker}) consumes no randomness and the
    run stays deterministic regardless of event interleaving. *)

type flow_site = { src : int; dst : int; size : int }

type stage_plan = {
  label : string;
  deps : int list;  (** Same indices as in the {!Job.t}. *)
  deadline : float option;
      (** Per-flow relative deadline once the stage is injected (the
          stage's slice of the job deadline, see
          {!Job.stage_deadlines}). *)
  flows : flow_site array;
}

type t = {
  name : string;
  arrival : float;  (** Absolute job arrival time. *)
  deadline : float option;  (** Job deadline, relative to [arrival]. *)
  stages : stage_plan array;
}

val compile :
  rng:Pdq_engine.Rng.t ->
  hosts:int array ->
  arrival:float ->
  ?floor:float ->
  Job.t ->
  t
(** Assign hosts and draw sizes.

    Each job draws a master host, a worker pool shared by every
    [Fan_out]/[Fan_in]/[Shuffle] stage (reducers are drawn disjoint
    from the mappers when the topology has enough hosts, otherwise
    they overlap and colocated mapper/reducer pairs contribute no
    flow), and a pipeline chain starting at the master for [Transfer]
    stages. [floor] is passed to {!Job.stage_deadlines}.

    Raises [Invalid_argument] when the topology has too few hosts for
    the master plus the worker pool. *)

val flow_count : t -> int
(** Flows actually planned (after shuffle colocation). *)
