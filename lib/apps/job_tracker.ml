module Trace = Pdq_telemetry.Trace
module Context = Pdq_transport.Context

type stage_state =
  | Waiting
  | Running of { mutable remaining : int; mutable clean : bool }
  | Done of { at : float; clean : bool }

type job_state = {
  plan : Job_plan.t;
  states : stage_state array;
  injected_at : float option array;
  mutable last_flow : int;  (** Flow of the latest terminal event. *)
  mutable last_time : float;
  mutable failed : bool;
}

type t = {
  jobs : job_state array;
  flow_of : (int, int * int) Hashtbl.t;  (** flow id → (job, stage). *)
  spawn : Context.flow_spec -> Context.flow;
}

(* A stage is initially runnable when every dependency is "pre-done":
   pre-done stages have no flows at all (a fully colocated shuffle on
   a tiny topology) and all-pre-done dependencies. Dependencies point
   backwards, so one pass in index order settles everything. *)
let initial_layout (plan : Job_plan.t) =
  let n = Array.length plan.Job_plan.stages in
  let pre_done = Array.make n false in
  let initial = Array.make n false in
  Array.iteri
    (fun i (s : Job_plan.stage_plan) ->
      let ready = List.for_all (fun d -> pre_done.(d)) s.Job_plan.deps in
      if ready then
        if Array.length s.Job_plan.flows = 0 then pre_done.(i) <- true
        else initial.(i) <- true)
    plan.Job_plan.stages;
  (pre_done, initial)

let spec_of_site (site : Job_plan.flow_site) ~deadline ~start =
  {
    Context.src = site.Job_plan.src;
    dst = site.Job_plan.dst;
    size = site.Job_plan.size;
    deadline;
    start;
  }

let initial_specs plans =
  List.concat_map
    (fun (plan : Job_plan.t) ->
      let _, initial = initial_layout plan in
      List.concat
        (List.init (Array.length plan.Job_plan.stages) (fun i ->
             if not initial.(i) then []
             else
               let s = plan.Job_plan.stages.(i) in
               Array.to_list s.Job_plan.flows
               |> List.map
                    (spec_of_site ~deadline:s.Job_plan.deadline
                       ~start:plan.Job_plan.arrival))))
    plans

let create ?(first_id = 0) ~spawn plans =
  let t =
    {
      jobs =
        Array.of_list
          (List.map
             (fun (plan : Job_plan.t) ->
               let n = Array.length plan.Job_plan.stages in
               let pre_done, initial = initial_layout plan in
               {
                 plan;
                 states =
                   Array.init n (fun i ->
                       if pre_done.(i) then
                         Done { at = plan.Job_plan.arrival; clean = true }
                       else if initial.(i) then
                         Running
                           {
                             remaining =
                               Array.length
                                 plan.Job_plan.stages.(i).Job_plan.flows;
                             clean = true;
                           }
                       else Waiting);
                 injected_at =
                   Array.init n (fun i ->
                       if pre_done.(i) || initial.(i) then
                         Some plan.Job_plan.arrival
                       else None);
                 last_flow = -1;
                 last_time = neg_infinity;
                 failed = false;
               })
             plans);
      flow_of = Hashtbl.create 64;
      spawn;
    }
  in
  (* Mirror the id assignment the runner performs on initial_specs. *)
  let next = ref first_id in
  Array.iteri
    (fun ji j ->
      let _, initial = initial_layout j.plan in
      Array.iteri
        (fun si (s : Job_plan.stage_plan) ->
          if initial.(si) then
            Array.iter
              (fun _ ->
                Hashtbl.replace t.flow_of !next (ji, si);
                incr next)
              s.Job_plan.flows)
        j.plan.Job_plan.stages)
    t.jobs;
  t

(* Stage [si] of job [ji] reached its last terminal event at [at].
   Mark it done; a clean finish may make dependent stages runnable
   (inject their flows now, at the bus timestamp), an unclean one
   fails the whole job. Recursion only via empty stages, which a
   compiled plan bounds by its stage count. *)
let rec finish_stage t ji si ~at ~clean =
  let j = t.jobs.(ji) in
  j.states.(si) <- Done { at; clean };
  if not clean then j.failed <- true
  else
    Array.iteri
      (fun k (s : Job_plan.stage_plan) ->
        match j.states.(k) with
        | Waiting
          when List.mem si s.Job_plan.deps
               && List.for_all
                    (fun d ->
                      match j.states.(d) with
                      | Done { clean = true; _ } -> true
                      | _ -> false)
                    s.Job_plan.deps ->
            inject t ji k ~at
        | _ -> ())
      j.plan.Job_plan.stages

and inject t ji k ~at =
  let j = t.jobs.(ji) in
  let s = j.plan.Job_plan.stages.(k) in
  j.injected_at.(k) <- Some at;
  let n = Array.length s.Job_plan.flows in
  if n = 0 then finish_stage t ji k ~at ~clean:true
  else begin
    j.states.(k) <- Running { remaining = n; clean = true };
    Array.iter
      (fun site ->
        let f =
          t.spawn (spec_of_site site ~deadline:s.Job_plan.deadline ~start:at)
        in
        Hashtbl.replace t.flow_of f.Context.id (ji, k))
      s.Job_plan.flows
  end

let on_terminal t ~time ~flow ~completed =
  match Hashtbl.find_opt t.flow_of flow with
  | None -> ()
  | Some (ji, si) ->
      (* A terminated flow's in-flight packets can still complete the
         transfer later; count each flow's first terminal event only. *)
      Hashtbl.remove t.flow_of flow;
      let j = t.jobs.(ji) in
      if time >= j.last_time then begin
        j.last_time <- time;
        j.last_flow <- flow
      end;
      (match j.states.(si) with
      | Running r ->
          r.remaining <- r.remaining - 1;
          if not completed then r.clean <- false;
          if r.remaining = 0 then finish_stage t ji si ~at:time ~clean:r.clean
      | Waiting | Done _ -> ())

let sink t =
  Trace.callback (fun ~time ev ->
      match ev with
      | Trace.Flow_completed { flow; _ } ->
          on_terminal t ~time ~flow ~completed:true
      | Trace.Flow_terminated { flow } ->
          on_terminal t ~time ~flow ~completed:false
      | Trace.Flow_aborted { flow; _ } ->
          on_terminal t ~time ~flow ~completed:false
      | _ -> ())

let job_outcome (j : job_state) =
  let n = Array.length j.plan.Job_plan.stages in
  let all_done_clean =
    Array.for_all
      (function Done { clean; _ } -> clean | _ -> false)
      j.states
  in
  let stages =
    Array.init n (fun i ->
        let s = j.plan.Job_plan.stages.(i) in
        let injected_at = j.injected_at.(i) in
        let finished_at, clean =
          match j.states.(i) with
          | Done { at; clean } -> (Some at, clean)
          | Running _ | Waiting -> (None, false)
        in
        {
          Job_metrics.label = s.Job_plan.label;
          flows = Array.length s.Job_plan.flows;
          injected_at;
          finished_at;
          clean;
          cct =
            (match (injected_at, finished_at, clean) with
            | Some i0, Some f, true -> Some (f -. i0)
            | _ -> None);
        })
  in
  let finished_at =
    (* The job finishes with its last flow's terminal event, taken
       verbatim from the bus clock: JCT = that time − arrival,
       bit-exactly. *)
    if all_done_clean && j.last_time > neg_infinity then Some j.last_time
    else if all_done_clean then Some j.plan.Job_plan.arrival
    else None
  in
  let jct = Option.map (fun f -> f -. j.plan.Job_plan.arrival) finished_at in
  {
    Job_metrics.name = j.plan.Job_plan.name;
    arrival = j.plan.Job_plan.arrival;
    deadline = j.plan.Job_plan.deadline;
    finished_at;
    jct;
    met_deadline =
      (match (jct, j.plan.Job_plan.deadline) with
      | Some jct, Some d -> jct <= d
      | Some _, None -> true
      | None, _ -> false);
    failed = j.failed;
    straggler = (if all_done_clean && j.last_flow >= 0 then Some j.last_flow
                 else None);
    stages;
  }

let report t = Job_metrics.of_outcomes (Array.map job_outcome t.jobs)
