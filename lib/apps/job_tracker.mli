(** Runtime job execution over the telemetry bus.

    A tracker watches the run's trace for terminal flow events
    ([Flow_completed] / [Flow_terminated] / [Flow_aborted]), detects
    stage completion — a stage finishes when {e every} constituent
    flow reaches a terminal state — and synchronously injects each
    dependent stage's flows through the runner's dynamic spawn hook
    the moment its last dependency finishes. Because terminal trace
    events are emitted {e before} the flow is counted closed
    ({!Pdq_transport.Context}), the injection keeps the open-flow
    count positive and a [stop_when_done] run can never stop between
    stages of an unfinished job.

    A stage that finishes unclean (a flow terminated or aborted
    instead of completing) fails its job: downstream stages are never
    injected, and the job reports as failed.

    Injection consumes no randomness — everything random was fixed in
    the {!Job_plan.t} — so results are deterministic and independent
    of domain count or sink order.

    The tracker is an {e application driver}, the sanctioned exception
    to the observe-only sink contract: install it through
    {!Pdq_transport.Runner.options.driver}, never as a plain
    telemetry sink. *)

type t

val initial_specs : Job_plan.t list -> Pdq_transport.Context.flow_spec list
(** The flows the runner must register at build time: every initially
    runnable stage of every plan (in plan order, stages in index
    order), starting at the job's arrival time. These are exactly the
    flows {!create} expects to own ids [first_id ..
    first_id + n - 1] in this order. *)

val create :
  ?first_id:int ->
  spawn:(Pdq_transport.Context.flow_spec -> Pdq_transport.Context.flow) ->
  Job_plan.t list ->
  t
(** [first_id] (default 0) is the flow id the runner will assign to
    the first spec of {!initial_specs} — 0 when the job flows are the
    run's whole spec list. *)

val sink : t -> Pdq_telemetry.Trace.sink
(** The bus tap driving stage detection and injection. *)

val report : t -> Job_metrics.report
(** Outcomes as of now (normally: after the run). Completion times
    are taken verbatim from the bus clock, so a completed job's JCT
    equals its last flow's completion time minus the job arrival,
    bit-exactly. *)
