module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Link = Pdq_net.Link
module Packet = Pdq_net.Packet
module Topology = Pdq_net.Topology
module Payloads = Pdq_transport.Payloads
module Header = Pdq_core.Header
module Trace = Pdq_telemetry.Trace

let k_deliver = Sim.Kind.register "chaos.deliver"
let k_apply = Sim.Kind.register "chaos.apply"

(* Per-directed-link adversarial conditions, mutated by the timed plan
   events. All-None state passes packets through untouched and draws
   nothing, so a wrapped link with no active condition behaves
   bit-identically to an unwrapped one. *)
type state = {
  mutable reorder : (float * float) option; (* p, hold *)
  mutable duplicate : float option;
  mutable corrupt : float option;
  mutable jitter : float option;
}

let fresh_state () =
  { reorder = None; duplicate = None; corrupt = None; jitter = None }

(* The adversary acts on the forward scheduling pass only (SYN / DATA /
   PROBE / TERM): switches re-derive their soft state from traversing
   headers there, which is the robustness surface the paper leans on
   (§3). Reverse-pass feedback is left intact — corrupting grants in
   flight defeats any rate-based transport trivially and distinguishes
   nothing. *)
let forward_kind (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Syn | Packet.Data | Packet.Probe | Packet.Term -> true
  | Packet.Syn_ack | Packet.Ack -> false

(* Duplicates share the original's uid (the global counter must not be
   perturbed) but deep-copy every mutable scheduling payload so
   downstream in-place header rewrites cannot alias. *)
let copy_payload = function
  | Payloads.Pdq_sched (h, a) -> Payloads.Pdq_sched (Header.copy h, a)
  | Payloads.Rcp_ctrl (r, a) ->
      Payloads.Rcp_ctrl ({ r with Payloads.rcp_rate = r.Payloads.rcp_rate }, a)
  | Payloads.D3_ctrl (d, a) ->
      Payloads.D3_ctrl
        ({ d with Payloads.d3_allocated = d.Payloads.d3_allocated }, a)
  | p -> p

let copy_packet (pkt : Packet.t) =
  { pkt with Packet.payload = copy_payload pkt.Packet.payload }

(* Corrupt one scheduling field in place — garbage a wire bit-flip
   could plausibly produce, bounded so float arithmetic stays finite.
   Returns the action label, or None when the payload carries no
   scheduling state (the whether-draw is already consumed; the
   field draws below only happen on corruptible payloads, which is a
   deterministic function of the packet).

   Only fields a correct switch re-derives every RTT are touched:
   the PDQ rate request and pause attribution (allocations are
   recomputed per hop and the binding verdict rides the untouched
   reverse pass), the RCP rate and the D3 allocation. The ET-decision
   inputs — deadline, expected transmission time, RTT — are
   deliberately excluded: switches store them verbatim
   (Flow_state.update_from_header), so garbage there makes a {e
   correct} implementation terminate feasible flows, indistinguishable
   from the allocator bug the invariant monitors exist to catch. The
   same boundary keeps the fuzzer's healthy-protocol runs
   violation-free. *)
let corrupt_payload rng (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Payloads.Pdq_sched (h, _) -> (
      match Rng.int rng 2 with
      | 0 ->
          h.Header.rate <- Rng.uniform rng 0. 2e9;
          Some "corrupt.rate"
      | _ ->
          (h.Header.pause_by <-
             (match h.Header.pause_by with None -> Some 0 | Some _ -> None));
          Some "corrupt.pause")
  | Payloads.Rcp_ctrl (r, _) ->
      r.Payloads.rcp_rate <- Rng.uniform rng 0. 2e9;
      Some "corrupt.rate"
  | Payloads.D3_ctrl (d, _) ->
      d.Payloads.d3_allocated <- Rng.uniform rng 0. 2e9;
      Some "corrupt.alloc"
  | _ -> None

(* Clock skew: deadlines in PDQ headers entering the skewed switch
   appear [skew] seconds more urgent. The header is replaced by a
   shifted copy — downstream hops see the skewed deadline too, the
   pessimistic reading of one fast switch clock poisoning the
   scheduling pipeline. *)
let skew_packet (pkt : Packet.t) ~skew =
  match pkt.Packet.payload with
  | Payloads.Pdq_sched (h, a) when h.Header.deadline <> None ->
      let deadline = Option.map (fun d -> d -. skew) h.Header.deadline in
      let h' = { (Header.copy h) with Header.deadline } in
      pkt.Packet.payload <- Payloads.Pdq_sched (h', a);
      true
  | _ -> false

let emit trace ~target ~action =
  match trace with
  | Some bus when Trace.active bus ->
      Trace.emit bus (Trace.Adversary { target; action })
  | _ -> ()

let wrap ~sim ~trace ~link_id ~state ~skew ~corruptible ~rng orig pkt =
  (match skew with
  | Some (switch, sref) when !sref <> 0. && forward_kind pkt ->
      if skew_packet pkt ~skew:!sref then
        emit trace ~target:switch ~action:"clock-skew"
  | _ -> ());
  if not (forward_kind pkt) then orig pkt
  else begin
    (* Fixed per-packet draw order — corrupt, duplicate, reorder,
       jitter — one whether-draw per *active* condition, none for
       inactive ones. Corruption fires only on directions entering a
       switch: the next hop's allocator clamps a corrupted rate
       request ([process_forward]'s [min availbw]), whereas garbage on
       the last switch→receiver hop would be echoed to the sender
       unsanitized and read as an allocator over-grant. *)
    (match state.corrupt with
    | Some p when corruptible && Rng.bool rng p -> (
        match corrupt_payload rng pkt with
        | Some action -> emit trace ~target:link_id ~action
        | None -> ())
    | _ -> ());
    let dup =
      match state.duplicate with Some p -> Rng.bool rng p | None -> false
    in
    let held =
      match state.reorder with
      | Some (p, hold) -> if Rng.bool rng p then hold else 0.
      | None -> 0.
    in
    let jit =
      match state.jitter with
      | Some max_delay -> Rng.uniform rng 0. max_delay
      | None -> 0.
    in
    if dup then emit trace ~target:link_id ~action:"duplicate";
    if held > 0. then emit trace ~target:link_id ~action:"reorder";
    let deliver () =
      orig pkt;
      if dup then orig (copy_packet pkt)
    in
    let delay = held +. jit in
    if delay > 0. then ignore (Sim.schedule_k sim k_deliver ~delay deliver)
    else deliver ()
  end

(* All duplex cables of the topology as (a, b) pairs with a < b, in
   first-link-id order — the full adversary target list (unlike
   [Fault_plan.switch_cables], host access links are included: header
   corruption on a switch-ingress access direction and duplication or
   reordering anywhere are all meaningful). *)
let cables topo =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  for id = 0 to Topology.link_count topo - 1 do
    let l = Topology.link topo id in
    let a = min (Link.src l) (Link.dst l)
    and b = max (Link.src l) (Link.dst l) in
    if not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.add seen (a, b) ();
      acc := (a, b) :: !acc
    end
  done;
  List.rev !acc

let directed_links topo ~a ~b =
  match
    (Topology.link_to topo ~src:a ~dst:b, Topology.link_to topo ~src:b ~dst:a)
  with
  | l1, l2 -> [ l1; l2 ]
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Adversary.install: no cable %d<->%d in this topology"
           a b)

let install ~sim ~topo ~rng ?trace plan =
  if not (Adversary_plan.is_empty plan) then begin
    let events = Adversary_plan.events plan in
    (* Wrap every link the plan can touch, in link-id order, one rng
       split per wrapped link — the same stream layout for any event
       timing. *)
    let states : (int, state) Hashtbl.t = Hashtbl.create 16 in
    let skews : (int, float ref) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun (_, ev) ->
        match ev with
        | Adversary_plan.Reorder { a; b; _ }
        | Adversary_plan.Duplicate { a; b; _ }
        | Adversary_plan.Corrupt { a; b; _ }
        | Adversary_plan.Jitter { a; b; _ }
        | Adversary_plan.Clear { a; b } ->
            List.iter
              (fun l ->
                let id = Link.id l in
                if not (Hashtbl.mem states id) then
                  Hashtbl.add states id (fresh_state ()))
              (directed_links topo ~a ~b)
        | Adversary_plan.Clock_skew { switch; _ } ->
            if not (Hashtbl.mem skews switch) then
              Hashtbl.add skews switch (ref 0.))
      events;
    for id = 0 to Topology.link_count topo - 1 do
      let l = Topology.link topo id in
      let state = Hashtbl.find_opt states id in
      let skew =
        let dst = Link.dst l in
        Option.map (fun r -> (dst, r)) (Hashtbl.find_opt skews dst)
      in
      match (state, skew) with
      | None, None -> ()
      | state, skew ->
          let state = Option.value state ~default:(fresh_state ()) in
          let corruptible = Topology.kind topo (Link.dst l) = Topology.Switch in
          let link_rng = Rng.split rng in
          let orig = Link.receiver l in
          Link.set_receiver l
            (wrap ~sim ~trace ~link_id:id ~state ~skew ~corruptible
               ~rng:link_rng orig)
    done;
    let state_of ~a ~b =
      List.map
        (fun l -> Hashtbl.find states (Link.id l))
        (directed_links topo ~a ~b)
    in
    let apply ev =
      (match trace with
      | Some bus when Trace.active bus ->
          Trace.emit bus
            (Trace.Fault
               {
                 desc =
                   Format.asprintf "adversary %a" Adversary_plan.pp_event ev;
               })
      | _ -> ());
      match ev with
      | Adversary_plan.Reorder { a; b; p; hold } ->
          List.iter (fun s -> s.reorder <- Some (p, hold)) (state_of ~a ~b)
      | Adversary_plan.Duplicate { a; b; p } ->
          List.iter (fun s -> s.duplicate <- Some p) (state_of ~a ~b)
      | Adversary_plan.Corrupt { a; b; p } ->
          List.iter (fun s -> s.corrupt <- Some p) (state_of ~a ~b)
      | Adversary_plan.Jitter { a; b; max_delay } ->
          List.iter (fun s -> s.jitter <- Some max_delay) (state_of ~a ~b)
      | Adversary_plan.Clear { a; b } ->
          List.iter
            (fun s ->
              s.reorder <- None;
              s.duplicate <- None;
              s.corrupt <- None;
              s.jitter <- None)
            (state_of ~a ~b)
      | Adversary_plan.Clock_skew { switch; skew } ->
          Hashtbl.find skews switch := skew
    in
    List.iter
      (fun (time, ev) ->
        if time <= Sim.now sim then apply ev
        else ignore (Sim.schedule_at_k sim k_apply ~time (fun () -> apply ev)))
      events
  end
