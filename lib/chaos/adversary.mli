(** Live interposition of an {!Adversary_plan} on a built topology.

    {!install} wraps the delivery callback of every directed link the
    plan can touch (via {!Pdq_net.Link.receiver} /
    {!Pdq_net.Link.set_receiver}), plus every link entering a
    clock-skewed switch. The wrapper applies the currently active
    conditions to each arriving packet in a fixed draw order (corrupt,
    duplicate, reorder, jitter), on the forward scheduling pass only
    (SYN / DATA / PROBE / TERM); reverse-pass feedback is never
    touched, and corruption additionally fires only on directions
    entering a switch, where the next allocator clamps the damage —
    both restrictions keep a {e correct} protocol distinguishable
    from a broken one under adversarial input (see the model notes in
    DESIGN.md §9).

    Determinism: the empty plan installs nothing and draws nothing; a
    non-empty plan splits one per-link rng per wrapped link in link-id
    order at install time, and per-packet draws then follow the
    simulator's deterministic packet arrival order — the same seed is
    bit-identical on any worker domain. Every applied action emits a
    {!Pdq_telemetry.Trace.Adversary} event (plan activations emit
    [Fault] events) when a bus is attached. *)

val cables : Pdq_net.Topology.t -> (int * int) list
(** All duplex cables (host access links included) as (a, b) pairs
    with [a < b], in first-link-id order — the full adversary target
    list for plan generators. *)

val install :
  sim:Pdq_engine.Sim.t ->
  topo:Pdq_net.Topology.t ->
  rng:Pdq_engine.Rng.t ->
  ?trace:Pdq_telemetry.Trace.t ->
  Adversary_plan.t ->
  unit
(** Wrap the targeted links and schedule the plan's condition changes.
    Call after the topology is built and before the run starts — the
    {!Pdq_exec.Scenario.run} [?prepare] hook is the sanctioned site.
    Raises [Invalid_argument] if the plan names a cable absent from
    this topology. *)
