module Rng = Pdq_engine.Rng
module Plan_json = Pdq_faults.Plan_json

type event =
  | Reorder of { a : int; b : int; p : float; hold : float }
  | Duplicate of { a : int; b : int; p : float }
  | Corrupt of { a : int; b : int; p : float }
  | Jitter of { a : int; b : int; max_delay : float }
  | Clear of { a : int; b : int }
  | Clock_skew of { switch : int; skew : float }

type timed = { time : float; event : event }
type t = { events : timed list }

let empty = { events = [] }
let is_empty t = t.events = []

let sort events = List.stable_sort (fun a b -> compare a.time b.time) events

let check_prob what p =
  if (not (Float.is_finite p)) || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Adversary_plan: %s probability %g" what p)

let check_nonneg what x =
  if (not (Float.is_finite x)) || x < 0. then
    invalid_arg (Printf.sprintf "Adversary_plan: %s %g" what x)

let validate = function
  | Reorder { p; hold; _ } ->
      check_prob "reorder" p;
      check_nonneg "reorder hold" hold
  | Duplicate { p; _ } -> check_prob "duplicate" p
  | Corrupt { p; _ } -> check_prob "corrupt" p
  | Jitter { max_delay; _ } -> check_nonneg "jitter max_delay" max_delay
  | Clear _ -> ()
  | Clock_skew { skew; _ } ->
      if not (Float.is_finite skew) then
        invalid_arg "Adversary_plan: non-finite clock skew"

let of_events l =
  List.iter
    (fun (time, event) ->
      if time < 0. || Float.is_nan time then
        invalid_arg "Adversary_plan.of_events: negative event time";
      validate event)
    l;
  { events = sort (List.map (fun (time, event) -> { time; event }) l) }

let events t = List.map (fun e -> (e.time, e.event)) t.events
let merge a b = { events = sort (a.events @ b.events) }
let length t = List.length t.events

let pp_event ppf = function
  | Reorder { a; b; p; hold } ->
      Format.fprintf ppf "reorder %d<->%d p=%g hold=%gs" a b p hold
  | Duplicate { a; b; p } -> Format.fprintf ppf "duplicate %d<->%d p=%g" a b p
  | Corrupt { a; b; p } -> Format.fprintf ppf "corrupt %d<->%d p=%g" a b p
  | Jitter { a; b; max_delay } ->
      Format.fprintf ppf "jitter %d<->%d max=%gs" a b max_delay
  | Clear { a; b } -> Format.fprintf ppf "clear %d<->%d" a b
  | Clock_skew { switch; skew } ->
      Format.fprintf ppf "clock-skew switch=%d skew=%gs" switch skew

(* ------------------------------------------------------------------ *)
(* JSON codec, mirroring Fault_plan: one object per event, floats in
   exact round-trip form. *)

let event_fields = function
  | Reorder { a; b; p; hold } ->
      Printf.sprintf "\"ev\":\"reorder\",\"a\":%d,\"b\":%d,\"p\":%s,\"hold\":%s"
        a b (Plan_json.j_float p) (Plan_json.j_float hold)
  | Duplicate { a; b; p } ->
      Printf.sprintf "\"ev\":\"duplicate\",\"a\":%d,\"b\":%d,\"p\":%s" a b
        (Plan_json.j_float p)
  | Corrupt { a; b; p } ->
      Printf.sprintf "\"ev\":\"corrupt\",\"a\":%d,\"b\":%d,\"p\":%s" a b
        (Plan_json.j_float p)
  | Jitter { a; b; max_delay } ->
      Printf.sprintf "\"ev\":\"jitter\",\"a\":%d,\"b\":%d,\"max_delay\":%s" a b
        (Plan_json.j_float max_delay)
  | Clear { a; b } -> Printf.sprintf "\"ev\":\"clear\",\"a\":%d,\"b\":%d" a b
  | Clock_skew { switch; skew } ->
      Printf.sprintf "\"ev\":\"clock-skew\",\"switch\":%d,\"skew\":%s" switch
        (Plan_json.j_float skew)

let to_json t =
  let item { time; event } =
    Printf.sprintf "{\"t\":%s,%s}" (Plan_json.j_float time) (event_fields event)
  in
  "[" ^ String.concat "," (List.map item t.events) ^ "]"

let event_of_fields fields =
  let int k = Plan_json.int fields k in
  let flt k = Plan_json.float fields k in
  match Plan_json.str fields "ev" with
  | "reorder" ->
      Reorder { a = int "a"; b = int "b"; p = flt "p"; hold = flt "hold" }
  | "duplicate" -> Duplicate { a = int "a"; b = int "b"; p = flt "p" }
  | "corrupt" -> Corrupt { a = int "a"; b = int "b"; p = flt "p" }
  | "jitter" ->
      Jitter { a = int "a"; b = int "b"; max_delay = flt "max_delay" }
  | "clear" -> Clear { a = int "a"; b = int "b" }
  | "clock-skew" -> Clock_skew { switch = int "switch"; skew = flt "skew" }
  | other -> raise (Plan_json.Parse_error ("unknown adversary event " ^ other))

let of_json s =
  match
    let items = Plan_json.(arr (parse s)) in
    of_events
      (List.map
         (fun item ->
           let fields = Plan_json.obj item in
           (Plan_json.float fields "t", event_of_fields fields))
         items)
  with
  | t -> Ok t
  | exception Plan_json.Parse_error msg -> Error ("adversary plan: " ^ msg)
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Generators. All randomness flows from the caller's rng in a fixed
   order, mirroring the Fault_plan discipline. *)

(* Standing conditions from t=0 on every given cable — the experiment
   sweeps' workhorse (one knob per condition, no timing dimension). *)
let degrade ~links ?reorder ?duplicate ?corrupt ?jitter () =
  let per_link (a, b) =
    List.concat
      [
        (match reorder with
        | Some (p, hold) when p > 0. -> [ (0., Reorder { a; b; p; hold }) ]
        | _ -> []);
        (match duplicate with
        | Some p when p > 0. -> [ (0., Duplicate { a; b; p }) ]
        | _ -> []);
        (match corrupt with
        | Some p when p > 0. -> [ (0., Corrupt { a; b; p }) ]
        | _ -> []);
        (match jitter with
        | Some m when m > 0. -> [ (0., Jitter { a; b; max_delay = m }) ]
        | _ -> []);
      ]
  in
  of_events (List.concat_map per_link links)

(* Random plan for the fuzzer: [count] events drawn over the given
   targets within [0, until), each event type and its parameters
   uniform within bounded "plausible adversary" ranges scaled by
   [intensity] in (0, 1]. Cables and switches are indexed in list
   order, so the same rng stream and targets expand identically. *)
let random rng ~cables ~switches ~until ~intensity ~count =
  if cables = [] then invalid_arg "Adversary_plan.random: no cables";
  if count < 0 then invalid_arg "Adversary_plan.random: negative count";
  let intensity = Float.min 1. (Float.max 0.01 intensity) in
  let cables = Array.of_list cables in
  let switches = Array.of_list switches in
  let cable () = cables.(Rng.int rng (Array.length cables)) in
  let prob () = intensity *. Rng.float rng in
  let ev () =
    let kinds = if Array.length switches = 0 then 5 else 6 in
    match Rng.int rng kinds with
    | 0 ->
        let a, b = cable () in
        Reorder { a; b; p = prob (); hold = Rng.uniform rng 1e-4 2e-3 }
    | 1 ->
        let a, b = cable () in
        Duplicate { a; b; p = prob () }
    | 2 ->
        let a, b = cable () in
        Corrupt { a; b; p = prob () }
    | 3 ->
        let a, b = cable () in
        Jitter { a; b; max_delay = intensity *. Rng.uniform rng 1e-5 1e-3 }
    | 4 ->
        let a, b = cable () in
        Clear { a; b }
    | _ ->
        (* |skew| stays under the invariant monitor's 2 ms Early
           Termination grace (Invariants.create rtt_slack): a skewed
           switch may kill a deadline flow up to |skew| early, which
           must read as clock error, not as an allocator bug. *)
        Clock_skew
          {
            switch = switches.(Rng.int rng (Array.length switches));
            skew = intensity *. Rng.uniform rng (-1e-3) 1e-3;
          }
  in
  of_events
    (List.init count (fun _ ->
         let time = Rng.uniform rng 0. until in
         let event = ev () in
         (time, event)))
