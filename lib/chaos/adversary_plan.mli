(** Deterministic adversarial-condition DSL, mirroring
    {!Pdq_faults.Fault_plan}.

    An adversary plan is a time-ordered list of events that enable (or
    clear) adversarial packet conditions on duplex cables — reordering,
    duplication, scheduling-header corruption, delay jitter — plus
    per-switch clock skew. Plans are pure data with an exact JSON
    codec; {!Adversary.install} turns a plan into live interposition on
    the built topology's links.

    Determinism rules match the fault layer: generators expand a seeded
    {!Pdq_engine.Rng.t} in a fixed order (same seed + targets ⇒
    identical plan, bit for bit); installation draws nothing for an
    empty plan; per-packet draws come from per-link streams split in
    deterministic order at install time. *)

type event =
  | Reorder of { a : int; b : int; p : float; hold : float }
      (** Hold each packet on the cable with probability [p] for [hold]
          seconds before delivery, letting later packets overtake it. *)
  | Duplicate of { a : int; b : int; p : float }
      (** Deliver each packet twice with probability [p] (the copy's
          mutable scheduling payload is deep-copied; duplicates bypass
          link bandwidth — a pure receiver-side model). *)
  | Corrupt of { a : int; b : int; p : float }
      (** With probability [p], corrupt one scheduling field of the
          traversing header (PDQ rate request / pause attribution, RCP
          rate, D3 allocation — fields a correct switch re-derives;
          see {!Adversary}). Packets without a scheduling payload pass
          unharmed. *)
  | Jitter of { a : int; b : int; max_delay : float }
      (** Delay every packet by an extra uniform [0, max_delay)
          seconds — differential delay, so it also reorders. *)
  | Clear of { a : int; b : int }
      (** Remove all packet conditions from the cable. *)
  | Clock_skew of { switch : int; skew : float }
      (** Set the switch's clock offset: deadlines in PDQ headers
          entering the switch appear [skew] seconds more urgent
          (negative skew: less urgent). [skew = 0.] clears it. *)

type t
(** An immutable plan: events sorted by time (stable for ties). *)

val empty : t
val is_empty : t -> bool

val of_events : (float * event) list -> t
(** Explicit plan from (time, event) pairs; sorted stably by time.
    Raises [Invalid_argument] on negative times, probabilities outside
    [0, 1], negative holds/delays, or non-finite parameters. *)

val events : t -> (float * event) list
val merge : t -> t -> t
val length : t -> int
val pp_event : Format.formatter -> event -> unit

val to_json : t -> string
(** Compact JSON array, one object per event, floats in exact
    round-trip form: [of_json (to_json t)] rebuilds the plan bit for
    bit. *)

val of_json : string -> (t, string) result
(** Exact inverse of {!to_json}; strict ([Error] on anything
    malformed). *)

val degrade :
  links:(int * int) list ->
  ?reorder:float * float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?jitter:float ->
  unit ->
  t
(** Standing conditions from t=0 on every given cable: [reorder] is
    (probability, hold); [duplicate]/[corrupt] are probabilities;
    [jitter] is the max extra delay. Zero-valued knobs emit nothing, so
    [degrade ~links ()] is {!empty}. The degradation-curve experiments
    use this. *)

val random :
  Pdq_engine.Rng.t ->
  cables:(int * int) list ->
  switches:int list ->
  until:float ->
  intensity:float ->
  count:int ->
  t
(** [count] random events over the given targets within [0, until),
    parameters uniform within bounded adversary ranges scaled by
    [intensity] (clamped to [0.01, 1]). Deterministic in the rng stream
    and target list order — the chaos fuzzer's plan source. *)
