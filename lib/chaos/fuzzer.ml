module Rng = Pdq_engine.Rng
module Link = Pdq_net.Link
module Topology = Pdq_net.Topology
module Builder = Pdq_topo.Builder
module Fault_plan = Pdq_faults.Fault_plan
module Plan_json = Pdq_faults.Plan_json
module Report = Pdq_check.Report
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Task = Pdq_exec.Task
module Exec_opts = Pdq_exec.Exec_opts

(* ------------------------------------------------------------------ *)
(* Cases: one fuzzed run as pure data. The JSON form is the replayable
   reproducer artifact, so every field round-trips exactly. *)

type case = {
  protocol : string;
  topo : string;
  pattern : string;
  flows : int;
  mean_bytes : int;
  deadlines : bool;
  seed : int;
  horizon : float;
  faults : Fault_plan.t;
  adversary : Adversary_plan.t;
}

let case_to_json c =
  Printf.sprintf
    "{\"protocol\":\"%s\",\"topo\":\"%s\",\"pattern\":\"%s\",\"flows\":%d,\"mean_bytes\":%d,\"deadlines\":%b,\"seed\":%d,\"horizon\":%s,\"faults\":%s,\"adversary\":%s}"
    (Plan_json.escape c.protocol)
    (Plan_json.escape c.topo)
    (Plan_json.escape c.pattern)
    c.flows c.mean_bytes c.deadlines c.seed
    (Plan_json.j_float c.horizon)
    (Fault_plan.to_json c.faults)
    (Adversary_plan.to_json c.adversary)

let case_of_json s =
  match
    let fields = Plan_json.(obj (parse s)) in
    let bool k =
      match Plan_json.field fields k with
      | Plan_json.Bool b -> b
      | _ -> raise (Plan_json.Parse_error (k ^ ": expected bool"))
    in
    let plan k of_json =
      match of_json (Plan_json.to_string (Plan_json.field fields k)) with
      | Ok p -> p
      | Error e -> raise (Plan_json.Parse_error e)
    in
    {
      protocol = Plan_json.str fields "protocol";
      topo = Plan_json.str fields "topo";
      pattern = Plan_json.str fields "pattern";
      flows = Plan_json.int fields "flows";
      mean_bytes = Plan_json.int fields "mean_bytes";
      deadlines = bool "deadlines";
      seed = Plan_json.int fields "seed";
      horizon = Plan_json.float fields "horizon";
      faults = plan "faults" Fault_plan.of_json;
      adversary = plan "adversary" Adversary_plan.of_json;
    }
  with
  | c -> Ok c
  | exception Plan_json.Parse_error msg -> Error ("chaos case: " ^ msg)
  | exception Invalid_argument msg -> Error msg

let key c = Digest.to_hex (Digest.string (case_to_json c))

let scenario_of_case c =
  let ( let* ) = Result.bind in
  let* protocol = Scenario.protocol_of_string c.protocol in
  let* topo = Scenario.topo_of_string c.topo in
  let* pattern = Scenario.pattern_of_string c.pattern in
  let deadlines =
    if c.deadlines then Scenario.Exp_deadlines { mean = 0.02; floor = 0.003 }
    else Scenario.No_deadlines
  in
  let workload =
    Scenario.Synthetic
      {
        pattern;
        flows = c.flows;
        sizes = Scenario.Uniform_paper { mean_bytes = c.mean_bytes };
        deadlines;
      }
  in
  let faults =
    if Fault_plan.is_empty c.faults then Scenario.No_faults
    else
      Scenario.Fault_gen
        { label = "chaos"; plan = (fun ~seed:_ _built -> c.faults) }
  in
  Ok
    (Scenario.make
       ~name:(Printf.sprintf "chaos %s on %s" c.protocol c.topo)
       ~topo ~seed:c.seed ~horizon:c.horizon ~faults ~workload protocol)

let pp_case ppf c =
  Format.fprintf ppf
    "%s on %s (%s, %d flows, seed %d, %d fault ev, %d adversary ev)"
    c.protocol c.topo c.pattern c.flows c.seed (Fault_plan.length c.faults)
    (Adversary_plan.length c.adversary)

(* ------------------------------------------------------------------ *)
(* Target enumeration: the plans name cables and switches of the
   case's topology, so generation builds a probe instance (same seed —
   wiring-salted families stay aligned) and reads them off. *)

let targets_of_case c =
  match scenario_of_case { c with faults = Fault_plan.empty } with
  | Error e -> invalid_arg ("Fuzzer.targets_of_case: " ^ e)
  | Ok sc ->
      let built, _, _ = Scenario.build sc in
      let topo = built.Builder.topo in
      ( Adversary.cables topo,
        Fault_plan.switch_cables topo,
        Fault_plan.switches topo )

(* ------------------------------------------------------------------ *)
(* Case generation. All draws come from the caller's rng in a fixed
   order, so a master seed expands into the same campaign on every
   worker layout. *)

let topo_roster = [| "tree"; "bottleneck"; "fat-tree" |]
let pattern_roster = [| "aggregation"; "permutation"; "pairs" |]
let default_protocols = [ "pdq"; "rcp"; "d3"; "tcp" ]

let generate rng ~protocols ~intensity index =
  if protocols = [] then invalid_arg "Fuzzer.generate: no protocols";
  let protocols = Array.of_list protocols in
  let protocol = protocols.(Rng.int rng (Array.length protocols)) in
  let topo = topo_roster.(Rng.int rng (Array.length topo_roster)) in
  let pattern = pattern_roster.(Rng.int rng (Array.length pattern_roster)) in
  let flows = 4 + Rng.int rng 13 in
  let mean_bytes = 30_000 * (1 + Rng.int rng 10) in
  let deadlines = Rng.bool rng 0.5 in
  let seed = 1 + Rng.int rng 1_000_000 in
  let horizon = Rng.uniform rng 0.25 0.75 in
  let base =
    {
      protocol;
      topo;
      pattern;
      flows;
      mean_bytes;
      deadlines;
      seed;
      horizon;
      faults = Fault_plan.empty;
      adversary = Adversary_plan.empty;
    }
  in
  let cables, switch_cables, switches = targets_of_case base in
  let faults =
    if switch_cables <> [] && Rng.bool rng 0.3 then
      Fault_plan.link_flaps rng ~links:switch_cables ~mtbf:(4. *. horizon)
        ~mttr:(horizon /. 8.) ~until:horizon
    else Fault_plan.empty
  in
  let adversary =
    Adversary_plan.random rng ~cables ~switches ~until:horizon ~intensity
      ~count:(1 + Rng.int rng 8)
  in
  ignore index;
  { base with faults; adversary }

(* ------------------------------------------------------------------ *)
(* Running one case through the full validation stack. *)

let adversary_rng_of c = Rng.create (c.seed lxor 0x5EED_CAFE)

let prepare_of c built =
  if not (Adversary_plan.is_empty c.adversary) then
    let topo = built.Builder.topo in
    Adversary.install ~sim:(Topology.sim topo) ~topo ~rng:(adversary_rng_of c)
      c.adversary

let run_case ?opts c =
  match scenario_of_case c with
  | Error e -> Error e
  | Ok sc -> Ok (Scenario.run_checked ?opts ~prepare:(prepare_of c) sc)

let signature (checked : Scenario.checked) =
  match checked.Scenario.violations with
  | [] -> None
  | v :: _ -> Some v.Report.invariant

(* ------------------------------------------------------------------ *)
(* Supervised campaign. *)

type verdict = {
  invariant : string option;
  detail : string;
  violations : int;
}

let verdict_of checked =
  match checked.Scenario.violations with
  | [] -> { invariant = None; detail = ""; violations = 0 }
  | v :: _ as vs ->
      {
        invariant = Some v.Report.invariant;
        detail = Format.asprintf "%a" Report.pp v;
        violations = List.length vs;
      }

let verdict_codec : verdict Task.codec =
  {
    Task.encode =
      (fun v ->
        Printf.sprintf "{\"invariant\":%s,\"detail\":\"%s\",\"violations\":%d}"
          (match v.invariant with
          | None -> "null"
          | Some s -> "\"" ^ Plan_json.escape s ^ "\"")
          (Plan_json.escape v.detail) v.violations);
    decode =
      (fun s ->
        let fields = Plan_json.(obj (parse s)) in
        let invariant =
          match Plan_json.field fields "invariant" with
          | Plan_json.Null -> None
          | Plan_json.Str s -> Some s
          | _ -> raise (Plan_json.Parse_error "invariant: expected string")
        in
        {
          invariant;
          detail = Plan_json.str fields "detail";
          violations = Plan_json.int fields "violations";
        });
  }

type campaign = {
  cases : case list;
  verdicts : verdict Task.t list;  (** In case order. *)
  report : Sweep.report;
}

let cases ~runs ~seed ?(protocols = default_protocols) ?(intensity = 0.35) ()
    =
  let rng = Rng.create seed in
  List.init runs (generate rng ~protocols ~intensity)

let fuzz ?opts ?checkpoint ?resume ?protocols ?intensity ?on_event ~runs ~seed
    () =
  let cases = cases ~runs ~seed ?protocols ?intensity () in
  let f c =
    match run_case ?opts c with
    | Ok checked -> verdict_of checked
    | Error e -> failwith e
  in
  let { Sweep.tasks; report } =
    Sweep.supervise ?opts ?checkpoint ?resume ~codec:verdict_codec ?on_event
      ~key f cases
  in
  { cases; verdicts = tasks; report }

let first_violation campaign =
  let rec go i cases verdicts =
    match (cases, verdicts) with
    | [], _ | _, [] -> None
    | c :: cs, t :: ts -> (
        match t with
        | Task.Ok { invariant = Some inv; _ } -> Some (i, c, inv)
        | _ -> go (i + 1) cs ts)
  in
  go 0 campaign.cases campaign.verdicts

(* ------------------------------------------------------------------ *)
(* Counterexample shrinking: greedy single-event removal to fixpoint,
   then parameter halving to fixpoint, re-checking after every mutation
   that the *same invariant* still fires. Bounded by [budget] re-runs;
   when the budget runs out the best case so far is returned. *)

let remove_at l i = List.filteri (fun j _ -> j <> i) l

(* Halved variants of one adversary event, least-aggressive first;
   parameters below noise level stop shrinking so the loop terminates
   even with a generous budget. *)
let halve_adversary_event ev =
  let h p = if p > 1e-4 then Some (p /. 2.) else None in
  match (ev : Adversary_plan.event) with
  | Adversary_plan.Reorder { a; b; p; hold } ->
      List.filter_map Fun.id
        [
          Option.map
            (fun p -> Adversary_plan.Reorder { a; b; p; hold })
            (h p);
          Option.map
            (fun hold -> Adversary_plan.Reorder { a; b; p; hold })
            (h hold);
        ]
  | Adversary_plan.Duplicate { a; b; p } ->
      List.filter_map Fun.id
        [ Option.map (fun p -> Adversary_plan.Duplicate { a; b; p }) (h p) ]
  | Adversary_plan.Corrupt { a; b; p } ->
      List.filter_map Fun.id
        [ Option.map (fun p -> Adversary_plan.Corrupt { a; b; p }) (h p) ]
  | Adversary_plan.Jitter { a; b; max_delay } ->
      List.filter_map Fun.id
        [
          Option.map
            (fun max_delay -> Adversary_plan.Jitter { a; b; max_delay })
            (h max_delay);
        ]
  | Adversary_plan.Clear _ -> []
  | Adversary_plan.Clock_skew { switch; skew } ->
      if Float.abs skew > 1e-5 then
        [ Adversary_plan.Clock_skew { switch; skew = skew /. 2. } ]
      else []

let halve_fault_event ev =
  let h p = if p > 1e-4 then Some (p /. 2.) else None in
  match (ev : Fault_plan.event) with
  | Fault_plan.Loss_burst { a; b; loss; duration } ->
      List.filter_map Fun.id
        [
          Option.map
            (fun loss -> Fault_plan.Loss_burst { a; b; loss; duration })
            (h loss);
          Option.map
            (fun duration -> Fault_plan.Loss_burst { a; b; loss; duration })
            (h duration);
        ]
  | Fault_plan.Gilbert_loss { a; b; ge } ->
      List.filter_map Fun.id
        [
          Option.map
            (fun loss_bad ->
              Fault_plan.Gilbert_loss { a; b; ge = { ge with Link.loss_bad } })
            (h ge.Link.loss_bad);
        ]
  | Fault_plan.Link_down _ | Fault_plan.Link_up _ | Fault_plan.Clear_loss _
  | Fault_plan.Switch_reboot _ ->
      []

type shrunk = {
  original : case;
  minimal : case;
  invariant : string;
  runs_used : int;  (** Re-executions the shrinker spent. *)
}

let shrink ?opts ?(budget = 150) c0 ~invariant =
  let used = ref 0 in
  let reproduces c =
    !used < budget
    && begin
         incr used;
         match run_case ?opts c with
         | Ok checked ->
             List.exists
               (fun v -> v.Report.invariant = invariant)
               checked.Scenario.violations
         | Error _ -> false
       end
  in
  let with_adversary c evs =
    { c with adversary = Adversary_plan.of_events evs }
  in
  let with_faults c evs = { c with faults = Fault_plan.of_events evs } in
  (* Phase 1: greedy element removal, restarting from the head after
     every successful deletion, until no single deletion reproduces. *)
  let rec remove_pass c =
    let aevs = Adversary_plan.events c.adversary in
    let fevs = Fault_plan.events c.faults in
    let try_one i =
      if i < List.length aevs then with_adversary c (remove_at aevs i)
      else with_faults c (remove_at fevs (i - List.length aevs))
    in
    let n = List.length aevs + List.length fevs in
    let rec first i =
      if i >= n then None
      else
        let c' = try_one i in
        if reproduces c' then Some c' else first (i + 1)
    in
    match first 0 with Some c' -> remove_pass c' | None -> c
  in
  (* Phase 2: parameter halving, event by event, to fixpoint. *)
  let rec halve_pass c =
    let aevs = Adversary_plan.events c.adversary in
    let fevs = Fault_plan.events c.faults in
    let candidates =
      List.concat
        (List.mapi
           (fun i (t, ev) ->
             List.map
               (fun ev' ->
                 with_adversary c
                   (List.mapi
                      (fun j e -> if j = i then (t, ev') else e)
                      aevs))
               (halve_adversary_event ev))
           aevs)
      @ List.concat
          (List.mapi
             (fun i (t, ev) ->
               List.map
                 (fun ev' ->
                   with_faults c
                     (List.mapi
                        (fun j e -> if j = i then (t, ev') else e)
                        fevs))
                 (halve_fault_event ev))
             fevs)
    in
    match List.find_opt reproduces candidates with
    | Some c' -> halve_pass c'
    | None -> c
  in
  let minimal = halve_pass (remove_pass c0) in
  { original = c0; minimal; invariant; runs_used = !used }
