(** Invariant fuzzing with counterexample shrinking.

    The fuzzer expands a master seed into a campaign of random {!case}s
    — (scenario, fault plan, adversary plan) triples as pure data —
    runs each through {!Pdq_exec.Scenario.run_checked} so every
    [Pdq_check] monitor fires, and, when a run violates an invariant,
    shrinks its plans to a minimal reproducer (greedy element removal,
    then parameter halving). A case's JSON form is the replayable
    counterexample artifact: [pdq_sim chaos --replay] feeds it back
    through the same pipeline.

    Determinism: case generation draws from one seeded rng in a fixed
    order; each case's run derives every stream from the case's own
    seed. Campaigns execute under {!Pdq_exec.Sweep.supervise}, whose
    results are in input order — the same master seed gives
    bit-identical campaigns on any worker count. *)

type case = {
  protocol : string;  (** A {!Pdq_exec.Scenario.protocol_of_string} name. *)
  topo : string;      (** A {!Pdq_exec.Scenario.topo_of_string} name. *)
  pattern : string;   (** A {!Pdq_exec.Scenario.pattern_of_string} name. *)
  flows : int;
  mean_bytes : int;   (** Mean of the paper's uniform size law. *)
  deadlines : bool;   (** Draw paper-default deadlines (20 ms mean). *)
  seed : int;
  horizon : float;
  faults : Pdq_faults.Fault_plan.t;
  adversary : Adversary_plan.t;
}

val case_to_json : case -> string
(** One self-contained JSON object; exact round-trip. *)

val case_of_json : string -> (case, string) result
(** Exact inverse of {!case_to_json}; strict. *)

val key : case -> string
(** Content hash of the JSON form — the checkpoint key (stable across
    binaries, unlike {!Pdq_exec.Scenario.digest}). *)

val scenario_of_case : case -> (Pdq_exec.Scenario.t, string) result
(** Resolve the case's names into a runnable scenario (the plans ride
    along via [Fault_gen] and {!run_case}'s prepare hook). *)

val pp_case : Format.formatter -> case -> unit

val default_protocols : string list
(** ["pdq"; "rcp"; "d3"; "tcp"] — the healthy roster. *)

val targets_of_case :
  case -> (int * int) list * (int * int) list * int list
(** [(cables, switch_cables, switches)] of the case's topology (built
    as a probe instance with the case's seed): all duplex cables in
    link-id order, the switch-switch subset, and the switch nodes. *)

val generate :
  Pdq_engine.Rng.t -> protocols:string list -> intensity:float -> int -> case
(** One random case (the [int] is the campaign index). Protocol, topo,
    pattern, workload shape and seed are drawn first, then a fault
    plan (30% of cases, link flaps) and an adversary plan of 1–8
    events at the given intensity. *)

val run_case :
  ?opts:Pdq_exec.Exec_opts.t -> case -> (Pdq_exec.Scenario.checked, string) result
(** Run the case under the full validation stack: faults install via
    the scenario, the adversary via the [?prepare] hook with an rng
    derived from the case seed. [Error] on unresolvable names. *)

val signature : Pdq_exec.Scenario.checked -> string option
(** The first violation's invariant id, or [None] for a clean run. *)

(** {1 Supervised campaigns} *)

type verdict = {
  invariant : string option;  (** First violated invariant, if any. *)
  detail : string;            (** Rendered first violation. *)
  violations : int;
}

val verdict_of : Pdq_exec.Scenario.checked -> verdict
val verdict_codec : verdict Pdq_exec.Task.codec

type campaign = {
  cases : case list;
  verdicts : verdict Pdq_exec.Task.t list;  (** In case order. *)
  report : Pdq_exec.Sweep.report;
}

val cases :
  runs:int ->
  seed:int ->
  ?protocols:string list ->
  ?intensity:float ->
  unit ->
  case list
(** The campaign's case list (deterministic in [seed]).
    [intensity] defaults to [0.35]. *)

val fuzz :
  ?opts:Pdq_exec.Exec_opts.t ->
  ?checkpoint:string ->
  ?resume:string ->
  ?protocols:string list ->
  ?intensity:float ->
  ?on_event:(Pdq_exec.Sweep.event -> unit) ->
  runs:int ->
  seed:int ->
  unit ->
  campaign
(** Generate and run a campaign under {!Pdq_exec.Sweep.supervise}
    ([opts] carries jobs and per-attempt budget; checkpoint slots are
    keyed by {!key}). Verdicts are in case order regardless of the
    worker count. *)

val first_violation : campaign -> (int * case * string) option
(** Lowest-index case whose run violated an invariant, with the
    violated invariant id — the shrink target. *)

(** {1 Shrinking} *)

type shrunk = {
  original : case;
  minimal : case;
  invariant : string;
  runs_used : int;  (** Re-executions the shrinker spent. *)
}

val shrink :
  ?opts:Pdq_exec.Exec_opts.t -> ?budget:int -> case -> invariant:string -> shrunk
(** Greedy minimization holding the violation fixed: first remove plan
    events one at a time (restarting after every successful deletion)
    until no single deletion still reproduces [invariant], then halve
    event parameters (probabilities, holds, delays, skews, loss rates
    and durations) to a fixpoint. At most [budget] (default 150)
    re-executions; on exhaustion the best case so far is returned.
    [shrink] never returns a case that fails to reproduce: every
    accepted mutation was verified. *)
