type band = {
  id : string;
  figure : string;
  metric : string;
  lo : float;
  hi : float;
}

type outcome = { band : band; value : float; ok : bool }

let band ~id ~figure ~metric ~lo ~hi = { id; figure; metric; lo; hi }

(* NaN is always a failure: a metric that did not compute is drift, not
   a pass. *)
let eval b value =
  { band = b; value; ok = Float.is_finite value && value >= b.lo && value <= b.hi }

let all_ok = List.for_all (fun o -> o.ok)

let pp_outcome ppf o =
  Format.fprintf ppf "%-26s %-10s %-24s %12.6g  [%g, %g]  %s" o.band.id
    o.band.figure o.band.metric o.value o.band.lo o.band.hi
    (if o.ok then "ok" else "FAIL")

let pp_outcomes ppf os =
  List.iter (fun o -> Format.fprintf ppf "%a@." pp_outcome o) os;
  let failed = List.filter (fun o -> not o.ok) os in
  if failed = [] then
    Format.fprintf ppf "fidelity: %d/%d metrics in band@." (List.length os)
      (List.length os)
  else
    Format.fprintf ppf "fidelity: %d/%d metrics OUT OF BAND@."
      (List.length failed) (List.length os)

let to_json o =
  Printf.sprintf
    {|{"id":"%s","figure":"%s","metric":"%s","value":%.9g,"lo":%.9g,"hi":%.9g,"ok":%b}|}
    o.band.id o.band.figure o.band.metric o.value o.band.lo o.band.hi o.ok
