(** Paper-fidelity regression bands.

    A band is a committed expected-value interval for one summary
    metric of one figure's smoke-scale experiment. The fidelity gate
    ({!Pdq_experiments.Fidelity}) recomputes each metric and fails CI
    when a value drifts out of band — catching silent behavioural
    regressions that still type-check and pass unit tests. *)

type band = {
  id : string;     (** Unique entry id, e.g. ["fig4b.pdq"]. *)
  figure : string; (** Paper figure, e.g. ["fig4b"]. *)
  metric : string; (** e.g. ["mean_fct_ms"], ["app_throughput"]. *)
  lo : float;
  hi : float;      (** Inclusive expected interval. *)
}

type outcome = { band : band; value : float; ok : bool }

val band :
  id:string -> figure:string -> metric:string -> lo:float -> hi:float -> band

val eval : band -> float -> outcome
(** In-band test; NaN and infinities always fail. *)

val all_ok : outcome list -> bool
val pp_outcome : Format.formatter -> outcome -> unit
val pp_outcomes : Format.formatter -> outcome list -> unit
val to_json : outcome -> string
