module Config = Pdq_core.Config

(* A deliberately broken PDQ rate allocator, built purely from real
   configuration knobs so no product code carries test-only branches:
   - [k_early_start] so large that Algorithm 2 treats every more
     critical flow as "nearly finished" and skips it, granting each
     stored flow the full available rate simultaneously;
   - [dampening = 0] so every paused flow is accepted immediately (no
     admission pacing to mask the over-grant);
   - [queue_allowance_bytes] so large that the rate controller never
     sees a queue and never throttles C below rPDQ.
   An allocator that never says no: every stored flow is granted the
   full line rate at once, sustained link oversubscription that the
   capacity monitor must flag (and a visibly broken run: standing
   queues, FCT inflation). *)
let broken_allocator =
  {
    Config.full with
    Config.k_early_start = 1e12;
    dampening = 0.;
    queue_allowance_bytes = max_int / 2;
  }

let name = "PDQ(broken-allocator)"
