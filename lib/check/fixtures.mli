(** Deliberately broken protocol configurations for validating the
    validators. *)

val broken_allocator : Pdq_core.Config.t
(** PDQ(Full) with an unbounded Early Start budget and a rate
    controller that never throttles: every stored flow is granted the
    full line rate at once, so links are persistently oversubscribed.
    The capacity monitor must report this; a monitor that passes it is
    broken. Used by the test suite and exposed on the CLI as
    [--proto pdq-broken]. *)

val name : string
(** Display name of the broken variant. *)
