module Trace = Pdq_telemetry.Trace
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Topology = Pdq_net.Topology
module Link = Pdq_net.Link

(* Per-flow soft state reconstructed from the trace stream. [rates] is
   the sender-side granted-rate history, newest first; PDQ-family
   senders are the only emitters of rate events, so for RCP/D3/TCP runs
   the capacity sweep is trivially empty. *)
type fmeta = {
  size : int;
  deadline_abs : float option;
  mutable rx : int;
  mutable rx_overflow : bool;
  mutable last_activity : float; (* latest rx or rate event *)
  mutable completed_at : float option;
  mutable terminated_at : float option;
  mutable rates : (float * float) list;
}

type t = {
  es_window : float;
  capacity_slack : float;
  rtt_slack : float;
  stale_grace : float;
  max_violations : int;
  streak_limit : int;
  flows : (int, fmeta) Hashtbl.t;
  mutable streaming : Report.violation list; (* newest first *)
  mutable count : int;
  mutable truncated : bool;
  port_seen : (string, unit) Hashtbl.t; (* dedup for port violations *)
  cap_streak : (int, int) Hashtbl.t;    (* link -> consecutive 2κ-bound probes *)
  rate_streak : (int, int) Hashtbl.t;   (* link -> consecutive over-rate probes *)
}

let create ?(es_window = 0.05) ?(capacity_slack = 0.02) ?(rtt_slack = 2e-3)
    ?(stale_grace = 5e-3) ?(max_violations = 200) () =
  {
    es_window;
    capacity_slack;
    rtt_slack;
    stale_grace;
    max_violations;
    streak_limit = 3;
    flows = Hashtbl.create 64;
    streaming = [];
    count = 0;
    truncated = false;
    port_seen = Hashtbl.create 16;
    cap_streak = Hashtbl.create 16;
    rate_streak = Hashtbl.create 16;
  }

let add_violation t v =
  if t.count < t.max_violations then begin
    t.streaming <- v :: t.streaming;
    t.count <- t.count + 1
  end
  else if not t.truncated then begin
    t.truncated <- true;
    t.streaming <-
      Report.violation ~time:v.Report.time ~entity:"monitor" ~invariant:"meta"
        (Printf.sprintf "violation cap (%d) reached; further reports dropped"
           t.max_violations)
      :: t.streaming
  end

let meta t flow = Hashtbl.find_opt t.flows flow

let on_event t ~time ev =
  match ev with
  | Trace.Flow_admitted { flow; size; deadline; _ } ->
      Hashtbl.replace t.flows flow
        {
          size;
          deadline_abs = deadline;
          rx = 0;
          rx_overflow = false;
          last_activity = time;
          completed_at = None;
          terminated_at = None;
          rates = [];
        }
  | Trace.Flow_rx { flow; bytes } -> (
      match meta t flow with
      | None -> () (* M-PDQ subflow or unknown id *)
      | Some m ->
          m.rx <- m.rx + bytes;
          m.last_activity <- time;
          if m.rx > m.size && not m.rx_overflow then begin
            m.rx_overflow <- true;
            add_violation t
              (Report.violation ~time
                 ~entity:(Printf.sprintf "flow %d" flow)
                 ~invariant:"bytes"
                 (Printf.sprintf "receiver accepted %d bytes > flow size %d"
                    m.rx m.size))
          end)
  | Trace.Flow_paused { flow; _ } -> (
      match meta t flow with
      | None -> ()
      | Some m ->
          m.last_activity <- time;
          m.rates <- (time, 0.) :: m.rates)
  | Trace.Flow_resumed { flow; rate } | Trace.Flow_rate_set { flow; rate } -> (
      match meta t flow with
      | None -> ()
      | Some m ->
          if not (Float.is_finite rate) || rate < 0. then
            add_violation t
              (Report.violation ~time
                 ~entity:(Printf.sprintf "flow %d" flow)
                 ~invariant:"capacity"
                 (Printf.sprintf "granted rate %g < 0 or not finite" rate));
          m.last_activity <- time;
          m.rates <- (time, rate) :: m.rates)
  | Trace.Flow_completed { flow; fct } -> (
      match meta t flow with
      | None -> ()
      | Some m ->
          m.completed_at <- Some time;
          if fct < -1e-12 then
            add_violation t
              (Report.violation ~time
                 ~entity:(Printf.sprintf "flow %d" flow)
                 ~invariant:"bytes"
                 (Printf.sprintf "negative FCT %g" fct)))
  | Trace.Flow_terminated { flow } -> (
      match meta t flow with
      | None -> ()
      | Some m -> m.terminated_at <- Some time)
  | _ -> ()

let sink t = Trace.callback (fun ~time ev -> on_event t ~time ev)

(* Switch flow-state bounds at a probe tick. The hard memory bound [M]
   and internal consistency must hold at every instant; the elastic 2κ
   bound is only enforced on insertion (§3.3.1), so a shrinking κ may
   leave the list transiently over capacity — require the excess to
   persist across [streak_limit] consecutive probes before reporting. *)
let on_port t ~now (v : Runner.port_view) =
  let entity = Printf.sprintf "port %d" v.Runner.pv_link in
  let once key detail =
    if not (Hashtbl.mem t.port_seen key) then begin
      Hashtbl.replace t.port_seen key ();
      add_violation t
        (Report.violation ~time:now ~entity ~invariant:"flow_list" detail)
    end
  in
  List.iter
    (fun msg -> once (Printf.sprintf "%d/%s" v.Runner.pv_link msg) msg)
    v.Runner.inconsistencies;
  if v.Runner.stored > v.Runner.max_list then
    once
      (Printf.sprintf "%d/max_list" v.Runner.pv_link)
      (Printf.sprintf "stored %d > memory bound M = %d" v.Runner.stored
         v.Runner.max_list);
  if v.Runner.sending + v.Runner.paused <> v.Runner.stored then
    once
      (Printf.sprintf "%d/split" v.Runner.pv_link)
      (Printf.sprintf "sending %d + paused %d <> stored %d" v.Runner.sending
         v.Runner.paused v.Runner.stored);
  (* Capacity conservation at the allocator itself: granted rates
     beyond the paper's Early Start allowance must fit the line rate.
     Grants go stale for ~an RTT between headers, so require the excess
     to persist across [streak_limit] consecutive probes. *)
  if v.Runner.mature_rate_sum > v.Runner.line_rate *. (1. +. t.capacity_slack)
  then begin
    let streak =
      1 + Option.value ~default:0 (Hashtbl.find_opt t.rate_streak v.Runner.pv_link)
    in
    Hashtbl.replace t.rate_streak v.Runner.pv_link streak;
    if streak = t.streak_limit then
      if not (Hashtbl.mem t.port_seen (Printf.sprintf "%d/rate" v.Runner.pv_link))
      then begin
        Hashtbl.replace t.port_seen (Printf.sprintf "%d/rate" v.Runner.pv_link) ();
        add_violation t
          (Report.violation ~time:now ~entity ~invariant:"capacity"
             (Printf.sprintf
                "granted %.3g > line rate %.3g beyond the Early Start \
                 allowance for %d consecutive probes"
                v.Runner.mature_rate_sum v.Runner.line_rate streak))
      end
  end
  else Hashtbl.remove t.rate_streak v.Runner.pv_link;
  (* The 2κ bound is enforced on insertion only: a shrinking κ leaves
     the list over current capacity until the next store. Tolerate that
     implementation laziness (a few entries, bounded) and flag only a
     persistent gross excess — the kind a real leak produces. *)
  let kappa_tolerance = max 2 (v.Runner.capacity_bound / 4) in
  if v.Runner.stored > v.Runner.capacity_bound + kappa_tolerance then begin
    let streak =
      1 + Option.value ~default:0 (Hashtbl.find_opt t.cap_streak v.Runner.pv_link)
    in
    Hashtbl.replace t.cap_streak v.Runner.pv_link streak;
    if streak = t.streak_limit then
      once
        (Printf.sprintf "%d/2kappa" v.Runner.pv_link)
        (Printf.sprintf
           "stored %d > 2κ capacity %d (+%d tolerance) for %d consecutive \
            probes"
           v.Runner.stored v.Runner.capacity_bound kappa_tolerance streak)
  end
  else Hashtbl.remove t.cap_streak v.Runner.pv_link

let port_probe t = fun ~now v -> on_port t ~now v

let telemetry t ~base =
  {
    base with
    Runner.sinks = sink t :: base.Runner.sinks;
    port_probe =
      (match base.Runner.port_probe with
      | None -> Some (port_probe t)
      | Some f ->
          Some
            (fun ~now v ->
              f ~now v;
              on_port t ~now v));
  }

(* The directed data-path links of an experiment flow, from its pinned
   route in the run context. *)
let route_links ~result ~topo flow_id =
  let nodes = Context.route result.Runner.ctx flow_id in
  let links = ref [] in
  for i = Array.length nodes - 2 downto 0 do
    links :=
      Link.id (Topology.link_to topo ~src:nodes.(i) ~dst:nodes.(i + 1))
      :: !links
  done;
  !links

(* Capacity conservation: replay every flow's sender-side granted-rate
   history over its pinned route and require that, per directed link,
   the sum of granted rates exceeds the line rate only in bursts no
   longer than [es_window] — Early Start deliberately over-commits for
   up to ~2 RTTs while a nearly-finished flow drains (§3.3.2), so an
   instantaneous check would reject correct runs. *)
let capacity_sweep t ~result ~topo =
  let per_link : (int, (float * int * float) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let add_event link ev =
    match Hashtbl.find_opt per_link link with
    | Some l -> l := ev :: !l
    | None -> Hashtbl.replace per_link link (ref [ ev ])
  in
  Hashtbl.iter
    (fun flow_id (m : fmeta) ->
      match m.rates with
      | [] -> ()
      | newest_first ->
          (* A flow that neither completed nor terminated holds its
             last granted rate only for a staleness grace after its
             last rx/rate event: a stalled sender (dead path, lost
             ACKs) keeps a lease it is no longer using, and switches
             purge such entries on the same timescale. *)
          let end_time =
            match (m.completed_at, m.terminated_at) with
            | Some c, _ -> c
            | None, Some te -> te
            | None, None ->
                min result.Runner.sim_end (m.last_activity +. t.stale_grace)
          in
          let links = route_links ~result ~topo flow_id in
          let history = List.rev ((end_time, 0.) :: newest_first) in
          List.iter
            (fun link ->
              List.iter
                (fun (time, rate) -> add_event link (time, flow_id, rate))
                history)
            links)
    t.flows;
  Hashtbl.iter
    (fun link events ->
      let rate = Link.rate (Topology.link topo link) in
      let threshold = rate *. (1. +. t.capacity_slack) in
      let sorted =
        List.stable_sort
          (fun (a, _, _) (b, _, _) -> Float.compare a b)
          !events
      in
      let cur : (int, float) Hashtbl.t = Hashtbl.create 8 in
      let sum = ref 0. in
      let over_since = ref None in
      let peak = ref 0. in
      let close now =
        match !over_since with
        | Some t0 when now -. t0 > t.es_window ->
            add_violation t
              (Report.violation ~time:t0
                 ~entity:(Printf.sprintf "link %d" link)
                 ~invariant:"capacity"
                 (Printf.sprintf
                    "granted rates sum to %.3g > capacity %.3g for %.4gs \
                     (Early Start window %.4gs)"
                    !peak rate (now -. t0) t.es_window));
            over_since := None
        | _ -> over_since := None
      in
      List.iter
        (fun (time, flow, new_rate) ->
          let old = Option.value ~default:0. (Hashtbl.find_opt cur flow) in
          Hashtbl.replace cur flow new_rate;
          sum := !sum +. new_rate -. old;
          if !sum > threshold then begin
            if !over_since = None then begin
              over_since := Some time;
              peak := !sum
            end
            else if !sum > !peak then peak := !sum
          end
          else if !over_since <> None then close time)
        sorted;
      close result.Runner.sim_end)
    per_link

(* Deadline accounting. Two conditions:
   - [met_deadline] in the result agrees with [fct <= relative deadline]
     for every completed deadline flow;
   - Early Termination only killed infeasible flows: a terminated
     deadline flow must not have had enough time left to drain its
     remaining bytes at the route's full goodput rate. The sender's ET
     rule works from [remaining / (line rate × efficiency)] plus a
     paused-flow grace of one min-RTT, so [rtt_slack] (default 2 ms)
     absorbs both the RTT term and rate quantization. *)
let deadline_checks t ~result ~topo =
  Array.iteri
    (fun flow_id (r : Runner.flow_result) ->
      let entity = Printf.sprintf "flow %d" flow_id in
      (match (r.Runner.fct, r.Runner.spec.Context.deadline) with
      | Some fct, Some d ->
          let met = fct <= d +. 1e-9 in
          if met <> r.Runner.met_deadline then
            add_violation t
              (Report.violation ~time:result.Runner.sim_end ~entity
                 ~invariant:"deadline"
                 (Printf.sprintf
                    "met_deadline = %b but fct %.6g vs deadline %.6g"
                    r.Runner.met_deadline fct d))
      | _ -> ());
      match meta t flow_id with
      | None -> ()
      | Some m -> (
          (* Byte conservation at completion: the receiver held exactly
             the flow's bytes, no more, no fewer. M-PDQ attributes
             delivery to subflow ids, so a parent flow with no rx
             events of its own is skipped. *)
          (match m.completed_at with
          | Some ct when m.rx > 0 && m.rx <> m.size ->
              add_violation t
                (Report.violation ~time:ct ~entity ~invariant:"bytes"
                   (Printf.sprintf
                      "completed with %d received bytes <> size %d" m.rx
                      m.size))
          | _ -> ());
          match (m.terminated_at, m.deadline_abs) with
          | Some te, Some d ->
              let min_rate =
                List.fold_left
                  (fun acc l -> min acc (Link.rate (Topology.link topo l)))
                  infinity
                  (route_links ~result ~topo flow_id)
              in
              let remaining_bits =
                Pdq_engine.Units.bytes_to_bits (max 0 (m.size - m.rx))
              in
              let drain = remaining_bits /. max (min_rate *. 0.97) 1. in
              if te +. drain +. t.rtt_slack <= d then
                add_violation t
                  (Report.violation ~time:te ~entity ~invariant:"deadline"
                     (Printf.sprintf
                        "early-terminated but feasible: %.6g + drain %.6g \
                         + slack %.4g <= deadline %.6g"
                        te drain t.rtt_slack d))
          | _ -> ()))
    result.Runner.flows

let violations t = List.rev t.streaming

let finalize t ~result ~topo =
  capacity_sweep t ~result ~topo;
  deadline_checks t ~result ~topo;
  List.stable_sort
    (fun (a : Report.violation) b -> Float.compare a.Report.time b.Report.time)
    (violations t)
