(** Runtime invariant monitors for packet-level runs.

    A monitor consumes the run's trace stream (via a {!sink} attached
    to the telemetry bus) and per-port scheduler snapshots (via
    {!port_probe}); {!finalize} then replays the collected soft state
    against the finished {!Pdq_transport.Runner.result} and returns
    every violated inequality as a {!Report.violation}.

    Monitored invariants:
    - {b capacity}: per directed link, the sum of PDQ-granted sender
      rates stays within the line rate except for Early Start bursts
      shorter than [es_window];
    - {b bytes}: receivers never accept more than the flow size, and a
      completed flow delivered exactly its size;
    - {b flow_list}: every PDQ port keeps at most [M] entries, the
      sending/paused split is consistent, internal order and rate
      bounds hold ({!Pdq_core.Switch_port.invariant_errors}), and the
      2κ capacity is only exceeded transiently;
    - {b deadline}: [met_deadline] agrees with [fct <= deadline], and
      Early Termination only killed flows that could no longer finish
      in time.

    Attaching a monitor never perturbs the run: the sink only observes
    the bus, and the port probe rides the same telemetry grid as the
    metrics probe. With no monitor attached nothing is allocated or
    scheduled. *)

type t

val create :
  ?es_window:float ->
  ?capacity_slack:float ->
  ?rtt_slack:float ->
  ?stale_grace:float ->
  ?max_violations:int ->
  unit ->
  t
(** [es_window] (default 50 ms) — longest tolerated sender-side link
    oversubscription burst. This is deliberately coarse: Early Start
    over-commits for ~2 RTTs, and under heavy congestion senders hold
    stale grants for a further congested RTT (several ms) until the
    pausing ACK crosses the queues, so the sweep is a gross
    conservation bound; the tight allocator check is the switch-side
    [mature_rate_sum] probe, which sees grants with no sender lag. [capacity_slack] (default 2%) — relative headroom over
    the line rate before a burst counts. [rtt_slack] (default 2 ms) —
    grace applied to the Early Termination feasibility test.
    [stale_grace] (default 5 ms) — how long an incomplete flow's last
    granted rate keeps counting against link capacity after its last
    rx/rate event (a stalled sender holds a lease it no longer uses).
    [max_violations] (default 200) caps the report list. *)

val sink : t -> Pdq_telemetry.Trace.sink
(** Trace-bus sink feeding the monitor's streaming checks. *)

val port_probe :
  t -> now:float -> Pdq_transport.Runner.port_view -> unit
(** Per-port snapshot consumer for
    {!Pdq_transport.Runner.telemetry.port_probe}. *)

val telemetry :
  t ->
  base:Pdq_transport.Runner.telemetry ->
  Pdq_transport.Runner.telemetry
(** [base] with this monitor's sink and port probe attached (composes
    with an existing probe). *)

val violations : t -> Report.violation list
(** Streaming violations collected so far, oldest first. *)

val finalize :
  t ->
  result:Pdq_transport.Runner.result ->
  topo:Pdq_net.Topology.t ->
  Report.violation list
(** Run the end-of-run checks (capacity sweep over pinned routes, byte
    conservation at completion, deadline accounting) and return all
    violations sorted by time. Call once, after the simulation. *)
