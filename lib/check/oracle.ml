module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Topology = Pdq_net.Topology
module Link = Pdq_net.Link
module Fluid = Pdq_sched.Fluid

type flow_bound = { ob_flow : int; bound : float; fct : float option }

type t = {
  bounds : flow_bound array;
  violations : Report.violation list;
  sim_mean_fct : float;
  sjf_mean_fct : float;
  edf_deadline_frac : float;
  gap : float;
}

let default_efficiency = 1460. /. 1500.

let route_links ~result ~topo flow_id =
  let nodes = Context.route result.Runner.ctx flow_id in
  let links = ref [] in
  for i = Array.length nodes - 2 downto 0 do
    links :=
      Link.id (Topology.link_to topo ~src:nodes.(i) ~dst:nodes.(i + 1))
      :: !links
  done;
  !links

(* Contention-free lower bound: even alone on the network, the flow
   must push its application bits through its slowest link and cross
   every hop's propagation and processing delay once. Headers,
   handshake and store-and-forward only add to this, so
   [bound <= true FCT] for every correct simulator. *)
let guaranteed_bound ~topo ~links ~size =
  let min_rate, latency =
    List.fold_left
      (fun (r, lat) id ->
        let l = Topology.link topo id in
        (min r (Link.rate l), lat +. Link.prop_delay l +. Link.proc_delay l))
      (infinity, 0.) links
  in
  (Pdq_engine.Units.bytes_to_bits size /. max min_rate 1.) +. latency

let check ?(efficiency = default_efficiency) ?(per_flow = true) ~result ~topo
    () =
  let n = Array.length result.Runner.flows in
  let links_of = Array.init n (fun i -> route_links ~result ~topo i) in
  (* Per-flow guaranteed bounds and their assertions. *)
  let violations = ref [] in
  let bounds =
    Array.init n (fun i ->
        let r = result.Runner.flows.(i) in
        let bound =
          guaranteed_bound ~topo ~links:links_of.(i)
            ~size:r.Runner.spec.Context.size
        in
        (match r.Runner.fct with
        | Some fct when per_flow && fct < bound -. 1e-9 ->
            violations :=
              Report.violation ~time:result.Runner.sim_end
                ~entity:(Printf.sprintf "flow %d" i)
                ~invariant:"oracle"
                (Printf.sprintf
                   "simulated FCT %.6g < contention-free lower bound %.6g"
                   fct bound)
              :: !violations
        | _ -> ());
        { ob_flow = i; bound; fct = r.Runner.fct })
  in
  (* Bottleneck grouping for the centralized references: each flow is
     assigned to the most-shared of its minimum-rate route links, and
     each group is scheduled by an idealized preemptive scheduler at
     that link's goodput rate. The SJF (SRPT) reference bounds mean
     FCT; the EDF + Moore–Hodgson reference bounds deadline
     throughput. These are aggregate references, not per-flow bounds —
     a distributed protocol may beat EDF for an individual flow. *)
  let usage = Hashtbl.create 32 in
  Array.iter
    (List.iter (fun l ->
         Hashtbl.replace usage l
           (1 + Option.value ~default:0 (Hashtbl.find_opt usage l))))
    links_of;
  let bottleneck i =
    let links = links_of.(i) in
    let min_rate =
      List.fold_left
        (fun r l -> min r (Link.rate (Topology.link topo l)))
        infinity links
    in
    List.fold_left
      (fun best l ->
        if Link.rate (Topology.link topo l) > min_rate *. (1. +. 1e-9) then
          best
        else
          let u = Option.value ~default:0 (Hashtbl.find_opt usage l) in
          match best with
          | Some (bl, bu) when bu > u || (bu = u && bl <= l) -> best
          | _ -> Some (l, u))
      None links
    |> Option.map fst
  in
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i _ ->
      match bottleneck i with
      | None -> ()
      | Some l -> (
          match Hashtbl.find_opt groups l with
          | Some fl -> fl := i :: !fl
          | None -> Hashtbl.replace groups l (ref [ i ])))
    result.Runner.flows;
  let sjf_fcts = ref [] in
  let edf_met = ref 0 and edf_deadline_total = ref 0 in
  Hashtbl.iter
    (fun link flows ->
      let rate = Link.rate (Topology.link topo link) *. efficiency in
      let jobs =
        List.rev_map
          (fun i ->
            let spec = result.Runner.flows.(i).Runner.spec in
            let deadline =
              Option.map (fun d -> spec.Context.start +. d)
                spec.Context.deadline
            in
            Fluid.job ?deadline ~release:spec.Context.start ~id:i
              ~size:(Pdq_engine.Units.bytes_to_bits spec.Context.size)
              ())
          !flows
      in
      let release =
        List.fold_left
          (fun acc (j : Fluid.job) -> (j.Fluid.job_id, j.Fluid.release) :: acc)
          [] jobs
      in
      List.iter
        (fun (c : Fluid.completion) ->
          let r = List.assoc c.Fluid.c_job release in
          sjf_fcts := (c.Fluid.finish -. r) :: !sjf_fcts)
        (Fluid.srpt ~rate jobs);
      let deadline_jobs =
        List.filter (fun (j : Fluid.job) -> j.Fluid.deadline <> None) jobs
      in
      if deadline_jobs <> [] then begin
        edf_deadline_total := !edf_deadline_total + List.length deadline_jobs;
        let kept = Fluid.moore_hodgson ~rate jobs in
        edf_met :=
          !edf_met
          + List.length
              (List.filter
                 (fun (j : Fluid.job) -> List.mem j.Fluid.job_id kept)
                 deadline_jobs)
      end)
    groups;
  let mean = function
    | [] -> Float.nan
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  let sim_fcts =
    Array.to_list result.Runner.flows
    |> List.filter_map (fun (r : Runner.flow_result) -> r.Runner.fct)
  in
  let sim_mean = mean sim_fcts and sjf_mean = mean !sjf_fcts in
  {
    bounds;
    violations = List.rev !violations;
    sim_mean_fct = sim_mean;
    sjf_mean_fct = sjf_mean;
    edf_deadline_frac =
      (if !edf_deadline_total = 0 then 1.
       else float_of_int !edf_met /. float_of_int !edf_deadline_total);
    gap = sim_mean /. sjf_mean;
  }
