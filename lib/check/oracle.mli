(** Centralized preemptive oracle: offline EDF/SJF fluid references
    against which a finished packet-level run is validated.

    Two layers of bound:
    - a {b per-flow guaranteed lower bound} — transmission time of the
      flow's bytes through its slowest route link plus one traversal of
      every hop's propagation and processing delay. No scheduler can
      beat it, so [bound <= simulated FCT] must hold for every
      completed flow; a faster flow means the simulator leaked
      capacity.
    - {b aggregate references} — flows are grouped by bottleneck link
      (the most-shared minimum-rate link on each route) and scheduled
      by a centralized preemptive SJF (SRPT) and EDF + Moore–Hodgson
      fluid oracle at the link's goodput rate. These bound mean FCT and
      deadline throughput {e in aggregate}; the ratio of the simulated
      mean FCT to the SJF mean is the {b emulation gap} the paper's
      distributed protocol is trying to close. *)

type flow_bound = {
  ob_flow : int;         (** Flow id (index into [result.flows]). *)
  bound : float;         (** Contention-free FCT lower bound, s. *)
  fct : float option;    (** Simulated FCT, when completed. *)
}

type t = {
  bounds : flow_bound array;
  violations : Report.violation list;
      (** One ["oracle"] violation per completed flow whose simulated
          FCT beats its guaranteed lower bound. *)
  sim_mean_fct : float;  (** Mean over completed flows (nan if none). *)
  sjf_mean_fct : float;
      (** Mean FCT of the centralized SJF oracle over all flows. *)
  edf_deadline_frac : float;
      (** Fraction of deadline flows the EDF + Moore–Hodgson oracle
          satisfies (1.0 when there are none). *)
  gap : float;           (** [sim_mean_fct /. sjf_mean_fct]. *)
}

val check :
  ?efficiency:float ->
  ?per_flow:bool ->
  result:Pdq_transport.Runner.result ->
  topo:Pdq_net.Topology.t ->
  unit ->
  t
(** [efficiency] (default 1460/1500) converts line rate to goodput for
    the aggregate references; the per-flow guaranteed bound always uses
    the raw line rate so it stays a true lower bound. [per_flow]
    (default true) controls the per-flow assertions — disable it for
    multipath protocols (M-PDQ), whose striped subflows legitimately
    beat any single path's bound. *)
