type violation = {
  time : float;
  entity : string;
  invariant : string;
  detail : string;
}

let violation ~time ~entity ~invariant detail = { time; entity; invariant; detail }

let pp ppf v =
  Format.fprintf ppf "[%.6f] %s %s: %s" v.time v.invariant v.entity v.detail

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json v =
  Printf.sprintf {|{"t":%.9f,"invariant":"%s","entity":"%s","detail":"%s"}|}
    v.time (json_escape v.invariant) (json_escape v.entity)
    (json_escape v.detail)

let write_jsonl oc vs =
  List.iter
    (fun v ->
      output_string oc (to_json v);
      output_char oc '\n')
    vs;
  flush oc

let pp_list ppf = function
  | [] -> Format.fprintf ppf "no invariant violations@."
  | vs ->
      Format.fprintf ppf "%d invariant violation(s):@." (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "  %a@." pp v) vs
