(** Structured invariant-violation reports.

    Every monitor in this library reduces a broken run to a list of
    these records: the simulated time at which the inequality failed,
    the entity it failed on (a link, a flow, a switch port) and the
    violated inequality itself, with the offending values inlined so a
    report is actionable without re-running the simulation. *)

type violation = {
  time : float;       (** Simulated seconds. *)
  entity : string;    (** e.g. ["link 3"], ["flow 12"], ["port 5"]. *)
  invariant : string; (** Short id: ["capacity"], ["bytes"],
                          ["flow_list"], ["deadline"], ["oracle"]. *)
  detail : string;    (** The violated inequality with values. *)
}

val violation :
  time:float -> entity:string -> invariant:string -> string -> violation

val pp : Format.formatter -> violation -> unit
(** One line: [[time] invariant entity: detail]. *)

val pp_list : Format.formatter -> violation list -> unit
(** Human-readable summary, one violation per line. *)

val to_json : violation -> string
(** One self-contained JSON object. *)

val write_jsonl : out_channel -> violation list -> unit
(** One JSON object per line, flushed (CI artifact format). *)
