type t =
  | Ok
  | Bad_trace
  | Fault_aborted
  | Invariant_violation
  | Timed_out
  | Run_failed
  | Violation_found
  | Usage

let to_int = function
  | Ok -> 0
  | Bad_trace -> 1
  | Fault_aborted -> 3
  | Invariant_violation -> 4
  | Timed_out -> 5
  | Run_failed -> 6
  | Violation_found -> 7
  | Usage -> 124

let all =
  [ Ok; Bad_trace; Fault_aborted; Invariant_violation; Timed_out; Run_failed;
    Violation_found; Usage ]

let of_int n = List.find_opt (fun c -> to_int c = n) all

let describe = function
  | Ok -> "the run(s) completed (deadline misses are results, not errors)"
  | Bad_trace -> "a recorded trace or reproducer file could not be read or parsed"
  | Fault_aborted ->
      "at least one flow was aborted by its watchdog (faults cut every path)"
  | Invariant_violation -> "--check found invariant or oracle violations"
  | Timed_out ->
      "a run blew its --timeout/--max-events budget (and nothing worse \
       happened)"
  | Run_failed -> "a supervised sweep left crashed or skipped slots"
  | Violation_found ->
      "the chaos fuzzer found (and shrank) an invariant violation"
  | Usage -> "command-line usage error"
