(** The [pdq_sim] exit-status discipline, as data.

    Every subcommand maps its outcome through this one variant instead
    of scattering bare integer bindings, so the process contract — and
    its precedence order (violations dominate run failures dominate
    timeouts dominate fault aborts dominate success) — lives in one
    place, asserted by the CLI tests and rendered into the man page's
    EXIT STATUS section. *)

type t =
  | Ok  (** The run(s) completed; deadline misses are experiment
            results, not process failures. *)
  | Bad_trace
      (** [forensics] could not read or parse a recorded trace file,
          or [chaos --replay] could not read a reproducer. *)
  | Fault_aborted
      (** At least one flow was aborted by its watchdog (injected
          faults cut every path). *)
  | Invariant_violation
      (** [--check] found invariant or oracle violations. *)
  | Timed_out
      (** A run blew its [--timeout]/[--max-events] budget (and
          nothing worse happened). *)
  | Run_failed
      (** A supervised sweep left crashed or skipped slots. *)
  | Violation_found
      (** The [chaos] fuzzer found an invariant violation and emitted
          a (shrunk) reproducer. *)
  | Usage  (** Command-line usage error (cmdliner's default). *)

val to_int : t -> int
(** [Ok] 0, [Bad_trace] 1, [Fault_aborted] 3, [Invariant_violation] 4,
    [Timed_out] 5, [Run_failed] 6, [Violation_found] 7, [Usage] 124. *)

val of_int : int -> t option
(** Inverse of {!to_int}; [None] for integers outside the
    discipline. *)

val describe : t -> string
(** One-line human description (the man page EXIT STATUS text). *)

val all : t list
(** Every code, ascending by {!to_int}. *)
