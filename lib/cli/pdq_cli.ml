(* pdq_sim: command-line front end for single packet-level experiments.

   The flags parse directly into a {!Pdq_exec.Scenario.t}; everything
   except the telemetry/validation/profiler/jobs/supervision flags is
   scenario data.

   Examples:
     pdq_sim --proto pdq --flows 10 --deadline-mean 20
     pdq_sim --proto tcp --topo bottleneck --flows 8 --no-deadlines
     pdq_sim --workload jobs --job-pattern partition-aggregate --fan-in 8
     pdq_sim --workload jobs --job-count 4 --seeds 1,2,3 --job-metrics-out j.json
     pdq_sim --proto mpdq --subflows 4 --topo bcube --mean-size 400
     pdq_sim --proto pdq --topo fat-tree --flows 16 --flap-mtbf 0.3
     pdq_sim --proto pdq --seeds 1,2,3,4 --jobs 4
     pdq_sim --proto pdq --check --check-out violations.jsonl
     pdq_sim --seeds 1,2,3,4 --timeout 30 --retries 2 --keep-going \
             --checkpoint sweep.ckpt
     pdq_sim --seeds 1,2,3,4 --resume sweep.ckpt --report-out report.json
     pdq_sim --resilience --jobs 4
     pdq_sim --proto pdq --trace-out t.jsonl --forensics-out report.txt
     pdq_sim forensics t.jsonl
     pdq_sim forensics --diff a.jsonl b.jsonl *)

open Cmdliner
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Exec_opts = Pdq_exec.Exec_opts
module Task = Pdq_exec.Task
module Trace = Pdq_telemetry.Trace
module Report = Pdq_check.Report
module Attribution = Pdq_forensics.Attribution
module Trace_diff = Pdq_forensics.Trace_diff
module Job_metrics = Pdq_apps.Job_metrics

module Exit_code = Exit_code

(* Integer views of the discipline, for the arithmetic-free call
   sites below; {!Exit_code} is the source of truth. *)
let exit_fault_aborted = Exit_code.(to_int Fault_aborted)
let exit_invariant_violation = Exit_code.(to_int Invariant_violation)
let exit_timed_out = Exit_code.(to_int Timed_out)
let exit_run_failed = Exit_code.(to_int Run_failed)

(* Flags that are about this invocation, not about the experiment:
   telemetry sinks, the validation monitors, the profiler, the
   worker-domain count and the supervision (budget / retry /
   checkpoint) knobs. *)
type cli_opts = {
  trace_out : string option;
  metrics_out : string option;
  forensics_out : string option;
  job_metrics_out : string option;
  metrics_every : float;
  profile : bool;
  jobs : int option;
  seeds : int list;
  check : bool;
  check_out : string option;
  timeout : float option;
  max_events : int option;
  retries : int;
  keep_going : bool;
  checkpoint : string option;
  resume : string option;
  report_out : string option;
}

(* The per-attempt budget implied by --timeout/--max-events, or [None]
   when neither is set (so the unsupervised paths stay bit-identical
   to builds without this feature). *)
let budget_opt opts =
  match (opts.timeout, opts.max_events) with
  | None, None -> None
  | wall, events -> Some (Sweep.budget ?wall ?events ())

let retry_opt opts =
  if opts.retries > 0 then Some (Sweep.retry ~attempts:(opts.retries + 1) ())
  else None

(* Any supervision flag routes a --seeds sweep through the
   fault-tolerant executor. *)
let supervised opts =
  budget_opt opts <> None || opts.retries > 0 || opts.keep_going
  || opts.checkpoint <> None || opts.resume <> None
  || opts.report_out <> None
  (* Forensics over a sweep rides the supervisor so per-slot summaries
     can thread into its report. *)
  || opts.forensics_out <> None

let print_result ~(scenario : Scenario.t) (r : Runner.result) =
  Printf.printf "%s: %d flows (seed %d)\n" scenario.Scenario.name
    (Array.length r.Runner.flows)
    scenario.Scenario.seed;
  Array.iteri
    (fun i (f : Runner.flow_result) ->
      Printf.printf
        "  flow %2d  %3d->%3d  %7dB  %s%s%s\n" i f.Runner.spec.Context.src
        f.Runner.spec.Context.dst f.Runner.spec.Context.size
        (match f.Runner.fct with
        | Some x -> Printf.sprintf "fct %7.2f ms" (1e3 *. x)
        | None -> "incomplete   ")
        (match f.Runner.spec.Context.deadline with
        | Some d ->
            Printf.sprintf "  deadline %5.1f ms %s" (1e3 *. d)
              (if f.Runner.met_deadline then "MET" else "MISSED")
        | None -> "")
        (if f.Runner.terminated then "  [early terminated]"
         else if f.Runner.aborted then "  [aborted]"
         else ""))
    r.Runner.flows;
  Printf.printf "mean FCT %.3f ms | application throughput %.1f%% | %d/%d \
                 completed | %d aborted\n"
    (1e3 *. r.Runner.mean_fct)
    (100. *. r.Runner.application_throughput)
    r.Runner.completed (Array.length r.Runner.flows) r.Runner.aborted;
  if r.Runner.counters <> [] then begin
    Printf.printf "counters:";
    List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) r.Runner.counters;
    print_newline ()
  end

let print_check_summary (c : Scenario.checked) =
  Format.printf "%a" Report.pp_list c.Scenario.violations;
  let o = c.Scenario.oracle in
  Format.printf
    "oracle: sim mean FCT %.3f ms | SJF oracle %.3f ms | emulation gap %.2fx \
     | EDF deadline throughput %.1f%%@."
    (1e3 *. o.Pdq_check.Oracle.sim_mean_fct)
    (1e3 *. o.Pdq_check.Oracle.sjf_mean_fct)
    o.Pdq_check.Oracle.gap
    (100. *. o.Pdq_check.Oracle.edf_deadline_frac)

let write_check_out path violations =
  let oc = open_out path in
  Report.write_jsonl oc violations;
  close_out oc;
  Printf.printf "violation report written to %s (%d entries)\n" path
    (List.length violations)

(* Exit-status discipline: invariant violations dominate run failures,
   which dominate timeouts, which dominate fault aborts, which
   dominate success. Deadline misses are experiment results, not
   process failures. *)
let code_of ~violations (r : Runner.result) =
  if violations <> [] then exit_invariant_violation
  else if r.Runner.aborted > 0 then exit_fault_aborted
  else 0

(* Per-seed sink files for sweeps: trace.jsonl -> trace.seed7.jsonl. *)
let seed_path path ~seed =
  Printf.sprintf "%s.seed%d%s"
    (Filename.remove_extension path)
    seed
    (Filename.extension path)

let seed_pattern path =
  Printf.sprintf "%s.seed<N>%s"
    (Filename.remove_extension path)
    (Filename.extension path)

let write_metrics path m =
  let oc = open_out path in
  if Filename.check_suffix path ".jsonl" then
    Pdq_telemetry.Metrics.write_jsonl m oc
  else Pdq_telemetry.Metrics.write_csv m oc;
  close_out oc

(* The forensics output format follows the file extension; anything
   that is not .json or .csv gets the human-readable table. *)
let render_forensics ~path report =
  if Filename.check_suffix path ".json" then Attribution.to_json report ^ "\n"
  else if Filename.check_suffix path ".csv" then Attribution.to_csv report
  else Attribution.to_text report

let write_forensics path report =
  let oc = open_out path in
  output_string oc (render_forensics ~path report);
  close_out oc

(* One deterministic line per slot, threaded into the supervised sweep
   report as a note. *)
let forensics_summary (r : Attribution.report) =
  let t = r.Attribution.totals in
  Printf.sprintf
    "forensics: %d flows, fct %.3f ms (paused %.3f, recovery %.3f, downtime \
     %.3f)"
    (List.length r.Attribution.flows)
    (1e3 *. r.Attribution.total_fct)
    (1e3 *. t.Attribution.paused)
    (1e3 *. t.Attribution.recovery)
    (1e3 *. t.Attribution.downtime)

let is_jobs (scenario : Scenario.t) =
  match scenario.Scenario.workload with
  | Scenario.Jobs _ -> true
  | _ -> false

let write_job_metrics path report =
  let oc = open_out path in
  output_string oc (Job_metrics.to_json report);
  output_char oc '\n';
  close_out oc

(* One run with the full telemetry plumbing attached. *)
let run_single_plain scenario opts =
  let trace_chan = Option.map open_out opts.trace_out in
  let metrics =
    match opts.metrics_out with
    | Some _ -> Some (Pdq_telemetry.Metrics.create ())
    | None -> None
  in
  let forensics_mem =
    match opts.forensics_out with
    | Some _ -> Some (Trace.memory ())
    | None -> None
  in
  let telemetry =
    {
      Runner.no_telemetry with
      Runner.sinks =
        (match trace_chan with
        | Some oc -> [ Pdq_telemetry.Trace.jsonl oc ]
        | None -> [])
        @ (match forensics_mem with Some mem -> [ mem ] | None -> []);
      metrics;
      metrics_every = opts.metrics_every;
    }
  in
  let checking = opts.check || opts.check_out <> None in
  let r, violations, job_report =
    if checking then begin
      let c =
        Scenario.run_checked ~opts:(Exec_opts.telemetry telemetry) scenario
      in
      print_result ~scenario c.Scenario.result;
      print_check_summary c;
      Option.iter
        (fun path -> write_check_out path c.Scenario.violations)
        opts.check_out;
      (c.Scenario.result, c.Scenario.violations, c.Scenario.job_report)
    end
    else if is_jobs scenario then begin
      let r, report =
        Scenario.run_jobs ~opts:(Exec_opts.telemetry telemetry) scenario
      in
      print_result ~scenario r;
      (r, [], Some report)
    end
    else begin
      let r = Scenario.run ~opts:(Exec_opts.telemetry telemetry) scenario in
      print_result ~scenario r;
      (r, [], None)
    end
  in
  (match job_report with
  | Some report ->
      Format.printf "%a" Job_metrics.pp report;
      Option.iter
        (fun path ->
          write_job_metrics path report;
          Printf.printf "job metrics written to %s\n" path)
        opts.job_metrics_out
  | None -> ());
  (match trace_chan with
  | Some oc ->
      close_out oc;
      Printf.printf "trace written to %s\n" (Option.get opts.trace_out)
  | None -> ());
  (match (metrics, opts.metrics_out) with
  | Some m, Some path ->
      write_metrics path m;
      Printf.printf "metrics written to %s\n" path
  | _ -> ());
  (match (forensics_mem, opts.forensics_out) with
  | Some mem, Some path ->
      write_forensics path
        (Attribution.of_events (Pdq_telemetry.Trace.memory_events mem));
      Printf.printf "forensics report written to %s\n" path
  | _ -> ());
  code_of ~violations r

(* A single run honors --timeout/--max-events through the same
   cooperative-cancellation hook the sweep supervisor uses. *)
let run_single scenario opts =
  match budget_opt opts with
  | None -> run_single_plain scenario opts
  | Some b -> (
      match Sweep.with_budget b (fun () -> run_single_plain scenario opts) with
      | code -> code
      | exception Pdq_engine.Sim.Cancelled { reason; events } ->
          Printf.printf "%s: TIMED OUT (%s) after %d events\n"
            scenario.Scenario.name reason events;
          exit_timed_out)

(* Per-seed line shared by the legacy and supervised sweep printers;
   stdout must be identical for any --jobs value and for a resumed vs.
   uninterrupted supervised sweep. *)
let print_seed_line seed (r : Runner.result) =
  Printf.printf
    "  seed %3d  mean FCT %8.3f ms  app tput %5.1f%%  %d/%d completed  %d \
     aborted\n"
    seed
    (1e3 *. r.Runner.mean_fct)
    (100. *. r.Runner.application_throughput)
    r.Runner.completed (Array.length r.Runner.flows) r.Runner.aborted

let print_mean ~label results =
  let n = float_of_int (List.length results) in
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
  Printf.printf "%s: FCT %.3f ms | application throughput %.1f%%\n" label
    (1e3 *. mean (fun r -> r.Runner.mean_fct))
    (100. *. mean (fun r -> r.Runner.application_throughput))

(* Fault-tolerant --seeds sweep: every seed settles as a Task, crashed
   or timed-out seeds print a deterministic cause line, the mean is
   taken over the Ok seeds, and a resilience report summarizes the
   damage. Ok results stream to --checkpoint; --resume re-executes
   only the missing seeds. *)
let run_sweep_supervised scenario opts =
  let scenarios = List.map (Scenario.with_seed scenario) opts.seeds in
  let checking = opts.check || opts.check_out <> None in
  (* Per-run sinks get per-seed files (metrics.csv -> metrics.seed7.csv);
     forensic attribution additionally leaves a one-line summary per
     slot, threaded into the sweep report below. Resumed slots are not
     re-executed, so they produce neither. *)
  let notes_tbl : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let notes_mu = Mutex.create () in
  let add_note seed line =
    Mutex.protect notes_mu (fun () ->
        match Hashtbl.find_opt notes_tbl seed with
        | None -> Hashtbl.replace notes_tbl seed line
        | Some prev -> Hashtbl.replace notes_tbl seed (prev ^ " | " ^ line))
  in
  (* Job-workload slots leave a per-seed metrics file and a one-line
     summary note; resumed slots (not re-executed) produce neither,
     like the forensics files. *)
  let note_job_report seed = function
    | None -> ()
    | Some report ->
        Option.iter
          (fun path -> write_job_metrics (seed_path path ~seed) report)
          opts.job_metrics_out;
        add_note seed (Job_metrics.summary report)
  in
  let instrumented run s =
    let seed = s.Scenario.seed in
    let metrics =
      Option.map (fun _ -> Pdq_telemetry.Metrics.create ()) opts.metrics_out
    in
    let forensics_mem =
      Option.map (fun _ -> Trace.memory ()) opts.forensics_out
    in
    let telemetry =
      {
        Runner.no_telemetry with
        Runner.sinks =
          (match forensics_mem with Some mem -> [ mem ] | None -> []);
        metrics;
        metrics_every = opts.metrics_every;
      }
    in
    let r = run ~telemetry s in
    (match (metrics, opts.metrics_out) with
    | Some m, Some path -> write_metrics (seed_path path ~seed) m
    | _ -> ());
    (match (forensics_mem, opts.forensics_out) with
    | Some mem, Some path ->
        let rep = Attribution.of_events (Trace.memory_events mem) in
        write_forensics (seed_path path ~seed) rep;
        add_note seed (forensics_summary rep)
    | _ -> ());
    r
  in
  (* --resume keeps appending new completions to the same file unless
     a distinct --checkpoint is given. *)
  let checkpoint =
    match (opts.checkpoint, opts.resume) with
    | None, Some p -> Some p
    | c, _ -> c
  in
  (* With supervision, --trace-out captures the sweep lifecycle (slot
     settled / retry / worker crash) on a wall-clock bus instead of a
     per-run simulation trace. *)
  let trace_chan = Option.map open_out opts.trace_out in
  let bus =
    Option.map
      (fun oc -> Trace.create ~clock:Unix.gettimeofday ~sinks:[ Trace.jsonl oc ])
      trace_chan
  in
  let on_event = Option.map (fun b ev -> Sweep.emit_trace b ev) bus in
  let tasks, report, violations =
    if checking then begin
      let sup =
        Sweep.supervise
          ~opts:(Exec_opts.make ?jobs:opts.jobs ?budget:(budget_opt opts) ())
          ?retry:(retry_opt opts) ~keep_going:opts.keep_going ?on_event
          ~key:Scenario.digest
          (instrumented (fun ~telemetry s ->
               let c =
                 Scenario.run_checked ~opts:(Exec_opts.telemetry telemetry) s
               in
               note_job_report s.Scenario.seed c.Scenario.job_report;
               c))
          scenarios
      in
      ( List.map (Task.map (fun c -> c.Scenario.result)) sup.Sweep.tasks,
        sup.Sweep.report,
        List.concat_map
          (fun t ->
            match Task.ok t with
            | Some c -> c.Scenario.violations
            | None -> [])
          sup.Sweep.tasks )
    end
    else
      let sup =
        Sweep.supervise
          ~opts:(Exec_opts.make ?jobs:opts.jobs ?budget:(budget_opt opts) ())
          ?retry:(retry_opt opts) ~keep_going:opts.keep_going ?checkpoint
          ?resume:opts.resume ~codec:Scenario.result_codec ?on_event
          ~key:Scenario.digest
          (instrumented (fun ~telemetry s ->
               if is_jobs s then begin
                 let r, job_report =
                   Scenario.run_jobs ~opts:(Exec_opts.telemetry telemetry) s
                 in
                 note_job_report s.Scenario.seed (Some job_report);
                 r
               end
               else Scenario.run ~opts:(Exec_opts.telemetry telemetry) s))
          scenarios
      in
      (sup.Sweep.tasks, sup.Sweep.report, [])
  in
  let report =
    let notes =
      List.mapi
        (fun i seed ->
          Option.map (fun n -> (i, n)) (Hashtbl.find_opt notes_tbl seed))
        opts.seeds
      |> List.filter_map Fun.id
    in
    if notes = [] then report else Sweep.with_notes report ~notes
  in
  (match trace_chan with
  | Some oc ->
      close_out oc;
      Printf.eprintf "sweep trace written to %s\n%!" (Option.get opts.trace_out)
  | None -> ());
  Printf.printf "%s: %d seeds\n" scenario.Scenario.name
    (List.length opts.seeds);
  List.iter2
    (fun seed task ->
      match task with
      | Task.Ok r -> print_seed_line seed r
      | t -> Printf.printf "  seed %3d  %s\n" seed (Format.asprintf "%a" Task.pp t))
    opts.seeds tasks;
  let oks = List.filter_map Task.ok tasks in
  (match oks with
  | [] -> Printf.printf "no seeds completed\n"
  | _ when List.length oks = List.length tasks ->
      print_mean ~label:"mean over seeds" oks
  | _ ->
      print_mean
        ~label:(Printf.sprintf "mean over %d ok seeds" (List.length oks))
        oks);
  if report.Sweep.slots <> [] || report.Sweep.notes <> [] then
    Format.printf "%a" Sweep.pp_report report;
  if checking then Format.printf "%a" Report.pp_list violations;
  Option.iter (fun path -> write_check_out path violations) opts.check_out;
  (* Resume bookkeeping and wall-clock material go to stderr so stdout
     stays diffable against an uninterrupted run. *)
  if opts.metrics_out <> None then
    Printf.eprintf "per-seed metrics written to %s\n%!"
      (seed_pattern (Option.get opts.metrics_out));
  if opts.forensics_out <> None then
    Printf.eprintf "per-seed forensics reports written to %s\n%!"
      (seed_pattern (Option.get opts.forensics_out));
  if is_jobs scenario && opts.job_metrics_out <> None then
    Printf.eprintf "per-seed job metrics written to %s\n%!"
      (seed_pattern (Option.get opts.job_metrics_out));
  if report.Sweep.resumed > 0 then
    Printf.eprintf "resumed %d of %d seeds from checkpoint\n%!"
      report.Sweep.resumed report.Sweep.total;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Sweep.report_to_json report);
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "sweep report written to %s\n%!" path)
    opts.report_out;
  let aborted =
    List.exists (fun (r : Runner.result) -> r.Runner.aborted > 0) oks
  in
  if violations <> [] then exit_invariant_violation
  else if report.Sweep.failed > 0 || report.Sweep.skipped > 0 then
    exit_run_failed
  else if report.Sweep.timed_out > 0 then exit_timed_out
  else if aborted then exit_fault_aborted
  else 0

(* A --seeds sweep: scenarios fan out over the domain pool; sinks are
   per-run state, so the sweep reports aggregates instead. A checked
   sweep attaches one self-contained monitor per run, which keeps the
   fan-out domain-safe. *)
let run_sweep scenario opts =
  let scenarios = List.map (Scenario.with_seed scenario) opts.seeds in
  let checking = opts.check || opts.check_out <> None in
  (* Sinks are per-run state, so each run writes its own per-seed
     files: --trace-out trace.jsonl with seed 7 lands in
     trace.seed7.jsonl. Channels are opened and closed inside the
     worker, never shared across domains. *)
  let with_sinks run s =
    let seed = s.Scenario.seed in
    let trace_chan =
      Option.map (fun p -> open_out (seed_path p ~seed)) opts.trace_out
    in
    let metrics =
      Option.map (fun _ -> Pdq_telemetry.Metrics.create ()) opts.metrics_out
    in
    let telemetry =
      {
        Runner.no_telemetry with
        Runner.sinks =
          (match trace_chan with
          | Some oc -> [ Pdq_telemetry.Trace.jsonl oc ]
          | None -> []);
        metrics;
        metrics_every = opts.metrics_every;
      }
    in
    Fun.protect
      ~finally:(fun () -> Option.iter close_out trace_chan)
      (fun () ->
        let r = run ~telemetry s in
        (match (metrics, opts.metrics_out) with
        | Some m, Some path -> write_metrics (seed_path path ~seed) m
        | _ -> ());
        r)
  in
  let results, violations, job_reports =
    if checking then begin
      let checked =
        Sweep.map ?jobs:opts.jobs
          (with_sinks (fun ~telemetry s ->
               Scenario.run_checked ~opts:(Exec_opts.telemetry telemetry) s))
          scenarios
      in
      ( List.map (fun c -> c.Scenario.result) checked,
        List.concat_map (fun c -> c.Scenario.violations) checked,
        List.filter_map (fun c -> c.Scenario.job_report) checked )
    end
    else if is_jobs scenario then begin
      let runs =
        Sweep.map ?jobs:opts.jobs
          (with_sinks (fun ~telemetry s ->
               Scenario.run_jobs ~opts:(Exec_opts.telemetry telemetry) s))
          scenarios
      in
      (List.map fst runs, [], List.map snd runs)
    end
    else
      ( Sweep.map ?jobs:opts.jobs
          (with_sinks (fun ~telemetry s ->
               Scenario.run ~opts:(Exec_opts.telemetry telemetry) s))
          scenarios,
        [],
        [] )
  in
  (* The domain count is an execution detail: stdout must be identical
     for any --jobs value. *)
  Printf.printf "%s: %d seeds\n" scenario.Scenario.name
    (List.length opts.seeds);
  List.iter2 print_seed_line opts.seeds results;
  print_mean ~label:"mean over seeds" results;
  if job_reports <> [] then begin
    List.iter2
      (fun seed report ->
        Printf.printf "  seed %3d  %s\n" seed (Job_metrics.summary report))
      opts.seeds job_reports;
    let n = float_of_int (List.length job_reports) in
    let sum f =
      List.fold_left (fun acc r -> acc + f r) 0 job_reports
    in
    Printf.printf
      "jobs mean over seeds: JCT %.3f ms | deadline misses %d/%d\n"
      (1e3
      *. (List.fold_left
            (fun acc (r : Job_metrics.report) -> acc +. r.Job_metrics.mean_jct)
            0. job_reports
         /. n))
      (sum (fun (r : Job_metrics.report) ->
           r.Job_metrics.deadline_jobs - r.Job_metrics.deadline_met))
      (sum (fun (r : Job_metrics.report) -> r.Job_metrics.deadline_jobs));
    Option.iter
      (fun path ->
        List.iter2
          (fun seed report -> write_job_metrics (seed_path path ~seed) report)
          opts.seeds job_reports)
      opts.job_metrics_out
  end;
  if checking then Format.printf "%a" Report.pp_list violations;
  Option.iter (fun path -> write_check_out path violations) opts.check_out;
  if job_reports <> [] && opts.job_metrics_out <> None then
    Printf.eprintf "per-seed job metrics written to %s\n%!"
      (seed_pattern (Option.get opts.job_metrics_out));
  if opts.trace_out <> None then
    Printf.eprintf "per-seed traces written to %s\n%!"
      (seed_pattern (Option.get opts.trace_out));
  if opts.metrics_out <> None then
    Printf.eprintf "per-seed metrics written to %s\n%!"
      (seed_pattern (Option.get opts.metrics_out));
  let aborted = List.exists (fun (r : Runner.result) -> r.Runner.aborted > 0) results in
  if violations <> [] then exit_invariant_violation
  else if aborted then exit_fault_aborted
  else 0

let workload_names = [ "flows"; "jobs" ]

let print_workloads () =
  print_string
    (String.concat "\n"
       [
         "workloads (--workload):";
         "  flows  simultaneous flows from --pattern/--flows/--mean-size \
          (the paper's synthetic workload)";
         "  jobs   application-level job DAGs (--job-pattern, --job-count, \
          --fan-in, --stage-depth) with per-job deadlines and JCT metrics";
         "job patterns (--job-pattern): "
         ^ String.concat ", " Scenario.job_pattern_names;
         "flow patterns (--pattern): "
         ^ String.concat ", " Scenario.pattern_names;
         "";
       ])

let run scenario opts resilience full list_workloads =
  if list_workloads then begin
    print_workloads ();
    0
  end
  else begin
  (* Enable before any simulator exists so every run attaches to the
     global profiler; worker-domain shards merge in the report. *)
  let profiler =
    if opts.profile then Some (Pdq_engine.Profiler.enable_global ()) else None
  in
  let code =
    if resilience then begin
      match
        Pdq_experiments.Resilience.run_all ?jobs:opts.jobs
          ?budget:(budget_opt opts) ~quick:(not full) Format.std_formatter ()
      with
      | () -> 0
      | exception Sweep.Sweep_errors errs ->
          Printf.eprintf "resilience sweep failed:\n%s\n%!"
            (Printexc.to_string (Sweep.Sweep_errors errs));
          if
            List.for_all
              (fun (_, e) ->
                match e with Pdq_engine.Sim.Cancelled _ -> true | _ -> false)
              errs
          then exit_timed_out
          else exit_run_failed
    end
    else begin
      match opts.seeds with
      | [] | [ _ ] ->
          let scenario =
            match opts.seeds with
            | [ seed ] -> Scenario.with_seed scenario seed
            | _ -> scenario
          in
          run_single scenario opts
      | _ ->
          if supervised opts then run_sweep_supervised scenario opts
          else run_sweep scenario opts
    end
  in
  (match profiler with
  | Some p -> Format.printf "%a@." Pdq_engine.Profiler.pp_report p
  | None -> ());
  code
  end

(* Parsers return [Result] so bad names surface as cmdliner usage
   errors instead of exceptions. *)
let msg r = Result.map_error (fun e -> `Msg e) r

let scenario_term =
  let make proto_name subflows topo_name workload_name flows mean_size_kb
      deadline_mean_ms no_deadlines pattern_name job_pattern_name job_count
      fan_in stage_depth job_rate seed flap_mtbf flap_mttr reboot_mtbf
      fault_until =
    let ( let* ) = Result.bind in
    let* protocol = msg (Scenario.protocol_of_string ~subflows proto_name) in
    let* topo = msg (Scenario.topo_of_string topo_name) in
    let sizes = Scenario.Uniform_paper { mean_bytes = mean_size_kb * 1000 } in
    let deadlines =
      if no_deadlines then Scenario.No_deadlines
      else
        Scenario.Exp_deadlines { mean = deadline_mean_ms /. 1e3; floor = 3e-3 }
    in
    let* workload =
      match String.lowercase_ascii workload_name with
      | "flows" | "synthetic" ->
          let* pattern = msg (Scenario.pattern_of_string pattern_name) in
          Ok (Scenario.Synthetic { pattern; flows; sizes; deadlines })
      | "jobs" ->
          let* pattern = msg (Scenario.job_pattern_of_string job_pattern_name) in
          Ok
            (Scenario.Jobs
               {
                 pattern;
                 count = job_count;
                 width = fan_in;
                 depth = stage_depth;
                 sizes;
                 deadlines;
                 rate = job_rate;
               })
      | other ->
          Error
            (`Msg
               (Printf.sprintf "unknown workload %S (expected one of: %s)"
                  other
                  (String.concat ", " workload_names)))
    in
    let faults =
      match (flap_mtbf, reboot_mtbf) with
      | None, None -> Scenario.No_faults
      | _ ->
          Scenario.Flaps_and_reboots
            { flap_mtbf; flap_mttr; reboot_mtbf; until = fault_until }
    in
    Ok (Scenario.make ~topo ~seed ~faults ~workload protocol)
  in
  let proto =
    Arg.(value & opt string "pdq"
         & info [ "proto" ]
             ~doc:"pdq, pdq-basic, pdq-es, pdq-es-et, mpdq, rcp, d3, tcp \
                   (pdq-broken: a deliberately broken rate allocator for \
                   exercising --check)")
  in
  let subflows =
    Arg.(value & opt int 3 & info [ "subflows" ] ~doc:"M-PDQ subflows")
  in
  let topo =
    Arg.(value & opt string "tree"
         & info [ "topo" ] ~doc:"tree, bottleneck, fat-tree, bcube, jellyfish")
  in
  let workload =
    Arg.(value & opt string "flows"
         & info [ "workload" ]
             ~doc:"flows (the paper's synthetic workload) or jobs \
                   (application-level job DAGs with JCT metrics); see \
                   --list-workloads")
  in
  let flows = Arg.(value & opt int 10 & info [ "flows" ] ~doc:"number of flows") in
  let mean_size =
    Arg.(value & opt int 100 & info [ "mean-size" ] ~doc:"mean flow size [KB]")
  in
  let deadline_mean =
    Arg.(value & opt float 20. & info [ "deadline-mean" ] ~doc:"mean deadline [ms]")
  in
  let no_deadlines =
    Arg.(value & flag & info [ "no-deadlines" ] ~doc:"deadline-unconstrained flows")
  in
  let pattern =
    Arg.(value & opt string "aggregation"
         & info [ "pattern" ]
             ~doc:"aggregation, stride, staggered, permutation, pairs")
  in
  let job_pattern =
    Arg.(value & opt string "partition-aggregate"
         & info [ "job-pattern" ]
             ~doc:"With --workload jobs: partition-aggregate, map-reduce, \
                   pipeline")
  in
  let job_count =
    Arg.(value & opt int 1
         & info [ "job-count" ] ~doc:"With --workload jobs: number of jobs")
  in
  let fan_in =
    Arg.(value & opt int 4
         & info [ "fan-in" ]
             ~doc:"With --workload jobs: workers (or mappers) per stage")
  in
  let stage_depth =
    Arg.(value & opt int 1
         & info [ "stage-depth" ]
             ~doc:"With --workload jobs: rounds per job (pipeline: hops)")
  in
  let job_rate =
    Arg.(value & opt (some float) None
         & info [ "job-rate" ]
             ~doc:"With --workload jobs: Poisson job-arrival rate [jobs/s] \
                   (default: all jobs arrive at t=0)")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed") in
  let flap_mtbf =
    Arg.(value & opt (some float) None
         & info [ "flap-mtbf" ]
             ~doc:"Flap switch-switch cables: mean time between failures [s]")
  in
  let flap_mttr =
    Arg.(value & opt float 0.03
         & info [ "flap-mttr" ] ~doc:"Mean time to repair a flapped cable [s]")
  in
  let reboot_mtbf =
    Arg.(value & opt (some float) None
         & info [ "reboot-mtbf" ]
             ~doc:"Crash-reboot switches: mean time between reboots [s]")
  in
  let fault_until =
    Arg.(value & opt float 0.5
         & info [ "fault-until" ] ~doc:"Stop injecting faults after this time [s]")
  in
  Term.term_result
    Term.(
      const make $ proto $ subflows $ topo $ workload $ flows $ mean_size
      $ deadline_mean $ no_deadlines $ pattern $ job_pattern $ job_count
      $ fan_in $ stage_depth $ job_rate $ seed $ flap_mtbf $ flap_mttr
      $ reboot_mtbf $ fault_until)

let opts_term =
  let make trace_out metrics_out forensics_out job_metrics_out metrics_every
      profile jobs seeds check check_out timeout max_events retries keep_going
      checkpoint resume report_out =
    let checking = check || check_out <> None in
    if checking && (checkpoint <> None || resume <> None) then
      Error
        (`Msg
           "--checkpoint/--resume cannot be combined with --check: checked \
            results carry live monitor state and are not checkpointable \
            (budgets, --retries and --keep-going do work with --check)")
    else if retries < 0 then Error (`Msg "--retries must be >= 0")
    else
      Ok
        {
          trace_out;
          metrics_out;
          forensics_out;
          job_metrics_out;
          metrics_every;
          profile;
          jobs;
          seeds;
          check;
          check_out;
          timeout;
          max_events;
          retries;
          keep_going;
          checkpoint;
          resume;
          report_out;
        }
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ]
             ~doc:"Write the structured event trace as JSONL to $(docv). With \
                   a plain --seeds sweep: one file per seed \
                   (trace.seedN.jsonl); with a supervised sweep: the sweep \
                   lifecycle events on a wall-clock bus instead"
             ~docv:"FILE")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ]
             ~doc:"Write the metrics registry (probe series, counters, \
                   histograms) to $(docv); .jsonl extension selects JSONL, \
                   anything else CSV"
             ~docv:"FILE")
  in
  let forensics_out =
    Arg.(value & opt (some string) None
         & info [ "forensics-out" ]
             ~doc:"Reconstruct per-flow lifecycle spans from the run's event \
                   stream and write the FCT attribution report to $(docv) \
                   (.json/.csv select the format, anything else the text \
                   table). With --seeds: one file per seed plus a per-slot \
                   summary in the sweep report"
             ~docv:"FILE")
  in
  let job_metrics_out =
    Arg.(value & opt (some string) None
         & info [ "job-metrics-out" ]
             ~doc:"With --workload jobs: write the job-level report (per-job \
                   JCT, stage coflow completion times, deadline misses, \
                   stragglers) as JSON to $(docv). With --seeds: one file per \
                   seed (file.seedN.json)"
             ~docv:"FILE")
  in
  let metrics_every =
    Arg.(value & opt float 1e-3
         & info [ "metrics-every" ]
             ~doc:"Metrics and validation probe period in simulated seconds"
             ~docv:"SEC")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print the simulator profiler report (events executed, \
                   queue high-water mark, CPU per simulated second, per \
                   event kind timing)")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:"Worker domains for --seeds sweeps and --resilience \
                   (default: the recommended domain count, or the PDQ_JOBS \
                   environment variable); \
                   results are identical for any value" ~docv:"N")
  in
  let seeds =
    Arg.(value & opt (list int) []
         & info [ "seeds" ]
             ~doc:"Run the scenario under each comma-separated seed (in \
                   parallel with --jobs) and report per-seed and mean \
                   figures" ~docv:"S1,S2,...")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Attach the validation monitors (link capacity, byte \
                   conservation, switch flow-state bounds, deadline \
                   accounting) and the EDF/SJF oracle bounds; exit 4 on any \
                   violation")
  in
  let check_out =
    Arg.(value & opt (some string) None
         & info [ "check-out" ]
             ~doc:"With --check (implied): write the violation report as \
                   JSONL to $(docv)"
             ~docv:"FILE")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ]
             ~doc:"Per-run (per-attempt) wall-clock budget in seconds, \
                   enforced cooperatively inside the simulator; a run that \
                   blows it is reported TIMED OUT (exit 5)"
             ~docv:"SEC")
  in
  let max_events =
    Arg.(value & opt (some int) None
         & info [ "max-events" ]
             ~doc:"Per-run (per-attempt) simulator event budget; a run that \
                   blows it is reported TIMED OUT (exit 5)"
             ~docv:"N")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ]
             ~doc:"With --seeds: retry a crashed seed up to $(docv) more \
                   times with jittered exponential backoff (timeouts are \
                   never retried)"
             ~docv:"N")
  in
  let keep_going =
    Arg.(value & flag
         & info [ "keep-going" ]
             ~doc:"With --seeds: a crashed or timed-out seed settles as a \
                   structured failure slot and the sweep continues instead \
                   of stopping at the first casualty")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ]
             ~doc:"With --seeds: stream each completed run to $(docv) as \
                   JSONL keyed by scenario content hash, flushed per line, \
                   so a killed sweep loses at most the in-flight runs"
             ~docv:"FILE")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ]
             ~doc:"With --seeds: preload completed runs from checkpoint \
                   $(docv), re-execute only the missing seeds (bit-identical \
                   to an uninterrupted sweep) and keep appending new \
                   completions to the same file"
             ~docv:"FILE")
  in
  let report_out =
    Arg.(value & opt (some string) None
         & info [ "report-out" ]
             ~doc:"With --seeds supervision: write the sweep resilience \
                   report (ok/resumed/failed/timed-out counts, attempts, \
                   per-slot causes, wall time) as JSON to $(docv)"
             ~docv:"FILE")
  in
  Term.term_result
    Term.(
      const make $ trace_out $ metrics_out $ forensics_out $ job_metrics_out
      $ metrics_every $ profile $ jobs $ seeds $ check $ check_out $ timeout
      $ max_events $ retries $ keep_going $ checkpoint $ resume $ report_out)

(* ------------------------------------------------------------------ *)
(* pdq_sim forensics: offline span reconstruction, FCT attribution and
   trace diffing over recorded --trace-out JSONL files. *)

let exit_bad_trace = Exit_code.(to_int Bad_trace)

let load_attribution path =
  Result.map Attribution.of_events (Pdq_forensics.Replay.read_file path)

let run_forensics ~traces ~diff ~format ~out ~threshold =
  let write what s =
    match out with
    | None ->
        print_string s;
        0
    | Some path ->
        let oc = open_out path in
        output_string oc s;
        close_out oc;
        Printf.printf "forensics %s written to %s\n" what path;
        0
  in
  match (diff, traces) with
  | false, [ path ] -> (
      match load_attribution path with
      | Error msg ->
          Printf.eprintf "pdq_sim forensics: %s\n%!" msg;
          exit_bad_trace
      | Ok rep ->
          write "report"
            (match format with
            | `Text -> Attribution.to_text rep
            | `Csv -> Attribution.to_csv rep
            | `Json -> Attribution.to_json rep ^ "\n"))
  | true, [ a; b ] -> (
      match (load_attribution a, load_attribution b) with
      | Error msg, _ | _, Error msg ->
          Printf.eprintf "pdq_sim forensics: %s\n%!" msg;
          exit_bad_trace
      | Ok ra, Ok rb ->
          let d = Trace_diff.diff ~threshold ra rb in
          write "diff"
            (match format with
            | `Json -> Trace_diff.to_json d ^ "\n"
            | _ -> Trace_diff.to_text d))
  | _ -> assert false (* arity checked at parse time *)

let forensics_term =
  let make traces diff format_name out threshold =
    let ( let* ) = Result.bind in
    let* format =
      match format_name with
      | "text" -> Ok `Text
      | "csv" -> Ok `Csv
      | "json" -> Ok `Json
      | other -> Error (`Msg (Printf.sprintf "unknown --format %S" other))
    in
    let* () =
      match (diff, List.length traces) with
      | false, 1 | true, 2 -> Ok ()
      | false, n ->
          Error
            (`Msg
               (Printf.sprintf
                  "expected exactly one TRACE (got %d); use --diff to compare \
                   two"
                  n))
      | true, n ->
          Error
            (`Msg (Printf.sprintf "--diff expects exactly two traces (got %d)" n))
    in
    let* () =
      if diff && format = `Csv then
        Error (`Msg "--diff supports --format text or json")
      else Ok ()
    in
    if threshold < 0. then Error (`Msg "--threshold must be >= 0")
    else Ok (run_forensics ~traces ~diff ~format ~out ~threshold)
  in
  let traces =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"TRACE"
             ~doc:"Recorded JSONL trace(s) from --trace-out")
  in
  let diff =
    Arg.(value & flag
         & info [ "diff" ]
             ~doc:"Compare two traces: align flows by id and report \
                   per-component FCT differences beyond --threshold")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ]
             ~doc:"Output format: text, csv or json (csv only without \
                   --diff)"
             ~docv:"FMT")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~doc:"Write the report to $(docv) instead of stdout"
             ~docv:"FILE")
  in
  let threshold =
    Arg.(value & opt float 1e-3
         & info [ "threshold" ]
             ~doc:"With --diff: ignore component changes of at most $(docv) \
                   seconds"
             ~docv:"SEC")
  in
  Term.term_result
    Term.(const make $ traces $ diff $ format $ out $ threshold)

let forensics_cmd =
  Cmd.v
    (Cmd.info "forensics"
       ~doc:"Reconstruct per-flow lifecycle spans from a recorded trace, \
             attribute each flow's completion time to handshake / \
             serialization / paused / loss-recovery / fault-downtime \
             components, or diff the attribution of two runs")
    forensics_term

(* ------------------------------------------------------------------ *)
(* pdq_sim chaos: adversarial fuzzing of the invariant monitors.
   Random (scenario, fault plan, adversary plan) cases run through the
   full validation stack on the supervised executor; a violating case
   is shrunk to a minimal reproducer and written as replayable JSON.
   Stdout is built entirely from the returned campaign, so it is
   bit-identical for any --jobs value. *)

module Fuzzer = Pdq_chaos.Fuzzer

let exit_violation_found = Exit_code.(to_int Violation_found)

let verdict_line (t : Fuzzer.verdict Task.t) =
  match t with
  | Task.Ok { Fuzzer.invariant = None; _ } -> "ok"
  | Task.Ok { Fuzzer.invariant = Some inv; violations; _ } ->
      Printf.sprintf "VIOLATION %s (%d violation%s)" inv violations
        (if violations = 1 then "" else "s")
  | Task.Failed f -> "failed: " ^ f.Task.exn
  | Task.Timed_out b -> "timed out: " ^ b.Task.budget
  | Task.Skipped -> "skipped"

let write_repro path json =
  let oc = open_out path in
  output_string oc json;
  output_char oc '\n';
  close_out oc

let run_chaos_replay ~opts ~path =
  let contents =
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error msg -> Error msg
  in
  match Result.bind contents Fuzzer.case_of_json with
  | Error msg ->
      Printf.eprintf "pdq_sim chaos: cannot replay %s: %s\n%!" path msg;
      exit_bad_trace
  | Ok case -> (
      Printf.printf "replaying %s\n" (Format.asprintf "%a" Fuzzer.pp_case case);
      match Fuzzer.run_case ~opts case with
      | Error msg ->
          Printf.eprintf "pdq_sim chaos: %s\n%!" msg;
          exit_bad_trace
      | Ok checked ->
          let violations = checked.Scenario.violations in
          Format.printf "%a" Report.pp_list violations;
          if violations = [] then begin
            Printf.printf "replay: clean (no invariant violations)\n";
            0
          end
          else begin
            Printf.printf "replay: %d violation%s, first invariant %s\n"
              (List.length violations)
              (if List.length violations = 1 then "" else "s")
              (match Fuzzer.signature checked with Some s -> s | None -> "?");
            exit_violation_found
          end)

let run_chaos_fuzz ~opts ~runs ~seed ~intensity ~protocols ~shrink_budget
    ~repro_out ~checkpoint ~resume ~report_out =
  let campaign =
    Fuzzer.fuzz ~opts ?checkpoint ?resume ~protocols ~intensity ~runs ~seed ()
  in
  List.iteri
    (fun i (c, t) ->
      Printf.printf "case %3d: %s: %s\n" i
        (Format.asprintf "%a" Fuzzer.pp_case c)
        (verdict_line t))
    (List.combine campaign.Fuzzer.cases campaign.Fuzzer.verdicts);
  let report = campaign.Fuzzer.report in
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Sweep.report_to_json report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "sweep report written to %s\n" path)
    report_out;
  match Fuzzer.first_violation campaign with
  | None ->
      Printf.printf "chaos: %d runs, no invariant violations\n"
        report.Sweep.total;
      if report.Sweep.failed > 0 || report.Sweep.skipped > 0 then
        exit_run_failed
      else if report.Sweep.timed_out > 0 then exit_timed_out
      else 0
  | Some (index, case, invariant) ->
      Printf.printf "chaos: violation of %S in case %d; shrinking...\n"
        invariant index;
      let shrunk =
        Fuzzer.shrink ~opts ~budget:shrink_budget case ~invariant
      in
      let minimal = shrunk.Fuzzer.minimal in
      Printf.printf
        "shrunk %d fault + %d adversary events to %d + %d (%d re-runs)\n"
        (Pdq_faults.Fault_plan.length case.Fuzzer.faults)
        (Pdq_chaos.Adversary_plan.length case.Fuzzer.adversary)
        (Pdq_faults.Fault_plan.length minimal.Fuzzer.faults)
        (Pdq_chaos.Adversary_plan.length minimal.Fuzzer.adversary)
        shrunk.Fuzzer.runs_used;
      let json = Fuzzer.case_to_json minimal in
      (match repro_out with
      | Some path ->
          write_repro path json;
          Printf.printf "reproducer written to %s\n" path
      | None -> Printf.printf "reproducer: %s\n" json);
      exit_violation_found

let chaos_term =
  let make runs seed intensity protocols shrink_budget repro_out replay jobs
      timeout max_events checkpoint resume report_out =
    let ( let* ) = Result.bind in
    let* () = if runs <= 0 then Error (`Msg "--runs must be > 0") else Ok () in
    let* () =
      if intensity <= 0. || intensity > 1. then
        Error (`Msg "--intensity must be in (0, 1]")
      else Ok ()
    in
    let* () =
      if shrink_budget < 0 then Error (`Msg "--shrink-budget must be >= 0")
      else Ok ()
    in
    let* protocols =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          match Scenario.protocol_of_string p with
          | Ok _ -> Ok (acc @ [ p ])
          | Error e -> Error (`Msg e))
        (Ok []) protocols
    in
    let budget =
      match (timeout, max_events) with
      | None, None -> None
      | wall, events -> Some (Sweep.budget ?wall ?events ())
    in
    let opts = Exec_opts.make ?jobs ?budget () in
    Ok
      (match replay with
      | Some path -> run_chaos_replay ~opts ~path
      | None ->
          run_chaos_fuzz ~opts ~runs ~seed ~intensity ~protocols ~shrink_budget
            ~repro_out ~checkpoint ~resume ~report_out)
  in
  let runs =
    Arg.(value & opt int 25
         & info [ "runs" ] ~doc:"Number of fuzzed cases" ~docv:"N")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:"Master seed; the whole campaign is a deterministic \
                   function of it"
             ~docv:"S")
  in
  let intensity =
    Arg.(value & opt float 0.35
         & info [ "intensity" ]
             ~doc:"Adversary intensity in (0, 1]: scales condition \
                   probabilities, jitter and clock skew"
             ~docv:"X")
  in
  let protocols =
    Arg.(value & opt (list string) Fuzzer.default_protocols
         & info [ "protocols" ]
             ~doc:"Comma-separated protocol roster to draw cases from \
                   (include pdq-broken to exercise the canary)"
             ~docv:"P1,P2,...")
  in
  let shrink_budget =
    Arg.(value & opt int 150
         & info [ "shrink-budget" ]
             ~doc:"Maximum re-executions the counterexample shrinker may \
                   spend"
             ~docv:"N")
  in
  let repro_out =
    Arg.(value & opt (some string) None
         & info [ "repro-out" ]
             ~doc:"Write the shrunk reproducer case as JSON to $(docv) \
                   (default: print it); replay with --replay"
             ~docv:"FILE")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ]
             ~doc:"Replay a reproducer case written by --repro-out through \
                   the full validation stack instead of fuzzing; exit 7 if \
                   it still violates"
             ~docv:"FILE")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:"Worker domains for the campaign (results and output are \
                   identical for any value)"
             ~docv:"N")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ]
             ~doc:"Per-case wall-clock budget in seconds (cooperative; a \
                   blown case settles as timed out)"
             ~docv:"SEC")
  in
  let max_events =
    Arg.(value & opt (some int) None
         & info [ "max-events" ]
             ~doc:"Per-case simulator event budget" ~docv:"N")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ]
             ~doc:"Stream each completed case verdict to $(docv) as JSONL \
                   keyed by case content hash"
             ~docv:"FILE")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ]
             ~doc:"Preload case verdicts from checkpoint $(docv) and \
                   re-execute only the missing cases"
             ~docv:"FILE")
  in
  let report_out =
    Arg.(value & opt (some string) None
         & info [ "report-out" ]
             ~doc:"Write the campaign's sweep report as JSON to $(docv)"
             ~docv:"FILE")
  in
  Term.term_result
    Term.(
      const make $ runs $ seed $ intensity $ protocols $ shrink_budget
      $ repro_out $ replay $ jobs $ timeout $ max_events $ checkpoint $ resume
      $ report_out)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fuzz the invariant monitors with random adversarial packet \
             conditions (reordering, duplication, header corruption, \
             jitter, clock skew) plus fault plans; on a violation, shrink \
             the case to a minimal reproducer and emit it as replayable \
             JSON (exit 7)")
    chaos_term

let cmd =
  let resilience =
    Arg.(value & flag
         & info [ "resilience" ]
             ~doc:"Run the resilience sweeps (bursty loss, link flapping, \
                   switch reboots) for PDQ vs. RCP/D3/TCP and exit")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"With --resilience: more seeds and intensities")
  in
  let list_workloads =
    Arg.(value & flag
         & info [ "list-workloads" ]
             ~doc:"List the available workload kinds, job patterns and flow \
                   patterns, then exit")
  in
  let exits =
    (* Rendered straight from the variant, so the man page cannot
       drift from the tested discipline. *)
    List.map
      (fun c -> Cmd.Exit.info ~doc:(Exit_code.describe c) (Exit_code.to_int c))
      Exit_code.
        [ Fault_aborted; Invariant_violation; Timed_out; Run_failed;
          Violation_found ]
    @ Cmd.Exit.defaults
  in
  Cmd.group
    ~default:
      Term.(
        const run $ scenario_term $ opts_term $ resilience $ full
        $ list_workloads)
    (Cmd.info "pdq_sim" ~exits
       ~doc:"Run one packet-level PDQ/RCP/D3/TCP experiment")
    [ forensics_cmd; chaos_cmd ]

let eval ?argv () = Cmd.eval' ?argv cmd
