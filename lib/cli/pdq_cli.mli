(** The [pdq_sim] command line as a library, so the test suite can
    drive it in-process and assert on its exit-status discipline.

    The discipline itself is the {!Exit_code} variant; see its
    documentation for the full code list and precedence. *)

module Exit_code = Exit_code
(** The exit-status discipline shared by every subcommand. *)

val exit_fault_aborted : int
(** [Exit_code.(to_int Fault_aborted)], kept for callers that want the
    bare integer. *)

val exit_invariant_violation : int
(** [Exit_code.(to_int Invariant_violation)]. *)

val eval : ?argv:string array -> unit -> int
(** Evaluate the [pdq_sim] command (arguments default to
    [Sys.argv]) and return the process exit code without exiting.
    Output goes to stdout/stderr. *)
