(** The [pdq_sim] command line as a library, so the test suite can
    drive it in-process and assert on its exit-status discipline.

    Exit codes:
    - [0] — the run(s) completed (deadline misses are results, not
      errors);
    - {!exit_fault_aborted} ([3]) — at least one flow was aborted by
      its watchdog (injected faults cut every path);
    - {!exit_invariant_violation} ([4]) — [--check] found invariant or
      oracle violations (takes precedence over [3]);
    - [124] — command-line usage error (cmdliner's default). *)

val exit_fault_aborted : int
val exit_invariant_violation : int

val eval : ?argv:string array -> unit -> int
(** Evaluate the [pdq_sim] command (arguments default to
    [Sys.argv]) and return the process exit code without exiting.
    Output goes to stdout/stderr. *)
