type t = {
  mutable rate : float;
  mutable pause_by : int option;
  mutable pause_flow : int option;
  deadline : float option;
  mutable expected_tx_time : float;
  mutable inter_probe_rtts : float;
  mutable rtt : float;
}

let wire_bytes = 16

let make ?deadline ~rate ~expected_tx_time ~rtt () =
  {
    rate;
    pause_by = None;
    pause_flow = None;
    deadline;
    expected_tx_time;
    inter_probe_rtts = 0.;
    rtt;
  }

let copy t = { t with rate = t.rate }

let pp ppf t =
  Format.fprintf ppf
    "{rate=%.3e; pause_by=%s%s; deadline=%s; ttx=%.3e; ip=%.2f; rtt=%.3e}"
    t.rate
    (match t.pause_by with None -> "-" | Some id -> string_of_int id)
    (match t.pause_flow with
    | None -> ""
    | Some f -> Printf.sprintf "(flow %d)" f)
    (match t.deadline with None -> "-" | Some d -> Printf.sprintf "%.4f" d)
    t.expected_tx_time t.inter_probe_rtts t.rtt
