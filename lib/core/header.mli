(** The PDQ scheduling header (§3, deployment note in §7).

    On the wire this is 16 bytes — four 4-byte fields [R_H], [P_H],
    [D_H], [T_H]; the receiver reuses the [D_H]/[T_H] slots for [I_S]
    and [RTT_S] on the reverse path. In the simulator we keep all six
    fields in one record; {!wire_bytes} accounts for the real 16-byte
    overhead. Switches mutate [rate], [pause_by] and [inter_probe] as
    the packet traverses the path. *)

type t = {
  mutable rate : float;
      (** [R_H]: proposed sending rate in bits/second. The sender
          initializes it to its maximal rate; each switch lowers it to
          its available bandwidth; the receiver caps it at its
          processing rate. *)
  mutable pause_by : int option;
      (** [P_H]: ID of the switch pausing the flow, or [None] if every
          switch so far accepts it. *)
  mutable pause_flow : int option;
      (** Simulator-side diagnostic riding alongside [P_H]: the more
          critical flow whose reserved rate made the pausing switch
          say no, when the pause is a preemption ([None] for
          rate-controller or RCP-fallback pauses). Not part of the
          16-byte wire header — it only feeds telemetry, and reading
          it never influences a scheduling decision. *)
  deadline : float option;
      (** [D_H]: absolute flow deadline (seconds of simulated time), if
          any. *)
  mutable expected_tx_time : float;
      (** [T_H]: the sender's expected remaining transmission time
          (remaining size / maximal rate), seconds. *)
  mutable inter_probe_rtts : float;
      (** [I_H]: inter-probe interval in RTTs that switches impose on a
          paused sender (Suppressed Probing). 0 means "unset". *)
  mutable rtt : float;
      (** [RTT_H]: the sender's measured RTT (seconds); switches use it
          to maintain their average-RTT estimate. *)
}

val wire_bytes : int
(** Size of the scheduling header on the wire: 16 bytes. *)

val make :
  ?deadline:float ->
  rate:float ->
  expected_tx_time:float ->
  rtt:float ->
  unit ->
  t
(** Fresh forward-path header with [pause_by = None] and unset
    inter-probe time. *)

val copy : t -> t
(** Independent copy — used when a receiver reflects a data header into
    an ACK. *)

val pp : Format.formatter -> t -> unit
