type size_info = Known | Estimated of int

type t = {
  flow_id : int;
  mutable size_bytes : int;
  deadline : float option;
  efficiency : float;
  size_info : size_info;
  trace : Pdq_telemetry.Trace.t;
  mutable max_rate : float;
  mutable rate : float;
  mutable paused_by : int option;
  mutable expected_tx_time : float;
  mutable inter_probe_rtts : float;
  mutable rtt : float;
  mutable rtt_min : float;
  mutable remaining : int;
}

let ttx_of ~remaining ~max_rate ~efficiency =
  Pdq_engine.Units.bytes_to_bits remaining /. max (max_rate *. efficiency) 1.

(* Without flow-size knowledge (§5.6), the advertised criticality is
   the estimated size — one quantum more than the bytes already sent,
   refreshed only at quantum boundaries so switches are not thrashed. *)
let estimated_ttx t quantum =
  let sent = max 0 (t.size_bytes - t.remaining) in
  let estimate = ((sent / max 1 quantum) + 1) * quantum in
  ttx_of ~remaining:estimate ~max_rate:t.max_rate ~efficiency:t.efficiency

let create ?deadline ?(efficiency = 1.) ?(size_info = Known)
    ?(trace = Pdq_telemetry.Trace.null) ~flow_id ~size_bytes ~max_rate
    ~init_rtt () =
  let t =
    {
      flow_id;
      size_bytes;
      deadline;
      efficiency;
      size_info;
      trace;
      max_rate;
      rate = 0.;
      paused_by = None;
      expected_tx_time = ttx_of ~remaining:size_bytes ~max_rate ~efficiency;
      inter_probe_rtts = 1.;
      rtt = init_rtt;
      rtt_min = init_rtt;
      remaining = size_bytes;
    }
  in
  (match size_info with
  | Known -> ()
  | Estimated q -> t.expected_tx_time <- estimated_ttx t q);
  t

let flow_id t = t.flow_id
let deadline t = t.deadline
let size_bytes t = t.size_bytes
let rate t = t.rate
let paused_by t = t.paused_by
let is_paused t = t.rate <= 0.
let rtt t = t.rtt
let expected_tx_time t = t.expected_tx_time
let inter_probe_interval t = max 1. t.inter_probe_rtts *. t.rtt
let remaining_bytes t = t.remaining

let refresh_ttx t =
  t.expected_tx_time <-
    (match t.size_info with
    | Known ->
        ttx_of ~remaining:t.remaining ~max_rate:t.max_rate
          ~efficiency:t.efficiency
    | Estimated q -> estimated_ttx t q)

let set_remaining_bytes t n =
  t.remaining <- max 0 n;
  refresh_ttx t

let set_max_rate t r =
  t.max_rate <- r;
  refresh_ttx t

(* M-PDQ load rebalancing: a subflow's assigned size changes as unsent
   bytes move between subflows; [acked] is the bytes already delivered
   on this subflow. *)
let set_size t ~size ~acked =
  t.size_bytes <- size;
  t.remaining <- max 0 (size - acked);
  refresh_ttx t

let make_header t ~t:_ =
  Header.make ?deadline:t.deadline ~rate:t.max_rate
    ~expected_tx_time:t.expected_tx_time ~rtt:t.rtt ()

let on_ack t (h : Header.t) ~acked_bytes ~rtt_sample ~now:_ =
  (match rtt_sample with
  | Some sample when sample > 0. ->
      t.rtt <- (0.875 *. t.rtt) +. (0.125 *. sample);
      if sample < t.rtt_min then t.rtt_min <- sample
  | Some _ | None -> ());
  t.remaining <- max 0 (t.size_bytes - acked_bytes);
  refresh_ttx t;
  let was_paused = t.paused_by and old_rate = t.rate in
  t.paused_by <- h.pause_by;
  t.rate <- (if h.pause_by <> None then 0. else min h.rate t.max_rate);
  if h.inter_probe_rtts > 0. then t.inter_probe_rtts <- h.inter_probe_rtts;
  if Pdq_telemetry.Trace.active t.trace then begin
    let open Pdq_telemetry.Trace in
    match (was_paused, t.paused_by) with
    | None, Some by ->
        emit t.trace
          (Flow_paused { flow = t.flow_id; by; preempted_by = h.pause_flow })
    | Some _, None ->
        emit t.trace (Flow_resumed { flow = t.flow_id; rate = t.rate })
    | _ ->
        if t.rate <> old_rate then
          emit t.trace (Flow_rate_set { flow = t.flow_id; rate = t.rate })
  end

(* Rule 3 measures the control-loop latency a paused flow needs to get
   unpaused — the min-filtered RTT, not the smoothed one, which can be
   badly inflated by transient queueing and would kill flows that are
   a few hundred microseconds from making it. *)
let should_terminate t ~now =
  match t.deadline with
  | None -> false
  | Some d ->
      t.remaining > 0
      && (now > d
         || now +. t.expected_tx_time > d
         || (is_paused t && now +. t.rtt_min > d))

let finished t = t.remaining = 0
