(** PDQ sender state machine (§3.1), substrate-independent.

    Tracks the sender-side variables [R_S] (current rate), [P_S]
    (pausing switch), [D_S] (deadline), [T_S] (expected remaining
    transmission time), [I_S] (inter-probe time) and [RTT_S], produces
    outgoing scheduling headers, folds ACK feedback back in, and
    decides Early Termination. The packet-level transport wraps this
    with actual pacing, probing and retransmission timers. *)

type t

type size_info =
  | Known
      (** The application announced the flow size (the common case in
          datacenters, §2.1 of [19]). *)
  | Estimated of int
      (** §5.6: no size knowledge — the advertised criticality is the
          running estimate "bytes sent so far plus one quantum",
          refreshed every quantum (the paper uses 50 KB) so switches
          see stable values. Smaller estimate = more critical. *)

val create :
  ?deadline:float ->
  ?efficiency:float ->
  ?size_info:size_info ->
  ?trace:Pdq_telemetry.Trace.t ->
  flow_id:int ->
  size_bytes:int ->
  max_rate:float ->
  init_rtt:float ->
  unit ->
  t
(** [max_rate] is the sender's maximal rate [R_S^max] (NIC line rate,
    possibly lowered by application limits). [efficiency] (default 1.)
    is the goodput fraction of the wire rate — payload bytes per MTU —
    so that [T_S] honestly reflects header overhead and Early
    Termination does not serve flows that will miss by microseconds.
    [init_rtt] seeds [RTT_S] before the first measurement. [T_S]
    starts at size / (max rate × efficiency). [trace] (default
    {!Pdq_telemetry.Trace.null}) receives [Flow_paused] /
    [Flow_resumed] / [Flow_rate_set] events as ACK feedback moves the
    sender between states. *)

val flow_id : t -> int
val deadline : t -> float option
val size_bytes : t -> int

val rate : t -> float
(** Current sending rate [R_S] in bits/s (0 when paused). *)

val paused_by : t -> int option
(** Switch currently pausing the flow, if any. *)

val is_paused : t -> bool
(** [rate t = 0.] *)

val rtt : t -> float
(** Smoothed RTT estimate [RTT_S]. *)

val expected_tx_time : t -> float
(** [T_S] — remaining bytes at maximal rate. *)

val inter_probe_interval : t -> float
(** Seconds between probe packets while paused: [I_S × RTT_S], where
    [I_S] defaults to 1 RTT and grows under Suppressed Probing. *)

val remaining_bytes : t -> int
(** Bytes not yet acknowledged. *)

val set_remaining_bytes : t -> int -> unit
(** Adjust the unacknowledged byte count (retransmissions, or M-PDQ
    moving load between subflows); refreshes [T_S]. *)

val set_max_rate : t -> float -> unit
(** Lower/raise the maximal rate (M-PDQ subflows, receiver limits). *)

val set_size : t -> size:int -> acked:int -> unit
(** Change the flow's assigned size (M-PDQ moves unsent load between
    subflows); [acked] is the cumulative bytes already acknowledged on
    this subflow. Refreshes [T_S]. *)

val make_header : t -> t:float -> Header.t
(** Scheduling header for an outgoing packet: [R_H] carries the maximal
    rate [R_S^max] (§3.1), all other fields the current state. *)

val on_ack :
  t -> Header.t -> acked_bytes:int -> rtt_sample:float option -> now:float -> unit
(** Fold an ACK's reflected header into the sender state: records
    cumulative [acked_bytes], updates [T_S], applies the rate /
    pause-by / inter-probe feedback and the RTT sample. *)

val should_terminate : t -> now:float -> bool
(** Early Termination (§3.1): true when (1) the deadline has passed,
    (2) remaining transmission time exceeds time-to-deadline, or
    (3) the flow is paused and the deadline is within one RTT. Always
    false for flows without a deadline. *)

val finished : t -> bool
(** All bytes acknowledged. *)
