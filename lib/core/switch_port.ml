type t = {
  config : Config.t;
  switch_id : int;
  link_rate : float;
  init_rtt : float;
  trace : Pdq_telemetry.Trace.t;
  mutable rpdq : float;
  mutable c : float;
  flows : Flow_list.t;
  mutable rtt_avg : float;
  mutable rtt_min : float;
  mutable last_accept : float;
  mutable last_accepted_flow : int;
  mutable rebuilding : bool;
  fallback_seen : (int, float) Hashtbl.t;
}

let create ?(trace = Pdq_telemetry.Trace.null) ~config ~switch_id ~link_rate
    ~init_rtt () =
  {
    config;
    switch_id;
    link_rate;
    init_rtt;
    trace;
    rpdq = link_rate;
    c = link_rate;
    flows = Flow_list.create ();
    rtt_avg = init_rtt;
    rtt_min = init_rtt;
    last_accept = neg_infinity;
    last_accepted_flow = -1;
    rebuilding = false;
    fallback_seen = Hashtbl.create 16;
  }

(* Switch reboot: everything here is soft state (§3.3 — the flow list,
   RTT estimates, the rate-controller variable are all rebuilt from the
   scheduling headers of traversing packets), so a crash simply resets
   the port to its just-created state. rPDQ is configuration, not
   learned state, and survives. *)
let flush t =
  while Flow_list.remove_least_critical t.flows <> None do
    ()
  done;
  Hashtbl.reset t.fallback_seen;
  t.c <- t.rpdq;
  t.rtt_avg <- t.init_rtt;
  t.rtt_min <- t.init_rtt;
  t.last_accept <- neg_infinity;
  t.last_accepted_flow <- -1;
  t.rebuilding <- true;
  if Pdq_telemetry.Trace.active t.trace then
    Pdq_telemetry.Trace.(emit t.trace (Switch_flushed { switch = t.switch_id }))

let switch_id t = t.switch_id
let config t = t.config
let set_rpdq t r = t.rpdq <- min r t.link_rate
let rtt_avg t = t.rtt_avg
let available_rate t = t.c
let flow_list t = t.flows
let kappa t = Flow_list.sending_count t.flows

let observe_rtt t rtt =
  if rtt > 0. then begin
    let w = t.config.Config.rtt_ewma in
    t.rtt_avg <- ((1. -. w) *. t.rtt_avg) +. (w *. rtt);
    if rtt < t.rtt_min then t.rtt_min <- rtt
  end

(* Flow-list capacity: the 2κ most critical flows (κ sending flows),
   floored so a link always remembers a few waiting flows, and capped by
   the hard memory bound M (§3.3.1). *)
let list_capacity t =
  let kappa = Flow_list.sending_count t.flows in
  min t.config.Config.max_list_size
    (max t.config.Config.min_list_size (t.config.Config.kappa_multiplier * kappa))

(* Algorithm 2. Early Start: more critical flows that will finish within
   K RTTs do not count against the available bandwidth, up to an
   aggregate transmission-time budget of K RTTs. *)
let availbw t j ~now:_ =
  let k_budget = if t.config.Config.features.Config.early_start then t.config.Config.k_early_start else 0. in
  let x = ref 0. and a = ref 0. in
  (try
     for i = 0 to j - 1 do
       let e = Flow_list.get t.flows i in
       let rtt = max e.Flow_state.rtt 1e-9 in
       let ttx_rtts = e.Flow_state.expected_tx_time /. rtt in
       if ttx_rtts < k_budget && !x < k_budget then x := !x +. ttx_rtts
       else begin
         a := !a +. e.Flow_state.rate;
         if !a >= t.c then raise Exit
       end
     done
   with Exit -> ());
  if !a >= t.c then 0. else t.c -. !a

(* Who is to blame for a denial at index [j]: the most critical flow
   ahead of it whose reserved rate actually counts against the
   available bandwidth — i.e. the same walk as [availbw], stopping at
   the first flow not excused by the Early Start budget. [None] means
   no stored flow holds the capacity (the rate controller drained C,
   or j = 0): the pause is congestion, not preemption. Diagnostic
   only — it never feeds back into an allocation. *)
let blocking_flow t j =
  let k_budget =
    if t.config.Config.features.Config.early_start then
      t.config.Config.k_early_start
    else 0.
  in
  let x = ref 0. in
  let found = ref None in
  (try
     for i = 0 to j - 1 do
       let e = Flow_list.get t.flows i in
       let rtt = max e.Flow_state.rtt 1e-9 in
       let ttx_rtts = e.Flow_state.expected_tx_time /. rtt in
       if ttx_rtts < k_budget && !x < k_budget then x := !x +. ttx_rtts
       else if e.Flow_state.rate > 0. then begin
         found := Some e.Flow_state.flow_id;
         raise Exit
       end
     done
   with Exit -> ());
  !found

(* Spec-side Early Start budget (§3.3.2): the paper justifies granting
   overlapping rates only to flows within ~K RTTs of completion, K = 2.
   The validation monitor checks allocations against a generous
   multiple of that, independent of the configured [k_early_start] — a
   misconfigured allocator must not get to excuse itself. *)
let spec_early_start_rtts = 4.

let mature_rate_sum ?(k_spec = spec_early_start_rtts) t =
  let rtt = max t.rtt_avg 1e-9 in
  let x = ref 0. and sum = ref 0. in
  Flow_list.iteri
    (fun _ (e : Flow_state.t) ->
      if Flow_state.is_sending e then begin
        let ttx_rtts = e.Flow_state.expected_tx_time /. rtt in
        if ttx_rtts < k_spec && !x < k_spec then x := !x +. ttx_rtts
        else sum := !sum +. e.Flow_state.rate
      end)
    t.flows;
  !sum

let paused_count t =
  Flow_list.fold
    (fun n e -> if Flow_state.is_sending e then n else n + 1)
    0 t.flows

(* Machine-checkable internal-consistency conditions: every stored
   rate is a real, bounded allocation; the list honours the
   criticality order; a flow is never simultaneously stored and in the
   RCP fallback; the rate-controller variable stays within [0, rPDQ].
   Returned as human-readable inequalities (empty = consistent). *)
let invariant_errors t =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  if not (Flow_list.is_sorted t.flows) then
    add "flow list not in criticality order";
  Flow_list.iteri
    (fun _ (e : Flow_state.t) ->
      if not (Float.is_finite e.Flow_state.rate) || e.Flow_state.rate < 0. then
        add
          (Printf.sprintf "flow %d: rate %g < 0 or not finite"
             e.Flow_state.flow_id e.Flow_state.rate);
      if e.Flow_state.rate > t.link_rate *. (1. +. 1e-9) then
        add
          (Printf.sprintf "flow %d: rate %g > link rate %g"
             e.Flow_state.flow_id e.Flow_state.rate t.link_rate);
      if Hashtbl.mem t.fallback_seen e.Flow_state.flow_id then
        add
          (Printf.sprintf "flow %d: both stored and in RCP fallback"
             e.Flow_state.flow_id))
    t.flows;
  if t.c < 0. || t.c > t.rpdq *. (1. +. 1e-9) then
    add (Printf.sprintf "rate controller C = %g outside [0, rPDQ = %g]" t.c t.rpdq);
  List.rev !errs

let dampening_active t ~now ~flow_id =
  flow_id <> t.last_accepted_flow
  && now -. t.last_accept < t.config.Config.dampening

(* RCP fallback (§3.3.1): flows beyond the memory bound share whatever
   capacity the stored PDQ flows leave unused. Flow membership is
   tracked by last-seen time with a 2-RTT horizon. *)
let fallback_purge t ~now =
  let horizon = 4. *. t.rtt_avg in
  let stale =
    Hashtbl.fold
      (fun id seen acc -> if now -. seen > horizon then id :: acc else acc)
      t.fallback_seen []
  in
  List.iter (Hashtbl.remove t.fallback_seen) stale

let fallback_rate t ~flow_id ~now =
  Hashtbl.replace t.fallback_seen flow_id now;
  fallback_purge t ~now;
  let n = max 1 (Hashtbl.length t.fallback_seen) in
  let leftover = t.c -. Flow_list.total_rate t.flows in
  max 0. (leftover /. float_of_int n)

let fallback_flow_count t = Hashtbl.length t.fallback_seen

(* Store a new flow if the list has room or the flow outranks the least
   critical stored one; returns its index, or None when it must use the
   RCP fallback. *)
let try_store t (h : Header.t) ~flow_id ~now =
  let cap = list_capacity t in
  let key =
    {
      Criticality.deadline = h.deadline;
      expected_tx_time = h.expected_tx_time;
      flow_id;
    }
  in
  let admissible =
    Flow_list.length t.flows < cap
    ||
    match Flow_list.least_critical t.flows with
    | None -> true
    | Some worst -> Criticality.more_critical key (Flow_state.key worst)
  in
  if not admissible then None
  else begin
    let entry =
      Flow_state.create ?deadline:h.deadline ~flow_id
        ~expected_tx_time:h.expected_tx_time ~rtt:h.rtt ~now ()
    in
    ignore (Flow_list.insert t.flows entry);
    let removed_self = ref false in
    while Flow_list.length t.flows > max cap 1 do
      match Flow_list.remove_least_critical t.flows with
      | Some dropped when dropped.Flow_state.flow_id = flow_id ->
          removed_self := true
      | Some _ | None -> ()
    done;
    if !removed_self then None
    else
      match Flow_list.find t.flows flow_id with
      | Some (i, _) ->
          if t.rebuilding then begin
            (* First flow stored since the last flush: soft state is
               being rebuilt from traversing headers. *)
            t.rebuilding <- false;
            if Pdq_telemetry.Trace.active t.trace then
              Pdq_telemetry.Trace.(
                emit t.trace (Switch_rebuilt { switch = t.switch_id }))
          end;
          Some i
      | None -> None
  end

(* Algorithm 1: forward-path processing of a data/probe header. *)
let process_forward t (h : Header.t) ~flow_id ~now =
  observe_rtt t h.rtt;
  match h.pause_by with
  | Some sid when sid <> t.switch_id ->
      (* Paused by another switch: drop our state for it so its share
         can be given to other flows. *)
      ignore (Flow_list.remove t.flows flow_id)
  | Some _ | None -> (
      let located =
        match Flow_list.find t.flows flow_id with
        | Some (_, e) ->
            Flow_state.update_from_header e h ~now;
            (match Flow_list.reposition t.flows flow_id with
            | Some i -> Some (i, e)
            | None -> None)
        | None -> (
            match try_store t h ~flow_id ~now with
            | Some i -> Some (i, Flow_list.get t.flows i)
            | None -> None)
      in
      match located with
      | None ->
          (* Memory bound exceeded: degrade to RCP fair sharing. *)
          h.rate <- min h.rate (fallback_rate t ~flow_id ~now);
          if h.rate <= 0. then begin
            h.pause_by <- Some t.switch_id;
            h.pause_flow <- None
          end
      | Some (i, e) ->
          Hashtbl.remove t.fallback_seen flow_id;
          let w = min (availbw t i ~now) h.rate in
          let pause ~victim_of =
            h.pause_by <- Some t.switch_id;
            h.pause_flow <- victim_of;
            e.Flow_state.pause_by <- Some t.switch_id
          in
          if w > 0. then begin
            let sending = Flow_state.is_sending e in
            if (not sending) && dampening_active t ~now ~flow_id then
              (* The dampening window exists to let the last accepted
                 flow ramp up unchallenged — that flow is the one
                 holding this one back. *)
              pause
                ~victim_of:
                  (if t.last_accepted_flow >= 0 then Some t.last_accepted_flow
                   else None)
            else begin
              h.pause_by <- None;
              h.pause_flow <- None;
              h.rate <- w;
              if not sending then begin
                t.last_accept <- now;
                t.last_accepted_flow <- flow_id
              end
            end
          end
          else pause ~victim_of:(blocking_flow t i))

(* Algorithm 3: reverse-path (ACK) processing. *)
let process_reverse t (h : Header.t) ~flow_id ~now:_ =
  (match h.pause_by with
  | Some sid when sid <> t.switch_id -> ignore (Flow_list.remove t.flows flow_id)
  | Some _ | None -> ());
  if h.pause_by <> None then h.rate <- 0.;
  match Flow_list.find t.flows flow_id with
  | None -> ()
  | Some (i, e) ->
      e.Flow_state.pause_by <- h.pause_by;
      if t.config.Config.features.Config.suppressed_probing then
        h.inter_probe_rtts <-
          max h.inter_probe_rtts (t.config.Config.probe_x *. float_of_int i);
      e.Flow_state.rate <- h.rate

(* Stale-entry purge: a lost TERM (or a crashed sender) would otherwise
   leave a flow occupying bandwidth in the list forever. Paused flows
   probe at least every [probe_x * index] RTTs, so a generous multiple
   of the average RTT cannot evict a live flow. *)
let purge_stale t ~now =
  let horizon = max (60. *. t.rtt_avg) 0.01 in
  let stale =
    Flow_list.fold
      (fun acc e ->
        if now -. e.Flow_state.last_seen > horizon then
          e.Flow_state.flow_id :: acc
        else acc)
      [] t.flows
  in
  List.iter (fun id -> ignore (Flow_list.remove t.flows id)) stale

let update_rate_controller t ~queue_bytes ~now =
  purge_stale t ~now;
  (* A store-and-forward output always holds the packet in service, so
     one MTU of "queue" is not congestion; penalizing it would shave a
     permanent margin off every link. *)
  let q_bits =
    Pdq_engine.Units.bytes_to_bits
      (max 0 (queue_bytes - t.config.Config.queue_allowance_bytes))
  in
  (* Drain against the min-filtered RTT: the smoothed estimate inflates
     with the very congestion the controller must remove, which would
     weaken the drain exactly when it is needed. *)
  t.c <- max 0. (t.rpdq -. (q_bits /. (2. *. max t.rtt_min 1e-9)))

let rate_update_interval t = t.config.Config.rate_update_rtts *. t.rtt_avg

let remove_flow t flow_id ~now:_ =
  ignore (Flow_list.remove t.flows flow_id);
  Hashtbl.remove t.fallback_seen flow_id
