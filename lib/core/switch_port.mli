(** PDQ switch logic for one output link (§3.3).

    A switch instantiates one [Switch_port] per output queue. The port
    owns the per-link flow list, the flow controller (Algorithms 1–3:
    pausing/acceptance, Early Start via {!availbw}, dampening,
    Suppressed Probing), the rate controller (C = rPDQ − q/(2·RTT)) and
    the RCP fallback for flows beyond the memory bound [M].

    This module is substrate-independent: the packet-level simulator
    calls {!process_forward}/{!process_reverse} with the scheduling
    header of each traversing packet, and the flow-level simulator can
    drive the same state machine directly. *)

type t

val create :
  ?trace:Pdq_telemetry.Trace.t ->
  config:Config.t ->
  switch_id:int ->
  link_rate:float ->
  init_rtt:float ->
  unit ->
  t
(** A fresh port. [link_rate] is the output line rate in bits/s; rPDQ
    defaults to it ({!set_rpdq} overrides for multi-protocol links).
    [init_rtt] seeds the average-RTT estimate before any header is
    seen. [trace] (default {!Pdq_telemetry.Trace.null}) receives
    [Switch_flushed] on {!flush} and [Switch_rebuilt] when the first
    flow is stored again afterwards. *)

val switch_id : t -> int
val config : t -> Config.t

val set_rpdq : t -> float -> unit
(** Cap the aggregate rate handed out to PDQ flows (§3.3.3 —
    multi-protocol friendliness). *)

val rtt_avg : t -> float
(** Current average-RTT estimate (EWMA over header RTT fields). *)

val available_rate : t -> float
(** Current value of the rate-controller variable [C]. *)

val flow_list : t -> Flow_list.t
(** The stored flows, most critical first (exposed for inspection and
    tests; mutating it directly is unsupported). *)

val kappa : t -> int
(** Number of stored flows currently sending (rate > 0). *)

val paused_count : t -> int
(** Number of stored flows currently paused (rate = 0). *)

val list_capacity : t -> int
(** Current flow-list capacity: the [2κ] bound of §3.3.1
    ([kappa_multiplier × κ], floored at [min_list_size]) capped by the
    hard memory bound [M]. The validation monitors assert
    [length (flow_list t) <= list_capacity t] at every probe tick. *)

val mature_rate_sum : ?k_spec:float -> t -> float
(** Sum of granted rates over sending flows {e beyond} the Early Start
    allowance: walking the list in criticality order, flows within
    [k_spec] average RTTs of completion are excused while their
    cumulative transmission time stays under [k_spec] RTTs (the §3.3.2
    budget, checked against the paper's constant — default 4 RTTs, a
    generous 2× the paper's K — {e not} the configured
    [k_early_start], so a broken allocator cannot excuse itself). A
    correct port keeps this at or below the line rate; the validation
    monitors flag sustained excess. *)

val invariant_errors : t -> string list
(** Internal-consistency check for the validation subsystem: the flow
    list is in criticality order, every stored rate is finite and in
    [0, link rate], no flow is both stored and in the RCP fallback, and
    the rate-controller variable stays within [0, rPDQ]. Empty when
    consistent; each entry names the violated inequality. *)

val process_forward : t -> Header.t -> flow_id:int -> now:float -> unit
(** Algorithm 1 — run on every data/probe/SYN header travelling
    source→destination: updates stored flow state, decides
    pause/accept, rewrites [rate]/[pause_by] in the header, or applies
    the RCP fallback when the flow cannot be stored. *)

val process_reverse : t -> Header.t -> flow_id:int -> now:float -> unit
(** Algorithm 3 — run on every ACK header travelling back: commits the
    global accept/pause decision into the flow list and stretches the
    inter-probe interval (Suppressed Probing). *)

val availbw : t -> int -> now:float -> float
(** Algorithm 2 — bandwidth available to the flow at the given list
    index, skipping up to [K] RTTs' worth of nearly-completed more
    critical flows (Early Start). *)

val update_rate_controller : t -> queue_bytes:int -> now:float -> unit
(** Rate-controller step (§3.3.3): set [C ← max(0, rPDQ − q/(2·RTT))].
    Call every {!rate_update_interval}. *)

val rate_update_interval : t -> float
(** Seconds until the next rate-controller update (2 average RTTs by
    default). *)

val remove_flow : t -> int -> now:float -> unit
(** Forget a flow (on TERM or timeout); frees its bandwidth share. *)

val flush : t -> unit
(** Switch reboot: wipe all soft state — the flow list, the RCP
    fallback membership, the RTT estimates and the rate-controller
    variable — back to the just-created state. The paper's soft-state
    argument (§3.3) says traversing scheduling headers rebuild
    everything within a few RTTs; tests and the resilience harness
    validate exactly that. rPDQ (configuration) is preserved. *)

val fallback_flow_count : t -> int
(** Number of flows currently handled by the RCP fallback (§3.3.1). *)
