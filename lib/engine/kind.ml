(* Interned event-kind identifiers.

   Kinds used to be free-form strings hashed on every [Sim.schedule];
   now each subsystem registers its labels once at module init and
   passes the resulting small int. The registry is append-only and
   published as an immutable snapshot array, so readers (profiler
   readouts, possibly on another domain) never take the lock. *)

type t = int

let lock = Mutex.create ()

(* Id 0 is reserved for events scheduled without a kind. *)
let names : string array Atomic.t = Atomic.make [| "(unlabeled)" |]
let unlabeled = 0

let register name =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let a = Atomic.get names in
      let n = Array.length a in
      let rec find i =
        if i >= n then -1 else if String.equal a.(i) name then i else find (i + 1)
      in
      match find 0 with
      | -1 ->
          let b = Array.make (n + 1) name in
          Array.blit a 0 b 0 n;
          Atomic.set names b;
          n
      | i -> i)

let name id =
  let a = Atomic.get names in
  if id >= 0 && id < Array.length a then a.(id) else "(unknown)"

let count () = Array.length (Atomic.get names)
let to_int id = id
let of_int id = id
let equal (a : t) (b : t) = a = b
