(** Interned event-kind identifiers.

    An event kind is a small label ("link.tx", "pdq.watchdog", …)
    grouping events in profiler reports. Kinds are registered once —
    typically in a [let] at module init — and the resulting id is
    passed to {!Sim.schedule}, so the hot scheduling path carries an
    immediate int instead of hashing a string per event, and profiler
    shards can index flat arrays by id. *)

type t
(** An interned kind id. Structural equality is meaningful. *)

val register : string -> t
(** Intern a label. Registering the same string twice returns the same
    id. Thread-safe; intended to run once per label at module init,
    not on a per-event path. *)

val name : t -> string
(** The label this id was registered under. *)

val unlabeled : t
(** The id events scheduled without [?kind] report under
    (["(unlabeled)"]). *)

val count : unit -> int
(** Number of registered kinds (including {!unlabeled}) — the size a
    by-kind table needs to cover every id seen so far. *)

val to_int : t -> int
(** The raw id: a dense index in [0 .. count () - 1]. *)

val of_int : int -> t
(** Inverse of {!to_int}, for iterating by-kind tables. Ids outside
    [0 .. count () - 1] print as ["(unknown)"]. *)

val equal : t -> t -> bool
