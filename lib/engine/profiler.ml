type kind_stat = { mutable count : int; mutable cpu : float }

type t = {
  mutable executed : int;
  mutable cancelled : int;
  mutable hwm : int;
  mutable sim_advanced : float;
  mutable cpu_in_events : float;
  kind_tbl : (string, kind_stat) Hashtbl.t;
}

let create () =
  {
    executed = 0;
    cancelled = 0;
    hwm = 0;
    sim_advanced = 0.;
    cpu_in_events = 0.;
    kind_tbl = Hashtbl.create 16;
  }

let reset t =
  t.executed <- 0;
  t.cancelled <- 0;
  t.hwm <- 0;
  t.sim_advanced <- 0.;
  t.cpu_in_events <- 0.;
  Hashtbl.reset t.kind_tbl

let the_global : t option ref = ref None

let enable_global () =
  match !the_global with
  | Some p -> p
  | None ->
      let p = create () in
      the_global := Some p;
      p

let global () = !the_global
let disable_global () = the_global := None

let kind_stat t kind =
  match Hashtbl.find_opt t.kind_tbl kind with
  | Some s -> s
  | None ->
      let s = { count = 0; cpu = 0. } in
      Hashtbl.add t.kind_tbl kind s;
      s

let record_event t ~kind ~cpu =
  t.executed <- t.executed + 1;
  t.cpu_in_events <- t.cpu_in_events +. cpu;
  let s = kind_stat t (if kind = "" then "(unlabeled)" else kind) in
  s.count <- s.count + 1;
  s.cpu <- s.cpu +. cpu

let record_cancelled t = t.cancelled <- t.cancelled + 1
let observe_queue t n = if n > t.hwm then t.hwm <- n
let record_advance t dt = t.sim_advanced <- t.sim_advanced +. dt

let events_executed t = t.executed
let events_cancelled t = t.cancelled
let queue_high_water t = t.hwm
let sim_seconds t = t.sim_advanced
let cpu_seconds t = t.cpu_in_events

let kinds t =
  Hashtbl.fold (fun k s acc -> (k, (s.count, s.cpu)) :: acc) t.kind_tbl []
  |> List.sort (fun (ka, (_, a)) (kb, (_, b)) ->
         match compare b a with 0 -> compare ka kb | c -> c)

let pp_report ppf t =
  let popped = t.executed + t.cancelled in
  Format.fprintf ppf "profiler: %d events executed, %d cancelled pops (%.1f%% \
                      of %d), queue high-water %d@."
    t.executed t.cancelled
    (if popped = 0 then 0. else 100. *. float_of_int t.cancelled /. float_of_int popped)
    popped t.hwm;
  Format.fprintf ppf "  simulated %.6f s in %.3f CPU s (%.3f CPU s per sim s)@."
    t.sim_advanced t.cpu_in_events
    (if t.sim_advanced > 0. then t.cpu_in_events /. t.sim_advanced else 0.);
  List.iter
    (fun (kind, (count, cpu)) ->
      Format.fprintf ppf "  %-20s %9d events %9.3f CPU s (%.1f%%)@." kind
        count cpu
        (if t.cpu_in_events > 0. then 100. *. cpu /. t.cpu_in_events else 0.))
    (kinds t)
