(* Domain-safe simulator profiler.

   Statistics are sharded per domain: every recording operation mutates
   a [slot] that is only ever touched by the domain that owns it, so
   the hot path (one record per simulator event) takes no lock and
   cannot race. The profiler [t] is just a mutex-protected registry of
   slots; readouts aggregate across them. Slots of worker domains that
   have since terminated keep their data until [reset] prunes them.

   Per-kind statistics are flat arrays indexed by interned {!Kind} id —
   the record path is two array stores, no hashing. *)

type slot = {
  mutable executed : int;
  mutable cancelled : int;
  mutable hwm : int;
  mutable sim_advanced : float;
  mutable cpu_in_events : float;
  mutable kind_count : int array;
  mutable kind_cpu : float array;
  domain : int;
}

type t = { lock : Mutex.t; mutable slots : slot list }

let fresh_slot domain =
  {
    executed = 0;
    cancelled = 0;
    hwm = 0;
    sim_advanced = 0.;
    cpu_in_events = 0.;
    kind_count = [||];
    kind_cpu = [||];
    domain;
  }

let create () = { lock = Mutex.create (); slots = [] }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let slot t =
  let d = (Domain.self () :> int) in
  locked t (fun () ->
      match List.find_opt (fun s -> s.domain = d) t.slots with
      | Some s -> s
      | None ->
          let s = fresh_slot d in
          t.slots <- s :: t.slots;
          s)

let reset t =
  let d = (Domain.self () :> int) in
  locked t (fun () ->
      (* Prune the shards of other (typically terminated worker)
         domains — including their per-event-kind tables — and zero the
         caller's own. *)
      t.slots <- List.filter (fun s -> s.domain = d) t.slots;
      List.iter
        (fun s ->
          s.executed <- 0;
          s.cancelled <- 0;
          s.hwm <- 0;
          s.sim_advanced <- 0.;
          s.cpu_in_events <- 0.;
          s.kind_count <- [||];
          s.kind_cpu <- [||])
        t.slots)

let the_global : t option Atomic.t = Atomic.make None

let rec enable_global () =
  match Atomic.get the_global with
  | Some p -> p
  | None ->
      let p = create () in
      if Atomic.compare_and_set the_global None (Some p) then p
      else enable_global ()

let global () = Atomic.get the_global
let disable_global () = Atomic.set the_global None

(* ------------------------------------------------------------------ *)
(* Recorders: lock-free, on the calling domain's slot only. *)

(* Cover every registered kind in one growth step so the resize
   happens at most a handful of times per run. *)
let grow_kinds s k =
  let n = max (k + 1) (Kind.count ()) in
  let count = Array.make n 0 and cpu = Array.make n 0. in
  Array.blit s.kind_count 0 count 0 (Array.length s.kind_count);
  Array.blit s.kind_cpu 0 cpu 0 (Array.length s.kind_cpu);
  s.kind_count <- count;
  s.kind_cpu <- cpu

let record_event s ~kind ~cpu =
  s.executed <- s.executed + 1;
  s.cpu_in_events <- s.cpu_in_events +. cpu;
  let k = Kind.to_int kind in
  if k >= Array.length s.kind_count then grow_kinds s k;
  s.kind_count.(k) <- s.kind_count.(k) + 1;
  s.kind_cpu.(k) <- s.kind_cpu.(k) +. cpu

let record_cancelled s = s.cancelled <- s.cancelled + 1
let observe_queue s n = if n > s.hwm then s.hwm <- n
let record_advance s dt = s.sim_advanced <- s.sim_advanced +. dt

(* ------------------------------------------------------------------ *)
(* Readouts: aggregate over every registered slot. *)

let sum_int t f = locked t (fun () -> List.fold_left (fun a s -> a + f s) 0 t.slots)
let sum_float t f =
  locked t (fun () -> List.fold_left (fun a s -> a +. f s) 0. t.slots)

let events_executed t = sum_int t (fun s -> s.executed)
let events_cancelled t = sum_int t (fun s -> s.cancelled)
let queue_high_water t =
  locked t (fun () -> List.fold_left (fun a s -> max a s.hwm) 0 t.slots)
let sim_seconds t = sum_float t (fun s -> s.sim_advanced)
let cpu_seconds t = sum_float t (fun s -> s.cpu_in_events)

let kinds t =
  let n = Kind.count () in
  let count = Array.make n 0 and cpu = Array.make n 0. in
  locked t (fun () ->
      List.iter
        (fun s ->
          Array.iteri
            (fun k c ->
              if k < n then begin
                count.(k) <- count.(k) + c;
                cpu.(k) <- cpu.(k) +. s.kind_cpu.(k)
              end)
            s.kind_count)
        t.slots);
  let acc = ref [] in
  for k = n - 1 downto 0 do
    if count.(k) > 0 then
      acc := (Kind.name (Kind.of_int k), (count.(k), cpu.(k))) :: !acc
  done;
  !acc
  |> List.sort (fun (ka, (_, a)) (kb, (_, b)) ->
         match compare b a with 0 -> compare ka kb | c -> c)

let pp_report ppf t =
  let executed = events_executed t and cancelled = events_cancelled t in
  let popped = executed + cancelled in
  let sim_advanced = sim_seconds t and cpu_in_events = cpu_seconds t in
  Format.fprintf ppf "profiler: %d events executed, %d cancelled pops (%.1f%% \
                      of %d), queue high-water %d@."
    executed cancelled
    (if popped = 0 then 0. else 100. *. float_of_int cancelled /. float_of_int popped)
    popped (queue_high_water t);
  Format.fprintf ppf "  simulated %.6f s in %.3f CPU s (%.3f CPU s per sim s)@."
    sim_advanced cpu_in_events
    (if sim_advanced > 0. then cpu_in_events /. sim_advanced else 0.);
  List.iter
    (fun (kind, (count, cpu)) ->
      Format.fprintf ppf "  %-20s %9d events %9.3f CPU s (%.1f%%)@." kind
        count cpu
        (if cpu_in_events > 0. then 100. *. cpu /. cpu_in_events else 0.))
    (kinds t)
