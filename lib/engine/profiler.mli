(** Simulator profiler: per-run execution statistics so performance
    regressions show up as numbers instead of vibes.

    A profiler accumulates, across every {!Sim.t} it is attached to:
    events executed, cancelled placeholders popped (dead-heap
    overhead), the event-queue high-water mark, simulated seconds
    advanced, CPU seconds spent inside event actions (total and per
    event kind — see the [?kind] argument of {!Sim.schedule}), and the
    resulting CPU-per-simulated-second ratio.

    Attachment is opt-in; an unattached simulator pays one [match] per
    step and nothing else. Profiling never feeds back into the
    simulation (no randomness, no scheduling), so enabling it cannot
    change results. *)

type t

val create : unit -> t

val reset : t -> unit
(** Zero every statistic (the global registration survives). *)

(** {1 Global opt-in}

    Experiment drivers build their simulators deep inside figure code;
    rather than threading a profiler through every layer, enable a
    process-global one and every subsequently created {!Sim.t} attaches
    to it. *)

val enable_global : unit -> t
(** Create (or return the existing) global profiler. *)

val global : unit -> t option
(** The global profiler, if {!enable_global} was called. *)

val disable_global : unit -> unit

(** {1 Recorders (called by [Sim])} *)

val record_event : t -> kind:string -> cpu:float -> unit
val record_cancelled : t -> unit
val observe_queue : t -> int -> unit
val record_advance : t -> float -> unit

(** {1 Readouts} *)

val events_executed : t -> int
val events_cancelled : t -> int
(** Cancelled placeholders popped off the heap without running. *)

val queue_high_water : t -> int
val sim_seconds : t -> float
val cpu_seconds : t -> float

val kinds : t -> (string * (int * float)) list
(** Per event kind: (count, CPU seconds), sorted by CPU descending.
    Events scheduled without [?kind] report as ["(unlabeled)"]. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable multi-line report. *)
