(** Simulator profiler: per-run execution statistics so performance
    regressions show up as numbers instead of vibes.

    A profiler accumulates, across every {!Sim.t} it is attached to:
    events executed, cancelled events popped (dead-node overhead),
    the event-queue high-water mark, simulated seconds advanced,
    wall-clock seconds spent inside event actions (total and per
    interned event kind — see the [?kind] argument of {!Sim.schedule}),
    and the resulting CPU-per-simulated-second ratio. Per-kind statistics are
    flat arrays indexed by {!Kind} id, so the record path hashes
    nothing.

    Attachment is opt-in; an unattached simulator pays one [match] per
    step and nothing else. Profiling never feeds back into the
    simulation (no randomness, no scheduling), so enabling it cannot
    change results.

    {b Domain safety.} Statistics are sharded per domain ({!slot}):
    a simulator created on a worker domain records into that domain's
    own shard without taking any lock, so parallel sweeps
    ({!Pdq_exec.Sweep}) can run under an enabled global profiler.
    Readouts aggregate across shards; read them after the sweep has
    joined its workers for exact totals. {!enable_global} and
    {!disable_global} are safe to call from any domain. *)

type t

type slot
(** One domain's shard of a profiler. Obtained with {!slot} by the
    domain that will do the recording (this is what {!Sim.create}
    does); must not be shared across domains. *)

val create : unit -> t

val slot : t -> slot
(** The calling domain's shard, registered on first use. *)

val reset : t -> unit
(** Zero every statistic and prune the shards (including their
    per-event-kind tables) of all domains other than the caller's —
    typically worker domains that have since terminated. Do not call
    while a parallel sweep is recording. The global registration
    survives. *)

(** {1 Global opt-in}

    Experiment drivers build their simulators deep inside figure code;
    rather than threading a profiler through every layer, enable a
    process-global one and every subsequently created {!Sim.t} attaches
    to it. *)

val enable_global : unit -> t
(** Create (or return the existing) global profiler. Safe from any
    domain. *)

val global : unit -> t option
(** The global profiler, if {!enable_global} was called. *)

val disable_global : unit -> unit

(** {1 Recorders (called by [Sim] on the owning domain)} *)

val record_event : slot -> kind:Kind.t -> cpu:float -> unit
val record_cancelled : slot -> unit
val observe_queue : slot -> int -> unit
val record_advance : slot -> float -> unit

(** {1 Readouts (aggregated over every domain's shard)} *)

val events_executed : t -> int
val events_cancelled : t -> int
(** Cancelled placeholders popped off the heap without running. *)

val queue_high_water : t -> int
val sim_seconds : t -> float
val cpu_seconds : t -> float
(** Seconds spent inside event actions, stamped per event with the
    wall clock (cheap vdso reads; on a loaded machine it includes any
    preemption, so treat it as a profile, not an accounting). *)

val kinds : t -> (string * (int * float)) list
(** Per event kind: (count, CPU seconds), sorted by CPU descending.
    Events scheduled without [?kind] report as ["(unlabeled)"]. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable multi-line report. *)
