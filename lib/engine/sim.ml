type t = {
  mutable clock : float;
  queue : handle Heap.t;
  mutable stopped : bool;
  mutable live_count : int;
  mutable profiler : Profiler.slot option;
      (* This domain's shard of the attached profiler; recording into
         it is lock-free and domain-private. *)
}

and handle = {
  mutable live : bool;
  action : unit -> unit;
  kind : string;
  owner : t;
}

let create () =
  {
    clock = 0.;
    queue = Heap.create ();
    stopped = false;
    live_count = 0;
    profiler = Option.map Profiler.slot (Profiler.global ());
  }

let set_profiler t p = t.profiler <- Option.map Profiler.slot p
let stop t = t.stopped <- true
let now t = t.clock

let schedule_at ?(kind = "") t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let h = { live = true; action = f; kind; owner = t } in
  Heap.push t.queue time h;
  t.live_count <- t.live_count + 1;
  h

let schedule ?kind t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at ?kind t ~time:(t.clock +. delay) f

let cancel h =
  if h.live then begin
    h.live <- false;
    h.owner.live_count <- h.owner.live_count - 1
  end

let cancelled h = not h.live
let pending t = Heap.length t.queue
let live_pending t = t.live_count

let step t =
  match t.profiler with
  | None -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (time, h) ->
          t.clock <- time;
          if h.live then begin
            h.live <- false;
            t.live_count <- t.live_count - 1;
            h.action ()
          end;
          true)
  | Some p -> (
      (* Instrumented path: identical semantics, plus statistics. The
         high-water mark observes the queue before the pop. *)
      Profiler.observe_queue p (Heap.length t.queue);
      match Heap.pop t.queue with
      | None -> false
      | Some (time, h) ->
          Profiler.record_advance p (time -. t.clock);
          t.clock <- time;
          if h.live then begin
            h.live <- false;
            t.live_count <- t.live_count - 1;
            let t0 = Sys.time () in
            h.action ();
            Profiler.record_event p ~kind:h.kind ~cpu:(Sys.time () -. t0)
          end
          else Profiler.record_cancelled p;
          true)

let run ?until t =
  t.stopped <- false;
  match until with
  | None -> while (not t.stopped) && step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue && not t.stopped do
        match Heap.peek t.queue with
        | Some (time, _) when time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- max t.clock horizon;
            continue := false
      done
