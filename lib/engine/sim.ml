type t = {
  mutable clock : float;
  queue : handle Heap.t;
  mutable stopped : bool;
  mutable live_count : int;
  mutable executed : int;
  mutable profiler : Profiler.slot option;
      (* This domain's shard of the attached profiler; recording into
         it is lock-free and domain-private. *)
  mutable cancel : cancel option;
}

and handle = {
  mutable live : bool;
  action : unit -> unit;
  kind : string;
  owner : t;
}

(* Cooperative cancellation: the hook runs on this simulator's domain
   every [every] executed events; returning [Some reason] aborts the
   run by raising {!Cancelled} out of [step]. *)
and cancel = {
  every : int;
  hook : t -> string option;
  mutable countdown : int;
}

exception Cancelled of { reason : string; events : int }

let () =
  Printexc.register_printer (function
    | Cancelled { reason; events } ->
        Some
          (Printf.sprintf "Pdq_engine.Sim.Cancelled(%s after %d events)"
             reason events)
    | _ -> None)

let default_check_every = 1024

(* Default cancellation hooks for simulators that have not been created
   yet: a supervisor installs a per-attempt budget here and every
   [create] during the attempt picks it up. The DLS default scopes to
   the installing domain (each sweep worker budgets its own slot); the
   global default covers every domain (whole-process deadlines, e.g.
   bench --timeout, whose sweeps spawn their own workers). *)
let dls_default : (int * (t -> string option)) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let global_default : (int * (t -> string option)) option Atomic.t =
  Atomic.make None

let with_default_cancel ?(every = default_check_every) hook fn =
  let prev = Domain.DLS.get dls_default in
  Domain.DLS.set dls_default (Some (every, hook));
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_default prev) fn

let set_global_cancel ?(every = default_check_every) hook =
  Atomic.set global_default (Some (every, hook))

let clear_global_cancel () = Atomic.set global_default None

let cancel_of = function
  | None -> None
  | Some (every, hook) ->
      let every = max 1 every in
      Some { every; hook; countdown = every }

let create () =
  {
    clock = 0.;
    queue = Heap.create ();
    stopped = false;
    live_count = 0;
    executed = 0;
    profiler = Option.map Profiler.slot (Profiler.global ());
    cancel =
      cancel_of
        (match Domain.DLS.get dls_default with
        | Some _ as d -> d
        | None -> Atomic.get global_default);
  }

let set_profiler t p = t.profiler <- Option.map Profiler.slot p

let set_cancel t ?(every = default_check_every) hook =
  t.cancel <- cancel_of (Some (every, hook))

let clear_cancel t = t.cancel <- None
let events_executed t = t.executed
let stop t = t.stopped <- true
let now t = t.clock

let schedule_at ?(kind = "") t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let h = { live = true; action = f; kind; owner = t } in
  Heap.push t.queue time h;
  t.live_count <- t.live_count + 1;
  h

let schedule ?kind t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at ?kind t ~time:(t.clock +. delay) f

let cancel h =
  if h.live then begin
    h.live <- false;
    h.owner.live_count <- h.owner.live_count - 1
  end

let cancelled h = not h.live
let pending t = Heap.length t.queue
let live_pending t = t.live_count

(* One decrement per executed event; the hook itself only runs every
   [every] events, so an installed budget costs almost nothing and an
   uninstalled one is a single [match] per step. *)
let check_cancel t =
  match t.cancel with
  | None -> ()
  | Some c ->
      c.countdown <- c.countdown - 1;
      if c.countdown <= 0 then begin
        c.countdown <- c.every;
        match c.hook t with
        | None -> ()
        | Some reason -> raise (Cancelled { reason; events = t.executed })
      end

let step t =
  match t.profiler with
  | None -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (time, h) ->
          t.clock <- time;
          if h.live then begin
            h.live <- false;
            t.live_count <- t.live_count - 1;
            h.action ();
            t.executed <- t.executed + 1;
            check_cancel t
          end;
          true)
  | Some p -> (
      (* Instrumented path: identical semantics, plus statistics. The
         high-water mark observes the queue before the pop. *)
      Profiler.observe_queue p (Heap.length t.queue);
      match Heap.pop t.queue with
      | None -> false
      | Some (time, h) ->
          Profiler.record_advance p (time -. t.clock);
          t.clock <- time;
          if h.live then begin
            h.live <- false;
            t.live_count <- t.live_count - 1;
            let t0 = Sys.time () in
            h.action ();
            Profiler.record_event p ~kind:h.kind ~cpu:(Sys.time () -. t0);
            t.executed <- t.executed + 1;
            check_cancel t
          end
          else Profiler.record_cancelled p;
          true)

let run ?until t =
  t.stopped <- false;
  match until with
  | None -> while (not t.stopped) && step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue && not t.stopped do
        match Heap.peek t.queue with
        | Some (time, _) when time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- max t.clock horizon;
            continue := false
      done
