(* Discrete-event core, structure-of-arrays edition.

   The event queue is a binary min-heap on (time, seq) kept in four
   parallel arrays — an unboxed [float array] for times and int arrays
   for sequence numbers, slot indices and generation stamps — so heap
   maintenance touches flat memory and never chases per-event records.

   Event state (the action closure, its kind, its generation) lives in
   a slot store indexed by small ints. A handle is an immediate int
   packing the slot index with the slot's generation at scheduling
   time; cancellation bumps the generation and recycles the slot
   immediately, so the heap node left behind is recognised as dead by
   its stale generation when popped. Firing an event also bumps the
   generation before running the action, which makes [cancelled]
   truthful after the fact and lets the action itself reschedule into
   the freed slot.

   The virtual clock lives in a one-element [float array]: a mutable
   float field in this mixed record would be boxed and every write
   would allocate, which at one write per event is the difference
   between an allocation-free pop and 2 words of garbage each. *)

module Kind = Kind

type t = {
  clock : float array; (* length 1: current virtual time, unboxed *)
  tscratch : float array;
      (* length 1: carries the event time from schedule/schedule_at
         into the push path. Passing it as a float argument would box
         it on every call (the compiler only unboxes float arguments
         across inlined calls); a store into a float array does not. *)
  (* Heap, structure-of-arrays; [h_size] nodes in heap order. *)
  mutable h_time : float array;
  mutable h_seq : int array;
  mutable h_slot : int array;
  mutable h_gen : int array;
  mutable h_size : int;
  mutable next_seq : int;
  (* Slot store; [s_top] slots ever handed out. *)
  mutable s_action : (unit -> unit) array;
  mutable s_gen : int array;
  mutable s_kind : int array;
  mutable s_top : int;
  (* Stack of recycled slot indices. *)
  mutable free : int array;
  mutable free_top : int;
  mutable stopped : bool;
  mutable live_count : int;
  mutable executed : int;
  mutable profiler : Profiler.slot option;
      (* This domain's shard of the attached profiler; recording into
         it is lock-free and domain-private. *)
  mutable cancel : cancel option;
}

(* Cooperative cancellation: the hook runs on this simulator's domain
   every [every] executed events; returning [Some reason] aborts the
   run by raising {!Cancelled} out of [step]. *)
and cancel = {
  every : int;
  hook : t -> string option;
  mutable countdown : int;
}

type handle = int

(* Handle layout: slot index in the low 30 bits, generation above.
   Generations wrap at 2^32 per slot; a stale handle aliasing a live
   event needs 4 billion reuses of one slot between cancel attempts. *)
let slot_bits = 30
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl 32) - 1

exception Cancelled of { reason : string; events : int }

let () =
  Printexc.register_printer (function
    | Cancelled { reason; events } ->
        Some
          (Printf.sprintf "Pdq_engine.Sim.Cancelled(%s after %d events)"
             reason events)
    | _ -> None)

let default_check_every = 1024

(* Default cancellation hooks for simulators that have not been created
   yet: a supervisor installs a per-attempt budget here and every
   [create] during the attempt picks it up. The DLS default scopes to
   the installing domain (each sweep worker budgets its own slot); the
   global default covers every domain (whole-process deadlines, e.g.
   bench --timeout, whose sweeps spawn their own workers). *)
let dls_default : (int * (t -> string option)) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let global_default : (int * (t -> string option)) option Atomic.t =
  Atomic.make None

let with_default_cancel ?(every = default_check_every) hook fn =
  let prev = Domain.DLS.get dls_default in
  Domain.DLS.set dls_default (Some (every, hook));
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_default prev) fn

let set_global_cancel ?(every = default_check_every) hook =
  Atomic.set global_default (Some (every, hook))

let clear_global_cancel () = Atomic.set global_default None

let cancel_of = function
  | None -> None
  | Some (every, hook) ->
      let every = max 1 every in
      Some { every; hook; countdown = every }

let noop () = ()
let initial_capacity = 256

let create () =
  {
    clock = [| 0. |];
    tscratch = [| 0. |];
    h_time = Array.make initial_capacity 0.;
    h_seq = Array.make initial_capacity 0;
    h_slot = Array.make initial_capacity 0;
    h_gen = Array.make initial_capacity 0;
    h_size = 0;
    next_seq = 0;
    s_action = Array.make initial_capacity noop;
    s_gen = Array.make initial_capacity 0;
    s_kind = Array.make initial_capacity 0;
    s_top = 0;
    free = Array.make initial_capacity 0;
    free_top = 0;
    stopped = false;
    live_count = 0;
    executed = 0;
    profiler = Option.map Profiler.slot (Profiler.global ());
    cancel =
      cancel_of
        (match Domain.DLS.get dls_default with
        | Some _ as d -> d
        | None -> Atomic.get global_default);
  }

let set_profiler t p = t.profiler <- Option.map Profiler.slot p

let set_cancel t ?(every = default_check_every) hook =
  t.cancel <- cancel_of (Some (every, hook))

let clear_cancel t = t.cancel <- None
let events_executed t = t.executed
let stop t = t.stopped <- true
let now t = t.clock.(0)

(* ------------------------------------------------------------------ *)
(* Slot store. *)

let slots_grow t =
  let cap = Array.length t.s_action in
  let ncap = 2 * cap in
  let action = Array.make ncap noop in
  let gen = Array.make ncap 0 in
  let kind = Array.make ncap 0 in
  let free = Array.make ncap 0 in
  Array.blit t.s_action 0 action 0 cap;
  Array.blit t.s_gen 0 gen 0 cap;
  Array.blit t.s_kind 0 kind 0 cap;
  Array.blit t.free 0 free 0 cap;
  t.s_action <- action;
  t.s_gen <- gen;
  t.s_kind <- kind;
  t.free <- free

let alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    if t.s_top = Array.length t.s_action then slots_grow t;
    let s = t.s_top in
    t.s_top <- s + 1;
    s
  end

(* Retire a slot: bump the generation (invalidating every outstanding
   handle and heap node pointing at it), drop the closure so it can be
   collected, and recycle the index. *)
let retire_slot t slot gen =
  t.s_gen.(slot) <- (gen + 1) land gen_mask;
  t.s_action.(slot) <- noop;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.live_count <- t.live_count - 1

(* ------------------------------------------------------------------ *)
(* Heap maintenance. Min on (time, seq): seq is the global scheduling
   order, so ties fire first-scheduled-first — the determinism
   contract every figure depends on. *)

let heap_grow t =
  let cap = Array.length t.h_time in
  let ncap = 2 * cap in
  let time = Array.make ncap 0. in
  let seq = Array.make ncap 0 in
  let slot = Array.make ncap 0 in
  let gen = Array.make ncap 0 in
  Array.blit t.h_time 0 time 0 cap;
  Array.blit t.h_seq 0 seq 0 cap;
  Array.blit t.h_slot 0 slot 0 cap;
  Array.blit t.h_gen 0 gen 0 cap;
  t.h_time <- time;
  t.h_seq <- seq;
  t.h_slot <- slot;
  t.h_gen <- gen

(* Push the event whose time sits in [t.tscratch.(0)]: allocate a
   slot, then sift up, moving parents down until (time, seq) fits. *)
let do_schedule t kind f =
  let time = t.tscratch.(0) in
  if time < t.clock.(0) then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time
         t.clock.(0));
  let slot = alloc_slot t in
  let gen = t.s_gen.(slot) in
  t.s_action.(slot) <- f;
  t.s_kind.(slot) <- Kind.to_int kind;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.h_size = Array.length t.h_time then heap_grow t;
  (* Indices below stay within [0, h_size] by construction (the heap
     was grown above if full), so the sift uses unsafe accesses — this
     loop and its sift-down twin dominate the per-event cost. *)
  let ht = t.h_time and hq = t.h_seq and hs = t.h_slot and hg = t.h_gen in
  let i = ref t.h_size in
  t.h_size <- t.h_size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let tp = Array.unsafe_get ht p in
    if time < tp || (time = tp && seq < Array.unsafe_get hq p) then begin
      Array.unsafe_set ht !i tp;
      Array.unsafe_set hq !i (Array.unsafe_get hq p);
      Array.unsafe_set hs !i (Array.unsafe_get hs p);
      Array.unsafe_set hg !i (Array.unsafe_get hg p)
    end
    else continue := false;
    if !continue then i := p
  done;
  Array.unsafe_set ht !i time;
  Array.unsafe_set hq !i seq;
  Array.unsafe_set hs !i slot;
  Array.unsafe_set hg !i gen;
  t.live_count <- t.live_count + 1;
  slot lor (gen lsl slot_bits)

(* Remove the root: move the last node into a hole sifted down from the
   root. The popped node's fields must be read out before calling. *)
let heap_remove_root t =
  let n = t.h_size - 1 in
  t.h_size <- n;
  if n > 0 then begin
    (* [l], [r], [c] and [!i] are all [< n <= capacity]; unsafe
       accesses, same argument as the sift-up. *)
    let ht = t.h_time and hq = t.h_seq and hs = t.h_slot and hg = t.h_gen in
    let time = Array.unsafe_get ht n and seq = Array.unsafe_get hq n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let tl = Array.unsafe_get ht l in
        let c =
          if
            r < n
            && (let tr = Array.unsafe_get ht r in
                tr < tl
                || (tr = tl && Array.unsafe_get hq r < Array.unsafe_get hq l))
          then r
          else l
        in
        let tc = Array.unsafe_get ht c in
        if tc < time || (tc = time && Array.unsafe_get hq c < seq) then begin
          Array.unsafe_set ht !i tc;
          Array.unsafe_set hq !i (Array.unsafe_get hq c);
          Array.unsafe_set hs !i (Array.unsafe_get hs c);
          Array.unsafe_set hg !i (Array.unsafe_get hg c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set ht !i (Array.unsafe_get ht n);
    Array.unsafe_set hq !i (Array.unsafe_get hq n);
    Array.unsafe_set hs !i (Array.unsafe_get hs n);
    Array.unsafe_set hg !i (Array.unsafe_get hg n)
  end

(* ------------------------------------------------------------------ *)

(* [_k] variants take the kind positionally: a [~kind] optional
   argument makes every labeled call site allocate a [Some] cell
   (non-flambda builds cannot eliminate it), which is exactly the
   per-event garbage this core exists to avoid. Hot paths call these;
   the [?kind] wrappers below remain for casual callers, costing
   nothing when the label is omitted. *)
let schedule_at_k t kind ~time f =
  t.tscratch.(0) <- time;
  do_schedule t kind f

let schedule_k t kind ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  t.tscratch.(0) <- t.clock.(0) +. delay;
  do_schedule t kind f

let schedule_at ?(kind = Kind.unlabeled) t ~time f =
  t.tscratch.(0) <- time;
  do_schedule t kind f

let schedule ?(kind = Kind.unlabeled) t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  t.tscratch.(0) <- t.clock.(0) +. delay;
  do_schedule t kind f

let cancel t h =
  let slot = h land slot_mask and gen = h lsr slot_bits in
  if slot < t.s_top && t.s_gen.(slot) = gen then retire_slot t slot gen

let cancelled t h =
  let slot = h land slot_mask and gen = h lsr slot_bits in
  not (slot < t.s_top && t.s_gen.(slot) = gen)

let pending t = t.h_size
let live_pending t = t.live_count

(* One decrement per executed event; the hook itself only runs every
   [every] events, so an installed budget costs almost nothing and an
   uninstalled one is a single [match] per step. *)
let check_cancel t =
  match t.cancel with
  | None -> ()
  | Some c ->
      c.countdown <- c.countdown - 1;
      if c.countdown <= 0 then begin
        c.countdown <- c.every;
        match c.hook t with
        | None -> ()
        | Some reason -> raise (Cancelled { reason; events = t.executed })
      end

let step t =
  match t.profiler with
  | None ->
      if t.h_size = 0 then false
      else begin
        let time = Array.unsafe_get t.h_time 0
        and slot = Array.unsafe_get t.h_slot 0
        and gen = Array.unsafe_get t.h_gen 0 in
        heap_remove_root t;
        Array.unsafe_set t.clock 0 time;
        if Array.unsafe_get t.s_gen slot = gen then begin
          let f = Array.unsafe_get t.s_action slot in
          retire_slot t slot gen;
          f ();
          t.executed <- t.executed + 1;
          check_cancel t
        end;
        true
      end
  | Some p ->
      (* Instrumented path: identical semantics, plus statistics. The
         high-water mark observes the queue before the pop. *)
      Profiler.observe_queue p t.h_size;
      if t.h_size = 0 then false
      else begin
        let time = t.h_time.(0) and slot = t.h_slot.(0) and gen = t.h_gen.(0) in
        heap_remove_root t;
        Profiler.record_advance p (time -. t.clock.(0));
        t.clock.(0) <- time;
        if t.s_gen.(slot) = gen then begin
          let f = t.s_action.(slot) in
          let k = Kind.of_int t.s_kind.(slot) in
          retire_slot t slot gen;
          (* [Unix.gettimeofday] (vdso, ~40 ns) instead of [Sys.time]
             (a [times] syscall, ~6x dearer per call): two stamps per
             event would otherwise dominate profiled runs. *)
          let t0 = Unix.gettimeofday () in
          f ();
          Profiler.record_event p ~kind:k ~cpu:(Unix.gettimeofday () -. t0);
          t.executed <- t.executed + 1;
          check_cancel t
        end
        else Profiler.record_cancelled p;
        true
      end

let run ?until t =
  t.stopped <- false;
  match until with
  | None -> while (not t.stopped) && step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue && not t.stopped do
        if t.h_size > 0 && t.h_time.(0) <= horizon then ignore (step t)
        else begin
          t.clock.(0) <- Float.max t.clock.(0) horizon;
          continue := false
        end
      done
