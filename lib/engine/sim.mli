(** Discrete-event simulation core.

    A simulator owns a virtual clock and an event queue. Events are
    thunks scheduled at absolute or relative virtual times; [run]
    executes them in nondecreasing time order (ties broken by
    scheduling order, so runs are deterministic).

    The queue is a monomorphic structure-of-arrays binary heap (unboxed
    times, flat int arrays for sequence/slot/generation) over a slot
    store of event records; handles are immediate ints carrying a
    generation stamp, so scheduling and cancelling allocate nothing and
    cancellation recycles its slot instead of leaving a dead record to
    be collected. See DESIGN.md, "Event-core internals". *)

module Kind = Kind
(** Interned event-kind labels; see {!Kind.register}. Re-exported so
    callers can write [Sim.Kind.register "link.tx"]. *)

type t
(** A simulator instance. *)

type handle
(** A handle on a scheduled event, usable to {!cancel} it. Handles are
    immediate ints (no allocation) and carry a generation stamp: a
    handle whose event has fired or been cancelled is recognised as
    stale even after its slot has been reused. *)

val create : unit -> t
(** A fresh simulator with clock at time [0.]. If a global
    {!Profiler.t} is enabled it is attached automatically. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : ?kind:Kind.t -> t -> delay:float -> (unit -> unit) -> handle
(** [schedule sim ~delay f] runs [f] at time [now sim +. delay].
    Raises [Invalid_argument] if [delay < 0.]. [kind] is an interned
    label ({!Kind.register}, e.g. "link.tx") grouping the event in
    profiler reports; it does not affect execution. *)

val schedule_at : ?kind:Kind.t -> t -> time:float -> (unit -> unit) -> handle
(** [schedule_at sim ~time f] runs [f] at absolute [time]. Scheduling
    at exactly [now sim] is allowed — the event fires after everything
    already scheduled at that instant (ties break by sequence order).
    Raises [Invalid_argument] only if [time] is strictly in the
    past. *)

val schedule_k : t -> Kind.t -> delay:float -> (unit -> unit) -> handle
(** [schedule_k sim kind ~delay f] is {!schedule} with the kind passed
    positionally. Passing a labeled optional argument allocates a
    [Some] cell per call (non-flambda builds cannot eliminate it);
    this variant keeps the labeled scheduling path allocation-free, so
    the per-event hot paths (links, ports, watchdogs) use it. *)

val schedule_at_k : t -> Kind.t -> time:float -> (unit -> unit) -> handle
(** {!schedule_at}, kind passed positionally (see {!schedule_k}). *)

val cancel : t -> handle -> unit
(** Cancel a pending event. Its slot is recycled immediately (the
    closure is released for collection); the heap node left behind is
    skipped cheaply when popped. Cancelling an already-fired or
    cancelled event is a no-op. *)

val cancelled : t -> handle -> bool
(** Whether the event was cancelled (or already consumed). *)

val pending : t -> int
(** Number of events still physically queued. Cancellation does not
    remove an event's node from the heap — it only invalidates it, to
    be skipped when popped — so this count {e includes} cancelled
    placeholders. Use {!live_pending} for the number of events that
    will actually run. *)

val live_pending : t -> int
(** Events queued and still live (i.e. {!pending} minus cancelled
    placeholders awaiting their no-op pop). This is the right notion
    of "work left"; the gap between the two is dead-heap overhead,
    which the profiler reports as cancelled pops. *)

val set_profiler : t -> Profiler.t option -> unit
(** Attach or detach a profiler (recording goes to the calling
    domain's shard of it). Unattached simulators pay a single match
    per step. *)

(** {2 Cooperative cancellation}

    A supervisor (e.g. {!Pdq_exec.Sweep}) bounds a run by installing a
    cancellation hook: after every [every] executed events the hook is
    asked whether the run is still within budget, and a [Some reason]
    answer aborts the run by raising {!Cancelled} out of {!step} /
    {!run}. The check is cooperative — it only fires between events —
    and costs a single [match] per step when no hook is installed. *)

exception Cancelled of { reason : string; events : int }
(** Raised out of {!step} / {!run} when a cancellation hook trips.
    [events] is {!events_executed} at that point. The simulator is left
    mid-run and should be discarded. *)

val events_executed : t -> int
(** Live events executed by this simulator so far (the budget
    currency of event-count limits). *)

val set_cancel : t -> ?every:int -> (t -> string option) -> unit
(** Install the cancellation hook on an existing simulator, checked
    every [every] executed events (default 1024, clamped to [>= 1]). *)

val clear_cancel : t -> unit

val with_default_cancel :
  ?every:int -> (t -> string option) -> (unit -> 'a) -> 'a
(** [with_default_cancel hook f] runs [f] with [hook] installed as the
    {e calling domain's} default: every simulator {!create}d by this
    domain during [f] starts with the hook attached. This is how a
    sweep worker imposes a per-attempt budget on the simulators a
    scenario builds internally. Restores the previous default on exit,
    also on exception. *)

val set_global_cancel : ?every:int -> (t -> string option) -> unit
(** Process-wide default hook, attached to every subsequently created
    simulator on {e any} domain that has no domain-local default — a
    whole-process deadline for multi-domain sweeps (bench
    [--timeout]). *)

val clear_global_cancel : unit -> unit

val step : t -> bool
(** Execute the next event, advancing the clock to its timestamp.
    Returns [false] when the queue is empty. *)

val stop : t -> unit
(** Make the current (or next) {!run} return after the event being
    executed; pending events stay queued. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue drains, or — when [until] is given —
    until the next event would fire strictly after [until] (the clock is
    then left at [until]). *)
