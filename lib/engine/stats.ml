let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = percentile xs 50.

type cdf = (float * float) array

let cdf xs =
  let n = Array.length xs in
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  Array.mapi (fun i x -> (x, float_of_int (i + 1) /. float_of_int n)) sorted

let cdf_at c x =
  (* Binary search for the largest value <= x. *)
  let n = Array.length c in
  if n = 0 || fst c.(0) > x then 0.
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst c.(mid) <= x then lo := mid else hi := mid - 1
    done;
    snd c.(!lo)
  end

let fraction pred xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let k = Array.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 xs in
    float_of_int k /. float_of_int n
  end

module Tally = struct
  type t = (string, int ref) Hashtbl.t

  let create () = Hashtbl.create 16

  let incr ?(by = 1) t key =
    match Hashtbl.find_opt t key with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t key (ref by)

  let count t key =
    match Hashtbl.find_opt t key with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0
end

module Counter = struct
  type t = {
    mutable n : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () = { n = 0; sum = 0.; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let n t = t.n
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  let min t = t.min_v
  let max t = t.max_v
end
