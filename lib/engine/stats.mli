(** Small statistics toolkit used by experiment drivers: summary
    statistics over float samples and empirical CDFs. *)

val mean : float array -> float
(** Arithmetic mean. 0. on an empty array. *)

val variance : float array -> float
(** Population variance. 0. when fewer than 2 samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_max : float array -> float * float
(** Smallest and largest sample. Raises [Invalid_argument] on empty. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation
    between order statistics. Raises [Invalid_argument] on empty. *)

val median : float array -> float
(** [percentile xs 50.]. *)

type cdf = (float * float) array
(** An empirical CDF as [(value, fraction <= value)] pairs, sorted by
    value. *)

val cdf : float array -> cdf
(** Empirical CDF of the samples. *)

val cdf_at : cdf -> float -> float
(** [cdf_at c x] is the fraction of samples [<= x]. *)

val fraction : ('a -> bool) -> 'a array -> float
(** Fraction of elements satisfying the predicate; 0. on empty input. *)

module Tally : sig
  (** Named event counters (per-cause drops, aborts, fault events) —
      a string-keyed bag of integers with deterministic, sorted
      output. *)

  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val count : t -> string -> int
  (** 0 for a key never incremented. *)

  val to_list : t -> (string * int) list
  (** All (key, count) pairs, sorted by key. *)

  val total : t -> int
end

module Counter : sig
  (** Streaming mean/min/max accumulator, O(1) memory. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
end
