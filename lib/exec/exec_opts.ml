module Sim = Pdq_engine.Sim

(* ------------------------------------------------------------------ *)
(* Budgets. This lived in [Sweep] originally; it sits here, below both
   [Scenario] and [Sweep], so single runs and sweeps enforce the same
   budget type without a dependency cycle. *)

type budget = {
  wall : float option;
  events : int option;
  live : int option;
  check_every : int;
}

let no_budget = { wall = None; events = None; live = None; check_every = 1024 }

let budget ?wall ?events ?live ?(check_every = 1024) () =
  { wall; events; live; check_every = max 1 check_every }

let budget_is_empty b = b.wall = None && b.events = None && b.live = None

(* Run [fn] with the budget installed as the calling domain's default
   cancellation hook, so every simulator the attempt creates enforces
   it. [start] anchors the wall-clock deadline at the attempt start. *)
let with_budget_from b ~start fn =
  if budget_is_empty b then fn ()
  else begin
    let deadline = Option.map (fun w -> start +. w) b.wall in
    let hook sim =
      match b.events with
      | Some m when Sim.events_executed sim > m ->
          Some (Printf.sprintf "events>%d" m)
      | _ -> (
          match b.live with
          | Some m when Sim.live_pending sim > m ->
              Some (Printf.sprintf "live>%d" m)
          | _ -> (
              match deadline with
              | Some d when Unix.gettimeofday () > d ->
                  Some (Printf.sprintf "wall>%gs" (Option.get b.wall))
              | _ -> None))
    in
    (* Tiny event budgets must be checked more often than the default
       grid or they would only trip at the first grid point. *)
    let every =
      match b.events with
      | Some m -> max 1 (min b.check_every ((m / 4) + 1))
      | None -> b.check_every
    in
    Sim.with_default_cancel ~every hook fn
  end

let with_budget b fn = with_budget_from b ~start:(Unix.gettimeofday ()) fn

(* ------------------------------------------------------------------ *)
(* The unified execution-options record. *)

type t = {
  jobs : int option;
  budget : budget;
  telemetry : Pdq_transport.Runner.telemetry option;
}

let default = { jobs = None; budget = no_budget; telemetry = None }

let make ?jobs ?(budget = no_budget) ?telemetry () = { jobs; budget; telemetry }

let jobs n = { default with jobs = Some n }
let telemetry tel = { default with telemetry = Some tel }
let with_budget_opt t fn = with_budget t.budget fn
