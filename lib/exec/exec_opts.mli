(** Unified execution options.

    One record carries the knobs that used to be scattered as
    [?jobs] / [?budget] / [?telemetry] optional arguments across
    {!Scenario.run}, {!Sweep.run}, {!Sweep.supervise} and the
    experiment helpers: every entry point takes a single
    [?opts:Exec_opts.t] instead, so adding an execution knob is one
    field here rather than an arity change rippling through every
    layer. Each consumer honours the fields that make sense for it and
    documents the ones it ignores ({!Sweep} runs are telemetry-free;
    single {!Scenario.run}s have no worker pool). *)

(** {1 Run budgets}

    The budget type lives here — below both [Scenario] and [Sweep] —
    so single runs and sweep attempts enforce exactly the same bounds;
    {!Sweep} re-exports it under its historical name. *)

type budget = {
  wall : float option;   (** Wall-clock seconds per attempt. *)
  events : int option;   (** Simulator events executed per attempt. *)
  live : int option;     (** Ceiling on live queued events (heap
                             blow-up guard). *)
  check_every : int;     (** Cooperative check period, in events. *)
}
(** Per-attempt budget, enforced via {!Pdq_engine.Sim} cooperative
    cancellation: every simulator created while an attempt runs checks
    the budget every [check_every] events (tightened automatically for
    small event budgets) and raises [Sim.Cancelled] when it trips.
    Costs nothing when empty, one [match] per event otherwise. *)

val no_budget : budget

val budget :
  ?wall:float -> ?events:int -> ?live:int -> ?check_every:int -> unit -> budget
(** [check_every] defaults to 1024. *)

val budget_is_empty : budget -> bool

val with_budget : budget -> (unit -> 'a) -> 'a
(** [with_budget b fn] installs [b] as the calling domain's default
    cancellation hook for the duration of [fn] — every simulator
    created inside picks it up. The wall deadline is anchored at the
    call; a tripped budget raises [Sim.Cancelled] out of [fn]. *)

val with_budget_from : budget -> start:float -> (unit -> 'a) -> 'a
(** {!with_budget} with the wall deadline anchored at [start] instead
    of the call instant (a retrying supervisor anchors at the attempt
    start). *)

(** {1 Options} *)

type t = {
  jobs : int option;
      (** Worker domains for sweep entry points; [None] =
          {!Sweep.default_jobs}. Ignored by single runs. *)
  budget : budget;  (** Per-run (or per-attempt) budget. *)
  telemetry : Pdq_transport.Runner.telemetry option;
      (** Trace/metrics sinks for single runs. Ignored by sweeps —
          sinks are per-run mutable state and channels would interleave
          across domains (see the {!Sweep} telemetry caveat). *)
}

val default : t
(** No jobs pin, empty budget, no telemetry — every entry point treats
    a missing [?opts] as this. *)

val make :
  ?jobs:int -> ?budget:budget -> ?telemetry:Pdq_transport.Runner.telemetry ->
  unit -> t

val jobs : int -> t
(** [jobs n] is [{default with jobs = Some n}] — the common
    "just pin the worker count" literal. *)

val telemetry : Pdq_transport.Runner.telemetry -> t
(** [telemetry tel] is [{default with telemetry = Some tel}]. *)

val with_budget_opt : t -> (unit -> 'a) -> 'a
(** {!with_budget} applied to the record's budget field. *)
