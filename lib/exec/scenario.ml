module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Topology = Pdq_net.Topology
module Link = Pdq_net.Link
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Fault_plan = Pdq_faults.Fault_plan
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Pattern = Pdq_workload.Pattern
module Job = Pdq_apps.Job
module Job_arrivals = Pdq_apps.Job_arrivals
module Job_tracker = Pdq_apps.Job_tracker
module Job_metrics = Pdq_apps.Job_metrics

type topo =
  | Tree of { tors : int; hosts_per_tor : int }
  | Bottleneck of { senders : int }
  | Fat_tree of { k : int }
  | Fat_tree_servers of { servers : int }
  | Bcube of { n : int; k : int }
  | Jellyfish of {
      switches : int;
      ports : int;
      net_ports : int;
      wiring_salt : int;
    }

let default_tree = Tree { tors = 4; hosts_per_tor = 3 }

let topo_name = function
  | Tree { tors; hosts_per_tor } ->
      Printf.sprintf "tree(%dx%d)" tors hosts_per_tor
  | Bottleneck { senders } -> Printf.sprintf "bottleneck(%d)" senders
  | Fat_tree { k } -> Printf.sprintf "fat-tree(k=%d)" k
  | Fat_tree_servers { servers } -> Printf.sprintf "fat-tree(>=%d)" servers
  | Bcube { n; k } -> Printf.sprintf "bcube(%d,%d)" n k
  | Jellyfish { switches; ports; net_ports; _ } ->
      Printf.sprintf "jellyfish(%d,%d,%d)" switches ports net_ports

let topo_names = [ "tree"; "bottleneck"; "fat-tree"; "bcube"; "jellyfish" ]

let unknown ~what ~names other =
  Error
    (Printf.sprintf "unknown %s %S (expected one of: %s)" what other
       (String.concat ", " names))

let topo_of_string s =
  match String.lowercase_ascii s with
  | "tree" -> Ok default_tree
  | "bottleneck" -> Ok (Bottleneck { senders = 16 })
  | "fat-tree" | "fattree" -> Ok (Fat_tree { k = 4 })
  | "bcube" -> Ok (Bcube { n = 2; k = 3 })
  | "jellyfish" ->
      Ok (Jellyfish { switches = 8; ports = 24; net_ports = 16; wiring_salt = 0 })
  | other -> unknown ~what:"topology" ~names:topo_names other

type sizes =
  | Uniform_paper of { mean_bytes : int }
  | Uniform of { lo : int; hi : int }
  | Fixed of int
  | Pareto of { tail_index : float; mean_bytes : int }
  | Vl2
  | Edu1

let size_dist = function
  | Uniform_paper { mean_bytes } -> Size_dist.uniform_paper ~mean_bytes
  | Uniform { lo; hi } -> Size_dist.uniform ~lo ~hi
  | Fixed n -> Size_dist.fixed n
  | Pareto { tail_index; mean_bytes } ->
      Size_dist.pareto ~tail_index ~mean_bytes ()
  | Vl2 -> Size_dist.vl2 ()
  | Edu1 -> Size_dist.edu1 ()

type deadlines = No_deadlines | Exp_deadlines of { mean : float; floor : float }

type pattern =
  | Aggregation
  | Stride of int
  | Staggered of float
  | Random_permutation
  | Random_pairs

let pattern_names =
  [ "aggregation"; "stride"; "staggered"; "permutation"; "pairs" ]

let pattern_of_string s =
  match String.lowercase_ascii s with
  | "aggregation" -> Ok Aggregation
  | "stride" -> Ok (Stride 1)
  | "staggered" -> Ok (Staggered 0.7)
  | "permutation" -> Ok Random_permutation
  | "pairs" -> Ok Random_pairs
  | other -> unknown ~what:"pattern" ~names:pattern_names other

type job_pattern = Partition_aggregate | Map_reduce | Pipeline

let job_pattern_name = function
  | Partition_aggregate -> "partition-aggregate"
  | Map_reduce -> "map-reduce"
  | Pipeline -> "pipeline"

let job_pattern_names = [ "partition-aggregate"; "map-reduce"; "pipeline" ]

let job_pattern_of_string s =
  match String.lowercase_ascii s with
  | "partition-aggregate" | "pa" -> Ok Partition_aggregate
  | "map-reduce" | "mapreduce" | "shuffle" -> Ok Map_reduce
  | "pipeline" -> Ok Pipeline
  | other -> unknown ~what:"job pattern" ~names:job_pattern_names other

type workload =
  | Synthetic of {
      pattern : pattern;
      flows : int;
      sizes : sizes;
      deadlines : deadlines;
    }
  | Explicit of Context.flow_spec list
  | Generated of {
      label : string;
      specs :
        seed:int ->
        topo:Topology.t ->
        hosts:int array ->
        Context.flow_spec list;
    }
  | Jobs of {
      pattern : job_pattern;
      count : int;
      width : int;
      depth : int;
      sizes : sizes;
      deadlines : deadlines;
      rate : float option;
    }

type faults =
  | No_faults
  | Flaps_and_reboots of {
      flap_mtbf : float option;
      flap_mttr : float;
      reboot_mtbf : float option;
      until : float;
    }
  | Fault_gen of {
      label : string;
      plan : seed:int -> Builder.built -> Fault_plan.t;
    }

type loss =
  | No_loss
  | Loss_on_links of { rate : float; links : int list }
  | Loss_on_bottleneck of float

type t = {
  name : string;
  topo : topo;
  protocol : Runner.protocol;
  workload : workload;
  seed : int;
  horizon : float;
  stop_when_done : bool;
  loss : loss;
  faults : faults;
  init_rtt : float;
  rto_min : float;
}

let make ?name ?(topo = default_tree) ?(seed = 1) ?(horizon = 10.)
    ?(stop_when_done = true) ?(loss = No_loss) ?(faults = No_faults)
    ?(init_rtt = 2e-4) ?(rto_min = 1e-3) ~workload protocol =
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "%s on %s" (Runner.protocol_name protocol)
          (topo_name topo)
  in
  {
    name;
    topo;
    protocol;
    workload;
    seed;
    horizon;
    stop_when_done;
    loss;
    faults;
    init_rtt;
    rto_min;
  }

let with_seed t seed = { t with seed }

let build_topo spec ~sim ~seed =
  match spec with
  | Tree { tors; hosts_per_tor } ->
      Builder.single_rooted_tree ~tors ~hosts_per_tor ~sim ()
  | Bottleneck { senders } -> fst (Builder.single_bottleneck ~sim ~senders ())
  | Fat_tree { k } -> Builder.fat_tree ~sim ~k ()
  | Fat_tree_servers { servers } -> Builder.fat_tree_for_servers ~sim ~servers ()
  | Bcube { n; k } -> Builder.bcube ~sim ~n ~k ()
  | Jellyfish { switches; ports; net_ports; wiring_salt } ->
      Builder.jellyfish ~sim
        ~rng:(Rng.create (wiring_salt + seed))
        ~switches ~ports ~net_ports ()

(* The [pdq_sim] workload recipe: one Rng seeded with the scenario
   seed drives pattern construction, then per-flow size and deadline
   draws, cycling the pattern pairs to reach [flows]. *)
let synthetic_specs ~pattern ~flows ~sizes ~deadlines ~seed ~topo ~hosts =
  let rng = Rng.create seed in
  let dist = size_dist sizes in
  let pairs =
    match pattern with
    | Aggregation -> Pattern.aggregation ~hosts ~receiver:hosts.(0) ~flows
    | Stride i -> Pattern.stride ~hosts ~i
    | Staggered p ->
        Pattern.staggered ~rack_of:(Topology.rack_of topo) ~hosts ~p ~rng
    | Random_permutation -> Pattern.random_permutation ~hosts ~rng
    | Random_pairs -> Pattern.random_pairs ~hosts ~flows ~rng
  in
  let pairs = Array.of_list pairs in
  let ddist =
    match deadlines with
    | No_deadlines -> None
    | Exp_deadlines { mean; floor } ->
        Some (Deadline_dist.exponential ~floor ~mean ())
  in
  List.init flows (fun i ->
      let p = pairs.(i mod Array.length pairs) in
      {
        Context.src = p.Pattern.src;
        dst = p.Pattern.dst;
        size = Size_dist.sample dist rng;
        deadline = Option.map (fun d -> Deadline_dist.sample d rng) ddist;
        start = 0.;
      })

(* The [--workload jobs] recipe: one Rng seeded with the scenario seed
   draws, per job in arrival order, its deadline, then its hosts and
   flow sizes ({!Pdq_apps.Job_plan.compile}). Everything random is
   fixed here, at plan-compile time; runtime stage injection consumes
   no randomness, so job runs stay deterministic under any sweep
   parallelism. *)
let jobs_plans ~pattern ~count ~width ~depth ~sizes ~deadlines ~rate ~seed
    ~hosts =
  let rng = Rng.create seed in
  let dist = size_dist sizes in
  let ddist, floor =
    match deadlines with
    | No_deadlines -> (None, None)
    | Exp_deadlines { mean; floor } ->
        (Some (Deadline_dist.exponential ~floor ~mean ()), Some floor)
  in
  let job ~index =
    let deadline = Option.map (fun d -> Deadline_dist.sample d rng) ddist in
    let name = Printf.sprintf "job-%d" index in
    match pattern with
    | Partition_aggregate ->
        Job.partition_aggregate ?deadline ~rounds:depth ~name ~workers:width
          ~response_sizes:dist ()
    | Map_reduce ->
        Job.map_reduce ?deadline ~rounds:depth ~name ~mappers:width
          ~reducers:width ~shuffle_sizes:dist ~output_sizes:dist ()
    | Pipeline -> Job.pipeline ?deadline ~name ~depth ~sizes:dist ()
  in
  Job_arrivals.plans ~rng ~hosts ?rate ?floor ~count ~job ()

let resolve_loss t (built : Builder.built) =
  match t.loss with
  | No_loss -> None
  | Loss_on_links { rate; links } -> Some (rate, links)
  | Loss_on_bottleneck rate -> (
      match t.topo with
      | Bottleneck _ ->
          (* Node 0 is the switch; the receiver is the last host. *)
          let hosts = built.Builder.hosts in
          let rx = hosts.(Array.length hosts - 1) in
          let topo = built.Builder.topo in
          Some
            ( rate,
              [
                Link.id (Topology.link_to topo ~src:0 ~dst:rx);
                Link.id (Topology.link_to topo ~src:rx ~dst:0);
              ] )
      | _ ->
          invalid_arg
            "Scenario: Loss_on_bottleneck requires a Bottleneck topology")

let resolve_faults t (built : Builder.built) =
  match t.faults with
  | No_faults -> None
  | Fault_gen { plan; _ } ->
      let p = plan ~seed:t.seed built in
      if Fault_plan.is_empty p then None else Some p
  | Flaps_and_reboots { flap_mtbf; flap_mttr; reboot_mtbf; until } ->
      let topo = built.Builder.topo in
      let flaps =
        match flap_mtbf with
        | Some mtbf ->
            Fault_plan.link_flaps
              (Rng.create (0x11AB + t.seed))
              ~links:(Fault_plan.switch_cables topo)
              ~mtbf ~mttr:flap_mttr ~until
        | None -> Fault_plan.empty
      in
      let reboots =
        match reboot_mtbf with
        | Some mtbf ->
            Fault_plan.switch_reboots
              (Rng.create (0x5EB0 + t.seed))
              ~switches:(Fault_plan.switches topo)
              ~mtbf ~until
        | None -> Fault_plan.empty
      in
      let plan = Fault_plan.merge flaps reboots in
      if Fault_plan.is_empty plan then None else Some plan

let build_ext t =
  let sim = Sim.create () in
  let built = build_topo t.topo ~sim ~seed:t.seed in
  let topo = built.Builder.topo and hosts = built.Builder.hosts in
  let tracker = ref None in
  let specs, driver =
    match t.workload with
    | Explicit l -> (l, None)
    | Synthetic { pattern; flows; sizes; deadlines } ->
        ( synthetic_specs ~pattern ~flows ~sizes ~deadlines ~seed:t.seed ~topo
            ~hosts,
          None )
    | Generated { specs; _ } -> (specs ~seed:t.seed ~topo ~hosts, None)
    | Jobs { pattern; count; width; depth; sizes; deadlines; rate } ->
        let plans =
          jobs_plans ~pattern ~count ~width ~depth ~sizes ~deadlines ~rate
            ~seed:t.seed ~hosts
        in
        let driver ~spawn =
          let tr = Job_tracker.create ~spawn plans in
          tracker := Some tr;
          [ Job_tracker.sink tr ]
        in
        (Job_tracker.initial_specs plans, Some driver)
  in
  let options =
    {
      Runner.seed = t.seed;
      horizon = t.horizon;
      stop_when_done = t.stop_when_done;
      loss = resolve_loss t built;
      faults = resolve_faults t built;
      telemetry = Runner.no_telemetry;
      driver;
      init_rtt = t.init_rtt;
      rto_min = t.rto_min;
    }
  in
  (built, specs, options, tracker)

let build t =
  let built, specs, options, _ = build_ext t in
  (built, specs, options)

(* [prepare] runs between topology construction and execution — the
   sanctioned hole where the chaos adversary interposes on the freshly
   built links before any packet moves. *)
let run ?(opts = Exec_opts.default) ?prepare t =
  Exec_opts.with_budget_opt opts (fun () ->
      let telemetry =
        Option.value opts.Exec_opts.telemetry ~default:Runner.no_telemetry
      in
      let built, specs, options = build t in
      (match prepare with Some f -> f built | None -> ());
      let options = { options with Runner.telemetry } in
      Runner.execute ~options ~topo:built.Builder.topo t.protocol specs)

let run_jobs ?(opts = Exec_opts.default) ?prepare t =
  Exec_opts.with_budget_opt opts (fun () ->
      let telemetry =
        Option.value opts.Exec_opts.telemetry ~default:Runner.no_telemetry
      in
      let built, specs, options, tracker = build_ext t in
      (match prepare with Some f -> f built | None -> ());
      let options = { options with Runner.telemetry } in
      let result =
        Runner.execute ~options ~topo:built.Builder.topo t.protocol specs
      in
      let report =
        match !tracker with
        | Some tr -> Job_tracker.report tr
        | None -> Job_metrics.of_outcomes [||]
      in
      (result, report))

type checked = {
  result : Runner.result;
  violations : Pdq_check.Report.violation list;
  oracle : Pdq_check.Oracle.t;
  job_report : Job_metrics.report option;
}

let run_checked ?(opts = Exec_opts.default) ?es_window ?capacity_slack ?prepare
    t =
  let telemetry =
    Option.value opts.Exec_opts.telemetry ~default:Runner.no_telemetry
  in
  let built, specs, options, tracker = build_ext t in
  (match prepare with Some f -> f built | None -> ());
  let monitor = Pdq_check.Invariants.create ?es_window ?capacity_slack () in
  let options =
    {
      options with
      Runner.telemetry = Pdq_check.Invariants.telemetry monitor ~base:telemetry;
    }
  in
  let topo = built.Builder.topo in
  let result =
    Exec_opts.with_budget_opt opts (fun () ->
        Runner.execute ~options ~topo t.protocol specs)
  in
  let job_report = Option.map Job_tracker.report !tracker in
  let violations = Pdq_check.Invariants.finalize monitor ~result ~topo in
  (* M-PDQ stripes a flow over several paths, so no single path's
     contention-free bound applies per flow; keep only the aggregate
     references there. *)
  let per_flow = match t.protocol with Runner.Mpdq _ -> false | _ -> true in
  let oracle = Pdq_check.Oracle.check ~per_flow ~result ~topo () in
  {
    result;
    violations = violations @ oracle.Pdq_check.Oracle.violations;
    oracle;
    job_report;
  }

let protocol_names =
  [
    "pdq"; "pdq-basic"; "pdq-es"; "pdq-es-et"; "mpdq"; "rcp"; "d3"; "tcp";
    "pdq-broken";
  ]

let protocol_of_string ?(subflows = 3) name =
  match String.lowercase_ascii name with
  | "pdq" | "pdq-full" -> Ok (Runner.Pdq Pdq_core.Config.full)
  | "pdq-basic" -> Ok (Runner.Pdq Pdq_core.Config.basic)
  | "pdq-es" -> Ok (Runner.Pdq Pdq_core.Config.es)
  | "pdq-es-et" -> Ok (Runner.Pdq Pdq_core.Config.es_et)
  | "mpdq" | "m-pdq" -> Ok (Runner.mpdq ~subflows ())
  | "pdq-broken" -> Ok (Runner.Pdq Pdq_check.Fixtures.broken_allocator)
  | "rcp" -> Ok Runner.Rcp
  | "d3" -> Ok Runner.D3
  | "tcp" -> Ok Runner.Tcp
  | other -> unknown ~what:"protocol" ~names:protocol_names other

let workload_desc = function
  | Synthetic { pattern; flows; _ } ->
      let p =
        match pattern with
        | Aggregation -> "aggregation"
        | Stride i -> Printf.sprintf "stride(%d)" i
        | Staggered p -> Printf.sprintf "staggered(%.2g)" p
        | Random_permutation -> "permutation"
        | Random_pairs -> "pairs"
      in
      Printf.sprintf "%d %s flows" flows p
  | Explicit l -> Printf.sprintf "%d explicit flows" (List.length l)
  | Generated { label; _ } -> label
  | Jobs { pattern; count; width; depth; rate; _ } ->
      Printf.sprintf "%d %s jobs (width %d, depth %d%s)" count
        (job_pattern_name pattern) width depth
        (match rate with
        | None -> ""
        | Some r -> Printf.sprintf ", %g jobs/s" r)

(* Content hash identifying a scenario in a sweep checkpoint. Scenarios
   can embed closures (Generated workloads, Fault_gen plans), so the
   primary key marshals the whole value with [Closures] — exact, but
   only stable within one binary, which is the resume use case; across
   rebuilds a changed key merely forces a (safe) re-run. When closure
   marshaling is impossible the printable description plus the plain
   run options stands in; bespoke generators must then carry distinct
   labels. *)
let digest t =
  let bytes =
    match Marshal.to_string t [ Marshal.Closures ] with
    | s -> s
    | exception _ ->
        Marshal.to_string
          ( t.name,
            topo_name t.topo,
            Runner.protocol_name t.protocol,
            workload_desc t.workload,
            t.seed,
            t.horizon,
            t.stop_when_done,
            t.init_rtt,
            t.rto_min )
          []
  in
  Digest.to_hex (Digest.string bytes)

(* Checkpoint codec for results. Everything measurable round-trips
   bit-for-bit through Marshal of plain data; the live [ctx] is per-run
   simulator state and cannot be reconstituted, so decoded results
   carry a shared empty placeholder context (post-run inspection is
   only meaningful on freshly executed slots anyway). *)
let placeholder_ctx =
  lazy
    (let sim = Sim.create () in
     let topo = Topology.create ~sim () in
     Context.create ~sim ~topo ~rng:(Rng.create 0) ~init_rtt:2e-4 ())

let result_codec =
  let encode (r : Runner.result) =
    Marshal.to_string
      ( r.Runner.flows,
        r.Runner.application_throughput,
        r.Runner.mean_fct,
        r.Runner.completed,
        r.Runner.aborted,
        r.Runner.counters,
        r.Runner.sim_end )
      []
  and decode s =
    let ( flows,
          application_throughput,
          mean_fct,
          completed,
          aborted,
          counters,
          sim_end ) :
        Runner.flow_result array
        * float
        * float
        * int
        * int
        * (string * int) list
        * float =
      Marshal.from_string s 0
    in
    {
      Runner.flows;
      application_throughput;
      mean_fct;
      completed;
      aborted;
      counters;
      sim_end;
      ctx = Lazy.force placeholder_ctx;
    }
  in
  { Task.encode; decode }

let pp ppf t =
  Format.fprintf ppf "%s: %s on %s, %s, seed %d" t.name
    (Runner.protocol_name t.protocol)
    (topo_name t.topo) (workload_desc t.workload) t.seed
