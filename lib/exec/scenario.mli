(** First-class experiment descriptions.

    A {!t} is pure data (plus, where a driver needs a bespoke workload
    or fault schedule, a pure generator function): it names a topology
    family with its parameters, a workload, a protocol and the run
    options — but holds {e no} live simulator state. {!run} builds the
    {!Pdq_engine.Sim.t}, the topology and the flow specs internally,
    which is what makes a scenario shippable to a worker domain: a
    list of scenarios evaluated by {!Sweep.run} on [n] domains returns
    results bit-for-bit identical to evaluating them sequentially.

    This is the preferred front door for experiments;
    {!Pdq_transport.Runner.run} remains for callers that hand-build a
    topology. *)

(** {1 Topology specifications} *)

type topo =
  | Tree of { tors : int; hosts_per_tor : int }
      (** Fig. 2a single-rooted tree; the paper's default is
          [Tree {tors = 4; hosts_per_tor = 3}]. *)
  | Bottleneck of { senders : int }
      (** Fig. 2b: [senders] hosts, one switch, one receiver (the
          receiver is the last element of the built host array). *)
  | Fat_tree of { k : int }
  | Fat_tree_servers of { servers : int }
      (** Smallest even-k fat-tree with at least [servers] hosts. *)
  | Bcube of { n : int; k : int }
  | Jellyfish of {
      switches : int;
      ports : int;
      net_ports : int;
      wiring_salt : int;
    }
      (** Random regular graph, wired from
          [Rng.create (wiring_salt + seed)]; a salt of 0 ties the
          wiring directly to the scenario seed. *)

val default_tree : topo
(** [Tree {tors = 4; hosts_per_tor = 3}] — the 12-server tree. *)

val topo_name : topo -> string

val topo_names : string list
(** The CLI topology names {!topo_of_string} accepts. *)

val topo_of_string : string -> (topo, string) result
(** Parse a CLI topology name ("tree", "bottleneck", "fat-tree",
    "bcube", "jellyfish") into the evaluation's default parameters for
    that family. The error message lists the valid names. *)

(** {1 Workload specifications} *)

type sizes =
  | Uniform_paper of { mean_bytes : int }
      (** The paper's U[2 KB, 2·mean − 2 KB]. *)
  | Uniform of { lo : int; hi : int }
  | Fixed of int
  | Pareto of { tail_index : float; mean_bytes : int }
  | Vl2
  | Edu1

val size_dist : sizes -> Pdq_workload.Size_dist.t

type deadlines =
  | No_deadlines
  | Exp_deadlines of { mean : float; floor : float }
      (** Exponential with a floor, in seconds (the paper's default is
          mean 20 ms, floor 3 ms). *)

type pattern =
  | Aggregation  (** Everyone sends to the first host. *)
  | Stride of int
  | Staggered of float
  | Random_permutation
  | Random_pairs

val pattern_names : string list
(** The CLI pattern names {!pattern_of_string} accepts. *)

val pattern_of_string : string -> (pattern, string) result
(** "aggregation", "stride", "staggered", "permutation", "pairs". The
    error message lists the valid names. *)

(** {1 Application-level jobs} *)

type job_pattern =
  | Partition_aggregate
      (** [depth] rounds of request fan-out to [width] workers followed
          by response fan-in ({!Pdq_apps.Job.partition_aggregate}). *)
  | Map_reduce
      (** [depth] rounds of a [width]×[width] all-to-all shuffle
          followed by an output fan-in ({!Pdq_apps.Job.map_reduce}). *)
  | Pipeline
      (** [depth] sequential single-flow transfer stages; [width] is
          ignored ({!Pdq_apps.Job.pipeline}). *)

val job_pattern_name : job_pattern -> string

val job_pattern_names : string list
(** The CLI job-pattern names {!job_pattern_of_string} accepts. *)

val job_pattern_of_string : string -> (job_pattern, string) result
(** "partition-aggregate" (or "pa"), "map-reduce", "pipeline". The
    error message lists the valid names. *)

type workload =
  | Synthetic of {
      pattern : pattern;
      flows : int;
      sizes : sizes;
      deadlines : deadlines;
    }
      (** Pattern pairs cycled over [flows] simultaneous flows, sizes
          and deadlines drawn from one [Rng] seeded with the scenario
          seed — exactly the [pdq_sim] command-line workload. *)
  | Explicit of Pdq_transport.Context.flow_spec list
      (** Fixed flow list (host node ids must match the topology). *)
  | Generated of {
      label : string;
      specs :
        seed:int ->
        topo:Pdq_net.Topology.t ->
        hosts:int array ->
        Pdq_transport.Context.flow_spec list;
    }
      (** Bespoke generator for drivers with their own RNG recipe. The
          function must be pure (derive everything from its arguments)
          so the scenario stays shippable across domains. *)
  | Jobs of {
      pattern : job_pattern;
      count : int;  (** Number of jobs. *)
      width : int;  (** Fan-in workers / mappers per stage. *)
      depth : int;  (** Rounds (or pipeline depth). *)
      sizes : sizes;  (** Response / shuffle flow sizes. *)
      deadlines : deadlines;
          (** Per-{e job} deadline draw; each job's deadline is split
              into stage and per-flow deadlines by
              {!Pdq_apps.Job.stage_deadlines} (the [Exp_deadlines]
              floor also clips the stage slices). *)
      rate : float option;
          (** Poisson job-arrival rate in jobs/s; [None] = all jobs
              arrive at t = 0. *)
    }
      (** Application-level jobs ({!Pdq_apps}): [count] jobs compiled
          to {!Pdq_apps.Job_plan.t}s at build time — hosts, sizes,
          arrivals and deadlines all drawn from one [Rng] seeded with
          the scenario seed — then executed at runtime by a
          {!Pdq_apps.Job_tracker} that injects each stage the moment
          its dependencies finish. Use {!run_jobs} (or {!run_checked})
          to get the job-level report. *)

(** {1 Fault and loss specifications} *)

type faults =
  | No_faults
  | Flaps_and_reboots of {
      flap_mtbf : float option;
      flap_mttr : float;
      reboot_mtbf : float option;
      until : float;
    }
      (** Memoryless link flapping on switch-switch cables and/or
          switch crash-reboots, seeded from the scenario seed (the
          [pdq_sim] fault flags). *)
  | Fault_gen of {
      label : string;
      plan : seed:int -> Pdq_topo.Builder.built -> Pdq_faults.Fault_plan.t;
    }  (** Bespoke pure plan generator. *)

type loss =
  | No_loss
  | Loss_on_links of { rate : float; links : int list }
      (** Bernoulli loss on the given directed link ids. *)
  | Loss_on_bottleneck of float
      (** Both directions of the switch↔receiver cable of a
          {!Bottleneck} topology (Fig. 9). *)

(** {1 Scenarios} *)

type t = {
  name : string;
  topo : topo;
  protocol : Pdq_transport.Runner.protocol;
  workload : workload;
  seed : int;
  horizon : float;
  stop_when_done : bool;
  loss : loss;
  faults : faults;
  init_rtt : float;
  rto_min : float;
}

val make :
  ?name:string ->
  ?topo:topo ->
  ?seed:int ->
  ?horizon:float ->
  ?stop_when_done:bool ->
  ?loss:loss ->
  ?faults:faults ->
  ?init_rtt:float ->
  ?rto_min:float ->
  workload:workload ->
  Pdq_transport.Runner.protocol ->
  t
(** Defaults mirror {!Pdq_transport.Runner.default_options}: seed 1,
    horizon 10 s, stop-when-done, no loss, no faults, 200 µs initial
    RTT, 1 ms RTOmin; topology {!default_tree}. [name] defaults to
    ["<protocol> on <topo>"]. *)

val with_seed : t -> int -> t
(** The same scenario under a different seed (the unit of a
    seed-averaging sweep). *)

val build :
  t ->
  Pdq_topo.Builder.built
  * Pdq_transport.Context.flow_spec list
  * Pdq_transport.Runner.options
(** Materialize the scenario: construct the simulator + topology,
    expand the workload and resolve loss/fault specs into runner
    options (no telemetry attached). For a {!Jobs} workload the specs
    are only the initially runnable stages and the options carry the
    {!Pdq_apps.Job_tracker} driver that injects the rest. Exposed for
    tests and inspection; {!run} is [Runner.run] applied to this. *)

val build_ext :
  t ->
  Pdq_topo.Builder.built
  * Pdq_transport.Context.flow_spec list
  * Pdq_transport.Runner.options
  * Pdq_apps.Job_tracker.t option ref
(** {!build}, plus the cell the job driver fills with its tracker when
    the runner installs it (always [None] before the run starts, and
    for every non-{!Jobs} workload). For callers that execute the run
    themselves but still want {!Pdq_apps.Job_tracker.report}. *)

val run :
  ?opts:Exec_opts.t ->
  ?prepare:(Pdq_topo.Builder.built -> unit) ->
  t ->
  Pdq_transport.Runner.result
(** Build and simulate. Deterministic: same scenario (and telemetry
    sinks, which never perturb a run) ⇒ bit-for-bit identical result,
    on any domain. [opts] carries the run-time knobs ({!Exec_opts}):
    [telemetry] is passed here, not stored in the scenario, because
    sinks (channels, memory rings) are per-run mutable state; a
    non-empty [budget] bounds the run ([Sim.Cancelled] on a trip); the
    [jobs] field is meaningless for a single run and ignored.
    [prepare] runs after the topology is built and before execution —
    the sanctioned hook for layers that interpose on the fresh links
    (the chaos adversary); like telemetry it is per-run state and not
    part of the scenario's digest. *)

val run_jobs :
  ?opts:Exec_opts.t ->
  ?prepare:(Pdq_topo.Builder.built -> unit) ->
  t ->
  Pdq_transport.Runner.result * Pdq_apps.Job_metrics.report
(** {!run}, also returning the job-level report. The result is
    bit-for-bit the one {!run} returns (the tracker only observes the
    bus and replays the plan; it consumes no randomness). On a
    non-{!Jobs} workload the report is empty. *)

type checked = {
  result : Pdq_transport.Runner.result;
  violations : Pdq_check.Report.violation list;
      (** All invariant and per-flow oracle violations, time-sorted
          (empty = the run validated). *)
  oracle : Pdq_check.Oracle.t;
      (** Per-flow bounds and the centralized EDF/SJF references
          (emulation gap). *)
  job_report : Pdq_apps.Job_metrics.report option;
      (** Job-level outcomes, present exactly when the workload is
          {!Jobs}. *)
}

val run_checked :
  ?opts:Exec_opts.t ->
  ?es_window:float ->
  ?capacity_slack:float ->
  ?prepare:(Pdq_topo.Builder.built -> unit) ->
  t ->
  checked
(** {!run} with the validation subsystem attached: a
    {!Pdq_check.Invariants} monitor rides the trace bus and the
    per-port probe, and the finished run is checked against the
    {!Pdq_check.Oracle} bounds. Monitoring only observes — the
    [result] is bit-for-bit the one {!run} returns. The [opts]
    telemetry is composed with (not replaced by) the monitor's sinks;
    its [metrics_every] field also sets the port-probe grid. *)

val digest : t -> string
(** Content hash of the scenario (seed included) keying its slot in a
    sweep checkpoint file. Exact — it covers closures via
    [Marshal.Closures] — but stable only within one binary; after a
    rebuild a changed key just forces a safe re-run of that slot. *)

val result_codec : Pdq_transport.Runner.result Task.codec
(** Checkpoint serialization for run results. Round-trips every
    measurable field (flows, FCTs, throughput, counters, [sim_end])
    bit-for-bit; the live [ctx] is not serializable, so decoded
    results share an empty placeholder context. *)

val protocol_names : string list
(** The CLI protocol names {!protocol_of_string} accepts. *)

val protocol_of_string :
  ?subflows:int -> string -> (Pdq_transport.Runner.protocol, string) result
(** "pdq", "pdq-basic", "pdq-es", "pdq-es-et", "mpdq" (with
    [subflows], default 3), "rcp", "d3", "tcp" — plus "pdq-broken",
    the {!Pdq_check.Fixtures.broken_allocator} used to validate the
    validators. The error message lists the valid names. *)

val pp : Format.formatter -> t -> unit
(** One-line human description. *)
