(** First-class experiment descriptions.

    A {!t} is pure data (plus, where a driver needs a bespoke workload
    or fault schedule, a pure generator function): it names a topology
    family with its parameters, a workload, a protocol and the run
    options — but holds {e no} live simulator state. {!run} builds the
    {!Pdq_engine.Sim.t}, the topology and the flow specs internally,
    which is what makes a scenario shippable to a worker domain: a
    list of scenarios evaluated by {!Sweep.run} on [n] domains returns
    results bit-for-bit identical to evaluating them sequentially.

    This is the preferred front door for experiments;
    {!Pdq_transport.Runner.run} remains for callers that hand-build a
    topology. *)

(** {1 Topology specifications} *)

type topo =
  | Tree of { tors : int; hosts_per_tor : int }
      (** Fig. 2a single-rooted tree; the paper's default is
          [Tree {tors = 4; hosts_per_tor = 3}]. *)
  | Bottleneck of { senders : int }
      (** Fig. 2b: [senders] hosts, one switch, one receiver (the
          receiver is the last element of the built host array). *)
  | Fat_tree of { k : int }
  | Fat_tree_servers of { servers : int }
      (** Smallest even-k fat-tree with at least [servers] hosts. *)
  | Bcube of { n : int; k : int }
  | Jellyfish of {
      switches : int;
      ports : int;
      net_ports : int;
      wiring_salt : int;
    }
      (** Random regular graph, wired from
          [Rng.create (wiring_salt + seed)]; a salt of 0 ties the
          wiring directly to the scenario seed. *)

val default_tree : topo
(** [Tree {tors = 4; hosts_per_tor = 3}] — the 12-server tree. *)

val topo_name : topo -> string

val topo_of_string : string -> (topo, string) result
(** Parse a CLI topology name ("tree", "bottleneck", "fat-tree",
    "bcube", "jellyfish") into the evaluation's default parameters for
    that family. *)

(** {1 Workload specifications} *)

type sizes =
  | Uniform_paper of { mean_bytes : int }
      (** The paper's U[2 KB, 2·mean − 2 KB]. *)
  | Uniform of { lo : int; hi : int }
  | Fixed of int
  | Pareto of { tail_index : float; mean_bytes : int }
  | Vl2
  | Edu1

val size_dist : sizes -> Pdq_workload.Size_dist.t

type deadlines =
  | No_deadlines
  | Exp_deadlines of { mean : float; floor : float }
      (** Exponential with a floor, in seconds (the paper's default is
          mean 20 ms, floor 3 ms). *)

type pattern =
  | Aggregation  (** Everyone sends to the first host. *)
  | Stride of int
  | Staggered of float
  | Random_permutation
  | Random_pairs

val pattern_of_string : string -> (pattern, string) result
(** "aggregation", "stride", "staggered", "permutation", "pairs". *)

type workload =
  | Synthetic of {
      pattern : pattern;
      flows : int;
      sizes : sizes;
      deadlines : deadlines;
    }
      (** Pattern pairs cycled over [flows] simultaneous flows, sizes
          and deadlines drawn from one [Rng] seeded with the scenario
          seed — exactly the [pdq_sim] command-line workload. *)
  | Explicit of Pdq_transport.Context.flow_spec list
      (** Fixed flow list (host node ids must match the topology). *)
  | Generated of {
      label : string;
      specs :
        seed:int ->
        topo:Pdq_net.Topology.t ->
        hosts:int array ->
        Pdq_transport.Context.flow_spec list;
    }
      (** Bespoke generator for drivers with their own RNG recipe. The
          function must be pure (derive everything from its arguments)
          so the scenario stays shippable across domains. *)

(** {1 Fault and loss specifications} *)

type faults =
  | No_faults
  | Flaps_and_reboots of {
      flap_mtbf : float option;
      flap_mttr : float;
      reboot_mtbf : float option;
      until : float;
    }
      (** Memoryless link flapping on switch-switch cables and/or
          switch crash-reboots, seeded from the scenario seed (the
          [pdq_sim] fault flags). *)
  | Fault_gen of {
      label : string;
      plan : seed:int -> Pdq_topo.Builder.built -> Pdq_faults.Fault_plan.t;
    }  (** Bespoke pure plan generator. *)

type loss =
  | No_loss
  | Loss_on_links of { rate : float; links : int list }
      (** Bernoulli loss on the given directed link ids. *)
  | Loss_on_bottleneck of float
      (** Both directions of the switch↔receiver cable of a
          {!Bottleneck} topology (Fig. 9). *)

(** {1 Scenarios} *)

type t = {
  name : string;
  topo : topo;
  protocol : Pdq_transport.Runner.protocol;
  workload : workload;
  seed : int;
  horizon : float;
  stop_when_done : bool;
  loss : loss;
  faults : faults;
  init_rtt : float;
  rto_min : float;
}

val make :
  ?name:string ->
  ?topo:topo ->
  ?seed:int ->
  ?horizon:float ->
  ?stop_when_done:bool ->
  ?loss:loss ->
  ?faults:faults ->
  ?init_rtt:float ->
  ?rto_min:float ->
  workload:workload ->
  Pdq_transport.Runner.protocol ->
  t
(** Defaults mirror {!Pdq_transport.Runner.default_options}: seed 1,
    horizon 10 s, stop-when-done, no loss, no faults, 200 µs initial
    RTT, 1 ms RTOmin; topology {!default_tree}. [name] defaults to
    ["<protocol> on <topo>"]. *)

val with_seed : t -> int -> t
(** The same scenario under a different seed (the unit of a
    seed-averaging sweep). *)

val build :
  t ->
  Pdq_topo.Builder.built
  * Pdq_transport.Context.flow_spec list
  * Pdq_transport.Runner.options
(** Materialize the scenario: construct the simulator + topology,
    expand the workload and resolve loss/fault specs into runner
    options (no telemetry attached). Exposed for tests and
    inspection; {!run} is [Runner.run] applied to this. *)

val run : ?opts:Exec_opts.t -> t -> Pdq_transport.Runner.result
(** Build and simulate. Deterministic: same scenario (and telemetry
    sinks, which never perturb a run) ⇒ bit-for-bit identical result,
    on any domain. [opts] carries the run-time knobs ({!Exec_opts}):
    [telemetry] is passed here, not stored in the scenario, because
    sinks (channels, memory rings) are per-run mutable state; a
    non-empty [budget] bounds the run ([Sim.Cancelled] on a trip); the
    [jobs] field is meaningless for a single run and ignored. *)

type checked = {
  result : Pdq_transport.Runner.result;
  violations : Pdq_check.Report.violation list;
      (** All invariant and per-flow oracle violations, time-sorted
          (empty = the run validated). *)
  oracle : Pdq_check.Oracle.t;
      (** Per-flow bounds and the centralized EDF/SJF references
          (emulation gap). *)
}

val run_checked :
  ?opts:Exec_opts.t ->
  ?es_window:float ->
  ?capacity_slack:float ->
  t ->
  checked
(** {!run} with the validation subsystem attached: a
    {!Pdq_check.Invariants} monitor rides the trace bus and the
    per-port probe, and the finished run is checked against the
    {!Pdq_check.Oracle} bounds. Monitoring only observes — the
    [result] is bit-for-bit the one {!run} returns. The [opts]
    telemetry is composed with (not replaced by) the monitor's sinks;
    its [metrics_every] field also sets the port-probe grid. *)

val digest : t -> string
(** Content hash of the scenario (seed included) keying its slot in a
    sweep checkpoint file. Exact — it covers closures via
    [Marshal.Closures] — but stable only within one binary; after a
    rebuild a changed key just forces a safe re-run of that slot. *)

val result_codec : Pdq_transport.Runner.result Task.codec
(** Checkpoint serialization for run results. Round-trips every
    measurable field (flows, FCTs, throughput, counters, [sim_end])
    bit-for-bit; the live [ctx] is not serializable, so decoded
    results share an empty placeholder context. *)

val protocol_of_string :
  ?subflows:int -> string -> (Pdq_transport.Runner.protocol, string) result
(** "pdq", "pdq-basic", "pdq-es", "pdq-es-et", "mpdq" (with
    [subflows], default 3), "rcp", "d3", "tcp" — plus "pdq-broken",
    the {!Pdq_check.Fixtures.broken_allocator} used to validate the
    validators. *)

val pp : Format.formatter -> t -> unit
(** One-line human description. *)
