module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Trace = Pdq_telemetry.Trace

exception Sweep_errors of (int * exn) list

let () =
  Printexc.register_printer (function
    | Sweep_errors errs ->
        Some
          (Printf.sprintf "Pdq_exec.Sweep.Sweep_errors([%s])"
             (String.concat "; "
                (List.map
                   (fun (i, e) ->
                     Printf.sprintf "%d: %s" i (Printexc.to_string e))
                   errs)))
    | _ -> None)

let default_jobs () =
  match Sys.getenv_opt "PDQ_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j -> max 1 j
      | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Budgets: the machinery lives in [Exec_opts] (shared with single
   runs); re-exported here under the historical names. *)

type budget = Exec_opts.budget = {
  wall : float option;
  events : int option;
  live : int option;
  check_every : int;
}

let no_budget = Exec_opts.no_budget
let budget = Exec_opts.budget
let budget_is_empty = Exec_opts.budget_is_empty
let with_budget_from = Exec_opts.with_budget_from
let with_budget = Exec_opts.with_budget

(* ------------------------------------------------------------------ *)
(* Plain map (kept simple: first-error semantics replaced by an
   aggregate Sweep_errors; the supervised executor below adds budgets,
   retries and checkpointing on top of the same claiming loop). *)

let map ?jobs ?(budget = no_budget) f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let f x =
    if budget_is_empty budget then f x
    else with_budget_from budget ~start:(Unix.gettimeofday ()) (fun () -> f x)
  in
  let n = List.length xs in
  let raise_errors errors =
    match List.filter_map Fun.id errors with
    | [] -> ()
    | errs -> raise (Sweep_errors errs)
  in
  if jobs <= 1 || n <= 1 then begin
    (* Sequential path with the same aggregate error contract as the
       parallel one: every failing index is reported, not just the
       first. *)
    let results = Array.make n None in
    let errors =
      List.mapi
        (fun i x ->
          match f x with
          | r ->
              results.(i) <- Some r;
              None
          | exception e -> Some (i, e))
        xs
    in
    raise_errors errors;
    Array.to_list results |> List.map Option.get
  end
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f inputs.(i) with
        | r -> results.(i) <- Some r
        | exception e -> errors.(i) <- Some (i, e));
        worker ()
      end
    in
    let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    raise_errors (Array.to_list errors);
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* no error ⇒ every slot was filled *))
  end

(* The sweep entry points take the unified [Exec_opts.t]; note that a
   sweep honours [jobs] and [budget] but ignores [telemetry] — sinks
   are per-run mutable state (see the .mli caveat). *)
let run ?(opts = Exec_opts.default) scenarios =
  map ?jobs:opts.Exec_opts.jobs ~budget:opts.Exec_opts.budget
    (fun s -> Scenario.run s)
    scenarios

let average ?jobs ?budget ~seeds f =
  match seeds with
  | [] -> invalid_arg "Sweep.average: no seeds"
  | _ ->
      let vs = map ?jobs ?budget f seeds in
      List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)

(* ------------------------------------------------------------------ *)
(* Retry policy *)

type retry = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  transient : exn -> bool;
}

let no_retry =
  { attempts = 1; base_delay = 0.05; max_delay = 2.; transient = (fun _ -> true) }

let retry ?(attempts = 1) ?(base_delay = 0.05) ?(max_delay = 2.)
    ?(transient = fun _ -> true) () =
  { attempts = max 1 attempts; base_delay; max_delay; transient }

(* Jittered exponential backoff, deterministically seeded per (slot,
   attempt) so retry schedules do not depend on the worker count. *)
let backoff_delay retry ~index ~attempt =
  let exp = retry.base_delay *. (2. ** float_of_int (attempt - 1)) in
  let capped = Float.min retry.max_delay exp in
  let rng = Rng.create (0xB0FF + (index * 7919) + attempt) in
  capped *. (0.5 +. Rng.float rng)

(* ------------------------------------------------------------------ *)
(* Supervisor telemetry *)

type event =
  | Slot_ok of {
      index : int;
      key : string;
      attempts : int;
      elapsed : float;
      resumed : bool;
    }
  | Slot_failed of { index : int; key : string; failure : Task.failure }
  | Slot_timed_out of { index : int; key : string; timeout : Task.timeout }
  | Slot_retry of {
      index : int;
      key : string;
      attempt : int;
      delay : float;
      exn : string;
    }
  | Worker_crashed of { worker : int; index : int option; exn : string }
  | Worker_respawned of { worker : int }

let emit_trace bus ev =
  if Trace.active bus then
    Trace.emit bus
      (match ev with
      | Slot_ok { index; key; attempts; elapsed; resumed } ->
          Trace.Sweep_task
            {
              index;
              key;
              state = (if resumed then "resumed" else "ok");
              attempts;
              elapsed;
              detail = "";
            }
      | Slot_failed { index; key; failure } ->
          Trace.Sweep_task
            {
              index;
              key;
              state = "failed";
              attempts = failure.Task.attempts;
              elapsed = failure.Task.elapsed;
              detail = failure.Task.exn;
            }
      | Slot_timed_out { index; key; timeout } ->
          Trace.Sweep_task
            {
              index;
              key;
              state = "timed-out";
              attempts = timeout.Task.attempts;
              elapsed = timeout.Task.elapsed;
              detail = timeout.Task.budget;
            }
      | Slot_retry { index; key; attempt; delay; exn } ->
          Trace.Sweep_task
            {
              index;
              key;
              state = "retry";
              attempts = attempt;
              elapsed = delay;
              detail = exn;
            }
      | Worker_crashed { worker; index; exn } ->
          Trace.Sweep_task
            {
              index = Option.value ~default:(-1) index;
              key = Printf.sprintf "worker:%d" worker;
              state = "crashed";
              attempts = 0;
              elapsed = 0.;
              detail = exn;
            }
      | Worker_respawned { worker } ->
          Trace.Sweep_task
            {
              index = -1;
              key = Printf.sprintf "worker:%d" worker;
              state = "respawned";
              attempts = 0;
              elapsed = 0.;
              detail = "";
            })

(* ------------------------------------------------------------------ *)
(* Resilience report *)

type report = {
  total : int;
  ok : int;
  resumed : int;
  stale : int;
  failed : int;
  timed_out : int;
  skipped : int;
  attempts : int;
  wall : float;
  slots : (int * string) list;
  notes : (int * string) list;
}

let with_notes r ~notes =
  { r with notes = List.sort (fun (a, _) (b, _) -> compare a b) notes }

let report_of ~resumed ~stale ~attempts ~wall tasks =
  let count p = List.length (List.filter p tasks) in
  {
    total = List.length tasks;
    ok = count Task.is_ok;
    resumed;
    stale;
    failed = count (function Task.Failed _ -> true | _ -> false);
    timed_out = count (function Task.Timed_out _ -> true | _ -> false);
    skipped = count (function Task.Skipped -> true | _ -> false);
    attempts;
    wall;
    slots =
      List.mapi (fun i t -> (i, t)) tasks
      |> List.filter (fun (_, t) -> not (Task.is_ok t))
      |> List.map (fun (i, t) -> (i, Format.asprintf "%a" Task.pp t));
    notes = [];
  }

(* Deterministic: counts and per-slot causes only — wall-clock numbers
   stay out of the pretty report so sweep stdout is reproducible (they
   are in the JSON report for machines). *)
let pp_report ppf r =
  Format.fprintf ppf "sweep: %d/%d ok%s, %d failed, %d timed-out, %d skipped@."
    r.ok r.total
    (if r.resumed > 0 then Printf.sprintf " (%d resumed)" r.resumed else "")
    r.failed r.timed_out r.skipped;
  if r.stale > 0 then
    Format.fprintf ppf
      "  warning: %d checkpoint entr%s matched no scenario digest (stale \
       checkpoint — inputs changed since it was written)@."
      r.stale
      (if r.stale = 1 then "y" else "ies");
  List.iter
    (fun (i, cause) -> Format.fprintf ppf "  slot %d: %s@." i cause)
    r.slots;
  List.iter
    (fun (i, note) -> Format.fprintf ppf "  slot %d note: %s@." i note)
    r.notes

let report_to_json r =
  let tagged tag (i, text) =
    Printf.sprintf "{\"slot\":%d,\"%s\":\"%s\"}" i tag
      (String.concat ""
         (List.map
            (function
              | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
              | c when Char.code c < 0x20 ->
                  Printf.sprintf "\\u%04x" (Char.code c)
              | c -> String.make 1 c)
            (List.init (String.length text) (String.get text))))
  in
  Printf.sprintf
    "{\"total\":%d,\"ok\":%d,\"resumed\":%d,\"stale\":%d,\"failed\":%d,\
     \"timed_out\":%d,\"skipped\":%d,\"attempts\":%d,\"wall\":%.3f,\
     \"slots\":[%s],\"notes\":[%s]}"
    r.total r.ok r.resumed r.stale r.failed r.timed_out r.skipped r.attempts
    r.wall
    (String.concat "," (List.map (tagged "cause") r.slots))
    (String.concat "," (List.map (tagged "note") r.notes))

(* ------------------------------------------------------------------ *)
(* Checkpoint file: one JSONL line per Ok slot, keyed by the content
   hash of the input. Values are hex so no JSON escaping is needed and
   a torn final line (kill -9 mid-write) simply fails to parse. *)

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex s =
  if String.length s mod 2 <> 0 then invalid_arg "unhex: odd length";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let json_str_field line name =
  let pat = Printf.sprintf "\"%s\":\"" name in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let checkpoint_line ~key ~index ~value =
  Printf.sprintf "{\"k\":\"%s\",\"n\":%d,\"v\":\"%s\"}" key index (hex value)

let parse_checkpoint_line line =
  match (json_str_field line "k", json_str_field line "v") with
  | Some k, Some v -> ( try Some (k, unhex v) with _ -> None)
  | _ -> None

let load_checkpoint path =
  let tbl = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in path in
    (try
       while true do
         match parse_checkpoint_line (input_line ic) with
         | Some (k, v) -> Hashtbl.replace tbl k v
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic
  end;
  tbl

(* ------------------------------------------------------------------ *)
(* The supervised executor *)

type 'b supervised = { tasks : 'b Task.t list; report : report }

let supervise ?(opts = Exec_opts.default) ?(retry = no_retry)
    ?(keep_going = true) ?checkpoint ?resume ?codec ?on_event ~key f xs =
  let budget = opts.Exec_opts.budget in
  let jobs =
    match opts.Exec_opts.jobs with Some j -> j | None -> default_jobs ()
  in
  let n = List.length xs in
  let inputs = Array.of_list xs in
  let keys = Array.map key inputs in
  let slots : 'b Task.t option array = Array.make n None in
  let stop = Atomic.make false in
  let next = Atomic.make 0 in
  let attempts_run = Atomic.make 0 in
  let sweep_start = Unix.gettimeofday () in
  (* Serializes event callbacks and checkpoint appends across worker
     domains. *)
  let io_lock = Mutex.create () in
  let locked fn =
    Mutex.lock io_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock io_lock) fn
  in
  let emit ev =
    match on_event with Some g -> locked (fun () -> g ev) | None -> ()
  in
  let codec_or_fail what =
    match codec with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Sweep.supervise: %s requires ~codec" what)
  in
  (* Resume: settle every slot whose key has a decodable value in the
     checkpoint before any worker starts. *)
  let resumed = ref 0 and stale = ref 0 in
  (match resume with
  | None -> ()
  | Some path ->
      let codec = codec_or_fail "~resume" in
      let tbl = load_checkpoint path in
      Array.iteri
        (fun i k ->
          match Hashtbl.find_opt tbl k with
          | None -> ()
          | Some v -> (
              match codec.Task.decode v with
              | r ->
                  slots.(i) <- Some (Task.Ok r);
                  incr resumed;
                  emit
                    (Slot_ok
                       { index = i; key = k; attempts = 0; elapsed = 0.;
                         resumed = true })
              | exception _ -> ()))
        keys;
      (* Checkpoint entries whose digest matches no slot: the inputs
         changed since the checkpoint was written (edited scenario,
         different seed grid, rebuilt binary re-keying closures). Those
         slots silently re-execute — correct but expensive — so say so
         loudly instead of looking like a quiet full re-run. *)
      let wanted = Hashtbl.create (Array.length keys) in
      Array.iter (fun k -> Hashtbl.replace wanted k ()) keys;
      Hashtbl.iter
        (fun k _ -> if not (Hashtbl.mem wanted k) then incr stale)
        tbl;
      if !stale > 0 then
        Printf.eprintf
          "sweep: warning: %d of %d checkpoint entr%s in %s match no \
           scenario digest; those inputs changed and will re-execute from \
           scratch\n%!"
          !stale (Hashtbl.length tbl)
          (if !stale = 1 then "y" else "ies")
          path);
  let ckpt_chan =
    match checkpoint with
    | None -> None
    | Some path ->
        let _ = codec_or_fail "~checkpoint" in
        Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
  in
  let write_checkpoint i r =
    match (ckpt_chan, codec) with
    | Some oc, Some c ->
        locked (fun () ->
            output_string oc
              (checkpoint_line ~key:keys.(i) ~index:i ~value:(c.Task.encode r));
            output_char oc '\n';
            flush oc)
    | _ -> ()
  in
  let settle i task =
    slots.(i) <- Some task;
    match task with
    | Task.Ok _ | Task.Skipped -> ()
    | Task.Failed _ | Task.Timed_out _ ->
        if not keep_going then Atomic.set stop true
  in
  let attempt_slot i =
    let t0 = Unix.gettimeofday () in
    let rec go attempt =
      Atomic.incr attempts_run;
      let att_start = Unix.gettimeofday () in
      match with_budget_from budget ~start:att_start (fun () -> f inputs.(i)) with
      | r ->
          settle i (Task.Ok r);
          write_checkpoint i r;
          emit
            (Slot_ok
               {
                 index = i;
                 key = keys.(i);
                 attempts = attempt;
                 elapsed = Unix.gettimeofday () -. t0;
                 resumed = false;
               })
      | exception Sim.Cancelled { reason; _ } ->
          (* Budgets trip deterministically for a given input; retrying
             a timed-out slot would just burn the budget again. *)
          let timeout =
            {
              Task.budget = reason;
              attempts = attempt;
              elapsed = Unix.gettimeofday () -. t0;
            }
          in
          settle i (Task.Timed_out timeout);
          emit (Slot_timed_out { index = i; key = keys.(i); timeout })
      | exception e ->
          let backtrace = Printexc.get_backtrace () in
          if attempt < retry.attempts && retry.transient e then begin
            let delay = backoff_delay retry ~index:i ~attempt in
            emit
              (Slot_retry
                 {
                   index = i;
                   key = keys.(i);
                   attempt;
                   delay;
                   exn = Printexc.to_string e;
                 });
            Unix.sleepf delay;
            go (attempt + 1)
          end
          else begin
            let failure =
              {
                Task.exn = Printexc.to_string e;
                backtrace;
                attempts = attempt;
                elapsed = Unix.gettimeofday () -. t0;
              }
            in
            settle i (Task.Failed failure);
            emit (Slot_failed { index = i; key = keys.(i); failure })
          end
    in
    go 1
  in
  (* Work-stealing claim loop, as in [map]; [claimed] publishes the
     in-flight index of each worker so the supervisor can settle the
     slot of a crashed domain. *)
  let claimed = Array.init jobs (fun _ -> Atomic.make (-1)) in
  let worker w () =
    let rec loop () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Atomic.set claimed.(w) i;
          if Option.is_none slots.(i) then attempt_slot i;
          Atomic.set claimed.(w) (-1);
          loop ()
        end
      end
    in
    loop ()
  in
  (if jobs <= 1 || n <= 1 then worker 0 ()
   else begin
     let workers = min jobs n in
     let pool =
       ref (List.init workers (fun w -> (w, Domain.spawn (worker w))))
     in
     (* Supervision loop: join every worker; a domain that died outside
        the per-attempt catch (I/O error in a sink, resource
        exhaustion in the runtime) has its claimed slot settled as
        Failed, and a fresh domain replaces it while work remains. *)
     while !pool <> [] do
       let (w, d), rest =
         match !pool with x :: tl -> (x, tl) | [] -> assert false
       in
       pool := rest;
       match Domain.join d with
       | () -> ()
       | exception e ->
           let i =
             match Atomic.get claimed.(w) with -1 -> None | i -> Some i
           in
           emit
             (Worker_crashed { worker = w; index = i; exn = Printexc.to_string e });
           (match i with
           | Some i when Option.is_none slots.(i) ->
               let failure =
                 {
                   Task.exn = Printexc.to_string e;
                   backtrace = "";
                   attempts = 1;
                   elapsed = 0.;
                 }
               in
               settle i (Task.Failed failure);
               emit (Slot_failed { index = i; key = keys.(i); failure })
           | _ -> ());
           Atomic.set claimed.(w) (-1);
           if Atomic.get next < n && not (Atomic.get stop) then begin
             emit (Worker_respawned { worker = w });
             pool := (w, Domain.spawn (worker w)) :: !pool
           end
     done
   end);
  Option.iter close_out ckpt_chan;
  let tasks =
    Array.to_list
      (Array.map (function Some t -> t | None -> Task.Skipped) slots)
  in
  let report =
    report_of ~resumed:!resumed ~stale:!stale ~attempts:(Atomic.get attempts_run)
      ~wall:(Unix.gettimeofday () -. sweep_start)
      tasks
  in
  { tasks; report }

let run_supervised ?opts ?retry ?keep_going ?checkpoint ?resume ?on_event
    scenarios =
  supervise ?opts ?retry ?keep_going ?checkpoint ?resume
    ~codec:Scenario.result_codec ?on_event ~key:Scenario.digest
    (fun s -> Scenario.run s)
    scenarios
