let default_jobs () = Domain.recommended_domain_count ()

(* Work-stealing over an index counter: each worker claims the next
   unclaimed index and writes its result into a per-index slot, so the
   output order is the input order no matter which domain ran what. *)
let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f inputs.(i) with
        | r -> results.(i) <- Some r
        | exception e -> errors.(i) <- Some e);
        worker ()
      end
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* no error ⇒ every slot was filled *))
  end

let run ?jobs scenarios = map ?jobs (fun s -> Scenario.run s) scenarios

let average ?jobs ~seeds f =
  match seeds with
  | [] -> invalid_arg "Sweep.average: no seeds"
  | _ ->
      let vs = map ?jobs f seeds in
      List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
