(** Multicore sweep executor.

    Evaluates a list of independent jobs — typically {!Scenario.run}
    over a scenario list — on a pool of OCaml 5 domains. Jobs are
    pulled from a shared queue by [jobs] workers (the calling domain
    is one of them); results come back {e in input order} and, because
    every scenario run is self-contained (fresh simulator, seeded RNG,
    domain-sharded profiler), they are bit-for-bit identical to
    sequential evaluation.

    Two execution regimes share that claiming loop:

    - {!map} / {!run} / {!average} — all-or-nothing: any failure
      aborts the sweep with {!Sweep_errors} after all workers drain.
    - {!supervise} / {!run_supervised} — fault-tolerant: every slot
      settles as a {!Task.t} (keep-going), per-attempt budgets cancel
      runaway simulations cooperatively, transient failures retry with
      jittered exponential backoff, completed slots stream to a JSONL
      checkpoint, and an interrupted sweep resumes re-running only the
      missing slots.

    Telemetry caveat: sweeps run scenarios without trace sinks or
    metrics registries — sinks are per-run mutable state and channels
    would interleave across domains. Attach telemetry to a single
    {!Scenario.run} instead; the supervisor has its own wall-clock
    event stream ({!event}, bridged to a trace bus by {!emit_trace}).
    The global profiler may stay enabled during a sweep (shards merge
    in its report); call {!Pdq_engine.Profiler.reset} only between
    sweeps. *)

exception Sweep_errors of (int * exn) list
(** Raised by {!map} (and {!run} / {!average}) after all workers have
    drained, listing {e every} failing input index with its exception,
    in input order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], unless the [PDQ_JOBS]
    environment variable names a positive integer — the process-wide
    parallelism pin for CI and bench (clamped to [>= 1]). *)

(** {1 Run budgets}

    The budget machinery lives in {!Exec_opts} (it is shared with
    single {!Scenario.run}s); these are re-exports under the
    historical names, so existing [Sweep.budget ...] callers keep
    working. *)

type budget = Exec_opts.budget = {
  wall : float option;   (** Wall-clock seconds per attempt. *)
  events : int option;   (** Simulator events executed per attempt. *)
  live : int option;     (** Ceiling on live queued events (heap
                             blow-up guard). *)
  check_every : int;     (** Cooperative check period, in events. *)
}
(** See {!Exec_opts.budget}. *)

val no_budget : budget

val budget :
  ?wall:float -> ?events:int -> ?live:int -> ?check_every:int -> unit -> budget
(** [check_every] defaults to 1024. *)

val with_budget : budget -> (unit -> 'a) -> 'a
(** {!Exec_opts.with_budget}: installs the budget as the calling
    domain's default cancellation hook for the duration of the thunk.
    Used by the CLI to give single runs the same [--timeout] semantics
    as supervised sweeps. *)

(** {1 Retry policy} *)

type retry = {
  attempts : int;            (** Max attempts per slot ([>= 1]; 1 =
                                 no retry). *)
  base_delay : float;        (** Backoff base, seconds. *)
  max_delay : float;         (** Backoff cap, seconds. *)
  transient : exn -> bool;   (** Only matching failures are retried
                                 (timeouts never are — budgets trip
                                 deterministically). *)
}

val no_retry : retry
(** Single attempt. *)

val retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?transient:(exn -> bool) ->
  unit ->
  retry
(** Defaults: 1 attempt, 50 ms base, 2 s cap, every exception
    transient. The backoff delay for attempt [k] is
    [min max_delay (base_delay * 2^(k-1))] jittered by a factor in
    [\[0.5, 1.5)] drawn from an RNG seeded by (slot, attempt) — the
    schedule is deterministic and independent of the worker count. *)

(** {1 All-or-nothing execution} *)

val map : ?jobs:int -> ?budget:budget -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] evaluates [f] over [xs] on [min jobs (length xs)]
    domains and returns the results in input order. [jobs] defaults to
    {!default_jobs}; [jobs <= 1] degrades to a sequential loop (no
    domain is spawned). If any [f x] raises, {!Sweep_errors} with
    every failing index is raised after all workers have drained — one
    bad slot no longer hides the others' diagnoses, but partial
    results are still discarded (use {!supervise} to keep them). An
    optional [budget] bounds each evaluation; a tripped budget raises
    [Sim.Cancelled] for that index, reported through {!Sweep_errors}
    like any other failure. *)

val run :
  ?opts:Exec_opts.t -> Scenario.t list -> Pdq_transport.Runner.result list
(** [map Scenario.run] with {!Exec_opts} carrying the worker count and
    per-run budget. The [telemetry] field is ignored — sweeps are
    telemetry-free (see the caveat above). *)

val average :
  ?jobs:int -> ?budget:budget -> seeds:int list -> (int -> float) -> float
(** [average ~seeds f] is the arithmetic mean of [f seed] over
    [seeds], evaluated in parallel. The summation order is the input
    order, so the result is bit-for-bit independent of [jobs]. The
    single seed-averaging loop behind every figure driver. *)

(** {1 Supervisor telemetry} *)

type event =
  | Slot_ok of {
      index : int;
      key : string;
      attempts : int;
      elapsed : float;
      resumed : bool;  (** Loaded from the checkpoint, not executed. *)
    }
  | Slot_failed of { index : int; key : string; failure : Task.failure }
  | Slot_timed_out of { index : int; key : string; timeout : Task.timeout }
  | Slot_retry of {
      index : int;
      key : string;
      attempt : int;  (** The attempt that just failed. *)
      delay : float;  (** Backoff before the next one. *)
      exn : string;
    }
  | Worker_crashed of { worker : int; index : int option; exn : string }
      (** A worker domain died outside the per-attempt catch; [index]
          is the slot it had claimed (settled as [Failed]). *)
  | Worker_respawned of { worker : int }
      (** A replacement domain joined the pool. *)

val emit_trace : Pdq_telemetry.Trace.t -> event -> unit
(** Forward a supervisor event to a trace bus as a
    [Trace.Sweep_task] — pair with a wall-clock bus, e.g.
    [Trace.create ~clock:Unix.gettimeofday ~sinks]. *)

(** {1 Resilience report} *)

type report = {
  total : int;
  ok : int;
  resumed : int;     (** Subset of [ok] satisfied from the
                         checkpoint. *)
  stale : int;       (** Checkpoint entries whose digest matched no
                         slot of this sweep — the inputs changed since
                         the checkpoint was written, so those slots
                         re-execute from scratch. A stderr warning is
                         printed at resume time, and {!pp_report}
                         repeats it when nonzero. *)
  failed : int;
  timed_out : int;
  skipped : int;
  attempts : int;    (** Attempts actually executed (retries included,
                         resumed slots excluded). *)
  wall : float;      (** Sweep wall-clock seconds. *)
  slots : (int * string) list;
      (** Every non-[Ok] slot with its deterministic cause line. *)
  notes : (int * string) list;
      (** Caller-attached per-slot annotations (see {!with_notes}) —
          e.g. the CLI's one-line forensics attribution summaries.
          Empty on a freshly built report. *)
}

val with_notes : report -> notes:(int * string) list -> report
(** Attach per-slot notes (sorted by slot index) to a report; they
    render after the failure slots in {!pp_report} and as a [notes]
    array in {!report_to_json}. *)

val pp_report : Format.formatter -> report -> unit
(** Counts and per-slot causes; deliberately omits wall-clock numbers
    so supervised sweep output is reproducible run to run. *)

val report_to_json : report -> string
(** One JSON object (wall time included) — the machine-readable sweep
    failure artifact. *)

(** {1 Supervised execution} *)

type 'b supervised = { tasks : 'b Task.t list; report : report }

val supervise :
  ?opts:Exec_opts.t ->
  ?retry:retry ->
  ?keep_going:bool ->
  ?checkpoint:string ->
  ?resume:string ->
  ?codec:'b Task.codec ->
  ?on_event:(event -> unit) ->
  key:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  'b supervised
(** Fault-tolerant {!map}: one {!Task.t} per input, in input order.

    [opts] carries the worker count and per-attempt budget
    ({!Exec_opts}; the [telemetry] field is ignored, as everywhere in
    [Sweep]).

    - A crash settles its slot as [Failed] (exception, backtrace,
      attempts, elapsed); with [keep_going] (default [true]) the sweep
      continues, otherwise workers stop claiming and unattempted slots
      settle as [Skipped].
    - The budget cancels an attempt cooperatively mid-simulation; the
      slot settles as [Timed_out] with the tripped budget's name.
    - [retry] re-runs failing attempts classified [transient], with
      deterministic jittered exponential backoff.
    - A worker domain that dies outside the attempt wrapper is
      detected at join: its claimed slot is settled as [Failed] and a
      fresh domain replaces it while unclaimed work remains — one
      poisoned slot cannot idle a pool slot forever.
    - [checkpoint] streams every [Ok] slot to a JSONL file (append,
      flushed per line) keyed by [key input]; [resume] pre-settles
      slots whose key has a decodable value in an existing checkpoint
      file, so only missing/failed slots re-execute. Both require
      [codec]; torn or malformed lines (a kill mid-write) are ignored.
    - [on_event] observes the slot lifecycle (calls are serialized
      across workers).

    [key] must be injective over the sweep inputs (a content hash —
    see {!Scenario.digest}); [f] must be deterministic for resume to
    be bit-identical to an uninterrupted run. *)

val run_supervised :
  ?opts:Exec_opts.t ->
  ?retry:retry ->
  ?keep_going:bool ->
  ?checkpoint:string ->
  ?resume:string ->
  ?on_event:(event -> unit) ->
  Scenario.t list ->
  Pdq_transport.Runner.result supervised
(** {!supervise} over {!Scenario.run} with {!Scenario.digest} keys and
    {!Scenario.result_codec} checkpointing. *)
