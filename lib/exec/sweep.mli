(** Multicore sweep executor.

    Evaluates a list of independent jobs — typically {!Scenario.run}
    over a scenario list — on a pool of OCaml 5 domains. Jobs are
    pulled from a shared queue by [jobs] workers (the calling domain
    is one of them); results come back {e in input order} and, because
    every scenario run is self-contained (fresh simulator, seeded RNG,
    domain-sharded profiler), they are bit-for-bit identical to
    sequential evaluation.

    Telemetry caveat: sweeps run scenarios without trace sinks or
    metrics registries — sinks are per-run mutable state and channels
    would interleave across domains. Attach telemetry to a single
    {!Scenario.run} instead. The global profiler may stay enabled
    during a sweep (shards merge in its report); call
    {!Pdq_engine.Profiler.reset} only between sweeps. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] evaluates [f] over [xs] on [min jobs (length xs)]
    domains and returns the results in input order. [jobs] defaults to
    {!default_jobs}; [jobs <= 1] degrades to [List.map] (no domain is
    spawned). If any [f x] raises, the first exception (in input
    order) is re-raised after all workers have drained. *)

val run :
  ?jobs:int -> Scenario.t list -> Pdq_transport.Runner.result list
(** [map ~jobs Scenario.run], telemetry-free. *)

val average : ?jobs:int -> seeds:int list -> (int -> float) -> float
(** [average ~seeds f] is the arithmetic mean of [f seed] over
    [seeds], evaluated in parallel. The summation order is the input
    order, so the result is bit-for-bit independent of [jobs]. The
    single seed-averaging loop behind every figure driver. *)
