type failure = {
  exn : string;
  backtrace : string;
  attempts : int;
  elapsed : float;
}

type timeout = { budget : string; attempts : int; elapsed : float }

type 'a t =
  | Ok of 'a
  | Failed of failure
  | Timed_out of timeout
  | Skipped

type 'a codec = { encode : 'a -> string; decode : string -> 'a }

let ok = function Ok r -> Some r | Failed _ | Timed_out _ | Skipped -> None
let is_ok t = ok t <> None

let get_ok = function
  | Ok r -> r
  | Failed f -> invalid_arg (Printf.sprintf "Task.get_ok: failed (%s)" f.exn)
  | Timed_out b ->
      invalid_arg (Printf.sprintf "Task.get_ok: timed out (%s)" b.budget)
  | Skipped -> invalid_arg "Task.get_ok: skipped"

let state = function
  | Ok _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timed-out"
  | Skipped -> "skipped"

let cause = function
  | Ok _ -> None
  | Failed f -> Some f.exn
  | Timed_out b -> Some b.budget
  | Skipped -> Some "skipped"

let map f = function
  | Ok r -> Ok (f r)
  | Failed e -> Failed e
  | Timed_out b -> Timed_out b
  | Skipped -> Skipped

let attempts = function
  | Ok _ | Skipped -> 0
  | Failed f -> f.attempts
  | Timed_out b -> b.attempts

(* Deterministic rendering: no elapsed wall time, so two runs of the
   same sweep print identical slot lines regardless of machine load. *)
let pp ppf = function
  | Ok _ -> Format.fprintf ppf "ok"
  | Failed f ->
      Format.fprintf ppf "FAILED after %d attempt%s: %s" f.attempts
        (if f.attempts = 1 then "" else "s")
        f.exn
  | Timed_out b ->
      Format.fprintf ppf "TIMED OUT (%s) after %d attempt%s" b.budget
        b.attempts
        (if b.attempts = 1 then "" else "s")
  | Skipped -> Format.fprintf ppf "skipped"
