(** The outcome of one supervised sweep slot.

    A fault-tolerant sweep ({!Sweep.supervise}) settles every slot
    with one of these instead of letting the first exception poison
    the whole batch: a crash becomes {!Failed}, a blown budget becomes
    {!Timed_out}, and slots never attempted because the sweep stopped
    early (keep-going off) are {!Skipped}. *)

type failure = {
  exn : string;       (** [Printexc.to_string] of the final attempt's
                          exception. *)
  backtrace : string; (** Backtrace of the final attempt (may be empty
                          when backtrace recording is off). *)
  attempts : int;     (** Attempts consumed, retries included. *)
  elapsed : float;    (** Wall-clock seconds across all attempts. *)
}

type timeout = {
  budget : string;  (** The budget that tripped, e.g. ["wall>5s"] or
                        ["events>1000000"]. *)
  attempts : int;
  elapsed : float;
}

type 'a t =
  | Ok of 'a
  | Failed of failure
  | Timed_out of timeout
  | Skipped

type 'a codec = { encode : 'a -> string; decode : string -> 'a }
(** Serialization for checkpointing [Ok] payloads: [encode] must be
    pure; [decode (encode r)] must reproduce [r] exactly (bit-identical
    for every field the caller observes). [decode] may raise on
    malformed input — the checkpoint loader treats that slot as
    missing. *)

val ok : 'a t -> 'a option
val is_ok : 'a t -> bool

val get_ok : 'a t -> 'a
(** Raises [Invalid_argument] (naming the failure) on non-[Ok]. *)

val state : 'a t -> string
(** ["ok"], ["failed"], ["timed-out"] or ["skipped"]. *)

val cause : 'a t -> string option
(** The failure cause ([None] for [Ok]). *)

val map : ('a -> 'b) -> 'a t -> 'b t
val attempts : 'a t -> int

val pp : Format.formatter -> 'a t -> unit
(** Deterministic one-line rendering: cause and attempt count, no
    wall-clock times, so sweep output is reproducible. *)
