module Runner = Pdq_transport.Runner
module Config = Pdq_core.Config

let sweep ?jobs ~title ~param_name ~configs ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let flows = 10 in
  (* Two flat config × seed sweeps: one deadline-constrained for
     application throughput, one unconstrained for FCT. *)
  let ats =
    Common.sweep_metric ~opts:(Pdq_exec.Exec_opts.make ?jobs ()) ~seeds
      ~metric:(fun r -> 100. *. r.Runner.application_throughput)
      (fun (_, config) -> Common.aggregation_scenario ~flows (Runner.Pdq config))
      configs
  in
  let fcts =
    Common.sweep_metric ~opts:(Pdq_exec.Exec_opts.make ?jobs ()) ~seeds
      ~metric:(fun r -> r.Runner.mean_fct)
      (fun (_, config) ->
        Common.aggregation_scenario ~deadlines:false ~flows (Runner.Pdq config))
      configs
  in
  let rows =
    List.map2
      (fun ((label, _), (_, at)) (_, fct) ->
        [ label; Common.cell at; Common.cell (1e3 *. fct) ])
      (List.combine configs ats) fcts
  in
  {
    Common.title;
    header = [ param_name; "app tput [%]"; "mean FCT [ms]" ];
    rows;
  }

let early_start_k ?jobs ?quick () =
  sweep ?jobs
    ~title:"Ablation - Early Start budget K (10-flow aggregation)"
    ~param_name:"K"
    ~configs:
      (List.map
         (fun k -> (Common.cell k, Config.with_k Config.full k))
         [ 0.; 1.; 2.; 4. ])
    ?quick ()

let probing ?jobs ?quick () =
  sweep ?jobs
    ~title:"Ablation - Suppressed Probing factor X"
    ~param_name:"X"
    ~configs:
      (List.map
         (fun x ->
           ( Common.cell x,
             if x = 0. then
               {
                 Config.full with
                 Config.features =
                   { Config.full.Config.features with Config.suppressed_probing = false };
               }
             else { Config.full with Config.probe_x = x } ))
         [ 0.; 0.1; 0.2; 0.5; 1. ])
    ?quick ()

let dampening ?jobs ?quick () =
  sweep ?jobs
    ~title:"Ablation - dampening window"
    ~param_name:"window[us]"
    ~configs:
      (List.map
         (fun d -> (Common.cell (d *. 1e6), { Config.full with Config.dampening = d }))
         [ 0.; 10e-6; 20e-6; 100e-6; 500e-6 ])
    ?quick ()
