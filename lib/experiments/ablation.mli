(** Design-choice ablations called out in DESIGN.md (not paper
    figures): the Early Start budget K, Suppressed Probing's X factor
    and the dampening window, each swept on the query-aggregation
    workload. [jobs] parallelizes the config × seed grid. *)

val early_start_k : ?jobs:int -> ?quick:bool -> unit -> Common.table
(** Sweep K ∈ {0, 1, 2, 4}: K=0 disables concurrent switchover (low
    utilization), large K admits too much and bloats queues. *)

val probing : ?jobs:int -> ?quick:bool -> unit -> Common.table
(** Sweep the suppressed-probing factor X (0 = probe every RTT). *)

val dampening : ?jobs:int -> ?quick:bool -> unit -> Common.table
(** Sweep the dampening window. *)
