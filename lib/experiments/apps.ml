module Runner = Pdq_transport.Runner
module Config = Pdq_core.Config
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Exec_opts = Pdq_exec.Exec_opts
module Trace = Pdq_telemetry.Trace
module Job_metrics = Pdq_apps.Job_metrics
module Job_forensics = Pdq_apps.Job_forensics

let protocols =
  [
    ("PDQ(Full)", Runner.Pdq Config.full);
    ("RCP", Runner.Rcp);
    ("D3", Runner.D3);
    ("TCP", Runner.Tcp);
  ]

let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ]

let jobs_scenario ?(pattern = Scenario.Partition_aggregate) ?(count = 2)
    ?(width = 4) ?(depth = 1) protocol =
  Scenario.make
    ~name:
      (Printf.sprintf "%s %s jobs w%d d%d"
         (Runner.protocol_name protocol)
         (Scenario.job_pattern_name pattern)
         width depth)
    ~horizon:5.
    ~workload:
      (Scenario.Jobs
         {
           pattern;
           count;
           width;
           depth;
           sizes = Scenario.Uniform_paper { mean_bytes = 100_000 };
           deadlines = Scenario.Exp_deadlines { mean = 0.02; floor = 3e-3 };
           rate = None;
         })
    protocol

(* Same flattening as Fig. 3: every (row, protocol, seed) triple is an
   independent scenario, fanned out in one Sweep.map of run_jobs; the
   per-seed job reports are then folded per cell. *)
let cells_by_row ?jobs ~seeds ~metric ~scenario_of row_keys =
  let keys =
    List.concat_map
      (fun rk -> List.map (fun (_, proto) -> (rk, proto)) protocols)
      row_keys
  in
  let scenarios =
    List.concat_map
      (fun (rk, proto) ->
        List.map
          (fun seed -> Scenario.with_seed (scenario_of rk proto) seed)
          seeds)
      keys
  in
  let reports =
    Array.of_list
      (Sweep.map ?jobs (fun s -> snd (Scenario.run_jobs s)) scenarios)
  in
  let nseeds = List.length seeds in
  List.mapi
    (fun i _ -> metric (List.init nseeds (fun j -> reports.((i * nseeds) + j))))
    keys
  |> Common.chunks (List.length protocols)

let mean_jct_ms reports =
  let n = float_of_int (List.length reports) in
  1e3
  *. (List.fold_left
        (fun acc (r : Job_metrics.report) -> acc +. r.Job_metrics.mean_jct)
        0. reports
     /. n)

(* Misses are pooled over the seeds, not averaged per seed: with a
   couple of deadline jobs per run, per-seed rates are too grainy. *)
let miss_pct reports =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let total = sum (fun (r : Job_metrics.report) -> r.Job_metrics.deadline_jobs)
  and met = sum (fun (r : Job_metrics.report) -> r.Job_metrics.deadline_met) in
  if total = 0 then 0. else 100. *. float_of_int (total - met) /. float_of_int total

let table_of ~title ~row_label ~metric ?jobs ~quick scenario_of row_keys =
  let seeds = seeds ~quick in
  let measured = cells_by_row ?jobs ~seeds ~metric ~scenario_of row_keys in
  let rows =
    List.map2
      (fun k cells -> string_of_int k :: List.map Common.cell cells)
      row_keys measured
  in
  {
    Common.title;
    header = row_label :: List.map fst protocols;
    rows;
  }

let fanin_table ?jobs ?(quick = true) () =
  let widths = if quick then [ 2; 4; 8 ] else [ 2; 4; 6; 8; 10 ] in
  table_of ?jobs ~quick
    ~title:"Mean JCT [ms] vs partition-aggregate fan-in (2 jobs)"
    ~row_label:"fan-in" ~metric:mean_jct_ms
    (fun w proto -> jobs_scenario ~width:w proto)
    widths

let depth_table ?jobs ?(quick = true) () =
  let depths = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5 ] in
  table_of ?jobs ~quick
    ~title:"Mean JCT [ms] vs partition-aggregate stage depth (fan-in 4)"
    ~row_label:"depth" ~metric:mean_jct_ms
    (fun d proto -> jobs_scenario ~depth:d proto)
    depths

let miss_table ?jobs ?(quick = true) () =
  let widths = if quick then [ 2; 4; 8 ] else [ 2; 4; 6; 8; 10 ] in
  table_of ?jobs ~quick
    ~title:"Job deadline misses [%] vs partition-aggregate fan-in (2 jobs)"
    ~row_label:"fan-in" ~metric:miss_pct
    (fun w proto -> jobs_scenario ~width:w proto)
    widths

let straggler_table ?(width = 4) ?(count = 2) ?(seed = 1) () =
  let mem = Trace.memory () in
  let telemetry = { Runner.no_telemetry with Runner.sinks = [ mem ] } in
  let scenario =
    Scenario.with_seed (jobs_scenario ~count ~width (Runner.Pdq Config.full)) seed
  in
  let _, report =
    Scenario.run_jobs ~opts:(Exec_opts.telemetry telemetry) scenario
  in
  let stragglers =
    Job_forensics.stragglers ~events:(Trace.memory_events mem) report
  in
  let ms x = Common.cell (1e3 *. x) in
  let row (s : Job_forensics.straggler) =
    let open Pdq_forensics.Attribution in
    s.Job_forensics.job
    :: string_of_int s.Job_forensics.flow
    :: ms s.Job_forensics.jct
    ::
    (match s.Job_forensics.flow_report with
    | Some f -> [ ms f.fct; ms f.c.serialization; ms f.c.paused; ms f.c.recovery ]
    | None -> [ "-"; "-"; "-"; "-" ])
  in
  {
    Common.title =
      Printf.sprintf
        "Straggler attribution - PDQ(Full), %d partition-aggregate jobs, \
         fan-in %d, seed %d"
        count width seed;
    header = [ "job"; "flow"; "jct"; "fct"; "send"; "paused"; "recov" ];
    rows = List.map row stragglers;
  }

let run_all ?jobs ?(quick = true) ppf () =
  Format.fprintf ppf "%a" Common.pp_table (fanin_table ?jobs ~quick ());
  Format.fprintf ppf "%a" Common.pp_table (depth_table ?jobs ~quick ());
  Format.fprintf ppf "%a" Common.pp_table (miss_table ?jobs ~quick ());
  Format.fprintf ppf "%a" Common.pp_table (straggler_table ())
