(** Application-level workloads — job completion time (JCT) and job
    deadline behaviour of PDQ vs RCP/D3/TCP ({!Pdq_apps}).

    The paper evaluates per-flow metrics; these drivers measure what
    the application sees: partition-aggregate and shuffle jobs whose
    stages are injected at runtime as their dependencies finish, so a
    protocol's preemption policy shows up directly in job latency.

    [quick] trims sweep points and seeds so the whole bench stays
    interactive; [jobs] spreads the (row × protocol × seed) scenario
    grid over that many worker domains. Results are identical for any
    [jobs]. *)

val fanin_table : ?jobs:int -> ?quick:bool -> unit -> Common.table
(** Mean JCT [ms] of partition-aggregate jobs vs fan-in width. *)

val depth_table : ?jobs:int -> ?quick:bool -> unit -> Common.table
(** Mean JCT [ms] of partition-aggregate jobs vs stage depth
    (rounds), fan-in fixed. *)

val miss_table : ?jobs:int -> ?quick:bool -> unit -> Common.table
(** Job deadline-miss rate [%] vs fan-in width. *)

val straggler_table : ?width:int -> ?count:int -> ?seed:int -> unit -> Common.table
(** One PDQ(Full) run with an in-memory trace: per job, the straggler
    flow that finished it and that flow's FCT decomposition
    ({!Pdq_apps.Job_forensics}). *)

val run_all : ?jobs:int -> ?quick:bool -> Format.formatter -> unit -> unit
(** Print every table above. *)
