(* Graceful degradation under adversarial packet conditions: how do
   the protocols' tail FCT and deadline performance bend as an
   in-network adversary reorders or corrupts scheduling traffic?

   Two sweeps, each over a condition-probability axis applied as a
   standing condition on every cable ({!Pdq_chaos.Adversary_plan.degrade}):
   - reordering: each forward packet held for 1 ms with probability p,
     letting later packets overtake (plus the jitter this implies);
   - header corruption: with probability p a forward scheduling header
     entering a switch gets one field scrambled (PDQ rate request or
     pause attribution, RCP rate, D3 allocation).

   Reported per protocol: p99 FCT over completed flows normalized to
   the same protocol's adversary-free run, and deadline-miss
   percentage, averaged over seeds. Each (rate, protocol, seed) cell
   is an independent scenario + plan generator pair evaluated by
   [Sweep.map], so the whole grid parallelizes like any sweep. *)

module Runner = Pdq_transport.Runner
module Builder = Pdq_topo.Builder
module Topology = Pdq_net.Topology
module Rng = Pdq_engine.Rng
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Adversary = Pdq_chaos.Adversary
module Adversary_plan = Pdq_chaos.Adversary_plan

let protocols =
  [
    ("PDQ", Runner.Pdq Pdq_core.Config.full);
    ("RCP", Runner.Rcp);
    ("D3", Runner.D3);
    ("TCP", Runner.Tcp);
  ]

(* The resilience harness's staggered-aggregation scenario shape:
   traffic spread across [window] so it overlaps the standing
   adversarial conditions for the whole run. *)
let scenario_of ~label ~flows ~window ~horizon ~seed protocol =
  Scenario.with_seed
    (Scenario.make ~name:label ~horizon ~topo:Scenario.default_tree
       ~workload:
         (Scenario.Synthetic
            {
              pattern = Scenario.Staggered window;
              flows;
              sizes = Scenario.Uniform_paper { mean_bytes = 100_000 };
              deadlines = Scenario.Exp_deadlines { mean = 0.02; floor = 0.003 };
            })
       protocol)
    seed

type outcome = { p99 : float; miss_pct : float }

let p99_fct (r : Runner.result) =
  let fcts =
    Array.to_list r.Runner.flows
    |> List.filter_map (fun (f : Runner.flow_result) -> f.Runner.fct)
    |> List.sort compare |> Array.of_list
  in
  let n = Array.length fcts in
  if n = 0 then Float.nan
  else fcts.(min (n - 1) (int_of_float (Float.ceil (0.99 *. float_of_int n)) - 1))

let reduce results =
  let n = float_of_int (List.length results) in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
  {
    p99 = avg p99_fct;
    miss_pct = avg (fun r -> 100. *. (1. -. r.Runner.application_throughput));
  }

(* One cell: build the scenario, install the standing conditions on
   every cable via the prepare hook, run. The adversary rng derives
   from the cell seed, so cells are independent and shippable. *)
let run_cell ?opts (sc, plan_of) =
  Scenario.run ?opts
    ~prepare:(fun (built : Builder.built) ->
      let topo = built.Builder.topo in
      let plan = plan_of topo in
      if not (Adversary_plan.is_empty plan) then
        Adversary.install ~sim:(Topology.sim topo) ~topo
          ~rng:(Rng.create (sc.Scenario.seed lxor 0x0C4A05)) plan)
    sc

(* Generic degradation sweep: rows = condition probabilities (first
   row 0, the normalization base), columns = per-protocol normalized
   p99 FCT and deadline-miss %. *)
let sweep ?jobs ?budget ~title ~axis ~seeds ~rates ~degrade_of () =
  let flows = 12 and window = 0.2 and horizon = 3. in
  let cells =
    List.concat_map
      (fun rate ->
        List.concat_map
          (fun (_, proto) ->
            List.map
              (fun seed ->
                let sc =
                  scenario_of ~label:(Common.cell rate) ~flows ~window ~horizon
                    ~seed proto
                in
                (sc, fun topo -> degrade_of ~rate ~links:(Adversary.cables topo)))
              seeds)
          protocols)
      rates
  in
  let results =
    Sweep.map ?jobs ?budget (run_cell ?opts:None) cells
  in
  let rows_cells =
    List.map
      (fun per_rate -> List.map reduce (Common.chunks (List.length seeds) per_rate))
      (Common.chunks (List.length seeds * List.length protocols) results)
  in
  let base =
    match rows_cells with
    | first :: _ -> List.map (fun o -> Float.max o.p99 1e-9) first
    | [] -> []
  in
  let rows =
    List.map2
      (fun rate row ->
        Common.cell rate
        :: List.concat
             (List.map2
                (fun o b -> [ Common.cell (o.p99 /. b); Common.cell o.miss_pct ])
                row base))
      rates rows_cells
  in
  let header =
    axis
    :: List.concat_map
         (fun (name, _) -> [ name ^ " p99"; name ^ " miss%" ])
         protocols
  in
  { Common.title; header; rows }

let reorder_sweep ?jobs ?budget ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let rates = if quick then [ 0.; 0.05 ] else [ 0.; 0.01; 0.05; 0.2 ] in
  sweep ?jobs ?budget
    ~title:
      "Chaos - packet reordering (1 ms hold) vs per-packet probability; p99 \
       FCT normalized to the adversary-free run"
    ~axis:"p" ~seeds ~rates
    ~degrade_of:(fun ~rate ~links ->
      Adversary_plan.degrade ~links ~reorder:(rate, 1e-3) ())
    ()

let corruption_sweep ?jobs ?budget ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let rates = if quick then [ 0.; 0.05 ] else [ 0.; 0.01; 0.05; 0.2 ] in
  sweep ?jobs ?budget
    ~title:
      "Chaos - scheduling-header corruption vs per-packet probability; p99 \
       FCT normalized to the adversary-free run"
    ~axis:"p" ~seeds ~rates
    ~degrade_of:(fun ~rate ~links ->
      Adversary_plan.degrade ~links ~corrupt:rate ())
    ()

let run_all ?jobs ?budget ?(quick = true) ppf () =
  Common.pp_table ppf (reorder_sweep ?jobs ?budget ~quick ());
  Common.pp_table ppf (corruption_sweep ?jobs ?budget ~quick ())
