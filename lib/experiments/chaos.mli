(** Degradation-curve experiments under the chaos adversary: PDQ vs.
    RCP/D3/TCP as standing packet reordering or scheduling-header
    corruption ramps up on every cable.

    Each sweep reports, per protocol and condition probability: p99
    FCT over completed flows normalized to the same protocol's
    adversary-free run, and deadline-miss percentage, averaged over
    seeds. [jobs] spreads the probability × protocol × seed grid over
    the domain pool; [budget] bounds each run. *)

val reorder_sweep :
  ?jobs:int ->
  ?budget:Pdq_exec.Sweep.budget ->
  ?quick:bool ->
  unit ->
  Common.table

val corruption_sweep :
  ?jobs:int ->
  ?budget:Pdq_exec.Sweep.budget ->
  ?quick:bool ->
  unit ->
  Common.table

val run_all :
  ?jobs:int ->
  ?budget:Pdq_exec.Sweep.budget ->
  ?quick:bool ->
  Format.formatter ->
  unit ->
  unit
(** Run both sweeps and print their tables. *)
