module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Config = Pdq_core.Config
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Fluid = Pdq_sched.Fluid
module Rng = Pdq_engine.Rng
module Sim = Pdq_engine.Sim
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

let pdq_variants =
  [
    ("PDQ(Full)", Runner.Pdq Config.full);
    ("PDQ(ES+ET)", Runner.Pdq Config.es_et);
    ("PDQ(ES)", Runner.Pdq Config.es);
    ("PDQ(Basic)", Runner.Pdq Config.basic);
  ]

let packet_protocols =
  pdq_variants @ [ ("D3", Runner.D3); ("RCP", Runner.Rcp); ("TCP", Runner.Tcp) ]

let goodput_rate = 1e9 *. 1460. /. 1500.

type agg_workload = {
  specs : Context.flow_spec list;
  jobs : Fluid.job list;
}

let aggregation_workload ?(deadline_mean = 0.02) ?sizes ?(deadlines = true)
    ~seed ~hosts ~receiver ~flows () =
  let sizes =
    match sizes with
    | Some s -> s
    | None -> Size_dist.uniform_paper ~mean_bytes:100_000
  in
  let rng = Rng.create (0x5EED + (seed * 7919)) in
  let ddist = Deadline_dist.exponential ~mean:deadline_mean () in
  let pairs = Pdq_workload.Pattern.aggregation ~hosts ~receiver ~flows in
  let specs, jobs =
    List.mapi
      (fun i (p : Pdq_workload.Pattern.pair) ->
        let size = Size_dist.sample sizes rng in
        let deadline =
          if deadlines then Some (Deadline_dist.sample ddist rng) else None
        in
        ( {
            Context.src = p.Pdq_workload.Pattern.src;
            dst = p.Pdq_workload.Pattern.dst;
            size;
            deadline;
            start = 0.;
          },
          Fluid.job ?deadline ~id:i ~size:(float_of_int size) () ))
      pairs
    |> List.split
  in
  { specs; jobs }

let default_seeds = [ 1; 2; 3 ]

let aggregation_scenario ?(deadline_mean = 0.02) ?sizes ?(deadlines = true)
    ?(seed = 1) ~flows protocol =
  Scenario.make
    ~name:
      (Printf.sprintf "%s aggregation x%d" (Runner.protocol_name protocol)
         flows)
    ~seed ~horizon:5.
    ~workload:
      (Scenario.Generated
         {
           label = Printf.sprintf "%d aggregation flows" flows;
           specs =
             (fun ~seed ~topo:_ ~hosts ->
               (aggregation_workload ~deadline_mean ?sizes ~deadlines ~seed
                  ~hosts ~receiver:hosts.(0) ~flows ())
                 .specs);
         })
    protocol

let run_aggregation ?jobs ?(seeds = default_seeds) ?(deadline_mean = 0.02)
    ?sizes ?(deadlines = true) ~flows protocol metric =
  let scenario =
    aggregation_scenario ~deadline_mean ?sizes ~deadlines ~flows protocol
  in
  Sweep.average ?jobs ~seeds (fun seed ->
      metric (Scenario.run (Scenario.with_seed scenario seed)))

(* The fluid baselines only need the workload, not a packet run; the
   tree is built per seed solely for its host ids. *)
let fluid_workload ?(deadline_mean = 0.02) ?sizes ~deadlines ~flows seed =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let hosts = built.Builder.hosts in
  aggregation_workload ~deadline_mean ?sizes ~deadlines ~seed ~hosts
    ~receiver:hosts.(0) ~flows ()

let optimal_aggregation_throughput ?jobs ?(seeds = default_seeds)
    ?(deadline_mean = 0.02) ?sizes ~flows () =
  Sweep.average ?jobs ~seeds (fun seed ->
      let wl = fluid_workload ~deadline_mean ?sizes ~deadlines:true ~flows seed in
      (* Fluid job sizes are bytes: rate in bytes/second. *)
      Fluid.optimal_deadline_throughput ~rate:(goodput_rate /. 8.) wl.jobs)

let optimal_aggregation_fct ?jobs ?(seeds = default_seeds) ?sizes ~flows () =
  Sweep.average ?jobs ~seeds (fun seed ->
      let wl = fluid_workload ?sizes ~deadlines:false ~flows seed in
      Fluid.mean_completion_time (Fluid.srpt ~rate:(goodput_rate /. 8.) wl.jobs))

let chunks k xs =
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: tl ->
          let hd, rest = take (k - 1) tl in
          (x :: hd, rest)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
        let row, rest = take k xs in
        go (row :: acc) rest
  in
  go [] xs

let sweep_metric ?opts ~seeds ~metric scenario_of keys =
  let scenarios =
    List.concat_map
      (fun k ->
        List.map (fun seed -> Scenario.with_seed (scenario_of k) seed) seeds)
      keys
  in
  let results = Array.of_list (Sweep.run ?opts scenarios) in
  let nseeds = List.length seeds in
  List.mapi
    (fun i k ->
      let vs = List.init nseeds (fun j -> metric results.((i * nseeds) + j)) in
      (k, List.fold_left ( +. ) 0. vs /. float_of_int nseeds))
    keys

let search_max_flows ?(lo = 1) ?(hi = 64) ~target f =
  if f lo < target then 0
  else begin
    (* Invariant: f lo >= target; answer in [lo, hi]. *)
    let lo = ref lo and hi = ref hi in
    (* If even hi passes, report hi. *)
    if f !hi >= target then !hi
    else begin
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if f mid >= target then lo := mid else hi := mid
      done;
      !lo
    end
  end

type table = { title : string; header : string list; rows : string list list }

let pp_table ppf t =
  Format.fprintf ppf "@.== %s ==@." t.title;
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i c -> width.(i) <- max width.(i) (String.length c)))
    all;
  let print_row r =
    List.iteri
      (fun i c -> Format.fprintf ppf "%-*s  " width.(i) c)
      r;
    Format.fprintf ppf "@."
  in
  print_row t.header;
  print_row (List.init ncols (fun i -> String.make width.(i) '-'));
  List.iter print_row t.rows

let cell v =
  if Float.is_integer v && abs_float v < 1e7 then Printf.sprintf "%.0f" v
  else if abs_float v >= 100. then Printf.sprintf "%.1f" v
  else if abs_float v >= 1. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

(* Forensic attribution: run the scenario once with an in-memory trace
   sink and fold the event stream into an FCT decomposition. The sink
   never perturbs the run, so the attributed run is the same run the
   figure drivers measure. *)
let attribution_report scenario =
  let mem = Pdq_telemetry.Trace.memory () in
  let telemetry = { Runner.no_telemetry with Runner.sinks = [ mem ] } in
  ignore (Scenario.run ~opts:(Pdq_exec.Exec_opts.telemetry telemetry) scenario);
  Pdq_forensics.Attribution.of_events (Pdq_telemetry.Trace.memory_events mem)

let attribution_table ~title (r : Pdq_forensics.Attribution.report) =
  let open Pdq_forensics.Attribution in
  let ms x = cell (1e3 *. x) in
  let row (f : flow_report) =
    [
      string_of_int f.flow;
      ms f.fct;
      ms f.c.handshake;
      ms f.c.serialization;
      ms f.c.paused;
      ms f.c.recovery;
      ms f.c.downtime;
      (match f.ideal with Some i -> ms i | None -> "-");
    ]
  in
  let totals =
    [
      "total";
      ms r.total_fct;
      ms r.totals.handshake;
      ms r.totals.serialization;
      ms r.totals.paused;
      ms r.totals.recovery;
      ms r.totals.downtime;
      "-";
    ]
  in
  {
    title;
    header =
      [ "flow"; "fct"; "hshake"; "send"; "paused"; "recov"; "down"; "ideal" ];
    rows = List.map row r.flows @ [ totals ];
  }
