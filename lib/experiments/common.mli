(** Shared plumbing for the per-figure experiment drivers: protocol
    rosters, workload construction, repeated-seed averaging, binary
    search for the paper's "number of flows at 99% application
    throughput" metric, and tabular output. *)

val pdq_variants : (string * Pdq_transport.Runner.protocol) list
(** PDQ(Full), PDQ(ES+ET), PDQ(ES), PDQ(Basic) — most complete first. *)

val packet_protocols : (string * Pdq_transport.Runner.protocol) list
(** The full roster of Fig. 3: the PDQ variants, D3, RCP, TCP. *)

val goodput_rate : float
(** Effective goodput of a 1 Gbps link under the 40-byte TCP/IP
    header (the omniscient scheduler pays payload efficiency but no
    scheduling header). *)

type agg_workload = {
  specs : Pdq_transport.Context.flow_spec list;
  jobs : Pdq_sched.Fluid.job list;
      (** The same flows as single-bottleneck fluid jobs (sizes in
          bytes, deadlines in seconds) for the Optimal baseline. *)
}

val aggregation_workload :
  ?deadline_mean:float ->
  ?sizes:Pdq_workload.Size_dist.t ->
  ?deadlines:bool ->
  seed:int ->
  hosts:int array ->
  receiver:int ->
  flows:int ->
  unit ->
  agg_workload
(** Query-aggregation flows: sizes from [sizes] (default the paper's
    U[2 KB,198 KB]), all starting at t=0 towards [receiver]; when
    [deadlines] (default true) each flow gets an Exp([deadline_mean],
    floor 3 ms) deadline (default mean 20 ms). *)

val aggregation_scenario :
  ?deadline_mean:float ->
  ?sizes:Pdq_workload.Size_dist.t ->
  ?deadlines:bool ->
  ?seed:int ->
  flows:int ->
  Pdq_transport.Runner.protocol ->
  Pdq_exec.Scenario.t
(** The canonical Fig. 3 experiment as a scenario: the default
    12-server tree, the aggregation workload towards host 0, horizon
    5 s. Re-seed with {!Pdq_exec.Scenario.with_seed} to sweep. *)

val run_aggregation :
  ?jobs:int ->
  ?seeds:int list ->
  ?deadline_mean:float ->
  ?sizes:Pdq_workload.Size_dist.t ->
  ?deadlines:bool ->
  flows:int ->
  Pdq_transport.Runner.protocol ->
  (Pdq_transport.Runner.result -> float) ->
  float
(** Run {!aggregation_scenario} and average the extracted metric over
    the seeds (default [1;2;3]), on [jobs] domains. *)

val optimal_aggregation_throughput :
  ?jobs:int ->
  ?seeds:int list ->
  ?deadline_mean:float ->
  ?sizes:Pdq_workload.Size_dist.t ->
  flows:int ->
  unit ->
  float
(** Moore–Hodgson application throughput of the omniscient scheduler on
    the same workloads. *)

val optimal_aggregation_fct :
  ?jobs:int ->
  ?seeds:int list ->
  ?sizes:Pdq_workload.Size_dist.t ->
  flows:int ->
  unit ->
  float
(** SRPT mean flow completion time of the omniscient scheduler
    (deadline-unconstrained case). *)

val chunks : int -> 'a list -> 'a list list
(** Split into consecutive groups of [k] (last group may be short) —
    for slicing a flattened sweep back into table rows. *)

val sweep_metric :
  ?opts:Pdq_exec.Exec_opts.t ->
  seeds:int list ->
  metric:(Pdq_transport.Runner.result -> float) ->
  ('a -> Pdq_exec.Scenario.t) ->
  'a list ->
  ('a * float) list
(** Flatten [keys × seeds] into one parallel sweep and hand back, per
    key in input order, the seed-average of [metric]. This is how the
    figure drivers expose whole-figure parallelism instead of only the
    2–5-way seed loop. [opts] rides through to {!Pdq_exec.Sweep.run}
    (a tripped budget surfaces through
    {!Pdq_exec.Sweep.Sweep_errors}). *)

val search_max_flows :
  ?lo:int ->
  ?hi:int ->
  target:float ->
  (int -> float) ->
  int
(** Largest [n] in [lo..hi] whose measured application throughput is at
    least [target] (binary search assuming monotonicity, as the paper's
    procedure does). Returns [lo - 1]... returns 0 if even [lo] fails. *)

type table = { title : string; header : string list; rows : string list list }

val pp_table : Format.formatter -> table -> unit
(** Render as aligned, tab-friendly text. *)

val cell : float -> string
(** Format a numeric cell with sensible precision. *)

val attribution_report : Pdq_exec.Scenario.t -> Pdq_forensics.Attribution.report
(** Run the scenario once with an in-memory trace sink attached and
    decompose every flow's completion time with
    {!Pdq_forensics.Attribution}. The sink never perturbs the run. *)

val attribution_table :
  title:string -> Pdq_forensics.Attribution.report -> table
(** Per-flow FCT components in milliseconds (plus a totals row), for
    {!pp_table}. *)
