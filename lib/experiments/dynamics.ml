module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Series = Pdq_engine.Series
module Trace = Pdq_telemetry.Trace
module Metrics = Pdq_telemetry.Metrics
module Scenario = Pdq_exec.Scenario

type trace = {
  per_flow_gbps : (int * (float * float) array) list;
  utilization : (float * float) array;
  queue_pkts : (float * float) array;
  completions : (int * float) list;
}

(* All three time series come out of the generic telemetry: per-flow
   goodput from the [Flow_rx] events of a memory sink, utilization and
   queue depth from the metrics probe of the bottleneck link.
   Telemetry sinks are per-run mutable state, so they attach via
   [Scenario.build] + [Runner.execute] rather than living in the
   scenario. *)
let run_traced ~senders ~specs_of ~t_end ~bin =
  let scenario =
    Scenario.make ~name:"traced bottleneck" ~horizon:(t_end +. 1.)
      ~topo:(Scenario.Bottleneck { senders })
      ~workload:
        (Scenario.Generated
           {
             label = "dynamics trace";
             specs =
               (fun ~seed:_ ~topo:_ ~hosts ->
                 specs_of hosts hosts.(Array.length hosts - 1));
           })
      (Runner.Pdq Pdq_core.Config.full)
  in
  let built, specs, options = Scenario.build scenario in
  let hosts = built.Builder.hosts in
  let rx = hosts.(Array.length hosts - 1) in
  let bottleneck =
    Pdq_net.Link.id (Pdq_net.Topology.link_to built.Builder.topo ~src:0 ~dst:rx)
  in
  let mem = Trace.memory () in
  let metrics = Metrics.create () in
  let options =
    {
      options with
      Runner.telemetry =
        {
          Runner.no_telemetry with
          Runner.sinks = [ mem ];
          metrics = Some metrics;
          metrics_every = bin /. 4.;
        };
    }
  in
  let r =
    Runner.execute ~options ~topo:built.Builder.topo scenario.Scenario.protocol
      specs
  in
  let per_flow_tbl : (int, Series.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (time, ev) ->
      match ev with
      | Trace.Flow_rx { flow; bytes } ->
          let s =
            match Hashtbl.find_opt per_flow_tbl flow with
            | Some s -> s
            | None ->
                let s = Series.create () in
                Hashtbl.add per_flow_tbl flow s;
                s
          in
          Series.add s time (float_of_int bytes)
      | _ -> ())
    (Trace.memory_events mem);
  let per_flow =
    Hashtbl.fold (fun id s acc -> (id, s) :: acc) per_flow_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (id, s) ->
           let bins = Series.integrate_rate s ~width:bin ~t_end in
           (id, Array.map (fun (t, bps) -> (t, bps *. 8. /. 1e9)) bins))
  in
  let probe_series name =
    let s = Series.create () in
    Array.iter (fun (t, v) -> Series.add s t v) (Metrics.series metrics ~name);
    s
  in
  let utilization =
    Series.bin_mean
      (probe_series (Metrics.Name.link_util bottleneck))
      ~width:bin ~t_end
  in
  let queue_pkts =
    Series.bin_mean
      (probe_series (Metrics.Name.link_queue_bytes bottleneck))
      ~width:bin ~t_end
    |> Array.map (fun (t, b) -> (t, b /. 1500.))
  in
  let completions =
    Array.to_list r.Runner.flows
    |> List.mapi (fun i (f : Runner.flow_result) ->
           match f.Runner.fct with
           | Some fct -> Some (i, f.Runner.spec.Context.start +. fct)
           | None -> None)
    |> List.filter_map Fun.id
  in
  { per_flow_gbps = per_flow; utilization; queue_pkts; completions }

(* Fig 6: five ~1MB flows, perturbed so smaller index = more critical,
   all starting at t = 0. The perturbation is a few packets wide so the
   criticality order is robust against the slivers of bandwidth that
   paused flows pick up while the rate controller oscillates. *)
let fig6 ?(bin = 1e-3) () =
  run_traced ~senders:5 ~t_end:0.05 ~bin ~specs_of:(fun hosts rx ->
      List.init 5 (fun i ->
          {
            Context.src = hosts.(i);
            dst = rx;
            size = 1_000_000 + (i * 25_000);
            deadline = None;
            start = 0.;
          }))

(* Fig 7: a long-lived flow plus 50 short 20KB flows at t = 10 ms. *)
let fig7 ?(bin = 1e-3) () =
  run_traced ~senders:51 ~t_end:0.05 ~bin ~specs_of:(fun hosts rx ->
      {
        Context.src = hosts.(0);
        dst = rx;
        size = 5_000_000;
        deadline = None;
        start = 0.;
      }
      :: List.init 50 (fun i ->
             {
               Context.src = hosts.(1 + i);
               dst = rx;
               size = 20_000 + (i * 13);
               deadline = None;
               start = 0.010;
             }))

let table_of_trace ~title (t : trace) ~flows_shown =
  let bins =
    match t.utilization with [||] -> [||] | u -> Array.map fst u
  in
  let header =
    "t[ms]"
    :: (List.map (fun id -> Printf.sprintf "flow%d[Gb/s]" id) flows_shown
       @ [ "util"; "queue[pkts]" ])
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i t_bin ->
           let flow_cells =
             List.map
               (fun id ->
                 match List.assoc_opt id t.per_flow_gbps with
                 | Some series when i < Array.length series ->
                     Common.cell (snd series.(i))
                 | _ -> "0"
               )
               flows_shown
           in
           let util =
             if i < Array.length t.utilization then
               Common.cell (snd t.utilization.(i))
             else "-"
           in
           let queue =
             if i < Array.length t.queue_pkts then
               Common.cell (snd t.queue_pkts.(i))
             else "-"
           in
           (Common.cell (t_bin *. 1e3) :: flow_cells) @ [ util; queue ])
         bins)
  in
  { Common.title = title; header; rows }

let fig6_table () =
  let t = fig6 () in
  let completions =
    String.concat ", "
      (List.map (fun (i, c) -> Printf.sprintf "flow%d@%.1fms" i (c *. 1e3))
         t.completions)
  in
  table_of_trace
    ~title:
      ("Fig 6 - seamless flow switching (completions: " ^ completions ^ ")")
    t ~flows_shown:[ 0; 1; 2; 3; 4 ]

let fig7_table () =
  let t = fig7 () in
  let shorts_done =
    List.length (List.filter (fun (i, _) -> i > 0) t.completions)
  in
  table_of_trace
    ~title:
      (Printf.sprintf
         "Fig 7 - burst robustness (long flow + 50 shorts at 10ms; %d shorts \
          completed)"
         shorts_done)
    t ~flows_shown:[ 0 ]
