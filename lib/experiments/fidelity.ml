module Runner = Pdq_transport.Runner
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Config = Pdq_core.Config
module Builder = Pdq_topo.Builder
module Flowsim = Pdq_flowsim.Flowsim
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Rng = Pdq_engine.Rng
module Sim = Pdq_engine.Sim
module Fid = Pdq_check.Fidelity
module Report = Pdq_check.Report

(* Every band was measured on the committed simulator at exactly these
   smoke settings (seeds 1-2) and widened by ~±7% — wide enough to
   survive platform-neutral refactors (the runs are deterministic, so
   any drift is a code change), tight enough that a scheduling or
   rate-allocation regression lands outside. Refresh with
   [bench/main.exe -- --fidelity-dump] after an intentional
   behavioural change, and say so in the commit message. *)

let seeds = [ 1; 2 ]

type measured = {
  outcome : Fid.outcome;
  violations : Report.violation list;
}

type entry = { band : Fid.band; eval : jobs:int option -> measured }

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
let fct_ms (r : Runner.result) = 1e3 *. r.Runner.mean_fct
let at_pct (r : Runner.result) = 100. *. r.Runner.application_throughput

(* Packet-level entries run seed-per-domain through the full validation
   monitor, so the fidelity gate doubles as the CI invariant sweep:
   drift fails the band, a violated invariant fails the run outright. *)
let checked band scenario metric =
  {
    band;
    eval =
      (fun ~jobs ->
        let runs =
          Sweep.map ?jobs
            (fun seed -> Scenario.run_checked (Scenario.with_seed scenario seed))
            seeds
        in
        {
          outcome =
            Fid.eval band (mean (List.map (fun c -> metric c.Scenario.result) runs));
          violations = List.concat_map (fun c -> c.Scenario.violations) runs;
        });
  }

let unchecked band f =
  {
    band;
    eval = (fun ~jobs:_ -> { outcome = Fid.eval band (f ()); violations = [] });
  }

let uniform100k = Scenario.Uniform_paper { mean_bytes = 100_000 }
let paper_deadlines = Scenario.Exp_deadlines { mean = 0.02; floor = 3e-3 }

let synthetic ?topo ?loss ~name ~pattern ~flows ?(sizes = uniform100k)
    ?(deadlines = Scenario.No_deadlines) protocol =
  Scenario.make ~name ?topo ?loss ~horizon:5.
    ~workload:(Scenario.Synthetic { pattern; flows; sizes; deadlines })
    protocol

(* Fig. 12's flow-level aging run at smoke scale (Fig. 10 is covered
   packet-level through the size-estimation sender below): aging keeps
   the least-critical flows from starving, so its mean FCT pins the
   comparator override path of the flow-level engine. *)
let fig12_aging_fct_ms () =
  let sim = Sim.create () in
  let built = Builder.fat_tree_for_servers ~sim ~servers:64 () in
  let rng = Rng.create (0xF12 + 1) in
  let pairs =
    List.concat
      (List.init 2 (fun _ ->
           Pattern.random_permutation ~hosts:built.Builder.hosts ~rng))
  in
  let specs =
    Fig8.flowsim_specs ~built ~pairs
      ~sizes:(Size_dist.uniform_paper ~mean_bytes:500_000)
      ~deadline_mean:None ~seed:1
  in
  let net = Flowsim.net_of_topology built.Builder.topo in
  let proto =
    Flowsim.Pdq
      {
        Flowsim.pdq_defaults with
        Flowsim.early_termination = false;
        aging_rate = Some 1.0;
      }
  in
  1e3 *. (Flowsim.run ~seed:1 net proto specs).Flowsim.mean_fct

let entries () =
  [
    checked
      (Fid.band ~id:"fig3a.pdq_at" ~figure:"fig3a" ~metric:"app_throughput_pct"
         ~lo:84. ~hi:96.5)
      (Common.aggregation_scenario ~flows:10 (Runner.Pdq Config.full))
      at_pct;
    checked
      (Fid.band ~id:"fig4b.pdq_fct" ~figure:"fig4b" ~metric:"mean_fct_ms"
         ~lo:1.06 ~hi:1.23)
      (synthetic ~name:"fidelity fig4b stride" ~pattern:(Scenario.Stride 1)
         ~flows:12 (Runner.Pdq Config.full))
      fct_ms;
    checked
      (Fid.band ~id:"fig5b.pdq_fct" ~figure:"fig5b" ~metric:"mean_fct_ms"
         ~lo:0.86 ~hi:0.99)
      (synthetic ~name:"fidelity fig5b vl2 pairs" ~pattern:Scenario.Random_pairs
         ~flows:12 ~sizes:Scenario.Vl2 (Runner.Pdq Config.full))
      fct_ms;
    checked
      (Fid.band ~id:"fig8a.pdq_at" ~figure:"fig8a" ~metric:"app_throughput_pct"
         ~lo:89. ~hi:100.)
      (synthetic ~name:"fidelity fig8a fat-tree pairs"
         ~topo:(Scenario.Fat_tree_servers { servers = 16 })
         ~pattern:Scenario.Random_pairs ~flows:12 ~deadlines:paper_deadlines
         (Runner.Pdq Config.full))
      at_pct;
    checked
      (Fid.band ~id:"fig9b.pdq_fct" ~figure:"fig9b" ~metric:"mean_fct_ms"
         ~lo:3.34 ~hi:3.85)
      (synthetic ~name:"fidelity fig9b lossy bottleneck"
         ~topo:(Scenario.Bottleneck { senders = 6 })
         ~loss:(Scenario.Loss_on_bottleneck 0.01) ~pattern:Scenario.Aggregation
         ~flows:6 (Runner.Pdq Config.full))
      fct_ms;
    checked
      (Fid.band ~id:"fig10.est_fct" ~figure:"fig10" ~metric:"mean_fct_ms"
         ~lo:7.46 ~hi:8.58)
      (synthetic ~name:"fidelity fig10 size estimation"
         ~topo:(Scenario.Bottleneck { senders = 10 })
         ~pattern:Scenario.Aggregation ~flows:10
         (Runner.Pdq_estimated { config = Config.full; quantum = 50_000 }))
      fct_ms;
    checked
      (Fid.band ~id:"fig11a.mpdq_fct" ~figure:"fig11a" ~metric:"mean_fct_ms"
         ~lo:1.1 ~hi:1.27)
      (synthetic ~name:"fidelity fig11a bcube perm"
         ~topo:(Scenario.Bcube { n = 2; k = 3 })
         ~pattern:Scenario.Random_permutation ~flows:16
         (Runner.mpdq ~subflows:2 ()))
      fct_ms;
    unchecked
      (Fid.band ~id:"fig12.aging_fct" ~figure:"fig12" ~metric:"mean_fct_ms"
         ~lo:10.77 ~hi:12.4)
      fig12_aging_fct_ms;
  ]

let run ?jobs ppf =
  let measured = List.map (fun e -> e.eval ~jobs) (entries ()) in
  let outcomes = List.map (fun m -> m.outcome) measured in
  Fid.pp_outcomes ppf outcomes;
  let violations = List.concat_map (fun m -> m.violations) measured in
  if violations <> [] then
    Format.fprintf ppf "%a@." Report.pp_list violations;
  Format.pp_print_flush ppf ();
  Fid.all_ok outcomes && violations = []

let dump ?jobs ppf =
  List.iter
    (fun e ->
      let m = e.eval ~jobs in
      Format.fprintf ppf "%s %s %s measured %.6g (band [%g, %g])@."
        m.outcome.Fid.band.Fid.id m.outcome.Fid.band.Fid.figure
        m.outcome.Fid.band.Fid.metric m.outcome.Fid.value
        m.outcome.Fid.band.Fid.lo m.outcome.Fid.band.Fid.hi)
    (entries ());
  Format.pp_print_flush ppf ()
