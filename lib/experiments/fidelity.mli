(** Paper-fidelity regression gate.

    One committed {!Pdq_check.Fidelity.band} per evaluated figure
    (3a, 4b, 5b, 8a, 9b, 10, 11a, 12), each pinning a summary metric
    of that figure's smoke-scale experiment at seeds 1–2. The
    packet-level entries run through {!Pdq_exec.Scenario.run_checked},
    so the gate simultaneously asserts zero invariant/oracle
    violations; Fig. 12 exercises the flow-level engine's aging
    comparator and has no packet-level monitor.

    Runs are deterministic, so an out-of-band value is a behavioural
    code change, never noise. After an {e intentional} change, refresh
    the bands from [bench/main.exe -- --fidelity-dump] and commit the
    new intervals alongside the change. *)

val run : ?jobs:int -> Format.formatter -> bool
(** Evaluate every entry ([jobs] worker domains per entry's seed
    sweep), print the band outcomes plus any invariant violations, and
    return [true] iff all values are in band and no run violated an
    invariant. *)

val dump : ?jobs:int -> Format.formatter -> unit
(** Print each entry's measured value next to its committed band —
    the input for a deliberate band refresh. *)
