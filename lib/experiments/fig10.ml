module Builder = Pdq_topo.Builder
module Flowsim = Pdq_flowsim.Flowsim
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Sim = Pdq_engine.Sim

let schemes =
  [
    ("PDQ perfect info", Flowsim.Pdq { Flowsim.pdq_defaults with Flowsim.early_termination = false });
    ( "PDQ random criticality",
      Flowsim.Pdq
        {
          Flowsim.pdq_defaults with
          Flowsim.early_termination = false;
          criticality = Flowsim.Random_criticality;
        } );
    ( "PDQ size estimation (50KB)",
      Flowsim.Pdq
        {
          Flowsim.pdq_defaults with
          Flowsim.early_termination = false;
          criticality = Flowsim.Size_estimation 50_000;
        } );
    ("RCP", Flowsim.Rcp);
  ]

let mean_fct ~dist ~proto ~seed =
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders:10 () in
  let pairs =
    Pattern.aggregation ~hosts:built.Builder.hosts ~receiver:rx ~flows:10
  in
  let specs =
    Fig8.flowsim_specs ~built ~pairs ~sizes:dist ~deadline_mean:None ~seed
  in
  let net = Flowsim.net_of_topology built.Builder.topo in
  (* A finer step keeps the 10-flow schedule crisp at sub-ms scale. *)
  (Flowsim.run ~dt:1e-4 ~seed net proto specs).Flowsim.mean_fct

let fig10 ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let dists =
    [
      ("Uniform", Size_dist.uniform_paper ~mean_bytes:100_000);
      ("Pareto(1.1)", Size_dist.pareto ~tail_index:1.1 ~mean_bytes:100_000 ());
    ]
  in
  let rows =
    List.map
      (fun (name, proto) ->
        name
        :: List.map
             (fun (_, dist) ->
               Common.cell
                 (1e3
                 *. Pdq_exec.Sweep.average ?jobs ~seeds (fun seed ->
                        mean_fct ~dist ~proto ~seed)))
             dists)
      schemes
  in
  {
    Common.title =
      "Fig 10 - mean FCT [ms] with inaccurate flow information (10 flows, \
       mean 100KB, flow level)";
    header = "scheme" :: List.map fst dists;
    rows;
  }
