(** Figure 10 — resilience to inaccurate flow-size information
    (flow-level simulation, query aggregation, 10 deadline-
    unconstrained flows, mean size 100 KB).

    Compares PDQ with perfect flow information, PDQ with a random
    criticality, PDQ with size estimation (criticality refreshed every
    50 KB sent) and RCP, under uniform and Pareto(1.1) flow sizes. *)

val fig10 : ?jobs:int -> ?quick:bool -> unit -> Common.table
