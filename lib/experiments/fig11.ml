module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Rng = Pdq_engine.Rng
module Sim = Pdq_engine.Sim
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

(* Larger flows than the query workload so path diversity (not
   handshake latency) dominates the completion time. *)
let sizes = Size_dist.uniform_paper ~mean_bytes:500_000
let capacity_sizes = Size_dist.uniform_paper ~mean_bytes:100_000

(* Random permutation over a [load] fraction of the BCube(2,3) hosts. *)
let specs_at_load ~load ~deadlines ~seed ~hosts =
  let rng = Rng.create (0xF11 + (seed * 53)) in
  let n = Array.length hosts in
  let k = max 2 (int_of_float (float_of_int n *. load)) in
  let chosen = Array.sub (let a = Array.copy hosts in Rng.shuffle rng a; a) 0 k in
  let ddist = Deadline_dist.exponential ~mean:0.02 () in
  Pattern.random_permutation ~hosts:chosen ~rng
  |> List.map (fun (p : Pattern.pair) ->
         {
           Context.src = p.Pattern.src;
           dst = p.Pattern.dst;
           size = Size_dist.sample sizes rng;
           deadline =
             (if deadlines then Some (Deadline_dist.sample ddist rng) else None);
           start = 0.;
         })

let load_scenario ~load ~deadlines protocol =
  Scenario.make
    ~name:(Printf.sprintf "bcube perm @%.0f%%" (100. *. load))
    ~horizon:5.
    ~topo:(Scenario.Bcube { n = 2; k = 3 })
    ~workload:
      (Scenario.Generated
         {
           label = Printf.sprintf "permutation over %.0f%% of hosts" (100. *. load);
           specs =
             (fun ~seed ~topo:_ ~hosts ->
               specs_at_load ~load ~deadlines ~seed ~hosts);
         })
    protocol

(* BCube node ids are deterministic, so one throwaway instance provides
   the address-based parallel paths for every run (the closure is
   immutable and crosses worker domains freely). *)
let bcube_multipath =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  fun ~src ~dst -> Builder.bcube_paths ~n:2 ~k:3 built ~src ~dst

let mpdq subflows = Runner.mpdq ~subflows ~paths:bcube_multipath ()

let fig11a ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let loads = if quick then [ 0.25; 0.5; 1.0 ] else [ 0.125; 0.25; 0.5; 0.75; 1.0 ] in
  let protos = [ Runner.Pdq Pdq_core.Config.full; mpdq 3 ] in
  let fcts =
    Common.sweep_metric ~opts:(Pdq_exec.Exec_opts.make ?jobs ()) ~seeds
      ~metric:(fun r -> r.Runner.mean_fct)
      (fun (load, proto) -> load_scenario ~load ~deadlines:false proto)
      (List.concat_map
         (fun load -> List.map (fun p -> (load, p)) protos)
         loads)
    |> List.map snd
  in
  let rows =
    List.map2
      (fun load row ->
        Common.cell (100. *. load)
        :: List.map (fun fct -> Common.cell (1e3 *. fct)) row)
      loads
      (Common.chunks (List.length protos) fcts)
  in
  {
    Common.title = "Fig 11a - mean FCT [ms] vs load (BCube(2,3), random perm)";
    header = [ "load[%hosts]"; "PDQ"; "M-PDQ(3)" ];
    rows;
  }

let capacity_scenario ~flows protocol =
  Scenario.make
    ~name:(Printf.sprintf "bcube pairs x%d" flows)
    ~horizon:5.
    ~topo:(Scenario.Bcube { n = 2; k = 3 })
    ~workload:
      (Scenario.Generated
         {
           label = Printf.sprintf "%d random-pair deadline flows" flows;
           specs =
             (fun ~seed ~topo:_ ~hosts ->
               let rng = Rng.create (0xF11 + (seed * 53)) in
               let ddist = Deadline_dist.exponential ~mean:0.02 () in
               Pattern.random_pairs ~hosts ~flows ~rng
               |> List.map (fun (p : Pattern.pair) ->
                      {
                        Context.src = p.Pattern.src;
                        dst = p.Pattern.dst;
                        size = Size_dist.sample capacity_sizes rng;
                        deadline = Some (Deadline_dist.sample ddist rng);
                        start = 0.;
                      }));
         })
    protocol

let fig11bc ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let subflow_counts = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let proto k = if k = 1 then Runner.Pdq Pdq_core.Config.full else mpdq k in
  let rows =
    List.map
      (fun k ->
        let s = load_scenario ~load:1.0 ~deadlines:false (proto k) in
        let fct =
          Sweep.average ?jobs ~seeds (fun seed ->
              (Scenario.run (Scenario.with_seed s seed)).Runner.mean_fct)
        in
        (* (c): capacity search with extra deadline flows layered on the
           permutation by scaling the sending population. *)
        let cap =
          Common.search_max_flows ~hi:24 ~target:99. (fun n ->
              let s = capacity_scenario ~flows:n (proto k) in
              Sweep.average ?jobs ~seeds (fun seed ->
                  100.
                  *. (Scenario.run (Scenario.with_seed s seed))
                       .Runner.application_throughput))
        in
        [ (if k = 1 then "PDQ" else string_of_int k); Common.cell (1e3 *. fct);
          string_of_int cap ])
      subflow_counts
  in
  {
    Common.title =
      "Fig 11b/c - mean FCT [ms] and flows at 99% application throughput vs \
       subflow count (100% load)";
    header = [ "subflows"; "FCT[ms]"; "flows@99%AT" ];
    rows;
  }
