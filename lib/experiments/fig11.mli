(** Figure 11 — Multipath PDQ on BCube(2,3) (16 four-port servers)
    with random-permutation traffic.

    (a) mean FCT vs load (fraction of hosts sending), PDQ vs M-PDQ
        with 3 subflows;
    (b) mean FCT vs number of subflows at full load;
    (c) flows at 99% application throughput vs number of subflows. *)

val fig11a : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig11bc : ?jobs:int -> ?quick:bool -> unit -> Common.table
