module Builder = Pdq_topo.Builder
module Flowsim = Pdq_flowsim.Flowsim
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Rng = Pdq_engine.Rng
module Sim = Pdq_engine.Sim

(* Heavier-than-average sizes so that without aging the least critical
   flows visibly starve behind a stream of smaller ones. *)
let sizes = Size_dist.uniform_paper ~mean_bytes:500_000

let run ~aging_rate ~seed proto_of =
  let sim = Sim.create () in
  let built = Builder.fat_tree_for_servers ~sim ~servers:128 () in
  let rng = Rng.create (0xF12 + seed) in
  let pairs =
    List.concat
      (List.init 4 (fun _ ->
           Pattern.random_permutation ~hosts:built.Builder.hosts ~rng))
  in
  let specs =
    Fig8.flowsim_specs ~built ~pairs ~sizes ~deadline_mean:None ~seed
  in
  let net = Flowsim.net_of_topology built.Builder.topo in
  Flowsim.run ~seed net (proto_of aging_rate) specs

let fig12 ?jobs ?(quick = true) () =
  let rates = if quick then [ 0.; 1.; 4.; 10. ] else [ 0.; 0.5; 1.; 2.; 4.; 6.; 8.; 10. ] in
  let seed = 1 in
  let pdq alpha =
    Flowsim.Pdq
      {
        Flowsim.pdq_defaults with
        Flowsim.early_termination = false;
        aging_rate = (if alpha > 0. then Some alpha else None);
      }
  in
  let rcp = run ~aging_rate:0. ~seed (fun _ -> Flowsim.Rcp) in
  let pdq_runs =
    Pdq_exec.Sweep.map ?jobs (fun alpha -> run ~aging_rate:alpha ~seed pdq) rates
  in
  let rows =
    List.map2
      (fun alpha r ->
        [
          Common.cell alpha;
          Common.cell (1e3 *. r.Flowsim.mean_fct);
          Common.cell (1e3 *. r.Flowsim.max_fct);
          Common.cell (1e3 *. rcp.Flowsim.mean_fct);
          Common.cell (1e3 *. rcp.Flowsim.max_fct);
        ])
      rates pdq_runs
  in
  {
    Common.title =
      "Fig 12 - flow aging: FCT [ms] vs aging rate (128-server fat-tree, \
       flow level)";
    header = [ "alpha"; "PDQ mean"; "PDQ max"; "RCP/D3 mean"; "RCP/D3 max" ];
    rows;
  }
