(** Figure 12 — flow aging (§7): the operator-overridable comparator
    divides a flow's expected transmission time by 2^(α·wait/100 ms) so
    starving flows gain criticality. Flow-level simulation on a
    128-server fat-tree with random-permutation traffic.

    Expected shape: max FCT drops steeply with the aging rate (≈ −48%
    in the paper) while mean FCT inflates only marginally (≈ +1.7%);
    RCP max/mean shown for reference. *)

val fig12 : ?jobs:int -> ?quick:bool -> unit -> Common.table
