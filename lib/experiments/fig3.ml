module Runner = Pdq_transport.Runner
module Size_dist = Pdq_workload.Size_dist

let seeds ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ]

let at_metric (r : Runner.result) = 100. *. r.Runner.application_throughput
let fct_metric (r : Runner.result) = r.Runner.mean_fct

(* The (a)/(b)/(d)/(e) panels are embarrassingly parallel: every
   (row, protocol, seed) triple is an independent scenario, so they
   flatten into one [Common.sweep_metric] call instead of nesting the
   seed loop inside a per-cell loop. *)
let cells_by_row ?jobs ~seeds ~metric ~protocols ~scenario_of row_keys =
  let keys =
    List.concat_map
      (fun rk -> List.map (fun (_, proto) -> (rk, proto)) protocols)
      row_keys
  in
  Common.sweep_metric ~opts:(Pdq_exec.Exec_opts.make ?jobs ()) ~seeds ~metric
    (fun (rk, proto) -> scenario_of rk proto)
    keys
  |> List.map snd
  |> Common.chunks (List.length protocols)

(* (a): application throughput vs number of flows. *)
let fig3a ?jobs ?(quick = true) () =
  let seeds = seeds ~quick in
  let flows_list =
    if quick then [ 2; 5; 10; 15; 20 ] else [ 2; 5; 10; 15; 20; 25 ]
  in
  let measured =
    cells_by_row ?jobs ~seeds ~metric:at_metric
      ~protocols:Common.packet_protocols
      ~scenario_of:(fun n proto -> Common.aggregation_scenario ~flows:n proto)
      flows_list
  in
  let rows =
    List.map2
      (fun n cells ->
        let optimal =
          100. *. Common.optimal_aggregation_throughput ~seeds ~flows:n ()
        in
        string_of_int n :: Common.cell optimal :: List.map Common.cell cells)
      flows_list measured
  in
  {
    Common.title = "Fig 3a - application throughput [%] vs number of flows";
    header = "flows" :: "Optimal" :: List.map fst Common.packet_protocols;
    rows;
  }

(* (b): 3 flows, growing mean size. *)
let fig3b ?jobs ?(quick = true) () =
  let seeds = seeds ~quick in
  let means =
    if quick then [ 100_000; 200_000; 300_000 ]
    else [ 100_000; 150_000; 200_000; 250_000; 300_000; 350_000 ]
  in
  let measured =
    cells_by_row ?jobs ~seeds ~metric:at_metric
      ~protocols:Common.packet_protocols
      ~scenario_of:(fun mean proto ->
        Common.aggregation_scenario
          ~sizes:(Size_dist.uniform_paper ~mean_bytes:mean)
          ~flows:3 proto)
      means
  in
  let rows =
    List.map2
      (fun mean cells ->
        let sizes = Size_dist.uniform_paper ~mean_bytes:mean in
        let optimal =
          100. *. Common.optimal_aggregation_throughput ~seeds ~sizes ~flows:3 ()
        in
        string_of_int (mean / 1000)
        :: Common.cell optimal
        :: List.map Common.cell cells)
      means measured
  in
  {
    Common.title =
      "Fig 3b - application throughput [%] vs mean flow size (3 flows)";
    header = "size[KB]" :: "Optimal" :: List.map fst Common.packet_protocols;
    rows;
  }

(* (c): flows sustainable at 99% application throughput vs deadline.
   The binary search is inherently sequential (each probe depends on
   the last), so parallelism only enters through the per-probe seed
   sweep. *)
let fig3c ?jobs ?(quick = true) () =
  let seeds = seeds ~quick in
  let deadline_means =
    if quick then [ 0.02; 0.04; 0.06 ] else [ 0.02; 0.03; 0.04; 0.05; 0.06 ]
  in
  let hi = if quick then 48 else 64 in
  let protos =
    if quick then
      [
        List.nth Common.packet_protocols 0 (* PDQ(Full) *);
        List.nth Common.packet_protocols 3 (* PDQ(Basic) *);
        ("D3", Runner.D3);
        ("RCP", Runner.Rcp);
        ("TCP", Runner.Tcp);
      ]
    else Common.packet_protocols
  in
  let rows =
    List.map
      (fun dmean ->
        let optimal =
          Common.search_max_flows ~hi ~target:0.99 (fun n ->
              Common.optimal_aggregation_throughput ?jobs ~seeds
                ~deadline_mean:dmean ~flows:n ())
        in
        let cells =
          List.map
            (fun (_, proto) ->
              string_of_int
                (Common.search_max_flows ~hi ~target:99. (fun n ->
                     Common.run_aggregation ?jobs ~seeds ~deadline_mean:dmean
                       ~flows:n proto at_metric)))
            protos
        in
        (Common.cell (dmean *. 1e3) :: string_of_int optimal :: cells))
      deadline_means
  in
  {
    Common.title = "Fig 3c - number of flows at 99% application throughput";
    header = "deadline[ms]" :: "Optimal" :: List.map fst protos;
    rows;
  }

(* (d): mean FCT normalized to optimal (no deadlines). *)
let fct_protocols =
  [
    List.nth Common.packet_protocols 0;
    (* PDQ(Full) *)
    List.nth Common.packet_protocols 2;
    (* PDQ(ES) *)
    List.nth Common.packet_protocols 3;
    (* PDQ(Basic) *)
    ("RCP/D3", Runner.Rcp);
    ("TCP", Runner.Tcp);
  ]

let fig3d ?jobs ?(quick = true) () =
  let seeds = seeds ~quick in
  let flows_list =
    if quick then [ 1; 5; 10; 20 ] else [ 1; 5; 10; 15; 20; 25 ]
  in
  let measured =
    cells_by_row ?jobs ~seeds ~metric:fct_metric ~protocols:fct_protocols
      ~scenario_of:(fun n proto ->
        Common.aggregation_scenario ~deadlines:false ~flows:n proto)
      flows_list
  in
  let rows =
    List.map2
      (fun n cells ->
        let optimal = Common.optimal_aggregation_fct ~seeds ~flows:n () in
        string_of_int n
        :: List.map (fun fct -> Common.cell (fct /. optimal)) cells)
      flows_list measured
  in
  {
    Common.title = "Fig 3d - mean FCT normalized to optimal vs number of flows";
    header = "flows" :: List.map fst fct_protocols;
    rows;
  }

let fig3e ?jobs ?(quick = true) () =
  let seeds = seeds ~quick in
  let means =
    if quick then [ 100_000; 200_000; 300_000 ]
    else [ 100_000; 150_000; 200_000; 250_000; 300_000; 350_000 ]
  in
  let measured =
    cells_by_row ?jobs ~seeds ~metric:fct_metric ~protocols:fct_protocols
      ~scenario_of:(fun mean proto ->
        Common.aggregation_scenario ~deadlines:false
          ~sizes:(Size_dist.uniform_paper ~mean_bytes:mean)
          ~flows:3 proto)
      means
  in
  let rows =
    List.map2
      (fun mean cells ->
        let sizes = Size_dist.uniform_paper ~mean_bytes:mean in
        let optimal = Common.optimal_aggregation_fct ~seeds ~sizes ~flows:3 () in
        string_of_int (mean / 1000)
        :: List.map (fun fct -> Common.cell (fct /. optimal)) cells)
      means measured
  in
  {
    Common.title = "Fig 3e - mean FCT normalized to optimal vs mean flow size";
    header = "size[KB]" :: List.map fst fct_protocols;
    rows;
  }

(* Forensic companion to (a)/(d): instead of one scalar per cell, show
   where PDQ(Full)'s completion time actually went on the canonical
   aggregation scenario — serialization vs. preemption pauses. *)
let attribution ?(flows = 6) ?(seed = 1) () =
  let scenario =
    Common.aggregation_scenario ~seed ~flows (snd (List.hd Common.pdq_variants))
  in
  Common.attribution_table
    ~title:
      (Printf.sprintf
         "Fig 3 forensics - PDQ(Full) FCT attribution [ms], %d flows, seed %d"
         flows seed)
    (Common.attribution_report scenario)
