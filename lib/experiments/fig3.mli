(** Figure 3 — query aggregation on the default 12-server tree.

    (a) application throughput vs number of concurrent flows;
    (b) application throughput vs mean flow size (3 flows);
    (c) number of flows at 99% application throughput vs mean deadline;
    (d) mean FCT normalized to optimal vs number of flows (no
        deadlines);
    (e) normalized FCT vs mean flow size (3 flows, no deadlines).

    [quick] trims sweep points and seeds so the whole bench stays
    interactive; the shapes are unaffected. [jobs] spreads the
    (row × protocol × seed) scenario grid over that many domains —
    panels (a)/(b)/(d)/(e) flatten the whole grid, (c) parallelizes
    only each binary-search probe's seed sweep. Results are identical
    for any [jobs]. *)

val fig3a : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig3b : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig3c : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig3d : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig3e : ?jobs:int -> ?quick:bool -> unit -> Common.table

val attribution : ?flows:int -> ?seed:int -> unit -> Common.table
(** Per-flow FCT attribution (via {!Common.attribution_report}) of one
    PDQ(Full) run of the Fig. 3 aggregation scenario — the forensic
    view behind panels (a)/(d): most of a preempted flow's FCT should
    sit in the [paused] column. Defaults: 6 flows, seed 1. *)
