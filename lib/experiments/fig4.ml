module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Rng = Pdq_engine.Rng
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

type pattern_name = string

let patterns =
  [
    "Aggregation";
    "Stride(1)";
    "Stride(N/2)";
    "Staggered(0.7)";
    "Staggered(0.3)";
    "RandPerm";
  ]

(* Source/destination pairs of a named pattern; cycled to produce the
   requested number of flows. *)
let pattern_pairs name ~topo ~hosts ~rng =
  let n = Array.length hosts in
  match name with
  | "Aggregation" -> Pattern.aggregation ~hosts ~receiver:hosts.(0) ~flows:n
  | "Stride(1)" -> Pattern.stride ~hosts ~i:1
  | "Stride(N/2)" -> Pattern.stride ~hosts ~i:(n / 2)
  | "Staggered(0.7)" ->
      Pattern.staggered ~rack_of:(Pdq_net.Topology.rack_of topo) ~hosts ~p:0.7 ~rng
  | "Staggered(0.3)" ->
      Pattern.staggered ~rack_of:(Pdq_net.Topology.rack_of topo) ~hosts ~p:0.3 ~rng
  | "RandPerm" -> Pattern.random_permutation ~hosts ~rng
  | other -> invalid_arg ("Fig4.pattern_pairs: " ^ other)

let specs_of_pattern name ~deadlines ~flows ~seed ~topo ~hosts =
  let rng = Rng.create (0xF16 + (seed * 131)) in
  let sizes = Size_dist.uniform_paper ~mean_bytes:100_000 in
  let ddist = Deadline_dist.exponential ~mean:0.02 () in
  let pairs = Array.of_list (pattern_pairs name ~topo ~hosts ~rng) in
  List.init flows (fun i ->
      let p = pairs.(i mod Array.length pairs) in
      {
        Context.src = p.Pattern.src;
        dst = p.Pattern.dst;
        size = Size_dist.sample sizes rng;
        deadline =
          (if deadlines then Some (Deadline_dist.sample ddist rng) else None);
        start = 0.;
      })

let pattern_scenario name ~deadlines ~flows protocol =
  Scenario.make
    ~name:(Printf.sprintf "%s x%d" name flows)
    ~horizon:5.
    ~workload:
      (Scenario.Generated
         {
           label = Printf.sprintf "%d %s flows" flows name;
           specs =
             (fun ~seed ~topo ~hosts ->
               specs_of_pattern name ~deadlines ~flows ~seed ~topo ~hosts);
         })
    protocol

let fig4a ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let protos =
    if quick then
      [
        List.nth Common.packet_protocols 0;
        List.nth Common.packet_protocols 3;
        ("D3", Runner.D3);
        ("RCP", Runner.Rcp);
        ("TCP", Runner.Tcp);
      ]
    else Common.packet_protocols
  in
  let capacity name proto =
    Common.search_max_flows ~hi:(if quick then 36 else 64) ~target:99.
      (fun flows ->
        let scenario = pattern_scenario name ~deadlines:true ~flows proto in
        Sweep.average ?jobs ~seeds (fun seed ->
            let r = Scenario.run (Scenario.with_seed scenario seed) in
            100. *. r.Runner.application_throughput))
  in
  let rows =
    List.map
      (fun name ->
        let base = max 1 (capacity name (snd (List.hd protos))) in
        let cells =
          List.map
            (fun (_, proto) ->
              Common.cell (float_of_int (capacity name proto) /. float_of_int base))
            protos
        in
        name :: cells)
      patterns
  in
  {
    Common.title =
      "Fig 4a - flows at 99% application throughput, normalized to PDQ(Full)";
    header = "pattern" :: List.map fst protos;
    rows;
  }

let fig4b ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let protos =
    [
      List.nth Common.packet_protocols 0;
      List.nth Common.packet_protocols 2;
      List.nth Common.packet_protocols 3;
      ("RCP/D3", Runner.Rcp);
      ("TCP", Runner.Tcp);
    ]
  in
  let flows = 12 in
  (* One sweep over the whole pattern × protocol grid. *)
  let fcts =
    Common.sweep_metric ~opts:(Pdq_exec.Exec_opts.make ?jobs ()) ~seeds
      ~metric:(fun r -> r.Runner.mean_fct)
      (fun (name, proto) -> pattern_scenario name ~deadlines:false ~flows proto)
      (List.concat_map
         (fun name -> List.map (fun (_, p) -> (name, p)) protos)
         patterns)
    |> List.map snd
  in
  let nprotos = List.length protos in
  let rows =
    List.mapi
      (fun i name ->
        let row = List.filteri (fun j _ -> j / nprotos = i) fcts in
        let base = List.hd row in
        name :: List.map (fun fct -> Common.cell (fct /. base)) row)
      patterns
  in
  {
    Common.title = "Fig 4b - mean FCT normalized to PDQ(Full)";
    header = "pattern" :: List.map fst protos;
    rows;
  }
