(** Figure 4 — impact of the sending pattern on the 12-server tree:
    Aggregation, Stride(1), Stride(N/2), Staggered(0.7), Staggered(0.3)
    and Random Permutation.

    (a) deadline-constrained: number of flows at 99% application
        throughput, normalized to PDQ(Full);
    (b) deadline-unconstrained: mean FCT normalized to PDQ(Full). *)

type pattern_name = string

val patterns : pattern_name list

val fig4a : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig4b : ?jobs:int -> ?quick:bool -> unit -> Common.table
