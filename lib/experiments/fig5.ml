module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Arrivals = Pdq_workload.Arrivals
module Rng = Pdq_engine.Rng
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

let short_flow_bytes = 40_000

(* Poisson trace of [dist]-sized flows over random pairs; short flows
   get deadlines. *)
let trace_specs ~dist ~deadline_mean ~rate ~duration ~seed ~hosts =
  let rng = Rng.create (0xF5 + (seed * 1009)) in
  let ddist = Deadline_dist.exponential ~mean:deadline_mean () in
  let starts = Arrivals.poisson ~rng ~rate ~horizon:duration in
  let pairs = Pattern.random_pairs ~hosts ~flows:(List.length starts) ~rng in
  List.map2
    (fun start (p : Pattern.pair) ->
      let size = Size_dist.sample dist rng in
      {
        Context.src = p.Pattern.src;
        dst = p.Pattern.dst;
        size;
        deadline =
          (if size < short_flow_bytes then Some (Deadline_dist.sample ddist rng)
           else None);
        start;
      })
    starts pairs

let trace_scenario ~dist ~deadline_mean ~rate ~duration protocol =
  Scenario.make
    ~name:(Printf.sprintf "poisson trace @%.0f/s" rate)
    ~horizon:(duration +. 3.)
    ~workload:
      (Scenario.Generated
         {
           label = Printf.sprintf "poisson %.0f flows/s for %.2fs" rate duration;
           specs =
             (fun ~seed ~topo:_ ~hosts ->
               trace_specs ~dist ~deadline_mean ~rate ~duration ~seed ~hosts);
         })
    protocol

(* A trace can be empty at low rate × short duration; such runs carry
   no signal and drop out of the average (the [nan] convention the
   sequential driver always used). *)
let guard metric (r : Runner.result) =
  if Array.length r.Runner.flows = 0 then nan else metric r

let mean_ignoring_nan xs =
  let xs = List.filter (fun x -> not (Float.is_nan x)) xs in
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let fig5a ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let duration = if quick then 0.05 else 0.2 in
  let deadline_means = if quick then [ 0.02; 0.04 ] else [ 0.015; 0.02; 0.03; 0.04 ] in
  let protos =
    if quick then
      [
        List.nth Common.packet_protocols 0;
        List.nth Common.packet_protocols 1;
        ("D3", Runner.D3);
        ("RCP", Runner.Rcp);
        ("TCP", Runner.Tcp);
      ]
    else Common.packet_protocols
  in
  let dist = Size_dist.vl2 () in
  (* Grid search over the arrival rate (flows/s): the sequential
     driver probed every rate anyway, so the whole
     deadline × protocol × rate × seed grid is one flat sweep. *)
  let rates = [ 250.; 500.; 1000.; 2000.; 4000.; 8000. ] in
  let grid =
    List.concat_map
      (fun dmean ->
        List.concat_map
          (fun (_, proto) ->
            List.concat_map
              (fun rate -> List.map (fun seed -> (dmean, proto, rate, seed)) seeds)
              rates)
          protos)
      deadline_means
  in
  let ats =
    Sweep.map ?jobs
      (fun (deadline_mean, proto, rate, seed) ->
        let s = trace_scenario ~dist ~deadline_mean ~rate ~duration proto in
        guard
          (fun r -> r.Runner.application_throughput)
          (Scenario.run (Scenario.with_seed s seed)))
      grid
    |> Array.of_list
  in
  let nseeds = List.length seeds and nrates = List.length rates in
  let nprotos = List.length protos in
  let max_rate di pi =
    List.fold_left
      (fun acc ri ->
        let base = (((di * nprotos) + pi) * nrates + ri) * nseeds in
        let at =
          mean_ignoring_nan (List.init nseeds (fun si -> ats.(base + si)))
        in
        if at >= 0.99 then List.nth rates ri else acc)
      0.
      (List.init nrates Fun.id)
  in
  let rows =
    List.mapi
      (fun di dmean ->
        Common.cell (dmean *. 1e3)
        :: List.mapi (fun pi _ -> Common.cell (max_rate di pi)) protos)
      deadline_means
  in
  {
    Common.title =
      "Fig 5a - short-flow arrival rate [flows/s] at 99% application \
       throughput (VL2-like workload)";
    header = "deadline[ms]" :: List.map fst protos;
    rows;
  }

let long_fct (r : Runner.result) =
  let longs =
    Array.to_list r.Runner.flows
    |> List.filter_map (fun (f : Runner.flow_result) ->
           if f.Runner.spec.Context.size >= 1_000_000 then f.Runner.fct else None)
  in
  match longs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. longs /. float_of_int (List.length longs)

let norm_table ?jobs ~title ~dist ~metric ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let duration = if quick then 0.05 else 0.2 in
  let rate = 1500. in
  let protos =
    [
      List.nth Common.packet_protocols 0;
      List.nth Common.packet_protocols 2;
      List.nth Common.packet_protocols 3;
      ("RCP/D3", Runner.Rcp);
      ("TCP", Runner.Tcp);
    ]
  in
  let values =
    Sweep.map ?jobs
      (fun (proto, seed) ->
        let s = trace_scenario ~dist ~deadline_mean:0.02 ~rate ~duration proto in
        guard metric (Scenario.run (Scenario.with_seed s seed)))
      (List.concat_map
         (fun (_, p) -> List.map (fun seed -> (p, seed)) seeds)
         protos)
    |> Array.of_list
  in
  let nseeds = List.length seeds in
  let value pi =
    mean_ignoring_nan (List.init nseeds (fun si -> values.((pi * nseeds) + si)))
  in
  let base = value 0 in
  let rows =
    [
      "normalized"
      :: List.mapi (fun pi _ -> Common.cell (value pi /. base)) protos;
    ]
  in
  { Common.title = title; header = "metric" :: List.map fst protos; rows }

let fig5b ?jobs ?(quick = true) () =
  norm_table ?jobs
    ~title:"Fig 5b - FCT of long flows, normalized to PDQ(Full) (VL2-like)"
    ~dist:(Size_dist.vl2 ()) ~metric:long_fct ~quick ()

let fig5c ?jobs ?(quick = true) () =
  norm_table ?jobs
    ~title:"Fig 5c - mean FCT normalized to PDQ(Full) (EDU1-like)"
    ~dist:(Size_dist.edu1 ())
    ~metric:(fun r -> r.Runner.mean_fct)
    ~quick ()
