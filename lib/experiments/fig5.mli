(** Figure 5 — realistic datacenter workloads.

    (a) VL2-like commercial-cloud size mixture, random-permutation
        pairing, Poisson arrivals; short flows (< 40 KB) are
        deadline-constrained. Reported: the maximum short-flow arrival
        rate sustaining 99% application throughput vs the mean flow
        deadline.
    (b) Same workload: mean FCT of long flows, normalized to
        PDQ(Full).
    (c) EDU1-like university-datacenter workload: overall mean FCT
        normalized to PDQ(Full). *)

val fig5a : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig5b : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig5c : ?jobs:int -> ?quick:bool -> unit -> Common.table
