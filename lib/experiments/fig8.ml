module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Router = Pdq_net.Router
module Pattern = Pdq_workload.Pattern
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Flowsim = Pdq_flowsim.Flowsim
module Rng = Pdq_engine.Rng
module Sim = Pdq_engine.Sim
module Stats = Pdq_engine.Stats
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

let flowsim_specs ~built ~pairs ~sizes ~deadline_mean ~seed =
  let router = Router.create built.Builder.topo in
  let rng = Rng.create (0xF8 + (seed * 37)) in
  let ddist =
    Option.map (fun mean -> Deadline_dist.exponential ~mean ()) deadline_mean
  in
  List.mapi
    (fun i (p : Pattern.pair) ->
      {
        Flowsim.fs_id = i;
        path =
          Router.path_links router ~src:p.Pattern.src ~dst:p.Pattern.dst
            ~choice:i;
        size = Size_dist.sample sizes rng;
        deadline = Option.map (fun d -> Deadline_dist.sample d rng) ddist;
        start = 0.;
      })
    pairs

let packet_specs ~pairs ~sizes ~deadline_mean ~seed =
  let rng = Rng.create (0xF8 + (seed * 37)) in
  let ddist =
    Option.map (fun mean -> Deadline_dist.exponential ~mean ()) deadline_mean
  in
  List.map
    (fun (p : Pattern.pair) ->
      {
        Context.src = p.Pattern.src;
        dst = p.Pattern.dst;
        size = Size_dist.sample sizes rng;
        deadline = Option.map (fun d -> Deadline_dist.sample d rng) ddist;
        start = 0.;
      })
    pairs

type topo_family = Fat_tree | Bcube | Jellyfish

let family_topo family ~servers =
  match family with
  | Fat_tree -> Scenario.Fat_tree_servers { servers }
  | Bcube ->
      (* Dual-port BCube(n,1): n^2 servers. *)
      let n = max 2 (int_of_float (ceil (sqrt (float_of_int servers)))) in
      Scenario.Bcube { n; k = 1 }
  | Jellyfish ->
      (* 24-port switches, 2:1 network:server ports -> 8 hosts each;
         wiring salt 77 reproduces the historical wiring rng. *)
      let switches = max 3 ((servers + 7) / 8) in
      Scenario.Jellyfish
        { switches; ports = 24; net_ports = 16; wiring_salt = 77 }

(* The flow-level engine builds the same topology itself (it is not a
   packet run, so it bypasses the scenario runner). *)
let build family ~sim ~servers ~seed =
  match family with
  | Fat_tree -> Builder.fat_tree_for_servers ~sim ~servers ()
  | Bcube ->
      let n = max 2 (int_of_float (ceil (sqrt (float_of_int servers)))) in
      Builder.bcube ~sim ~n ~k:1 ()
  | Jellyfish ->
      let switches = max 3 ((servers + 7) / 8) in
      Builder.jellyfish ~sim ~rng:(Rng.create (77 + seed)) ~switches ~ports:24
        ~net_ports:16 ()

let sizes_100k = Size_dist.uniform_paper ~mean_bytes:100_000

(* Random-permutation pairs with [per_server] flows per sender. *)
let perm_pairs ~hosts ~per_server ~rng =
  List.concat (List.init per_server (fun _ -> Pattern.random_permutation ~hosts ~rng))

(* Packet-level runs go through a scenario; [pairs] abstracts the two
   pairings this figure uses (random permutation / random pairs). *)
let packet_scenario family ~servers ~deadline_mean ~label ~pairs proto =
  Scenario.make ~name:label ~horizon:5.
    ~topo:(family_topo family ~servers)
    ~workload:
      (Scenario.Generated
         {
           label;
           specs =
             (fun ~seed ~topo:_ ~hosts ->
               packet_specs ~pairs:(pairs ~seed ~hosts) ~sizes:sizes_100k
                 ~deadline_mean ~seed);
         })
    proto

let flowlevel_fct family ~servers ~per_server ~proto ~seed =
  let sim = Sim.create () in
  let built = build family ~sim ~servers ~seed in
  let rng = Rng.create (3 + seed) in
  let pairs = perm_pairs ~hosts:built.Builder.hosts ~per_server ~rng in
  let specs =
    flowsim_specs ~built ~pairs ~sizes:sizes_100k ~deadline_mean:None ~seed
  in
  let net = Flowsim.net_of_topology built.Builder.topo in
  let r = Flowsim.run ~seed net proto specs in
  r.Flowsim.mean_fct

let packetlevel_fct family ~servers ~per_server ~proto ~seed =
  let scenario =
    packet_scenario family ~servers ~deadline_mean:None
      ~label:(Printf.sprintf "perm x%d" per_server)
      ~pairs:(fun ~seed ~hosts ->
        perm_pairs ~hosts ~per_server ~rng:(Rng.create (3 + seed)))
      proto
  in
  (Scenario.run (Scenario.with_seed scenario seed)).Runner.mean_fct

(* (a) deadline-constrained capacity vs size: concurrent random-pair
   deadline flows; search the count sustaining 99% AT. Each table cell
   is an independent binary search, so the cells fan out over the
   domain pool. *)
let fig8a ?jobs ?(quick = true) () =
  let sizes_list = if quick then [ 16; 54; 128 ] else [ 16; 54; 128; 250; 432; 1024 ] in
  let pkt_cap = if quick then 54 else 128 in
  let seed = 1 in
  let flow_cap servers flows proto_fs =
    let sim = Sim.create () in
    let built = build Fat_tree ~sim ~servers ~seed in
    let rng = Rng.create (11 + seed) in
    let pairs = Pattern.random_pairs ~hosts:built.Builder.hosts ~flows ~rng in
    let specs =
      flowsim_specs ~built ~pairs ~sizes:sizes_100k ~deadline_mean:(Some 0.02)
        ~seed
    in
    let net = Flowsim.net_of_topology built.Builder.topo in
    (Flowsim.run ~seed net proto_fs specs).Flowsim.application_throughput
  in
  let pkt_cap_run servers flows proto =
    let scenario =
      packet_scenario Fat_tree ~servers ~deadline_mean:(Some 0.02)
        ~label:(Printf.sprintf "pairs x%d" flows)
        ~pairs:(fun ~seed ~hosts ->
          Pattern.random_pairs ~hosts ~flows ~rng:(Rng.create (11 + seed)))
        proto
    in
    (Scenario.run (Scenario.with_seed scenario seed))
      .Runner.application_throughput
  in
  let hi servers = max 16 (servers * 2) in
  let cell_thunks =
    List.concat_map
      (fun servers ->
        let fl proto () =
          string_of_int
            (Common.search_max_flows ~hi:(hi servers) ~target:0.99 (fun n ->
                 flow_cap servers n proto))
        in
        let pk proto () =
          if servers > pkt_cap then "-"
          else
            string_of_int
              (Common.search_max_flows ~hi:(hi servers) ~target:0.99 (fun n ->
                   pkt_cap_run servers n proto))
        in
        [
          pk (Runner.Pdq Pdq_core.Config.full);
          fl (Flowsim.Pdq Flowsim.pdq_defaults);
          pk Runner.D3;
          fl Flowsim.D3;
          pk Runner.Rcp;
          fl Flowsim.Rcp;
        ])
      sizes_list
  in
  let cells = Sweep.map ?jobs (fun f -> f ()) cell_thunks in
  let rows =
    List.map2
      (fun servers row -> string_of_int servers :: row)
      sizes_list
      (Common.chunks 6 cells)
  in
  {
    Common.title =
      "Fig 8a - flows at 99% application throughput vs network size (fat-tree)";
    header =
      [
        "servers"; "PDQ-pkt"; "PDQ-flow"; "D3-pkt"; "D3-flow"; "RCP-pkt";
        "RCP-flow";
      ];
    rows;
  }

let fct_table ?jobs ~title family ?(quick = true) () =
  let sizes_list =
    if quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096 ]
  in
  let sizes_list =
    match family with
    | Fat_tree -> if quick then [ 16; 54; 128 ] else [ 16; 54; 128; 432; 1024 ]
    | Bcube | Jellyfish -> sizes_list
  in
  let pkt_cap = if quick then 64 else 144 in
  let per_server = if quick then 4 else 10 in
  let seed = 1 in
  let cell_thunks =
    List.concat_map
      (fun servers ->
        let pkt proto () =
          if servers > pkt_cap then "-"
          else
            Common.cell
              (1e3 *. packetlevel_fct family ~servers ~per_server ~proto ~seed)
        in
        let flow proto () =
          Common.cell
            (1e3 *. flowlevel_fct family ~servers ~per_server ~proto ~seed)
        in
        [
          pkt (Runner.Pdq Pdq_core.Config.full);
          flow (Flowsim.Pdq Flowsim.pdq_defaults);
          pkt Runner.Rcp;
          flow Flowsim.Rcp;
        ])
      sizes_list
  in
  let cells = Sweep.map ?jobs (fun f -> f ()) cell_thunks in
  let rows =
    List.map2
      (fun servers row -> string_of_int servers :: row)
      sizes_list
      (Common.chunks 4 cells)
  in
  {
    Common.title = title;
    header = [ "servers"; "PDQ-pkt[ms]"; "PDQ-flow[ms]"; "RCP/D3-pkt[ms]"; "RCP/D3-flow[ms]" ];
    rows;
  }

let fig8b ?jobs ?quick () =
  fct_table ?jobs
    ~title:"Fig 8b - mean FCT vs network size (fat-tree, random perm)"
    Fat_tree ?quick ()

let fig8c ?jobs ?quick () =
  fct_table ?jobs
    ~title:"Fig 8c - mean FCT vs network size (BCube, dual-port)"
    Bcube ?quick ()

let fig8d ?jobs ?quick () =
  fct_table ?jobs
    ~title:"Fig 8d - mean FCT vs network size (Jellyfish 24-port, 2:1)"
    Jellyfish ?quick ()

(* (e) per-flow FCT ratio CDF at ~128 servers, flow level. *)
let fig8e ?jobs ?(quick = true) () =
  let seed = 1 in
  let families =
    [ ("Fat-tree", Fat_tree); ("BCube", Bcube); ("Jellyfish", Jellyfish) ]
  in
  let per_server = if quick then 4 else 10 in
  let ratios (_, family) =
    let sim = Sim.create () in
    let built = build family ~sim ~servers:128 ~seed in
    let rng = Rng.create (5 + seed) in
    let pairs = perm_pairs ~hosts:built.Builder.hosts ~per_server ~rng in
    let specs =
      flowsim_specs ~built ~pairs ~sizes:sizes_100k ~deadline_mean:None ~seed
    in
    let net = Flowsim.net_of_topology built.Builder.topo in
    let pdq = Flowsim.run ~seed net (Flowsim.Pdq Flowsim.pdq_defaults) specs in
    let rcp = Flowsim.run ~seed net Flowsim.Rcp specs in
    Array.to_list
      (Array.map2
         (fun (a : Flowsim.flow_result) (b : Flowsim.flow_result) ->
           match (a.Flowsim.fct, b.Flowsim.fct) with
           | Some p, Some r when p > 0. -> Some (r /. p)
           | _ -> None)
         pdq.Flowsim.flows rcp.Flowsim.flows)
    |> List.filter_map Fun.id
    |> Array.of_list
  in
  let quantiles = [ 0.25; 0.5; 1.; 2.; 4.; 8. ] in
  let per_family = Sweep.map ?jobs ratios families in
  let rows =
    List.map2
      (fun (name, _) rs ->
        let cdf = Stats.cdf rs in
        name
        :: List.map (fun q -> Common.cell (Stats.cdf_at cdf q)) quantiles)
      families per_family
  in
  {
    Common.title =
      "Fig 8e - CDF of per-flow (RCP FCT / PDQ FCT), flow level, 128 servers \
       (cells: fraction of flows with ratio <= x)";
    header =
      "topology" :: List.map (fun q -> Printf.sprintf "x=%.2g" q) quantiles;
    rows;
  }
