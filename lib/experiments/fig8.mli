(** Figure 8 — scalability across topologies (fat-tree, BCube,
    Jellyfish), packet-level vs flow-level simulation.

    (a) fat-tree, deadline-constrained: flows at 99% application
        throughput vs network size (both simulators at small scale,
        flow-level beyond);
    (b) fat-tree, deadline-unconstrained: mean FCT vs size (random
        permutation, 10 flows per server);
    (c) BCube (dual-port servers) and (d) Jellyfish: same as (b);
    (e) CDF of per-flow RCP FCT / PDQ FCT at ~128 servers. *)

val fig8a : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig8b : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig8c : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig8d : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig8e : ?jobs:int -> ?quick:bool -> unit -> Common.table

val flowsim_specs :
  built:Pdq_topo.Builder.built ->
  pairs:Pdq_workload.Pattern.pair list ->
  sizes:Pdq_workload.Size_dist.t ->
  deadline_mean:float option ->
  seed:int ->
  Pdq_flowsim.Flowsim.flow_spec list
(** Convert pattern pairs into flow-level specs with ECMP-pinned paths
    (shared with Fig 10/12). *)
