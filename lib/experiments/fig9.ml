module Runner = Pdq_transport.Runner
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

(* Query aggregation on the single-bottleneck topology of Fig. 2b with
   loss injected on the switch<->receiver links. *)
let scenario ~loss_rate ~flows ~deadlines protocol =
  Scenario.make
    ~name:(Printf.sprintf "lossy bottleneck %.1f%%" (loss_rate *. 100.))
    ~horizon:5.
    ~topo:(Scenario.Bottleneck { senders = max 4 flows })
    ~loss:
      (if loss_rate > 0. then Scenario.Loss_on_bottleneck loss_rate
       else Scenario.No_loss)
    ~workload:
      (Scenario.Generated
         {
           label = Printf.sprintf "%d aggregation flows" flows;
           specs =
             (fun ~seed ~topo:_ ~hosts ->
               let rx = hosts.(Array.length hosts - 1) in
               (Common.aggregation_workload ~deadlines ~seed ~hosts ~receiver:rx
                  ~flows ())
                 .Common.specs);
         })
    protocol

let run ?jobs ~loss_rate ~flows ~deadlines ~seeds protocol metric =
  let s = scenario ~loss_rate ~flows ~deadlines protocol in
  Sweep.average ?jobs ~seeds (fun seed ->
      metric (Scenario.run (Scenario.with_seed s seed)))

let losses ~quick = if quick then [ 0.; 0.01; 0.03 ] else [ 0.; 0.005; 0.01; 0.02; 0.03 ]

let protocols = [ ("PDQ", Runner.Pdq Pdq_core.Config.full); ("TCP", Runner.Tcp) ]

let fig9a ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let rows =
    List.map
      (fun loss_rate ->
        Common.cell (loss_rate *. 100.)
        :: List.map
             (fun (_, proto) ->
               string_of_int
                 (Common.search_max_flows ~hi:24 ~target:99. (fun flows ->
                      run ?jobs ~loss_rate ~flows ~deadlines:true ~seeds proto
                        (fun r -> 100. *. r.Runner.application_throughput))))
             protocols)
      (losses ~quick)
  in
  {
    Common.title = "Fig 9a - flows at 99% application throughput vs loss rate";
    header = "loss[%]" :: List.map fst protocols;
    rows;
  }

let fig9b ?jobs ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let flows = 6 in
  (* One sweep over the loss × protocol grid; row order is preserved. *)
  let fcts =
    Common.sweep_metric ~opts:(Pdq_exec.Exec_opts.make ?jobs ()) ~seeds
      ~metric:(fun r -> r.Runner.mean_fct)
      (fun (loss_rate, proto) -> scenario ~loss_rate ~flows ~deadlines:false proto)
      (List.concat_map
         (fun loss_rate -> List.map (fun (_, p) -> (loss_rate, p)) protocols)
         (losses ~quick))
    |> List.map snd
  in
  let per_row = Common.chunks (List.length protocols) fcts in
  let base = List.hd (List.hd per_row) in
  let rows =
    List.map2
      (fun loss_rate row ->
        Common.cell (loss_rate *. 100.)
        :: List.map (fun fct -> Common.cell (fct /. base)) row)
      (losses ~quick) per_row
  in
  {
    Common.title = "Fig 9b - mean FCT normalized to PDQ without loss";
    header = "loss[%]" :: List.map fst protocols;
    rows;
  }

(* Forensic companion: under injected loss the [recov] column should
   absorb the FCT inflation that fig9b only shows as a ratio. *)
let attribution ?(loss_rate = 0.01) ?(flows = 6) ?(seed = 1) () =
  let s =
    Scenario.with_seed
      (scenario ~loss_rate ~flows ~deadlines:false (snd (List.hd protocols)))
      seed
  in
  Common.attribution_table
    ~title:
      (Printf.sprintf
         "Fig 9 forensics - PDQ FCT attribution [ms] at %.1f%% loss, %d \
          flows, seed %d"
         (loss_rate *. 100.) flows seed)
    (Common.attribution_report s)
