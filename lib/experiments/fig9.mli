(** Figure 9 — resilience to packet loss: Bernoulli drops injected on
    both directions of the bottleneck link of a query-aggregation
    workload, sweeping 0–3%.

    (a) deadline-constrained: flows sustained at 99% application
        throughput vs loss rate (PDQ vs TCP);
    (b) deadline-unconstrained: mean FCT normalized to PDQ without
        loss. *)

val fig9a : ?jobs:int -> ?quick:bool -> unit -> Common.table
val fig9b : ?jobs:int -> ?quick:bool -> unit -> Common.table

val attribution :
  ?loss_rate:float -> ?flows:int -> ?seed:int -> unit -> Common.table
(** Per-flow FCT attribution of one PDQ run of the lossy-bottleneck
    scenario: the loss-recovery component isolates what fig9b reports
    only as an FCT ratio. Defaults: 1% loss, 6 flows, seed 1. *)
