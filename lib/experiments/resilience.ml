(* Resilience under injected faults: how gracefully does each protocol
   degrade when the fabric misbehaves?

   Three sweeps, each over a fault-intensity axis:
   - bursty loss: a standing Gilbert-Elliott channel on the bottleneck
     cable with a fixed ~5% average loss whose burst length grows —
     random scattered loss vs. long black-out bursts;
   - link failures: memoryless fail/repair flapping of switch-switch
     cables on a fat-tree, where ECMP re-pinning can route around the
     outage;
   - switch reboots: crash-reboots wiping per-flow scheduler soft
     state, which PDQ must rebuild from traversing headers.

   Reported per protocol: mean FCT over completed flows normalized to
   the same protocol's fault-free run, deadline-miss percentage, and
   watchdog aborts (dead-path give-ups), averaged over seeds.

   Each (intensity, protocol, seed) cell is an independent scenario,
   so a whole sweep is one flat [Sweep.run] over the grid. *)

module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder
module Fault_plan = Pdq_faults.Fault_plan
module Rng = Pdq_engine.Rng
module Link = Pdq_net.Link
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Pattern = Pdq_workload.Pattern
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

let protocols =
  [
    ("PDQ", Runner.Pdq Pdq_core.Config.full);
    ("RCP", Runner.Rcp);
    ("D3", Runner.D3);
    ("TCP", Runner.Tcp);
  ]

(* Aggregation workload with starts staggered across [window] so the
   traffic actually overlaps the injected faults instead of finishing
   before the first event fires. *)
let workload ~seed ~hosts ~receiver ~flows ~window =
  let rng = Rng.create (0xFA17 + (seed * 7919)) in
  let sizes = Size_dist.uniform_paper ~mean_bytes:100_000 in
  let ddist = Deadline_dist.exponential ~mean:0.02 () in
  let pairs =
    Array.of_list (Pattern.aggregation ~hosts ~receiver ~flows)
  in
  List.init flows (fun i ->
      let p = pairs.(i mod Array.length pairs) in
      {
        Context.src = p.Pattern.src;
        dst = p.Pattern.dst;
        size = Size_dist.sample sizes rng;
        deadline = Some (Deadline_dist.sample ddist rng);
        start = Rng.float rng *. window;
      })

let switch_cables = Fault_plan.switch_cables
let switches = Fault_plan.switches

type outcome = { fct : float; miss_pct : float; aborts : float }

(* A row of the sweep: fault intensity label, topology family, and the
   pure per-seed fault-plan generator. *)
type row_spec = {
  label : string;
  topo : Scenario.topo;
  plan_of : seed:int -> Builder.built -> Fault_plan.t;
}

let scenario_of_row { label; topo; plan_of } ~flows ~window ~horizon protocol =
  Scenario.make ~name:label ~horizon ~topo
    ~faults:(Scenario.Fault_gen { label; plan = plan_of })
    ~workload:
      (Scenario.Generated
         {
           label = Printf.sprintf "%d staggered aggregation flows" flows;
           specs =
             (fun ~seed ~topo:_ ~hosts ->
               workload ~seed ~hosts ~receiver:hosts.(0) ~flows ~window);
         })
    protocol

let reduce_cell results =
  let n = float_of_int (List.length results) in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
  let counters =
    (* Summed over seeds, for the per-cause report. *)
    let t = Hashtbl.create 16 in
    List.iter
      (fun (r : Runner.result) ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace t k (v + Option.value ~default:0 (Hashtbl.find_opt t k)))
          r.Runner.counters)
      results;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare
  in
  ( {
      fct = avg (fun r -> r.Runner.mean_fct);
      miss_pct = avg (fun r -> 100. *. (1. -. r.Runner.application_throughput));
      aborts = avg (fun r -> float_of_int r.Runner.aborted);
    },
    counters )

(* Generic sweep: rows = fault intensities (first one fault-free, used
   as the normalization base), columns = per-protocol normalized FCT,
   miss%% and aborts. Returns the table plus the per-cause counters of
   the most intense row for each protocol. *)
let sweep ?jobs ?budget ~title ~axis ~seeds ~flows ~window ~horizon rows_spec =
  let header =
    axis
    :: List.concat_map
         (fun (name, _) ->
           [ name ^ " fct"; name ^ " miss%"; name ^ " abrt" ])
         protocols
  in
  let grid =
    List.concat_map
      (fun row ->
        List.concat_map
          (fun (_, proto) ->
            let s = scenario_of_row row ~flows ~window ~horizon proto in
            List.map (Scenario.with_seed s) seeds)
          protocols)
      rows_spec
  in
  let results = Sweep.run ~opts:(Pdq_exec.Exec_opts.make ?jobs ?budget ()) grid in
  let cells =
    List.map2
      (fun row per_row ->
        (row.label, List.map reduce_cell (Common.chunks (List.length seeds) per_row)))
      rows_spec
      (Common.chunks (List.length seeds * List.length protocols) results)
  in
  let base =
    match cells with
    | (_, first_row) :: _ ->
        List.map (fun ({ fct; _ }, _) -> max fct 1e-9) first_row
    | [] -> []
  in
  let rows =
    List.map
      (fun (label, row) ->
        label
        :: List.concat
             (List.map2
                (fun (o, _) b ->
                  [
                    Common.cell (o.fct /. b);
                    Common.cell o.miss_pct;
                    Common.cell o.aborts;
                  ])
                row base))
      cells
  in
  let worst_counters =
    match List.rev cells with
    | (_, last_row) :: _ ->
        List.map2
          (fun (name, _) (_, counters) -> (name, counters))
          protocols last_row
    | [] -> []
  in
  ({ Common.title; header; rows }, worst_counters)

(* 1. Bursty loss on the tree's root-side cables: Gilbert-Elliott with
   ~5% stationary loss, sweeping the mean burst length (packets). *)
let loss_burst_sweep ?jobs ?budget ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let burst_lengths = if quick then [ 1.; 20. ] else [ 1.; 5.; 20.; 80. ] in
  let ge_of_burst burst =
    let p_bg = 1. /. burst in
    let stationary_bad = 0.05 in
    {
      Link.p_gb = p_bg *. stationary_bad /. (1. -. stationary_bad);
      p_bg;
      loss_good = 0.;
      loss_bad = 1.;
    }
  in
  let clean =
    {
      label = "0";
      topo = Scenario.default_tree;
      plan_of = (fun ~seed:_ _ -> Fault_plan.empty);
    }
  in
  let bursty burst =
    {
      label = Common.cell burst;
      topo = Scenario.default_tree;
      plan_of =
        (fun ~seed:_ (b : Builder.built) ->
          Fault_plan.of_events
            (List.map
               (fun (a, bb) ->
                 (0., Fault_plan.Gilbert_loss { a; b = bb; ge = ge_of_burst burst }))
               (switch_cables b.Builder.topo)));
    }
  in
  let rows_spec = clean :: List.map bursty burst_lengths in
  sweep ?jobs ?budget
    ~title:"Resilience - 5% Gilbert-Elliott loss vs mean burst length [pkts]"
    ~axis:"burst" ~seeds ~flows:12 ~window:0.1 ~horizon:3. rows_spec

(* 2. Link flapping on a fat-tree: memoryless fail/repair of
   switch-switch cables; ECMP flows are re-pinned around the outage. *)
let link_failure_sweep ?jobs ?budget ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let mtbfs = if quick then [ 0.3 ] else [ 1.; 0.3; 0.1 ] in
  let clean =
    {
      label = "inf";
      topo = Scenario.Fat_tree { k = 4 };
      plan_of = (fun ~seed:_ _ -> Fault_plan.empty);
    }
  in
  let flapping mtbf =
    {
      label = Common.cell mtbf;
      topo = Scenario.Fat_tree { k = 4 };
      plan_of =
        (fun ~seed (b : Builder.built) ->
          Fault_plan.link_flaps
            (Rng.create (0x11AB + seed))
            ~links:(switch_cables b.Builder.topo) ~mtbf ~mttr:0.03 ~until:0.5);
    }
  in
  let rows_spec = clean :: List.map flapping mtbfs in
  sweep ?jobs ?budget
    ~title:"Resilience - fat-tree link flapping vs cable MTBF [s] (MTTR 30ms)"
    ~axis:"mtbf" ~seeds ~flows:16 ~window:0.2 ~horizon:3. rows_spec

(* 3. Switch crash-reboots on the tree: per-flow scheduler soft state
   is wiped and must be rebuilt from the headers in flight. *)
let switch_reboot_sweep ?jobs ?budget ?(quick = true) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let mtbfs = if quick then [ 0.05 ] else [ 0.5; 0.1; 0.02 ] in
  let clean =
    {
      label = "inf";
      topo = Scenario.default_tree;
      plan_of = (fun ~seed:_ _ -> Fault_plan.empty);
    }
  in
  let rebooting mtbf =
    {
      label = Common.cell mtbf;
      topo = Scenario.default_tree;
      plan_of =
        (fun ~seed (b : Builder.built) ->
          Fault_plan.switch_reboots
            (Rng.create (0x5EB0 + seed))
            ~switches:(switches b.Builder.topo) ~mtbf ~until:0.5);
    }
  in
  let rows_spec = clean :: List.map rebooting mtbfs in
  sweep ?jobs ?budget ~title:"Resilience - switch crash-reboots vs switch MTBF [s]"
    ~axis:"mtbf" ~seeds ~flows:12 ~window:0.2 ~horizon:3. rows_spec

(* Forensic view of the link-flapping axis: the [down] column shows
   fault-induced downtime directly instead of inferring it from FCT
   inflation against the clean row. *)
let attribution ?(mtbf = 0.1) ?(seed = 1) () =
  let row =
    {
      label = Printf.sprintf "flaps mtbf=%s" (Common.cell mtbf);
      topo = Scenario.Fat_tree { k = 4 };
      plan_of =
        (fun ~seed (b : Builder.built) ->
          Fault_plan.link_flaps
            (Rng.create (0x11AB + seed))
            ~links:(switch_cables b.Builder.topo) ~mtbf ~mttr:0.03 ~until:0.5);
    }
  in
  let s =
    Scenario.with_seed
      (scenario_of_row row ~flows:16 ~window:0.2 ~horizon:3.
         (snd (List.hd protocols)))
      seed
  in
  Common.attribution_table
    ~title:
      (Printf.sprintf
         "Resilience forensics - PDQ FCT attribution [ms] under link \
          flapping (MTBF %s s, MTTR 30 ms, seed %d)"
         (Common.cell mtbf) seed)
    (Common.attribution_report s)

let pp_counters counters =
  if counters = [] then "-"
  else
    String.concat " "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters)

let counters_table named_counters =
  {
    Common.title = "Per-cause counters at the highest fault intensity";
    header = [ "scenario"; "protocol"; "counters" ];
    rows =
      List.concat_map
        (fun (scenario, per_proto) ->
          List.map
            (fun (proto, counters) ->
              [ scenario; proto; pp_counters counters ])
            per_proto)
        named_counters;
  }

let run_all ?jobs ?budget ?(quick = true) ppf () =
  let t1, c1 = loss_burst_sweep ?jobs ?budget ~quick () in
  Common.pp_table ppf t1;
  let t2, c2 = link_failure_sweep ?jobs ?budget ~quick () in
  Common.pp_table ppf t2;
  let t3, c3 = switch_reboot_sweep ?jobs ?budget ~quick () in
  Common.pp_table ppf t3;
  Common.pp_table ppf
    (counters_table
       [ ("loss-burst", c1); ("link-flap", c2); ("reboot", c3) ]);
  (* One forensic drill-down on the harshest axis: per-flow FCT
     decomposition under switch reboots, downtime made explicit. *)
  Common.pp_table ppf (attribution ())
