(** Resilience experiments: PDQ vs. RCP/D3/TCP under injected faults —
    bursty (Gilbert-Elliott) loss, link flapping with ECMP re-pinning,
    and switch crash-reboots that wipe scheduler soft state.

    Each sweep reports, per protocol and fault intensity: mean FCT over
    completed flows normalized to the same protocol's fault-free run,
    deadline-miss percentage, and watchdog aborts; alongside each table
    the per-cause counters ([abort.*], [fault.*], [drop.*]) of the
    highest-intensity row. [jobs] spreads the whole
    intensity × protocol × seed grid over the domain pool; [budget]
    bounds each run (wall clock and/or simulator events) so a
    pathological fault configuration cannot hang the whole driver — a
    tripped budget surfaces as {!Pdq_exec.Sweep.Sweep_errors}. *)

val loss_burst_sweep :
  ?jobs:int ->
  ?budget:Pdq_exec.Sweep.budget ->
  ?quick:bool ->
  unit ->
  Common.table * (string * (string * int) list) list

val link_failure_sweep :
  ?jobs:int ->
  ?budget:Pdq_exec.Sweep.budget ->
  ?quick:bool ->
  unit ->
  Common.table * (string * (string * int) list) list

val switch_reboot_sweep :
  ?jobs:int ->
  ?budget:Pdq_exec.Sweep.budget ->
  ?quick:bool ->
  unit ->
  Common.table * (string * (string * int) list) list

val run_all :
  ?jobs:int ->
  ?budget:Pdq_exec.Sweep.budget ->
  ?quick:bool ->
  Format.formatter ->
  unit ->
  unit
(** Run all three sweeps and print their tables, the per-cause counter
    summary, and the {!attribution} drill-down table. *)

val attribution : ?mtbf:float -> ?seed:int -> unit -> Common.table
(** Per-flow FCT attribution of one PDQ run under the reboot sweep's
    fault plan: the downtime column shows the fault-induced share
    directly. Defaults: switch MTBF 0.05 s, seed 1. *)
