module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Link = Pdq_net.Link
module Topology = Pdq_net.Topology

let k_clear = Sim.Kind.register "fault.clear"
let k_apply = Sim.Kind.register "fault.apply"

type event =
  | Link_down of { a : int; b : int }
  | Link_up of { a : int; b : int }
  | Loss_burst of { a : int; b : int; loss : float; duration : float }
  | Gilbert_loss of { a : int; b : int; ge : Link.gilbert_elliott }
  | Clear_loss of { a : int; b : int }
  | Switch_reboot of int

type timed = { time : float; event : event }
type t = { events : timed list }

let empty = { events = [] }
let is_empty t = t.events = []

let sort events =
  List.stable_sort (fun a b -> compare a.time b.time) events

let of_events l =
  List.iter
    (fun (time, _) ->
      if time < 0. || Float.is_nan time then
        invalid_arg "Fault_plan.of_events: negative event time")
    l;
  { events = sort (List.map (fun (time, event) -> { time; event }) l) }

let events t = List.map (fun e -> (e.time, e.event)) t.events
let merge a b = { events = sort (a.events @ b.events) }
let length t = List.length t.events

let pp_event ppf = function
  | Link_down { a; b } -> Format.fprintf ppf "link-down %d<->%d" a b
  | Link_up { a; b } -> Format.fprintf ppf "link-up %d<->%d" a b
  | Loss_burst { a; b; loss; duration } ->
      Format.fprintf ppf "loss-burst %d<->%d p=%g for %gs" a b loss duration
  | Gilbert_loss { a; b; _ } -> Format.fprintf ppf "gilbert-loss %d<->%d" a b
  | Clear_loss { a; b } -> Format.fprintf ppf "clear-loss %d<->%d" a b
  | Switch_reboot n -> Format.fprintf ppf "switch-reboot %d" n

(* ------------------------------------------------------------------ *)
(* JSON codec: one object per event, exact float round-trip via
   [Plan_json.j_float], so [of_json (to_json t)] rebuilds the plan bit
   for bit. The chaos fuzzer leans on this to emit replayable
   reproducers. *)

let event_fields = function
  | Link_down { a; b } -> Printf.sprintf "\"ev\":\"link-down\",\"a\":%d,\"b\":%d" a b
  | Link_up { a; b } -> Printf.sprintf "\"ev\":\"link-up\",\"a\":%d,\"b\":%d" a b
  | Loss_burst { a; b; loss; duration } ->
      Printf.sprintf
        "\"ev\":\"loss-burst\",\"a\":%d,\"b\":%d,\"loss\":%s,\"duration\":%s" a b
        (Plan_json.j_float loss)
        (Plan_json.j_float duration)
  | Gilbert_loss { a; b; ge } ->
      Printf.sprintf
        "\"ev\":\"gilbert-loss\",\"a\":%d,\"b\":%d,\"p_gb\":%s,\"p_bg\":%s,\
         \"loss_good\":%s,\"loss_bad\":%s"
        a b
        (Plan_json.j_float ge.Link.p_gb)
        (Plan_json.j_float ge.Link.p_bg)
        (Plan_json.j_float ge.Link.loss_good)
        (Plan_json.j_float ge.Link.loss_bad)
  | Clear_loss { a; b } ->
      Printf.sprintf "\"ev\":\"clear-loss\",\"a\":%d,\"b\":%d" a b
  | Switch_reboot n -> Printf.sprintf "\"ev\":\"switch-reboot\",\"switch\":%d" n

let to_json t =
  let item { time; event } =
    Printf.sprintf "{\"t\":%s,%s}" (Plan_json.j_float time) (event_fields event)
  in
  "[" ^ String.concat "," (List.map item t.events) ^ "]"

let event_of_fields fields =
  let int k = Plan_json.int fields k in
  let flt k = Plan_json.float fields k in
  match Plan_json.str fields "ev" with
  | "link-down" -> Link_down { a = int "a"; b = int "b" }
  | "link-up" -> Link_up { a = int "a"; b = int "b" }
  | "loss-burst" ->
      Loss_burst
        { a = int "a"; b = int "b"; loss = flt "loss"; duration = flt "duration" }
  | "gilbert-loss" ->
      Gilbert_loss
        {
          a = int "a";
          b = int "b";
          ge =
            {
              Link.p_gb = flt "p_gb";
              p_bg = flt "p_bg";
              loss_good = flt "loss_good";
              loss_bad = flt "loss_bad";
            };
        }
  | "clear-loss" -> Clear_loss { a = int "a"; b = int "b" }
  | "switch-reboot" -> Switch_reboot (int "switch")
  | other -> raise (Plan_json.Parse_error ("unknown fault event " ^ other))

let of_json s =
  match
    let items = Plan_json.(arr (parse s)) in
    of_events
      (List.map
         (fun item ->
           let fields = Plan_json.obj item in
           (Plan_json.float fields "t", event_of_fields fields))
         items)
  with
  | t -> Ok t
  | exception Plan_json.Parse_error msg -> Error ("fault plan: " ^ msg)
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Topology fault targets: generators take explicit node lists, these
   enumerate the usual ones. *)

let switch_cables topo =
  let hosts = Topology.hosts topo in
  let is_host n = Array.exists (( = ) n) hosts in
  let seen = Hashtbl.create 64 in
  let cables = ref [] in
  for i = 0 to Topology.link_count topo - 1 do
    let l = Topology.link topo i in
    let a = min (Link.src l) (Link.dst l)
    and b = max (Link.src l) (Link.dst l) in
    if (not (Hashtbl.mem seen (a, b))) && (not (is_host a)) && not (is_host b)
    then begin
      Hashtbl.add seen (a, b) ();
      cables := (a, b) :: !cables
    end
  done;
  List.rev !cables

let switches topo =
  let hosts = Topology.hosts topo in
  let is_host n = Array.exists (( = ) n) hosts in
  List.filter
    (fun n -> not (is_host n))
    (List.init (Topology.node_count topo) Fun.id)

(* ------------------------------------------------------------------ *)
(* Deterministic generators: all randomness flows from the caller's
   rng, consumed in a fixed order (per target, in list order), so the
   same seed and parameters always expand to the same event trace. *)

let flap ~a ~b ~down_at ~up_at =
  if up_at < down_at then invalid_arg "Fault_plan.flap: up before down";
  of_events [ (down_at, Link_down { a; b }); (up_at, Link_up { a; b }) ]

let link_flaps rng ~links ~mtbf ~mttr ~until =
  if mtbf <= 0. || mttr <= 0. then
    invalid_arg "Fault_plan.link_flaps: nonpositive mtbf/mttr";
  let per_link (a, b) =
    let rng = Rng.split rng in
    let acc = ref [] in
    let t = ref (Rng.exponential rng ~mean:mtbf) in
    let continue = ref true in
    while !continue do
      if !t >= until then continue := false
      else begin
        let down = !t in
        let up = down +. Rng.exponential rng ~mean:mttr in
        acc := { time = down; event = Link_down { a; b } } :: !acc;
        acc := { time = up; event = Link_up { a; b } } :: !acc;
        t := up +. Rng.exponential rng ~mean:mtbf
      end
    done;
    List.rev !acc
  in
  { events = sort (List.concat_map per_link links) }

let loss_bursts rng ~links ~mean_interval ~mean_duration ~loss ~until =
  if mean_interval <= 0. || mean_duration <= 0. then
    invalid_arg "Fault_plan.loss_bursts: nonpositive interval/duration";
  let per_link (a, b) =
    let rng = Rng.split rng in
    let acc = ref [] in
    let t = ref (Rng.exponential rng ~mean:mean_interval) in
    let continue = ref true in
    while !continue do
      if !t >= until then continue := false
      else begin
        let duration = Rng.exponential rng ~mean:mean_duration in
        acc := { time = !t; event = Loss_burst { a; b; loss; duration } } :: !acc;
        t := !t +. duration +. Rng.exponential rng ~mean:mean_interval
      end
    done;
    List.rev !acc
  in
  { events = sort (List.concat_map per_link links) }

let switch_reboots rng ~switches ~mtbf ~until =
  if mtbf <= 0. then invalid_arg "Fault_plan.switch_reboots: nonpositive mtbf";
  let per_switch n =
    let rng = Rng.split rng in
    let acc = ref [] in
    let t = ref (Rng.exponential rng ~mean:mtbf) in
    let continue = ref true in
    while !continue do
      if !t >= until then continue := false
      else begin
        acc := { time = !t; event = Switch_reboot n } :: !acc;
        t := !t +. Rng.exponential rng ~mean:mtbf
      end
    done;
    List.rev !acc
  in
  { events = sort (List.concat_map per_switch switches) }

(* ------------------------------------------------------------------ *)
(* Installation: turn the plan into scheduled simulator events acting
   on the live topology. *)

let null_trace ~time:_ _ = ()

let both_links topo ~a ~b =
  [ Topology.link_to topo ~src:a ~dst:b; Topology.link_to topo ~src:b ~dst:a ]

let install ~sim ~topo ~rng ?(trace = null_trace) ~on_change ~on_reboot t =
  (* Split per event eagerly, in plan order, so link-level loss draws
     are independent of execution interleaving. *)
  let prepared =
    List.map
      (fun { time; event } -> (time, event, Rng.split rng))
      t.events
  in
  let apply time event ev_rng =
    trace ~time event;
    match event with
    | Link_down { a; b } ->
        Topology.set_link_up topo ~a ~b false;
        on_change ()
    | Link_up { a; b } ->
        Topology.set_link_up topo ~a ~b true;
        on_change ()
    | Loss_burst { a; b; loss; duration } ->
        let links = both_links topo ~a ~b in
        let saved = List.map Link.loss_model links in
        List.iter
          (fun l -> Link.set_loss_model l (Link.Bernoulli loss) ~rng:(Rng.split ev_rng))
          links;
        ignore
          (Sim.schedule_k sim k_clear ~delay:duration (fun () ->
               List.iter2
                 (fun l m -> Link.set_loss_model l m ~rng:(Rng.split ev_rng))
                 links saved))
    | Gilbert_loss { a; b; ge } ->
        List.iter
          (fun l -> Link.set_loss_model l (Link.Gilbert ge) ~rng:(Rng.split ev_rng))
          (both_links topo ~a ~b)
    | Clear_loss { a; b } ->
        List.iter
          (fun l -> Link.set_loss_model l Link.No_loss ~rng:(Rng.split ev_rng))
          (both_links topo ~a ~b)
    | Switch_reboot n -> on_reboot n
  in
  List.iter
    (fun (time, event, ev_rng) ->
      if time <= Sim.now sim then apply time event ev_rng
      else
        ignore
          (Sim.schedule_at_k sim k_apply ~time (fun () ->
               apply time event ev_rng)))
    prepared
