(** Deterministic fault-schedule DSL.

    A fault plan is a time-ordered list of injection events — duplex
    link failures and recoveries, loss episodes (flat Bernoulli bursts
    or standing Gilbert–Elliott bursty channels), and switch reboots
    that wipe per-flow scheduler soft state. Plans are pure data:
    generators expand a seeded {!Pdq_engine.Rng.t} into an event trace
    (same seed + parameters ⇒ identical trace, bit for bit), and
    {!install} turns a plan into scheduled simulator events against a
    live topology.

    Layering: this library only knows the network substrate
    ([pdq_engine] + [pdq_net]). Reactions that live above it — route
    recomputation, switch-state flushing — are injected as callbacks
    by the transport runner. *)

type event =
  | Link_down of { a : int; b : int }
      (** Fail the duplex cable between adjacent nodes [a] and [b]
          (both directions). *)
  | Link_up of { a : int; b : int }  (** Restore the cable. *)
  | Loss_burst of { a : int; b : int; loss : float; duration : float }
      (** Drop packets on both directions with probability [loss] for
          [duration] seconds, then restore the previous loss model. *)
  | Gilbert_loss of { a : int; b : int; ge : Pdq_net.Link.gilbert_elliott }
      (** Install a standing bursty (Gilbert–Elliott) loss channel. *)
  | Clear_loss of { a : int; b : int }
      (** Remove any loss model from the cable. *)
  | Switch_reboot of int
      (** Crash-reboot a switch node: all its per-flow scheduling soft
          state is lost and must be rebuilt from traversing headers. *)

type t
(** An immutable plan: events sorted by time (stable for ties). *)

val empty : t
val is_empty : t -> bool

val of_events : (float * event) list -> t
(** Explicit plan from (time, event) pairs; sorted stably by time.
    Raises [Invalid_argument] on negative times. *)

val events : t -> (float * event) list
(** The expanded, time-ordered event trace. *)

val merge : t -> t -> t
val length : t -> int

val pp_event : Format.formatter -> event -> unit

val to_json : t -> string
(** Compact JSON array, one object per event, floats in exact
    round-trip form: [of_json (to_json t)] rebuilds the plan bit for
    bit. *)

val of_json : string -> (t, string) result
(** Exact inverse of {!to_json}. Strict: malformed JSON, unknown event
    names, wrong field types and negative times are all [Error]. *)

val switch_cables : Pdq_net.Topology.t -> (int * int) list
(** Undirected switch-switch cables as (a, b) pairs with a < b — the
    usual link-failure targets (host access links excluded). *)

val switches : Pdq_net.Topology.t -> int list
(** Non-host nodes — the reboot targets. *)

val flap : a:int -> b:int -> down_at:float -> up_at:float -> t
(** One failure/recovery pair on a single cable. *)

val link_flaps :
  Pdq_engine.Rng.t ->
  links:(int * int) list ->
  mtbf:float ->
  mttr:float ->
  until:float ->
  t
(** Memoryless failure/recovery process per cable: exponential time to
    failure (mean [mtbf]) alternating with exponential repair time
    (mean [mttr]), truncated at [until]. *)

val loss_bursts :
  Pdq_engine.Rng.t ->
  links:(int * int) list ->
  mean_interval:float ->
  mean_duration:float ->
  loss:float ->
  until:float ->
  t
(** Poisson episodes of flat loss [loss] with exponential durations —
    the scheduled-episode counterpart of a Gilbert–Elliott channel,
    useful when the experiment wants to sweep burst length directly. *)

val switch_reboots :
  Pdq_engine.Rng.t -> switches:int list -> mtbf:float -> until:float -> t
(** Exponential crash-reboot process per switch (reboots are modeled
    as instantaneous state wipes). *)

val install :
  sim:Pdq_engine.Sim.t ->
  topo:Pdq_net.Topology.t ->
  rng:Pdq_engine.Rng.t ->
  ?trace:(time:float -> event -> unit) ->
  on_change:(unit -> unit) ->
  on_reboot:(int -> unit) ->
  t ->
  unit
(** Schedule every event of the plan on the simulator. Link events
    mutate {!Pdq_net.Link.t} status/loss models directly, then call
    [on_change] (the transport layer recomputes routes there);
    [Switch_reboot n] only calls [on_reboot n] (the transport layer
    flushes the scheduler state of node [n]'s ports). [rng] feeds the
    injected loss processes; it is split per event at install time so
    traces stay deterministic. [trace] observes every applied event
    (tests, experiment logs). *)
