(* Minimal JSON support for the plan codecs (fault plans here, and the
   adversary plans / chaos reproducer cases built on top of this
   library). Emission stays hand-rolled sprintf at each call site; this
   module supplies the exact float format plus a small recursive-descent
   reader that keeps number literals raw, so [float_of_string] returns
   the identical double and every codec is an exact inverse of its
   printer. Not a general-purpose JSON library: no streaming, whole
   value in memory, integers bounded by [int]. *)

(* Shortest decimal form that round-trips the exact double (same
   contract as the telemetry trace codec). Inputs are finite by
   construction, so inf/nan never appear. *)
let j_float x =
  let s = Printf.sprintf "%.15g" x in
  if float_of_string s = x then s
  else
    let s = Printf.sprintf "%.16g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then input.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail "expected %c at byte %d" c !pos;
    advance ()
  in
  let scan_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          match peek () with
          | '"' | '\\' | '/' ->
              Buffer.add_char b (peek ());
              advance ();
              loop ()
          | 'n' -> Buffer.add_char b '\n'; advance (); loop ()
          | 'r' -> Buffer.add_char b '\r'; advance (); loop ()
          | 't' -> Buffer.add_char b '\t'; advance (); loop ()
          | 'b' -> Buffer.add_char b '\b'; advance (); loop ()
          | 'f' -> Buffer.add_char b '\012'; advance (); loop ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub input !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* Plans only ever escape control characters; reject
                 anything needing real UTF-8 encoding rather than
                 emitting mojibake. *)
              if code > 0x7f then fail "non-ASCII \\u escape unsupported";
              Buffer.add_char b (Char.chr code);
              loop ()
          | c -> fail "bad escape \\%c" c)
      | c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let scan_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char input.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number at byte %d" start;
    String.sub input start (!pos - start)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at byte %d" !pos
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (scan_string ())
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec pairs () =
            skip_ws ();
            let key = scan_string () in
            expect ':';
            let v = value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); pairs ()
            | '}' -> advance ()
            | c -> fail "expected , or } but got %c" c
          in
          pairs ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else begin
          let items = ref [] in
          let rec elems () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); elems ()
            | ']' -> advance ()
            | c -> fail "expected , or ] but got %c" c
          in
          elems ();
          Arr (List.rev !items)
        end
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (scan_number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes at %d" !pos;
  v

(* ------------------------------------------------------------------ *)
(* Typed accessors: strict, like the trace parser — a malformed or
   missing field is an error, never a guess. *)

(* Compact re-emission; [Num] raw literals pass through verbatim, so
   [to_string (parse s)] preserves every number bit-exactly. *)
let to_string v =
  let b = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num s -> Buffer.add_string b s
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            emit item)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            emit item)
          fields;
        Buffer.add_char b '}'
  in
  emit v;
  Buffer.contents b

let obj = function Obj fields -> fields | _ -> fail "expected object"
let arr = function Arr items -> items | _ -> fail "expected array"

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> fail "missing field %S" k

let str fields k =
  match field fields k with
  | Str s -> s
  | _ -> fail "field %S is not a string" k

let num fields k =
  match field fields k with
  | Num s -> s
  | _ -> fail "field %S is not a number" k

let int fields k =
  let s = num fields k in
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "field %S is not an integer" k

let float fields k =
  let s = num fields k in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "field %S is not a float" k

let float_opt fields k =
  match List.assoc_opt k fields with
  | None -> None
  | Some (Num s) -> (
      match float_of_string_opt s with
      | Some f -> Some f
      | None -> fail "field %S is not a float" k)
  | Some _ -> fail "field %S is not a number" k

let int_default fields k d =
  match List.assoc_opt k fields with
  | None -> d
  | Some (Num s) -> (
      match int_of_string_opt s with
      | Some i -> i
      | None -> fail "field %S is not an integer" k)
  | Some _ -> fail "field %S is not a number" k

let str_default fields k d =
  match List.assoc_opt k fields with
  | None -> d
  | Some (Str s) -> s
  | Some _ -> fail "field %S is not a string" k
