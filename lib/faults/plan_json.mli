(** Minimal JSON reader + exact float format shared by the plan codecs
    ({!Fault_plan} and the adversary/chaos plans layered on this
    library). Number literals are kept raw so parsing returns the
    identical double that was printed — every plan codec is an exact
    inverse of its printer. Internal support module, not a
    general-purpose JSON library. *)

val j_float : float -> string
(** Shortest decimal form that parses back to the exact same double. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars). *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** raw literal, preserved for exact round-trips *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Parse a complete JSON value. Raises {!Parse_error} on malformed
    input or trailing bytes. *)

val to_string : t -> string
(** Compact re-emission. [Num] literals pass through verbatim, so
    [to_string (parse s)] preserves every number exactly — nested plan
    codecs rely on this to extract a sub-document and hand it to the
    sub-plan's [of_json]. *)

(** Strict accessors: any shape mismatch or missing field raises
    {!Parse_error}. *)

val obj : t -> (string * t) list
val arr : t -> t list
val field : (string * t) list -> string -> t
val str : (string * t) list -> string -> string
val num : (string * t) list -> string -> string
val int : (string * t) list -> string -> int
val float : (string * t) list -> string -> float
val float_opt : (string * t) list -> string -> float option
val int_default : (string * t) list -> string -> int -> int
val str_default : (string * t) list -> string -> string -> string
