module Trace = Pdq_telemetry.Trace
module Units = Pdq_engine.Units

type components = {
  handshake : float;
  serialization : float;
  paused : float;
  recovery : float;
  downtime : float;
  residual : float;
}

let zero =
  {
    handshake = 0.;
    serialization = 0.;
    paused = 0.;
    recovery = 0.;
    downtime = 0.;
    residual = 0.;
  }

(* The residual is defined as the remainder against the measured FCT,
   with a fixed left-to-right summation order, so

     handshake +. serialization +. paused +. recovery +. downtime
       +. residual = fct

   holds exactly (not merely to rounding): the five components are all in
   [0, fct], so the subtraction computing the residual is exact by
   Sterbenz whenever their sum is within a factor of two of fct. *)
let component_sum c =
  c.handshake +. c.serialization +. c.paused +. c.recovery +. c.downtime

let total c = component_sum c +. c.residual

type flow_report = {
  flow : int;
  size : int option;
  fct : float;
  ideal : float option;
  c : components;
  blamed : (int * float) list;
  paused_unattributed : float;
  retransmits : int;
}

type report = {
  flows : flow_report list;
  terminated : int list;
  aborted : (int * string) list;
  unfinished : int list;
  errors : Spans.error list;
  totals : components;
  total_fct : float;
  blame : (int * int * float) list;
  paused_preempted : float;
  paused_controller : float;
  tail : (int * float * components) option;
}

(* ------------------------------------------------------------------ *)

let flow_report (fs : Spans.flow_spans) ~fct =
  let handshake = ref 0.
  and serialization = ref 0.
  and paused = ref 0.
  and recovery = ref 0.
  and downtime = ref 0.
  and unattributed = ref 0. in
  let blamed : (int, float) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (s : Spans.span) ->
      let d = Spans.duration s in
      match s.Spans.phase with
      | Spans.Handshake -> handshake := !handshake +. d
      | Spans.Sending -> serialization := !serialization +. d
      | Spans.Paused { preempted_by; _ } -> (
          paused := !paused +. d;
          match preempted_by with
          | Some p ->
              Hashtbl.replace blamed p
                (d +. Option.value ~default:0. (Hashtbl.find_opt blamed p))
          | None -> unattributed := !unattributed +. d)
      | Spans.Recovery { fault_induced; _ } ->
          if fault_induced then downtime := !downtime +. d
          else recovery := !recovery +. d)
    fs.Spans.spans;
  let partial =
    {
      handshake = !handshake;
      serialization = !serialization;
      paused = !paused;
      recovery = !recovery;
      downtime = !downtime;
      residual = 0.;
    }
  in
  let c = { partial with residual = fct -. component_sum partial } in
  let ideal =
    match fs.Spans.size with
    | Some size when fs.Spans.peak_rate > 0. ->
        Some (Units.bytes_to_bits size /. fs.Spans.peak_rate)
    | _ -> None
  in
  {
    flow = fs.Spans.flow;
    size = fs.Spans.size;
    fct;
    ideal;
    c;
    blamed =
      List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) blamed []);
    paused_unattributed = !unattributed;
    retransmits = fs.Spans.retransmits;
  }

let add (a : components) (b : components) =
  {
    handshake = a.handshake +. b.handshake;
    serialization = a.serialization +. b.serialization;
    paused = a.paused +. b.paused;
    recovery = a.recovery +. b.recovery;
    downtime = a.downtime +. b.downtime;
    residual = a.residual +. b.residual;
  }

let of_spans (sp : Spans.t) =
  let flows, terminated, aborted, unfinished =
    List.fold_left
      (fun (fl, te, ab, un) (fs : Spans.flow_spans) ->
        match fs.Spans.outcome with
        | Spans.Completed { fct } -> (flow_report fs ~fct :: fl, te, ab, un)
        | Spans.Terminated -> (fl, fs.Spans.flow :: te, ab, un)
        | Spans.Aborted { cause } -> (fl, te, (fs.Spans.flow, cause) :: ab, un)
        | Spans.Unfinished -> (fl, te, ab, fs.Spans.flow :: un))
      ([], [], [], []) sp.Spans.flows
  in
  let flows = List.rev flows in
  let totals = List.fold_left (fun acc f -> add acc f.c) zero flows in
  let total_fct = List.fold_left (fun acc f -> acc +. f.fct) 0. flows in
  let blame =
    List.concat_map
      (fun f -> List.map (fun (p, d) -> (p, f.flow, d)) f.blamed)
      flows
    |> List.sort compare
  in
  let paused_preempted =
    List.fold_left
      (fun acc f ->
        List.fold_left (fun acc (_, d) -> acc +. d) acc f.blamed)
      0. flows
  in
  let paused_controller =
    List.fold_left (fun acc f -> acc +. f.paused_unattributed) 0. flows
  in
  let tail =
    match flows with
    | [] -> None
    | _ ->
        let by_fct =
          List.sort
            (fun a b -> compare (a.fct, a.flow) (b.fct, b.flow))
            flows
        in
        let n = List.length by_fct in
        let idx =
          min (n - 1)
            (max 0 (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
        in
        let f = List.nth by_fct idx in
        Some (f.flow, f.fct, f.c)
  in
  {
    flows;
    terminated = List.rev terminated;
    aborted = List.rev aborted;
    unfinished = List.rev unfinished;
    errors = sp.Spans.errors;
    totals;
    total_fct;
    blame;
    paused_preempted;
    paused_controller;
    tail;
  }

let of_events events = of_spans (Spans.reconstruct events)

(* ------------------------------------------------------------------ *)
(* Rendering.  Everything below is deterministic: flows are sorted by
   id, floats use one fixed format, and no wall-clock or locale input
   sneaks in — so re-rendering a replayed trace reproduces the live
   report byte for byte. *)

let fl = Printf.sprintf "%.9g"
let ms x = Printf.sprintf "%.3f" (1e3 *. x)

let to_text r =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "FCT attribution (%d completed flow%s)\n" (List.length r.flows)
    (if List.length r.flows = 1 then "" else "s");
  pr
    "%6s %10s %10s %10s %10s %10s %10s %10s %10s %5s\n"
    "flow" "fct_ms" "hshake_ms" "send_ms" "paused_ms" "recov_ms" "down_ms"
    "resid_ms" "ideal_ms" "rtx";
  List.iter
    (fun f ->
      pr "%6d %10s %10s %10s %10s %10s %10s %10s %10s %5d\n" f.flow
        (ms f.fct) (ms f.c.handshake) (ms f.c.serialization) (ms f.c.paused)
        (ms f.c.recovery) (ms f.c.downtime) (ms f.c.residual)
        (match f.ideal with Some i -> ms i | None -> "-")
        f.retransmits)
    r.flows;
  pr "totals: fct=%s hshake=%s send=%s paused=%s recov=%s down=%s resid=%s (s)\n"
    (fl r.total_fct) (fl r.totals.handshake) (fl r.totals.serialization)
    (fl r.totals.paused) (fl r.totals.recovery) (fl r.totals.downtime)
    (fl r.totals.residual);
  pr "paused by cause: preempted=%s controller=%s (s)\n" (fl r.paused_preempted)
    (fl r.paused_controller);
  if r.blame <> [] then begin
    pr "blame (preempter -> victim):\n";
    List.iter
      (fun (p, v, d) -> pr "  flow %d paused flow %d for %s ms\n" p v (ms d))
      r.blame
  end;
  (match r.tail with
  | Some (flow, fct, c) ->
      pr
        "p99 tail: flow %d fct=%s ms (hshake=%s send=%s paused=%s recov=%s \
         down=%s resid=%s)\n"
        flow (ms fct) (ms c.handshake) (ms c.serialization) (ms c.paused)
        (ms c.recovery) (ms c.downtime) (ms c.residual)
  | None -> ());
  if r.terminated <> [] then
    pr "terminated: %s\n"
      (String.concat "," (List.map string_of_int r.terminated));
  if r.aborted <> [] then
    pr "aborted: %s\n"
      (String.concat ","
         (List.map (fun (f, c) -> Printf.sprintf "%d(%s)" f c) r.aborted));
  if r.unfinished <> [] then
    pr "unfinished: %s\n"
      (String.concat "," (List.map string_of_int r.unfinished));
  List.iter
    (fun (e : Spans.error) ->
      pr "malformed: flow %d at t=%s: %s\n" e.Spans.flow (fl e.Spans.at)
        e.Spans.message)
    r.errors;
  Buffer.contents b

let to_csv r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "flow,size,fct,handshake,serialization,paused,recovery,downtime,residual,ideal,retransmits\n";
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%d\n" f.flow
           (match f.size with Some s -> string_of_int s | None -> "")
           (fl f.fct) (fl f.c.handshake) (fl f.c.serialization)
           (fl f.c.paused) (fl f.c.recovery) (fl f.c.downtime)
           (fl f.c.residual)
           (match f.ideal with Some i -> fl i | None -> "")
           f.retransmits))
    r.flows;
  Buffer.contents b

let json_components c =
  Printf.sprintf
    {|{"handshake":%s,"serialization":%s,"paused":%s,"recovery":%s,"downtime":%s,"residual":%s}|}
    (fl c.handshake) (fl c.serialization) (fl c.paused) (fl c.recovery)
    (fl c.downtime) (fl c.residual)

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"flows\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"flow":%d%s,"fct":%s,"components":%s%s,"retransmits":%d%s}|}
           f.flow
           (match f.size with
           | Some s -> Printf.sprintf {|,"size":%d|} s
           | None -> "")
           (fl f.fct) (json_components f.c)
           (match f.ideal with
           | Some i -> Printf.sprintf {|,"ideal":%s|} (fl i)
           | None -> "")
           f.retransmits
           (if f.blamed = [] then ""
            else
              Printf.sprintf {|,"paused_by":{%s}|}
                (String.concat ","
                   (List.map
                      (fun (p, d) -> Printf.sprintf {|"%d":%s|} p (fl d))
                      f.blamed)))))
    r.flows;
  Buffer.add_string b
    (Printf.sprintf
       {|],"totals":%s,"total_fct":%s,"paused_preempted":%s,"paused_controller":%s|}
       (json_components r.totals) (fl r.total_fct) (fl r.paused_preempted)
       (fl r.paused_controller));
  Buffer.add_string b
    (Printf.sprintf {|,"blame":[%s]|}
       (String.concat ","
          (List.map
             (fun (p, v, d) ->
               Printf.sprintf {|{"preempter":%d,"victim":%d,"seconds":%s}|} p v
                 (fl d))
             r.blame)));
  (match r.tail with
  | Some (flow, fct, c) ->
      Buffer.add_string b
        (Printf.sprintf {|,"p99":{"flow":%d,"fct":%s,"components":%s}|} flow
           (fl fct) (json_components c))
  | None -> ());
  if r.terminated <> [] then
    Buffer.add_string b
      (Printf.sprintf {|,"terminated":[%s]|}
         (String.concat "," (List.map string_of_int r.terminated)));
  if r.aborted <> [] then
    Buffer.add_string b
      (Printf.sprintf {|,"aborted":[%s]|}
         (String.concat ","
            (List.map
               (fun (f, c) ->
                 Printf.sprintf {|{"flow":%d,"cause":"%s"}|} f
                   (Trace.json_escape c))
               r.aborted)));
  if r.unfinished <> [] then
    Buffer.add_string b
      (Printf.sprintf {|,"unfinished":[%s]|}
         (String.concat "," (List.map string_of_int r.unfinished)));
  if r.errors <> [] then
    Buffer.add_string b
      (Printf.sprintf {|,"malformed":[%s]|}
         (String.concat ","
            (List.map
               (fun (e : Spans.error) ->
                 Printf.sprintf {|{"flow":%d,"at":%s,"error":"%s"}|}
                   e.Spans.flow (fl e.Spans.at)
                   (Trace.json_escape e.Spans.message))
               r.errors)));
  Buffer.add_string b "}";
  Buffer.contents b
