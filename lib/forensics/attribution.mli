(** FCT attribution: where did each flow's completion time go?

    Decomposes every completed flow's measured FCT into the span
    components of {!Spans} — handshake, serialization (actively
    sending), paused (preempted or throttled to zero), loss recovery,
    fault-induced downtime — plus a residual defined as the remainder
    against the measured FCT, so the six terms sum to the FCT {e
    exactly}. An ideal-transfer-time baseline (size at the highest
    rate the flow was ever granted) rides along for slowdown
    comparisons.

    All renderers are deterministic (fixed sort orders, fixed float
    formats), so analysing a recorded JSONL trace reproduces the
    live-bus report byte for byte. *)

type components = {
  handshake : float;
  serialization : float;
  paused : float;
  recovery : float;
  downtime : float;
  residual : float;
}

val zero : components

val component_sum : components -> float
(** [handshake +. serialization +. paused +. recovery +. downtime],
    in that order — the order against which [residual] was taken. *)

val total : components -> float
(** [component_sum c +. c.residual] — equals the measured FCT. *)

val add : components -> components -> components

type flow_report = {
  flow : int;
  size : int option;
  fct : float;
  ideal : float option;
      (** Transfer time at the peak granted rate; [None] when the size
          or any granted rate is unknown (e.g. TCP emits no rate
          events). *)
  c : components;
  blamed : (int * float) list;
      (** Preempting flow id → seconds this flow spent paused under
          it, sorted by preempter. *)
  paused_unattributed : float;
      (** Paused seconds with no single flow to blame (rate
          controller, RCP fallback). *)
  retransmits : int;
}

type report = {
  flows : flow_report list;  (** Completed flows, sorted by id. *)
  terminated : int list;
  aborted : (int * string) list;
  unfinished : int list;
  errors : Spans.error list;
  totals : components;  (** Component sums over completed flows. *)
  total_fct : float;
  blame : (int * int * float) list;
      (** Who-preempted-whom: (preempter, victim, seconds). *)
  paused_preempted : float;
  paused_controller : float;
  tail : (int * float * components) option;
      (** The p99-FCT flow: (flow, fct, its components). *)
}

val of_spans : Spans.t -> report
val of_events : (float * Pdq_telemetry.Trace.event) list -> report

val to_text : report -> string
val to_csv : report -> string
val to_json : report -> string
