module Trace = Pdq_telemetry.Trace

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_channel ?(path = "<channel>") ic =
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | line -> (
        let line = strip_cr line in
        if line = "" then go (lineno + 1) acc
        else
          match Trace.event_of_json line with
          | Ok ev -> go (lineno + 1) (ev :: acc)
          | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
  in
  go 1 []

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> read_channel ~path ic)
