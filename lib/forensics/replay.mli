(** Offline reader for recorded JSONL traces ([--trace-out]).

    Each line is parsed with {!Pdq_telemetry.Trace.event_of_json},
    whose float round-trip is exact — analysing a recorded trace
    yields byte-identical reports to analysing the live bus. The
    reader is strict: the first malformed line aborts the read with
    [Error "path:line: why"]. Blank lines (and a trailing newline) are
    tolerated. *)

val read_channel :
  ?path:string ->
  in_channel ->
  ((float * Pdq_telemetry.Trace.event) list, string) result
(** [path] only labels error messages (default ["<channel>"]). *)

val read_file :
  string -> ((float * Pdq_telemetry.Trace.event) list, string) result
