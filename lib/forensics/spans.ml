module Trace = Pdq_telemetry.Trace

type phase =
  | Handshake
  | Sending
  | Paused of { by : int; preempted_by : int option }
  | Recovery of { kind : string; fault_induced : bool }

type span = { phase : phase; t0 : float; t1 : float }

let duration s = s.t1 -. s.t0

type outcome =
  | Completed of { fct : float }
  | Terminated
  | Aborted of { cause : string }
  | Unfinished

type flow_spans = {
  flow : int;
  admitted : float option;
  started : float option;
  finished : float option;
  size : int option;
  deadline : float option;
  spans : span list;
  outcome : outcome;
  retransmits : int;
  peak_rate : float;
  rx_bytes : int;
}

type error = { at : float; flow : int; message : string }

type t = { flows : flow_spans list; errors : error list }

(* ------------------------------------------------------------------ *)
(* Per-flow state machine.

   The reconstructor is strict: an event sequence the simulator cannot
   produce (paused before established, resumed while sending, two
   completions) marks the flow malformed and records the offending
   event instead of guessing a lifecycle for it.  Two tolerated
   irregularities, both of which the simulator does produce: a flow
   may start without an admission record (M-PDQ subflows are created
   by the transport, not the experiment), and events may trail in
   after completion (ACKs already in flight when the receiver finished
   the transfer). *)

type state =
  | Waiting
  | Handshaking
  | In_sending
  | In_paused of { by : int; preempted_by : int option }
  (* [epoch_start] is the start of the sending epoch the loss happened
     in, kept so the fault-induced classification can look back past
     the retransmit itself. *)
  | In_recovery of { kind : string; epoch_start : float }
  | Finished

type acc = {
  id : int;
  mutable admitted_at : float option;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable size_bytes : int option;
  mutable deadline_abs : float option;
  mutable state : state;
  mutable phase_start : float;
  mutable spans_rev : span list;
  mutable result : outcome;
  mutable rtx : int;
  mutable peak : float;
  mutable rx : int;
  mutable malformed : bool;
}

let fresh id =
  {
    id;
    admitted_at = None;
    started_at = None;
    finished_at = None;
    size_bytes = None;
    deadline_abs = None;
    state = Waiting;
    phase_start = 0.;
    spans_rev = [];
    result = Unfinished;
    rtx = 0;
    peak = 0.;
    rx = 0;
    malformed = false;
  }

let push a ~t phase =
  if t > a.phase_start then
    a.spans_rev <- { phase; t0 = a.phase_start; t1 = t } :: a.spans_rev

(* Fault-family events: injected faults, fault-handling side effects,
   and drops caused by dead links or stale routes.  Congestion drops
   (Loss / Overflow) are the scheduler's normal weather and do not make
   a recovery window "fault-induced". *)
let is_fault_event = function
  | Trace.Fault _ | Trace.Switch_flushed _ -> true
  | Trace.Packet_dropped { cause = Trace.Link_down | Trace.Stale_route; _ } ->
      true
  | _ -> false

let reconstruct events =
  let fault_times =
    List.filter_map
      (fun (t, ev) -> if is_fault_event ev then Some t else None)
      events
  in
  let fault_in a b = List.exists (fun t -> a <= t && t <= b) fault_times in
  let flows : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let get id =
    match Hashtbl.find_opt flows id with
    | Some a -> a
    | None ->
        let a = fresh id in
        Hashtbl.add flows id a;
        order := id :: !order;
        a
  in
  let errors = ref [] in
  let fail a ~t msg =
    a.malformed <- true;
    errors := { at = t; flow = a.id; message = msg } :: !errors
  in
  let close_recovery a ~t ~kind ~epoch_start =
    push a ~t
      (Recovery { kind; fault_induced = fault_in epoch_start t })
  in
  let finish a ~t result =
    (match a.state with
    | Waiting -> fail a ~t "finished before starting"
    | Handshaking -> push a ~t Handshake
    | In_sending -> push a ~t Sending
    | In_paused { by; preempted_by } -> push a ~t (Paused { by; preempted_by })
    | In_recovery { kind; epoch_start } ->
        close_recovery a ~t ~kind ~epoch_start
    | Finished -> fail a ~t "finished twice");
    if not a.malformed then begin
      a.state <- Finished;
      a.result <- result;
      a.finished_at <- Some t
    end
  in
  let last_t = ref 0. in
  List.iter
    (fun (t, ev) ->
      last_t := max !last_t t;
      match ev with
      | Trace.Sweep_task _ | Trace.Switch_flushed _ | Trace.Switch_rebuilt _
      | Trace.Packet_dropped _ | Trace.Fault _ | Trace.Adversary _ ->
          ()
      | Trace.Flow_admitted { flow; size; deadline; _ } ->
          let a = get flow in
          if a.malformed then ()
          else if a.admitted_at <> None then fail a ~t "admitted twice"
          else if a.state <> Waiting then fail a ~t "admitted after starting"
          else begin
            a.admitted_at <- Some t;
            a.size_bytes <- Some size;
            a.deadline_abs <- deadline
          end
      | Trace.Flow_started { flow } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else if a.state <> Waiting then fail a ~t "started twice"
          else begin
            a.started_at <- Some t;
            a.state <- Handshaking;
            a.phase_start <- t
          end
      | Trace.Flow_established { flow } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else if a.state <> Handshaking then
            fail a ~t "established while not handshaking"
          else begin
            push a ~t Handshake;
            a.state <- In_sending;
            a.phase_start <- t
          end
      | Trace.Flow_paused { flow; by; preempted_by } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else begin
            (match a.state with
            | In_sending -> push a ~t Sending
            | In_recovery { kind; epoch_start } ->
                close_recovery a ~t ~kind ~epoch_start
            | Waiting | Handshaking ->
                fail a ~t "paused before established"
            | In_paused _ -> fail a ~t "paused while paused"
            | Finished -> assert false);
            if not a.malformed then begin
              a.state <- In_paused { by; preempted_by };
              a.phase_start <- t
            end
          end
      | Trace.Flow_resumed { flow; rate } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else begin
            (match a.state with
            | In_paused { by; preempted_by } ->
                push a ~t (Paused { by; preempted_by })
            | _ -> fail a ~t "resumed while not paused");
            if not a.malformed then begin
              a.peak <- max a.peak rate;
              a.state <- In_sending;
              a.phase_start <- t
            end
          end
      | Trace.Flow_rate_set { flow; rate } ->
          let a = get flow in
          if not (a.malformed || a.state = Finished) then
            a.peak <- max a.peak rate
      | Trace.Flow_rx { flow; bytes } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else begin
            a.rx <- a.rx + bytes;
            (* Receiver progress closes an open loss-recovery window. *)
            match a.state with
            | In_recovery { kind; epoch_start } ->
                close_recovery a ~t ~kind ~epoch_start;
                if not a.malformed then begin
                  a.state <- In_sending;
                  a.phase_start <- t
                end
            | _ -> ()
          end
      | Trace.Flow_retransmit { flow; kind } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else begin
            a.rtx <- a.rtx + 1;
            match a.state with
            | In_sending ->
                let epoch_start = a.phase_start in
                push a ~t Sending;
                a.state <- In_recovery { kind; epoch_start };
                a.phase_start <- t
            | In_recovery _ ->
                (* Repeated timeout: the open window just keeps its
                   original kind and epoch. *)
                ()
            | In_paused _ ->
                (* A paused sender's watchdog can still kick its
                   go-back-N; the wall-clock stays attributed to the
                   pause, which is what actually holds the flow back. *)
                ()
            | Waiting | Handshaking ->
                fail a ~t "retransmit before established"
            | Finished -> assert false
          end
      | Trace.Flow_completed { flow; fct } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else finish a ~t (Completed { fct })
      | Trace.Flow_terminated { flow } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else finish a ~t Terminated
      | Trace.Flow_aborted { flow; cause } ->
          let a = get flow in
          if a.malformed || a.state = Finished then ()
          else finish a ~t (Aborted { cause }))
    events;
  (* Close out flows the trace left mid-flight at the last timestamp,
     so their partial spans are still inspectable. *)
  let finalize a =
    let t = !last_t in
    (match a.state with
    | Waiting | Finished -> ()
    | Handshaking -> push a ~t Handshake
    | In_sending -> push a ~t Sending
    | In_paused { by; preempted_by } -> push a ~t (Paused { by; preempted_by })
    | In_recovery { kind; epoch_start } ->
        close_recovery a ~t ~kind ~epoch_start);
    {
      flow = a.id;
      admitted = a.admitted_at;
      started = a.started_at;
      finished = a.finished_at;
      size = a.size_bytes;
      deadline = a.deadline_abs;
      spans = List.rev a.spans_rev;
      outcome = a.result;
      retransmits = a.rtx;
      peak_rate = a.peak;
      rx_bytes = a.rx;
    }
  in
  let ids = List.sort compare (List.rev !order) in
  let malformed id =
    List.exists (fun (e : error) -> e.flow = id) !errors
  in
  let flows =
    List.filter_map
      (fun id ->
        if malformed id then None else Some (finalize (Hashtbl.find flows id)))
      ids
  in
  { flows; errors = List.rev !errors }

let pp_phase fmt = function
  | Handshake -> Format.pp_print_string fmt "handshake"
  | Sending -> Format.pp_print_string fmt "sending"
  | Paused { by; preempted_by } -> (
      match preempted_by with
      | Some p -> Format.fprintf fmt "paused(sw %d, by flow %d)" by p
      | None -> Format.fprintf fmt "paused(sw %d)" by)
  | Recovery { kind; fault_induced } ->
      Format.fprintf fmt "recovery(%s%s)" kind
        (if fault_induced then ", fault" else "")

let pp_outcome fmt = function
  | Completed { fct } -> Format.fprintf fmt "completed fct=%.6g" fct
  | Terminated -> Format.pp_print_string fmt "terminated"
  | Aborted { cause } -> Format.fprintf fmt "aborted(%s)" cause
  | Unfinished -> Format.pp_print_string fmt "unfinished"
