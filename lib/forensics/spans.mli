(** Per-flow lifecycle reconstruction from a recorded (or live) trace.

    Folds the typed event stream of {!Pdq_telemetry.Trace} into
    contiguous per-flow spans — the handshake, sending intervals,
    paused epochs with the preempting flow identified, loss-recovery
    windows, fault-induced downtime — using a strict state machine: an
    event order the simulator cannot produce marks the flow malformed
    and is reported, never papered over. *)

type phase =
  | Handshake  (** First SYN out until the first acknowledgment. *)
  | Sending  (** Established, unpaused, not recovering from loss. *)
  | Paused of { by : int; preempted_by : int option }
      (** Paused by switch [by]; [preempted_by] names the more
          critical flow that claimed the capacity, when known. *)
  | Recovery of { kind : string; fault_induced : bool }
      (** From a retransmission ([kind] ∈ fast / timeout / watchdog)
          until the next receiver progress. [fault_induced] is true
          when an injected fault, a soft-state flush, or a dead-link /
          stale-route drop occurred between the start of the sending
          epoch the loss belongs to and the close of the window —
          downtime rather than garden-variety congestion loss. *)

type span = { phase : phase; t0 : float; t1 : float }

val duration : span -> float

type outcome =
  | Completed of { fct : float }
  | Terminated  (** Early Termination / quenching. *)
  | Aborted of { cause : string }
  | Unfinished  (** The trace ended with the flow mid-flight. *)

type flow_spans = {
  flow : int;
  admitted : float option;
  started : float option;
  finished : float option;
  size : int option;  (** From the admission record, when present. *)
  deadline : float option;
  spans : span list;  (** Chronological and contiguous. *)
  outcome : outcome;
  retransmits : int;
  peak_rate : float;  (** Highest granted rate observed (bits/s). *)
  rx_bytes : int;
}

type error = { at : float; flow : int; message : string }

type t = {
  flows : flow_spans list;  (** Well-formed flows, sorted by id. *)
  errors : error list;  (** One per malformed flow, oldest first. *)
}

val reconstruct : (float * Pdq_telemetry.Trace.event) list -> t
(** Fold a chronological event stream (from {!Replay} or a memory
    sink) into per-flow spans. Flows that trip the state machine are
    excluded from [flows] and described in [errors]; spans of flows
    the trace left unfinished are closed at the last timestamp. *)

val pp_phase : Format.formatter -> phase -> unit
val pp_outcome : Format.formatter -> outcome -> unit
