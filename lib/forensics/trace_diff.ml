type entry = {
  flow : int;
  component : string;
  before : float;
  after : float;
}

let delta e = e.after -. e.before

type t = {
  threshold : float;
  changed : entry list;
  only_before : int list;
  only_after : int list;
}

let components_of (f : Attribution.flow_report) =
  [
    ("fct", f.Attribution.fct);
    ("handshake", f.Attribution.c.Attribution.handshake);
    ("serialization", f.Attribution.c.Attribution.serialization);
    ("paused", f.Attribution.c.Attribution.paused);
    ("recovery", f.Attribution.c.Attribution.recovery);
    ("downtime", f.Attribution.c.Attribution.downtime);
  ]

let diff ?(threshold = 1e-3) (a : Attribution.report)
    (b : Attribution.report) =
  let index r =
    List.map (fun (f : Attribution.flow_report) -> (f.Attribution.flow, f)) r
  in
  let ia = index a.Attribution.flows and ib = index b.Attribution.flows in
  let changed =
    List.concat_map
      (fun (id, fa) ->
        match List.assoc_opt id ib with
        | None -> []
        | Some fb ->
            List.filter_map
              (fun ((name, va), (name', vb)) ->
                assert (name = name');
                if abs_float (vb -. va) > threshold then
                  Some { flow = id; component = name; before = va; after = vb }
                else None)
              (List.combine (components_of fa) (components_of fb)))
      ia
  in
  let missing from into =
    List.filter_map
      (fun (id, _) ->
        if List.mem_assoc id into then None else Some id)
      from
  in
  {
    threshold;
    changed;
    only_before = missing ia ib;
    only_after = missing ib ia;
  }

let fl = Printf.sprintf "%.9g"
let ms x = Printf.sprintf "%+.3f" (1e3 *. x)

let to_text d =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  if d.changed = [] && d.only_before = [] && d.only_after = [] then
    pr "no differences above %s s\n" (fl d.threshold)
  else begin
    pr "differences above %s s:\n" (fl d.threshold);
    List.iter
      (fun e ->
        pr "  flow %d %-13s %s ms (%s -> %s s)\n" e.flow e.component
          (ms (delta e)) (fl e.before) (fl e.after))
      d.changed;
    if d.only_before <> [] then
      pr "  only in first run: %s\n"
        (String.concat "," (List.map string_of_int d.only_before));
    if d.only_after <> [] then
      pr "  only in second run: %s\n"
        (String.concat "," (List.map string_of_int d.only_after))
  end;
  Buffer.contents b

let to_json d =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf {|{"threshold":%s,"changed":[|} (fl d.threshold));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"flow":%d,"component":"%s","before":%s,"after":%s,"delta":%s}|}
           e.flow e.component (fl e.before) (fl e.after) (fl (delta e))))
    d.changed;
  Buffer.add_string b
    (Printf.sprintf {|],"only_before":[%s],"only_after":[%s]}|}
       (String.concat "," (List.map string_of_int d.only_before))
       (String.concat "," (List.map string_of_int d.only_after)));
  Buffer.contents b
