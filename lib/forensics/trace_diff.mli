(** Attribution diffing: align the flows of two runs and surface
    per-component FCT regressions.

    Flows are aligned by id (the scenario API numbers flows
    deterministically, so run-to-run ids are stable); each aligned
    flow's FCT and five attribution components are compared and
    entries exceeding [threshold] seconds are reported, with flows
    completing in only one of the runs listed separately. *)

type entry = {
  flow : int;
  component : string;
      (** One of [fct], [handshake], [serialization], [paused],
          [recovery], [downtime]. *)
  before : float;
  after : float;
}

val delta : entry -> float
(** [after -. before]; positive means the second run regressed. *)

type t = {
  threshold : float;
  changed : entry list;
  only_before : int list;  (** Completed only in the first run. *)
  only_after : int list;  (** Completed only in the second run. *)
}

val diff : ?threshold:float -> Attribution.report -> Attribution.report -> t
(** Default [threshold] is 1e-3 s — scheduling noise from a perturbed
    event interleaving sits well below it, real pauses and outages
    well above. *)

val to_text : t -> string
val to_json : t -> string
