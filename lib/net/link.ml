type gilbert_elliott = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
}

type loss_model =
  | No_loss
  | Bernoulli of float
  | Gilbert of gilbert_elliott

(* The two per-packet events every delivered packet pays — end of
   serialization and delivery after propagation — reuse two closures
   allocated once per link. The packet travels through the [queue] /
   [inflight] FIFOs instead of being captured: all deliveries on a link
   share the same constant latency, so they complete in the order they
   were scheduled and a queue carries exactly the right state. *)
type t = {
  sim : Pdq_engine.Sim.t;
  id : int;
  src : int;
  dst : int;
  rate : float;
  prop_delay : float;
  proc_delay : float;
  buffer_bytes : int;
  queue : Packet.t Queue.t;
  inflight : Packet.t Queue.t;
  mutable tx_done : unit -> unit;
  mutable deliver : unit -> unit;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable receiver : Packet.t -> unit;
  mutable loss_model : loss_model;
  mutable loss_rng : Pdq_engine.Rng.t option;
  mutable ge_bad : bool; (* Gilbert–Elliott channel state *)
  mutable up : bool;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_overflow : int;
  mutable dropped_down : int;
  mutable bytes_sent : int;
  (* (time, cumulative bytes) checkpoints for windowed utilization. *)
  mutable last_window_start : float;
  mutable last_window_bytes : int;
  mutable tap : (now:float -> bytes:int -> unit) option;
  mutable trace : Pdq_telemetry.Trace.t;
}

let noop () = ()
let k_tx = Pdq_engine.Sim.Kind.register "link.tx"
let k_deliver = Pdq_engine.Sim.Kind.register "link.deliver"

let start_transmission t =
  match Queue.peek_opt t.queue with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let tx = Pdq_engine.Units.tx_time ~bytes:pkt.Packet.wire_bytes ~rate:t.rate in
      ignore (Pdq_engine.Sim.schedule_k t.sim k_tx ~delay:tx t.tx_done)

let on_tx_done t =
  let pkt = Queue.pop t.queue in
  t.queued_bytes <- t.queued_bytes - pkt.Packet.wire_bytes;
  t.bytes_sent <- t.bytes_sent + pkt.Packet.wire_bytes;
  (match t.tap with
  | Some f -> f ~now:(Pdq_engine.Sim.now t.sim) ~bytes:pkt.Packet.wire_bytes
  | None -> ());
  t.delivered <- t.delivered + 1;
  Queue.push pkt t.inflight;
  let latency = t.prop_delay +. t.proc_delay in
  ignore
    (Pdq_engine.Sim.schedule_k t.sim k_deliver ~delay:latency t.deliver);
  start_transmission t

let on_deliver t = t.receiver (Queue.pop t.inflight)

let create ~sim ~id ~src ~dst ~rate ~prop_delay ~proc_delay ~buffer_bytes () =
  let t = {
    sim;
    id;
    src;
    dst;
    rate;
    prop_delay;
    proc_delay;
    buffer_bytes;
    queue = Queue.create ();
    inflight = Queue.create ();
    tx_done = noop;
    deliver = noop;
    queued_bytes = 0;
    busy = false;
    receiver = (fun _ -> failwith "Link: receiver not set");
    loss_model = No_loss;
    loss_rng = None;
    ge_bad = false;
    up = true;
    delivered = 0;
    dropped_loss = 0;
    dropped_overflow = 0;
    dropped_down = 0;
    bytes_sent = 0;
    last_window_start = 0.;
    last_window_bytes = 0;
    tap = None;
    trace = Pdq_telemetry.Trace.null;
  }
  in
  t.tx_done <- (fun () -> on_tx_done t);
  t.deliver <- (fun () -> on_deliver t);
  t

let id t = t.id
let src t = t.src
let dst t = t.dst
let rate t = t.rate
let prop_delay t = t.prop_delay
let proc_delay t = t.proc_delay
let set_receiver t f = t.receiver <- f
let receiver t = t.receiver
let queue_bytes t = t.queued_bytes
let queue_packets t = Queue.length t.queue

let set_loss t ~rate ~rng =
  t.loss_model <- (if rate > 0. then Bernoulli rate else No_loss);
  t.loss_rng <- Some rng

let set_loss_model t model ~rng =
  t.loss_model <- model;
  t.ge_bad <- false;
  t.loss_rng <- Some rng

let loss_model t = t.loss_model
let is_up t = t.up
let set_up t up = t.up <- up
let delivered t = t.delivered
let dropped t = t.dropped_loss + t.dropped_overflow + t.dropped_down
let dropped_loss t = t.dropped_loss
let dropped_overflow t = t.dropped_overflow
let dropped_down t = t.dropped_down
let bytes_sent t = t.bytes_sent
let on_transmit t f = t.tap <- Some f
let set_trace t trace = t.trace <- trace

let utilization t ~since ~now =
  ignore since;
  let window = now -. t.last_window_start in
  if window <= 0. then 0.
  else begin
    let bytes = t.bytes_sent - t.last_window_bytes in
    t.last_window_start <- now;
    t.last_window_bytes <- t.bytes_sent;
    Pdq_engine.Units.bytes_to_bits bytes /. (t.rate *. window)
  end

(* One draw of the loss process. The Gilbert–Elliott chain steps once
   per offered packet: transition first, then drop with the loss rate
   of the state the packet observes. *)
let loss_fires t =
  match (t.loss_model, t.loss_rng) with
  | No_loss, _ | _, None -> false
  | Bernoulli rate, Some rng -> rate > 0. && Pdq_engine.Rng.bool rng rate
  | Gilbert ge, Some rng ->
      let flip =
        Pdq_engine.Rng.bool rng (if t.ge_bad then ge.p_bg else ge.p_gb)
      in
      if flip then t.ge_bad <- not t.ge_bad;
      let p = if t.ge_bad then ge.loss_bad else ge.loss_good in
      p > 0. && Pdq_engine.Rng.bool rng p

let record_drop t cause =
  if Pdq_telemetry.Trace.active t.trace then
    Pdq_telemetry.Trace.emit t.trace
      (Pdq_telemetry.Trace.Packet_dropped { link = t.id; cause })

let send t pkt =
  if not t.up then begin
    t.dropped_down <- t.dropped_down + 1;
    record_drop t Pdq_telemetry.Trace.Link_down
  end
  else if loss_fires t then begin
    t.dropped_loss <- t.dropped_loss + 1;
    record_drop t Pdq_telemetry.Trace.Loss
  end
  else if t.queued_bytes + pkt.Packet.wire_bytes > t.buffer_bytes then begin
    t.dropped_overflow <- t.dropped_overflow + 1 (* FIFO tail drop *);
    record_drop t Pdq_telemetry.Trace.Overflow
  end
  else begin
    Queue.push pkt t.queue;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.wire_bytes;
    if not t.busy then start_transmission t
  end
