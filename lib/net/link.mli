(** One direction of a network cable: a FIFO tail-drop output queue
    feeding a store-and-forward transmitter, then propagation and
    per-hop processing delay (§5.1: 11 µs transmission for an MTU at
    1 Gbps, 0.1 µs propagation, 25 µs processing; 4 MByte buffer).

    Loss injection models the lossy-channel experiments of Fig. 9
    (independent Bernoulli drops) and, for the resilience harness,
    bursty Gilbert–Elliott episodes and administrative link-down
    status. *)

type gilbert_elliott = {
  p_gb : float;   (** Per-packet Good→Bad transition probability. *)
  p_bg : float;   (** Per-packet Bad→Good transition probability. *)
  loss_good : float;  (** Drop probability in the Good state. *)
  loss_bad : float;   (** Drop probability in the Bad state. *)
}
(** Two-state Markov loss channel: long stretches of (near-)lossless
    delivery punctuated by bursts of heavy loss. *)

type loss_model =
  | No_loss
  | Bernoulli of float  (** Independent per-packet drop probability. *)
  | Gilbert of gilbert_elliott

type t

val create :
  sim:Pdq_engine.Sim.t ->
  id:int ->
  src:int ->
  dst:int ->
  rate:float ->
  prop_delay:float ->
  proc_delay:float ->
  buffer_bytes:int ->
  unit ->
  t
(** [src]/[dst] are node ids (head and tail of the directed link);
    [rate] is in bits/s. *)

val id : t -> int
val src : t -> int
val dst : t -> int
val rate : t -> float

val prop_delay : t -> float
(** Propagation delay in seconds (used by the validation oracle to
    compute contention-free completion-time lower bounds). *)

val proc_delay : t -> float
(** Per-hop processing delay in seconds. *)

val set_receiver : t -> (Packet.t -> unit) -> unit
(** Install the delivery callback (the destination node's packet
    handler). Must be called before the first {!send}. *)

val receiver : t -> Packet.t -> unit
(** The currently installed delivery callback. Lets an interposition
    layer (the chaos adversary) wrap delivery:
    [set_receiver l (wrap (receiver l))]. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet. It is dropped when the link is down, when the
    loss process fires, or when the buffer would overflow (tail drop);
    otherwise it is serialized at line rate and handed to the receiver
    after propagation + processing delay. *)

val queue_bytes : t -> int
(** Bytes currently waiting in the output queue (incl. the packet being
    serialized). *)

val queue_packets : t -> int

val set_loss : t -> rate:float -> rng:Pdq_engine.Rng.t -> unit
(** Drop each arriving packet independently with probability [rate]
    (shorthand for [set_loss_model (Bernoulli rate)]). *)

val set_loss_model : t -> loss_model -> rng:Pdq_engine.Rng.t -> unit
(** Install a loss process; resets the Gilbert–Elliott channel to the
    Good state. *)

val loss_model : t -> loss_model
(** Currently installed loss process (for save/restore of loss
    episodes). *)

val is_up : t -> bool
val set_up : t -> bool -> unit
(** Administrative status. A down link drops every offered packet
    (counted in {!dropped_down}); packets already accepted into the
    queue keep draining — the cut is at admission. Take both directions
    of a duplex cable down for a symmetric failure. *)

(** Cumulative counters, for utilization and drop statistics. *)

val delivered : t -> int

val dropped : t -> int
(** Total drops: loss process + buffer overflow + link down. *)

val dropped_loss : t -> int
(** Drops by the Bernoulli/Gilbert–Elliott loss process. *)

val dropped_overflow : t -> int
(** FIFO tail drops. *)

val dropped_down : t -> int
(** Packets offered while the link was administratively down. *)

val bytes_sent : t -> int

val utilization : t -> since:float -> now:float -> float
(** Fraction of link capacity used between [since] and [now], based on
    bytes serialized in that window (sampled cheaply; call sparingly). *)

val on_transmit : t -> (now:float -> bytes:int -> unit) -> unit
(** Register a tap called at the end of each packet serialization —
    used to record utilization and queue time series. *)

val set_trace : t -> Pdq_telemetry.Trace.t -> unit
(** Attach a trace bus; every drop then emits a
    [Packet_dropped {link; cause}] event tagged with its cause. Links
    start with the null bus, so untraced runs pay one inactive check
    per drop and allocate nothing. *)
