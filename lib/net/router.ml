type t = {
  topo : Topology.t;
  (* dst -> distance-to-dst for every node, computed by reverse BFS.
     The graph is symmetric (duplex links) so forward BFS suffices. *)
  dist_cache : (int, int array) Hashtbl.t;
}

let create topo = { topo; dist_cache = Hashtbl.create 64 }
let invalidate t = Hashtbl.reset t.dist_cache

(* A link only carries traffic while administratively up; distance
   tables and next hops ignore down links, so recomputed routes steer
   around failures (call {!invalidate} after a status change). *)
let usable t link_id = Link.is_up (Topology.link t.topo link_id)

let bfs_from t root =
  let n = Topology.node_count t.topo in
  let dist = Array.make n max_int in
  dist.(root) <- 0;
  let q = Queue.create () in
  Queue.push root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, link) ->
        if dist.(v) = max_int && usable t link then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
      (Topology.links_from t.topo u)
  done;
  dist

let dist_to t dst =
  match Hashtbl.find_opt t.dist_cache dst with
  | Some d -> d
  | None ->
      let d = bfs_from t dst in
      Hashtbl.add t.dist_cache dst d;
      d

let distance t ~src ~dst =
  let d = (dist_to t dst).(src) in
  if d = max_int then raise Not_found else d

(* Deterministic integer mixing for ECMP choice. *)
let hash3 a b c =
  let h = ref 0x9E3779B9 in
  let mix x =
    h := (!h lxor (x + 0x7F4A7C15 + (!h lsl 6) + (!h lsr 2))) land max_int
  in
  mix a;
  mix b;
  mix c;
  !h

let next_hops t ~node ~dst =
  let dist = dist_to t dst in
  let d = dist.(node) in
  List.filter_map
    (fun (v, link) ->
      if dist.(v) = d - 1 && usable t link then Some (v, link) else None)
    (Topology.links_from t.topo node)
  (* Sort for determinism: adjacency list order depends on insertion. *)
  |> List.sort compare

let path t ~src ~dst ~choice =
  let dist = dist_to t dst in
  if dist.(src) = max_int then raise Not_found;
  let rec walk node acc =
    if node = dst then List.rev (node :: acc)
    else begin
      match next_hops t ~node ~dst with
      | [] -> raise Not_found
      | hops ->
          let pick = hash3 choice node dst mod List.length hops in
          let next, _ = List.nth hops pick in
          walk next (node :: acc)
    end
  in
  Array.of_list (walk src [])

let path_links t ~src ~dst ~choice =
  let nodes = path t ~src ~dst ~choice in
  Array.init
    (Array.length nodes - 1)
    (fun i ->
      let l = Topology.link_to t.topo ~src:nodes.(i) ~dst:nodes.(i + 1) in
      Link.id l)

let ecmp_width t ~src ~dst =
  if src = dst then 0 else List.length (next_hops t ~node:src ~dst)
