(** Shortest-path routing with flow-level ECMP.

    Paths are computed on the unweighted topology graph. When several
    shortest paths exist, the [choice] parameter (typically a flow or
    subflow id) deterministically selects one, emulating flow-level
    equal-cost multi-path forwarding: all packets of one flow use one
    path, different flows (or M-PDQ subflows) spread over the
    equal-cost alternatives. *)

type t

val create : Topology.t -> t
(** Build a router over the (final) topology. Distance tables are
    computed lazily per destination and cached. Links that are
    administratively down ({!Link.is_up}) are excluded from paths. *)

val invalidate : t -> unit
(** Drop every cached distance table. Call after link status changes
    (failure or recovery) so subsequent paths reflect the live
    topology. Link failures must be symmetric (both directions of a
    duplex cable) — distance tables assume an undirected graph. *)

val distance : t -> src:int -> dst:int -> int
(** Hop count of the shortest path. Raises [Not_found] when
    unreachable. *)

val path : t -> src:int -> dst:int -> choice:int -> int array
(** Node ids from [src] to [dst] inclusive, following one shortest path
    selected by hashing [choice] at each branching point. *)

val path_links : t -> src:int -> dst:int -> choice:int -> int array
(** The directed link ids along {!path}. *)

val ecmp_width : t -> src:int -> dst:int -> int
(** Number of distinct next hops on shortest paths at [src] towards
    [dst] — a lower bound on the path diversity M-PDQ can exploit. *)
