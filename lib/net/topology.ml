type node_kind = Host | Switch

type link_params = {
  rate : float;
  prop_delay : float;
  proc_delay : float;
  buffer_bytes : int;
}

let default_params =
  {
    rate = Pdq_engine.Units.gbps 1.;
    prop_delay = Pdq_engine.Units.us 0.1;
    proc_delay = Pdq_engine.Units.us 25.;
    buffer_bytes = Pdq_engine.Units.mbyte 4.;
  }

type node = {
  kind : node_kind;
  rack : int;
  mutable handler : Packet.t -> unit;
}

type t = {
  sim : Pdq_engine.Sim.t;
  mutable nodes : node array;
  mutable node_count : int;
  mutable links : Link.t array;
  mutable link_count : int;
  mutable adj : (int * int) list array; (* node -> (peer, link id) *)
}

let create ~sim () =
  { sim; nodes = [||]; node_count = 0; links = [||]; link_count = 0; adj = [||] }

let sim t = t.sim

let push_node t node =
  if t.node_count = Array.length t.nodes then begin
    let cap = max 16 (2 * t.node_count) in
    let nodes = Array.make cap node in
    Array.blit t.nodes 0 nodes 0 t.node_count;
    t.nodes <- nodes;
    let adj = Array.make cap [] in
    Array.blit t.adj 0 adj 0 t.node_count;
    t.adj <- adj
  end;
  t.nodes.(t.node_count) <- node;
  t.adj.(t.node_count) <- [];
  t.node_count <- t.node_count + 1;
  t.node_count - 1

exception No_handler of int

let unset_handler id _pkt = raise (No_handler id)

let add_host ?(rack = 0) t =
  let id = t.node_count in
  push_node t { kind = Host; rack; handler = unset_handler id }

let add_switch t =
  let id = t.node_count in
  push_node t { kind = Switch; rack = -1; handler = unset_handler id }

let push_link t link =
  if t.link_count = Array.length t.links then begin
    let cap = max 16 (2 * t.link_count) in
    let links = Array.make cap link in
    Array.blit t.links 0 links 0 t.link_count;
    t.links <- links
  end;
  t.links.(t.link_count) <- link;
  t.link_count <- t.link_count + 1;
  t.link_count - 1

let connect ?(params = default_params) t a b =
  let directed src dst =
    let link =
      Link.create ~sim:t.sim ~id:t.link_count ~src ~dst ~rate:params.rate
        ~prop_delay:params.prop_delay ~proc_delay:params.proc_delay
        ~buffer_bytes:params.buffer_bytes ()
    in
    Link.set_receiver link (fun pkt -> t.nodes.(dst).handler pkt);
    let id = push_link t link in
    t.adj.(src) <- (dst, id) :: t.adj.(src)
  in
  directed a b;
  directed b a

let node_count t = t.node_count
let kind t i = t.nodes.(i).kind

let hosts t =
  let acc = ref [] in
  for i = t.node_count - 1 downto 0 do
    if t.nodes.(i).kind = Host then acc := i :: !acc
  done;
  Array.of_list !acc

let rack_of t i = t.nodes.(i).rack
let set_handler t i f = t.nodes.(i).handler <- f
let link_count t = t.link_count
let link t i = t.links.(i)
let links_from t i = t.adj.(i)

let link_to t ~src ~dst =
  let id = List.assoc dst t.adj.(src) in
  t.links.(id)

(* Duplex administrative status: fail or restore both directions of
   the cable between two adjacent nodes. *)
let set_link_up t ~a ~b up =
  Link.set_up (link_to t ~src:a ~dst:b) up;
  Link.set_up (link_to t ~src:b ~dst:a) up

let iter_links f t =
  for i = 0 to t.link_count - 1 do
    f t.links.(i)
  done
