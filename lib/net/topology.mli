(** Mutable network topology: hosts and switches connected by duplex
    links, with per-node packet handlers installed by the transport
    layer. *)

type node_kind = Host | Switch

type link_params = {
  rate : float;         (** bits/s. *)
  prop_delay : float;   (** seconds. *)
  proc_delay : float;   (** seconds. *)
  buffer_bytes : int;
}

val default_params : link_params
(** The paper's §5.1 settings: 1 Gbps, 0.1 µs propagation, 25 µs
    processing, 4 MByte FIFO tail-drop buffer. *)

type t

exception No_handler of int
(** Raised (with the node id) when a packet reaches a node whose
    handler was never installed with {!set_handler} — a wiring bug in
    the transport layer, not a runtime network condition. *)

val create : sim:Pdq_engine.Sim.t -> unit -> t

val sim : t -> Pdq_engine.Sim.t

val add_host : ?rack:int -> t -> int
(** New host node; returns its id. [rack] groups hosts under a
    top-of-rack switch for the staggered traffic pattern. *)

val add_switch : t -> int
(** New switch node; returns its id. *)

val connect : ?params:link_params -> t -> int -> int -> unit
(** Add a duplex link (two directed {!Link.t}) between two nodes. *)

val node_count : t -> int
val kind : t -> int -> node_kind
val hosts : t -> int array
(** Ids of all hosts, in creation order. *)

val rack_of : t -> int -> int
(** Rack id of a host (0 when unspecified). *)

val set_handler : t -> int -> (Packet.t -> unit) -> unit
(** Install the packet handler for a node; links deliver arriving
    packets to it. *)

val link_count : t -> int
val link : t -> int -> Link.t
(** Directed link by id. *)

val links_from : t -> int -> (int * int) list
(** [(peer, link_id)] adjacency of a node. *)

val link_to : t -> src:int -> dst:int -> Link.t
(** The directed link from [src] to its neighbor [dst]. Raises
    [Not_found] if they are not adjacent. *)

val set_link_up : t -> a:int -> b:int -> bool -> unit
(** Fail ([false]) or restore ([true]) both directions of the duplex
    cable between adjacent nodes [a] and [b]. Raises [Not_found] if
    they are not adjacent. *)

val iter_links : (Link.t -> unit) -> t -> unit
