let current : Trace.severity option ref = ref None

let set_threshold th = current := th
let threshold () = !current

let enabled sev =
  match !current with
  | None -> false
  | Some th -> Trace.severity_geq sev th

let err_ppf = Format.err_formatter

let logf sev fmt =
  if enabled sev then begin
    Format.fprintf err_ppf "[%s] " (Trace.severity_name sev);
    Format.kfprintf (fun ppf -> Format.fprintf ppf "@.") err_ppf fmt
  end
  else Format.ifprintf err_ppf fmt
