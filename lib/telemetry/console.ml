(* The threshold is read on every potential log call — including from
   worker domains during parallel sweeps — so it lives in an Atomic;
   emission is serialized by a mutex so lines from concurrent domains
   never interleave mid-line. *)

let current : Trace.severity option Atomic.t = Atomic.make None

let set_threshold th = Atomic.set current th
let threshold () = Atomic.get current

let enabled sev =
  match Atomic.get current with
  | None -> false
  | Some th -> Trace.severity_geq sev th

let err_ppf = Format.err_formatter
let out_lock = Mutex.create ()

let logf sev fmt =
  if enabled sev then begin
    Mutex.lock out_lock;
    Format.fprintf err_ppf "[%s] " (Trace.severity_name sev);
    Format.kfprintf
      (fun ppf ->
        Format.fprintf ppf "@.";
        Mutex.unlock out_lock)
      err_ppf fmt
  end
  else Format.ifprintf err_ppf fmt
