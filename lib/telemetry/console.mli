(** Leveled console logging — the printf-style face of the telemetry
    console sink. Protocol debug prints ({!Pdq_transport.Debug}) route
    through here instead of calling [Printf.eprintf] directly, so one
    global threshold governs all diagnostic output.

    Disabled (the default) it costs a single comparison per call —
    format arguments are not evaluated when the severity is below the
    threshold, and call sites are expected to guard hot paths with
    {!enabled} anyway.

    Domain-safe: the threshold is an atomic read, and enabled messages
    are serialized so lines from concurrent worker domains never
    interleave mid-line. *)

val set_threshold : Trace.severity option -> unit
(** [None] (default) silences everything; [Some sev] prints messages
    of severity [sev] and up. *)

val threshold : unit -> Trace.severity option

val enabled : Trace.severity -> bool
(** Whether a message at this severity would currently print. *)

val logf : Trace.severity -> ('a, Format.formatter, unit) format -> 'a
(** Print one line to stderr as ["[<severity>] <message>"] when
    {!enabled}; otherwise swallow the message without evaluating it. *)
