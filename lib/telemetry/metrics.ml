type serie = { mutable points_rev : (float * float) list; mutable n : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, float list ref) Hashtbl.t;
  series_tbl : (string, serie) Hashtbl.t;
  (* Sample emission order across all series, for chronological export
     without re-sorting: (time, name, value). *)
  mutable samples_rev : (float * string * float) list;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    hists = Hashtbl.create 8;
    series_tbl = Hashtbl.create 64;
    samples_rev = [];
  }

module Name = struct
  let link_util id = Printf.sprintf "link.%d.util" id
  let link_queue_bytes id = Printf.sprintf "link.%d.queue_bytes" id
  let port_flows_active link = Printf.sprintf "port.%d.flows_active" link
  let port_flows_paused link = Printf.sprintf "port.%d.flows_paused" link
  let flow_fct_ms = "flow.fct_ms"
  let watchdog_abort cause = Printf.sprintf "watchdog.abort.%s" cause
end

type counter = int ref

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr c ?(by = 1) () = c := !c + by
let counter_value c = !c

type gauge = float ref

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r
  | None ->
      let r = ref 0. in
      Hashtbl.add t.gauges name r;
      r

let set_gauge g v = g := v
let gauge_value g = !g

type histogram = float list ref

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.hists name r;
      r

let observe h v = h := v :: !h

let histogram_summary h =
  match !h with
  | [] -> None
  | samples ->
      let xs = Array.of_list samples in
      let n = Array.length xs in
      let p q = Pdq_engine.Stats.percentile xs q in
      Some
        ( n,
          Pdq_engine.Stats.mean xs,
          p 50.,
          p 90.,
          p 99.,
          snd (Pdq_engine.Stats.min_max xs) )

let sample t ~time ~name ~value =
  let s =
    match Hashtbl.find_opt t.series_tbl name with
    | Some s -> s
    | None ->
        let s = { points_rev = []; n = 0 } in
        Hashtbl.add t.series_tbl name s;
        s
  in
  s.points_rev <- (time, value) :: s.points_rev;
  s.n <- s.n + 1;
  t.samples_rev <- (time, name, value) :: t.samples_rev

let series t ~name =
  match Hashtbl.find_opt t.series_tbl name with
  | Some s -> Array.of_list (List.rev s.points_rev)
  | None -> [||]

let series_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.series_tbl [] |> List.sort compare

let add_counters t kvs =
  List.iter (fun (k, v) -> incr (counter t k) ~by:v ()) kvs

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fl = Printf.sprintf "%.9g"

(* Scalar rows shared by both exporters, deterministic order. *)
let scalar_rows t =
  let counter_rows =
    List.map (fun (k, v) -> ("counter", k, float_of_int v)) (counters t)
  in
  let gauge_rows =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
    |> List.sort compare
    |> List.map (fun (k, v) -> ("gauge", k, v))
  in
  let hist_rows =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists []
    |> List.sort compare
    |> List.concat_map (fun (k, h) ->
           match histogram_summary h with
           | None -> []
           | Some (n, mean, p50, p90, p99, max_v) ->
               [
                 ("hist.count", k, float_of_int n);
                 ("hist.mean", k, mean);
                 ("hist.p50", k, p50);
                 ("hist.p90", k, p90);
                 ("hist.p99", k, p99);
                 ("hist.max", k, max_v);
               ])
  in
  counter_rows @ gauge_rows @ hist_rows

(* RFC 4180: a field containing commas, quotes or newlines is wrapped
   in double quotes with embedded quotes doubled. Instrument names are
   caller-chosen strings, so they cannot be trusted to stay out of the
   delimiter alphabet. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let write_csv t chan =
  output_string chan "kind,time,name,value\n";
  List.iter
    (fun (time, name, value) ->
      Printf.fprintf chan "sample,%s,%s,%s\n" (fl time) (csv_field name)
        (fl value))
    (List.rev t.samples_rev);
  List.iter
    (fun (kind, name, value) ->
      Printf.fprintf chan "%s,,%s,%s\n" kind (csv_field name) (fl value))
    (scalar_rows t);
  flush chan

let write_jsonl t chan =
  List.iter
    (fun (time, name, value) ->
      Printf.fprintf chan
        "{\"kind\":\"sample\",\"t\":%s,\"name\":\"%s\",\"value\":%s}\n"
        (fl time) (Trace.json_escape name) (fl value))
    (List.rev t.samples_rev);
  List.iter
    (fun (kind, name, value) ->
      Printf.fprintf chan "{\"kind\":\"%s\",\"name\":\"%s\",\"value\":%s}\n"
        kind (Trace.json_escape name) (fl value))
    (scalar_rows t);
  flush chan
