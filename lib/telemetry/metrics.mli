(** Network-wide metrics registry.

    Subsumes the ad-hoc string {!Pdq_engine.Stats.Tally}: instruments
    are created once (typed handles — a counter cannot be set, a gauge
    cannot be incremented), and periodic probes append time-series
    samples on a configurable grid. Everything is exportable as CSV or
    JSONL for plotting.

    Registries are plain data: no simulator events, no randomness, so
    a registry can be attached to a run without perturbing it. *)

type t

val create : unit -> t

(** {1 Typed metric names}

    Canonical dotted names so exporters and consumers agree: use these
    instead of hand-rolled strings. *)

module Name : sig
  val link_util : int -> string
  (** ["link.<id>.util"] — fraction of line rate used since the
      previous sample. *)

  val link_queue_bytes : int -> string
  (** ["link.<id>.queue_bytes"] — instantaneous output-queue depth. *)

  val port_flows_active : int -> string
  (** ["port.<link>.flows_active"] — stored flows currently sending on
      the port of that directed link. *)

  val port_flows_paused : int -> string
  (** ["port.<link>.flows_paused"] — stored flows currently paused. *)

  val flow_fct_ms : string
  (** ["flow.fct_ms"] — histogram of flow completion times. *)

  val watchdog_abort : string -> string
  (** ["watchdog.abort.<cause>"] — live counter of sender-watchdog
      aborts by cause, incremented at abort time (unlike the end-of-run
      ["abort.<cause>"] tally fold), so chaos runs can assert on it by
      stable name. *)
end

(** {1 Scalar instruments} *)

type counter

val counter : t -> string -> counter
(** Find-or-create the named monotonic counter. *)

val incr : counter -> ?by:int -> unit -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

val histogram_summary :
  histogram -> (int * float * float * float * float * float) option
(** [(n, mean, p50, p90, p99, max)], or [None] when empty. *)

(** {1 Time series} *)

val sample : t -> time:float -> name:string -> value:float -> unit
(** Append one (time, value) point to the named series. Times must be
    nondecreasing per name (probes run on a forward-moving clock). *)

val series : t -> name:string -> (float * float) array
(** All points of a series, in order; [[||]] for an unknown name. *)

val series_names : t -> string list
(** Sorted names of all series with at least one point. *)

(** {1 Bulk import and export} *)

val add_counters : t -> (string * int) list -> unit
(** Fold a [(key, count)] list (e.g. {!Pdq_engine.Stats.Tally.to_list})
    into the registry's counters. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val write_csv : t -> out_channel -> unit
(** [kind,time,name,value] rows: every time-series point (kind
    [sample], in time order), then counters (kind [counter]), gauges
    (kind [gauge]) and histogram summaries (kind [hist.*]) with an
    empty time column, sorted by name. Names containing commas,
    quotes or newlines are RFC 4180-quoted. *)

val write_jsonl : t -> out_channel -> unit
(** The same data as {!write_csv}, one JSON object per line. *)
