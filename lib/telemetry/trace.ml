type severity = Trace | Debug | Info | Warn

let severity_rank = function Trace -> 0 | Debug -> 1 | Info -> 2 | Warn -> 3
let severity_geq a b = severity_rank a >= severity_rank b

let severity_name = function
  | Trace -> "trace"
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

type drop_cause = Loss | Overflow | Link_down | Stale_route

let drop_cause_name = function
  | Loss -> "loss"
  | Overflow -> "overflow"
  | Link_down -> "down"
  | Stale_route -> "stale_route"

type event =
  | Flow_admitted of {
      flow : int;
      src : int;
      dst : int;
      size : int;
      deadline : float option;
    }
  | Flow_started of { flow : int }
  | Flow_paused of { flow : int; by : int }
  | Flow_resumed of { flow : int; rate : float }
  | Flow_rate_set of { flow : int; rate : float }
  | Flow_completed of { flow : int; fct : float }
  | Flow_terminated of { flow : int }
  | Flow_aborted of { flow : int; cause : string }
  | Flow_rx of { flow : int; bytes : int }
  | Switch_flushed of { switch : int }
  | Switch_rebuilt of { switch : int }
  | Packet_dropped of { link : int; cause : drop_cause }
  | Fault of { desc : string }
  | Sweep_task of {
      index : int;
      key : string;
      state : string;
      attempts : int;
      elapsed : float;
      detail : string;
    }

let severity_of_event = function
  | Flow_rx _ | Flow_rate_set _ -> Trace
  | Flow_started _ | Flow_paused _ | Flow_resumed _ -> Debug
  | Flow_admitted _ | Flow_completed _ | Flow_terminated _ | Switch_rebuilt _
    ->
      Info
  | Flow_aborted _ | Switch_flushed _ | Packet_dropped _ | Fault _ -> Warn
  | Sweep_task { state; _ } -> (
      match state with
      | "failed" | "timed-out" | "crashed" -> Warn
      | _ -> Info)

(* Floats in JSON: %.9g never produces inf/nan here (rates and times
   are finite by construction) and round-trips doubles closely enough
   for plotting. *)
let j_float x = Printf.sprintf "%.9g" x

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_json ~time ev =
  let fields =
    match ev with
    | Flow_admitted { flow; src; dst; size; deadline } ->
        Printf.sprintf
          "\"ev\":\"flow_admitted\",\"flow\":%d,\"src\":%d,\"dst\":%d,\"size\":%d%s"
          flow src dst size
          (match deadline with
          | Some d -> Printf.sprintf ",\"deadline\":%s" (j_float d)
          | None -> "")
    | Flow_started { flow } -> Printf.sprintf "\"ev\":\"flow_started\",\"flow\":%d" flow
    | Flow_paused { flow; by } ->
        Printf.sprintf "\"ev\":\"flow_paused\",\"flow\":%d,\"by\":%d" flow by
    | Flow_resumed { flow; rate } ->
        Printf.sprintf "\"ev\":\"flow_resumed\",\"flow\":%d,\"rate\":%s" flow
          (j_float rate)
    | Flow_rate_set { flow; rate } ->
        Printf.sprintf "\"ev\":\"flow_rate_set\",\"flow\":%d,\"rate\":%s" flow
          (j_float rate)
    | Flow_completed { flow; fct } ->
        Printf.sprintf "\"ev\":\"flow_completed\",\"flow\":%d,\"fct\":%s" flow
          (j_float fct)
    | Flow_terminated { flow } ->
        Printf.sprintf "\"ev\":\"flow_terminated\",\"flow\":%d" flow
    | Flow_aborted { flow; cause } ->
        Printf.sprintf "\"ev\":\"flow_aborted\",\"flow\":%d,\"cause\":\"%s\"" flow
          (json_escape cause)
    | Flow_rx { flow; bytes } ->
        Printf.sprintf "\"ev\":\"flow_rx\",\"flow\":%d,\"bytes\":%d" flow bytes
    | Switch_flushed { switch } ->
        Printf.sprintf "\"ev\":\"switch_flushed\",\"switch\":%d" switch
    | Switch_rebuilt { switch } ->
        Printf.sprintf "\"ev\":\"switch_rebuilt\",\"switch\":%d" switch
    | Packet_dropped { link; cause } ->
        Printf.sprintf "\"ev\":\"packet_dropped\",\"link\":%d,\"cause\":\"%s\""
          link (drop_cause_name cause)
    | Fault { desc } ->
        Printf.sprintf "\"ev\":\"fault\",\"desc\":\"%s\"" (json_escape desc)
    | Sweep_task { index; key; state; attempts; elapsed; detail } ->
        Printf.sprintf
          "\"ev\":\"sweep_task\",\"slot\":%d,\"key\":\"%s\",\"state\":\"%s\",\
           \"attempts\":%d,\"elapsed\":%s%s"
          index (json_escape key) (json_escape state) attempts
          (j_float elapsed)
          (if detail = "" then ""
           else Printf.sprintf ",\"detail\":\"%s\"" (json_escape detail))
  in
  Printf.sprintf "{\"t\":%s,%s}" (j_float time) fields

let pp_event ppf ev =
  match ev with
  | Flow_admitted { flow; src; dst; size; deadline } ->
      Format.fprintf ppf "flow_admitted flow=%d src=%d dst=%d size=%d%s" flow
        src dst size
        (match deadline with
        | Some d -> Printf.sprintf " deadline=%g" d
        | None -> "")
  | Flow_started { flow } -> Format.fprintf ppf "flow_started flow=%d" flow
  | Flow_paused { flow; by } ->
      Format.fprintf ppf "flow_paused flow=%d by=%d" flow by
  | Flow_resumed { flow; rate } ->
      Format.fprintf ppf "flow_resumed flow=%d rate=%g" flow rate
  | Flow_rate_set { flow; rate } ->
      Format.fprintf ppf "flow_rate_set flow=%d rate=%g" flow rate
  | Flow_completed { flow; fct } ->
      Format.fprintf ppf "flow_completed flow=%d fct=%g" flow fct
  | Flow_terminated { flow } ->
      Format.fprintf ppf "flow_terminated flow=%d" flow
  | Flow_aborted { flow; cause } ->
      Format.fprintf ppf "flow_aborted flow=%d cause=%s" flow cause
  | Flow_rx { flow; bytes } ->
      Format.fprintf ppf "flow_rx flow=%d bytes=%d" flow bytes
  | Switch_flushed { switch } ->
      Format.fprintf ppf "switch_flushed switch=%d" switch
  | Switch_rebuilt { switch } ->
      Format.fprintf ppf "switch_rebuilt switch=%d" switch
  | Packet_dropped { link; cause } ->
      Format.fprintf ppf "packet_dropped link=%d cause=%s" link
        (drop_cause_name cause)
  | Fault { desc } -> Format.fprintf ppf "fault %s" desc
  | Sweep_task { index; key; state; attempts; detail; _ } ->
      Format.fprintf ppf "sweep_task slot=%d key=%s state=%s attempts=%d%s"
        index key state attempts
        (if detail = "" then "" else Printf.sprintf " detail=%s" detail)

(* ------------------------------------------------------------------ *)
(* Sinks *)

type memory_ring = {
  capacity : int option;
  mutable items_rev : (float * event) list;
  mutable count : int;
}

type sink =
  | Memory of memory_ring
  | Jsonl of out_channel
  | Console of { min_severity : severity; chan : out_channel }
  | Callback of (time:float -> event -> unit)

let memory ?capacity () = Memory { capacity; items_rev = []; count = 0 }

let memory_events = function
  | Memory r -> List.rev r.items_rev
  | Jsonl _ | Console _ | Callback _ ->
      invalid_arg "Trace.memory_events: not a memory sink"

let jsonl chan = Jsonl chan
let console ?(min_severity = Debug) chan = Console { min_severity; chan }
let callback f = Callback f

let drop_oldest r =
  (* The ring is kept as a reversed list; trimming the oldest entry is
     O(n) but only runs when a bounded ring overflows, which tests keep
     small. *)
  match List.rev r.items_rev with
  | [] -> ()
  | _ :: rest -> r.items_rev <- List.rev rest

let sink_emit sink ~time ev =
  match sink with
  | Memory r ->
      r.items_rev <- (time, ev) :: r.items_rev;
      r.count <- r.count + 1;
      (match r.capacity with
      | Some cap when r.count > cap ->
          drop_oldest r;
          r.count <- cap
      | Some _ | None -> ())
  | Jsonl chan ->
      output_string chan (event_to_json ~time ev);
      output_char chan '\n';
      flush chan
  | Console { min_severity; chan } ->
      let sev = severity_of_event ev in
      if severity_geq sev min_severity then begin
        let ppf = Format.formatter_of_out_channel chan in
        Format.fprintf ppf "[%s] %.6f %a@." (severity_name sev) time pp_event
          ev
      end
  | Callback f -> f ~time ev

(* ------------------------------------------------------------------ *)
(* The bus *)

type t =
  | Null
  | Bus of {
      clock : unit -> float;
      sinks : sink list;
      mutable emitted : int;
    }

let null = Null

let create ~clock ~sinks =
  match sinks with [] -> Null | _ -> Bus { clock; sinks; emitted = 0 }

let active = function Null -> false | Bus _ -> true

let emit t ev =
  match t with
  | Null -> ()
  | Bus b ->
      let time = b.clock () in
      b.emitted <- b.emitted + 1;
      List.iter (fun s -> sink_emit s ~time ev) b.sinks

let events_seen = function Null -> 0 | Bus b -> b.emitted
