type severity = Trace | Debug | Info | Warn

let severity_rank = function Trace -> 0 | Debug -> 1 | Info -> 2 | Warn -> 3
let severity_geq a b = severity_rank a >= severity_rank b

let severity_name = function
  | Trace -> "trace"
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

type drop_cause = Loss | Overflow | Link_down | Stale_route

let drop_cause_name = function
  | Loss -> "loss"
  | Overflow -> "overflow"
  | Link_down -> "down"
  | Stale_route -> "stale_route"

type event =
  | Flow_admitted of {
      flow : int;
      src : int;
      dst : int;
      size : int;
      deadline : float option;
    }
  | Flow_started of { flow : int }
  | Flow_established of { flow : int }
  | Flow_paused of { flow : int; by : int; preempted_by : int option }
  | Flow_resumed of { flow : int; rate : float }
  | Flow_rate_set of { flow : int; rate : float }
  | Flow_completed of { flow : int; fct : float }
  | Flow_terminated of { flow : int }
  | Flow_aborted of { flow : int; cause : string }
  | Flow_rx of { flow : int; bytes : int }
  | Flow_retransmit of { flow : int; kind : string }
  | Switch_flushed of { switch : int }
  | Switch_rebuilt of { switch : int }
  | Packet_dropped of { link : int; cause : drop_cause }
  | Fault of { desc : string }
  | Adversary of { target : int; action : string }
  | Sweep_task of {
      index : int;
      key : string;
      state : string;
      attempts : int;
      elapsed : float;
      detail : string;
    }

let severity_of_event = function
  | Flow_rx _ | Flow_rate_set _ -> Trace
  | Flow_started _ | Flow_established _ | Flow_paused _ | Flow_resumed _
  | Flow_retransmit _ ->
      Debug
  | Flow_admitted _ | Flow_completed _ | Flow_terminated _ | Switch_rebuilt _
    ->
      Info
  | Flow_aborted _ | Switch_flushed _ | Packet_dropped _ | Fault _ -> Warn
  | Adversary _ -> Debug
  | Sweep_task { state; _ } -> (
      match state with
      | "failed" | "timed-out" | "crashed" -> Warn
      | _ -> Info)

(* Floats in JSON: shortest of %.15g/%.16g/%.17g that parses back to
   the same double. Exact round-tripping is what lets an offline
   replay of a recorded JSONL trace reproduce a live analysis byte for
   byte; rates and times are finite by construction, so inf/nan never
   appear. *)
let j_float x =
  let s = Printf.sprintf "%.15g" x in
  if float_of_string s = x then s
  else
    let s = Printf.sprintf "%.16g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_json ~time ev =
  let fields =
    match ev with
    | Flow_admitted { flow; src; dst; size; deadline } ->
        Printf.sprintf
          "\"ev\":\"flow_admitted\",\"flow\":%d,\"src\":%d,\"dst\":%d,\"size\":%d%s"
          flow src dst size
          (match deadline with
          | Some d -> Printf.sprintf ",\"deadline\":%s" (j_float d)
          | None -> "")
    | Flow_started { flow } -> Printf.sprintf "\"ev\":\"flow_started\",\"flow\":%d" flow
    | Flow_established { flow } ->
        Printf.sprintf "\"ev\":\"flow_established\",\"flow\":%d" flow
    | Flow_paused { flow; by; preempted_by } ->
        Printf.sprintf "\"ev\":\"flow_paused\",\"flow\":%d,\"by\":%d%s" flow by
          (match preempted_by with
          | Some p -> Printf.sprintf ",\"preempted_by\":%d" p
          | None -> "")
    | Flow_resumed { flow; rate } ->
        Printf.sprintf "\"ev\":\"flow_resumed\",\"flow\":%d,\"rate\":%s" flow
          (j_float rate)
    | Flow_rate_set { flow; rate } ->
        Printf.sprintf "\"ev\":\"flow_rate_set\",\"flow\":%d,\"rate\":%s" flow
          (j_float rate)
    | Flow_completed { flow; fct } ->
        Printf.sprintf "\"ev\":\"flow_completed\",\"flow\":%d,\"fct\":%s" flow
          (j_float fct)
    | Flow_terminated { flow } ->
        Printf.sprintf "\"ev\":\"flow_terminated\",\"flow\":%d" flow
    | Flow_aborted { flow; cause } ->
        Printf.sprintf "\"ev\":\"flow_aborted\",\"flow\":%d,\"cause\":\"%s\"" flow
          (json_escape cause)
    | Flow_rx { flow; bytes } ->
        Printf.sprintf "\"ev\":\"flow_rx\",\"flow\":%d,\"bytes\":%d" flow bytes
    | Flow_retransmit { flow; kind } ->
        Printf.sprintf "\"ev\":\"flow_retransmit\",\"flow\":%d,\"kind\":\"%s\""
          flow (json_escape kind)
    | Switch_flushed { switch } ->
        Printf.sprintf "\"ev\":\"switch_flushed\",\"switch\":%d" switch
    | Switch_rebuilt { switch } ->
        Printf.sprintf "\"ev\":\"switch_rebuilt\",\"switch\":%d" switch
    | Packet_dropped { link; cause } ->
        Printf.sprintf "\"ev\":\"packet_dropped\",\"link\":%d,\"cause\":\"%s\""
          link (drop_cause_name cause)
    | Fault { desc } ->
        Printf.sprintf "\"ev\":\"fault\",\"desc\":\"%s\"" (json_escape desc)
    | Adversary { target; action } ->
        Printf.sprintf "\"ev\":\"adversary\",\"target\":%d,\"action\":\"%s\""
          target (json_escape action)
    | Sweep_task { index; key; state; attempts; elapsed; detail } ->
        Printf.sprintf
          "\"ev\":\"sweep_task\",\"slot\":%d,\"key\":\"%s\",\"state\":\"%s\",\
           \"attempts\":%d,\"elapsed\":%s%s"
          index (json_escape key) (json_escape state) attempts
          (j_float elapsed)
          (if detail = "" then ""
           else Printf.sprintf ",\"detail\":\"%s\"" (json_escape detail))
  in
  Printf.sprintf "{\"t\":%s,%s}" (j_float time) fields

let pp_event ppf ev =
  match ev with
  | Flow_admitted { flow; src; dst; size; deadline } ->
      Format.fprintf ppf "flow_admitted flow=%d src=%d dst=%d size=%d%s" flow
        src dst size
        (match deadline with
        | Some d -> Printf.sprintf " deadline=%g" d
        | None -> "")
  | Flow_started { flow } -> Format.fprintf ppf "flow_started flow=%d" flow
  | Flow_established { flow } ->
      Format.fprintf ppf "flow_established flow=%d" flow
  | Flow_paused { flow; by; preempted_by } ->
      Format.fprintf ppf "flow_paused flow=%d by=%d%s" flow by
        (match preempted_by with
        | Some p -> Printf.sprintf " preempted_by=%d" p
        | None -> "")
  | Flow_resumed { flow; rate } ->
      Format.fprintf ppf "flow_resumed flow=%d rate=%g" flow rate
  | Flow_rate_set { flow; rate } ->
      Format.fprintf ppf "flow_rate_set flow=%d rate=%g" flow rate
  | Flow_completed { flow; fct } ->
      Format.fprintf ppf "flow_completed flow=%d fct=%g" flow fct
  | Flow_terminated { flow } ->
      Format.fprintf ppf "flow_terminated flow=%d" flow
  | Flow_aborted { flow; cause } ->
      Format.fprintf ppf "flow_aborted flow=%d cause=%s" flow cause
  | Flow_rx { flow; bytes } ->
      Format.fprintf ppf "flow_rx flow=%d bytes=%d" flow bytes
  | Flow_retransmit { flow; kind } ->
      Format.fprintf ppf "flow_retransmit flow=%d kind=%s" flow kind
  | Switch_flushed { switch } ->
      Format.fprintf ppf "switch_flushed switch=%d" switch
  | Switch_rebuilt { switch } ->
      Format.fprintf ppf "switch_rebuilt switch=%d" switch
  | Packet_dropped { link; cause } ->
      Format.fprintf ppf "packet_dropped link=%d cause=%s" link
        (drop_cause_name cause)
  | Fault { desc } -> Format.fprintf ppf "fault %s" desc
  | Adversary { target; action } ->
      Format.fprintf ppf "adversary target=%d action=%s" target action
  | Sweep_task { index; key; state; attempts; detail; _ } ->
      Format.fprintf ppf "sweep_task slot=%d key=%s state=%s attempts=%d%s"
        index key state attempts
        (if detail = "" then "" else Printf.sprintf " detail=%s" detail)

(* ------------------------------------------------------------------ *)
(* Parsing recorded JSONL back into events (offline replay).

   The scanner handles exactly the flat shape [event_to_json] emits —
   one object of string/number fields, no nesting — and is strict
   about it: anything else is an [Error], never a guess. Combined with
   the round-tripping float format above, [event_of_json] is an exact
   inverse of [event_to_json]. *)

type json_field = Num of string | Str of string

exception Scan_error of string

let scan_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Scan_error msg) in
  let peek () = if !pos < n then line.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c at byte %d" c !pos);
    advance ()
  in
  let scan_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          match peek () with
          | '"' ->
              Buffer.add_char b '"';
              advance ();
              loop ()
          | '\\' ->
              Buffer.add_char b '\\';
              advance ();
              loop ()
          | 'n' ->
              Buffer.add_char b '\n';
              advance ();
              loop ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub line !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              if code > 0xff then fail "\\u escape beyond latin-1";
              Buffer.add_char b (Char.chr code);
              pos := !pos + 4;
              loop ()
          | c -> fail (Printf.sprintf "bad escape \\%c" c))
      | c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let scan_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char line.[!pos] do
      advance ()
    done;
    if !pos = start then fail (Printf.sprintf "expected number at byte %d" start);
    String.sub line start (!pos - start)
  in
  expect '{';
  let fields = ref [] in
  let rec pairs () =
    let key = scan_string () in
    expect ':';
    let value =
      if peek () = '"' then Str (scan_string ()) else Num (scan_number ())
    in
    fields := (key, value) :: !fields;
    match peek () with
    | ',' ->
        advance ();
        pairs ()
    | '}' -> advance ()
    | c -> fail (Printf.sprintf "expected , or } but found %c" c)
  in
  pairs ();
  if !pos <> n then fail "trailing bytes after object";
  List.rev !fields

let drop_cause_of_name = function
  | "loss" -> Some Loss
  | "overflow" -> Some Overflow
  | "down" -> Some Link_down
  | "stale_route" -> Some Stale_route
  | _ -> None

let event_of_json line =
  match scan_fields line with
  | exception Scan_error msg -> Error msg
  | fields -> (
      let fail msg = raise (Scan_error msg) in
      let str k =
        match List.assoc_opt k fields with
        | Some (Str s) -> s
        | Some (Num _) -> fail (Printf.sprintf "field %S is not a string" k)
        | None -> fail (Printf.sprintf "missing field %S" k)
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (Num s) -> s
        | Some (Str _) -> fail (Printf.sprintf "field %S is not a number" k)
        | None -> fail (Printf.sprintf "missing field %S" k)
      in
      let int k =
        let s = num k in
        try int_of_string s
        with _ -> fail (Printf.sprintf "field %S is not an integer" k)
      in
      let float k =
        let s = num k in
        try float_of_string s
        with _ -> fail (Printf.sprintf "field %S is not a float" k)
      in
      let opt_int k =
        if List.mem_assoc k fields then Some (int k) else None
      in
      let opt_float k =
        if List.mem_assoc k fields then Some (float k) else None
      in
      let opt_str_default k default =
        if List.mem_assoc k fields then str k else default
      in
      try
        let time = float "t" in
        let ev =
          match str "ev" with
          | "flow_admitted" ->
              Flow_admitted
                {
                  flow = int "flow";
                  src = int "src";
                  dst = int "dst";
                  size = int "size";
                  deadline = opt_float "deadline";
                }
          | "flow_started" -> Flow_started { flow = int "flow" }
          | "flow_established" -> Flow_established { flow = int "flow" }
          | "flow_paused" ->
              Flow_paused
                {
                  flow = int "flow";
                  by = int "by";
                  preempted_by = opt_int "preempted_by";
                }
          | "flow_resumed" ->
              Flow_resumed { flow = int "flow"; rate = float "rate" }
          | "flow_rate_set" ->
              Flow_rate_set { flow = int "flow"; rate = float "rate" }
          | "flow_completed" ->
              Flow_completed { flow = int "flow"; fct = float "fct" }
          | "flow_terminated" -> Flow_terminated { flow = int "flow" }
          | "flow_aborted" ->
              Flow_aborted { flow = int "flow"; cause = str "cause" }
          | "flow_rx" -> Flow_rx { flow = int "flow"; bytes = int "bytes" }
          | "flow_retransmit" ->
              Flow_retransmit { flow = int "flow"; kind = str "kind" }
          | "switch_flushed" -> Switch_flushed { switch = int "switch" }
          | "switch_rebuilt" -> Switch_rebuilt { switch = int "switch" }
          | "packet_dropped" -> (
              match drop_cause_of_name (str "cause") with
              | Some cause -> Packet_dropped { link = int "link"; cause }
              | None ->
                  fail (Printf.sprintf "unknown drop cause %S" (str "cause")))
          | "fault" -> Fault { desc = str "desc" }
          | "adversary" ->
              Adversary { target = int "target"; action = str "action" }
          | "sweep_task" ->
              Sweep_task
                {
                  index = int "slot";
                  key = str "key";
                  state = str "state";
                  attempts = int "attempts";
                  elapsed = float "elapsed";
                  detail = opt_str_default "detail" "";
                }
          | other -> fail (Printf.sprintf "unknown event %S" other)
        in
        Ok (time, ev)
      with Scan_error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Sinks *)

type memory_ring = {
  capacity : int option;
  mutable items_rev : (float * event) list;
  mutable count : int;
}

type sink =
  | Memory of memory_ring
  | Jsonl of out_channel
  | Console of { min_severity : severity; chan : out_channel }
  | Callback of (time:float -> event -> unit)

let memory ?capacity () = Memory { capacity; items_rev = []; count = 0 }

let memory_events = function
  | Memory r -> List.rev r.items_rev
  | Jsonl _ | Console _ | Callback _ ->
      invalid_arg "Trace.memory_events: not a memory sink"

let jsonl chan = Jsonl chan
let console ?(min_severity = Debug) chan = Console { min_severity; chan }
let callback f = Callback f

let drop_oldest r =
  (* The ring is kept as a reversed list; trimming the oldest entry is
     O(n) but only runs when a bounded ring overflows, which tests keep
     small. *)
  match List.rev r.items_rev with
  | [] -> ()
  | _ :: rest -> r.items_rev <- List.rev rest

let sink_emit sink ~time ev =
  match sink with
  | Memory r ->
      r.items_rev <- (time, ev) :: r.items_rev;
      r.count <- r.count + 1;
      (match r.capacity with
      | Some cap when r.count > cap ->
          drop_oldest r;
          r.count <- cap
      | Some _ | None -> ())
  | Jsonl chan ->
      output_string chan (event_to_json ~time ev);
      output_char chan '\n';
      flush chan
  | Console { min_severity; chan } ->
      let sev = severity_of_event ev in
      if severity_geq sev min_severity then begin
        let ppf = Format.formatter_of_out_channel chan in
        Format.fprintf ppf "[%s] %.6f %a@." (severity_name sev) time pp_event
          ev
      end
  | Callback f -> f ~time ev

(* ------------------------------------------------------------------ *)
(* The bus *)

type t =
  | Null
  | Bus of {
      clock : unit -> float;
      sinks : sink list;
      mutable emitted : int;
    }

let null = Null

let create ~clock ~sinks =
  match sinks with [] -> Null | _ -> Bus { clock; sinks; emitted = 0 }

let active = function Null -> false | Bus _ -> true

let emit t ev =
  match t with
  | Null -> ()
  | Bus b ->
      let time = b.clock () in
      b.emitted <- b.emitted + 1;
      List.iter (fun s -> sink_emit s ~time ev) b.sinks

let events_seen = function Null -> 0 | Bus b -> b.emitted
