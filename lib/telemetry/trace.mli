(** Structured trace bus: typed simulation events with sim-timestamps,
    fanned out to pluggable sinks.

    The bus is designed so that instrumented code costs nothing when
    nobody listens: every emit site is written

    {[ if Trace.active bus then Trace.emit bus (Flow_paused { ... }) ]}

    so with no sink attached ({!null}, or [create ~sinks:[]]) no event
    record is even allocated and a run is bit-for-bit identical to an
    uninstrumented one. Emitting never schedules simulator events and
    never consumes randomness, so attaching a sink cannot perturb a
    deterministic run either — it only observes it. *)

(** {1 Severity} *)

type severity = Trace | Debug | Info | Warn
(** Ordered: [Trace < Debug < Info < Warn]. *)

val severity_geq : severity -> severity -> bool
(** [severity_geq a b] — [a] is at least as severe as [b]. *)

val severity_name : severity -> string

(** {1 Events} *)

type drop_cause = Loss | Overflow | Link_down | Stale_route

type event =
  | Flow_admitted of {
      flow : int;
      src : int;
      dst : int;
      size : int;
      deadline : float option;
    }  (** The experiment registered the flow (route pinned). *)
  | Flow_started of { flow : int }  (** First SYN left the sender. *)
  | Flow_established of { flow : int }
      (** The sender's first acknowledgment arrived — the handshake is
          over and data (or probing, if paused at birth) can begin. *)
  | Flow_paused of { flow : int; by : int; preempted_by : int option }
      (** The sender learned it is paused ([by] = pausing switch id).
          [preempted_by] names the more critical flow whose reserved
          rate exhausted the switch's capacity, when the pause is a
          preemption; [None] when the pause comes from the rate
          controller alone or from the RCP fallback (no single flow to
          blame). Carried by the scheduling feedback, so forensic
          attribution can build the who-preempted-whom table. *)
  | Flow_resumed of { flow : int; rate : float }
      (** The sender left the paused state with the given rate. *)
  | Flow_rate_set of { flow : int; rate : float }
      (** Granted rate changed while sending (bits/s). *)
  | Flow_completed of { flow : int; fct : float }
      (** All bytes delivered; [fct] = completion − start. *)
  | Flow_terminated of { flow : int }
      (** Early Termination / quenching (deliberate scheduling). *)
  | Flow_aborted of { flow : int; cause : string }
      (** Watchdog gave up (dead path); [cause] e.g. ["syn"],
          ["stall"]. *)
  | Flow_rx of { flow : int; bytes : int }
      (** Receiver accepted [bytes] new in-order payload bytes. *)
  | Flow_retransmit of { flow : int; kind : string }
      (** The sender re-sent data it had already transmitted. [kind] ∈
          ["fast"] (dup-ack fast retransmit / selective repair),
          ["timeout"] (TCP RTO go-back-N), ["watchdog"] (rate-based
          sender's stalled-progress go-back-N). Opens a loss-recovery
          window in forensic span reconstruction; the window closes at
          the next receiver progress. *)
  | Switch_flushed of { switch : int }
      (** A crash-reboot wiped one port's scheduler soft state. *)
  | Switch_rebuilt of { switch : int }
      (** A flushed port stored its first flow again — soft state is
          being rebuilt from traversing headers (§3.3). *)
  | Packet_dropped of { link : int; cause : drop_cause }
  | Fault of { desc : string }
      (** Injected fault or fault-handling side effect (reroute
          failure, stale route, reboot), named by its tally key or
          plan-event description. *)
  | Adversary of { target : int; action : string }
      (** The chaos adversary layer acted on a packet: [target] is the
          directed link id for packet actions (reorder / duplicate /
          corrupt / jitter) or the switch id for clock skew; [action]
          names what was done. *)
  | Sweep_task of {
      index : int;
      key : string;
      state : string;
      attempts : int;
      elapsed : float;
      detail : string;
    }
      (** Supervised-sweep slot lifecycle ([state] ∈ ok / resumed /
          failed / timed-out / retry / crashed / respawned). Emitted on
          a {e wall-clock} bus by the {!Pdq_exec.Sweep} supervisor —
          the one event family whose timestamps are not simulated
          time. [detail] carries the exception or tripped budget. *)

val severity_of_event : event -> severity

(** {1 Sinks} *)

type sink

val memory : ?capacity:int -> unit -> sink
(** In-memory ring sink for tests: keeps the last [capacity] events
    (default: unbounded). *)

val memory_events : sink -> (float * event) list
(** Recorded (time, event) pairs, oldest first. Raises
    [Invalid_argument] on a non-memory sink. *)

val jsonl : out_channel -> sink
(** One JSON object per line, in emission order (see
    {!event_to_json}). The channel is flushed on every event so a
    crashed run still leaves a usable trace; closing it is the
    caller's business. *)

val console : ?min_severity:severity -> out_channel -> sink
(** Human-readable one-line-per-event sink, filtered by severity
    (default: [Debug] and up). *)

val callback : (time:float -> event -> unit) -> sink
(** Arbitrary consumer sink (streaming analysis, invariant monitors).
    The callback must not schedule simulator events or consume
    randomness — the bus contract is that sinks only observe. *)

(** {1 The bus} *)

type t

val null : t
(** The inactive bus: [active null = false], [emit] is a no-op. *)

val create : clock:(unit -> float) -> sinks:sink list -> t
(** A bus stamping events with [clock ()] (virtual sim time). With an
    empty sink list this returns {!null}. *)

val active : t -> bool
(** Whether any sink is attached — guard emit sites with this so the
    event is never allocated on quiet runs. *)

val emit : t -> event -> unit
(** Deliver the event (stamped with the bus clock) to every sink.
    No-op on {!null}. *)

val events_seen : t -> int
(** Events emitted through this bus so far (0 for {!null}). *)

(** {1 Rendering} *)

val json_escape : string -> string
(** Escape a string's contents for embedding in a JSON string literal
    (quotes, backslashes, control characters; no surrounding
    quotes). *)

val event_to_json : time:float -> event -> string
(** One self-contained JSON object, e.g.
    [{"t":0.0012,"ev":"flow_paused","flow":3,"by":2}]. Floats are
    rendered with the shortest format that parses back to the same
    double, so {!event_of_json} is an exact inverse. *)

val event_of_json : string -> (float * event, string) result
(** Parse one line of a recorded JSONL trace back into its
    [(time, event)] pair — the exact inverse of {!event_to_json}
    (including float values, bit for bit). Strict: a malformed line,
    an unknown event name, a missing or mistyped field all return
    [Error] with a description, never a partial event. *)

val pp_event : Format.formatter -> event -> unit
(** Compact [key=value] rendering used by the console sink. *)
