module Sim = Pdq_engine.Sim
module Trace = Pdq_telemetry.Trace
module Packet = Pdq_net.Packet
module Topology = Pdq_net.Topology
module Router = Pdq_net.Router
module Link = Pdq_net.Link

type flow_spec = {
  src : int;
  dst : int;
  size : int;
  deadline : float option;
  start : float;
}

type flow = {
  id : int;
  spec : flow_spec;
  deadline_abs : float option;
  mutable completed_at : float option;
  mutable terminated : bool;
  mutable aborted : bool;
}

(* How a pinned route was obtained: ECMP routes can be recomputed when
   the topology degrades; explicitly pinned node paths (source routing)
   cannot and are left alone. *)
type route_origin = Ecmp of { src : int; dst : int; choice : int } | Pinned

type hooks = {
  mutable on_forward : link:int -> Packet.t -> unit;
  mutable on_reverse : fwd_link:int -> Packet.t -> unit;
  mutable deliver : node:int -> Packet.t -> unit;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  router : Router.t;
  rng : Pdq_engine.Rng.t;
  init_rtt : float;
  trace : Trace.t;
  mutable flows_rev : flow list;
  mutable flow_count : int;
  mutable next_subflow_id : int;
  routes : (int, int array) Hashtbl.t;
  route_origins : (int, route_origin) Hashtbl.t;
  hooks : hooks;
  mutable reboot_hooks : (int -> unit) list;
  tally : Pdq_engine.Stats.Tally.t;
  mutable open_flows : int;
  mutable all_complete_cb : (unit -> unit) option;
  mutable abort_observer : (cause:string -> unit) option;
}

(* Subflow ids live far above experiment flow ids so route-table keys
   never collide. *)
let subflow_id_base = 1_000_000

let create ?(trace = Trace.null) ~sim ~topo ~rng ~init_rtt () =
  {
    sim;
    topo;
    router = Router.create topo;
    rng;
    init_rtt;
    trace;
    flows_rev = [];
    flow_count = 0;
    next_subflow_id = subflow_id_base;
    routes = Hashtbl.create 256;
    route_origins = Hashtbl.create 256;
    reboot_hooks = [];
    tally = Pdq_engine.Stats.Tally.create ();
    hooks =
      {
        on_forward = (fun ~link:_ _ -> ());
        on_reverse = (fun ~fwd_link:_ _ -> ());
        deliver = (fun ~node:_ _ -> ());
      };
    open_flows = 0;
    all_complete_cb = None;
    abort_observer = None;
  }

let sim t = t.sim
let topo t = t.topo
let router t = t.router
let rng t = t.rng
let init_rtt t = t.init_rtt
let now t = Sim.now t.sim

let tally t = t.tally
let trace t = t.trace

(* Fault keys ("fault.*") become [Fault] events; "drop.*" keys are
   tallied only — their drop sites emit typed [Packet_dropped] events
   themselves. *)
let fault_key key =
  String.length key >= 6 && String.sub key 0 6 = "fault."

let record_fault t key =
  Pdq_engine.Stats.Tally.incr t.tally key;
  if Trace.active t.trace && fault_key key then
    Trace.emit t.trace (Trace.Fault { desc = key })

let register_route t ~id ~src ~dst ~choice =
  (* A flow admitted while its endpoints are partitioned gets an empty
     route: its packets drop at the source (stale-route path) and the
     watchdog aborts it. [reroute] fills in a real path if connectivity
     returns first. *)
  let path =
    match Router.path t.router ~src ~dst ~choice with
    | p -> p
    | exception Not_found ->
        record_fault t "fault.unroutable";
        [||]
  in
  Hashtbl.replace t.routes id path;
  Hashtbl.replace t.route_origins id (Ecmp { src; dst; choice });
  path

let register_route_nodes t ~id path =
  if Array.length path < 2 then
    invalid_arg "Context.register_route_nodes: path too short";
  Hashtbl.replace t.routes id path;
  Hashtbl.replace t.route_origins id Pinned

(* Topology changed (link failed or recovered): recompute every ECMP
   route on the live graph. A flow whose endpoints are partitioned
   keeps its stale route — its packets die at the down link and the
   sender's watchdog eventually aborts it — so degradation is graceful
   rather than an exception. Ids are visited in sorted order to keep
   runs deterministic. *)
let reroute t =
  Router.invalidate t.router;
  let ids =
    Hashtbl.fold
      (fun id origin acc ->
        match origin with Ecmp _ -> id :: acc | Pinned -> acc)
      t.route_origins []
    |> List.sort compare
  in
  List.iter
    (fun id ->
      match Hashtbl.find t.route_origins id with
      | Pinned -> ()
      | Ecmp { src; dst; choice } -> (
          match Router.path t.router ~src ~dst ~choice with
          | path -> Hashtbl.replace t.routes id path
          | exception Not_found -> record_fault t "fault.unroutable"))
    ids

let on_switch_reboot t f = t.reboot_hooks <- t.reboot_hooks @ [ f ]

let reboot_switch t ~node =
  record_fault t "fault.switch_reboot";
  List.iter (fun f -> f node) t.reboot_hooks

let add_flow t spec =
  let id = t.flow_count in
  t.flow_count <- t.flow_count + 1;
  let flow =
    {
      id;
      spec;
      deadline_abs = Option.map (fun d -> spec.start +. d) spec.deadline;
      completed_at = None;
      terminated = false;
      aborted = false;
    }
  in
  t.flows_rev <- flow :: t.flows_rev;
  t.open_flows <- t.open_flows + 1;
  ignore (register_route t ~id ~src:spec.src ~dst:spec.dst ~choice:id);
  if Trace.active t.trace then
    Trace.emit t.trace
      (Trace.Flow_admitted
         {
           flow = id;
           src = spec.src;
           dst = spec.dst;
           size = spec.size;
           deadline = flow.deadline_abs;
         });
  flow

let flows t = List.rev t.flows_rev

let fresh_subflow_id t =
  let id = t.next_subflow_id in
  t.next_subflow_id <- id + 1;
  id

let route t id =
  match Hashtbl.find_opt t.routes id with
  | Some p -> p
  | None -> failwith (Printf.sprintf "Context.route: unknown flow %d" id)

let is_forward_kind = function
  | Packet.Syn | Packet.Data | Packet.Probe | Packet.Term -> true
  | Packet.Syn_ack | Packet.Ack -> false

let position path node =
  let rec scan i =
    if i >= Array.length path then None
    else if path.(i) = node then Some i
    else scan (i + 1)
  in
  scan 0

let stale_drop t =
  record_fault t "drop.stale_route";
  if Trace.active t.trace then
    Trace.emit t.trace
      (Trace.Packet_dropped { link = -1; cause = Trace.Stale_route })

let transmit t ~from (pkt : Packet.t) =
  let path = route t pkt.Packet.flow in
  match position path from with
  | None ->
      (* The flow was re-pinned (link failure) while this packet was in
         flight on the old path: the node has no forwarding entry for
         it any more. Drop it — the sender's retransmission machinery
         recovers — and make the loss visible in the counters. *)
      stale_drop t
  | Some i ->
      if is_forward_kind pkt.Packet.kind then begin
        let next = path.(i + 1) in
        let link = Topology.link_to t.topo ~src:from ~dst:next in
        t.hooks.on_forward ~link:(Link.id link) pkt;
        Link.send link pkt
      end
      else if i = 0 then
        (* A reverse packet stranded at the (new) route's head that is
           not the flow source: same stale-route drop. *)
        stale_drop t
      else begin
        (* Reverse packets run Algorithm-3-style processing against the
           forward-direction port at this node before heading back. *)
        if i + 1 < Array.length path then begin
          let fwd = Topology.link_to t.topo ~src:from ~dst:path.(i + 1) in
          t.hooks.on_reverse ~fwd_link:(Link.id fwd) pkt
        end;
        let prev = path.(i - 1) in
        let link = Topology.link_to t.topo ~src:from ~dst:prev in
        Link.send link pkt
      end

let set_hooks t ~on_forward ~on_reverse ~deliver =
  t.hooks.on_forward <- on_forward;
  t.hooks.on_reverse <- on_reverse;
  t.hooks.deliver <- deliver;
  for node = 0 to Topology.node_count t.topo - 1 do
    Topology.set_handler t.topo node (fun pkt ->
        if pkt.Packet.dst <> node then transmit t ~from:node pkt
        else begin
          (* A reverse packet arriving at the flow source still needs
             processing against the source NIC's forward port. *)
          (if not (is_forward_kind pkt.Packet.kind) then begin
             let path = route t pkt.Packet.flow in
             if Array.length path > 1 && path.(0) = node then begin
               let fwd =
                 Topology.link_to t.topo ~src:node ~dst:path.(1)
               in
               t.hooks.on_reverse ~fwd_link:(Pdq_net.Link.id fwd) pkt
             end
           end);
          t.hooks.deliver ~node pkt
        end)
  done

let maybe_fire_all_complete t =
  if t.open_flows = 0 then
    match t.all_complete_cb with
    | Some f ->
        t.all_complete_cb <- None;
        f ()
    | None -> ()

let complete t flow =
  if flow.completed_at = None then begin
    flow.completed_at <- Some (now t);
    if Trace.active t.trace then
      Trace.emit t.trace
        (Trace.Flow_completed
           { flow = flow.id; fct = now t -. flow.spec.start });
    (* A terminated/aborted flow was already counted closed even if its
       last in-flight packets still complete the transfer. *)
    if not (flow.terminated || flow.aborted) then begin
      t.open_flows <- t.open_flows - 1;
      maybe_fire_all_complete t
    end
  end

let flow_closed t flow =
  if flow.completed_at = None && flow.terminated then begin
    if Trace.active t.trace then
      Trace.emit t.trace (Trace.Flow_terminated { flow = flow.id });
    t.open_flows <- t.open_flows - 1;
    maybe_fire_all_complete t
  end

(* Terminal watchdog outcome: the sender gave up after bounded retries
   (dead path, endless loss). Distinct from Early Termination, which is
   a deliberate scheduling decision; aborts are per-cause tallied so
   resilience runs can report why flows died. *)
let abort t flow ~cause =
  if flow.completed_at = None && (not flow.terminated) && not flow.aborted
  then begin
    flow.aborted <- true;
    Pdq_engine.Stats.Tally.incr t.tally ("abort." ^ cause);
    (match t.abort_observer with Some f -> f ~cause | None -> ());
    if Trace.active t.trace then
      Trace.emit t.trace (Trace.Flow_aborted { flow = flow.id; cause });
    t.open_flows <- t.open_flows - 1;
    maybe_fire_all_complete t
  end

let on_abort t f = t.abort_observer <- Some f

let completed_count t =
  List.fold_left
    (fun n f -> if f.completed_at <> None then n + 1 else n)
    0 t.flows_rev

let on_all_complete t f = t.all_complete_cb <- Some f

let record_rx t ~flow_id ~bytes =
  if Trace.active t.trace then
    Trace.emit t.trace (Trace.Flow_rx { flow = flow_id; bytes })
