(** Shared per-run state for the packet-level transports: the flow
    table, per-flow routes (flow-level ECMP pins one path per flow so
    ACKs retrace the data path), generic forwarding with per-protocol
    header-processing hooks, and the run's telemetry bus, through which
    flow lifecycle, fault and receive events are emitted.

    Each protocol module installs three hooks:
    - [on_forward ~link] — process a source→destination packet header
      just before it is enqueued on directed link [link];
    - [on_reverse ~fwd_link] — process a destination→source packet
      against the state of the forward-direction port [fwd_link];
    - [deliver ~node] — hand a packet addressed to [node] to the local
      endpoint. *)

type flow_spec = {
  src : int;              (** Source host node id. *)
  dst : int;              (** Destination host node id. *)
  size : int;             (** Application bytes to transfer. *)
  deadline : float option;(** Relative deadline (seconds after start). *)
  start : float;          (** Absolute start time. *)
}

type flow = {
  id : int;
  spec : flow_spec;
  deadline_abs : float option;
  mutable completed_at : float option;
      (** Time the receiver held every byte. *)
  mutable terminated : bool;
      (** Early Termination / quenching killed the flow. *)
  mutable aborted : bool;
      (** The sender's watchdog gave up after bounded retries (dead
          path or unrecoverable loss). *)
}

type t

val create :
  ?trace:Pdq_telemetry.Trace.t ->
  sim:Pdq_engine.Sim.t ->
  topo:Pdq_net.Topology.t ->
  rng:Pdq_engine.Rng.t ->
  init_rtt:float ->
  unit ->
  t
(** [trace] (default {!Pdq_telemetry.Trace.null}) is the run's event
    bus; the context emits [Flow_admitted] / [Flow_completed] /
    [Flow_terminated] / [Flow_aborted] / [Flow_rx] / [Fault] events on
    it and protocols pick it up via {!trace} for their own
    emissions. *)

val sim : t -> Pdq_engine.Sim.t
val topo : t -> Pdq_net.Topology.t
val router : t -> Pdq_net.Router.t
val rng : t -> Pdq_engine.Rng.t
val init_rtt : t -> float
val now : t -> float

val trace : t -> Pdq_telemetry.Trace.t
(** The run's trace bus ({!Pdq_telemetry.Trace.null} when no sink is
    attached). *)

val add_flow : t -> flow_spec -> flow
(** Register an experiment flow; assigns the flow id and computes and
    pins its ECMP route. *)

val flows : t -> flow list
(** All registered flows, in registration order. *)

val fresh_subflow_id : t -> int
(** Allocate an id outside the experiment-flow space (M-PDQ
    subflows). *)

val register_route : t -> id:int -> src:int -> dst:int -> choice:int -> int array
(** Compute, pin and return the route for a (sub)flow id. *)

val register_route_nodes : t -> id:int -> int array -> unit
(** Pin an explicit node path (source-routing, e.g. BCube
    address-based multipath for M-PDQ subflows). Consecutive nodes must
    be adjacent in the topology. *)

val route : t -> int -> int array
(** The pinned node path of a (sub)flow. *)

val set_hooks :
  t ->
  on_forward:(link:int -> Pdq_net.Packet.t -> unit) ->
  on_reverse:(fwd_link:int -> Pdq_net.Packet.t -> unit) ->
  deliver:(node:int -> Pdq_net.Packet.t -> unit) ->
  unit
(** Install protocol hooks and the node handlers on every node. *)

val transmit : t -> from:int -> Pdq_net.Packet.t -> unit
(** Send a packet from node [from] along its flow's pinned route,
    running the protocol hooks. Used both by original senders and by
    the forwarding path. *)

val is_forward_kind : Pdq_net.Packet.kind -> bool
(** SYN/DATA/PROBE/TERM travel source→destination. *)

(** {2 Completion accounting} *)

val complete : t -> flow -> unit
(** Record receiver-side completion (idempotent). *)

val completed_count : t -> int

val on_all_complete : t -> (unit -> unit) -> unit
(** Callback fired when every registered flow has completed or been
    terminated (used to stop long simulations early). *)

val flow_closed : t -> flow -> unit
(** Internal: called on termination to update the all-complete check. *)

val abort : t -> flow -> cause:string -> unit
(** Record a terminal watchdog abort (idempotent): marks the flow
    aborted, tallies ["abort." ^ cause] and counts the flow closed. *)

val on_abort : t -> (cause:string -> unit) -> unit
(** Observer fired at every counted abort, before the trace event. The
    runner wires it to the metrics registry
    ({!Pdq_telemetry.Metrics.Name.watchdog_abort}) so live counters
    track per-cause aborts as they happen; zero-cost when unset. *)

(** {2 Fault handling} *)

val reroute : t -> unit
(** Recompute every ECMP-derived pinned route against the current link
    status (call after a link failure or recovery). Explicitly pinned
    source routes are untouched. Flows left without a path keep their
    stale route and are tallied under ["fault.unroutable"]; their
    watchdogs abort them eventually. *)

val on_switch_reboot : t -> (int -> unit) -> unit
(** Register a hook run when a switch reboots; protocols use it to
    flush the per-port scheduler state of the rebooted node. *)

val reboot_switch : t -> node:int -> unit
(** Crash-reboot the switch [node]: tallies ["fault.switch_reboot"]
    and runs the registered hooks in registration order. *)

val tally : t -> Pdq_engine.Stats.Tally.t
(** Per-cause abort and fault-event counters accumulated during the
    run. *)

val record_fault : t -> string -> unit
(** Increment a tally key (fault injection, drop accounting);
    ["fault.*"] keys also emit a [Fault] trace event. *)

val record_rx : t -> flow_id:int -> bytes:int -> unit
(** Called by receivers per delivered data packet; emits a [Flow_rx]
    trace event (Trace severity) from which per-flow goodput series are
    reconstructed. *)
