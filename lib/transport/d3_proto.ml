module Sim = Pdq_engine.Sim
module Packet = Pdq_net.Packet
module Link = Pdq_net.Link
module Topology = Pdq_net.Topology

let k_tick = Sim.Kind.register "d3.tick"

let min_rate = 1e5

type port = {
  link : Link.t;
  mutable fs : float;           (* fair share from last interval *)
  mutable avail : float;        (* unreserved capacity this interval *)
  mutable demand_acc : float;   (* sum of desired rates this interval *)
  mutable n_acc : int;          (* flows that requested this interval *)
  granted : (int, float) Hashtbl.t; (* flow -> grant this interval *)
  mutable rtt_avg : float;
}

type t = { ctx : Context.t; ports : port array; inner : Rate_flow.t }

let fair_share t ~link = t.ports.(link).fs
let flow_count t ~link = Hashtbl.length t.ports.(link).granted

(* Interval rollover: compute next interval's fair share from this
   interval's demand, reset reservations. *)
let rollover p =
  let q_bits = Pdq_engine.Units.bytes_to_bits (Link.queue_bytes p.link) in
  let c_eff =
    max 0. (Link.rate p.link -. (q_bits /. (2. *. max p.rtt_avg 1e-9)))
  in
  (* Non-negative fair share (the fix described in §5.1). *)
  p.fs <- max 0. ((c_eff -. p.demand_acc) /. float_of_int (max 1 p.n_acc));
  if p.n_acc = 0 then p.fs <- c_eff;
  p.avail <- c_eff;
  p.demand_acc <- 0.;
  p.n_acc <- 0;
  Hashtbl.reset p.granted

let on_forward t ~link (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Payloads.D3_ctrl (ctrl, _) -> (
      match pkt.Packet.kind with
      | Packet.Term -> Hashtbl.remove t.ports.(link).granted pkt.Packet.flow
      | Packet.Syn | Packet.Data | Packet.Probe -> (
          let p = t.ports.(link) in
          if ctrl.Payloads.d3_rtt > 0. then
            p.rtt_avg <- (0.875 *. p.rtt_avg) +. (0.125 *. ctrl.Payloads.d3_rtt);
          match Hashtbl.find_opt p.granted pkt.Packet.flow with
          | Some g ->
              ctrl.Payloads.d3_allocated <- min ctrl.Payloads.d3_allocated g
          | None ->
              (* First request of the interval: reserve greedily, in
                 arrival order (first-come first-reserve). *)
              p.demand_acc <- p.demand_acc +. ctrl.Payloads.d3_desired;
              p.n_acc <- p.n_acc + 1;
              let g = max 0. (min (ctrl.Payloads.d3_desired +. p.fs) p.avail) in
              p.avail <- p.avail -. g;
              Hashtbl.replace p.granted pkt.Packet.flow g;
              ctrl.Payloads.d3_allocated <- min ctrl.Payloads.d3_allocated g)
      | Packet.Syn_ack | Packet.Ack -> ())
  | _ -> ()

(* Sender-side desired rate: remaining size over time to deadline. *)
let desired_rate s ~now =
  match Rate_flow.sender_deadline s with
  | None -> 0.
  | Some d ->
      let remaining_bits =
        Pdq_engine.Units.bytes_to_bits (Rate_flow.sender_remaining s)
      in
      if d <= now then infinity else remaining_bits /. (d -. now)

let ops ctx nic_rate : Rate_flow.ops =
  {
    Rate_flow.extra_header = Payloads.d3_header_bytes;
    min_rate;
    fwd_payload =
      (fun s _kind ->
        let now = Context.now ctx in
        let desired = desired_rate s ~now in
        Payloads.D3_ctrl
          ( {
              Payloads.d3_desired = (if desired = infinity then nic_rate else desired);
              d3_allocated = infinity;
              d3_rtt = Rate_flow.sender_rtt s;
            },
            { Payloads.cum_ack = 0; echo_ts = now } ));
    ack_payload =
      (fun ~cum_ack ~echo_ts pkt ->
        match pkt.Packet.payload with
        | Payloads.D3_ctrl (ctrl, _) ->
            Payloads.D3_ctrl
              ( {
                  Payloads.d3_desired = ctrl.Payloads.d3_desired;
                  d3_allocated = ctrl.Payloads.d3_allocated;
                  d3_rtt = 0.;
                },
                { Payloads.cum_ack; echo_ts } )
        | _ ->
            Payloads.D3_ctrl
              ( { Payloads.d3_desired = 0.; d3_allocated = min_rate; d3_rtt = 0. },
                { Payloads.cum_ack; echo_ts } ));
    rate_of_ack =
      (fun s pkt ->
        match pkt.Packet.payload with
        | Payloads.D3_ctrl (ctrl, _) ->
            Debug.tracef "%.6f d3-ack flow=%d desired=%.3e alloc=%.3e"
              (Context.now ctx)
              (Rate_flow.sender_flow s).Context.id ctrl.Payloads.d3_desired
              ctrl.Payloads.d3_allocated;
            Some ctrl.Payloads.d3_allocated
        | _ -> None);
    (* Quenching: kill a deadline flow once the deadline passed or the
       required rate exceeds what the NIC could ever deliver. *)
    quench =
      (fun s ~now ->
        match Rate_flow.sender_deadline s with
        | None -> false
        | Some d ->
            Rate_flow.sender_remaining s > 0
            && (now >= d || desired_rate s ~now > nic_rate));
  }

let install ~ctx ~until =
  let topo = Context.topo ctx in
  let ports =
    Array.init (Topology.link_count topo) (fun i ->
        let link = Topology.link topo i in
        {
          link;
          fs = Link.rate link;
          avail = Link.rate link;
          demand_acc = 0.;
          n_acc = 0;
          granted = Hashtbl.create 16;
          rtt_avg = Context.init_rtt ctx;
        })
  in
  (* NIC rate: hosts are homogeneous in our topologies; use the first
     host link's rate as the quench bound. *)
  let nic_rate =
    match Topology.hosts topo with
    | [||] -> Pdq_engine.Units.gbps 1.
    | hs -> (
        match Topology.links_from topo hs.(0) with
        | (_, l) :: _ -> Link.rate (Topology.link topo l)
        | [] -> Pdq_engine.Units.gbps 1.)
  in
  let inner = Rate_flow.install ~ctx ~ops:(ops ctx nic_rate) in
  let t = { ctx; ports; inner } in
  (* Crash-reboot: reservations and estimators are soft state; the
     next allocation interval rebuilds them from live requests. *)
  Context.on_switch_reboot ctx (fun node ->
      Array.iter
        (fun p ->
          if Link.src p.link = node then begin
            Hashtbl.reset p.granted;
            p.fs <- Link.rate p.link;
            p.avail <- Link.rate p.link;
            p.demand_acc <- 0.;
            p.n_acc <- 0;
            p.rtt_avg <- Context.init_rtt ctx
          end)
        ports);
  Context.set_hooks ctx
    ~on_forward:(fun ~link pkt -> on_forward t ~link pkt)
    ~on_reverse:(fun ~fwd_link:_ _ -> ())
    ~deliver:(fun ~node pkt -> Rate_flow.deliver inner ~node pkt);
  let sim = Context.sim ctx in
  Array.iter
    (fun p ->
      let rec tick () =
        if Sim.now sim <= until then begin
          rollover p;
          ignore (Sim.schedule_k sim k_tick ~delay:(max p.rtt_avg 5e-5) tick)
        end
      in
      ignore (Sim.schedule_k sim k_tick ~delay:0. tick))
    ports;
  t

let start_flow t flow = Rate_flow.start_flow t.inner flow
