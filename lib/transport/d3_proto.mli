(** Packet-level D3 [19] re-implemented as described in §5.1 of the
    PDQ paper: greedy first-come-first-reserve rate allocation.

    Per output link and per control interval (≈ one average RTT), a
    switch grants each flow's first request [desired + fs] from the
    remaining capacity, in arrival order; [fs] is the fair share of
    last interval's leftover, clamped non-negative (the paper's fix —
    the original algorithm could return reserved bandwidth when demand
    exceeded capacity). Deadline flows request
    [remaining size / time-to-deadline]; best-effort flows request 0
    and live off the fair share. Senders quench flows whose deadline
    became impossible. *)

type t

val install : ctx:Context.t -> until:float -> t
val start_flow : t -> Context.flow -> unit

val fair_share : t -> link:int -> float
(** Current fair-share component on a directed link (for tests). *)

val flow_count : t -> link:int -> int
(** Flows granted a reservation on a directed link in the current
    allocation interval (feeds the telemetry metrics prober). *)
