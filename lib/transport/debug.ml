(* Shared debug switch for the transport protocols. Seeded from the
   PDQ_DEBUG environment variable; tests and drivers can flip it at
   runtime so quiet runs stay quiet. *)

let enabled = ref (Sys.getenv_opt "PDQ_DEBUG" <> None)
let on () = !enabled
let set v = enabled := v
