(* Shared debug switch for the transport protocols, backed by the
   telemetry console logger. Seeded from the PDQ_DEBUG environment
   variable: unset keeps runs quiet, any value enables Debug-level
   logging (so PDQ_DEBUG=1 keeps its historical meaning), and
   PDQ_DEBUG=trace raises verbosity to per-packet Trace logging.
   Tests and drivers can flip the level at runtime. *)

module Console = Pdq_telemetry.Console
module Trace = Pdq_telemetry.Trace

let () =
  match Sys.getenv_opt "PDQ_DEBUG" with
  | None -> ()
  | Some "trace" -> Console.set_threshold (Some Trace.Trace)
  | Some _ -> Console.set_threshold (Some Trace.Debug)

let on () = Console.enabled Trace.Debug
let trace_on () = Console.enabled Trace.Trace

let set v =
  Console.set_threshold (if v then Some Trace.Debug else None)

let logf sev fmt = Console.logf sev fmt
let debugf fmt = Console.logf Trace.Debug fmt
let tracef fmt = Console.logf Trace.Trace fmt
