(** Runtime debug switch gating the transports' [Printf.eprintf]
    tracing (probe/ack/termination logs). Initialized from the
    [PDQ_DEBUG] environment variable. *)

val on : unit -> bool
val set : bool -> unit
