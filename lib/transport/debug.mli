(** Runtime debug logging for the transports (probe/ack/termination
    logs), routed through {!Pdq_telemetry.Console}.

    Initialized from the [PDQ_DEBUG] environment variable: unset —
    silent; any value (e.g. [PDQ_DEBUG=1], the historical switch) —
    Debug-level logs; [PDQ_DEBUG=trace] — per-packet Trace-level logs
    as well. *)

val on : unit -> bool
(** Debug-level logging is enabled. *)

val trace_on : unit -> bool
(** Trace-level (per-packet) logging is enabled. *)

val set : bool -> unit
(** Enable ([true] — Debug level) or silence ([false]) logging at
    runtime, overriding the environment. *)

val logf :
  Pdq_telemetry.Trace.severity ->
  ('a, Format.formatter, unit) format ->
  'a
(** Log a line at the given severity; formatting is skipped entirely
    when that severity is disabled. *)

val debugf : ('a, Format.formatter, unit) format -> 'a
(** [logf Debug]. *)

val tracef : ('a, Format.formatter, unit) format -> 'a
(** [logf Trace]. *)
