module Sim = Pdq_engine.Sim
module Units = Pdq_engine.Units

let k_rebalance = Sim.Kind.register "mpdq.rebalance"

type group = {
  flow : Context.flow;
  mutable streams : Pdq_proto.stream array;
  mutable total_rx : int;
  mutable closed : bool;
  nic_rate : float;
}

type t = {
  ctx : Context.t;
  pdq : Pdq_proto.t;
  subflows : int;
  rebalance_period : float;
  paths : (src:int -> dst:int -> int array list) option;
}

let pdq t = t.pdq

let install ~config ~ctx ~until ~subflows ?(rebalance_rtts = 4.) ?paths () =
  if subflows < 1 then invalid_arg "Mpdq_proto.install: subflows < 1";
  {
    ctx;
    pdq = Pdq_proto.install ~config ~ctx ~until ();
    subflows;
    rebalance_period = rebalance_rtts *. Context.init_rtt ctx;
    paths;
  }

let group_terminate t g =
  if not g.closed then begin
    g.closed <- true;
    Array.iter
      (fun s ->
        if (not (Pdq_proto.stream_is_done s)) && not (Pdq_proto.stream_terminated s)
        then Pdq_proto.stream_terminate s)
      g.streams;
    g.flow.Context.terminated <- true;
    Context.flow_closed t.ctx g.flow
  end

let live s =
  (not (Pdq_proto.stream_is_done s)) && not (Pdq_proto.stream_terminated s)

(* Shift unsent load from paused subflows onto the sending subflow with
   the minimal remaining assignment (§6). The target is chosen before
   anything is shrunk so load can never be stranded. *)
let rebalance g =
  let target = ref None in
  Array.iter
    (fun s ->
      if live s && not (Pdq_proto.stream_is_paused s) then begin
        let rem = Pdq_proto.stream_remaining_unsent s in
        match !target with
        | None -> target := Some (s, rem)
        | Some (_, brem) -> if rem < brem then target := Some (s, rem)
      end)
    g.streams;
  match !target with
  | None -> () (* nobody is sending: leave assignments unchanged *)
  | Some (tgt, _) ->
      let moved = ref 0 in
      Array.iter
        (fun s ->
          if s != tgt && live s && Pdq_proto.stream_is_paused s then begin
            let m = Pdq_proto.stream_remaining_unsent s in
            if m > 0 then begin
              Pdq_proto.stream_resize s (Pdq_proto.stream_assigned s - m);
              moved := !moved + m
            end
          end)
        g.streams;
      if !moved > 0 then
        Pdq_proto.stream_resize tgt (Pdq_proto.stream_assigned tgt + !moved)

(* Flow-level Early Termination: subflows carry no deadline of their
   own; the coordinator kills the whole flow when the deadline passed
   or the remaining bytes cannot make it even at the NIC rate. *)
let group_infeasible g ~now =
  match g.flow.Context.deadline_abs with
  | None -> false
  | Some d ->
      let remaining =
        Units.bytes_to_bits (g.flow.Context.spec.Context.size - g.total_rx)
      in
      g.total_rx < g.flow.Context.spec.Context.size
      && (now > d || now +. (remaining /. g.nic_rate) > d)

let start_flow t (flow : Context.flow) =
  let spec = flow.Context.spec in
  let k = t.subflows in
  let base = spec.Context.size / k in
  let sizes =
    Array.init k (fun j -> if j = 0 then spec.Context.size - (base * (k - 1)) else base)
  in
  let topo = Context.topo t.ctx in
  let nic_rate =
    List.fold_left
      (fun acc (_, l) -> max acc (Pdq_net.Link.rate (Pdq_net.Topology.link topo l)))
      1e9
      (Pdq_net.Topology.links_from topo spec.Context.src)
  in
  let g = { flow; streams = [||]; total_rx = 0; closed = false; nic_rate } in
  let explicit_paths =
    Option.map (fun f -> f ~src:spec.Context.src ~dst:spec.Context.dst) t.paths
  in
  g.streams <-
    Array.init k (fun j ->
        let sid = Context.fresh_subflow_id t.ctx in
        (match explicit_paths with
        | Some (_ :: _ as ps) ->
            (* Source-routed multipath (e.g. BCube address routing):
               stripe subflows round-robin over the parallel paths. *)
            Context.register_route_nodes t.ctx ~id:sid
              (List.nth ps (j mod List.length ps))
        | Some [] | None ->
            ignore
              (Context.register_route t.ctx ~id:sid ~src:spec.Context.src
                 ~dst:spec.Context.dst
                 ~choice:((flow.Context.id * 8191) + (j * 131) + j)));
        Pdq_proto.start_stream ~rx_capacity:spec.Context.size t.pdq ~sid
          ~src:spec.Context.src ~dst:spec.Context.dst ~size:sizes.(j)
          ~deadline_abs:None (* ET is flow-level, handled below *)
          ~start:spec.Context.start
          ~on_rx:(fun ~bytes ->
            g.total_rx <- g.total_rx + bytes;
            if g.total_rx >= spec.Context.size then begin
              Context.complete t.ctx g.flow;
              g.closed <- true
            end)
          ~on_event:(fun () -> ()));
  let sim = Context.sim t.ctx in
  let rec loop () =
    if (not g.closed) && g.flow.Context.completed_at = None then begin
      if group_infeasible g ~now:(Sim.now sim) then group_terminate t g
      else begin
        rebalance g;
        ignore (Sim.schedule_k sim k_rebalance ~delay:t.rebalance_period loop)
      end
    end
  in
  ignore
    (Sim.schedule_at_k sim k_rebalance
       ~time:(max (Sim.now sim) (spec.Context.start +. t.rebalance_period))
       loop)
