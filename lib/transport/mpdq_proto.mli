(** Multipath PDQ (§6): each flow is striped over [subflows] PDQ
    subflows pinned to (potentially) different ECMP paths; the sender
    periodically shifts unsent load from paused subflows to the sending
    subflow with the smallest remaining load; the receiver completes
    the flow when the union of subflow bytes covers the flow size
    (single shared resequencing buffer, as in MPTCP). Switches need
    nothing beyond flow-level ECMP. *)

type t

val install :
  config:Pdq_core.Config.t ->
  ctx:Context.t ->
  until:float ->
  subflows:int ->
  ?rebalance_rtts:float ->
  ?paths:(src:int -> dst:int -> int array list) ->
  unit ->
  t
(** [rebalance_rtts] (default 4) is the load-shift period in units of
    the initial RTT estimate. [paths] supplies explicit parallel node
    paths per host pair (BCube address-based routing); without it,
    subflows rely on ECMP hashing over shortest paths. *)

val start_flow : t -> Context.flow -> unit

val pdq : t -> Pdq_proto.t
(** The underlying PDQ transport carrying the subflows (port
    inspection, telemetry probes). *)
