module Sim = Pdq_engine.Sim
module Units = Pdq_engine.Units
module Packet = Pdq_net.Packet
module Link = Pdq_net.Link
module Topology = Pdq_net.Topology
module Header = Pdq_core.Header
module Sender = Pdq_core.Sender
module Switch_port = Pdq_core.Switch_port

type t = {
  ctx : Context.t;
  cfg : Pdq_core.Config.t;
  size_info : Sender.size_info;
  ports : Switch_port.t array; (* per directed link *)
  streams : (int, stream) Hashtbl.t;
}

and stream = {
  proto : t;
  sid : int;
  src : int;
  dst : int;
  mutable size : int;
  deadline_abs : float option;
  core : Sender.t;
  parent : Context.flow option;
  on_event : unit -> unit;
  on_rx : bytes:int -> unit;
  (* Sender side. *)
  mutable next_seq : int;
  mutable sent_hi : int; (* high-water mark of next_seq (go-back-N rewinds) *)
  mutable acked : int;
  mutable dup_acks : int;
  mutable syn_acked : bool;
  mutable last_syn : float;
  mutable syn_wait : float; (* current (backed-off) SYN retransmit delay *)
  mutable syn_retries : int;
  mutable last_ack : float; (* last time any ACK arrived (liveness) *)
  mutable probes_unanswered : int;
  mutable last_progress : float;
  mutable last_tx : float; (* departure time of the previous data packet *)
  mutable send_ev : Sim.handle option;
  mutable probe_ev : Sim.handle option;
  mutable closed : bool;
  mutable terminated : bool;
  (* Allocated once per stream so the pacing, probing and watchdog
     loops reschedule without building a closure per event. *)
  mutable send_fn : unit -> unit;
  mutable probe_fn : unit -> unit;
  mutable watchdog_fn : unit -> unit;
  (* Receiver side. *)
  rx : Rx_buffer.t;
  rx_max_rate : float;
}

let max_payload = Packet.max_payload ~scheduling_header:Payloads.pdq_header_bytes

let noop () = ()
let k_send = Sim.Kind.register "pdq.send"
let k_probe = Sim.Kind.register "pdq.probe"
let k_watchdog = Sim.Kind.register "pdq.watchdog"
let k_rate_ctl = Sim.Kind.register "pdq.rate_ctl"
let k_launch = Sim.Kind.register "pdq.launch"

(* Watchdog hardening: bounded, backed-off retransmission so a flow on
   a dead path reaches a terminal [Aborted] outcome instead of
   retrying forever. The jitter desynchronizes retry storms after a
   shared failure; it is drawn from the run's RNG only on the retry
   path, so fault-free runs consume no extra randomness and stay
   bit-for-bit reproducible. *)
let max_syn_retries = 8
let probe_backoff_threshold = 4
let backoff_cap = 6 (* exponent cap: 64x *)
let abort_after = 1.0 (* s without any ACK before declaring the path dead *)

let jittered rng d = d *. (0.75 +. (0.5 *. Pdq_engine.Rng.float rng))

let config t = t.cfg
let port t link = t.ports.(link)

let port_flow_counts t ~link =
  let port = t.ports.(link) in
  let stored = Pdq_core.Flow_list.length (Switch_port.flow_list port) in
  let active = Switch_port.kappa port in
  (active, stored - active)

let cancel_opt s ev =
  match ev with
  | Some h ->
      Sim.cancel (Context.sim s.proto.ctx) h;
      None
  | None -> None

let now s = Context.now s.proto.ctx
let rto s = max (3. *. Sender.rtt s.core) 1e-3

(* Highest line rate among a host's ports: the rate the host NIC can
   source or sink. *)
let nic_rate topo node =
  List.fold_left
    (fun acc (_, link_id) -> max acc (Link.rate (Topology.link topo link_id)))
    0.
    (Topology.links_from topo node)

let make_pkt s ~kind ?(payload_bytes = 0) ?(seq = 0) ~hdr ~cum_ack () =
  Packet.make ~flow:s.sid ~src:s.src ~dst:s.dst ~kind ~payload_bytes ~seq
    ~extra_header:Payloads.pdq_header_bytes
    ~payload:(Payloads.Pdq_sched (hdr, { Payloads.cum_ack; echo_ts = now s }))
    ~now:(now s) ()

let send_syn s =
  s.last_syn <- now s;
  let hdr = Sender.make_header s.core ~t:(now s) in
  Context.transmit s.proto.ctx ~from:s.src
    (make_pkt s ~kind:Packet.Syn ~hdr ~cum_ack:0 ())

let send_term s =
  let hdr = Sender.make_header s.core ~t:(now s) in
  Context.transmit s.proto.ctx ~from:s.src
    (make_pkt s ~kind:Packet.Term ~hdr ~cum_ack:0 ())

let close_sender s =
  s.closed <- true;
  s.send_ev <- cancel_opt s s.send_ev;
  s.probe_ev <- cancel_opt s s.probe_ev

let finish_sender s =
  if not s.closed then begin
    close_sender s;
    send_term s;
    s.on_event ()
  end

(* Terminal watchdog outcome: bounded retries exhausted or the path
   stayed dead past [abort_after]. Marks the stream terminated (so
   M-PDQ coordinators treat it as closed, not runnable), best-effort
   TERMs the switches to free state, and records the per-cause abort
   on the parent flow. *)
let abort s ~cause =
  if not s.closed then begin
    Debug.debugf "%.6f ABORT flow=%d cause=%s acked=%d/%d" (now s) s.sid cause
      s.acked s.size;
    close_sender s;
    s.terminated <- true;
    send_term s;
    (match s.parent with
    | Some flow -> Context.abort s.proto.ctx flow ~cause
    | None ->
        Context.record_fault s.proto.ctx ("abort.subflow." ^ cause));
    s.on_event ()
  end

let terminate s =
  if not s.closed then begin
    if Debug.on () then
      Debug.debugf
        "%.6f TERMINATE flow=%d remaining=%d acked=%d rate=%g ttx=%g rtt=%g \
         deadline=%s paused_by=%s"
        (now s) s.sid
        (Sender.remaining_bytes s.core)
        s.acked (Sender.rate s.core)
        (Sender.expected_tx_time s.core)
        (Sender.rtt s.core)
        (match s.deadline_abs with
        | Some d -> Printf.sprintf "%.6f" d
        | None -> "-")
        (match Sender.paused_by s.core with
        | Some i -> string_of_int i
        | None -> "-");
    close_sender s;
    s.terminated <- true;
    send_term s;
    (match s.parent with
    | Some flow ->
        flow.Context.terminated <- true;
        Context.flow_closed s.proto.ctx flow
    | None -> ());
    s.on_event ()
  end

let et_enabled s =
  s.proto.cfg.Pdq_core.Config.features.Pdq_core.Config.early_termination

(* Pacing interval at the current granted rate, recomputed whenever the
   rate changes. Bounded so that a transiently tiny grant cannot park
   the sender for many milliseconds: if even the bounded interval
   overshoots the granted rate, the resulting queue makes the rate
   controller pause the flow properly. *)
let pacing_interval s ~wire_bytes =
  let rate = Sender.rate s.core in
  if rate <= 0. then infinity
  else
    min
      (Units.tx_time ~bytes:wire_bytes ~rate)
      (max (4. *. Sender.rtt s.core) 2e-3)

(* Paced data transmission: one packet per event, the next scheduled a
   serialization interval (at the granted rate) later. *)
let send_data s () =
  s.send_ev <- None;
  if (not s.closed) && Sender.rate s.core > 0. && s.next_seq < s.size then begin
    let payload = min max_payload (s.size - s.next_seq) in
    let hdr = Sender.make_header s.core ~t:(now s) in
    let pkt =
      make_pkt s ~kind:Packet.Data ~payload_bytes:payload ~seq:s.next_seq ~hdr
        ~cum_ack:0 ()
    in
    Context.transmit s.proto.ctx ~from:s.src pkt;
    s.next_seq <- s.next_seq + payload;
    if s.next_seq > s.sent_hi then s.sent_hi <- s.next_seq;
    s.last_tx <- now s;
    if s.next_seq < s.size then begin
      let interval = pacing_interval s ~wire_bytes:pkt.Packet.wire_bytes in
      s.send_ev <-
        Some
          (Sim.schedule_k (Context.sim s.proto.ctx) k_send
             ~delay:interval s.send_fn)
    end
  end

let ensure_sending s =
  if
    (not s.closed)
    && s.send_ev = None
    && Sender.rate s.core > 0.
    && s.next_seq < s.size
  then begin
    (* Next departure honours the pacing of the previous packet at the
       *current* rate — a rate increase moves it earlier. *)
    let interval =
      pacing_interval s ~wire_bytes:(max_payload + Packet.header_bytes)
    in
    let delay = max 0. (s.last_tx +. interval -. now s) in
    s.send_ev <-
      Some
        (Sim.schedule_k (Context.sim s.proto.ctx) k_send ~delay s.send_fn)
  end

let probe_loop s () =
  s.probe_ev <- None;
  if (not s.closed) && Sender.is_paused s.core && s.syn_acked then begin
    Debug.debugf "%.6f probe flow=%d ip=%g rtt=%g" (now s) s.sid
      (Sender.inter_probe_interval s.core)
      (Sender.rtt s.core);
    let hdr = Sender.make_header s.core ~t:(now s) in
    Context.transmit s.proto.ctx ~from:s.src
      (make_pkt s ~kind:Packet.Probe ~hdr ~cum_ack:0 ());
    s.probes_unanswered <- s.probes_unanswered + 1;
    let base = max (Sender.inter_probe_interval s.core) 1e-5 in
    (* A healthy paused flow sees each probe answered within ~1 RTT, so
       more than a few unanswered probes means the path is suspect:
       back the probing off exponentially (with jitter) instead of
       hammering a dead or rebooting switch. *)
    let delay =
      if s.probes_unanswered <= probe_backoff_threshold then base
      else
        let expo = min (s.probes_unanswered - probe_backoff_threshold) backoff_cap in
        jittered (Context.rng s.proto.ctx) (base *. float_of_int (1 lsl expo))
    in
    s.probe_ev <-
      Some
        (Sim.schedule_k (Context.sim s.proto.ctx) k_probe ~delay s.probe_fn)
  end

let ensure_probing s =
  if (not s.closed) && s.probe_ev = None && Sender.is_paused s.core && s.syn_acked
  then begin
    let delay = max (Sender.inter_probe_interval s.core) 1e-5 in
    s.probe_ev <-
      Some
        (Sim.schedule_k (Context.sim s.proto.ctx) k_probe ~delay s.probe_fn)
  end

let adjust_loops s =
  if Sender.is_paused s.core then begin
    s.send_ev <- cancel_opt s s.send_ev;
    ensure_probing s
  end
  else begin
    s.probe_ev <- cancel_opt s s.probe_ev;
    (* Re-pace a pending departure at the fresh rate. *)
    s.send_ev <- cancel_opt s s.send_ev;
    ensure_sending s
  end

(* Watchdog: SYN retransmission (bounded, with exponential backoff and
   jitter once retries mount), go-back-N on stalled cumulative acks,
   liveness abort when no ACK of any kind arrives for [abort_after],
   and Early Termination checks while paused. *)
let watchdog s () =
  if not s.closed then begin
    let t = now s in
    if et_enabled s && Sender.should_terminate s.core ~now:t then terminate s
    else begin
      if (not s.syn_acked) && t -. s.last_syn > s.syn_wait then begin
        if s.syn_retries >= max_syn_retries then abort s ~cause:"syn"
        else begin
          s.syn_retries <- s.syn_retries + 1;
          let expo = min s.syn_retries backoff_cap in
          s.syn_wait <-
            jittered (Context.rng s.proto.ctx)
              (rto s *. float_of_int (1 lsl expo));
          send_syn s
        end
      end
      else if s.syn_acked && s.acked < s.size && t -. s.last_ack > abort_after
      then
        (* Even a legitimately paused flow hears probe ACKs every few
           RTTs; total ACK silence this long means the path (or our
           switch state) is gone for good. *)
        abort s ~cause:"stall"
      else if
        s.syn_acked && s.acked < s.size
        && t -. s.last_progress > rto s
        && Sender.rate s.core > 0.
      then begin
        (* Go-back-N: resume from the cumulative ack point. *)
        (let trace = Context.trace s.proto.ctx in
         if Pdq_telemetry.Trace.active trace && s.next_seq > s.acked then
           Pdq_telemetry.Trace.(
             emit trace (Flow_retransmit { flow = s.sid; kind = "watchdog" })));
        s.next_seq <- s.acked;
        s.last_progress <- t;
        ensure_sending s
      end;
      if not s.closed then begin
        let delay = max (Sender.rtt s.core) 5e-4 in
        ignore
          (Sim.schedule_k (Context.sim s.proto.ctx) k_watchdog ~delay
             s.watchdog_fn)
      end
    end
  end

let on_ack_packet s (hdr : Header.t) (ack : Payloads.ack_info) =
  Debug.tracef "%.6f ack flow=%d rate=%g pause=%s cum=%d"
    (Context.now s.proto.ctx) s.sid hdr.Header.rate
    (match hdr.Header.pause_by with None -> "-" | Some i -> string_of_int i)
    ack.Payloads.cum_ack;
  if not s.closed then begin
    if not s.syn_acked then begin
      s.syn_acked <- true;
      let trace = Context.trace s.proto.ctx in
      if Pdq_telemetry.Trace.active trace then
        Pdq_telemetry.Trace.(emit trace (Flow_established { flow = s.sid }))
    end;
    let t = now s in
    s.last_ack <- t;
    s.probes_unanswered <- 0;
    let rtt_sample = t -. ack.Payloads.echo_ts in
    Sender.on_ack s.core hdr ~acked_bytes:ack.Payloads.cum_ack
      ~rtt_sample:(Some rtt_sample) ~now:t;
    if ack.Payloads.cum_ack > s.acked then begin
      s.acked <- ack.Payloads.cum_ack;
      s.dup_acks <- 0;
      s.last_progress <- t
    end
    else if
      ack.Payloads.cum_ack = s.acked
      && s.acked < s.next_seq
      && not (Sender.is_paused s.core)
    then begin
      (* Selective repair: a hole at [acked] with later data arriving —
         retransmit just the missing segment instead of waiting for the
         RTO-driven go-back-N. *)
      s.dup_acks <- s.dup_acks + 1;
      if s.dup_acks = 3 then begin
        s.dup_acks <- 0;
        (let trace = Context.trace s.proto.ctx in
         if Pdq_telemetry.Trace.active trace then
           Pdq_telemetry.Trace.(
             emit trace (Flow_retransmit { flow = s.sid; kind = "fast" })));
        let payload = min max_payload (s.size - s.acked) in
        let hdr = Sender.make_header s.core ~t in
        Context.transmit s.proto.ctx ~from:s.src
          (make_pkt s ~kind:Packet.Data ~payload_bytes:payload ~seq:s.acked
             ~hdr ~cum_ack:0 ())
      end
    end;
    if s.acked >= s.size then finish_sender s
    else if et_enabled s && Sender.should_terminate s.core ~now:t then terminate s
    else adjust_loops s;
    s.on_event ()
  end

(* Receiver side: echo the scheduling header into an ACK, capped at the
   receiver NIC rate (§3.2), and carry the cumulative ack. *)
let reply s (pkt : Packet.t) ~kind =
  match pkt.Packet.payload with
  | Payloads.Pdq_sched (hdr, _) ->
      let echo = Header.copy hdr in
      echo.Header.rate <- min echo.Header.rate s.rx_max_rate;
      let ack =
        Packet.make ~flow:s.sid ~src:s.dst ~dst:s.src ~kind
          ~extra_header:Payloads.pdq_header_bytes
          ~payload:
            (Payloads.Pdq_sched
               ( echo,
                 {
                   Payloads.cum_ack = Rx_buffer.cumulative_ack s.rx;
                   echo_ts = pkt.Packet.sent_at;
                 } ))
          ~now:(now s) ()
      in
      Context.transmit s.proto.ctx ~from:s.dst ack
  | _ -> ()

let receiver_handle s (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Syn -> reply s pkt ~kind:Packet.Syn_ack
  | Packet.Probe -> reply s pkt ~kind:Packet.Ack
  | Packet.Data ->
      let before = Rx_buffer.received_bytes s.rx in
      Rx_buffer.on_data s.rx ~seq:pkt.Packet.seq ~bytes:pkt.Packet.payload_bytes;
      let delivered = Rx_buffer.received_bytes s.rx - before in
      if delivered > 0 then begin
        Context.record_rx s.proto.ctx ~flow_id:s.sid ~bytes:delivered;
        s.on_rx ~bytes:delivered
      end;
      (match s.parent with
      | Some flow when Rx_buffer.received_bytes s.rx >= flow.Context.spec.Context.size
        ->
          Context.complete s.proto.ctx flow
      | Some _ | None -> ());
      reply s pkt ~kind:Packet.Ack
  | Packet.Term -> ()
  | Packet.Syn_ack | Packet.Ack -> ()

let deliver t ~node (pkt : Packet.t) =
  match Hashtbl.find_opt t.streams pkt.Packet.flow with
  | None -> ()
  | Some s -> (
      match pkt.Packet.kind with
      | Packet.Syn | Packet.Data | Packet.Probe | Packet.Term ->
          if node = s.dst then receiver_handle s pkt
      | Packet.Syn_ack | Packet.Ack -> (
          if node = s.src then
            match pkt.Packet.payload with
            | Payloads.Pdq_sched (hdr, ack) -> on_ack_packet s hdr ack
            | _ -> ()))

let on_forward t ~link (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Payloads.Pdq_sched (hdr, _) -> (
      let port = t.ports.(link) in
      let tnow = Context.now t.ctx in
      match pkt.Packet.kind with
      | Packet.Term -> Switch_port.remove_flow port pkt.Packet.flow ~now:tnow
      | Packet.Syn | Packet.Data | Packet.Probe ->
          Switch_port.process_forward port hdr ~flow_id:pkt.Packet.flow ~now:tnow
      | Packet.Syn_ack | Packet.Ack -> ())
  | _ -> ()

let on_reverse t ~fwd_link (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Payloads.Pdq_sched (hdr, _) ->
      Switch_port.process_reverse t.ports.(fwd_link) hdr ~flow_id:pkt.Packet.flow
        ~now:(Context.now t.ctx)
  | _ -> ()

let install ?(size_info = Sender.Known) ~config ~ctx ~until () =
  let topo = Context.topo ctx in
  let ports =
    Array.init (Topology.link_count topo) (fun i ->
        let link = Topology.link topo i in
        Switch_port.create ~trace:(Context.trace ctx) ~config
          ~switch_id:(Link.src link) ~link_rate:(Link.rate link)
          ~init_rtt:(Context.init_rtt ctx) ())
  in
  let t = { ctx; cfg = config; size_info; ports; streams = Hashtbl.create 64 } in
  (* A crash-rebooted switch loses all per-flow soft state; it is
     rebuilt on the fly from the scheduling headers of packets flowing
     through (§3.4 of the paper — the state is deliberately soft). *)
  Context.on_switch_reboot ctx (fun node ->
      Array.iteri
        (fun i port ->
          if Link.src (Topology.link topo i) = node then Switch_port.flush port)
        ports);
  Context.set_hooks ctx
    ~on_forward:(fun ~link pkt -> on_forward t ~link pkt)
    ~on_reverse:(fun ~fwd_link pkt -> on_reverse t ~fwd_link pkt)
    ~deliver:(fun ~node pkt -> deliver t ~node pkt);
  (* Per-port rate-controller loops (§3.3.3): update C every 2 average
     RTTs from the instantaneous queue. *)
  let sim = Context.sim ctx in
  Array.iteri
    (fun i port ->
      let link = Topology.link topo i in
      let rec tick () =
        if Sim.now sim <= until then begin
          Switch_port.update_rate_controller port
            ~queue_bytes:(Link.queue_bytes link) ~now:(Sim.now sim);
          let delay = max (Switch_port.rate_update_interval port) 2e-5 in
          ignore (Sim.schedule_k sim k_rate_ctl ~delay tick)
        end
      in
      ignore (Sim.schedule_k sim k_rate_ctl ~delay:0. tick))
    ports;
  t

let launch_stream ?rx_capacity t ~sid ~src ~dst ~size ~deadline_abs ~start ~on_rx
    ~on_event ~parent =
  let topo = Context.topo t.ctx in
  let s =
    {
      proto = t;
      sid;
      src;
      dst;
      size;
      deadline_abs;
      core =
        Sender.create ?deadline:deadline_abs
          ~efficiency:(float_of_int max_payload /. float_of_int Packet.mtu)
          ~size_info:t.size_info ~trace:(Context.trace t.ctx) ~flow_id:sid
          ~size_bytes:size ~max_rate:(nic_rate topo src)
          ~init_rtt:(Context.init_rtt t.ctx) ();
      parent;
      on_event;
      on_rx;
      next_seq = 0;
      sent_hi = 0;
      acked = 0;
      dup_acks = 0;
      syn_acked = false;
      last_syn = 0.;
      syn_wait = infinity; (* set to the live RTO at launch *)
      syn_retries = 0;
      last_ack = start;
      probes_unanswered = 0;
      last_progress = start;
      last_tx = neg_infinity;
      send_ev = None;
      probe_ev = None;
      closed = false;
      terminated = false;
      send_fn = noop;
      probe_fn = noop;
      watchdog_fn = noop;
      rx = Rx_buffer.create ?capacity:rx_capacity ~size ~segment:max_payload ();
      rx_max_rate = nic_rate topo dst;
    }
  in
  Hashtbl.replace t.streams sid s;
  s.send_fn <- send_data s;
  s.probe_fn <- probe_loop s;
  s.watchdog_fn <- watchdog s;
  let sim = Context.sim t.ctx in
  let launch () =
    s.syn_wait <- rto s;
    s.last_ack <- now s;
    (let trace = Context.trace t.ctx in
     if Pdq_telemetry.Trace.active trace then
       Pdq_telemetry.Trace.(emit trace (Flow_started { flow = sid })));
    send_syn s;
    watchdog s ()
  in
  if start <= Sim.now sim then launch ()
  else ignore (Sim.schedule_at_k sim k_launch ~time:start launch);
  s

let start_stream ?rx_capacity t ~sid ~src ~dst ~size ~deadline_abs ~start ~on_rx
    ~on_event =
  launch_stream ?rx_capacity t ~sid ~src ~dst ~size ~deadline_abs ~start ~on_rx
    ~on_event ~parent:None

let start_flow t (flow : Context.flow) =
  let spec = flow.Context.spec in
  ignore
    (launch_stream t ~sid:flow.Context.id ~src:spec.Context.src
       ~dst:spec.Context.dst ~size:spec.Context.size
       ~deadline_abs:flow.Context.deadline_abs ~start:spec.Context.start
       ~on_rx:(fun ~bytes:_ -> ())
       ~on_event:(fun () -> ())
       ~parent:(Some flow))

let stream_remaining_unsent s = max 0 (s.size - s.sent_hi)
let stream_assigned s = s.size
let stream_is_paused s = Sender.is_paused s.core
let stream_is_done s = s.closed && not s.terminated
let stream_terminated s = s.terminated

let stream_resize s size =
  if size < s.sent_hi then
    invalid_arg "Pdq_proto.stream_resize: cannot cut below sent bytes";
  if s.terminated then invalid_arg "Pdq_proto.stream_resize: stream terminated";
  s.size <- size;
  Rx_buffer.set_size s.rx size;
  Sender.set_size s.core ~size ~acked:s.acked;
  if s.acked >= s.size then begin
    if not s.closed then finish_sender s
  end
  else begin
    (* Growing a stream that had just finished re-opens it: the load
       shifted onto it must actually be sent. *)
    if s.closed then begin
      s.closed <- false;
      s.last_progress <- now s;
      watchdog s ()
    end;
    ensure_sending s
  end

let stream_rx_received s = Rx_buffer.received_bytes s.rx

let stream_rate s = Sender.rate s.core
let stream_terminate s = terminate s
