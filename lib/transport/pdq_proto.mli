(** Packet-level PDQ transport (§3): paced senders driven by the
    {!Pdq_core.Sender} state machine, header-echoing receivers, and
    {!Pdq_core.Switch_port} flow/rate controllers on every directed
    link (switch output queues and host NIC shim alike).

    The module is written in terms of {e streams} so that M-PDQ can
    reuse the exact sender/receiver machinery for its subflows; a plain
    PDQ flow is a single stream whose completion closes the flow. *)

type t

val install :
  ?size_info:Pdq_core.Sender.size_info ->
  config:Pdq_core.Config.t ->
  ctx:Context.t ->
  until:float ->
  unit ->
  t
(** Create per-link switch ports, install forwarding hooks and start
    the per-port rate-controller loops (which run until [until]).
    [size_info] (default [Known]) selects the §5.6 size-estimation
    mode for all senders. *)

val config : t -> Pdq_core.Config.t
val port : t -> int -> Pdq_core.Switch_port.t
(** The PDQ port of a directed link (for inspection/tests). *)

val port_flow_counts : t -> link:int -> int * int
(** [(active, paused)] flows stored on a directed link's port: flows
    currently granted rate, and stored-but-paused flows. Feeds the
    telemetry metrics prober. *)

val start_flow : t -> Context.flow -> unit
(** Schedule a registered experiment flow: SYN at its start time,
    completion/termination recorded on the {!Context.t}. *)

(** {2 Stream interface (used by M-PDQ)} *)

type stream

val start_stream :
  ?rx_capacity:int ->
  t ->
  sid:int ->
  src:int ->
  dst:int ->
  size:int ->
  deadline_abs:float option ->
  start:float ->
  on_rx:(bytes:int -> unit) ->
  on_event:(unit -> unit) ->
  stream
(** Launch an independent PDQ stream whose route was already registered
    under [sid]. [on_rx] fires at the receiver per newly delivered
    byte count; [on_event] fires after every sender-side state change
    (ack processed, pause/unpause, termination) so a coordinator can
    rebalance. *)

val stream_remaining_unsent : stream -> int
(** Bytes assigned to the stream but not yet sent (movable load). *)

val stream_assigned : stream -> int
(** Currently assigned stream size in bytes. *)

val stream_is_paused : stream -> bool
val stream_is_done : stream -> bool
val stream_terminated : stream -> bool

val stream_resize : stream -> int -> unit
(** Assign a new size (must not cut below the bytes already sent). *)

val stream_rate : stream -> float
(** Current sending rate, bits/s. *)

val stream_rx_received : stream -> int
(** Distinct bytes delivered at the stream's receiver. *)

val stream_terminate : stream -> unit
(** Early-terminate the stream (sends TERM). *)
