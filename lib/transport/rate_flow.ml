module Sim = Pdq_engine.Sim
module Units = Pdq_engine.Units
module Packet = Pdq_net.Packet

type sender = {
  proto : t;
  flow : Context.flow;
  mutable rate : float;
  mutable rtt : float;
  mutable next_seq : int;
  mutable acked : int;
  mutable syn_acked : bool;
  mutable last_syn : float;
  mutable syn_wait : float; (* current (backed-off) SYN retransmit delay *)
  mutable syn_retries : int;
  mutable last_ack : float; (* last time any ACK arrived (liveness) *)
  mutable last_progress : float;
  mutable last_tx : float;
  mutable send_ev : Sim.handle option;
  mutable closed : bool;
  (* Allocated once per sender so the pacing and watchdog loops
     reschedule without building a closure per event. *)
  mutable send_fn : unit -> unit;
  mutable watchdog_fn : unit -> unit;
  rx : Rx_buffer.t;
}
(* Senders refresh their rate request every RTT with a header-only
   probe whenever data pacing is slower than that (D3/RCP senders
   piggyback requests on data, but a throttled flow would otherwise
   miss every allocation interval and starve). *)

and ops = {
  extra_header : int;
  min_rate : float;
  fwd_payload : sender -> Packet.kind -> Packet.payload;
  ack_payload : cum_ack:int -> echo_ts:float -> Packet.t -> Packet.payload;
  rate_of_ack : sender -> Packet.t -> float option;
  quench : sender -> now:float -> bool;
}

and t = { ctx : Context.t; ops : ops; senders : (int, sender) Hashtbl.t }

let install ~ctx ~ops = { ctx; ops; senders = Hashtbl.create 64 }

let noop () = ()
let k_send = Sim.Kind.register "rate.send"
let k_watchdog = Sim.Kind.register "rate.watchdog"
let k_launch = Sim.Kind.register "rate.launch"

let sender_flow s = s.flow
let sender_rate s = s.rate
let sender_rtt s = s.rtt
let sender_remaining s = max 0 (s.flow.Context.spec.Context.size - s.acked)
let sender_deadline s = s.flow.Context.deadline_abs
let sender_now s = Context.now s.proto.ctx

let now s = Context.now s.proto.ctx
let size s = s.flow.Context.spec.Context.size
let rto s = max (3. *. s.rtt) 1e-3
let max_payload s = Packet.max_payload ~scheduling_header:s.proto.ops.extra_header

let make_pkt s ~kind ?(payload_bytes = 0) ?(seq = 0) () =
  let spec = s.flow.Context.spec in
  Packet.make ~flow:s.flow.Context.id ~src:spec.Context.src ~dst:spec.Context.dst
    ~kind ~payload_bytes ~seq ~extra_header:s.proto.ops.extra_header
    ~payload:(s.proto.ops.fwd_payload s kind)
    ~now:(now s) ()

let transmit s pkt =
  Context.transmit s.proto.ctx ~from:s.flow.Context.spec.Context.src pkt

let send_syn s =
  s.last_syn <- now s;
  transmit s (make_pkt s ~kind:Packet.Syn ())

let send_term s = transmit s (make_pkt s ~kind:Packet.Term ())

let cancel_opt s = function
  | Some h ->
      Sim.cancel (Context.sim s.proto.ctx) h;
      None
  | None -> None

let close_sender s =
  s.closed <- true;
  s.send_ev <- cancel_opt s s.send_ev

let finish_sender s =
  if not s.closed then begin
    close_sender s;
    send_term s
  end

let quench s =
  if not s.closed then begin
    close_sender s;
    send_term s;
    s.flow.Context.terminated <- true;
    Context.flow_closed s.proto.ctx s.flow
  end

(* Hardened-watchdog constants shared with the PDQ transport: bounded
   SYN retries with exponential backoff and jitter, and a liveness
   abort when the path stays silent. Jitter draws from the run RNG
   only on the retry path, so fault-free runs are unperturbed. *)
let max_syn_retries = 8
let backoff_cap = 6
let abort_after = 1.0

let jittered rng d = d *. (0.75 +. (0.5 *. Pdq_engine.Rng.float rng))

let abort s ~cause =
  if not s.closed then begin
    close_sender s;
    send_term s;
    Context.abort s.proto.ctx s.flow ~cause
  end

(* Pacing interval at the current rate, bounded so a transiently tiny
   grant cannot park the sender; the explicit-rate feedback corrects
   any resulting overshoot within an RTT. *)
let pacing_interval s ~wire_bytes =
  if s.rate <= 0. then infinity
  else min (Units.tx_time ~bytes:wire_bytes ~rate:s.rate) (max (4. *. s.rtt) 2e-3)

let send_data s () =
  s.send_ev <- None;
  if (not s.closed) && s.rate > 0. && s.next_seq < size s then begin
    let payload = min (max_payload s) (size s - s.next_seq) in
    let pkt = make_pkt s ~kind:Packet.Data ~payload_bytes:payload ~seq:s.next_seq () in
    transmit s pkt;
    s.next_seq <- s.next_seq + payload;
    s.last_tx <- now s;
    if s.next_seq < size s then begin
      let interval = pacing_interval s ~wire_bytes:pkt.Packet.wire_bytes in
      s.send_ev <-
        Some
          (Sim.schedule_k (Context.sim s.proto.ctx) k_send
             ~delay:interval s.send_fn)
    end
  end

let ensure_sending s =
  if (not s.closed) && s.send_ev = None && s.rate > 0. && s.next_seq < size s then begin
    let interval =
      pacing_interval s ~wire_bytes:(max_payload s + Packet.header_bytes)
    in
    let delay = max 0. (s.last_tx +. interval -. now s) in
    s.send_ev <-
      Some
        (Sim.schedule_k (Context.sim s.proto.ctx) k_send ~delay s.send_fn)
  end

let watchdog s () =
  if not s.closed then begin
    let t = now s in
    if s.proto.ops.quench s ~now:t then quench s
    else begin
      if (not s.syn_acked) && t -. s.last_syn > s.syn_wait then begin
        if s.syn_retries >= max_syn_retries then abort s ~cause:"syn"
        else begin
          s.syn_retries <- s.syn_retries + 1;
          let expo = min s.syn_retries backoff_cap in
          s.syn_wait <-
            jittered
              (Context.rng s.proto.ctx)
              (rto s *. float_of_int (1 lsl expo));
          send_syn s
        end
      end
      else if s.syn_acked && s.acked < size s && t -. s.last_ack > abort_after
      then abort s ~cause:"stall"
      else if s.syn_acked && s.acked < size s && t -. s.last_progress > rto s then begin
        (let trace = Context.trace s.proto.ctx in
         if Pdq_telemetry.Trace.active trace && s.next_seq > s.acked then
           Pdq_telemetry.Trace.(
             emit trace
               (Flow_retransmit { flow = s.flow.Context.id; kind = "watchdog" })));
        s.next_seq <- s.acked;
        s.last_progress <- t;
        ensure_sending s
      end;
      if not s.closed then begin
        (* Per-RTT rate-request probe when data is not flowing fast
           enough to carry requests itself. *)
        if s.syn_acked && s.acked < size s && t -. s.last_tx > s.rtt then
          transmit s (make_pkt s ~kind:Packet.Probe ());
        ignore
          (Sim.schedule_k (Context.sim s.proto.ctx) k_watchdog
             ~delay:(max (min s.rtt 5e-4) 1e-4)
             s.watchdog_fn)
      end
    end
  end

let on_ack s (pkt : Packet.t) =
  if not s.closed then begin
    if not s.syn_acked then begin
      s.syn_acked <- true;
      let trace = Context.trace s.proto.ctx in
      if Pdq_telemetry.Trace.active trace then
        Pdq_telemetry.Trace.(
          emit trace (Flow_established { flow = s.flow.Context.id }))
    end;
    let t = now s in
    s.last_ack <- t;
    (match Payloads.ack_of pkt.Packet.payload with
    | Some ack ->
        let sample = t -. ack.Payloads.echo_ts in
        if sample > 0. then s.rtt <- (0.875 *. s.rtt) +. (0.125 *. sample);
        if ack.Payloads.cum_ack > s.acked then begin
          s.acked <- ack.Payloads.cum_ack;
          s.last_progress <- t
        end
    | None -> ());
    (match s.proto.ops.rate_of_ack s pkt with
    | Some r ->
        let fresh = max s.proto.ops.min_rate r in
        (let trace = Context.trace s.proto.ctx in
         if Pdq_telemetry.Trace.active trace && fresh <> s.rate then
           Pdq_telemetry.Trace.(
             emit trace
               (Flow_rate_set { flow = s.flow.Context.id; rate = fresh })));
        s.rate <- fresh;
        (* A pending departure was paced at the old rate; reschedule so
           a rate increase takes effect immediately. *)
        s.send_ev <- cancel_opt s s.send_ev
    | None -> ());
    if s.acked >= size s then finish_sender s
    else if s.proto.ops.quench s ~now:t then quench s
    else ensure_sending s
  end

let receiver_handle t s (pkt : Packet.t) =
  let reply kind =
    let spec = s.flow.Context.spec in
    let ack =
      Packet.make ~flow:s.flow.Context.id ~src:spec.Context.dst
        ~dst:spec.Context.src ~kind ~extra_header:t.ops.extra_header
        ~payload:
          (t.ops.ack_payload ~cum_ack:(Rx_buffer.cumulative_ack s.rx)
             ~echo_ts:pkt.Packet.sent_at pkt)
        ~now:(Context.now t.ctx) ()
    in
    Context.transmit t.ctx ~from:spec.Context.dst ack
  in
  match pkt.Packet.kind with
  | Packet.Syn -> reply Packet.Syn_ack
  | Packet.Data ->
      let before = Rx_buffer.received_bytes s.rx in
      Rx_buffer.on_data s.rx ~seq:pkt.Packet.seq ~bytes:pkt.Packet.payload_bytes;
      let delivered = Rx_buffer.received_bytes s.rx - before in
      if delivered > 0 then
        Context.record_rx t.ctx ~flow_id:s.flow.Context.id ~bytes:delivered;
      if Rx_buffer.complete s.rx then Context.complete t.ctx s.flow;
      reply Packet.Ack
  | Packet.Probe -> reply Packet.Ack
  | Packet.Term | Packet.Syn_ack | Packet.Ack -> ()

let deliver t ~node (pkt : Packet.t) =
  match Hashtbl.find_opt t.senders pkt.Packet.flow with
  | None -> ()
  | Some s -> (
      match pkt.Packet.kind with
      | Packet.Syn | Packet.Data | Packet.Probe | Packet.Term ->
          if node = s.flow.Context.spec.Context.dst then receiver_handle t s pkt
      | Packet.Syn_ack | Packet.Ack ->
          if node = s.flow.Context.spec.Context.src then on_ack s pkt)

let start_flow t (flow : Context.flow) =
  let s =
    {
      proto = t;
      flow;
      rate = 0.;
      rtt = Context.init_rtt t.ctx;
      next_seq = 0;
      acked = 0;
      syn_acked = false;
      last_syn = 0.;
      syn_wait = infinity;
      syn_retries = 0;
      last_ack = flow.Context.spec.Context.start;
      last_progress = flow.Context.spec.Context.start;
      last_tx = neg_infinity;
      send_ev = None;
      closed = false;
      send_fn = noop;
      watchdog_fn = noop;
      rx =
        Rx_buffer.create ~size:flow.Context.spec.Context.size
          ~segment:(Packet.max_payload ~scheduling_header:t.ops.extra_header)
          ();
    }
  in
  Hashtbl.replace t.senders flow.Context.id s;
  s.send_fn <- send_data s;
  s.watchdog_fn <- watchdog s;
  let sim = Context.sim t.ctx in
  let launch () =
    s.syn_wait <- rto s;
    s.last_ack <- Sim.now sim;
    (let trace = Context.trace t.ctx in
     if Pdq_telemetry.Trace.active trace then
       Pdq_telemetry.Trace.(
         emit trace (Flow_started { flow = flow.Context.id })));
    send_syn s;
    watchdog s ()
  in
  let start = flow.Context.spec.Context.start in
  if start <= Sim.now sim then launch ()
  else ignore (Sim.schedule_at_k sim k_launch ~time:start launch)
