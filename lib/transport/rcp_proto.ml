module Sim = Pdq_engine.Sim
module Packet = Pdq_net.Packet
module Link = Pdq_net.Link
module Topology = Pdq_net.Topology

let k_tick = Sim.Kind.register "rcp.tick"

(* A very low floor keeps every flow probing forward progress; real RCP
   hands out a minimum of one packet per RTT. *)
let min_rate = 1e5

type port = {
  link : Link.t;
  flows : (int, float) Hashtbl.t; (* flow id -> last seen *)
  mutable fair : float;
  mutable rtt_avg : float;
}

type t = { ctx : Context.t; ports : port array; inner : Rate_flow.t }

let recompute_fair p ~now:_ =
  let n = max 1 (Hashtbl.length p.flows) in
  let q_bits = Pdq_engine.Units.bytes_to_bits (Link.queue_bytes p.link) in
  let c_eff = Link.rate p.link -. (q_bits /. (2. *. max p.rtt_avg 1e-9)) in
  p.fair <- max min_rate (min (Link.rate p.link) (c_eff /. float_of_int n))

let fair_rate t ~link = t.ports.(link).fair
let flow_count t ~link = Hashtbl.length t.ports.(link).flows

let on_forward t ~link (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Payloads.Rcp_ctrl (ctrl, _) -> (
      let p = t.ports.(link) in
      let now = Context.now t.ctx in
      match pkt.Packet.kind with
      | Packet.Term ->
          Hashtbl.remove p.flows pkt.Packet.flow;
          recompute_fair p ~now
      | Packet.Syn | Packet.Data | Packet.Probe ->
          if not (Hashtbl.mem p.flows pkt.Packet.flow) then begin
            Hashtbl.replace p.flows pkt.Packet.flow now;
            recompute_fair p ~now
          end
          else Hashtbl.replace p.flows pkt.Packet.flow now;
          if ctrl.Payloads.rcp_rtt > 0. then
            p.rtt_avg <-
              (0.875 *. p.rtt_avg) +. (0.125 *. ctrl.Payloads.rcp_rtt);
          ctrl.Payloads.rcp_rate <- min ctrl.Payloads.rcp_rate p.fair
      | Packet.Syn_ack | Packet.Ack -> ())
  | _ -> ()

let ops ctx : Rate_flow.ops =
  {
    Rate_flow.extra_header = Payloads.rcp_header_bytes;
    min_rate;
    fwd_payload =
      (fun s _kind ->
        Payloads.Rcp_ctrl
          ( {
              Payloads.rcp_rate = infinity;
              rcp_rtt = Rate_flow.sender_rtt s;
            },
            { Payloads.cum_ack = 0; echo_ts = Context.now ctx } ));
    ack_payload =
      (fun ~cum_ack ~echo_ts pkt ->
        match pkt.Packet.payload with
        | Payloads.Rcp_ctrl (ctrl, _) ->
            Payloads.Rcp_ctrl
              ( { Payloads.rcp_rate = ctrl.Payloads.rcp_rate; rcp_rtt = 0. },
                { Payloads.cum_ack; echo_ts } )
        | _ -> Payloads.Rcp_ctrl
                 ( { Payloads.rcp_rate = min_rate; rcp_rtt = 0. },
                   { Payloads.cum_ack; echo_ts } ));
    rate_of_ack =
      (fun _s pkt ->
        match pkt.Packet.payload with
        | Payloads.Rcp_ctrl (ctrl, _) -> Some ctrl.Payloads.rcp_rate
        | _ -> None);
    quench = (fun _ ~now:_ -> false);
  }

(* Purge flows whose sender vanished without a TERM (packet loss): a
   generous horizon so slow flows are never evicted spuriously. *)
let purge p ~now =
  let stale =
    Hashtbl.fold
      (fun id seen acc -> if now -. seen > 0.5 then id :: acc else acc)
      p.flows []
  in
  if stale <> [] then begin
    List.iter (Hashtbl.remove p.flows) stale;
    recompute_fair p ~now
  end

let install ~ctx ~until =
  let topo = Context.topo ctx in
  let ports =
    Array.init (Topology.link_count topo) (fun i ->
        let link = Topology.link topo i in
        {
          link;
          flows = Hashtbl.create 16;
          fair = Link.rate link;
          rtt_avg = Context.init_rtt ctx;
        })
  in
  let inner = Rate_flow.install ~ctx ~ops:(ops ctx) in
  let t = { ctx; ports; inner } in
  (* Crash-reboot: the per-port flow table is soft state rebuilt from
     the next packets through; reset the estimators to their initial
     values. *)
  Context.on_switch_reboot ctx (fun node ->
      Array.iter
        (fun p ->
          if Link.src p.link = node then begin
            Hashtbl.reset p.flows;
            p.fair <- Link.rate p.link;
            p.rtt_avg <- Context.init_rtt ctx
          end)
        ports);
  Context.set_hooks ctx
    ~on_forward:(fun ~link pkt -> on_forward t ~link pkt)
    ~on_reverse:(fun ~fwd_link:_ _ -> ())
    ~deliver:(fun ~node pkt -> Rate_flow.deliver inner ~node pkt);
  let sim = Context.sim ctx in
  Array.iter
    (fun p ->
      let rec tick () =
        if Sim.now sim <= until then begin
          let now = Sim.now sim in
          purge p ~now;
          recompute_fair p ~now;
          ignore (Sim.schedule_k sim k_tick ~delay:(max p.rtt_avg 5e-5) tick)
        end
      in
      ignore (Sim.schedule_k sim k_tick ~delay:0. tick))
    ports;
  t

let start_flow t flow = Rate_flow.start_flow t.inner flow
