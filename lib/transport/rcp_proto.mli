(** Packet-level RCP [10], the paper's optimized variant (§5.1):
    switches count the exact number of active flows per output link
    (SYN/TERM registration) and advertise the fair rate
    [(C − q/(2·RTT)) / N], recomputed whenever the flow count changes
    and every average RTT for the queue term. Equivalent to D3 when no
    flow has a deadline. *)

type t

val install : ctx:Context.t -> until:float -> t
(** Install switch state on every directed link, forwarding hooks and
    the periodic fair-rate updates (active until [until]). *)

val start_flow : t -> Context.flow -> unit

val fair_rate : t -> link:int -> float
(** Current advertised fair rate on a directed link (for tests). *)

val flow_count : t -> link:int -> int
(** Active flows registered on a directed link (feeds the telemetry
    metrics prober). *)
