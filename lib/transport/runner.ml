module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Topology = Pdq_net.Topology
module Link = Pdq_net.Link

type protocol =
  | Pdq of Pdq_core.Config.t
  | Pdq_estimated of { config : Pdq_core.Config.t; quantum : int }
  | Mpdq of {
      config : Pdq_core.Config.t;
      subflows : int;
      paths : (src:int -> dst:int -> int array list) option;
    }
  | Rcp
  | D3
  | Tcp

let mpdq ?paths ~subflows () = Mpdq { config = Pdq_core.Config.full; subflows; paths }

let protocol_name = function
  | Pdq cfg -> Pdq_core.Config.name cfg
  | Pdq_estimated { quantum; _ } -> Printf.sprintf "PDQ(est %dKB)" (quantum / 1000)
  | Mpdq { subflows; _ } -> Printf.sprintf "M-PDQ(%d)" subflows
  | Rcp -> "RCP"
  | D3 -> "D3"
  | Tcp -> "TCP"

type options = {
  seed : int;
  horizon : float;
  stop_when_done : bool;
  loss : (float * int list) option;
  faults : Pdq_faults.Fault_plan.t option;
  trace : (int * float) option;
  init_rtt : float;
  rto_min : float;
}

let default_options =
  {
    seed = 1;
    horizon = 10.;
    stop_when_done = true;
    loss = None;
    faults = None;
    trace = None;
    init_rtt = 2e-4;
    rto_min = 1e-3;
  }

type flow_result = {
  spec : Context.flow_spec;
  fct : float option;
  met_deadline : bool;
  terminated : bool;
  aborted : bool;
}

type result = {
  flows : flow_result array;
  application_throughput : float;
  mean_fct : float;
  completed : int;
  aborted : int;
  counters : (string * int) list;
  sim_end : float;
  ctx : Context.t;
}

let run ?(options = default_options) ~topo protocol specs =
  let sim = Topology.sim topo in
  let rng = Rng.create options.seed in
  let ctx = Context.create ~sim ~topo ~rng ~init_rtt:options.init_rtt () in
  (match options.loss with
  | Some (rate, links) ->
      List.iter
        (fun l -> Link.set_loss (Topology.link topo l) ~rate ~rng:(Rng.split rng))
        links
  | None -> ());
  (match options.trace with
  | Some (link, sample_every) ->
      Context.trace_link ctx ~link ~sample_every ~until:options.horizon
  | None -> ());
  let start_flow : Context.flow -> unit =
    match protocol with
    | Pdq config ->
        let p = Pdq_proto.install ~config ~ctx ~until:options.horizon () in
        Pdq_proto.start_flow p
    | Pdq_estimated { config; quantum } ->
        let p =
          Pdq_proto.install
            ~size_info:(Pdq_core.Sender.Estimated quantum)
            ~config ~ctx ~until:options.horizon ()
        in
        Pdq_proto.start_flow p
    | Mpdq { config; subflows; paths } ->
        let p =
          Mpdq_proto.install ~config ~ctx ~until:options.horizon ~subflows
            ?paths ()
        in
        Mpdq_proto.start_flow p
    | Rcp ->
        let p = Rcp_proto.install ~ctx ~until:options.horizon in
        Rcp_proto.start_flow p
    | D3 ->
        let p = D3_proto.install ~ctx ~until:options.horizon in
        D3_proto.start_flow p
    | Tcp ->
        let p = Tcp_proto.install ~rto_min:options.rto_min ~ctx () in
        Tcp_proto.start_flow p
  in
  (* Fault injection. The empty plan is skipped entirely — not even an
     [Rng.split] — so a run with [faults = Some Fault_plan.empty] is
     bit-for-bit identical to one with [faults = None]. Installed after
     the protocol so its reboot hooks are registered. *)
  (match options.faults with
  | Some plan when not (Pdq_faults.Fault_plan.is_empty plan) ->
      Pdq_faults.Fault_plan.install ~sim ~topo ~rng:(Rng.split rng)
        ~on_change:(fun () -> Context.reroute ctx)
        ~on_reboot:(fun node -> Context.reboot_switch ctx ~node)
        plan
  | Some _ | None -> ());
  let flows = List.map (Context.add_flow ctx) specs in
  List.iter start_flow flows;
  if options.stop_when_done then Context.on_all_complete ctx (fun () -> Sim.stop sim);
  Sim.run ~until:options.horizon sim;
  let results =
    List.map
      (fun (f : Context.flow) ->
        let fct =
          Option.map (fun c -> c -. f.Context.spec.Context.start) f.Context.completed_at
        in
        let met =
          match (f.Context.completed_at, f.Context.deadline_abs) with
          | Some c, Some d -> c <= d
          | _, None -> f.Context.completed_at <> None
          | None, Some _ -> false
        in
        {
          spec = f.Context.spec;
          fct;
          met_deadline = met;
          terminated = f.Context.terminated;
          aborted = f.Context.aborted;
        })
      (Context.flows ctx)
    |> Array.of_list
  in
  let deadline_flows =
    Array.of_list
      (List.filter
         (fun (r : flow_result) -> r.spec.Context.deadline <> None)
         (Array.to_list results))
  in
  let application_throughput =
    if Array.length deadline_flows = 0 then 1.
    else
      Pdq_engine.Stats.fraction (fun (r : flow_result) -> r.met_deadline)
        deadline_flows
  in
  let fcts =
    Array.to_list results
    |> List.filter_map (fun (r : flow_result) -> r.fct)
    |> Array.of_list
  in
  (* Per-cause counters: watchdog aborts and fault events from the
     context tally, plus link-level drop causes summed over the
     topology. Zero counts are omitted so fault-free runs report []. *)
  let counters =
    let drop_loss = ref 0 and drop_overflow = ref 0 and drop_down = ref 0 in
    for i = 0 to Topology.link_count topo - 1 do
      let l = Topology.link topo i in
      drop_loss := !drop_loss + Link.dropped_loss l;
      drop_overflow := !drop_overflow + Link.dropped_overflow l;
      drop_down := !drop_down + Link.dropped_down l
    done;
    Pdq_engine.Stats.Tally.to_list (Context.tally ctx)
    @ List.filter
        (fun (_, n) -> n > 0)
        [
          ("drop.loss", !drop_loss);
          ("drop.overflow", !drop_overflow);
          ("drop.down", !drop_down);
        ]
  in
  {
    flows = results;
    application_throughput;
    mean_fct = Pdq_engine.Stats.mean fcts;
    completed = Array.length fcts;
    aborted =
      Array.fold_left
        (fun n (r : flow_result) -> if r.aborted then n + 1 else n)
        0 results;
    counters;
    sim_end = Sim.now sim;
    ctx;
  }
