module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Topology = Pdq_net.Topology
module Link = Pdq_net.Link
module Trace = Pdq_telemetry.Trace
module Metrics = Pdq_telemetry.Metrics

let k_check_probe = Sim.Kind.register "check.probe"
let k_telemetry = Sim.Kind.register "telemetry.sample"

type protocol =
  | Pdq of Pdq_core.Config.t
  | Pdq_estimated of { config : Pdq_core.Config.t; quantum : int }
  | Mpdq of {
      config : Pdq_core.Config.t;
      subflows : int;
      paths : (src:int -> dst:int -> int array list) option;
    }
  | Rcp
  | D3
  | Tcp

let mpdq ?paths ~subflows () = Mpdq { config = Pdq_core.Config.full; subflows; paths }

let protocol_name = function
  | Pdq cfg -> Pdq_core.Config.name cfg
  | Pdq_estimated { quantum; _ } -> Printf.sprintf "PDQ(est %dKB)" (quantum / 1000)
  | Mpdq { subflows; _ } -> Printf.sprintf "M-PDQ(%d)" subflows
  | Rcp -> "RCP"
  | D3 -> "D3"
  | Tcp -> "TCP"

type port_view = {
  pv_link : int;
  stored : int;
  sending : int;
  paused : int;
  capacity_bound : int;
  max_list : int;
  line_rate : float;
  mature_rate_sum : float;
  inconsistencies : string list;
}

type telemetry = {
  sinks : Trace.sink list;
  metrics : Metrics.t option;
  metrics_every : float;
  port_probe : (now:float -> port_view -> unit) option;
}

let no_telemetry =
  { sinks = []; metrics = None; metrics_every = 1e-3; port_probe = None }

type driver =
  spawn:(Context.flow_spec -> Context.flow) -> Trace.sink list

type options = {
  seed : int;
  horizon : float;
  stop_when_done : bool;
  loss : (float * int list) option;
  faults : Pdq_faults.Fault_plan.t option;
  telemetry : telemetry;
  driver : driver option;
  init_rtt : float;
  rto_min : float;
}

let default_options =
  {
    seed = 1;
    horizon = 10.;
    stop_when_done = true;
    loss = None;
    faults = None;
    telemetry = no_telemetry;
    driver = None;
    init_rtt = 2e-4;
    rto_min = 1e-3;
  }

type flow_result = {
  spec : Context.flow_spec;
  fct : float option;
  met_deadline : bool;
  terminated : bool;
  aborted : bool;
}

type result = {
  flows : flow_result array;
  application_throughput : float;
  mean_fct : float;
  completed : int;
  aborted : int;
  counters : (string * int) list;
  sim_end : float;
  ctx : Context.t;
}

let execute ?(options = default_options) ~topo protocol specs =
  let sim = Topology.sim topo in
  let rng = Rng.create options.seed in
  (* An application driver (e.g. the job tracker) gets a spawn hook
     that registers and starts a flow mid-run. The hook is wired to
     the live context and protocol just before the initial flows
     start; a driver calling it earlier (i.e. outside a sink
     callback) is a programming error. *)
  let spawn_ref =
    ref (fun (_ : Context.flow_spec) : Context.flow ->
        invalid_arg "Runner: spawn called before the protocol was installed")
  in
  let driver_sinks =
    match options.driver with
    | Some d -> d ~spawn:(fun spec -> !spawn_ref spec)
    | None -> []
  in
  (* The trace bus. PDQ_DEBUG=trace additionally echoes every event to
     stderr; with no sink at all the bus is {!Trace.null} and the run
     is bit-for-bit identical to an uninstrumented one. *)
  let sinks =
    let sinks = options.telemetry.sinks @ driver_sinks in
    if Debug.trace_on () then
      sinks @ [ Trace.console ~min_severity:Trace.Trace stderr ]
    else sinks
  in
  let trace = Trace.create ~clock:(fun () -> Sim.now sim) ~sinks in
  if Trace.active trace then
    Topology.iter_links (fun l -> Link.set_trace l trace) topo;
  let ctx = Context.create ~trace ~sim ~topo ~rng ~init_rtt:options.init_rtt () in
  (* Live per-cause watchdog-abort counters: incremented the moment a
     sender gives up, not just folded from the tally at the end, so a
     chaos run can assert on them mid-flight by stable name. *)
  (match options.telemetry.metrics with
  | Some m ->
      Context.on_abort ctx (fun ~cause ->
          Metrics.incr (Metrics.counter m (Metrics.Name.watchdog_abort cause)) ())
  | None -> ());
  (match options.loss with
  | Some (rate, links) ->
      List.iter
        (fun l -> Link.set_loss (Topology.link topo l) ~rate ~rng:(Rng.split rng))
        links
  | None -> ());
  (* The PDQ-family scheduler state a validation probe may inspect;
     RCP/D3/TCP ports hold no flow list, so they expose no view. *)
  let pdq_port_view p ~link =
    let port = Pdq_proto.port p link in
    let open Pdq_core in
    {
      pv_link = link;
      stored = Flow_list.length (Switch_port.flow_list port);
      sending = Switch_port.kappa port;
      paused = Switch_port.paused_count port;
      capacity_bound = Switch_port.list_capacity port;
      max_list = (Switch_port.config port).Config.max_list_size;
      line_rate = Link.rate (Topology.link topo link);
      mature_rate_sum = Switch_port.mature_rate_sum port;
      inconsistencies = Switch_port.invariant_errors port;
    }
  in
  let (start_flow : Context.flow -> unit),
      (port_counts : link:int -> (int * int) option),
      (port_view : (link:int -> port_view) option) =
    match protocol with
    | Pdq config ->
        let p = Pdq_proto.install ~config ~ctx ~until:options.horizon () in
        ( Pdq_proto.start_flow p,
          (fun ~link -> Some (Pdq_proto.port_flow_counts p ~link)),
          Some (fun ~link -> pdq_port_view p ~link) )
    | Pdq_estimated { config; quantum } ->
        let p =
          Pdq_proto.install
            ~size_info:(Pdq_core.Sender.Estimated quantum)
            ~config ~ctx ~until:options.horizon ()
        in
        ( Pdq_proto.start_flow p,
          (fun ~link -> Some (Pdq_proto.port_flow_counts p ~link)),
          Some (fun ~link -> pdq_port_view p ~link) )
    | Mpdq { config; subflows; paths } ->
        let p =
          Mpdq_proto.install ~config ~ctx ~until:options.horizon ~subflows
            ?paths ()
        in
        ( Mpdq_proto.start_flow p,
          (fun ~link ->
            Some (Pdq_proto.port_flow_counts (Mpdq_proto.pdq p) ~link)),
          Some (fun ~link -> pdq_port_view (Mpdq_proto.pdq p) ~link) )
    | Rcp ->
        let p = Rcp_proto.install ~ctx ~until:options.horizon in
        ( Rcp_proto.start_flow p,
          (fun ~link -> Some (Rcp_proto.flow_count p ~link, 0)),
          None )
    | D3 ->
        let p = D3_proto.install ~ctx ~until:options.horizon in
        ( D3_proto.start_flow p,
          (fun ~link -> Some (D3_proto.flow_count p ~link, 0)),
          None )
    | Tcp ->
        let p = Tcp_proto.install ~rto_min:options.rto_min ~ctx () in
        (Tcp_proto.start_flow p, (fun ~link:_ -> None), None)
  in
  (* Arm the driver's spawn hook: registration pins the route and
     emits [Flow_admitted]; every protocol's [start_flow] launches
     immediately when [spec.start <= now], so flows spawned from a
     sink callback mid-run join the simulation at the current time. *)
  spawn_ref :=
    (fun spec ->
      let f = Context.add_flow ctx spec in
      start_flow f;
      f);
  (* Validation probe: hand every PDQ port's scheduler state to the
     attached monitor on the telemetry grid. Like the metrics probe,
     nothing is scheduled when no monitor is attached. *)
  (match (options.telemetry.port_probe, port_view) with
  | Some on_port, Some view ->
      let every = max options.telemetry.metrics_every 1e-6 in
      let rec probe () =
        let time = Sim.now sim in
        Topology.iter_links
          (fun l -> on_port ~now:time (view ~link:(Link.id l)))
          topo;
        if time +. every <= options.horizon then
          ignore (Sim.schedule_k sim k_check_probe ~delay:every probe)
      in
      ignore (Sim.schedule_k sim k_check_probe ~delay:0. probe)
  | _ -> ());
  (* Fault injection. The empty plan is skipped entirely — not even an
     [Rng.split] — so a run with [faults = Some Fault_plan.empty] is
     bit-for-bit identical to one with [faults = None]. Installed after
     the protocol so its reboot hooks are registered. *)
  (match options.faults with
  | Some plan when not (Pdq_faults.Fault_plan.is_empty plan) ->
      Pdq_faults.Fault_plan.install ~sim ~topo ~rng:(Rng.split rng)
        ?trace:
          (if Trace.active trace then
             Some
               (fun ~time:_ ev ->
                 Trace.emit trace
                   (Trace.Fault
                      {
                        desc =
                          Format.asprintf "%a" Pdq_faults.Fault_plan.pp_event ev;
                      }))
           else None)
        ~on_change:(fun () -> Context.reroute ctx)
        ~on_reboot:(fun node -> Context.reboot_switch ctx ~node)
        plan
  | Some _ | None -> ());
  (* Network-wide metrics probe: per-link utilization and queue depth,
     per-port active/paused flow counts, sampled on a fixed grid. Only
     scheduled when a registry is attached, so plain runs see no extra
     simulator events. *)
  (match options.telemetry.metrics with
  | Some m ->
      let every = max options.telemetry.metrics_every 1e-6 in
      let rec probe () =
        let time = Sim.now sim in
        Topology.iter_links
          (fun l ->
            let id = Link.id l in
            Metrics.sample m ~time ~name:(Metrics.Name.link_util id)
              ~value:(Link.utilization l ~since:time ~now:time);
            Metrics.sample m ~time
              ~name:(Metrics.Name.link_queue_bytes id)
              ~value:(float_of_int (Link.queue_bytes l));
            match port_counts ~link:id with
            | Some (active, paused) ->
                Metrics.sample m ~time
                  ~name:(Metrics.Name.port_flows_active id)
                  ~value:(float_of_int active);
                Metrics.sample m ~time
                  ~name:(Metrics.Name.port_flows_paused id)
                  ~value:(float_of_int paused)
            | None -> ())
          topo;
        if time +. every <= options.horizon then
          ignore (Sim.schedule_k sim k_telemetry ~delay:every probe)
      in
      ignore (Sim.schedule_k sim k_telemetry ~delay:0. probe)
  | None -> ());
  let flows = List.map (Context.add_flow ctx) specs in
  List.iter start_flow flows;
  if options.stop_when_done then Context.on_all_complete ctx (fun () -> Sim.stop sim);
  Sim.run ~until:options.horizon sim;
  let results =
    List.map
      (fun (f : Context.flow) ->
        let fct =
          Option.map (fun c -> c -. f.Context.spec.Context.start) f.Context.completed_at
        in
        let met =
          match (f.Context.completed_at, f.Context.deadline_abs) with
          | Some c, Some d -> c <= d
          | _, None -> f.Context.completed_at <> None
          | None, Some _ -> false
        in
        {
          spec = f.Context.spec;
          fct;
          met_deadline = met;
          terminated = f.Context.terminated;
          aborted = f.Context.aborted;
        })
      (Context.flows ctx)
    |> Array.of_list
  in
  let deadline_flows =
    Array.of_list
      (List.filter
         (fun (r : flow_result) -> r.spec.Context.deadline <> None)
         (Array.to_list results))
  in
  let application_throughput =
    if Array.length deadline_flows = 0 then 1.
    else
      Pdq_engine.Stats.fraction (fun (r : flow_result) -> r.met_deadline)
        deadline_flows
  in
  let fcts =
    Array.to_list results
    |> List.filter_map (fun (r : flow_result) -> r.fct)
    |> Array.of_list
  in
  (* Per-cause counters: watchdog aborts and fault events from the
     context tally, plus link-level drop causes summed over the
     topology. Zero counts are omitted so fault-free runs report []. *)
  let counters =
    let drop_loss = ref 0 and drop_overflow = ref 0 and drop_down = ref 0 in
    for i = 0 to Topology.link_count topo - 1 do
      let l = Topology.link topo i in
      drop_loss := !drop_loss + Link.dropped_loss l;
      drop_overflow := !drop_overflow + Link.dropped_overflow l;
      drop_down := !drop_down + Link.dropped_down l
    done;
    Pdq_engine.Stats.Tally.to_list (Context.tally ctx)
    @ List.filter
        (fun (_, n) -> n > 0)
        [
          ("drop.loss", !drop_loss);
          ("drop.overflow", !drop_overflow);
          ("drop.down", !drop_down);
        ]
  in
  (* Fold the run's counters and the FCT distribution into the metrics
     registry so the exported CSV/JSONL is self-contained. *)
  (match options.telemetry.metrics with
  | Some m ->
      Metrics.add_counters m counters;
      let h = Metrics.histogram m Metrics.Name.flow_fct_ms in
      Array.iter
        (fun (r : flow_result) ->
          match r.fct with
          | Some f -> Metrics.observe h (1000. *. f)
          | None -> ())
        results
  | None -> ());
  {
    flows = results;
    application_throughput;
    mean_fct = Pdq_engine.Stats.mean fcts;
    completed = Array.length fcts;
    aborted =
      Array.fold_left
        (fun n (r : flow_result) -> if r.aborted then n + 1 else n)
        0 results;
    counters;
    sim_end = Sim.now sim;
    ctx;
  }

let run = execute
