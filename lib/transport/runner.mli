(** Experiment runner: wires a topology, a protocol and a flow set
    into one deterministic packet-level simulation and extracts the
    paper's metrics. *)

type protocol =
  | Pdq of Pdq_core.Config.t
  | Pdq_estimated of { config : Pdq_core.Config.t; quantum : int }
      (** §5.6: senders do not know flow sizes — criticality is the
          running size estimate, refreshed every [quantum] bytes. *)
  | Mpdq of {
      config : Pdq_core.Config.t;
      subflows : int;
      paths : (src:int -> dst:int -> int array list) option;
          (** Explicit parallel paths per host pair (e.g.
              {!Pdq_topo.Builder.bcube_paths}); [None] = ECMP. *)
    }
  | Rcp
  | D3
  | Tcp

val mpdq : ?paths:(src:int -> dst:int -> int array list) -> subflows:int -> unit -> protocol
(** M-PDQ with PDQ(Full) switches. *)

val protocol_name : protocol -> string

type port_view = {
  pv_link : int;          (** Directed link id of the probed port. *)
  stored : int;           (** Flow-list entries currently stored. *)
  sending : int;          (** κ: stored flows with positive rate. *)
  paused : int;           (** Stored flows with rate 0. *)
  capacity_bound : int;   (** Current 2κ-style list capacity. *)
  max_list : int;         (** Hard memory bound [M]. *)
  line_rate : float;      (** Output line rate, bits/s. *)
  mature_rate_sum : float;
      (** {!Pdq_core.Switch_port.mature_rate_sum}: granted rate beyond
          the paper's Early Start allowance; must stay within
          [line_rate]. *)
  inconsistencies : string list;
      (** {!Pdq_core.Switch_port.invariant_errors} of the port. *)
}
(** Snapshot of one PDQ port's scheduler state, taken on the telemetry
    grid for the validation monitors ({!Pdq_check.Invariants}). *)

type telemetry = {
  sinks : Pdq_telemetry.Trace.sink list;
      (** Trace sinks attached to the run's event bus. Empty = the
          {!Pdq_telemetry.Trace.null} bus: no event is ever allocated
          and the run is bit-for-bit identical to an uninstrumented
          one. *)
  metrics : Pdq_telemetry.Metrics.t option;
      (** Registry for the network-wide probe (per-link utilization and
          queue depth, per-port active/paused flow counts) plus the
          run's counters and FCT histogram. *)
  metrics_every : float;
      (** Probe grid in simulated seconds (used by [metrics] and
          [port_probe]). *)
  port_probe : (now:float -> port_view -> unit) option;
      (** Called for every PDQ port on the telemetry grid. [None] (the
          default) schedules nothing; probing never perturbs the run —
          it only observes. Protocols without PDQ ports (RCP/D3/TCP)
          produce no views. *)
}

val no_telemetry : telemetry
(** No sinks, no metrics, no port probe; probe grid 1 ms. *)

type driver =
  spawn:(Context.flow_spec -> Context.flow) -> Pdq_telemetry.Trace.sink list
(** An application driver: called once per run, before the simulation
    starts, with the run's dynamic flow-spawn hook; the sinks it
    returns join the trace bus after the plain telemetry sinks.

    This is the sanctioned exception to the observe-only sink
    contract: a driver's sink {e may} react to trace events by calling
    [spawn], which registers a new flow (assigning the next flow id,
    pinning its route, emitting [Flow_admitted]) and starts it —
    immediately when [spec.start <= now]. Spawned flows join
    {!result.flows} like build-time ones. Because terminal flow
    events are emitted before the flow is counted closed, spawning
    from the terminal event of the last open flow keeps a
    [stop_when_done] run alive. [spawn] must only be called from sink
    callbacks (i.e. while the simulation is running), must not be
    called after the run returns, and — like any sink — must not
    consume the run's randomness. *)

type options = {
  seed : int;
  horizon : float;
      (** Hard simulated-time stop (safety net for never-finishing
          runs). *)
  stop_when_done : bool;
      (** Stop as soon as every flow completed or terminated. *)
  loss : (float * int list) option;
      (** Bernoulli loss rate applied to the given directed links
          (Fig. 9 applies it to both directions of the bottleneck). *)
  faults : Pdq_faults.Fault_plan.t option;
      (** Timed fault injections (link failures, loss episodes, switch
          reboots). [None] or an empty plan leaves the run bit-for-bit
          identical to a fault-free one. *)
  telemetry : telemetry;
      (** Structured tracing and metrics for the run. Replaces the old
          single-link [trace] option: bottleneck time series (Fig. 6/7)
          are now reconstructed from the generic [Flow_rx] events and
          metrics samples. *)
  driver : driver option;
      (** Application driver installed on the run (see {!driver}).
          [None] (the default) spawns nothing: the flow set is fixed at
          build time and the run is bit-for-bit identical to one
          without the hook. *)
  init_rtt : float;  (** Seed for RTT estimators. *)
  rto_min : float;   (** TCP minimum RTO. *)
}

val default_options : options
(** seed 1, horizon 10 s, stop-when-done, no loss, no telemetry,
    200 µs initial RTT, 1 ms RTOmin. *)

type flow_result = {
  spec : Context.flow_spec;
  fct : float option;     (** Receiver-side completion − start. *)
  met_deadline : bool;    (** Completed before its absolute deadline. *)
  terminated : bool;      (** Early Termination / quenching. *)
  aborted : bool;         (** Watchdog gave up (dead path). *)
}

type result = {
  flows : flow_result array;
  application_throughput : float;
      (** Fraction of deadline-constrained flows meeting their
          deadline (1.0 when there are none). *)
  mean_fct : float;
      (** Mean completion time over completed flows, seconds. *)
  completed : int;
  aborted : int; (** Flows whose watchdog reached a terminal abort. *)
  counters : (string * int) list;
      (** Per-cause counters, sorted by key: watchdog aborts
          (["abort.syn"], ["abort.stall"]), fault events
          (["fault.switch_reboot"], ["fault.unroutable"]) and link
          drops by cause (["drop.loss"], ["drop.overflow"],
          ["drop.down"]). Empty for a clean fault-free run. *)
  sim_end : float;
  ctx : Context.t; (** For post-run inspection. *)
}

val execute :
  ?options:options ->
  topo:Pdq_net.Topology.t ->
  protocol ->
  Context.flow_spec list ->
  result
(** Build, simulate, measure. Deterministic for fixed inputs and
    seed.

    This is the low-level machinery under {!Pdq_exec.Scenario.run} —
    the single blessed entry point for experiments. Describe the
    experiment as a {!Pdq_exec.Scenario.t} and call [Scenario.run]
    (or [Sweep.run] for a batch across domains): scenarios are pure
    data, so they can be stored, printed and fanned out to worker
    domains. Call [execute] directly only when you need to hand-build
    the topology or attach per-run telemetry state before the
    simulation starts (see [Scenario.build]). *)

val run :
  ?options:options ->
  topo:Pdq_net.Topology.t ->
  protocol ->
  Context.flow_spec list ->
  result
  [@@ocaml.deprecated
    "Use Pdq_exec.Scenario.run (or Runner.execute when hand-building a \
     topology)."]
(** @deprecated Alias of {!execute}, kept for source compatibility.
    New code should go through {!Pdq_exec.Scenario.run}. *)
