module Sim = Pdq_engine.Sim
module Packet = Pdq_net.Packet

let mss = Packet.max_payload ~scheduling_header:0

let noop () = ()
let k_timer = Pdq_engine.Sim.Kind.register "tcp.timer"
let k_launch = Pdq_engine.Sim.Kind.register "tcp.launch"

type sender = {
  proto : t;
  flow : Context.flow;
  mutable cwnd : float;     (* bytes *)
  mutable ssthresh : float; (* bytes *)
  mutable next_seq : int;
  mutable acked : int;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover_point : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : float;
  mutable backoff : float;
  mutable retries : int; (* consecutive RTOs with no forward progress *)
  mutable syn_acked : bool;
  mutable last_syn : float;
  mutable timer : Sim.handle option;
  mutable closed : bool;
  (* Allocated once per sender: the RTO timer re-arms on every packet
     without building a closure per event. *)
  mutable timer_fn : unit -> unit;
  rx : Rx_buffer.t;
}

and t = {
  ctx : Context.t;
  rto_min : float;
  senders : (int, sender) Hashtbl.t;
}

let sender_cwnd t ~flow =
  match Hashtbl.find_opt t.senders flow with
  | Some s -> s.cwnd
  | None -> 0.

let now s = Context.now s.proto.ctx
let size s = s.flow.Context.spec.Context.size

let make_pkt s ~kind ?(payload_bytes = 0) ?(seq = 0) () =
  let spec = s.flow.Context.spec in
  Packet.make ~flow:s.flow.Context.id ~src:spec.Context.src ~dst:spec.Context.dst
    ~kind ~payload_bytes ~seq
    ~payload:(Payloads.Tcp_ctrl { Payloads.cum_ack = 0; echo_ts = now s })
    ~now:(now s) ()

let transmit s pkt =
  Context.transmit s.proto.ctx ~from:s.flow.Context.spec.Context.src pkt

let cancel_opt s = function
  | Some h ->
      Sim.cancel (Context.sim s.proto.ctx) h;
      None
  | None -> None

let send_syn s =
  s.last_syn <- now s;
  transmit s (make_pkt s ~kind:Packet.Syn ())

let send_segment s seq =
  let payload = min mss (size s - seq) in
  if payload > 0 then
    transmit s (make_pkt s ~kind:Packet.Data ~payload_bytes:payload ~seq ())

let flight s = s.next_seq - s.acked

let emit_event s ev =
  let trace = Context.trace s.proto.ctx in
  if Pdq_telemetry.Trace.active trace then Pdq_telemetry.Trace.emit trace ev

let mark_established s =
  if not s.syn_acked then begin
    s.syn_acked <- true;
    emit_event s
      (Pdq_telemetry.Trace.Flow_established { flow = s.flow.Context.id })
  end

(* Give up after this many consecutive RTOs with zero forward progress
   (dead path): by then the backoff has the timer at 64x RTO, so the
   path has been silent for a long multiple of the RTT. *)
let max_retries = 10

let abort s ~cause =
  if not s.closed then begin
    s.closed <- true;
    s.timer <- cancel_opt s s.timer;
    Context.abort s.proto.ctx s.flow ~cause
  end

let rec arm_timer s =
  s.timer <- cancel_opt s s.timer;
  if not s.closed then begin
    let delay = s.rto *. s.backoff in
    (* Jitter the backed-off retry timer so senders that lost the same
       link do not retransmit in lockstep; the initial timer stays
       deterministic (no RNG draw on the fault-free path). *)
    let delay =
      if s.backoff > 1. then
        delay *. (0.75 +. (0.5 *. Pdq_engine.Rng.float (Context.rng s.proto.ctx)))
      else delay
    in
    s.timer <-
      Some
        (Sim.schedule_k (Context.sim s.proto.ctx) k_timer ~delay s.timer_fn)
  end

(* Retransmission timeout: multiplicative backoff, window collapse,
   go-back-N from the cumulative ack point. Bounded: a sender whose
   path stays dead aborts instead of backing off forever. *)
and on_timeout s =
  s.timer <- None;
  if not s.closed then begin
    s.retries <- s.retries + 1;
    if s.retries > max_retries then
      abort s ~cause:(if s.syn_acked then "stall" else "syn")
    else begin
      if not s.syn_acked then send_syn s
      else if s.acked < size s then begin
        s.ssthresh <- max (float_of_int (flight s) /. 2.) (2. *. float_of_int mss);
        s.cwnd <- float_of_int mss;
        s.dup_acks <- 0;
        s.in_recovery <- false;
        if s.next_seq > s.acked then
          emit_event s
            (Pdq_telemetry.Trace.Flow_retransmit
               { flow = s.flow.Context.id; kind = "timeout" });
        s.next_seq <- s.acked;
        try_send s
      end;
      s.backoff <- min (s.backoff *. 2.) 64.;
      arm_timer s
    end
  end

and try_send s =
  if (not s.closed) && s.syn_acked then begin
    let continue = ref true in
    while !continue do
      if s.next_seq < size s && float_of_int (flight s) < s.cwnd then begin
        send_segment s s.next_seq;
        s.next_seq <- s.next_seq + min mss (size s - s.next_seq)
      end
      else continue := false
    done
  end

let update_rtt s sample =
  if s.srtt = 0. then begin
    s.srtt <- sample;
    s.rttvar <- sample /. 2.
  end
  else begin
    s.rttvar <- (0.75 *. s.rttvar) +. (0.25 *. abs_float (s.srtt -. sample));
    s.srtt <- (0.875 *. s.srtt) +. (0.125 *. sample)
  end;
  s.rto <- max s.proto.rto_min (s.srtt +. (4. *. s.rttvar))

let finish s =
  if not s.closed then begin
    s.closed <- true;
    s.timer <- cancel_opt s s.timer
  end

let on_ack s (pkt : Packet.t) =
  if not s.closed then begin
    mark_established s;
    match Payloads.ack_of pkt.Packet.payload with
    | None -> ()
    | Some ack ->
        let sample = now s -. ack.Payloads.echo_ts in
        if sample > 0. then update_rtt s sample;
        let cum = ack.Payloads.cum_ack in
        if cum > s.acked then begin
          (* New data acknowledged. *)
          let acked_bytes = cum - s.acked in
          s.acked <- cum;
          s.backoff <- 1.;
          s.retries <- 0;
          s.dup_acks <- 0;
          if s.in_recovery then begin
            if s.acked >= s.recover_point then begin
              s.in_recovery <- false;
              s.cwnd <- s.ssthresh
            end
          end
          else if s.cwnd < s.ssthresh then
            (* Slow start: one MSS per MSS acknowledged. *)
            s.cwnd <- s.cwnd +. float_of_int (min acked_bytes mss)
          else
            (* Congestion avoidance. *)
            s.cwnd <- s.cwnd +. (float_of_int (mss * mss) /. s.cwnd);
          if s.next_seq < s.acked then s.next_seq <- s.acked;
          if s.acked >= size s then finish s
          else begin
            arm_timer s;
            try_send s
          end
        end
        else if pkt.Packet.kind = Packet.Ack && s.acked < size s then begin
          (* Duplicate ACK. *)
          s.dup_acks <- s.dup_acks + 1;
          if s.dup_acks = 3 && not s.in_recovery then begin
            s.ssthresh <-
              max (float_of_int (flight s) /. 2.) (2. *. float_of_int mss);
            s.cwnd <- s.ssthresh +. (3. *. float_of_int mss);
            s.in_recovery <- true;
            s.recover_point <- s.next_seq;
            emit_event s
              (Pdq_telemetry.Trace.Flow_retransmit
                 { flow = s.flow.Context.id; kind = "fast" });
            send_segment s s.acked (* fast retransmit *)
          end
          else if s.in_recovery then begin
            s.cwnd <- s.cwnd +. float_of_int mss;
            try_send s
          end
        end
  end

let on_syn_ack s =
  if (not s.syn_acked) && not s.closed then begin
    mark_established s;
    s.cwnd <- 2. *. float_of_int mss;
    s.backoff <- 1.;
    s.retries <- 0;
    arm_timer s;
    try_send s
  end

let receiver_handle t s (pkt : Packet.t) =
  let reply kind =
    let spec = s.flow.Context.spec in
    let ack =
      Packet.make ~flow:s.flow.Context.id ~src:spec.Context.dst
        ~dst:spec.Context.src ~kind
        ~payload:
          (Payloads.Tcp_ctrl
             {
               Payloads.cum_ack = Rx_buffer.cumulative_ack s.rx;
               echo_ts = pkt.Packet.sent_at;
             })
        ~now:(Context.now t.ctx) ()
    in
    Context.transmit t.ctx ~from:spec.Context.dst ack
  in
  match pkt.Packet.kind with
  | Packet.Syn -> reply Packet.Syn_ack
  | Packet.Data ->
      let before = Rx_buffer.received_bytes s.rx in
      Rx_buffer.on_data s.rx ~seq:pkt.Packet.seq ~bytes:pkt.Packet.payload_bytes;
      let delivered = Rx_buffer.received_bytes s.rx - before in
      if delivered > 0 then
        Context.record_rx t.ctx ~flow_id:s.flow.Context.id ~bytes:delivered;
      if Rx_buffer.complete s.rx then Context.complete t.ctx s.flow;
      reply Packet.Ack
  | Packet.Probe | Packet.Term | Packet.Syn_ack | Packet.Ack -> ()

let deliver t ~node (pkt : Packet.t) =
  match Hashtbl.find_opt t.senders pkt.Packet.flow with
  | None -> ()
  | Some s -> (
      match pkt.Packet.kind with
      | Packet.Syn | Packet.Data | Packet.Probe | Packet.Term ->
          if node = s.flow.Context.spec.Context.dst then receiver_handle t s pkt
      | Packet.Syn_ack ->
          if node = s.flow.Context.spec.Context.src then on_syn_ack s
      | Packet.Ack ->
          if node = s.flow.Context.spec.Context.src then on_ack s pkt)

let install ?(rto_min = 1e-3) ~ctx () =
  let t = { ctx; rto_min; senders = Hashtbl.create 64 } in
  Context.set_hooks ctx
    ~on_forward:(fun ~link:_ _ -> ())
    ~on_reverse:(fun ~fwd_link:_ _ -> ())
    ~deliver:(fun ~node pkt -> deliver t ~node pkt);
  t

let start_flow t (flow : Context.flow) =
  let s =
    {
      proto = t;
      flow;
      cwnd = float_of_int (2 * mss);
      ssthresh = infinity;
      next_seq = 0;
      acked = 0;
      dup_acks = 0;
      in_recovery = false;
      recover_point = 0;
      srtt = 0.;
      rttvar = 0.;
      rto = max t.rto_min (3. *. Context.init_rtt t.ctx);
      backoff = 1.;
      retries = 0;
      syn_acked = false;
      last_syn = 0.;
      timer = None;
      closed = false;
      timer_fn = noop;
      rx = Rx_buffer.create ~size:flow.Context.spec.Context.size ~segment:mss ();
    }
  in
  s.timer_fn <- (fun () -> on_timeout s);
  Hashtbl.replace t.senders flow.Context.id s;
  let sim = Context.sim t.ctx in
  let launch () =
    (let trace = Context.trace t.ctx in
     if Pdq_telemetry.Trace.active trace then
       Pdq_telemetry.Trace.(
         emit trace (Flow_started { flow = flow.Context.id })));
    send_syn s;
    arm_timer s
  in
  let start = flow.Context.spec.Context.start in
  if start <= Sim.now sim then launch ()
  else ignore (Sim.schedule_at_k sim k_launch ~time:start launch)
