let simultaneous ~n ~at = List.init n (fun _ -> at)

let poisson ~rng ~rate ~horizon =
  if rate <= 0. then invalid_arg "Arrivals.poisson: rate <= 0";
  let rec gen t acc =
    let t = t +. Pdq_engine.Rng.exponential rng ~mean:(1. /. rate) in
    if t >= horizon then List.rev acc else gen t (t :: acc)
  in
  gen 0. []

let poisson_n ~rng ~rate ~n =
  if rate <= 0. then invalid_arg "Arrivals.poisson_n: rate <= 0";
  if n < 0 then invalid_arg "Arrivals.poisson_n: n < 0";
  let rec gen t k acc =
    if k = 0 then List.rev acc
    else
      let t = t +. Pdq_engine.Rng.exponential rng ~mean:(1. /. rate) in
      gen t (k - 1) (t :: acc)
  in
  gen 0. n []
