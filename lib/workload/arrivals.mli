(** Arrival processes: when flows start. *)

val simultaneous : n:int -> at:float -> float list
(** All [n] flows start at time [at] (query aggregation). *)

val poisson :
  rng:Pdq_engine.Rng.t -> rate:float -> horizon:float -> float list
(** Poisson arrivals of intensity [rate] (flows/second) on
    [\[0, horizon)], in increasing order. *)

val poisson_n :
  rng:Pdq_engine.Rng.t -> rate:float -> n:int -> float list
(** The first [n] arrivals of a Poisson process of intensity [rate]
    (flows or jobs per second), in increasing order — the count-bounded
    sibling of {!poisson}. *)
