(* Tests for pdq_apps: job DSL validation, deadline propagation, plan
   compilation, the runtime job tracker (stage detection, dynamic
   injection, unclean-stage failure), job metrics and the jobs
   workload end to end through Scenario/Sweep. *)

module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Exec_opts = Pdq_exec.Exec_opts
module Trace = Pdq_telemetry.Trace
module Size_dist = Pdq_workload.Size_dist
module Job = Pdq_apps.Job
module Job_plan = Pdq_apps.Job_plan
module Job_tracker = Pdq_apps.Job_tracker
module Job_metrics = Pdq_apps.Job_metrics
module Job_arrivals = Pdq_apps.Job_arrivals

let fixed = Size_dist.fixed

(* ------------------------------------------------------------------ *)
(* Job DSL validation. *)

let test_job_validation () =
  (match Job.make ~name:"empty" [] with
  | _ -> Alcotest.fail "empty stage list accepted"
  | exception Invalid_argument _ -> ());
  (let bad_dep () =
     ignore
       (Job.make ~name:"bad"
          [
            Job.stage ~sizes:(fixed 1000) (Job.Fan_out { workers = 2 });
            Job.stage ~deps:[ 1 ] ~sizes:(fixed 1000)
              (Job.Fan_in { workers = 2 });
          ])
   in
   match bad_dep () with
   | () -> Alcotest.fail "self/forward dependency accepted"
   | exception Invalid_argument _ -> ());
  (match Job.make ~deadline:0. ~name:"d" [ Job.stage ~sizes:(fixed 1) Job.Transfer ] with
  | _ -> Alcotest.fail "non-positive deadline accepted"
  | exception Invalid_argument _ -> ());
  match
    Job.make ~name:"w"
      [ Job.stage ~sizes:(fixed 1) (Job.Fan_out { workers = 0 }) ]
  with
  | _ -> Alcotest.fail "zero width accepted"
  | exception Invalid_argument _ -> ()

let test_canonical_shapes () =
  let pa =
    Job.partition_aggregate ~rounds:2 ~name:"pa" ~workers:4
      ~response_sizes:(fixed 10_000) ()
  in
  Alcotest.(check int) "pa stages" 4 (Array.length pa.Job.stages);
  Alcotest.(check int) "pa flows" 16 (Job.flow_count pa);
  Alcotest.(check (array int)) "pa levels" [| 0; 1; 2; 3 |] (Job.levels pa);
  let mr =
    Job.map_reduce ~name:"mr" ~mappers:3 ~reducers:2
      ~shuffle_sizes:(fixed 1000) ~output_sizes:(fixed 1000) ()
  in
  Alcotest.(check int) "mr flows upper bound" 8 (Job.flow_count mr);
  let pipe = Job.pipeline ~name:"p" ~depth:3 ~sizes:(fixed 1000) () in
  Alcotest.(check int) "pipeline flows" 3 (Job.flow_count pipe);
  Alcotest.(check (array int)) "pipeline levels" [| 0; 1; 2 |] (Job.levels pipe)

(* ------------------------------------------------------------------ *)
(* Deadline propagation: job -> stage slices. *)

let test_stage_deadlines_split () =
  (* Fan-out weight = 1 x 2000 B; fan-in weight = 4 x 100 KB. With a
     1 s deadline both slices clear the floor, so they partition the
     job deadline exactly (up to float rounding). *)
  let pa =
    Job.partition_aggregate ~deadline:1.0 ~name:"pa" ~workers:4
      ~response_sizes:(fixed 100_000) ()
  in
  let slices = Job.stage_deadlines pa in
  Alcotest.(check int) "one slice per stage" 2 (Array.length slices);
  let d0 = Option.get slices.(0) and d1 = Option.get slices.(1) in
  Alcotest.(check bool) "fan-in gets the lion's share" true (d1 > 100. *. d0);
  Alcotest.(check bool)
    (Printf.sprintf "slices sum to the job deadline (got %.17g)" (d0 +. d1))
    true
    (abs_float (d0 +. d1 -. 1.0) < 1e-9);
  (* Expected proportional split: w0 = 2000, w1 = 400000. *)
  let w0 = 2000. and w1 = 400_000. in
  Alcotest.(check bool) "proportional to level weight" true
    (abs_float (d0 -. (w0 /. (w0 +. w1))) < 1e-12
    && abs_float (d1 -. (w1 /. (w0 +. w1))) < 1e-12)

let test_stage_deadlines_floor () =
  (* A 10 ms job deadline gives the request stage a ~50 us share,
     clipped up to the 3 ms floor — so the clipped slices exceed the
     job deadline (documented behaviour for very tight jobs). *)
  let pa =
    Job.partition_aggregate ~deadline:0.01 ~name:"pa" ~workers:4
      ~response_sizes:(fixed 100_000) ()
  in
  let slices = Job.stage_deadlines pa in
  let d0 = Option.get slices.(0) and d1 = Option.get slices.(1) in
  Alcotest.(check (float 0.)) "request slice clipped to the floor" 3e-3 d0;
  Alcotest.(check bool) "response slice above floor" true (d1 > 3e-3);
  Alcotest.(check bool) "clipped sum exceeds the job deadline" true
    (d0 +. d1 > 0.01);
  (* A custom floor moves the clip point. *)
  let slices = Job.stage_deadlines ~floor:1e-5 pa in
  let d0 = Option.get slices.(0) in
  Alcotest.(check bool) "smaller floor, smaller clip" true (d0 < 3e-3 && d0 >= 1e-5)

let test_stage_deadlines_none () =
  let pa =
    Job.partition_aggregate ~name:"pa" ~workers:2 ~response_sizes:(fixed 1000) ()
  in
  Array.iter
    (fun s -> Alcotest.(check bool) "no deadline, no slices" true (s = None))
    (Job.stage_deadlines pa)

(* ------------------------------------------------------------------ *)
(* Plan compilation. *)

let tree_hosts () =
  let sim = Sim.create () in
  (Builder.single_rooted_tree ~sim ()).Builder.hosts

let test_compile_sanity () =
  let hosts = tree_hosts () in
  let rng = Rng.create 42 in
  let job =
    Job.map_reduce ~deadline:0.1 ~name:"mr" ~mappers:4 ~reducers:4
      ~shuffle_sizes:(fixed 50_000) ~output_sizes:(fixed 20_000) ()
  in
  let plan = Job_plan.compile ~rng ~hosts ~arrival:0.5 job in
  Alcotest.(check string) "name" "mr" plan.Job_plan.name;
  Alcotest.(check (float 0.)) "arrival" 0.5 plan.Job_plan.arrival;
  Alcotest.(check bool) "within flow-count bound" true
    (Job_plan.flow_count plan <= Job.flow_count job);
  let host_set = Array.to_list hosts in
  Array.iter
    (fun (st : Job_plan.stage_plan) ->
      Array.iter
        (fun (f : Job_plan.flow_site) ->
          Alcotest.(check bool) "src is a host" true (List.mem f.Job_plan.src host_set);
          Alcotest.(check bool) "dst is a host" true (List.mem f.Job_plan.dst host_set);
          Alcotest.(check bool) "no self flow" true (f.Job_plan.src <> f.Job_plan.dst);
          Alcotest.(check bool) "positive size" true (f.Job_plan.size > 0))
        st.Job_plan.flows)
    plan.Job_plan.stages;
  (* Deadlines propagated to every stage of a deadline job. *)
  Array.iter
    (fun (st : Job_plan.stage_plan) ->
      Alcotest.(check bool) "stage deadline present" true
        (st.Job_plan.deadline <> None))
    plan.Job_plan.stages

let test_compile_determinism () =
  let hosts = tree_hosts () in
  let job =
    Job.partition_aggregate ~name:"pa" ~workers:3
      ~response_sizes:(Size_dist.uniform_paper ~mean_bytes:100_000) ()
  in
  let p1 = Job_plan.compile ~rng:(Rng.create 7) ~hosts ~arrival:0. job in
  let p2 = Job_plan.compile ~rng:(Rng.create 7) ~hosts ~arrival:0. job in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2)

let test_compile_too_few_hosts () =
  let hosts = tree_hosts () in
  (* 12 hosts: a master plus 12 workers does not fit. *)
  let job =
    Job.partition_aggregate ~name:"pa" ~workers:12
      ~response_sizes:(fixed 1000) ()
  in
  match Job_plan.compile ~rng:(Rng.create 1) ~hosts ~arrival:0. job with
  | _ -> Alcotest.fail "compile accepted an oversized worker pool"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Job tracker unit tests: a hand-driven trace bus, no simulation. *)

let tracker_fixture ~workers =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let ctx =
    Context.create ~sim ~topo:built.Builder.topo ~rng:(Rng.create 0)
      ~init_rtt:2e-4 ()
  in
  let job =
    Job.partition_aggregate ~deadline:0.5 ~name:"pa" ~workers
      ~response_sizes:(fixed 10_000) ()
  in
  let plan =
    Job_plan.compile ~rng:(Rng.create 3) ~hosts:built.Builder.hosts ~arrival:0.
      job
  in
  let specs = Job_tracker.initial_specs [ plan ] in
  let spawned = ref [] in
  let spawn spec =
    spawned := spec :: !spawned;
    Context.add_flow ctx spec
  in
  (* Register the initial specs so the tracker's id mirror (0..n-1)
     matches the context's assignment, exactly like the runner. *)
  List.iter (fun spec -> ignore (Context.add_flow ctx spec)) specs;
  let tracker = Job_tracker.create ~spawn [ plan ] in
  let clock = ref 0. in
  let bus =
    Trace.create ~clock:(fun () -> !clock) ~sinks:[ Job_tracker.sink tracker ]
  in
  (tracker, bus, clock, spawned, plan)

let test_tracker_injects_on_stage_completion () =
  let tracker, bus, clock, spawned, plan = tracker_fixture ~workers:2 in
  Alcotest.(check int) "nothing spawned yet" 0 (List.length !spawned);
  clock := 1e-3;
  Trace.emit bus (Trace.Flow_completed { flow = 0; fct = 1e-3 });
  Alcotest.(check int) "stage incomplete, no injection" 0 (List.length !spawned);
  clock := 2e-3;
  Trace.emit bus (Trace.Flow_completed { flow = 1; fct = 2e-3 });
  Alcotest.(check int) "fan-in injected when fan-out finished" 2
    (List.length !spawned);
  let stage1 = plan.Job_plan.stages.(1) in
  List.iteri
    (fun i (spec : Context.flow_spec) ->
      Alcotest.(check (float 0.)) "injected at the bus clock" 2e-3
        spec.Context.start;
      Alcotest.(check bool) "carries the stage deadline" true
        (spec.Context.deadline = stage1.Job_plan.deadline);
      ignore i)
    !spawned;
  (* Finish the responses (ids 2 and 3, assigned in spawn order). *)
  clock := 5e-3;
  Trace.emit bus (Trace.Flow_completed { flow = 2; fct = 3e-3 });
  clock := 7e-3;
  Trace.emit bus (Trace.Flow_completed { flow = 3; fct = 5e-3 });
  let report = Job_tracker.report tracker in
  Alcotest.(check int) "job completed" 1 report.Job_metrics.completed;
  let j = report.Job_metrics.jobs.(0) in
  (* JCT is the bus clock of the last terminal event, verbatim. *)
  Alcotest.(check bool) "bit-exact JCT" true (j.Job_metrics.jct = Some 7e-3);
  Alcotest.(check bool) "straggler is the finishing flow" true
    (j.Job_metrics.straggler = Some 3);
  Alcotest.(check bool) "met the 0.5 s deadline" true j.Job_metrics.met_deadline

let test_tracker_unclean_stage_fails_job () =
  let tracker, bus, clock, spawned, _plan = tracker_fixture ~workers:2 in
  clock := 1e-3;
  Trace.emit bus (Trace.Flow_completed { flow = 0; fct = 1e-3 });
  clock := 2e-3;
  Trace.emit bus (Trace.Flow_terminated { flow = 1 });
  Alcotest.(check int) "unclean stage never injects downstream" 0
    (List.length !spawned);
  (* A late duplicate terminal event for flow 1 (the context can emit
     Flow_completed after termination) must not resurrect the stage. *)
  clock := 3e-3;
  Trace.emit bus (Trace.Flow_completed { flow = 1; fct = 3e-3 });
  Alcotest.(check int) "duplicate terminal ignored" 0 (List.length !spawned);
  let report = Job_tracker.report tracker in
  Alcotest.(check int) "job failed" 1 report.Job_metrics.failed;
  let j = report.Job_metrics.jobs.(0) in
  Alcotest.(check bool) "no JCT for a failed job" true (j.Job_metrics.jct = None);
  Alcotest.(check bool) "deadline counted as missed" false
    j.Job_metrics.met_deadline;
  let s1 = j.Job_metrics.stages.(1) in
  Alcotest.(check bool) "downstream stage never injected" true
    (s1.Job_metrics.injected_at = None)

(* ------------------------------------------------------------------ *)
(* End to end: a two-stage partition-aggregate job through the packet
   simulator, with the injection ordering and JCT checked against the
   recorded trace (the ISSUE's acceptance criteria). *)

let jobs_scenario ?(count = 1) ?(width = 4) ?(deadlines = Scenario.No_deadlines)
    ?(seed = 1) protocol =
  Scenario.make ~name:"apps test" ~seed
    ~workload:
      (Scenario.Jobs
         {
           pattern = Scenario.Partition_aggregate;
           count;
           width;
           depth = 1;
           sizes = Scenario.Fixed 50_000;
           deadlines;
           rate = None;
         })
    protocol

let terminal_times events ~flows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (t, ev) ->
      match ev with
      | Trace.Flow_completed { flow; _ }
        when List.mem flow flows && not (Hashtbl.mem tbl flow) ->
          Hashtbl.replace tbl flow t
      | _ -> ())
    events;
  List.map (fun f -> Hashtbl.find tbl f) flows

let admitted_times events ~flows =
  List.filter_map
    (fun (t, ev) ->
      match ev with
      | Trace.Flow_admitted { flow; _ } when List.mem flow flows -> Some t
      | _ -> None)
    events

let test_two_stage_injection_order () =
  let mem = Trace.memory () in
  let telemetry = { Runner.no_telemetry with Runner.sinks = [ mem ] } in
  let result, report =
    Scenario.run_jobs
      ~opts:(Exec_opts.telemetry telemetry)
      (jobs_scenario ~width:4 (Runner.Pdq Pdq_core.Config.full))
  in
  Alcotest.(check int) "4 requests + 4 responses" 8
    (Array.length result.Runner.flows);
  Alcotest.(check int) "all completed" 8 result.Runner.completed;
  let events = Trace.memory_events mem in
  let stage1 = [ 0; 1; 2; 3 ] and stage2 = [ 4; 5; 6; 7 ] in
  let s1_done = terminal_times events ~flows:stage1 in
  let s2_admitted = admitted_times events ~flows:stage2 in
  Alcotest.(check int) "all stage-2 flows admitted" 4 (List.length s2_admitted);
  let max_s1 = List.fold_left max neg_infinity s1_done in
  let min_s2 = List.fold_left min infinity s2_admitted in
  Alcotest.(check bool)
    (Printf.sprintf
       "stage-2 injected only after stage-1 finished (%.6g >= %.6g)" min_s2
       max_s1)
    true (min_s2 >= max_s1);
  (* Injection is synchronous in the sink: the admission instant IS
     the last stage-1 completion instant. *)
  Alcotest.(check bool) "injected at the completion instant" true
    (List.for_all (fun t -> t = max_s1) s2_admitted);
  (* JCT = last flow completion - job arrival, bit-exactly. *)
  let all_done = terminal_times events ~flows:(stage1 @ stage2) in
  let t_last = List.fold_left max neg_infinity all_done in
  let j = report.Job_metrics.jobs.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "bit-exact JCT (%.17g vs %.17g)"
       (Option.value ~default:nan j.Job_metrics.jct)
       (t_last -. j.Job_metrics.arrival))
    true
    (j.Job_metrics.jct = Some (t_last -. j.Job_metrics.arrival));
  Alcotest.(check int) "one completed job" 1 report.Job_metrics.completed

(* The tracker only observes; the measured result must be bit-for-bit
   the plain run's result, and protocols without PDQ scheduling (TCP)
   must drive the same job machinery. *)
let test_jobs_run_matches_plain_run () =
  List.iter
    (fun protocol ->
      let scenario = jobs_scenario ~count:2 ~width:3 protocol in
      let r_plain = Scenario.run scenario in
      let r_jobs, report = Scenario.run_jobs scenario in
      Alcotest.(check bool) "same flows" true
        (r_plain.Runner.flows = r_jobs.Runner.flows);
      Alcotest.(check (float 0.)) "same mean FCT" r_plain.Runner.mean_fct
        r_jobs.Runner.mean_fct;
      Alcotest.(check int) "both jobs completed" 2 report.Job_metrics.completed)
    [ Runner.Pdq Pdq_core.Config.full; Runner.Tcp ]

let test_checked_jobs_report () =
  let c =
    Scenario.run_checked
      (jobs_scenario ~width:3
         ~deadlines:(Scenario.Exp_deadlines { mean = 0.05; floor = 3e-3 })
         (Runner.Pdq Pdq_core.Config.full))
  in
  (match c.Scenario.job_report with
  | None -> Alcotest.fail "checked jobs run carries no job report"
  | Some report ->
      Alcotest.(check int) "job completed under --check" 1
        report.Job_metrics.completed);
  let c = Scenario.run_checked (jobs_scenario ~width:3 Runner.Tcp) in
  Alcotest.(check bool) "tcp checked run has a report too" true
    (c.Scenario.job_report <> None)

let test_non_jobs_has_no_report () =
  let scenario =
    Scenario.make ~name:"plain"
      ~workload:
        (Scenario.Synthetic
           {
             pattern = Scenario.Aggregation;
             flows = 3;
             sizes = Scenario.Fixed 50_000;
             deadlines = Scenario.No_deadlines;
           })
      Runner.Tcp
  in
  let c = Scenario.run_checked scenario in
  Alcotest.(check bool) "no job report on a flow workload" true
    (c.Scenario.job_report = None);
  let _, report = Scenario.run_jobs scenario in
  Alcotest.(check int) "empty report" 0 (Array.length report.Job_metrics.jobs)

(* Sweep determinism: the job machinery must be independent of the
   worker-domain count. *)
let test_sweep_determinism () =
  let scenario =
    jobs_scenario ~count:2 ~width:3
      ~deadlines:(Scenario.Exp_deadlines { mean = 0.02; floor = 3e-3 })
      (Runner.Pdq Pdq_core.Config.full)
  in
  let scenarios = List.map (Scenario.with_seed scenario) [ 1; 2; 3 ] in
  let run s = Scenario.run_jobs s in
  let r1 = Sweep.map ~jobs:1 run scenarios in
  let r2 = Sweep.map ~jobs:2 run scenarios in
  List.iter2
    (fun (ra, rep_a) (rb, rep_b) ->
      Alcotest.(check bool) "same flow results" true
        (ra.Runner.flows = rb.Runner.flows);
      Alcotest.(check bool) "same job outcomes" true
        (rep_a.Job_metrics.jobs = rep_b.Job_metrics.jobs))
    r1 r2

(* ------------------------------------------------------------------ *)
(* Arrivals and metrics plumbing. *)

let test_poisson_n () =
  let ts =
    Pdq_workload.Arrivals.poisson_n ~rng:(Rng.create 5) ~rate:200. ~n:100
  in
  Alcotest.(check int) "exactly n arrivals" 100 (List.length ts);
  Alcotest.(check bool) "sorted, nonnegative" true
    (List.sort compare ts = ts && List.for_all (fun t -> t >= 0.) ts);
  let last = List.nth ts 99 in
  (* 100 arrivals at 200/s: expect ~0.5 s, loose statistical bounds. *)
  Alcotest.(check bool)
    (Printf.sprintf "plausible span (got %.3f)" last)
    true
    (last > 0.2 && last < 1.2);
  Alcotest.(check int) "n = 0" 0
    (List.length (Pdq_workload.Arrivals.poisson_n ~rng:(Rng.create 5) ~rate:1. ~n:0))

let test_job_arrivals () =
  let hosts = tree_hosts () in
  let job ~index =
    Job.partition_aggregate
      ~name:(Printf.sprintf "j%d" index)
      ~workers:2 ~response_sizes:(fixed 1000) ()
  in
  let plans =
    Job_arrivals.plans ~rng:(Rng.create 1) ~hosts ~count:3 ~job ()
  in
  Alcotest.(check int) "3 plans" 3 (List.length plans);
  List.iter
    (fun (p : Job_plan.t) ->
      Alcotest.(check (float 0.)) "simultaneous by default" 0. p.Job_plan.arrival)
    plans;
  let plans =
    Job_arrivals.plans ~rng:(Rng.create 1) ~hosts ~rate:100. ~count:3 ~job ()
  in
  let arrivals = List.map (fun (p : Job_plan.t) -> p.Job_plan.arrival) plans in
  Alcotest.(check bool) "poisson arrivals increase" true
    (List.sort compare arrivals = arrivals)

let test_metrics_json () =
  let _, report =
    Scenario.run_jobs
      (jobs_scenario ~width:2
         ~deadlines:(Scenario.Exp_deadlines { mean = 0.05; floor = 3e-3 })
         (Runner.Pdq Pdq_core.Config.full))
  in
  let json = Job_metrics.to_json report in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json mentions the job" true
    (contains json {|"name"|} && contains json "job");
  Alcotest.(check bool) "summary is one line" true
    (not (String.contains (Job_metrics.summary report) '\n'))

let suites =
  [
    ( "apps.job",
      [
        Alcotest.test_case "validation" `Quick test_job_validation;
        Alcotest.test_case "canonical shapes" `Quick test_canonical_shapes;
        Alcotest.test_case "deadline split" `Quick test_stage_deadlines_split;
        Alcotest.test_case "deadline floor clip" `Quick test_stage_deadlines_floor;
        Alcotest.test_case "no deadline" `Quick test_stage_deadlines_none;
      ] );
    ( "apps.plan",
      [
        Alcotest.test_case "compile sanity" `Quick test_compile_sanity;
        Alcotest.test_case "compile determinism" `Quick test_compile_determinism;
        Alcotest.test_case "too few hosts" `Quick test_compile_too_few_hosts;
      ] );
    ( "apps.tracker",
      [
        Alcotest.test_case "injects on stage completion" `Quick
          test_tracker_injects_on_stage_completion;
        Alcotest.test_case "unclean stage fails the job" `Quick
          test_tracker_unclean_stage_fails_job;
      ] );
    ( "apps.run",
      [
        Alcotest.test_case "two-stage injection order" `Quick
          test_two_stage_injection_order;
        Alcotest.test_case "jobs run matches plain run" `Quick
          test_jobs_run_matches_plain_run;
        Alcotest.test_case "checked run carries the report" `Quick
          test_checked_jobs_report;
        Alcotest.test_case "non-jobs workloads" `Quick test_non_jobs_has_no_report;
        Alcotest.test_case "sweep determinism" `Quick test_sweep_determinism;
      ] );
    ( "apps.arrivals",
      [
        Alcotest.test_case "poisson_n" `Quick test_poisson_n;
        Alcotest.test_case "job arrivals" `Quick test_job_arrivals;
        Alcotest.test_case "metrics json" `Quick test_metrics_json;
      ] );
  ]
