(* Chaos harness: exact plan/case JSON round-trips, adversary
   transparency and duplicate-delivery safety, and the fuzz → shrink →
   replay pipeline on the seeded allocator bug. *)

module Rng = Pdq_engine.Rng
module Config = Pdq_core.Config
module Header = Pdq_core.Header
module Switch_port = Pdq_core.Switch_port
module Flow_list = Pdq_core.Flow_list
module Link = Pdq_net.Link
module Fault_plan = Pdq_faults.Fault_plan
module Runner = Pdq_transport.Runner
module Scenario = Pdq_exec.Scenario
module Task = Pdq_exec.Task
module Adversary_plan = Pdq_chaos.Adversary_plan
module Adversary = Pdq_chaos.Adversary
module Fuzzer = Pdq_chaos.Fuzzer

(* ------------------------------------------------------------------ *)
(* Exact JSON round-trips (QCheck) *)

let gen_node = QCheck.Gen.int_bound 15
let gen_prob = QCheck.Gen.float_bound_inclusive 1.
let gen_span = QCheck.Gen.float_bound_inclusive 0.05

let gen_adversary_event =
  let open QCheck.Gen in
  oneof
    [
      map3
        (fun a b (p, hold) -> Adversary_plan.Reorder { a; b; p; hold })
        gen_node gen_node (pair gen_prob gen_span);
      map3 (fun a b p -> Adversary_plan.Duplicate { a; b; p }) gen_node gen_node
        gen_prob;
      map3 (fun a b p -> Adversary_plan.Corrupt { a; b; p }) gen_node gen_node
        gen_prob;
      map3
        (fun a b max_delay -> Adversary_plan.Jitter { a; b; max_delay })
        gen_node gen_node gen_span;
      map2 (fun a b -> Adversary_plan.Clear { a; b }) gen_node gen_node;
      map2
        (fun switch skew -> Adversary_plan.Clock_skew { switch; skew })
        gen_node
        (map (fun x -> x -. 2e-3) (float_bound_inclusive 4e-3));
    ]

let gen_fault_event =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun a b -> Fault_plan.Link_down { a; b }) gen_node gen_node;
      map2 (fun a b -> Fault_plan.Link_up { a; b }) gen_node gen_node;
      map3
        (fun a b (loss, duration) -> Fault_plan.Loss_burst { a; b; loss; duration })
        gen_node gen_node (pair gen_prob gen_span);
      map3
        (fun a b (p_gb, p_bg, loss_good, loss_bad) ->
          Fault_plan.Gilbert_loss
            { a; b; ge = { Link.p_gb; p_bg; loss_good; loss_bad } })
        gen_node gen_node
        (quad gen_prob gen_prob gen_prob gen_prob);
      map2 (fun a b -> Fault_plan.Clear_loss { a; b }) gen_node gen_node;
      map (fun n -> Fault_plan.Switch_reboot n) gen_node;
    ]

let timed ev_gen = QCheck.Gen.(pair (float_bound_inclusive 5.) ev_gen)

let arb_adversary_plan =
  QCheck.make
    ~print:(fun p -> Adversary_plan.to_json p)
    QCheck.Gen.(map Adversary_plan.of_events
                  (list_size (0 -- 12) (timed gen_adversary_event)))

let arb_fault_plan =
  QCheck.make
    ~print:(fun p -> Fault_plan.to_json p)
    QCheck.Gen.(map Fault_plan.of_events
                  (list_size (0 -- 12) (timed gen_fault_event)))

let qcheck_adversary_roundtrip =
  QCheck.Test.make ~name:"adversary plan JSON round-trips exactly" ~count:300
    arb_adversary_plan (fun p ->
      match Adversary_plan.of_json (Adversary_plan.to_json p) with
      | Ok p' -> Adversary_plan.events p' = Adversary_plan.events p
      | Error _ -> false)

let qcheck_fault_roundtrip =
  QCheck.Test.make ~name:"fault plan JSON round-trips exactly" ~count:300
    arb_fault_plan (fun p ->
      match Fault_plan.of_json (Fault_plan.to_json p) with
      | Ok p' -> Fault_plan.events p' = Fault_plan.events p
      | Error _ -> false)

(* Cases as the fuzzer itself draws them — nested plans included —
   must survive the counterexample-artifact round trip, and the
   checkpoint key must be a function of the JSON form alone. *)
let test_case_roundtrip () =
  let cases = Fuzzer.cases ~runs:12 ~seed:5 () in
  Alcotest.(check int) "campaign size" 12 (List.length cases);
  List.iter
    (fun c ->
      match Fuzzer.case_of_json (Fuzzer.case_to_json c) with
      | Error e -> Alcotest.failf "case_of_json: %s" e
      | Ok c' ->
          Alcotest.(check bool) "case round-trips exactly" true (c = c');
          Alcotest.(check string) "key stable" (Fuzzer.key c) (Fuzzer.key c'))
    cases

let test_case_of_json_strict () =
  (match Fuzzer.case_of_json "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Fuzzer.case_of_json "{\"protocol\":\"pdq\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a truncated case"

(* ------------------------------------------------------------------ *)
(* Adversary semantics *)

let base_case =
  {
    Fuzzer.protocol = "pdq";
    topo = "tree";
    pattern = "pairs";
    flows = 6;
    mean_bytes = 60_000;
    deadlines = true;
    seed = 11;
    horizon = 0.4;
    faults = Fault_plan.empty;
    adversary = Adversary_plan.empty;
  }

let run_ok c =
  match Fuzzer.run_case c with
  | Ok ch -> ch
  | Error e -> Alcotest.failf "run_case: %s" e

let same_result (a : Runner.result) (b : Runner.result) =
  a.Runner.flows = b.Runner.flows
  && a.Runner.mean_fct = b.Runner.mean_fct
  && a.Runner.application_throughput = b.Runner.application_throughput
  && a.Runner.counters = b.Runner.counters
  && a.Runner.sim_end = b.Runner.sim_end

(* A duplicated SYN reaching the same port twice must not register the
   flow twice (the receiver-side guard for this is the Rx_buffer seq
   dedup; this is the switch-side guard). *)
let test_dup_syn_single_entry () =
  let port =
    Switch_port.create ~config:Config.full ~switch_id:7 ~link_rate:1e9
      ~init_rtt:1.5e-4 ()
  in
  let h () = Header.make ~rate:1e9 ~expected_tx_time:1e-3 ~rtt:1.5e-4 () in
  Switch_port.process_forward port (h ()) ~flow_id:1 ~now:0.;
  Switch_port.process_forward port (h ()) ~flow_id:1 ~now:1e-5;
  Alcotest.(check int) "one stored entry" 1
    (Flow_list.length (Switch_port.flow_list port));
  Alcotest.(check (list string)) "port consistent" []
    (Switch_port.invariant_errors port)

(* End to end: aggressive duplication on every cable of a healthy PDQ
   run must not trip any monitor — duplicates are deduplicated at the
   receiver and re-registration is idempotent at the switch. *)
let test_duplicate_storm_clean () =
  let cables, _, _ = Fuzzer.targets_of_case base_case in
  let c =
    {
      base_case with
      Fuzzer.adversary = Adversary_plan.degrade ~links:cables ~duplicate:0.5 ();
    }
  in
  let ch = run_ok c in
  Alcotest.(check int) "no violations" 0
    (List.length ch.Scenario.violations);
  Alcotest.(check bool) "flows completed" true (ch.Scenario.result.Runner.completed > 0)

(* A wrapped link whose conditions are all inactive must be
   bit-transparent: a plan holding only a [Clear] event gives the same
   run as no adversary at all (and consumes no randomness). *)
let test_inactive_wrapper_transparent () =
  let cables, _, _ = Fuzzer.targets_of_case base_case in
  let a, b = List.hd cables in
  let cleared =
    {
      base_case with
      Fuzzer.adversary =
        Adversary_plan.of_events [ (0., Adversary_plan.Clear { a; b }) ];
    }
  in
  let r0 = (run_ok base_case).Scenario.result in
  let r1 = (run_ok cleared).Scenario.result in
  Alcotest.(check bool) "bit-identical run" true (same_result r0 r1)

let test_case_run_deterministic () =
  let cables, _, switches = Fuzzer.targets_of_case base_case in
  let rng = Rng.create 21 in
  let c =
    {
      base_case with
      Fuzzer.adversary =
        Adversary_plan.random rng ~cables ~switches ~until:base_case.Fuzzer.horizon
          ~intensity:0.5 ~count:6;
    }
  in
  let a = run_ok c and b = run_ok c in
  Alcotest.(check bool) "same case, same run" true
    (same_result a.Scenario.result b.Scenario.result);
  Alcotest.(check bool) "same violations" true
    (a.Scenario.violations = b.Scenario.violations)

(* ------------------------------------------------------------------ *)
(* Fuzz → shrink → replay *)

let test_campaign_deterministic_and_clean () =
  let run () = Fuzzer.fuzz ~runs:4 ~seed:9 () in
  let c1 = run () and c2 = run () in
  Alcotest.(check bool) "same cases" true (c1.Fuzzer.cases = c2.Fuzzer.cases);
  Alcotest.(check bool) "same verdicts" true
    (c1.Fuzzer.verdicts = c2.Fuzzer.verdicts);
  (match Fuzzer.first_violation c1 with
  | None -> ()
  | Some (i, _, inv) ->
      Alcotest.failf "healthy campaign violated %s in case %d" inv i);
  List.iter
    (function
      | Task.Ok _ -> ()
      | _ -> Alcotest.fail "campaign task did not complete")
    c1.Fuzzer.verdicts

let test_canary_found_shrunk_replayed () =
  let campaign =
    Fuzzer.fuzz ~runs:4 ~seed:3 ~protocols:[ "pdq-broken" ] ()
  in
  match Fuzzer.first_violation campaign with
  | None -> Alcotest.fail "fuzzer missed the seeded allocator bug"
  | Some (_, case, invariant) ->
      let s = Fuzzer.shrink ~budget:60 case ~invariant in
      Alcotest.(check string) "shrink holds the violation fixed" invariant
        s.Fuzzer.invariant;
      Alcotest.(check bool) "shrinker stayed in budget" true
        (s.Fuzzer.runs_used <= 60);
      let plan_size c =
        Fault_plan.length c.Fuzzer.faults
        + Adversary_plan.length c.Fuzzer.adversary
      in
      Alcotest.(check bool) "minimal is no larger" true
        (plan_size s.Fuzzer.minimal <= plan_size s.Fuzzer.original);
      (* The shrunk case must replay to the same violation from its
         JSON form — the artifact the CLI writes with --repro-out. *)
      let replayed =
        match Fuzzer.case_of_json (Fuzzer.case_to_json s.Fuzzer.minimal) with
        | Ok c -> c
        | Error e -> Alcotest.failf "repro did not parse: %s" e
      in
      Alcotest.(check (option string)) "replay reproduces" (Some invariant)
        (Fuzzer.signature (run_ok replayed))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "chaos.plan_json",
      qsuite [ qcheck_fault_roundtrip; qcheck_adversary_roundtrip ]
      @ [
          Alcotest.test_case "fuzzer cases round-trip" `Quick
            test_case_roundtrip;
          Alcotest.test_case "case_of_json is strict" `Quick
            test_case_of_json_strict;
        ] );
    ( "chaos.adversary",
      [
        Alcotest.test_case "dup SYN registers once" `Quick
          test_dup_syn_single_entry;
        Alcotest.test_case "duplicate storm stays clean" `Quick
          test_duplicate_storm_clean;
        Alcotest.test_case "inactive wrapper is transparent" `Quick
          test_inactive_wrapper_transparent;
        Alcotest.test_case "case runs are deterministic" `Quick
          test_case_run_deterministic;
      ] );
    ( "chaos.fuzzer",
      [
        Alcotest.test_case "healthy campaign deterministic and clean" `Quick
          test_campaign_deterministic_and_clean;
        Alcotest.test_case "canary found, shrunk, replayed" `Quick
          test_canary_found_shrunk_replayed;
      ] );
  ]
