(* Tests for pdq_check: invariant monitors (streaming and end-of-run),
   the broken-allocator fixture, oracle bounds, fidelity bands. *)

module Runner = Pdq_transport.Runner
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Config = Pdq_core.Config
module Trace = Pdq_telemetry.Trace
module Invariants = Pdq_check.Invariants
module Report = Pdq_check.Report
module Oracle = Pdq_check.Oracle
module Fixtures = Pdq_check.Fixtures
module Fidelity = Pdq_check.Fidelity

let agg ?topo ?(flows = 8) ?(deadlines = true) protocol =
  Scenario.make ?topo ~horizon:5.
    ~workload:
      (Scenario.Synthetic
         {
           pattern = Scenario.Aggregation;
           flows;
           sizes = Scenario.Uniform_paper { mean_bytes = 100_000 };
           deadlines =
             (if deadlines then
                Scenario.Exp_deadlines { mean = 0.02; floor = 3e-3 }
              else Scenario.No_deadlines);
         })
    protocol

let has_invariant inv vs =
  List.exists (fun (v : Report.violation) -> v.Report.invariant = inv) vs

let check_clean name (c : Scenario.checked) =
  if c.Scenario.violations <> [] then
    Alcotest.failf "%s: unexpected violations:@ %a" name Report.pp_list
      c.Scenario.violations

(* ------------------------------------------------------------------ *)
(* Honest runs validate; oracle bounds hold per flow. *)

let test_honest_run_clean () =
  let c = Scenario.run_checked (agg (Runner.Pdq Config.full)) in
  check_clean "PDQ(Full)" c;
  Array.iter
    (fun (b : Oracle.flow_bound) ->
      match b.Oracle.fct with
      | Some fct ->
          if b.Oracle.bound > fct +. 1e-9 then
            Alcotest.failf "oracle bound %.6g above simulated FCT %.6g"
              b.Oracle.bound fct
      | None -> ())
    c.Scenario.oracle.Oracle.bounds;
  let gap = c.Scenario.oracle.Oracle.gap in
  if Float.is_nan gap || gap < 1. then
    Alcotest.failf "emulation gap %.3g should be >= 1 (SJF is a lower bound)"
      gap

(* Per-seed monitors are self-contained, so a checked sweep is domain-
   safe: four protocols fanned over four domains all validate. *)
let test_honest_sweep_clean_parallel () =
  let scenarios =
    [
      agg (Runner.Pdq Config.full);
      agg ~topo:(Scenario.Bottleneck { senders = 8 }) (Runner.Pdq Config.basic);
      agg ~topo:(Scenario.Bcube { n = 2; k = 3 }) (Runner.mpdq ~subflows:2 ());
      agg ~deadlines:false (Runner.Pdq Config.es);
    ]
  in
  let checked = Sweep.map ~jobs:4 Scenario.run_checked scenarios in
  List.iteri (fun i c -> check_clean (Printf.sprintf "scenario %d" i) c) checked

(* The deliberately broken rate allocator (Early Start horizon so large
   every flow is granted the full line rate at once) must be caught by
   the switch-side capacity monitor. *)
let test_broken_allocator_caught () =
  let c =
    Scenario.run_checked (agg ~flows:12 (Runner.Pdq Fixtures.broken_allocator))
  in
  if c.Scenario.violations = [] then
    Alcotest.fail "broken allocator produced no violations";
  Alcotest.(check bool)
    "capacity invariant fired" true
    (has_invariant "capacity" c.Scenario.violations)

(* ------------------------------------------------------------------ *)
(* Streaming checks against a synthetic trace stream. *)

let feed events =
  let m = Invariants.create () in
  let now = ref 0. in
  let bus = Trace.create ~clock:(fun () -> !now) ~sinks:[ Invariants.sink m ] in
  List.iter
    (fun (t, ev) ->
      now := t;
      Trace.emit bus ev)
    events;
  m

let admitted ?deadline ~flow ~size () =
  Trace.Flow_admitted { flow; src = 0; dst = 1; size; deadline }

let test_rx_overflow_flagged () =
  let m =
    feed
      [
        (0., admitted ~flow:0 ~size:1_000 ());
        (1e-3, Trace.Flow_rx { flow = 0; bytes = 600 });
        (2e-3, Trace.Flow_rx { flow = 0; bytes = 600 });
      ]
  in
  Alcotest.(check bool)
    "byte overflow flagged" true
    (has_invariant "bytes" (Invariants.violations m))

let test_negative_rate_flagged () =
  let m =
    feed
      [
        (0., admitted ~flow:0 ~size:1_000 ());
        (1e-3, Trace.Flow_rate_set { flow = 0; rate = -5. });
      ]
  in
  Alcotest.(check bool)
    "negative rate flagged" true
    (has_invariant "capacity" (Invariants.violations m))

let test_unknown_flow_ignored () =
  (* M-PDQ attributes rx to subflow ids outside the experiment space:
     events for unadmitted flows must not crash or report. *)
  let m = feed [ (1e-3, Trace.Flow_rx { flow = 42; bytes = 600 }) ] in
  Alcotest.(check int) "no violations" 0 (List.length (Invariants.violations m))

(* ------------------------------------------------------------------ *)
(* End-of-run checks against tampered results. *)

let built_run scenario =
  let built, specs, options = Scenario.build scenario in
  let r =
    Runner.execute ~options ~topo:built.Pdq_topo.Builder.topo
      scenario.Scenario.protocol specs
  in
  (built.Pdq_topo.Builder.topo, r)

let test_met_deadline_disagreement_flagged () =
  let topo, r = built_run (agg (Runner.Pdq Config.full)) in
  let tampered =
    {
      r with
      Runner.flows =
        Array.map
          (fun (fr : Runner.flow_result) ->
            match (fr.Runner.fct, fr.Runner.spec.Pdq_transport.Context.deadline) with
            | Some _, Some _ ->
                { fr with Runner.met_deadline = not fr.Runner.met_deadline }
            | _ -> fr)
          r.Runner.flows;
    }
  in
  let m = Invariants.create () in
  let vs = Invariants.finalize m ~result:tampered ~topo in
  Alcotest.(check bool)
    "met_deadline disagreement flagged" true (has_invariant "deadline" vs)

let test_feasible_early_termination_flagged () =
  let topo, r = built_run (agg (Runner.Pdq Config.full)) in
  (* Pretend flow 0 was early-terminated at t = 1 ms with a deadline a
     full second away: trivially feasible, so ET was wrong. *)
  let m = Invariants.create () in
  let now = ref 0. in
  let bus = Trace.create ~clock:(fun () -> !now) ~sinks:[ Invariants.sink m ] in
  Trace.emit bus (admitted ~flow:0 ~size:100_000 ~deadline:1.0 ());
  now := 1e-3;
  Trace.emit bus (Trace.Flow_terminated { flow = 0 });
  let vs = Invariants.finalize m ~result:r ~topo in
  Alcotest.(check bool)
    "feasible early termination flagged" true
    (List.exists
       (fun (v : Report.violation) ->
         v.Report.invariant = "deadline"
         && v.Report.entity = "flow 0")
       vs)

(* ------------------------------------------------------------------ *)
(* Fidelity bands. *)

let test_fidelity_eval () =
  let b =
    Fidelity.band ~id:"t.x" ~figure:"t" ~metric:"m" ~lo:1. ~hi:2.
  in
  Alcotest.(check bool) "in band" true (Fidelity.eval b 1.5).Fidelity.ok;
  Alcotest.(check bool) "below" false (Fidelity.eval b 0.99).Fidelity.ok;
  Alcotest.(check bool) "above" false (Fidelity.eval b 2.01).Fidelity.ok;
  Alcotest.(check bool) "nan fails" false (Fidelity.eval b nan).Fidelity.ok;
  Alcotest.(check bool)
    "all_ok" true
    (Fidelity.all_ok [ Fidelity.eval b 1.; Fidelity.eval b 2. ])

let suites =
  [
    ( "check.invariants",
      [
        Alcotest.test_case "honest run clean + oracle bound" `Quick
          test_honest_run_clean;
        Alcotest.test_case "checked sweep clean on 4 domains" `Quick
          test_honest_sweep_clean_parallel;
        Alcotest.test_case "broken allocator caught" `Quick
          test_broken_allocator_caught;
        Alcotest.test_case "rx overflow flagged" `Quick test_rx_overflow_flagged;
        Alcotest.test_case "negative rate flagged" `Quick
          test_negative_rate_flagged;
        Alcotest.test_case "unknown flow ignored" `Quick
          test_unknown_flow_ignored;
        Alcotest.test_case "met_deadline disagreement flagged" `Quick
          test_met_deadline_disagreement_flagged;
        Alcotest.test_case "feasible early termination flagged" `Quick
          test_feasible_early_termination_flagged;
      ] );
    ( "check.fidelity",
      [ Alcotest.test_case "band eval" `Quick test_fidelity_eval ] );
  ]
