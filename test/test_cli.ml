(* In-process tests of the pdq_sim command line: one case per exit
   status of the documented discipline (0 ok, 3 fault-aborted, 4
   invariant violation, 5 timed-out, 6 supervised-sweep failure,
   124 usage error). *)

let eval args = Pdq_cli.eval ~argv:(Array.of_list ("pdq_sim" :: args)) ()

(* Assert through the [Exit_code] variant, not bare integers: the test
   then breaks if a subcommand stops mapping its outcome through the
   discipline. *)
module Exit_code = Pdq_cli.Exit_code

let code = Exit_code.to_int

(* The variant and its integer view must stay a bijection, and every
   documented code must describe itself. *)
let test_exit_code_module () =
  List.iter
    (fun c ->
      (match Exit_code.of_int (code c) with
      | Some c' -> Alcotest.(check bool) "of_int inverts to_int" true (c = c')
      | None -> Alcotest.fail "of_int lost a code");
      Alcotest.(check bool) "describe nonempty" true
        (String.length (Exit_code.describe c) > 0))
    Exit_code.all;
  Alcotest.(check (option reject)) "2 is outside the discipline" None
    (Exit_code.of_int 2);
  Alcotest.(check int) "usage error is cmdliner's 124" 124
    (code Exit_code.Usage)

let test_ok () =
  Alcotest.(check int) "clean run exits 0" (code Exit_code.Ok) (eval [ "--flows"; "4" ])

let test_check_ok () =
  Alcotest.(check int) "validated run exits 0" (code Exit_code.Ok)
    (eval [ "--flows"; "6"; "--check" ])

let test_usage_error () =
  Alcotest.(check int) "unknown flag" (code Exit_code.Usage) (eval [ "--no-such-flag" ]);
  Alcotest.(check int) "unknown protocol" (code Exit_code.Usage) (eval [ "--proto"; "carrier-pigeon" ]);
  Alcotest.(check int) "unknown topology" (code Exit_code.Usage) (eval [ "--topo"; "moebius" ]);
  Alcotest.(check int) "--checkpoint with --check" (code Exit_code.Usage)
    (eval [ "--check"; "--checkpoint"; "x.jsonl" ]);
  Alcotest.(check int) "negative --retries" (code Exit_code.Usage) (eval [ "--retries"; "-1" ]);
  Alcotest.(check int) "unknown workload" (code Exit_code.Usage)
    (eval [ "--workload"; "sorcery" ]);
  Alcotest.(check int) "unknown job pattern" (code Exit_code.Usage)
    (eval [ "--workload"; "jobs"; "--job-pattern"; "gossip" ])

let test_list_workloads () =
  Alcotest.(check int) "--list-workloads exits 0" (code Exit_code.Ok)
    (eval [ "--list-workloads" ])

let test_jobs_workload () =
  Alcotest.(check int) "jobs run exits 0" (code Exit_code.Ok)
    (eval [ "--workload"; "jobs"; "--job-count"; "1"; "--fan-in"; "2" ]);
  Alcotest.(check int) "jobs run with --check exits 0" (code Exit_code.Ok)
    (eval
       [ "--workload"; "jobs"; "--job-count"; "1"; "--fan-in"; "2"; "--check" ]);
  let path = Filename.temp_file "pdq_job_metrics" ".json" in
  let rc =
    eval
      [
        "--workload"; "jobs"; "--job-count"; "2"; "--fan-in"; "2";
        "--job-metrics-out"; path;
      ]
  in
  Alcotest.(check int) "job-metrics run exits 0" (code Exit_code.Ok) rc;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "metrics file is a JSON object" true
    (String.length line > 0 && line.[0] = '{')

(* Aggressive link flapping with a repair time far beyond the horizon
   cuts every path for good: the watchdogs abort and the process must
   say so. Deterministic for the fixed seed. *)
let fault_args =
  [
    "--flows"; "8"; "--mean-size"; "2000"; "--no-deadlines";
    "--flap-mtbf"; "0.002"; "--flap-mttr"; "30"; "--fault-until"; "5";
  ]

let test_fault_aborted () =
  Alcotest.(check int) "fault-aborted run exits 3" (code Exit_code.Fault_aborted) (eval fault_args)

let test_fault_aborted_sweep () =
  Alcotest.(check int) "fault-aborted sweep exits 3" (code Exit_code.Fault_aborted)
    (eval (fault_args @ [ "--seeds"; "1,2"; "--jobs"; "2" ]))

let test_invariant_violation () =
  Alcotest.(check int) "broken allocator exits 4" (code Exit_code.Invariant_violation)
    (eval [ "--proto"; "pdq-broken"; "--check"; "--flows"; "12" ])

(* Violations dominate aborts: a broken allocator under path-cutting
   faults still reports 4, not 3. *)
let test_violation_dominates_abort () =
  Alcotest.(check int) "violation takes precedence" (code Exit_code.Invariant_violation)
    (eval ([ "--proto"; "pdq-broken"; "--check" ] @ fault_args))

let test_check_out_written () =
  let path = Filename.temp_file "pdq_violations" ".jsonl" in
  let rc =
    eval [ "--proto"; "pdq-broken"; "--check-out"; path; "--flows"; "12" ]
  in
  Alcotest.(check int) "--check-out implies --check"
    (code Exit_code.Invariant_violation)
    rc;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "JSONL report written" true
    (String.length first > 0 && first.[0] = '{')

(* A 100-event budget cuts any real run short: a supervised sweep
   where every seed times out must exit 5, and a budgeted single run
   likewise. *)
let test_timed_out_sweep () =
  Alcotest.(check int) "budgeted sweep exits 5" (code Exit_code.Timed_out)
    (eval [ "--flows"; "4"; "--seeds"; "1,2"; "--max-events"; "100";
            "--keep-going" ])

let test_timed_out_single () =
  Alcotest.(check int) "budgeted single run exits 5" (code Exit_code.Timed_out)
    (eval [ "--flows"; "4"; "--max-events"; "100" ])

(* Checkpoint a 2-seed sweep, then resume it widened to 4 seeds: the
   resumed sweep must succeed and leave a checkpoint covering all
   seeds. *)
let test_checkpoint_resume_flow () =
  let path = Filename.temp_file "pdq_cli_ck" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Alcotest.(check int) "checkpointed sweep exits 0" (code Exit_code.Ok)
    (eval [ "--flows"; "4"; "--seeds"; "1,2"; "--keep-going";
            "--checkpoint"; path ]);
  Alcotest.(check int) "resumed (widened) sweep exits 0" (code Exit_code.Ok)
    (eval [ "--flows"; "4"; "--seeds"; "1,2,3,4"; "--resume"; path ]);
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "checkpoint holds all four seeds" 4 !lines

let test_report_out_written () =
  let path = Filename.temp_file "pdq_cli_report" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Alcotest.(check int) "supervised sweep exits 0" (code Exit_code.Ok)
    (eval [ "--flows"; "4"; "--seeds"; "1,2"; "--timeout"; "60";
            "--report-out"; path ]);
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check bool) "JSON report written" true
    (String.length first > 0 && first.[0] = '{')

let suites =
  [
    ( "cli.exit_codes",
      [
        Alcotest.test_case "exit-code discipline" `Quick
          test_exit_code_module;
        Alcotest.test_case "ok" `Quick test_ok;
        Alcotest.test_case "ok with --check" `Quick test_check_ok;
        Alcotest.test_case "usage errors" `Quick test_usage_error;
        Alcotest.test_case "list workloads" `Quick test_list_workloads;
        Alcotest.test_case "jobs workload" `Quick test_jobs_workload;
        Alcotest.test_case "fault-aborted" `Quick test_fault_aborted;
        Alcotest.test_case "fault-aborted sweep" `Quick test_fault_aborted_sweep;
        Alcotest.test_case "invariant violation" `Quick test_invariant_violation;
        Alcotest.test_case "violation dominates abort" `Quick
          test_violation_dominates_abort;
        Alcotest.test_case "check-out report" `Quick test_check_out_written;
        Alcotest.test_case "timed-out sweep" `Quick test_timed_out_sweep;
        Alcotest.test_case "timed-out single run" `Quick test_timed_out_single;
        Alcotest.test_case "checkpoint then resume" `Quick
          test_checkpoint_resume_flow;
        Alcotest.test_case "report-out" `Quick test_report_out_written;
      ] );
  ]
