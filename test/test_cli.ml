(* In-process tests of the pdq_sim command line: one case per exit
   status of the documented discipline (0 ok, 3 fault-aborted, 4
   invariant violation, 124 usage error). *)

let eval args = Pdq_cli.eval ~argv:(Array.of_list ("pdq_sim" :: args)) ()

let test_ok () =
  Alcotest.(check int) "clean run exits 0" 0 (eval [ "--flows"; "4" ])

let test_check_ok () =
  Alcotest.(check int) "validated run exits 0" 0
    (eval [ "--flows"; "6"; "--check" ])

let test_usage_error () =
  Alcotest.(check int) "unknown flag" 124 (eval [ "--no-such-flag" ]);
  Alcotest.(check int) "unknown protocol" 124 (eval [ "--proto"; "carrier-pigeon" ]);
  Alcotest.(check int) "unknown topology" 124 (eval [ "--topo"; "moebius" ])

(* Aggressive link flapping with a repair time far beyond the horizon
   cuts every path for good: the watchdogs abort and the process must
   say so. Deterministic for the fixed seed. *)
let fault_args =
  [
    "--flows"; "8"; "--mean-size"; "2000"; "--no-deadlines";
    "--flap-mtbf"; "0.002"; "--flap-mttr"; "30"; "--fault-until"; "5";
  ]

let test_fault_aborted () =
  Alcotest.(check int) "fault-aborted run exits 3" 3 (eval fault_args)

let test_fault_aborted_sweep () =
  Alcotest.(check int) "fault-aborted sweep exits 3" 3
    (eval (fault_args @ [ "--seeds"; "1,2"; "--jobs"; "2" ]))

let test_invariant_violation () =
  Alcotest.(check int) "broken allocator exits 4" 4
    (eval [ "--proto"; "pdq-broken"; "--check"; "--flows"; "12" ])

(* Violations dominate aborts: a broken allocator under path-cutting
   faults still reports 4, not 3. *)
let test_violation_dominates_abort () =
  Alcotest.(check int) "violation takes precedence" 4
    (eval ([ "--proto"; "pdq-broken"; "--check" ] @ fault_args))

let test_check_out_written () =
  let path = Filename.temp_file "pdq_violations" ".jsonl" in
  let code =
    eval [ "--proto"; "pdq-broken"; "--check-out"; path; "--flows"; "12" ]
  in
  Alcotest.(check int) "--check-out implies --check" 4 code;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "JSONL report written" true
    (String.length first > 0 && first.[0] = '{')

let suites =
  [
    ( "cli.exit_codes",
      [
        Alcotest.test_case "ok" `Quick test_ok;
        Alcotest.test_case "ok with --check" `Quick test_check_ok;
        Alcotest.test_case "usage errors" `Quick test_usage_error;
        Alcotest.test_case "fault-aborted" `Quick test_fault_aborted;
        Alcotest.test_case "fault-aborted sweep" `Quick test_fault_aborted_sweep;
        Alcotest.test_case "invariant violation" `Quick test_invariant_violation;
        Alcotest.test_case "violation dominates abort" `Quick
          test_violation_dominates_abort;
        Alcotest.test_case "check-out report" `Quick test_check_out_written;
      ] );
  ]
