(* Tests for pdq_core: criticality, flow list, switch port (Algorithms
   1-3), sender state machine, configs. *)

module Config = Pdq_core.Config
module Header = Pdq_core.Header
module Criticality = Pdq_core.Criticality
module Flow_state = Pdq_core.Flow_state
module Flow_list = Pdq_core.Flow_list
module Switch_port = Pdq_core.Switch_port
module Sender = Pdq_core.Sender
module Units = Pdq_engine.Units

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)
let gbps = Units.gbps 1.

let key ?deadline ~ttx ~id () =
  { Criticality.deadline; expected_tx_time = ttx; flow_id = id }

(* ------------------------------------------------------------------ *)
(* Criticality *)

let test_crit_edf_first () =
  (* Smaller deadline wins regardless of size. *)
  let a = key ~deadline:1. ~ttx:100. ~id:2 () in
  let b = key ~deadline:2. ~ttx:0.001 ~id:1 () in
  Alcotest.(check bool) "EDF dominates SJF" true (Criticality.more_critical a b)

let test_crit_deadline_outranks_no_deadline () =
  let a = key ~deadline:100. ~ttx:10. ~id:2 () in
  let b = key ~ttx:0.001 ~id:1 () in
  Alcotest.(check bool) "deadline flow outranks" true
    (Criticality.more_critical a b)

let test_crit_sjf_tiebreak () =
  let a = key ~ttx:1. ~id:2 () in
  let b = key ~ttx:2. ~id:1 () in
  Alcotest.(check bool) "smaller expected tx time wins" true
    (Criticality.more_critical a b)

let test_crit_id_tiebreak () =
  let a = key ~ttx:1. ~id:1 () in
  let b = key ~ttx:1. ~id:2 () in
  Alcotest.(check bool) "flow id breaks remaining ties" true
    (Criticality.more_critical a b);
  Alcotest.(check int) "self-comparison is equal" 0 (Criticality.compare a a)

let test_crit_aging () =
  (* T/2^(alpha * t/100ms): waiting 200 ms at rate 1 divides by 4. *)
  let aged =
    Criticality.aged_tx_time ~aging_rate:1. ~wait:0.2 ~expected_tx_time:8.
  in
  if not (feq 2. aged) then Alcotest.failf "aged ttx %g, expected 2." aged;
  (* An old large flow eventually outranks a young small one. *)
  let old_big = (key ~ttx:8. ~id:1 (), 0.) in
  let young_small = (key ~ttx:1. ~id:2 (), 1.) in
  Alcotest.(check bool) "aging promotes the old flow" true
    (Criticality.compare_aged ~aging_rate:1. ~now:1. old_big young_small < 0)

let test_crit_equal_deadline_tiebreak () =
  (* Equal deadlines fall through to SJF... *)
  let a = key ~deadline:1. ~ttx:2. ~id:1 () in
  let b = key ~deadline:1. ~ttx:1. ~id:9 () in
  Alcotest.(check bool) "equal deadlines -> SJF decides" true
    (Criticality.more_critical b a);
  (* ...and a full tie on deadline and size to the flow id. *)
  let c = key ~deadline:1. ~ttx:1. ~id:2 () in
  Alcotest.(check bool) "full tie -> lower id wins" true
    (Criticality.more_critical c b);
  Alcotest.(check bool) "tie-break is antisymmetric" false
    (Criticality.more_critical b c)

let prop_crit_total_order =
  QCheck.Test.make ~name:"criticality is a strict total order" ~count:300
    QCheck.(
      triple (option (float_bound_exclusive 10.)) (float_bound_exclusive 10.)
        small_nat)
    (fun (d, ttx, id) ->
      let a = { Criticality.deadline = d; expected_tx_time = ttx; flow_id = id } in
      let b = key ~deadline:5. ~ttx:5. ~id:3 () in
      let ab = Criticality.compare a b and ba = Criticality.compare b a in
      (ab = 0) = (ba = 0) && (ab > 0) = (ba < 0))

(* ------------------------------------------------------------------ *)
(* Flow_list *)

let state ?deadline ~id ~ttx () =
  Flow_state.create ?deadline ~flow_id:id ~expected_tx_time:ttx ~rtt:1.5e-4
    ~now:0. ()

let test_flow_list_sorted_insert () =
  let l = Flow_list.create () in
  ignore (Flow_list.insert l (state ~id:1 ~ttx:3. ()));
  ignore (Flow_list.insert l (state ~id:2 ~ttx:1. ()));
  ignore (Flow_list.insert l (state ~id:3 ~ttx:2. ()));
  Alcotest.(check bool) "sorted" true (Flow_list.is_sorted l);
  Alcotest.(check int) "most critical first" 2 (Flow_list.get l 0).Flow_state.flow_id;
  Alcotest.(check int) "least critical last" 1
    (match Flow_list.least_critical l with
    | Some s -> s.Flow_state.flow_id
    | None -> -1)

let test_flow_list_find_remove () =
  let l = Flow_list.create () in
  ignore (Flow_list.insert l (state ~id:1 ~ttx:3. ()));
  ignore (Flow_list.insert l (state ~id:2 ~ttx:1. ()));
  (match Flow_list.find l 1 with
  | Some (i, s) ->
      Alcotest.(check int) "index" 1 i;
      Alcotest.(check int) "id" 1 s.Flow_state.flow_id
  | None -> Alcotest.fail "find");
  (match Flow_list.remove l 1 with
  | Some s -> Alcotest.(check int) "removed" 1 s.Flow_state.flow_id
  | None -> Alcotest.fail "remove");
  Alcotest.(check int) "length" 1 (Flow_list.length l);
  Alcotest.(check bool) "gone" false (Flow_list.mem l 1)

let test_flow_list_reposition () =
  let l = Flow_list.create () in
  let s1 = state ~id:1 ~ttx:1. () and s2 = state ~id:2 ~ttx:2. () in
  ignore (Flow_list.insert l s1);
  ignore (Flow_list.insert l s2);
  (* Flow 1 drains more slowly than expected; now less critical. *)
  s1.Flow_state.expected_tx_time <- 5.;
  ignore (Flow_list.reposition l 1);
  Alcotest.(check bool) "sorted after reposition" true (Flow_list.is_sorted l);
  Alcotest.(check int) "flow 2 now first" 2 (Flow_list.get l 0).Flow_state.flow_id

let test_flow_list_sending_count () =
  let l = Flow_list.create () in
  let s1 = state ~id:1 ~ttx:1. () and s2 = state ~id:2 ~ttx:2. () in
  ignore (Flow_list.insert l s1);
  ignore (Flow_list.insert l s2);
  Alcotest.(check int) "none sending initially" 0 (Flow_list.sending_count l);
  s1.Flow_state.rate <- 1e9;
  Alcotest.(check int) "one sending" 1 (Flow_list.sending_count l);
  if not (feq 1e9 (Flow_list.total_rate l)) then Alcotest.fail "total rate"

let test_flow_list_empty_probes () =
  (* Every read-only probe must be total on the empty list (the
     validation monitor calls them on freshly rebooted ports). *)
  let l = Flow_list.create () in
  Alcotest.(check int) "length" 0 (Flow_list.length l);
  Alcotest.(check bool) "is_empty" true (Flow_list.is_empty l);
  Alcotest.(check bool) "sorted" true (Flow_list.is_sorted l);
  Alcotest.(check bool) "least_critical" true (Flow_list.least_critical l = None);
  Alcotest.(check bool) "find" true (Flow_list.find l 0 = None);
  Alcotest.(check bool) "remove" true (Flow_list.remove l 0 = None);
  Alcotest.(check bool) "remove_least_critical" true
    (Flow_list.remove_least_critical l = None);
  Alcotest.(check bool) "mem" false (Flow_list.mem l 0);
  Alcotest.(check int) "sending_count" 0 (Flow_list.sending_count l);
  if not (feq 0. (Flow_list.total_rate l)) then Alcotest.fail "total_rate";
  Flow_list.iteri (fun _ _ -> Alcotest.fail "iteri on empty") l;
  Alcotest.(check int) "fold" 0 (Flow_list.fold (fun n _ -> n + 1) 0 l)

let prop_flow_list_sorted =
  QCheck.Test.make ~name:"flow list stays sorted under inserts" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (pair (float_bound_exclusive 10.) bool))
    (fun entries ->
      let l = Flow_list.create () in
      List.iteri
        (fun i (ttx, has_deadline) ->
          let deadline = if has_deadline then Some (ttx *. 2.) else None in
          ignore (Flow_list.insert l (state ?deadline ~id:i ~ttx ())))
        entries;
      Flow_list.is_sorted l && Flow_list.length l = List.length entries)

(* ------------------------------------------------------------------ *)
(* Switch_port: Algorithms 1-3 *)

let mk_port ?(config = Config.full) () =
  Switch_port.create ~config ~switch_id:99 ~link_rate:gbps ~init_rtt:1.5e-4 ()

let mk_header ?deadline ?(rate = gbps) ?(ttx = 1e-3) () =
  Header.make ?deadline ~rate ~expected_tx_time:ttx ~rtt:1.5e-4 ()

let test_port_accepts_first_flow () =
  let port = mk_port () in
  let h = mk_header () in
  Switch_port.process_forward port h ~flow_id:1 ~now:0.;
  Alcotest.(check bool) "accepted (not paused)" true (h.Header.pause_by = None);
  if not (feq gbps h.Header.rate) then
    Alcotest.failf "full line rate, got %g" h.Header.rate

let test_port_pauses_second_flow () =
  let port = mk_port () in
  let h1 = mk_header ~ttx:1e-3 () in
  Switch_port.process_forward port h1 ~flow_id:1 ~now:0.;
  (* ACK confirms acceptance so flow 1 holds the bandwidth (R_1 > 0). *)
  Switch_port.process_reverse port h1 ~flow_id:1 ~now:1e-4;
  (* A longer flow must be paused: all bandwidth is taken and it is not
     nearly-completed. *)
  let h2 = mk_header ~ttx:10. () in
  Switch_port.process_forward port h2 ~flow_id:2 ~now:2e-4;
  Alcotest.(check bool) "paused by this switch" true
    (h2.Header.pause_by = Some 99)

let test_port_preemption () =
  let port = mk_port () in
  (* A long flow is accepted and sending... *)
  let h1 = mk_header ~ttx:10. () in
  Switch_port.process_forward port h1 ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h1 ~flow_id:1 ~now:1e-4;
  (* ...then a more critical (much shorter) flow arrives: it preempts. *)
  let h2 = mk_header ~ttx:0.5 () in
  Switch_port.process_forward port h2 ~flow_id:2 ~now:1.;
  Alcotest.(check bool) "short flow accepted" true (h2.Header.pause_by = None);
  Switch_port.process_reverse port h2 ~flow_id:2 ~now:1.0001;
  (* The long flow's next packet gets paused. *)
  let h1' = mk_header ~ttx:10. () in
  Switch_port.process_forward port h1' ~flow_id:1 ~now:1.001;
  Alcotest.(check bool) "long flow preempted" true (h1'.Header.pause_by = Some 99)

let test_port_edf_preempts_sjf () =
  let port = mk_port () in
  let h1 = mk_header ~ttx:0.001 () in
  Switch_port.process_forward port h1 ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h1 ~flow_id:1 ~now:1e-4;
  (* Deadline flow outranks the shorter no-deadline flow. *)
  let h2 = mk_header ~deadline:1. ~ttx:0.1 () in
  Switch_port.process_forward port h2 ~flow_id:2 ~now:0.001;
  Alcotest.(check bool) "deadline flow accepted" true (h2.Header.pause_by = None)

let test_port_respects_upstream_pause () =
  let port = mk_port () in
  let h = mk_header () in
  h.Header.pause_by <- Some 7;
  Switch_port.process_forward port h ~flow_id:1 ~now:0.;
  Alcotest.(check bool) "upstream pause untouched" true (h.Header.pause_by = Some 7);
  Alcotest.(check int) "not stored" 0 (Flow_list.length (Switch_port.flow_list port))

let test_port_reverse_commits_rate () =
  let port = mk_port () in
  let h = mk_header () in
  Switch_port.process_forward port h ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h ~flow_id:1 ~now:1e-4;
  match Flow_list.find (Switch_port.flow_list port) 1 with
  | Some (_, s) ->
      Alcotest.(check bool) "rate committed" true (s.Flow_state.rate > 0.);
      Alcotest.(check bool) "unpaused" true (s.Flow_state.pause_by = None)
  | None -> Alcotest.fail "flow should be stored"

let test_port_reverse_zeroes_paused_rate () =
  let port = mk_port () in
  let h = mk_header () in
  h.Header.pause_by <- Some 99;
  h.Header.rate <- gbps;
  Switch_port.process_reverse port h ~flow_id:5 ~now:0.;
  if not (feq 0. h.Header.rate) then Alcotest.fail "paused ACK must carry rate 0"

let test_port_early_start () =
  let config = Config.full in
  let port = mk_port ~config () in
  (* Flow 1: nearly completed (will finish within K=2 RTTs). *)
  let rtt = 1.5e-4 in
  let h1 = mk_header ~ttx:(0.5 *. rtt) () in
  Switch_port.process_forward port h1 ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h1 ~flow_id:1 ~now:1e-5;
  (* Flow 2 should be early-started: flow 1 is nearly done. *)
  let h2 = mk_header ~ttx:1. () in
  Switch_port.process_forward port h2 ~flow_id:2 ~now:2e-5;
  Alcotest.(check bool) "early start accepts next flow" true
    (h2.Header.pause_by = None)

let test_port_no_early_start_in_basic () =
  let port = mk_port ~config:Config.basic () in
  let rtt = 1.5e-4 in
  let h1 = mk_header ~ttx:(0.5 *. rtt) () in
  Switch_port.process_forward port h1 ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h1 ~flow_id:1 ~now:1e-5;
  let h2 = mk_header ~ttx:1. () in
  Switch_port.process_forward port h2 ~flow_id:2 ~now:2e-5;
  Alcotest.(check bool) "basic PDQ does not early-start" true
    (h2.Header.pause_by = Some 99)

let test_port_suppressed_probing () =
  let port = mk_port () in
  (* Store three flows; flows 2 and 3 paused. *)
  List.iteri
    (fun i ttx ->
      let h = mk_header ~ttx () in
      Switch_port.process_forward port h ~flow_id:(i + 1) ~now:0.;
      Switch_port.process_reverse port h ~flow_id:(i + 1) ~now:1e-5)
    [ 10.; 20.; 30. ];
  (* ACK of the third flow (index 2): inter-probe = X * 2 = 0.4. *)
  let h = mk_header ~ttx:30. () in
  h.Header.pause_by <- Some 99;
  Switch_port.process_reverse port h ~flow_id:3 ~now:2e-5;
  if not (feq 0.4 h.Header.inter_probe_rtts) then
    Alcotest.failf "inter-probe %g, expected 0.4" h.Header.inter_probe_rtts

let test_port_rate_controller_drains_queue () =
  let port = mk_port () in
  Switch_port.update_rate_controller port ~queue_bytes:0 ~now:0.;
  if not (feq gbps (Switch_port.available_rate port)) then
    Alcotest.fail "empty queue: C = line rate";
  (* A standing queue lowers C by q/(2 RTT); one MTU of queue (the
     packet in service) is tolerated. *)
  Switch_port.update_rate_controller port ~queue_bytes:15000 ~now:1e-3;
  let expected = gbps -. (13500. *. 8. /. (2. *. Switch_port.rtt_avg port)) in
  if not (feq expected (Switch_port.available_rate port)) then
    Alcotest.failf "C = %g, expected %g" (Switch_port.available_rate port) expected

let test_port_rcp_fallback () =
  (* Hard memory bound of 2: the third flow falls back to RCP. *)
  let config = { Config.full with Config.max_list_size = 2; min_list_size = 1 } in
  let port = mk_port ~config () in
  List.iteri
    (fun i ttx ->
      let h = mk_header ~ttx () in
      Switch_port.process_forward port h ~flow_id:(i + 1) ~now:0.;
      Switch_port.process_reverse port h ~flow_id:(i + 1) ~now:1e-5)
    [ 1.; 2. ];
  let h3 = mk_header ~ttx:30. () in
  Switch_port.process_forward port h3 ~flow_id:3 ~now:2e-5;
  Alcotest.(check int) "fallback population" 1
    (Switch_port.fallback_flow_count port);
  Alcotest.(check int) "list capped" 2
    (Flow_list.length (Switch_port.flow_list port))

let test_port_term_removes () =
  let port = mk_port () in
  let h = mk_header () in
  Switch_port.process_forward port h ~flow_id:1 ~now:0.;
  Alcotest.(check int) "stored" 1 (Flow_list.length (Switch_port.flow_list port));
  Switch_port.remove_flow port 1 ~now:1e-4;
  Alcotest.(check int) "removed" 0 (Flow_list.length (Switch_port.flow_list port))

let test_port_stale_purge () =
  let port = mk_port () in
  let h = mk_header () in
  Switch_port.process_forward port h ~flow_id:1 ~now:0.;
  (* Long silence (lost TERM): rate-controller tick purges the entry. *)
  Switch_port.update_rate_controller port ~queue_bytes:0 ~now:10.;
  Alcotest.(check int) "stale flow purged" 0
    (Flow_list.length (Switch_port.flow_list port))

let prop_port_pause_or_rate =
  QCheck.Test.make
    ~name:"forward pass either pauses or grants positive rate" ~count:300
    QCheck.(list_of_size Gen.(1 -- 20) (float_bound_exclusive 10.))
    (fun ttxs ->
      let port = mk_port () in
      List.iteri
        (fun i ttx ->
          let h = mk_header ~ttx:(ttx +. 1e-6) () in
          Switch_port.process_forward port h ~flow_id:i ~now:(float_of_int i *. 1e-3);
          ignore (h.Header.pause_by <> None || h.Header.rate > 0.))
        ttxs;
      Flow_list.is_sorted (Switch_port.flow_list port))

(* ------------------------------------------------------------------ *)
(* Sender *)

let mk_sender ?deadline ?(size = 100_000) () =
  Sender.create ?deadline ~flow_id:1 ~size_bytes:size ~max_rate:gbps
    ~init_rtt:1.5e-4 ()

let test_sender_initial_state () =
  let s = mk_sender () in
  Alcotest.(check bool) "starts paused" true (Sender.is_paused s);
  Alcotest.(check int) "remaining" 100_000 (Sender.remaining_bytes s);
  (* T_S = size / max rate = 800 us. *)
  if not (feq 8e-4 (Sender.expected_tx_time s)) then Alcotest.fail "T_S"

let test_sender_header_carries_max_rate () =
  let s = mk_sender () in
  let h = Sender.make_header s ~t:0. in
  if not (feq gbps h.Header.rate) then
    Alcotest.fail "R_H must be the maximal rate, not the current rate"

let test_sender_ack_feedback () =
  let s = mk_sender () in
  let h = Sender.make_header s ~t:0. in
  h.Header.rate <- 5e8;
  Sender.on_ack s h ~acked_bytes:50_000 ~rtt_sample:(Some 2e-4) ~now:1e-3;
  if not (feq 5e8 (Sender.rate s)) then Alcotest.fail "rate follows feedback";
  Alcotest.(check int) "remaining updated" 50_000 (Sender.remaining_bytes s);
  Alcotest.(check bool) "not paused" true (not (Sender.is_paused s))

let test_sender_pause_feedback () =
  let s = mk_sender () in
  let h = Sender.make_header s ~t:0. in
  h.Header.pause_by <- Some 4;
  h.Header.rate <- 0.;
  h.Header.inter_probe_rtts <- 3.;
  Sender.on_ack s h ~acked_bytes:0 ~rtt_sample:None ~now:1e-3;
  Alcotest.(check bool) "paused" true (Sender.is_paused s);
  Alcotest.(check bool) "paused by 4" true (Sender.paused_by s = Some 4);
  (* Inter-probe interval = I_S * RTT_S = 3 RTTs. *)
  if not (feq (3. *. Sender.rtt s) (Sender.inter_probe_interval s)) then
    Alcotest.fail "inter-probe interval"

let test_sender_early_termination_rules () =
  (* Rule 1/2: remaining transmission time exceeds time to deadline. *)
  let s = mk_sender ~deadline:1.0 ~size:10_000_000 () in
  Alcotest.(check bool) "infeasible at t=0.99" true
    (Sender.should_terminate s ~now:0.99);
  Alcotest.(check bool) "feasible early" false
    (Sender.should_terminate s ~now:0.5);
  (* Rule 1: past deadline. *)
  Alcotest.(check bool) "past deadline" true (Sender.should_terminate s ~now:1.1);
  (* Rule 3: paused and deadline within one RTT. *)
  let s3 = mk_sender ~deadline:1.0 ~size:10_000 () in
  Alcotest.(check bool) "paused near deadline" true
    (Sender.should_terminate s3 ~now:(1.0 -. 1e-4));
  (* No deadline: never terminates early. *)
  let s4 = mk_sender () in
  Alcotest.(check bool) "no deadline" false (Sender.should_terminate s4 ~now:100.)

let test_sender_finished () =
  let s = mk_sender ~size:1000 () in
  let h = Sender.make_header s ~t:0. in
  Sender.on_ack s h ~acked_bytes:1000 ~rtt_sample:None ~now:1e-3;
  Alcotest.(check bool) "finished" true (Sender.finished s)

let test_sender_resize () =
  let s = mk_sender ~size:1000 () in
  Sender.set_size s ~size:5000 ~acked:0;
  Alcotest.(check int) "remaining grows" 5000 (Sender.remaining_bytes s);
  Sender.set_size s ~size:200 ~acked:200;
  Alcotest.(check bool) "finished after shrink" true (Sender.finished s)

let test_port_pause_accept_stability () =
  let port = mk_port () in
  (* Flow 1 holds the bandwidth... *)
  let h1 = mk_header ~ttx:1. () in
  Switch_port.process_forward port h1 ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h1 ~flow_id:1 ~now:1e-4;
  (* ...so a longer flow stays paused on every consecutive header
     instead of flapping accept/pause as its own headers traverse. *)
  for i = 1 to 4 do
    let h2 = mk_header ~ttx:10. () in
    Switch_port.process_forward port h2 ~flow_id:2 ~now:(float_of_int i *. 1e-3);
    Alcotest.(check bool)
      (Printf.sprintf "header %d paused" i)
      true
      (h2.Header.pause_by = Some 99);
    Switch_port.process_reverse port h2 ~flow_id:2
      ~now:((float_of_int i *. 1e-3) +. 1e-4)
  done;
  (* The holder is never paused by the flapping candidate. *)
  let h1' = mk_header ~ttx:1. () in
  Switch_port.process_forward port h1' ~flow_id:1 ~now:5e-3;
  Alcotest.(check bool) "holder keeps sending" true (h1'.Header.pause_by = None);
  Alcotest.(check int) "exactly one sender" 1
    (Flow_list.sending_count (Switch_port.flow_list port))

let test_port_invariant_errors_clean () =
  let port = mk_port () in
  let h = mk_header ~ttx:1. () in
  Switch_port.process_forward port h ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h ~flow_id:1 ~now:1e-4;
  Alcotest.(check (list string)) "healthy port self-checks clean" []
    (Switch_port.invariant_errors port)

let test_port_mature_rate_sum () =
  (* A committed sender far from finishing counts fully against the
     line rate; a nearly-finished one (ttx under the paper's 4-RTT
     Early Start allowance) is excused. *)
  let port = mk_port () in
  let h = mk_header ~ttx:10. () in
  Switch_port.process_forward port h ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h ~flow_id:1 ~now:1e-4;
  if not (feq ~eps:1e-6 gbps (Switch_port.mature_rate_sum port)) then
    Alcotest.failf "mature flow counted, got %g" (Switch_port.mature_rate_sum port);
  let young = mk_port () in
  let hy = mk_header ~ttx:1e-4 () in
  Switch_port.process_forward young hy ~flow_id:1 ~now:0.;
  Switch_port.process_reverse young hy ~flow_id:1 ~now:1e-4;
  if not (feq ~eps:1e-6 0. (Switch_port.mature_rate_sum young)) then
    Alcotest.failf "nearly-finished flow excused, got %g"
      (Switch_port.mature_rate_sum young)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_variants () =
  Alcotest.(check string) "basic" "PDQ(Basic)" (Config.name Config.basic);
  Alcotest.(check string) "es" "PDQ(ES)" (Config.name Config.es);
  Alcotest.(check string) "es+et" "PDQ(ES+ET)" (Config.name Config.es_et);
  Alcotest.(check string) "full" "PDQ(Full)" (Config.name Config.full);
  let k4 = Config.with_k Config.full 4. in
  if not (feq 4. k4.Config.k_early_start) then Alcotest.fail "with_k"

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "core.criticality",
      [
        Alcotest.test_case "EDF first" `Quick test_crit_edf_first;
        Alcotest.test_case "deadline outranks none" `Quick
          test_crit_deadline_outranks_no_deadline;
        Alcotest.test_case "SJF tiebreak" `Quick test_crit_sjf_tiebreak;
        Alcotest.test_case "id tiebreak" `Quick test_crit_id_tiebreak;
        Alcotest.test_case "aging (Fig 12)" `Quick test_crit_aging;
        Alcotest.test_case "equal-deadline tie-break" `Quick
          test_crit_equal_deadline_tiebreak;
      ]
      @ qsuite [ prop_crit_total_order ] );
    ( "core.flow_list",
      [
        Alcotest.test_case "sorted insert" `Quick test_flow_list_sorted_insert;
        Alcotest.test_case "find/remove" `Quick test_flow_list_find_remove;
        Alcotest.test_case "reposition" `Quick test_flow_list_reposition;
        Alcotest.test_case "sending count" `Quick test_flow_list_sending_count;
        Alcotest.test_case "empty-list probes" `Quick test_flow_list_empty_probes;
      ]
      @ qsuite [ prop_flow_list_sorted ] );
    ( "core.switch_port",
      [
        Alcotest.test_case "accept first flow" `Quick test_port_accepts_first_flow;
        Alcotest.test_case "pause second flow" `Quick test_port_pauses_second_flow;
        Alcotest.test_case "preemption" `Quick test_port_preemption;
        Alcotest.test_case "EDF preempts SJF" `Quick test_port_edf_preempts_sjf;
        Alcotest.test_case "upstream pause respected" `Quick
          test_port_respects_upstream_pause;
        Alcotest.test_case "pause/accept stability" `Quick
          test_port_pause_accept_stability;
        Alcotest.test_case "invariant self-checks clean" `Quick
          test_port_invariant_errors_clean;
        Alcotest.test_case "mature rate sum" `Quick test_port_mature_rate_sum;
        Alcotest.test_case "reverse commits rate" `Quick
          test_port_reverse_commits_rate;
        Alcotest.test_case "reverse zeroes paused rate" `Quick
          test_port_reverse_zeroes_paused_rate;
        Alcotest.test_case "early start" `Quick test_port_early_start;
        Alcotest.test_case "no early start in basic" `Quick
          test_port_no_early_start_in_basic;
        Alcotest.test_case "suppressed probing" `Quick test_port_suppressed_probing;
        Alcotest.test_case "rate controller drains queue" `Quick
          test_port_rate_controller_drains_queue;
        Alcotest.test_case "RCP fallback beyond M" `Quick test_port_rcp_fallback;
        Alcotest.test_case "TERM removes state" `Quick test_port_term_removes;
        Alcotest.test_case "stale purge" `Quick test_port_stale_purge;
      ]
      @ qsuite [ prop_port_pause_or_rate ] );
    ( "core.sender",
      [
        Alcotest.test_case "initial state" `Quick test_sender_initial_state;
        Alcotest.test_case "header carries max rate" `Quick
          test_sender_header_carries_max_rate;
        Alcotest.test_case "ack feedback" `Quick test_sender_ack_feedback;
        Alcotest.test_case "pause feedback" `Quick test_sender_pause_feedback;
        Alcotest.test_case "early termination rules" `Quick
          test_sender_early_termination_rules;
        Alcotest.test_case "finished" `Quick test_sender_finished;
        Alcotest.test_case "resize (M-PDQ)" `Quick test_sender_resize;
      ] );
    ("core.config", [ Alcotest.test_case "variants" `Quick test_config_variants ]);
  ]
