(* Tests for pdq_engine: heap, simulator, RNG, stats, series, units. *)

module Heap = Pdq_engine.Heap
module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Stats = Pdq_engine.Stats
module Series = Pdq_engine.Series
module Units = Pdq_engine.Units

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)

let check_float msg expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 5.; 1.; 3.; 2.; 4. ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (p, _) ->
        out := p :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-9)))
    "sorted ascending" [ 1.; 2.; 3.; 4.; 5. ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i name -> Heap.push h (if i = 1 then 1. else 1.) name)
    [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_growth () =
  let h = Heap.create ~capacity:2 () in
  for i = 999 downto 0 do
    Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  for i = 0 to 999 do
    match Heap.pop h with
    | Some (_, v) -> Alcotest.(check int) "pop order" i v
    | None -> Alcotest.fail "heap exhausted early"
  done

let test_heap_peek_stable () =
  let h = Heap.create () in
  Heap.push h 2. "two";
  Heap.push h 1. "one";
  (match Heap.peek h with
  | Some (p, v) ->
      check_float "peek prio" 1. p;
      Alcotest.(check string) "peek value" "one" v
  | None -> Alcotest.fail "peek");
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

(* The event core against a reference model: under arbitrary
   interleavings of schedule and cancel — including slot reuse after
   cancellation — surviving events must fire in exactly sorted
   (time, schedule-order) order. *)
let prop_sim_schedule_cancel_model =
  QCheck.Test.make ~name:"sim pop order matches reference model" ~count:300
    QCheck.(list (pair (int_bound 2) (float_bound_exclusive 100.)))
    (fun ops ->
      let sim = Sim.create () in
      let fired = ref [] in
      let model = ref [] in
      let handles = ref [] in
      let next_id = ref 0 in
      List.iter
        (fun (op, time) ->
          if op <= 1 then begin
            let id = !next_id in
            incr next_id;
            let h =
              Sim.schedule_at sim ~time (fun () -> fired := id :: !fired)
            in
            handles := (id, h) :: !handles;
            model := (time, id) :: !model
          end
          else
            (* Cancel the oldest tracked handle so later schedules
               reuse its slot. *)
            match List.rev !handles with
            | [] -> ()
            | (id, h) :: _ ->
                Sim.cancel sim h;
                handles := List.filter (fun (i, _) -> i <> id) !handles;
                model := List.filter (fun (_, i) -> i <> id) !model)
        ops;
      Sim.run sim;
      let expect =
        List.stable_sort
          (fun (ta, ia) (tb, ib) ->
            match compare ta tb with 0 -> compare ia ib | c -> c)
          (List.rev !model)
        |> List.map snd
      in
      List.rev !fired = expect)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p p) prios;
      let rec drain acc =
        match Heap.pop h with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare prios)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:0.3 (fun () -> log := 3 :: !log));
  ignore (Sim.schedule sim ~delay:0.1 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~delay:0.2 (fun () -> log := 2 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "events in time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 0.3 (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:0.1 (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  Alcotest.(check bool) "cancelled" true (Sim.cancelled sim h)

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Sim.schedule sim ~delay:1. tick)
  in
  ignore (Sim.schedule sim ~delay:0. tick);
  Sim.run ~until:5.5 sim;
  Alcotest.(check int) "events up to horizon" 6 !count;
  check_float "clock parked at horizon" 5.5 (Sim.now sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1. (fun () ->
         log := "outer" :: !log;
         ignore (Sim.schedule sim ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_float "final time" 1.5 (Sim.now sim)

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count = 3 then Sim.stop sim else ignore (Sim.schedule sim ~delay:1. tick)
  in
  ignore (Sim.schedule sim ~delay:0. tick);
  Sim.run ~until:100. sim;
  Alcotest.(check int) "stopped after three" 3 !count

let test_sim_live_pending () =
  let sim = Sim.create () in
  let h1 = Sim.schedule sim ~delay:0.1 (fun () -> ()) in
  let _h2 = Sim.schedule sim ~delay:0.2 (fun () -> ()) in
  let _h3 = Sim.schedule sim ~delay:0.3 (fun () -> ()) in
  Alcotest.(check int) "pending counts all" 3 (Sim.pending sim);
  Alcotest.(check int) "live_pending counts all" 3 (Sim.live_pending sim);
  Sim.cancel sim h1;
  (* The cancelled placeholder stays on the heap until popped: pending
     still sees it, live_pending does not. *)
  Alcotest.(check int) "pending keeps placeholder" 3 (Sim.pending sim);
  Alcotest.(check int) "live_pending drops placeholder" 2 (Sim.live_pending sim);
  Sim.cancel sim h1;
  Alcotest.(check int) "double cancel counted once" 2 (Sim.live_pending sim);
  Sim.run sim;
  Alcotest.(check int) "empty after run" 0 (Sim.pending sim);
  Alcotest.(check int) "live empty after run" 0 (Sim.live_pending sim)

(* Regression: scheduling at exactly the current instant is legal and
   fires after everything already queued at that time (ties break by
   sequence order). *)
let test_sim_schedule_at_now () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:0. (fun () -> log := "t0" :: !log));
  ignore
    (Sim.schedule sim ~delay:1. (fun () ->
         log := "a" :: !log;
         ignore
           (Sim.schedule_at sim ~time:(Sim.now sim) (fun () ->
                log := "c" :: !log))));
  ignore (Sim.schedule_at sim ~time:1. (fun () -> log := "b" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "now-events fire last at their instant"
    [ "t0"; "a"; "b"; "c" ] (List.rev !log);
  check_float "clock" 1. (Sim.now sim)

(* Cancellation recycles the slot immediately; a stale handle must
   never affect the event that reused its slot. *)
let test_sim_slot_reuse () =
  let sim = Sim.create () in
  let fired = ref [] in
  let h1 = Sim.schedule sim ~delay:0.1 (fun () -> fired := 1 :: !fired) in
  Sim.cancel sim h1;
  let _h2 = Sim.schedule sim ~delay:0.2 (fun () -> fired := 2 :: !fired) in
  Sim.cancel sim h1 (* stale: must be a no-op *);
  Alcotest.(check bool) "stale handle reads cancelled" true
    (Sim.cancelled sim h1);
  Sim.run sim;
  Alcotest.(check (list int)) "only the live event fired" [ 2 ]
    (List.rev !fired)

let test_kind_interning () =
  let a = Sim.Kind.register "test.kind.a" in
  let a' = Sim.Kind.register "test.kind.a" in
  let b = Sim.Kind.register "test.kind.b" in
  Alcotest.(check bool) "same label same id" true (Sim.Kind.equal a a');
  Alcotest.(check bool) "different labels differ" false (Sim.Kind.equal a b);
  Alcotest.(check string) "name round-trips" "test.kind.a" (Sim.Kind.name a);
  Alcotest.(check string) "unlabeled name" "(unlabeled)"
    (Sim.Kind.name Sim.Kind.unlabeled)

(* The schedule/pop path must not allocate: a self-rescheduling timer
   with a preallocated closure should see (amortised) zero minor words
   per event. *)
let test_sim_alloc_free () =
  let sim = Sim.create () in
  let n = 50_000 in
  let remaining = ref n in
  let tick = ref (fun () -> ()) in
  (tick :=
     fun () ->
       if !remaining > 0 then begin
         decr remaining;
         ignore (Sim.schedule sim ~delay:1e-6 !tick)
       end);
  ignore (Sim.schedule sim ~delay:0. !tick);
  let w0 = Gc.minor_words () in
  Sim.run sim;
  let per_event = (Gc.minor_words () -. w0) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "minor words per event < 2 (got %.3f)" per_event)
    true
    (per_event < 2.)

let test_sim_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1. (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Sim.schedule sim ~delay:(-1.) (fun () -> ())));
  match
    try
      ignore (Sim.schedule_at sim ~time:0.5 (fun () -> ()));
      `No_exn
    with Invalid_argument _ -> `Raised
  with
  | `Raised -> ()
  | `No_exn -> Alcotest.fail "schedule_at in the past must raise"

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.float a and xb = Rng.float b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:0.02
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean ~0.02 (got %g)" mean)
    true
    (abs_float (mean -. 0.02) < 0.001)

let test_rng_derangement () =
  let rng = Rng.create 5 in
  for n = 2 to 20 do
    let d = Rng.derangement rng n in
    Array.iteri
      (fun i v -> if i = v then Alcotest.failf "fixed point at %d (n=%d)" i n)
      d;
    let sorted = Array.copy d in
    Array.sort compare sorted;
    Array.iteri (fun i v -> Alcotest.(check int) "is a permutation" i v) sorted
  done

let prop_rng_uniform_range =
  QCheck.Test.make ~name:"uniform stays in range" ~count:500
    QCheck.(pair (float_bound_exclusive 100.) pos_float)
    (fun (lo, width) ->
      QCheck.assume (width > 0. && width < 1e9);
      let rng = Rng.create 13 in
      let v = Rng.uniform rng lo (lo +. width) in
      v >= lo && v < lo +. width)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_var () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "stddev" (sqrt 1.25) (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  check_float "median" 2.5 (Stats.median xs);
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 4. (Stats.percentile xs 100.);
  check_float "p25" 1.75 (Stats.percentile xs 25.)

let test_stats_cdf () =
  let c = Stats.cdf [| 1.; 2.; 2.; 4. |] in
  check_float "below support" 0. (Stats.cdf_at c 0.5);
  check_float "at 1" 0.25 (Stats.cdf_at c 1.);
  check_float "at 2" 0.75 (Stats.cdf_at c 2.);
  check_float "above support" 1. (Stats.cdf_at c 10.)

let test_stats_fraction () =
  check_float "fraction" 0.5 (Stats.fraction (fun x -> x > 0) [| 1; -1; 2; -2 |]);
  check_float "empty" 0. (Stats.fraction (fun _ -> true) [||])

let test_stats_counter () =
  let c = Stats.Counter.create () in
  List.iter (Stats.Counter.add c) [ 3.; 1.; 2. ];
  Alcotest.(check int) "n" 3 (Stats.Counter.n c);
  check_float "mean" 2. (Stats.Counter.mean c);
  check_float "min" 1. (Stats.Counter.min c);
  check_float "max" 3. (Stats.Counter.max c)

let test_stats_single_sample () =
  let xs = [| 7.5 |] in
  check_float "median of one" 7.5 (Stats.median xs);
  check_float "p0 of one" 7.5 (Stats.percentile xs 0.);
  check_float "p99 of one" 7.5 (Stats.percentile xs 99.);
  let c = Stats.cdf xs in
  Alcotest.(check int) "cdf one point" 1 (Array.length c);
  check_float "cdf below" 0. (Stats.cdf_at c 7.);
  check_float "cdf at sample" 1. (Stats.cdf_at c 7.5)

let test_stats_tally_negative () =
  let t = Stats.Tally.create () in
  Stats.Tally.incr t "x";
  Stats.Tally.incr ~by:5 t "x";
  Stats.Tally.incr ~by:(-2) t "x";
  Alcotest.(check int) "net count" 4 (Stats.Tally.count t "x");
  Stats.Tally.incr ~by:(-3) t "y";
  Alcotest.(check int) "fresh key from negative" (-3) (Stats.Tally.count t "y");
  Alcotest.(check int) "total sums signed" 1 (Stats.Tally.total t)

let test_stats_counter_empty () =
  let c = Stats.Counter.create () in
  Alcotest.(check int) "n" 0 (Stats.Counter.n c);
  check_float "mean of empty" 0. (Stats.Counter.mean c);
  Alcotest.(check bool) "min is +inf" true (Stats.Counter.min c = infinity);
  Alcotest.(check bool) "max is -inf" true
    (Stats.Counter.max c = neg_infinity)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
              (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      let lo, hi = Stats.min_max arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_points () =
  let s = Series.create ~name:"x" () in
  Series.add s 0.1 1.;
  Series.add s 0.2 2.;
  Alcotest.(check int) "length" 2 (Series.length s);
  Alcotest.(check string) "name" "x" (Series.name s);
  let pts = Series.points s in
  check_float "t0" 0.1 (fst pts.(0));
  check_float "v1" 2. (snd pts.(1))

let test_series_bin_mean () =
  let s = Series.create () in
  Series.add s 0.05 10.;
  Series.add s 0.15 20.;
  Series.add s 0.17 40.;
  let bins = Series.bin_mean s ~width:0.1 ~t_end:0.3 in
  Alcotest.(check int) "bins" 3 (Array.length bins);
  check_float "bin0 mean" 10. (snd bins.(0));
  check_float "bin1 mean" 30. (snd bins.(1));
  check_float "bin2 empty" 0. (snd bins.(2))

let test_series_integrate_rate () =
  let s = Series.create () in
  Series.add s 0.05 100.;
  Series.add s 0.06 100.;
  let bins = Series.integrate_rate s ~width:0.1 ~t_end:0.1 in
  check_float "rate" 2000. (snd bins.(0))

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units () =
  check_float "gbps" 1e9 (Units.gbps 1.);
  check_float "mbps" 5e6 (Units.mbps 5.);
  Alcotest.(check int) "kbyte" 2000 (Units.kbyte 2.);
  Alcotest.(check int) "mbyte" 4_000_000 (Units.mbyte 4.);
  check_float "ms" 0.02 (Units.ms 20.);
  check_float "us" 1.5e-5 (Units.us 15.);
  (* 1500 bytes at 1 Gbps = 12 microseconds. *)
  check_float "tx_time" 12e-6 (Units.tx_time ~bytes:1500 ~rate:(Units.gbps 1.))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "engine.heap",
      [
        Alcotest.test_case "ascending order" `Quick test_heap_order;
        Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
        Alcotest.test_case "growth to 1000" `Quick test_heap_growth;
        Alcotest.test_case "peek is stable" `Quick test_heap_peek_stable;
      ]
      @ qsuite [ prop_heap_sorted ] );
    ( "engine.sim",
      [
        Alcotest.test_case "time ordering" `Quick test_sim_ordering;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "run until" `Quick test_sim_until;
        Alcotest.test_case "nested scheduling" `Quick test_sim_nested_schedule;
        Alcotest.test_case "stop" `Quick test_sim_stop;
        Alcotest.test_case "live vs physical pending" `Quick
          test_sim_live_pending;
        Alcotest.test_case "schedule at now" `Quick test_sim_schedule_at_now;
        Alcotest.test_case "slot reuse after cancel" `Quick
          test_sim_slot_reuse;
        Alcotest.test_case "kind interning" `Quick test_kind_interning;
        Alcotest.test_case "allocation-free schedule path" `Quick
          test_sim_alloc_free;
        Alcotest.test_case "past times rejected" `Quick test_sim_past_rejected;
      ]
      @ qsuite [ prop_sim_schedule_cancel_model ] );
    ( "engine.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "derangement" `Quick test_rng_derangement;
      ]
      @ qsuite [ prop_rng_uniform_range ] );
    ( "engine.stats",
      [
        Alcotest.test_case "mean/variance" `Quick test_stats_mean_var;
        Alcotest.test_case "percentiles" `Quick test_stats_percentile;
        Alcotest.test_case "cdf" `Quick test_stats_cdf;
        Alcotest.test_case "fraction" `Quick test_stats_fraction;
        Alcotest.test_case "counter" `Quick test_stats_counter;
        Alcotest.test_case "single sample" `Quick test_stats_single_sample;
        Alcotest.test_case "tally negative deltas" `Quick
          test_stats_tally_negative;
        Alcotest.test_case "counter empty stream" `Quick
          test_stats_counter_empty;
      ]
      @ qsuite [ prop_percentile_bounds ] );
    ( "engine.series",
      [
        Alcotest.test_case "points" `Quick test_series_points;
        Alcotest.test_case "bin mean" `Quick test_series_bin_mean;
        Alcotest.test_case "integrate rate" `Quick test_series_integrate_rate;
      ] );
    ("engine.units", [ Alcotest.test_case "conversions" `Quick test_units ]);
  ]
