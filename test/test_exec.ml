(* Tests for the scenario API and the multicore sweep executor:
   scenarios must reproduce hand-built Runner.execute results bit for bit,
   and a sweep must be order-preserving and independent of the worker
   domain count. *)

module Units = Pdq_engine.Units
module Sim = Pdq_engine.Sim
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Config = Pdq_core.Config
module Scenario = Pdq_exec.Scenario
module Exec_opts = Pdq_exec.Exec_opts
module Sweep = Pdq_exec.Sweep
module Task = Pdq_exec.Task

(* Everything in a result except the live context, for structural
   comparison across independently built simulations. *)
let fingerprint (r : Runner.result) =
  ( ( Array.to_list
        (Array.map
           (fun (f : Runner.flow_result) ->
             (f.Runner.spec, f.Runner.fct, f.Runner.met_deadline,
              f.Runner.terminated, f.Runner.aborted))
           r.Runner.flows),
      r.Runner.application_throughput,
      r.Runner.mean_fct ),
    (r.Runner.completed, r.Runner.aborted, r.Runner.counters, r.Runner.sim_end)
  )

let check_same_result msg a b =
  Alcotest.(check bool) msg true (fingerprint a = fingerprint b)

(* ------------------------------------------------------------------ *)
(* Scenario.run vs. a hand-built Runner.execute *)

let synthetic_scenario proto =
  Scenario.make ~seed:3 ~horizon:5.
    ~workload:
      (Scenario.Synthetic
         {
           pattern = Scenario.Aggregation;
           flows = 8;
           sizes = Scenario.Uniform_paper { mean_bytes = 100_000 };
           deadlines = Scenario.Exp_deadlines { mean = 0.02; floor = 3e-3 };
         })
    proto

let test_scenario_matches_handbuilt () =
  (* The scenario expands to concrete specs + options; running those
     through Runner.execute on a fresh hand-built topology must reproduce
     Scenario.run exactly. *)
  let s = synthetic_scenario (Runner.Pdq Config.full) in
  let from_scenario = Scenario.run s in
  let _, specs, options = Scenario.build s in
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let by_hand =
    Runner.execute ~options ~topo:built.Builder.topo s.Scenario.protocol specs
  in
  check_same_result "scenario = hand-built" from_scenario by_hand

let test_explicit_matches_handbuilt () =
  let specs_of hosts rx =
    [
      { Context.src = hosts.(0); dst = rx; size = Units.mbyte 1.;
        deadline = None; start = 0. };
      { Context.src = hosts.(1); dst = rx; size = Units.kbyte 100.;
        deadline = None; start = 0. };
    ]
  in
  let s =
    Scenario.make
      ~topo:(Scenario.Bottleneck { senders = 2 })
      ~workload:
        (Scenario.Generated
           {
             label = "two flows";
             specs =
               (fun ~seed:_ ~topo:_ ~hosts ->
                 specs_of hosts hosts.(Array.length hosts - 1));
           })
      Runner.Rcp
  in
  let from_scenario = Scenario.run s in
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders:2 () in
  let by_hand =
    Runner.execute ~topo:built.Builder.topo Runner.Rcp
      (specs_of built.Builder.hosts rx)
  in
  check_same_result "generated bottleneck = hand-built" from_scenario by_hand

let test_rerun_deterministic () =
  let s = synthetic_scenario Runner.Tcp in
  check_same_result "same scenario twice" (Scenario.run s) (Scenario.run s)

(* ------------------------------------------------------------------ *)
(* Sweep: parallel = sequential, in input order *)

let mixed_scenarios =
  List.concat_map
    (fun proto ->
      List.map
        (fun seed -> Scenario.with_seed (synthetic_scenario proto) seed)
        [ 1; 2 ])
    [ Runner.Pdq Config.full; Runner.Rcp; Runner.Tcp ]

let test_sweep_matches_sequential () =
  let seq = Sweep.run ~opts:(Exec_opts.jobs 1) mixed_scenarios in
  let par = Sweep.run ~opts:(Exec_opts.jobs 4) mixed_scenarios in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iteri
    (fun i (a, b) ->
      check_same_result (Printf.sprintf "scenario %d identical" i) a b)
    (List.combine seq par)

let test_map_preserves_order () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int))
    "input order" (List.map (fun x -> x * x) xs)
    (Sweep.map ~jobs:5 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "more jobs than items" [ 9 ]
    (Sweep.map ~jobs:8 (fun x -> x * x) [ 3 ])

let test_map_aggregates_all_errors () =
  (* Two bad slots: both must be reported, in input order, with one
     exception each — not just whichever worker crashed first. *)
  let f x = if x = 2 || x = 5 then failwith (Printf.sprintf "boom%d" x) else x in
  let observe jobs =
    match Sweep.map ~jobs f (List.init 8 Fun.id) with
    | _ -> Alcotest.fail "expected Sweep_errors"
    | exception Sweep.Sweep_errors errs ->
        List.map
          (fun (i, e) ->
            (i, match e with Failure m -> m | e -> Printexc.to_string e))
          errs
  in
  let expected = [ (2, "boom2"); (5, "boom5") ] in
  Alcotest.(check (list (pair int string))) "jobs:1" expected (observe 1);
  Alcotest.(check (list (pair int string))) "jobs:3" expected (observe 3)

let test_default_jobs_env () =
  let restore = Sys.getenv_opt "PDQ_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PDQ_JOBS" (Option.value restore ~default:""))
    (fun () ->
      Unix.putenv "PDQ_JOBS" "3";
      Alcotest.(check int) "PDQ_JOBS honored" 3 (Sweep.default_jobs ());
      Unix.putenv "PDQ_JOBS" "0";
      Alcotest.(check int) "clamped to >= 1" 1 (Sweep.default_jobs ());
      Unix.putenv "PDQ_JOBS" "not-a-number";
      Alcotest.(check int) "garbage falls back"
        (Domain.recommended_domain_count ())
        (Sweep.default_jobs ()))

let test_average_matches_manual () =
  let f seed = float_of_int (seed * seed) in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let manual =
    List.fold_left (fun acc s -> acc +. f s) 0. seeds
    /. float_of_int (List.length seeds)
  in
  Alcotest.(check (float 0.)) "jobs:1" manual (Sweep.average ~jobs:1 ~seeds f);
  Alcotest.(check (float 0.)) "jobs:4" manual (Sweep.average ~jobs:4 ~seeds f)

let test_sweep_with_profiler_enabled () =
  (* The global profiler must tolerate runs on worker domains: enable,
     sweep, report, reset — no crash, and the sweep output unchanged. *)
  let p = Pdq_engine.Profiler.enable_global () in
  let expected = Sweep.run ~opts:(Exec_opts.jobs 1) mixed_scenarios in
  let got = Sweep.run ~opts:(Exec_opts.jobs 4) mixed_scenarios in
  ignore (Format.asprintf "%a" Pdq_engine.Profiler.pp_report p);
  Pdq_engine.Profiler.reset p;
  Pdq_engine.Profiler.disable_global ();
  List.iteri
    (fun i (a, b) ->
      check_same_result (Printf.sprintf "profiled scenario %d" i) a b)
    (List.combine expected got)

(* ------------------------------------------------------------------ *)
(* Supervised execution: keep-going, budgets, retries, checkpoints *)

(* A deterministic shape for comparing task lists across jobs values
   (wall times vary run to run; Task.pp deliberately omits them). *)
let task_shape t = Format.asprintf "%a" Task.pp t

let test_supervise_keep_going () =
  let f x = if x = 3 then failwith "boom" else x * 10 in
  let observe jobs =
    let sup =
      Sweep.supervise ~opts:(Exec_opts.jobs jobs) ~key:string_of_int f
        (List.init 6 Fun.id)
    in
    ( List.map task_shape sup.Sweep.tasks,
      (sup.Sweep.report.Sweep.ok, sup.Sweep.report.Sweep.failed) )
  in
  let shapes1, counts1 = observe 1 in
  let shapes4, counts4 = observe 4 in
  Alcotest.(check (list string)) "jobs:4 = jobs:1" shapes1 shapes4;
  Alcotest.(check (pair int int)) "5 ok, 1 failed" (5, 1) counts1;
  Alcotest.(check (pair int int)) "counts jobs-independent" counts1 counts4;
  (match shapes1 with
  | [ _; _; _; s3; _; _ ] ->
      Alcotest.(check bool) "slot 3 failed" true
        (String.length s3 >= 6 && String.sub s3 0 6 = "FAILED")
  | _ -> Alcotest.fail "expected 6 slots")

let test_supervise_stop_early () =
  (* keep_going:false with one worker: everything after the crash is
     settled Skipped, never executed. *)
  let ran = Atomic.make 0 in
  let f x =
    Atomic.incr ran;
    if x = 2 then failwith "boom" else x
  in
  let sup =
    Sweep.supervise ~opts:(Exec_opts.jobs 1) ~keep_going:false ~key:string_of_int f
      (List.init 6 Fun.id)
  in
  Alcotest.(check (list string))
    "ok ok failed skipped..."
    [ "ok"; "ok"; "failed"; "skipped"; "skipped"; "skipped" ]
    (List.map Task.state sup.Sweep.tasks);
  Alcotest.(check int) "slots 3..5 never ran" 3 (Atomic.get ran);
  Alcotest.(check int) "report.skipped" 3 sup.Sweep.report.Sweep.skipped

let test_supervise_event_budget () =
  (* A real scenario against a 200-event budget: the simulation is cut
     off mid-run and the slot settles Timed_out naming the budget. *)
  let s = synthetic_scenario (Runner.Pdq Config.full) in
  let sup =
    Sweep.supervise
      ~opts:(Exec_opts.make ~jobs:2 ~budget:(Sweep.budget ~events:200 ()) ())
      ~key:Scenario.digest Scenario.run
      [ s; Scenario.with_seed s 2 ]
  in
  List.iter
    (fun t ->
      match t with
      | Task.Timed_out { Task.budget; attempts; _ } ->
          Alcotest.(check string) "tripped budget" "events>200" budget;
          Alcotest.(check int) "timeouts are not retried" 1 attempts
      | t -> Alcotest.fail ("expected Timed_out, got " ^ Task.state t))
    sup.Sweep.tasks

let test_supervise_wall_budget () =
  (* A runaway fixture that reschedules itself forever: only the
     wall-clock budget can stop it. *)
  let runaway () =
    let sim = Sim.create () in
    let rec tick () = ignore (Sim.schedule sim ~delay:1e-6 tick) in
    ignore (Sim.schedule sim ~delay:0. tick);
    Sim.run sim
  in
  let sup =
    Sweep.supervise
      ~opts:
        (Exec_opts.make ~jobs:1
           ~budget:(Sweep.budget ~wall:0.05 ~check_every:256 ())
           ())
      ~key:(fun () -> "runaway")
      runaway [ () ]
  in
  match sup.Sweep.tasks with
  | [ Task.Timed_out { Task.budget; _ } ] ->
      Alcotest.(check bool) "wall budget tripped" true
        (String.length budget >= 5 && String.sub budget 0 5 = "wall>")
  | [ t ] -> Alcotest.fail ("expected Timed_out, got " ^ Task.state t)
  | _ -> Alcotest.fail "expected one slot"

let test_supervise_retry () =
  let tries = Atomic.make 0 in
  let f () =
    if Atomic.fetch_and_add tries 1 = 0 then failwith "flaky" else 42
  in
  let sup =
    Sweep.supervise ~opts:(Exec_opts.jobs 1)
      ~retry:(Sweep.retry ~attempts:3 ~base_delay:1e-3 ())
      ~key:(fun () -> "flaky")
      f [ () ]
  in
  (match sup.Sweep.tasks with
  | [ Task.Ok 42 ] -> ()
  | [ t ] -> Alcotest.fail ("expected Ok after retry, got " ^ Task.state t)
  | _ -> Alcotest.fail "expected one slot");
  Alcotest.(check int) "two attempts executed" 2
    sup.Sweep.report.Sweep.attempts

let supervised_ok_results sup =
  List.map
    (fun t ->
      match Task.ok t with
      | Some r -> r
      | None -> Alcotest.fail ("non-ok slot: " ^ task_shape t))
    sup.Sweep.tasks

let test_checkpoint_resume () =
  let scenarios =
    List.map
      (Scenario.with_seed (synthetic_scenario (Runner.Pdq Config.full)))
      [ 1; 2; 3; 4 ]
  in
  let path = Filename.temp_file "pdq_ck" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (* First pass: seeds 3 and 4 crash; seeds 1 and 2 land in the
     checkpoint. *)
  let crashy (s : Scenario.t) =
    if s.Scenario.seed > 2 then failwith "injected" else Scenario.run s
  in
  let first =
    Sweep.supervise ~opts:(Exec_opts.jobs 2) ~checkpoint:path ~codec:Scenario.result_codec
      ~key:Scenario.digest crashy scenarios
  in
  Alcotest.(check (pair int int))
    "first pass: 2 ok, 2 failed" (2, 2)
    (first.Sweep.report.Sweep.ok, first.Sweep.report.Sweep.failed);
  (* Resume with the honest function: only the failed seeds re-run,
     and the merged results are bit-identical to an uninterrupted
     sequential sweep. *)
  let resumed =
    Sweep.run_supervised ~opts:(Exec_opts.jobs 2) ~checkpoint:path ~resume:path scenarios
  in
  Alcotest.(check int) "2 slots resumed" 2 resumed.Sweep.report.Sweep.resumed;
  Alcotest.(check int) "all ok after resume" 4 resumed.Sweep.report.Sweep.ok;
  let fresh = Sweep.run ~opts:(Exec_opts.jobs 1) scenarios in
  List.iteri
    (fun i (a, b) ->
      check_same_result (Printf.sprintf "resumed slot %d = fresh" i) a b;
      (* Byte-equality of the encoded payloads is the strongest form
         of "bit-identical" we can assert across the codec. *)
      Alcotest.(check bool)
        (Printf.sprintf "slot %d encodes identically" i)
        true
        (Scenario.result_codec.Task.encode a
        = Scenario.result_codec.Task.encode b))
    (List.combine (supervised_ok_results resumed) fresh)

let test_checkpoint_torn_line () =
  let scenarios =
    List.map
      (Scenario.with_seed (synthetic_scenario Runner.Tcp))
      [ 1; 2; 3 ]
  in
  let path = Filename.temp_file "pdq_ck_torn" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let first =
    Sweep.run_supervised ~opts:(Exec_opts.jobs 1) ~checkpoint:path
      (List.filteri (fun i _ -> i < 2) scenarios)
  in
  Alcotest.(check int) "two checkpointed" 2 first.Sweep.report.Sweep.ok;
  (* Simulate a kill -9 mid-write: a torn, unterminated JSON fragment
     at the tail. The loader must skip it, not die. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"k\":\"dead";
  close_out oc;
  let resumed = Sweep.run_supervised ~opts:(Exec_opts.jobs 1) ~resume:path scenarios in
  Alcotest.(check int) "valid lines resumed" 2
    resumed.Sweep.report.Sweep.resumed;
  Alcotest.(check int) "missing slot re-run" 3 resumed.Sweep.report.Sweep.ok;
  let fresh = Sweep.run ~opts:(Exec_opts.jobs 1) scenarios in
  List.iteri
    (fun i (a, b) ->
      check_same_result (Printf.sprintf "torn-resume slot %d" i) a b)
    (List.combine (supervised_ok_results resumed) fresh)

let test_acceptance_100_slots () =
  (* The headline scenario: a 100-slot sweep with one crashing and one
     hanging slot under keep-going + a wall budget yields 98 Ok plus
     two structured casualties; resuming from the checkpoint with the
     bugs fixed re-executes only those two and reproduces exactly what
     an undamaged sweep computes. *)
  let int_codec = { Task.encode = string_of_int; decode = int_of_string } in
  let runaway () =
    let sim = Sim.create () in
    let rec tick () = ignore (Sim.schedule sim ~delay:1e-6 tick) in
    ignore (Sim.schedule sim ~delay:0. tick);
    Sim.run sim;
    assert false
  in
  let buggy x =
    if x = 13 then failwith "crash"
    else if x = 57 then runaway ()
    else x * 2
  in
  let honest x = x * 2 in
  let inputs = List.init 100 Fun.id in
  let path = Filename.temp_file "pdq_accept" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let first =
    Sweep.supervise
      ~opts:
        (Exec_opts.make ~jobs:4
           ~budget:(Sweep.budget ~wall:0.05 ~check_every:256 ())
           ())
      ~keep_going:true ~checkpoint:path ~codec:int_codec
      ~key:string_of_int buggy inputs
  in
  let r = first.Sweep.report in
  Alcotest.(check (list int)) "98 ok / 1 failed / 1 timed-out"
    [ 98; 1; 1; 0 ]
    [ r.Sweep.ok; r.Sweep.failed; r.Sweep.timed_out; r.Sweep.skipped ];
  (match (List.nth first.Sweep.tasks 13, List.nth first.Sweep.tasks 57) with
  | Task.Failed _, Task.Timed_out _ -> ()
  | a, b ->
      Alcotest.fail
        (Printf.sprintf "slot 13 %s, slot 57 %s" (Task.state a) (Task.state b)));
  let resumed =
    Sweep.supervise ~opts:(Exec_opts.jobs 4) ~checkpoint:path ~resume:path ~codec:int_codec
      ~key:string_of_int honest inputs
  in
  Alcotest.(check int) "only the casualties re-ran" 98
    resumed.Sweep.report.Sweep.resumed;
  Alcotest.(check (list int)) "resume = undamaged sweep"
    (List.map honest inputs)
    (List.map Task.get_ok resumed.Sweep.tasks)

let test_supervised_matches_plain_run () =
  (* The supervisor must not perturb results: a fully-Ok supervised
     sweep is bit-identical to Sweep.run, at any jobs count. *)
  let sup = Sweep.run_supervised ~opts:(Exec_opts.jobs 4) mixed_scenarios in
  let plain = Sweep.run ~opts:(Exec_opts.jobs 1) mixed_scenarios in
  Alcotest.(check int) "all ok"
    (List.length mixed_scenarios)
    sup.Sweep.report.Sweep.ok;
  List.iteri
    (fun i (a, b) ->
      check_same_result (Printf.sprintf "supervised slot %d" i) a b)
    (List.combine (supervised_ok_results sup) plain)

(* ------------------------------------------------------------------ *)
(* CLI-facing parsers *)

let test_parsers () =
  (match Scenario.protocol_of_string "pdq" with
  | Ok (Runner.Pdq _) -> ()
  | _ -> Alcotest.fail "pdq should parse");
  (match Scenario.protocol_of_string ~subflows:4 "mpdq" with
  | Ok (Runner.Mpdq { subflows = 4; _ }) -> ()
  | _ -> Alcotest.fail "mpdq should parse with subflows");
  (match Scenario.protocol_of_string "nosuch" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad protocol must be an Error");
  (match Scenario.topo_of_string "fat-tree" with
  | Ok (Scenario.Fat_tree _) -> ()
  | _ -> Alcotest.fail "fat-tree should parse");
  (match Scenario.topo_of_string "moebius" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad topology must be an Error");
  (match Scenario.pattern_of_string "permutation" with
  | Ok Scenario.Random_permutation -> ()
  | _ -> Alcotest.fail "permutation should parse");
  (match Scenario.pattern_of_string "chaos" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad pattern must be an Error")

(* The unified options record: a budget passed through [?opts] must
   bound a single [Scenario.run] exactly like a sweep attempt, and the
   telemetry field must not perturb the result. *)
let test_exec_opts_budget () =
  let s = synthetic_scenario (Runner.Pdq Config.full) in
  (match
     Scenario.run ~opts:(Exec_opts.make ~budget:(Sweep.budget ~events:200 ()) ()) s
   with
  | _ -> Alcotest.fail "200-event budget should have tripped"
  | exception Sim.Cancelled { reason; _ } ->
      Alcotest.(check bool) "reason names events" true
        (String.length reason >= 6 && String.sub reason 0 6 = "events"));
  let mem = Pdq_telemetry.Trace.memory () in
  let telemetry = { Runner.no_telemetry with Runner.sinks = [ mem ] } in
  let with_tel = Scenario.run ~opts:(Exec_opts.telemetry telemetry) s in
  check_same_result "telemetry in opts does not perturb" (Scenario.run s)
    with_tel;
  Alcotest.(check bool) "sinks saw events" true
    (Pdq_telemetry.Trace.memory_events mem <> [])

let suites =
  [
    ( "exec.scenario",
      [
        Alcotest.test_case "synthetic = hand-built" `Quick
          test_scenario_matches_handbuilt;
        Alcotest.test_case "generated = hand-built" `Quick
          test_explicit_matches_handbuilt;
        Alcotest.test_case "rerun deterministic" `Quick
          test_rerun_deterministic;
        Alcotest.test_case "parsers" `Quick test_parsers;
        Alcotest.test_case "exec-opts budget + telemetry" `Quick
          test_exec_opts_budget;
      ] );
    ( "exec.sweep",
      [
        Alcotest.test_case "jobs:4 = jobs:1 on mixed roster" `Quick
          test_sweep_matches_sequential;
        Alcotest.test_case "map preserves order" `Quick
          test_map_preserves_order;
        Alcotest.test_case "map aggregates all errors" `Quick
          test_map_aggregates_all_errors;
        Alcotest.test_case "PDQ_JOBS env" `Quick test_default_jobs_env;
        Alcotest.test_case "average = manual mean" `Quick
          test_average_matches_manual;
        Alcotest.test_case "profiler-safe" `Quick
          test_sweep_with_profiler_enabled;
      ] );
    ( "exec.supervise",
      [
        Alcotest.test_case "keep-going settles failures" `Quick
          test_supervise_keep_going;
        Alcotest.test_case "stop-early skips the rest" `Quick
          test_supervise_stop_early;
        Alcotest.test_case "event budget times out" `Quick
          test_supervise_event_budget;
        Alcotest.test_case "wall budget stops a runaway" `Quick
          test_supervise_wall_budget;
        Alcotest.test_case "transient failure retries" `Quick
          test_supervise_retry;
        Alcotest.test_case "checkpoint + resume bit-identical" `Quick
          test_checkpoint_resume;
        Alcotest.test_case "torn checkpoint line skipped" `Quick
          test_checkpoint_torn_line;
        Alcotest.test_case "supervised = plain run" `Quick
          test_supervised_matches_plain_run;
        Alcotest.test_case "100 slots, one crash, one hang" `Quick
          test_acceptance_100_slots;
      ] );
  ]
